package memxbar_test

import (
	"fmt"

	memxbar "repro"
)

// ExampleSynthesizeTwoLevel reproduces the Fig. 3 area of the paper's
// running example.
func ExampleSynthesizeTwoLevel() {
	f, _ := memxbar.ParseFunction(8, 1,
		"1-------", "-1------", "--1-----", "---1----", "----1111")
	d, _ := memxbar.SynthesizeTwoLevel(f)
	fmt.Printf("%dx%d area=%d\n", d.Rows(), d.Cols(), d.Area())
	// Output: 6x18 area=108
}

// ExampleSynthesizeMultiLevel reproduces the Fig. 5 geometry: the same
// function needs only 2 NAND gates and one connection column.
func ExampleSynthesizeMultiLevel() {
	f, _ := memxbar.ParseFunction(8, 1,
		"1-------", "-1------", "--1-----", "---1----", "----1111")
	d, _ := memxbar.SynthesizeMultiLevel(f, memxbar.MultiLevelOptions{})
	fmt.Printf("%dx%d area=%d\n", d.Rows(), d.Cols(), d.Area())
	// Output: 3x19 area=57
}

// ExampleSynthesizeDual shows the dual optimization: f̄ has 4 products
// against f's 5, so the complement implementation is smaller.
func ExampleSynthesizeDual() {
	f, _ := memxbar.ParseFunction(8, 1,
		"1-------", "-1------", "--1-----", "---1----", "----1111")
	d, usedComplement, _ := memxbar.SynthesizeDual(f)
	fmt.Println(d.Area(), usedComplement)
	// Output: 90 true
}

// ExampleDesign_MapDefects maps the Fig. 7/8 function around a targeted
// stuck-open defect that defeats the naive placement.
func ExampleDesign_MapDefects() {
	f, _ := memxbar.ParseFunction(3, 2, "11- 10", "-01 10", "0-0 01", "-11 01")
	d, _ := memxbar.SynthesizeTwoLevel(f)
	dm := memxbar.NewDefectMap(d.Rows(), d.Cols())
	dm.SetStuckOpen(0, 0) // product m1 needs this device

	naive, _ := d.MapDefects(dm, memxbar.Naive)
	hba, _ := d.MapDefects(dm, memxbar.HBA)
	fmt.Println(naive.Valid, hba.Valid)
	// Output: false true
}

// ExampleDesign_Simulate runs the crossbar state machine on one input.
func ExampleDesign_Simulate() {
	f, _ := memxbar.ParseFunction(2, 1, "11")
	d, _ := memxbar.SynthesizeTwoLevel(f)
	y, _ := d.Simulate([]bool{true, true})
	n, _ := d.Simulate([]bool{true, false})
	fmt.Println(y[0], n[0])
	// Output: true false
}

// ExampleFunction_Minimize shows the espresso-style minimizer collapsing
// adjacent products.
func ExampleFunction_Minimize() {
	f, _ := memxbar.ParseFunction(2, 1, "11", "10")
	fmt.Println(f.Minimize().Products())
	// Output: 1
}

// ExampleBenchmark loads a built-in circuit of the paper's Table II.
func ExampleBenchmark() {
	f, _ := memxbar.Benchmark("rd53")
	fmt.Println(f.Inputs(), f.Outputs(), f.Products())
	// Output: 5 3 31
}

// ExampleDesign_MapDefectsColumnAware survives a stuck-closed defect —
// fatal under fixed wiring — by renaming input columns onto a spare pair.
func ExampleDesign_MapDefectsColumnAware() {
	f, _ := memxbar.ParseFunction(3, 2, "11- 10", "-01 10", "0-0 01", "-11 01")
	d, _ := memxbar.SynthesizeTwoLevel(f)

	fabric := memxbar.FabricFor(d).WithSpares(1, 0)
	dm := memxbar.NewDefectMap(d.Rows(), fabric.Cols())
	dm.SetStuckClosed(3, 0) // poisons the physical x1 column

	cm, _ := d.MapDefectsColumnAware(dm, fabric, 1)
	fmt.Println(cm.Valid)
	// Output: true
}
