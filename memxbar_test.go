package memxbar

import (
	"context"
	"strings"
	"testing"
)

func fig3Function(t *testing.T) *Function {
	t.Helper()
	f, err := ParseFunction(8, 1,
		"1-------", "-1------", "--1-----", "---1----", "----1111")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestQuickstartFlow(t *testing.T) {
	f := fig3Function(t)
	if f.Inputs() != 8 || f.Outputs() != 1 || f.Products() != 5 {
		t.Fatalf("dims wrong: %d/%d/%d", f.Inputs(), f.Outputs(), f.Products())
	}
	two, err := SynthesizeTwoLevel(f)
	if err != nil {
		t.Fatal(err)
	}
	if two.Area() != 108 {
		t.Errorf("two-level area = %d, want 108", two.Area())
	}
	multi, err := SynthesizeMultiLevel(f, MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Area() != 57 {
		t.Errorf("multi-level area = %d, want 57 (Fig. 5)", multi.Area())
	}
	if !multi.MultiLevel() || two.MultiLevel() {
		t.Error("MultiLevel flags wrong")
	}
	for i := 0; i < 256; i++ {
		x := make([]bool, 8)
		for k := range x {
			x[k] = i&(1<<uint(k)) != 0
		}
		want := f.Eval(x)[0]
		ya, err := two.Simulate(x)
		if err != nil {
			t.Fatal(err)
		}
		yb, err := multi.Simulate(x)
		if err != nil {
			t.Fatal(err)
		}
		if ya[0] != want || yb[0] != want {
			t.Fatalf("simulation mismatch at %v: two=%v multi=%v want=%v", x, ya[0], yb[0], want)
		}
	}
}

func TestDualSelection(t *testing.T) {
	f := fig3Function(t)
	d, usedComplement, err := SynthesizeDual(f)
	if err != nil {
		t.Fatal(err)
	}
	if !usedComplement {
		t.Error("the complement (4 products) should win for the Fig. 3 function")
	}
	two, _ := SynthesizeTwoLevel(f)
	if d.Area() >= two.Area() {
		t.Errorf("dual area %d should beat direct %d", d.Area(), two.Area())
	}
}

func TestDefectMappingFlow(t *testing.T) {
	f, err := ParseFunction(3, 2, "11- 10", "-01 10", "0-0 01", "-11 01")
	if err != nil {
		t.Fatal(err)
	}
	design, err := SynthesizeTwoLevel(f)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := GenerateDefects(design.Rows(), design.Cols(), 0.10, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := design.MapDefects(dm, HBA)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid {
		t.Skipf("this seed's defect map is unmappable: %s", m.Reason)
	}
	for i := 0; i < 8; i++ {
		x := []bool{i&1 != 0, i&2 != 0, i&4 != 0}
		y, err := design.SimulateMapped(x, dm, m)
		if err != nil {
			t.Fatal(err)
		}
		want := f.Eval(x)
		if y[0] != want[0] || y[1] != want[1] {
			t.Fatalf("mapped crossbar wrong at %v", x)
		}
	}
}

func TestTargetedFaultInjection(t *testing.T) {
	f := fig3Function(t)
	design, _ := SynthesizeTwoLevel(f)
	dm := NewDefectMap(design.Rows(), design.Cols())
	dm.SetStuckOpen(0, 0)
	naive, err := design.MapDefects(dm, Naive)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Valid {
		t.Error("naive mapping must fail when row 0 needs the defective device")
	}
	hba, err := design.MapDefects(dm, HBA)
	if err != nil {
		t.Fatal(err)
	}
	if !hba.Valid {
		t.Errorf("HBA must route around a single open defect: %s", hba.Reason)
	}
}

func TestBenchmarkAccess(t *testing.T) {
	names := BenchmarkNames()
	if len(names) < 16 {
		t.Fatalf("too few benchmarks: %d", len(names))
	}
	f, err := Benchmark("rd53")
	if err != nil {
		t.Fatal(err)
	}
	if f.Inputs() != 5 || f.Outputs() != 3 || f.Products() != 31 {
		t.Errorf("rd53 dims = %d/%d/%d", f.Inputs(), f.Outputs(), f.Products())
	}
	if _, err := Benchmark("nonexistent"); err == nil {
		t.Error("unknown benchmark must fail")
	}
}

func TestParsePLA(t *testing.T) {
	src := ".i 2\n.o 1\n.p 2\n10 1\n01 1\n.e\n"
	f, err := ParsePLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.Products() != 2 {
		t.Errorf("products = %d, want 2", f.Products())
	}
	if !f.Eval([]bool{true, false})[0] || f.Eval([]bool{true, true})[0] {
		t.Error("parsed PLA mis-evaluates")
	}
}

func TestMinimizeAndComplement(t *testing.T) {
	f, _ := ParseFunction(2, 1, "11", "10")
	m := f.Minimize()
	if m.Products() != 1 {
		t.Errorf("x1x2+x1x̄2 should minimize to one product, got %d", m.Products())
	}
	c := f.Complement()
	for i := 0; i < 4; i++ {
		x := []bool{i&1 != 0, i&2 != 0}
		if f.Eval(x)[0] == c.Eval(x)[0] {
			t.Error("complement wrong")
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if HBA.String() != "HBA" || Exact.String() != "EA" || Naive.String() != "naive" {
		t.Error("Algorithm.String wrong")
	}
	if Algorithm(99).String() != "unknown" {
		t.Error("unknown algorithm string wrong")
	}
}

func TestRenderAndStringers(t *testing.T) {
	f := fig3Function(t)
	d, _ := SynthesizeTwoLevel(f)
	if !strings.Contains(d.Render(), "#") {
		t.Error("render should show active devices")
	}
	if f.String() == "" {
		t.Error("function string empty")
	}
	dm := NewDefectMap(2, 2)
	dm.SetStuckClosed(0, 1)
	if !strings.Contains(dm.String(), "x") {
		t.Error("defect map string should show the closed device")
	}
}

func TestMapDefectsValidation(t *testing.T) {
	f := fig3Function(t)
	d, _ := SynthesizeTwoLevel(f)
	dm := NewDefectMap(2, 2) // wrong dims
	if _, err := d.MapDefects(dm, HBA); err == nil {
		t.Error("dimension mismatch must fail")
	}
	good := NewDefectMap(d.Rows(), d.Cols())
	if _, err := d.MapDefects(good, Algorithm(12)); err == nil {
		t.Error("unknown algorithm must fail")
	}
	m := &Mapping{Valid: false}
	if _, err := d.SimulateMapped(make([]bool, 8), good, m); err == nil {
		t.Error("simulating an invalid mapping must fail")
	}
}

func TestEnginePublicAPI(t *testing.T) {
	eng := NewEngine(EngineOptions{Workers: 2})
	defer eng.Close()
	f := fig3Function(t)
	results, err := eng.Run(context.Background(), []Job{
		NewJob(JobSynthTwoLevel, f),
		{Kind: JobSynthTwoLevel, Benchmark: "rd53"},
		{Kind: JobMonteCarloYield, Benchmark: "rd53", OpenRate: 0.10, Samples: 10, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != "" {
			t.Fatalf("job %d: %s", i, r.Err)
		}
	}
	// The running example's two-level geometry (Fig. 3) and rd53's Table I
	// area anchor the engine to the one-shot API.
	d, _ := SynthesizeTwoLevel(f)
	if results[0].Area != d.Area() {
		t.Errorf("engine area %d != design area %d", results[0].Area, d.Area())
	}
	if results[1].Area != 544 {
		t.Errorf("rd53 area = %d, want 544", results[1].Area)
	}
	if results[2].Samples != 10 {
		t.Errorf("monte carlo samples = %d", results[2].Samples)
	}
	if st := eng.Stats(); st.Completed != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Streaming submit: results arrive over the batch channel.
	b, err := eng.Submit(context.Background(), []Job{NewJob(JobSynthMultiLevel, f)})
	if err != nil {
		t.Fatal(err)
	}
	r := <-b.Results
	if r.Err != "" || r.Gates == 0 {
		t.Errorf("streamed result = %+v", r)
	}
}
