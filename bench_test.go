package memxbar

// This file is the benchmark harness of the reproduction: one bench per
// table and figure of the paper, plus micro-benches for the hot algorithm
// kernels. Regenerate everything with
//
//	go test -bench=. -benchmem
//
// The printed experiment rows themselves come from cmd/experiments; these
// benches time the same code paths via internal/experiments.

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/defect"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/minimize"
	"repro/internal/montecarlo"
	"repro/internal/munkres"
	"repro/internal/randfunc"
	"repro/internal/suite"
	"repro/internal/synth"
	"repro/internal/xbar"
)

func fig3Bench() *logic.Cover {
	return logic.MustParseCover(8, 1,
		"1-------", "-1------", "--1-----", "---1----", "----1111")
}

// BenchmarkFig3TwoLevelSynthesis times the two-level layout construction of
// the running example (Fig. 3).
func BenchmarkFig3TwoLevelSynthesis(b *testing.B) {
	f := fig3Bench()
	for i := 0; i < b.N; i++ {
		if _, err := xbar.NewTwoLevel(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5MultiLevelSynthesis times factoring + NAND mapping + layout
// of the running example (Fig. 5).
func BenchmarkFig5MultiLevelSynthesis(b *testing.B) {
	f := fig3Bench()
	for i := 0; i < b.N; i++ {
		nw, err := synth.SynthesizeMultiLevel(f, synth.MultiLevelOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xbar.NewMultiLevel(nw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Simulation times one full state-machine evaluation of the
// two-level fabric.
func BenchmarkFig3Simulation(b *testing.B) {
	l, err := xbar.NewTwoLevel(fig3Bench())
	if err != nil {
		b.Fatal(err)
	}
	x := []bool{true, false, true, false, true, true, true, true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Simulate(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6RandomArea times one Fig. 6 Monte Carlo slice: 50 random
// 8-input functions through both synthesis styles.
func BenchmarkFig6RandomArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6([]int{8}, 50, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Synthesis times the full Table I regeneration (9
// benchmarks, both polarities, both design styles).
func BenchmarkTable1Synthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// table2Problem prepares one defect-mapping instance for a named benchmark.
func table2Problem(b *testing.B, name string, seed int64) *mapping.Problem {
	b.Helper()
	c, ok := suite.ByName(name)
	if !ok {
		b.Fatalf("unknown circuit %s", name)
	}
	cov := c.Build()
	if c.Kind == suite.Exact {
		cov = minimize.Minimize(cov, minimize.Options{MaxIterations: 2})
	}
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	dm, err := defect.Generate(l.Rows, l.Cols, defect.Params{POpen: 0.10}, rng)
	if err != nil {
		b.Fatal(err)
	}
	p, err := mapping.NewProblem(l, dm)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// table2BenchSet is a spread of Table II circuits from easiest to hardest.
var table2BenchSet = []string{"rd53", "misex1", "sqrt8", "sao2", "rd73", "clip", "rd84", "ex1010", "exp5", "alu4"}

// BenchmarkTable2HBA times the hybrid algorithm per benchmark at the
// paper's 10% stuck-open rate (Table II HBA runtime column). Problem and
// scratch setup live outside the measured loop, so the number is the
// steady-state warm-scratch mapping cost — candidate bitsets maintained by
// the defect map's delta window, placement and assignment re-run per
// iteration — at 0 allocs/op. Cold-path and per-trial costs are covered by
// BenchmarkYield200 and the bitmat kernel benches.
func BenchmarkTable2HBA(b *testing.B) {
	for _, name := range table2BenchSet {
		b.Run(name, func(b *testing.B) {
			p := table2Problem(b, name, 1)
			scratch := mapping.NewScratch()
			mapping.HBAScratch(p, scratch) // warm the buffers and bitsets
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mapping.HBAScratch(p, scratch)
			}
		})
	}
}

// BenchmarkTable2EA times the exact algorithm per benchmark (Table II EA
// runtime column); the HBA/EA ratio is the paper's headline runtime claim.
// Same warm-scratch steady-state protocol as BenchmarkTable2HBA.
func BenchmarkTable2EA(b *testing.B) {
	for _, name := range table2BenchSet {
		b.Run(name, func(b *testing.B) {
			p := table2Problem(b, name, 1)
			scratch := mapping.NewScratch()
			mapping.ExactScratch(p, scratch) // warm the buffers and bitsets
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mapping.ExactScratch(p, scratch)
			}
		})
	}
}

// BenchmarkTable2MonteCarlo times a full small-sample Table II row
// (defect generation + both algorithms), the per-row cost of the study.
func BenchmarkTable2MonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(experiments.Table2Options{
			Samples: 10, Seed: int64(i), Only: []string{"rd53"},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Example times the full Figs. 7/8 walkthrough instance.
func BenchmarkFig8Example(b *testing.B) {
	f := logic.MustParseCover(3, 2, "11- 10", "-01 10", "0-0 01", "-11 01")
	l, err := xbar.NewTwoLevel(f)
	if err != nil {
		b.Fatal(err)
	}
	dm := defect.NewMap(6, 10)
	for r, s := range []string{
		"1010111101", "1111111111", "0011111111",
		"1011011111", "1101111111", "1110111011",
	} {
		for c, ch := range s {
			if ch == '0' {
				dm.Set(r, c, defect.StuckOpen)
			}
		}
	}
	p, err := mapping.NewProblem(l, dm)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !mapping.HBA(p).Valid {
			b.Fatal("Fig. 8 instance must map")
		}
	}
}

// BenchmarkHBAMap times one hybrid-algorithm mapping attempt with reusable
// scratch buffers on the rd84 Table II instance; allocs/op must stay 0 in
// steady state (the scratch grows once, then every attempt reuses it).
func BenchmarkHBAMap(b *testing.B) {
	p := table2Problem(b, "rd84", 1)
	scratch := mapping.NewScratch()
	mapping.HBAScratch(p, scratch) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapping.HBAScratch(p, scratch)
	}
}

// BenchmarkYield200 times one steady-state Monte Carlo yield trial exactly
// as the Table II / Section VI loops run it: the worker's preallocated
// defect map is regenerated in place and HBA runs on reusable scratch,
// cycling through a 200-sample seed schedule. The headline contract is
// 0 allocs/op — the trial loop never touches the garbage collector.
func BenchmarkYield200(b *testing.B) {
	c, ok := suite.ByName("rd53")
	if !ok {
		b.Fatal("rd53 missing")
	}
	l, err := xbar.NewTwoLevel(c.Build())
	if err != nil {
		b.Fatal(err)
	}
	dm := defect.NewMap(l.Rows+2, l.Cols)
	p, err := mapping.NewProblem(l, dm)
	if err != nil {
		b.Fatal(err)
	}
	scratch := mapping.NewScratch()
	params := defect.Params{POpen: 0.10}
	rng := rand.New(rand.NewSource(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.Seed(montecarlo.SampleSeed(2018, i%200))
		if err := dm.Regenerate(params, rng); err != nil {
			b.Fatal(err)
		}
		mapping.HBAScratch(p, scratch)
	}
}

// BenchmarkYieldSweep times one Section VI redundancy/yield point.
func BenchmarkYieldSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Yield("rd53", []int{2}, []float64{0.10}, 20, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiLevelMapping times the future-work extension: defect
// mapping of a multi-level layout.
func BenchmarkMultiLevelMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiLevelMapping(experiments.MLOptions{
			Samples: 5, Seed: int64(i), Circuits: []string{"rd53"},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVariants times one ablation sweep across the HBA
// design-choice variants.
func BenchmarkAblationVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation("rd53", 10, 0.10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedTolerance times one stuck-closed tolerance point of the
// column-permutation extension.
func BenchmarkClosedTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ClosedTolerance("rd53",
			[]float64{0.005}, []int{2}, []int{2}, 0.05, 10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultCampaign times the exhaustive single-fault injection of the
// running example's two-level design.
func BenchmarkFaultCampaign(b *testing.B) {
	f := fig3Bench()
	l, err := xbar.NewTwoLevel(f)
	if err != nil {
		b.Fatal(err)
	}
	inputs := xbar.AllAssignments(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faultsim.Run(l, func(x []bool) []bool { return f.Eval(x) },
			faultsim.Options{Inputs: inputs, InjectOpen: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// columnAwareBenchInstance builds the fabric-with-spares instance shared by
// the column-aware benches.
func columnAwareBenchInstance(b *testing.B) (*xbar.Layout, *defect.Map, mapping.FabricSpec) {
	b.Helper()
	f := logic.MustParseCover(3, 2, "11- 10", "-01 10", "0-0 01", "-11 01")
	l, err := xbar.NewTwoLevel(f)
	if err != nil {
		b.Fatal(err)
	}
	spec := mapping.SpecFor(l)
	spec.InputPairs += 2
	spec.OutputPairs++
	rng := rand.New(rand.NewSource(7))
	dm, err := defect.Generate(l.Rows+1, spec.Cols(), defect.Params{POpen: 0.15, PClosed: 0.01}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return l, dm, spec
}

// BenchmarkColumnAware times the joint column+row mapping search on a
// fabric with spares and mixed defects, allocating fresh per attempt.
func BenchmarkColumnAware(b *testing.B) {
	l, dm, spec := columnAwareBenchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.ColumnAware(l, dm, spec, mapping.ColumnOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColumnAwareScratch is the same search on a reused ColumnScratch:
// the whole retry loop — greedy ranking over the transposed column views,
// per-attempt defect projection, row mapping, perturbation — must report
// 0 allocs/op in steady state, the column-aware counterpart of the
// BenchmarkYield200 contract.
func BenchmarkColumnAwareScratch(b *testing.B) {
	l, dm, spec := columnAwareBenchInstance(b)
	scratch := mapping.NewColumnScratch()
	for i := 0; i < 4; i++ { // warm the scratch buffers
		if _, err := mapping.ColumnAwareScratch(l, dm, spec, mapping.ColumnOptions{Seed: int64(i)}, scratch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.ColumnAwareScratch(l, dm, spec, mapping.ColumnOptions{Seed: int64(i)}, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// engineMixedBatch builds a 64-job mixed workload: synthesis of both
// styles, single defect mappings, and Monte Carlo yield batches, all with
// distinct identities so no job dedupes against another.
func engineMixedBatch() []engine.JobSpec {
	var specs []engine.JobSpec
	benches := []string{"rd53", "squar5", "misex1", "sqrt8", "inc", "bw", "rd73", "sao2"}
	for i := 0; i < 8; i++ {
		specs = append(specs,
			engine.JobSpec{Kind: engine.SynthTwoLevel, Benchmark: benches[i]},
			engine.JobSpec{Kind: engine.SynthMultiLevel, Benchmark: benches[i%4], MaxFanin: 2 + i})
	}
	for i := 0; i < 16; i++ {
		specs = append(specs, engine.JobSpec{
			Kind: engine.MapHBA, Benchmark: "rd53", Minimize: true,
			OpenRate: 0.10, Seed: int64(i),
		})
	}
	for i := 0; i < 16; i++ {
		algo := "HBA"
		if i%2 == 1 {
			algo = "EA"
		}
		specs = append(specs, engine.JobSpec{
			Kind: engine.MonteCarloYield, Benchmark: "rd53",
			OpenRate: 0.10, Samples: 20, Seed: int64(i), Algorithm: algo,
		})
	}
	for i := 0; i < 16; i++ {
		specs = append(specs, engine.JobSpec{
			Kind: engine.MonteCarloYield, Benchmark: "misex1",
			OpenRate: 0.10, Samples: 20, Seed: int64(i), Algorithm: "HBA",
		})
	}
	return specs
}

// BenchmarkEngineMixedBatch64 is the engine's headline number: a 64-job
// mixed batch through a single-worker pool versus a full-width pool. On a
// machine with >= 4 cores the parallel variant completes the batch at least
// 2x faster; the result cache is disabled so both variants do all the work.
func BenchmarkEngineMixedBatch64(b *testing.B) {
	specs := engineMixedBatch()
	if len(specs) != 64 {
		b.Fatalf("batch has %d jobs, want 64", len(specs))
	}
	run := func(b *testing.B, workers int) {
		e := engine.New(engine.Options{Workers: workers, CacheSize: -1})
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, err := e.Run(context.Background(), specs)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range results {
				if r.Err != "" {
					b.Fatalf("job %s: %s", r.ID, r.Err)
				}
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, runtime.GOMAXPROCS(0)) })
}

// ---------------------------------------------------------------------------
// Micro-benches for the algorithm kernels.

// BenchmarkMunkres times the assignment kernel at Table II scale (a 300x300
// binary matching matrix).
func BenchmarkMunkres(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 300
	forbidden := make([][]bool, n)
	for i := range forbidden {
		forbidden[i] = make([]bool, n)
		for j := range forbidden[i] {
			forbidden[i][j] = rng.Float64() < 0.4
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := munkres.SolveBinary(forbidden); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComplement times unate-recursive complementation on rd73.
func BenchmarkComplement(b *testing.B) {
	c, _ := suite.ByName("rd73")
	cov := c.Build().OutputCover(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov.Complement()
	}
}

// BenchmarkMinimize times the espresso-style loop on sqrt8's minterms.
func BenchmarkMinimize(b *testing.B) {
	c, _ := suite.ByName("sqrt8")
	cov := c.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		minimize.Minimize(cov, minimize.Options{MaxIterations: 2})
	}
}

// BenchmarkRandFunc times random function generation (the Fig. 6 workload
// generator).
func BenchmarkRandFunc(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < b.N; i++ {
		if _, err := randfunc.Generate(randfunc.Params{Inputs: 12}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDefectGenerate times defect-map sampling at alu4 scale.
func BenchmarkDefectGenerate(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < b.N; i++ {
		if _, err := defect.Generate(583, 44, defect.Params{POpen: 0.10}, rng); err != nil {
			b.Fatal(err)
		}
	}
}
