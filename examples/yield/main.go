// Yield exploration (the paper's Section VI future-work direction): sweep
// redundant spare rows against stuck-open defect rates and measure how often
// the hybrid algorithm still finds a valid mapping for rd53.
package main

import (
	"fmt"
	"log"

	memxbar "repro"
)

func main() {
	f, err := memxbar.Benchmark("rd53")
	if err != nil {
		log.Fatal(err)
	}
	f = f.Minimize()
	design, err := memxbar.SynthesizeTwoLevel(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rd53 minimized: %dx%d area=%d\n\n", design.Rows(), design.Cols(), design.Area())

	const samples = 200
	rates := []float64{0.05, 0.10, 0.15, 0.20}
	spares := []int{0, 1, 2, 4, 8}

	fmt.Printf("%-10s", "spares\\rate")
	for _, r := range rates {
		fmt.Printf("  %5.0f%%", r*100)
	}
	fmt.Println()
	for _, spare := range spares {
		fmt.Printf("%-10d", spare)
		for _, rate := range rates {
			ok := 0
			for s := 0; s < samples; s++ {
				dm, err := memxbar.GenerateDefects(
					design.Rows()+spare, design.Cols(), rate, 0,
					int64(spare*100_000+s)+int64(rate*1e6))
				if err != nil {
					log.Fatal(err)
				}
				m, err := design.MapDefects(dm, memxbar.HBA)
				if err != nil {
					log.Fatal(err)
				}
				if m.Valid {
					ok++
				}
			}
			fmt.Printf("  %5.0f%%", 100*float64(ok)/samples)
		}
		fmt.Println()
	}
	fmt.Println("\nPsucc of HBA; spare rows are redundant horizontal lines beyond the optimum size.")
	fmt.Println("Redundancy recovers yield lost to higher defect rates, quantifying Section VI.")
}
