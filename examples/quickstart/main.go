// Quickstart: synthesize the paper's running example
// f = x1 + x2 + x3 + x4 + x5·x6·x7·x8 both ways (Figs. 3 and 5), compare
// areas, and verify both designs by simulating the crossbar state machine.
package main

import (
	"fmt"
	"log"

	memxbar "repro"
)

func main() {
	f, err := memxbar.ParseFunction(8, 1,
		"1-------",
		"-1------",
		"--1-----",
		"---1----",
		"----1111",
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("f = x1 + x2 + x3 + x4 + x5·x6·x7·x8")
	fmt.Printf("inputs=%d outputs=%d products=%d\n\n", f.Inputs(), f.Outputs(), f.Products())

	two, err := memxbar.SynthesizeTwoLevel(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-level design (Fig. 3):   %dx%d, area %d, IR %.0f%%\n",
		two.Rows(), two.Cols(), two.Area(), 100*two.InclusionRatio())
	fmt.Print(two.Render())

	multi, err := memxbar.SynthesizeMultiLevel(f, memxbar.MultiLevelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmulti-level design (Fig. 5): %dx%d, area %d, IR %.0f%%\n",
		multi.Rows(), multi.Cols(), multi.Area(), 100*multi.InclusionRatio())
	fmt.Print(multi.Render())

	fmt.Printf("\narea saving: %d -> %d (%.0f%% of two-level)\n",
		two.Area(), multi.Area(), 100*float64(multi.Area())/float64(two.Area()))

	// The dual optimization: f̄ has 4 products, so implementing the
	// complement is even cheaper than the direct two-level design.
	dual, usedComplement, err := memxbar.SynthesizeDual(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dual choice: area %d (complement chosen: %v)\n\n", dual.Area(), usedComplement)

	// Verify both fabrics against the function on every input.
	for i := 0; i < 256; i++ {
		x := make([]bool, 8)
		for k := range x {
			x[k] = i&(1<<uint(k)) != 0
		}
		want := f.Eval(x)[0]
		ya, err := two.Simulate(x)
		if err != nil {
			log.Fatal(err)
		}
		yb, err := multi.Simulate(x)
		if err != nil {
			log.Fatal(err)
		}
		if ya[0] != want || yb[0] != want {
			log.Fatalf("simulation mismatch at input %08b", i)
		}
	}
	fmt.Println("verified: both crossbar designs compute f on all 256 inputs")
}
