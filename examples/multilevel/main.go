// Multi-level synthesis on a benchmark circuit: factor sqrt8 (floor square
// root of an 8-bit value) into a NAND network, place it on the multi-level
// crossbar, compare against the two-level design, and spot-check the
// sequential gate-by-gate evaluation.
package main

import (
	"fmt"
	"log"

	memxbar "repro"
)

func main() {
	f, err := memxbar.Benchmark("sqrt8")
	if err != nil {
		log.Fatal(err)
	}
	f = f.Minimize()
	fmt.Printf("sqrt8: inputs=%d outputs=%d products(minimized)=%d\n",
		f.Inputs(), f.Outputs(), f.Products())

	two, err := memxbar.SynthesizeTwoLevel(f)
	if err != nil {
		log.Fatal(err)
	}
	multi, err := memxbar.SynthesizeMultiLevel(f, memxbar.MultiLevelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-level:   %dx%d area=%d\n", two.Rows(), two.Cols(), two.Area())
	fmt.Printf("multi-level: %dx%d area=%d\n", multi.Rows(), multi.Cols(), multi.Area())
	fmt.Println("(multi-output circuits usually favour two-level, matching Table I)")

	// A bounded-fanin variant, as if the fabric limited NAND width to 4.
	narrow, err := memxbar.SynthesizeMultiLevel(f, memxbar.MultiLevelOptions{MaxFanin: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-level (fan-in <= 4): %dx%d area=%d\n", narrow.Rows(), narrow.Cols(), narrow.Area())

	// Verify all three designs compute floor(sqrt(x)) for every byte.
	for v := 0; v < 256; v++ {
		x := make([]bool, 8)
		for i := range x {
			x[i] = v&(1<<uint(i)) != 0
		}
		want := 0
		for (want+1)*(want+1) <= v {
			want++
		}
		for name, d := range map[string]*memxbar.Design{"two": two, "multi": multi, "narrow": narrow} {
			y, err := d.Simulate(x)
			if err != nil {
				log.Fatal(err)
			}
			got := 0
			for j := 0; j < 4; j++ {
				if y[j] {
					got |= 1 << uint(j)
				}
			}
			if got != want {
				log.Fatalf("%s design: sqrt(%d) = %d, want %d", name, v, got, want)
			}
		}
	}
	fmt.Println("verified: all three designs compute floor(sqrt(x)) for all 256 bytes")

	// The structural stand-in phenomenon: deep single-output functions are
	// where multi-level wins big (the t481/cordic rows of Table I).
	x16, err := memxbar.Benchmark("rd73")
	if err != nil {
		log.Fatal(err)
	}
	d2, _ := memxbar.SynthesizeTwoLevel(x16)
	d3, err := memxbar.SynthesizeMultiLevel(x16, memxbar.MultiLevelOptions{Minimize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrd73 for contrast: two-level area=%d, multi-level area=%d\n", d2.Area(), d3.Area())
}
