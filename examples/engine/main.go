// Example engine: compile a mixed batch through the parallel compilation
// engine and stream results as they finish.
//
// The batch mixes the paper's workloads — two-level and multi-level
// synthesis of Table I circuits, one defect mapping, and a Table II-style
// Monte Carlo yield job — and includes a duplicate job to show the result
// cache deduplicating identical work.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	memxbar "repro"
)

func main() {
	eng := memxbar.NewEngine(memxbar.EngineOptions{DefaultTimeout: time.Minute})
	defer eng.Close()

	jobs := []memxbar.Job{
		{Kind: memxbar.JobSynthTwoLevel, Benchmark: "rd53"},
		{Kind: memxbar.JobSynthMultiLevel, Benchmark: "rd53"},
		{Kind: memxbar.JobSynthTwoLevel, Benchmark: "sqrt8", Minimize: true},
		{Kind: memxbar.JobMapHBA, Benchmark: "rd53", OpenRate: 0.10, Seed: 7},
		{Kind: memxbar.JobMonteCarloYield, Benchmark: "rd53",
			OpenRate: 0.10, Samples: 50, Seed: 2018, Algorithm: "HBA"},
		// Identical to the previous job: served from the cache.
		{Kind: memxbar.JobMonteCarloYield, Benchmark: "rd53",
			OpenRate: 0.10, Samples: 50, Seed: 2018, Algorithm: "HBA"},
	}

	batch, err := eng.Submit(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}
	for r := range batch.Results {
		switch {
		case r.Err != "":
			fmt.Printf("%s %-22s error: %s\n", r.ID, r.Kind, r.Err)
		case r.Kind == memxbar.JobMonteCarloYield:
			fmt.Printf("%s %-22s Psucc=%.0f%% over %d samples (cache hit: %v)\n",
				r.ID, r.Kind, 100*r.Psucc, r.Samples, r.CacheHit)
		case r.Kind == memxbar.JobMapHBA:
			fmt.Printf("%s %-22s valid=%v backtracks=%d\n", r.ID, r.Kind, r.Valid, r.Backtracks)
		default:
			fmt.Printf("%s %-22s %dx%d area=%d\n", r.ID, r.Kind, r.Rows, r.Cols, r.Area)
		}
	}
	st := eng.Stats()
	fmt.Printf("engine: %d jobs, %d cache hits, peak concurrency %d\n",
		st.Completed, st.CacheHits, st.MaxConcurrent)
}
