// Defect tolerance walkthrough: reproduce the paper's Figs. 7 and 8 — a
// defective crossbar defeats the naive mapping, the defect-aware algorithms
// recover a valid placement, and the mapped fabric is verified by simulating
// it with its defects in place.
package main

import (
	"fmt"
	"log"

	memxbar "repro"
)

func main() {
	// O1 = x1·x2 + x̄2·x3, O2 = x̄1·x̄3 + x2·x3 (the Fig. 7/8 example).
	f, err := memxbar.ParseFunction(3, 2,
		"11- 10",
		"-01 10",
		"0-0 01",
		"-11 01",
	)
	if err != nil {
		log.Fatal(err)
	}
	design, err := memxbar.SynthesizeTwoLevel(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %dx%d (4 minterm lines + 2 output lines)\n", design.Rows(), design.Cols())
	fmt.Println("function matrix (Fig. 8a; # = required-active device):")
	fmt.Print(design.Render())

	// The stuck-open pattern of Fig. 8(b).
	dm := memxbar.NewDefectMap(design.Rows(), design.Cols())
	for _, pos := range [][2]int{
		{0, 1}, {0, 3}, {0, 8},
		{2, 0}, {2, 1},
		{3, 1}, {3, 4},
		{4, 2},
		{5, 3}, {5, 7},
	} {
		dm.SetStuckOpen(pos[0], pos[1])
	}
	fmt.Println("\ndefect map (Fig. 8b; o = stuck-open):")
	fmt.Print(dm.String())

	naive, err := design.MapDefects(dm, memxbar.Naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive mapping (Fig. 7a): valid=%v — %s\n", naive.Valid, naive.Reason)

	for _, algo := range []memxbar.Algorithm{memxbar.HBA, memxbar.Exact} {
		m, err := design.MapDefects(dm, algo)
		if err != nil {
			log.Fatal(err)
		}
		if !m.Valid {
			log.Fatalf("%s failed unexpectedly: %s", algo, m.Reason)
		}
		fmt.Printf("%s mapping (Fig. 7b): valid, assignment %v (checks=%d backtracks=%d)\n",
			algo, m.Assignment, m.MatchChecks, m.Backtracks)

		// Simulate the defective fabric under this mapping on all 8 inputs.
		for i := 0; i < 8; i++ {
			x := []bool{i&1 != 0, i&2 != 0, i&4 != 0}
			got, err := design.SimulateMapped(x, dm, m)
			if err != nil {
				log.Fatal(err)
			}
			want := f.Eval(x)
			if got[0] != want[0] || got[1] != want[1] {
				log.Fatalf("%s: mapped crossbar wrong at %v", algo, x)
			}
		}
		fmt.Printf("%s: verified on all 8 inputs despite 10 stuck-open devices\n", algo)
	}
}
