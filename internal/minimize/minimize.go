// Package minimize implements a heuristic two-level logic minimizer in the
// espresso tradition (EXPAND / IRREDUNDANT / REDUCE iteration). The paper
// relies on minimized sum-of-products covers both for the two-level crossbar
// mapping and for the "dual implementation" optimization, where the smaller
// of f and f̄ is implemented.
package minimize

import (
	"sort"

	"repro/internal/logic"
)

// Options tunes the minimization loop.
type Options struct {
	// MaxIterations bounds the expand/irredundant/reduce loop. Zero means
	// the default of 4.
	MaxIterations int
	// SkipReduce disables the REDUCE phase (single-pass expand+irredundant),
	// trading quality for speed on very large covers.
	SkipReduce bool
	// MaxSharpCubes bounds the intermediate cover size used when reducing a
	// cube; above it, the reduce step for that cube is skipped. Zero means
	// the default of 4096.
	MaxSharpCubes int
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 4
	}
	if o.MaxSharpCubes == 0 {
		o.MaxSharpCubes = 4096
	}
	return o
}

// Minimize heuristically minimizes a multi-output cover output-by-output and
// re-merges the results, sharing identical product terms across outputs.
// The returned cover computes the same function.
func Minimize(c *logic.Cover, opt Options) *logic.Cover {
	if c.NumOut == 1 {
		return MinimizeSingle(c, opt)
	}
	per := make([]*logic.Cover, c.NumOut)
	for j := 0; j < c.NumOut; j++ {
		per[j] = MinimizeSingle(c.OutputCover(j), opt)
	}
	m, err := logic.MergeOutputs(per)
	if err != nil {
		panic(err) // dimensions are consistent by construction
	}
	return m
}

// MinimizeSingle minimizes a single-output cover.
func MinimizeSingle(f *logic.Cover, opt Options) *logic.Cover {
	opt = opt.withDefaults()
	if f.NumOut != 1 {
		panic("minimize: MinimizeSingle requires a single-output cover")
	}
	cur := f.Clone()
	cur.RemoveDuplicates()
	cur.SingleOutputContained()
	if cur.IsEmpty() {
		return cur
	}
	off := cur.Complement() // OFF-set; the covers in this repo are completely specified
	if off.IsEmpty() {
		// Tautology: the universe cube is the minimum cover.
		u := logic.NewCover(f.NumIn, 1)
		cube := logic.NewCube(f.NumIn, 1)
		cube.Out[0] = true
		u.Cubes = append(u.Cubes, cube)
		return u
	}

	bestCost := coverCost(cur)
	best := cur.Clone()
	for iter := 0; iter < opt.MaxIterations; iter++ {
		expand(cur, off)
		irredundant(cur)
		cost := coverCost(cur)
		if cost < bestCost {
			bestCost = cost
			best = cur.Clone()
		}
		if opt.SkipReduce {
			break
		}
		reduced := reduce(cur, opt)
		if !reduced {
			break
		}
	}
	return best
}

// coverCost is the primary/secondary objective: product count then literals.
func coverCost(c *logic.Cover) int {
	return c.NumProducts()*10_000 + c.TotalLiterals()
}

// expand grows every cube maximally against the OFF-set, then deletes cubes
// contained in other cubes. Cubes are processed largest-first so big primes
// swallow small ones.
func expand(c *logic.Cover, off *logic.Cover) {
	sort.SliceStable(c.Cubes, func(i, k int) bool {
		return c.Cubes[i].NumLiterals() < c.Cubes[k].NumLiterals()
	})
	for idx := range c.Cubes {
		c.Cubes[idx] = expandCube(c.Cubes[idx], off)
	}
	c.RemoveDuplicates()
	c.SingleOutputContained()
}

// expandCube raises literals of the cube to don't-care while the cube stays
// disjoint from the OFF-set; the result is a prime implicant. Literals whose
// removal frees the most OFF-set distance are tried first (a cheap proxy for
// the espresso expansion heuristics).
func expandCube(cube logic.Cube, off *logic.Cover) logic.Cube {
	order := literalOrder(cube, off)
	for _, i := range order {
		if cube.In[i] == logic.LitDC {
			continue
		}
		saved := cube.In[i]
		cube.In[i] = logic.LitDC
		if intersectsCover(cube, off) {
			cube.In[i] = saved
		}
	}
	return cube
}

// literalOrder ranks fixed literal positions: positions that conflict with
// the most OFF-set cubes are kept longest (they are doing the most blocking
// work), so we attempt to raise the least-loaded literals first.
func literalOrder(cube logic.Cube, off *logic.Cover) []int {
	type litScore struct{ pos, score int }
	scores := make([]litScore, 0, len(cube.In))
	for i, v := range cube.In {
		if v == logic.LitDC {
			continue
		}
		blocking := 0
		for _, r := range off.Cubes {
			w := r.In[i]
			if w != logic.LitDC && w != v {
				blocking++
			}
		}
		scores = append(scores, litScore{i, blocking})
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].score < scores[b].score })
	order := make([]int, len(scores))
	for k, s := range scores {
		order[k] = s.pos
	}
	return order
}

func intersectsCover(cube logic.Cube, cover *logic.Cover) bool {
	for _, r := range cover.Cubes {
		if cube.Distance(r) == 0 {
			return true
		}
	}
	return false
}

// irredundant greedily removes cubes that are covered by the rest of the
// cover, visiting the largest cubes last so the survivors tend to be primes.
func irredundant(c *logic.Cover) {
	// Visit smallest cubes first: they are the most likely to be redundant.
	order := make([]int, len(c.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return c.Cubes[order[a]].NumLiterals() > c.Cubes[order[b]].NumLiterals()
	})
	removed := make([]bool, len(c.Cubes))
	for _, i := range order {
		rest := logic.NewCover(c.NumIn, 1)
		for k, cube := range c.Cubes {
			if k == i || removed[k] {
				continue
			}
			rest.Cubes = append(rest.Cubes, cube)
		}
		if rest.CoversCube(c.Cubes[i]) {
			removed[i] = true
		}
	}
	keep := c.Cubes[:0]
	for k, cube := range c.Cubes {
		if !removed[k] {
			keep = append(keep, cube)
		}
	}
	c.Cubes = keep
}

// reduce shrinks each cube to the supercube of the part of the ON-set only
// it covers, enabling the next expand pass to grow in a different direction.
// Reports whether any cube changed.
func reduce(c *logic.Cover, opt Options) bool {
	changed := false
	for i := range c.Cubes {
		rest := logic.NewCover(c.NumIn, 1)
		for k, cube := range c.Cubes {
			if k != i {
				rest.Cubes = append(rest.Cubes, cube)
			}
		}
		own := uniquePart(c.Cubes[i], rest, opt.MaxSharpCubes)
		if own == nil {
			continue // bounded out; keep the cube as is
		}
		if own.IsEmpty() {
			continue // fully redundant; irredundant will handle it
		}
		shrunk := own.Cubes[0]
		for _, cube := range own.Cubes[1:] {
			shrunk = shrunk.Supercube(cube)
		}
		if shrunk.String() != c.Cubes[i].String() {
			c.Cubes[i] = shrunk
			changed = true
		}
	}
	return changed
}

// uniquePart computes cube # rest as a disjoint cover, or nil when the
// intermediate size exceeds maxCubes.
func uniquePart(cube logic.Cube, rest *logic.Cover, maxCubes int) *logic.Cover {
	cur := logic.NewCover(len(cube.In), 1)
	cur.Cubes = append(cur.Cubes, cube)
	for _, r := range rest.Cubes {
		cur = cur.Sharp(r)
		if len(cur.Cubes) > maxCubes {
			return nil
		}
		if cur.IsEmpty() {
			break
		}
	}
	return cur
}
