package minimize

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

func TestMinimizeKeepsFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(6)
		f := randomSingle(rng, n, 1+rng.Intn(12))
		m := MinimizeSingle(f, Options{})
		ok, err := logic.Equivalent(f, m, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("minimization changed the function\nbefore:\n%v\nafter:\n%v", f, m)
		}
		if coverCost(m) > coverCost(f) {
			t.Fatalf("minimization increased cost: %d -> %d", coverCost(f), coverCost(m))
		}
	}
}

func TestMinimizeMintermExplosion(t *testing.T) {
	// All 16 minterms of a 4-input tautology must collapse to the universe.
	tt := make([]bool, 16)
	for i := range tt {
		tt[i] = true
	}
	f, err := logic.FromTruthTable(4, tt)
	if err != nil {
		t.Fatal(err)
	}
	m := MinimizeSingle(f, Options{})
	if m.NumProducts() != 1 || m.Cubes[0].NumLiterals() != 0 {
		t.Errorf("tautology should minimize to the universe cube, got\n%v", m)
	}
}

func TestMinimizeXor(t *testing.T) {
	// XOR of 3 variables: 4 minterms, already minimum. The minimizer must
	// not break it and must not grow it.
	f := logic.MustParseCover(3, 1, "100", "010", "001", "111")
	m := MinimizeSingle(f, Options{})
	if m.NumProducts() != 4 {
		t.Errorf("3-input XOR minimum is 4 products, got %d", m.NumProducts())
	}
	ok, _ := logic.Equivalent(f, m, 0, nil)
	if !ok {
		t.Error("XOR function changed")
	}
}

func TestMinimizeAbsorption(t *testing.T) {
	// x1 + x1·x2 + x1·x2·x3 should collapse to x1.
	f := logic.MustParseCover(3, 1, "1--", "11-", "111")
	m := MinimizeSingle(f, Options{})
	if m.NumProducts() != 1 {
		t.Errorf("absorption should give a single product, got\n%v", m)
	}
}

func TestMinimizeMergesAdjacent(t *testing.T) {
	// x1·x2 + x1·x̄2 = x1.
	f := logic.MustParseCover(2, 1, "11", "10")
	m := MinimizeSingle(f, Options{})
	if m.NumProducts() != 1 || m.Cubes[0].NumLiterals() != 1 {
		t.Errorf("adjacent minterms should merge, got\n%v", m)
	}
}

func TestMinimizeFromAllMinterms(t *testing.T) {
	// Recover a compact cover from the full minterm expansion of the paper's
	// running example f = x1+x2+x3+x4+x5x6x7x8 restricted to 5 variables:
	// f = x1+x2+x3 on 3 of 5 vars plus a long product.
	g := logic.MustParseCover(5, 1, "1----", "-1---", "--111")
	tt := g.TruthTable(0)
	f, err := logic.FromTruthTable(5, tt)
	if err != nil {
		t.Fatal(err)
	}
	m := MinimizeSingle(f, Options{})
	ok, _ := logic.Equivalent(g, m, 0, nil)
	if !ok {
		t.Fatal("function changed")
	}
	if m.NumProducts() != 3 {
		t.Errorf("expected recovery of 3 products, got %d:\n%v", m.NumProducts(), m)
	}
}

func TestMinimizeMultiOutputSharing(t *testing.T) {
	f := logic.MustParseCover(3, 2,
		"110 10",
		"111 10",
		"110 01",
		"111 01",
	)
	m := Minimize(f, Options{})
	ok, _ := logic.Equivalent(f, m, 0, nil)
	if !ok {
		t.Fatal("function changed")
	}
	// Both outputs are x1·x2; the merged cover must share one product.
	if m.NumProducts() != 1 {
		t.Errorf("shared product not fused, got %d products:\n%v", m.NumProducts(), m)
	}
}

func TestMinimizeEmptyAndConstant(t *testing.T) {
	empty := logic.NewCover(3, 1)
	m := MinimizeSingle(empty, Options{})
	if !m.IsEmpty() {
		t.Error("constant 0 must stay empty")
	}
}

func TestOptionsSkipReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		f := randomSingle(rng, 5, 6)
		m := MinimizeSingle(f, Options{SkipReduce: true})
		ok, _ := logic.Equivalent(f, m, 0, nil)
		if !ok {
			t.Fatal("SkipReduce changed the function")
		}
	}
}

func TestMinimizeSinglePanicsOnMultiOutput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinimizeSingle must panic on multi-output input")
		}
	}()
	MinimizeSingle(logic.NewCover(3, 2), Options{})
}

func randomSingle(rng *rand.Rand, nIn, nCubes int) *logic.Cover {
	c := logic.NewCover(nIn, 1)
	for k := 0; k < nCubes; k++ {
		cube := logic.NewCube(nIn, 1)
		cube.Out[0] = true
		for i := range cube.In {
			switch rng.Intn(4) {
			case 0:
				cube.In[i] = logic.LitNeg
			case 1:
				cube.In[i] = logic.LitPos
			default:
				cube.In[i] = logic.LitDC
			}
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}
