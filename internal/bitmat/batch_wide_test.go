package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMatchRowAgainstWidths sweeps the kernel across the widths that exercise
// every dispatch and tail combination — single-word, exactly one word,
// word-straddling, two words, and beyond — at several densities, with row
// counts that leave 0..7 rows for the tail loop. Deterministic complement to
// the quick/fuzz properties.
func TestMatchRowAgainstWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, cols := range []int{63, 64, 65, 127, 128, 129} {
		for _, rows := range []int{1, 7, 8, 9, 63, 64, 65, 127, 128, 129} {
			for _, density := range []float64{0.0, 0.35, 0.9, 1.0} {
				cm := randMatrix(rng, rows, cols, density)
				fm := NewRow(cols)
				for c := 0; c < cols; c++ {
					if rng.Float64() < 0.3 {
						fm.Set(c)
					}
				}
				got, want := NewRow(rows), NewRow(rows)
				MatchRowAgainst(fm, cm, got)
				matchRowAgainstScalar(fm, cm, want)
				if !Equal(got, want) {
					t.Fatalf("%dx%d density %.2f: wide kernel disagrees with scalar", rows, cols, density)
				}
			}
		}
	}
}

// TestMatchSingleAndMultiWordAgree pins the two portable kernels against each
// other on the one width both can express semantically: a w-word kernel run
// on <=64 columns must equal the single-word fast path.
func TestMatchSingleAndMultiWordAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(130)
		cols := 1 + rng.Intn(64)
		cm := randMatrix(rng, rows, cols, 0.8)
		fm := NewRow(cols)
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.3 {
				fm.Set(c)
			}
		}
		single, multi := NewRow(rows), NewRow(rows)
		matchSingleWordPortable(fm[0], cm.bits, single, rows)
		matchMultiWordPortable(fm, cm.bits, multi, rows, cm.words)
		if !Equal(single, multi) {
			t.Fatalf("trial %d (%dx%d): single-word and multi-word kernels disagree", trial, rows, cols)
		}
	}
}

// TestTransposeUpdateQuick is the incremental-transpose property: after a
// random sequence of bit mutations to the source, TransposeUpdate applied
// with the exact dirty row/column masks reproduces, block for block, what a
// full TransposeInto of the mutated source builds.
func TestTransposeUpdateQuick(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{1, 2, 63, 64, 65, 120, 128, 130}
		rows := dims[rng.Intn(len(dims))]
		cols := dims[rng.Intn(len(dims))]
		m := randMatrix(rng, rows, cols, 0.4)
		view := TransposeInto(nil, m)

		dirtyRows, dirtyCols := NewRow(rows), NewRow(cols)
		for n := rng.Intn(20); n > 0; n-- {
			r, c := rng.Intn(rows), rng.Intn(cols)
			if rng.Intn(2) == 0 {
				m.Set(r, c)
			} else {
				m.Clear(r, c)
			}
			dirtyRows.Set(r)
			dirtyCols.Set(c)
		}
		TransposeUpdate(view, m, dirtyRows, dirtyCols)

		want := TransposeInto(nil, m)
		for c := 0; c < cols; c++ {
			if !Equal(view.Row(c), want.Row(c)) {
				t.Logf("seed %d (%dx%d): incremental view wrong at column %d", seed, rows, cols, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTransposeUpdateDimMismatch pins the desync guard: refreshing a view
// whose shape does not match the source must panic, not silently corrupt.
func TestTransposeUpdateDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TransposeUpdate accepted a mismatched view")
		}
	}()
	m := New(10, 20)
	TransposeUpdate(New(10, 20), m, NewRow(10), NewRow(20))
}

// FuzzMatchRowAgainst drives the wide kernel with fuzz-shaped matrices and
// rows, checking it against the scalar reference. The corpus seeds cover the
// word-boundary widths; the fuzzer mutates dimensions, density, and content.
func FuzzMatchRowAgainst(f *testing.F) {
	f.Add(int64(1), uint16(300), uint16(44), 0.8, 0.3)
	for _, w := range []uint16{63, 64, 65, 127, 128, 129} {
		f.Add(int64(w), w, w, 0.5, 0.5)
	}
	f.Fuzz(func(t *testing.T, seed int64, rows, cols uint16, cmDensity, fmDensity float64) {
		nr := int(rows%512) + 1
		nc := int(cols%512) + 1
		if cmDensity < 0 || cmDensity > 1 {
			cmDensity = 0.5
		}
		if fmDensity < 0 || fmDensity > 1 {
			fmDensity = 0.5
		}
		rng := rand.New(rand.NewSource(seed))
		cm := randMatrix(rng, nr, nc, cmDensity)
		fm := NewRow(nc)
		for c := 0; c < nc; c++ {
			if rng.Float64() < fmDensity {
				fm.Set(c)
			}
		}
		got, want := NewRow(nr), NewRow(nr)
		MatchRowAgainst(fm, cm, got)
		matchRowAgainstScalar(fm, cm, want)
		if !Equal(got, want) {
			t.Fatalf("%dx%d: wide kernel disagrees with scalar reference", nr, nc)
		}
	})
}
