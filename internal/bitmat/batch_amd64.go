//go:build amd64 && !purego

package bitmat

// Hand-scheduled amd64 kernels. Build with -tags purego to force the
// portable implementations on amd64 too (that is the CI fallback leg).

// KernelVariant names the row-matching kernel compiled into this binary.
func KernelVariant() string { return "amd64" }

//xbar:hotpath
func matchSingleWord(f uint64, bits []uint64, out Row, rows int) {
	matchSingleWordWide(f, bits, out, rows)
}

//xbar:hotpath
func matchMultiWord(fm Row, bits []uint64, out Row, rows, w int) {
	matchMultiWordPortable(fm, bits, out, rows, w)
}

// matchSingleWordWide is the hand-scheduled single-word kernel: it retires a
// full 64-row output word per outer iteration, accumulating the eight octets
// in a register and storing once — the portable kernel's eight per-octet
// read-modify-writes of out[j>>6] collapse into a single MOVQ. The subset
// tests keep the comparison form the compiler lowers to TESTQ+SETEQ (flag
// ops, no branches), so throughput stays density-independent. Parity with
// matchSingleWordPortable is pinned by TestMatchSingleWordVariantsAgree.
//
//xbar:hotpath
func matchSingleWordWide(f uint64, bits []uint64, out Row, rows int) {
	full := rows &^ 63
	for base := 0; base < full; base += 64 {
		blk := bits[base : base+64 : base+64]
		var w uint64
		for k := 0; k < 64; k += 8 {
			var oct uint64
			if f&^blk[k] == 0 {
				oct = 1
			}
			if f&^blk[k+1] == 0 {
				oct |= 1 << 1
			}
			if f&^blk[k+2] == 0 {
				oct |= 1 << 2
			}
			if f&^blk[k+3] == 0 {
				oct |= 1 << 3
			}
			if f&^blk[k+4] == 0 {
				oct |= 1 << 4
			}
			if f&^blk[k+5] == 0 {
				oct |= 1 << 5
			}
			if f&^blk[k+6] == 0 {
				oct |= 1 << 6
			}
			if f&^blk[k+7] == 0 {
				oct |= 1 << 7
			}
			w |= oct << uint(k)
		}
		// out is zeroed by MatchRowAgainst, so a plain store suffices.
		out[base>>6] = w
	}
	// Tail rows (< 64) via the portable 8-wide + scalar path.
	if full < rows {
		matchSingleWordPortable(f, bits[full:rows], out[full>>6:], rows-full)
	}
}
