package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randMatrix fills a rows × cols matrix with density-p random bits.
func randMatrix(rng *rand.Rand, rows, cols int, p float64) *Matrix {
	m := New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < p {
				m.Set(r, c)
			}
		}
	}
	return m
}

// TestMatchRowAgainstQuick is the batch-kernel property: on random FM rows
// and CM matrices — widths straddling word boundaries included — the 8-wide
// kernel agrees bit for bit with the one-row-at-a-time SubsetOf reference,
// and the output obeys the packed-row contract.
func TestMatchRowAgainstQuick(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{1, 3, 63, 64, 65, 100, 127, 128, 129}
		rows := dims[rng.Intn(len(dims))]
		cols := dims[rng.Intn(len(dims))]
		cm := randMatrix(rng, rows, cols, 0.8)
		fm := NewRow(cols)
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.3 {
				fm.Set(c)
			}
		}
		got, want := NewRow(rows), NewRow(rows)
		MatchRowAgainst(fm, cm, got)
		matchRowAgainstScalar(fm, cm, want)
		if !Equal(got, want) {
			t.Logf("seed %d: %dx%d batch/scalar disagree", seed, rows, cols)
			return false
		}
		for j := 0; j < rows; j++ {
			if got.Get(j) != SubsetOf(fm, cm.Row(j)) {
				t.Logf("seed %d: row %d wrong", seed, j)
				return false
			}
		}
		// Packed-row contract: no garbage bits past rows.
		if rem := rows % 64; rem != 0 && got[len(got)-1]>>uint(rem) != 0 {
			t.Logf("seed %d: trailing garbage bits", seed)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchRowAgainstOverwrites pins that out is fully overwritten, not
// OR-folded into.
func TestMatchRowAgainstOverwrites(t *testing.T) {
	cm := New(5, 10)
	cm.Fill()
	cm.Clear(2, 3)
	fm := NewRow(10)
	fm.Set(3)
	out := NewRow(5)
	out.Fill(5) // stale garbage
	MatchRowAgainst(fm, cm, out)
	for j := 0; j < 5; j++ {
		if out.Get(j) != (j != 2) {
			t.Fatalf("row %d: got %v", j, out.Get(j))
		}
	}
}

func TestMatchRowAgainstZeroCols(t *testing.T) {
	cm := New(7, 0)
	out := NewRow(7)
	MatchRowAgainst(NewRow(0), cm, out)
	if PopCount(out) != 7 {
		t.Fatalf("zero-column FM must match every row, got %d of 7", PopCount(out))
	}
}

// TestTransposeQuick is the column-major property: TransposeInto(m) viewed
// with Get agrees with the row-major source at every (r, c), across widths
// straddling word boundaries, and reusing the destination matrix across
// shrinking and growing shapes stays correct.
func TestTransposeQuick(t *testing.T) {
	var scratch *Matrix
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{1, 2, 63, 64, 65, 120, 128, 130}
		rows := dims[rng.Intn(len(dims))]
		cols := dims[rng.Intn(len(dims))]
		m := randMatrix(rng, rows, cols, 0.4)
		scratch = TransposeInto(scratch, m)
		if scratch.Rows != cols || scratch.Cols != rows {
			t.Logf("seed %d: transpose is %dx%d, want %dx%d", seed, scratch.Rows, scratch.Cols, cols, rows)
			return false
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if m.Get(r, c) != scratch.Get(c, r) {
					t.Logf("seed %d: mismatch at (%d,%d)", seed, r, c)
					return false
				}
			}
		}
		// Contract: each column row has no bits past the source row count.
		for c := 0; c < cols; c++ {
			row := scratch.Row(c)
			if rem := rows % 64; rem != 0 && row[len(row)-1]>>uint(rem) != 0 {
				t.Logf("seed %d: column %d has trailing garbage", seed, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTransposeRoundTrip pins transpose(transpose(m)) == m.
func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dim := range [][2]int{{5, 5}, {64, 64}, {65, 63}, {130, 70}} {
		m := randMatrix(rng, dim[0], dim[1], 0.5)
		back := Transpose(Transpose(m))
		for r := 0; r < dim[0]; r++ {
			if !Equal(m.Row(r), back.Row(r)) {
				t.Fatalf("%v: round trip broke row %d", dim, r)
			}
		}
	}
}

// TestRowIterators cross-checks NextSet / NextAndNot / AndNot / Fill against
// the naive per-column loops.
func TestRowIterators(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		cols := 1 + rng.Intn(200)
		a, b := NewRow(cols), NewRow(cols)
		for c := 0; c < cols; c++ {
			if rng.Intn(2) == 0 {
				a.Set(c)
			}
			if rng.Intn(2) == 0 {
				b.Set(c)
			}
		}
		from := rng.Intn(cols + 2)
		wantSet, wantAndNot := -1, -1
		for c := from; c < cols; c++ {
			if a.Get(c) && wantSet < 0 {
				wantSet = c
			}
			if a.Get(c) && !b.Get(c) && wantAndNot < 0 {
				wantAndNot = c
			}
		}
		if got := a.NextSet(from); got != wantSet {
			t.Fatalf("trial %d: NextSet(%d) = %d, want %d", trial, from, got, wantSet)
		}
		if got := NextAndNot(a, b, from); got != wantAndNot {
			t.Fatalf("trial %d: NextAndNot(%d) = %d, want %d", trial, from, got, wantAndNot)
		}
		u := NewRow(cols)
		copy(u, a)
		u.AndNot(b)
		for c := 0; c < cols; c++ {
			if u.Get(c) != (a.Get(c) && !b.Get(c)) {
				t.Fatalf("trial %d: AndNot mismatch at %d", trial, c)
			}
		}
		f := NewRow(cols)
		n := rng.Intn(cols + 1)
		f.Fill(n)
		if PopCount(f) != n {
			t.Fatalf("trial %d: Fill(%d) set %d bits", trial, n, PopCount(f))
		}
		if n < cols && f.Get(n) {
			t.Fatalf("trial %d: Fill(%d) set bit %d", trial, n, n)
		}
	}
}

// TestReshapeReuse pins that Reshape reuses capacity and zeroes stale bits.
func TestReshapeReuse(t *testing.T) {
	m := New(10, 100)
	m.Fill()
	backing := &m.bits[0]
	m.Reshape(4, 60)
	if m.Rows != 4 || m.Cols != 60 || m.words != 1 {
		t.Fatalf("reshape dims wrong: %+v", m)
	}
	if &m.bits[0] != backing {
		t.Fatal("reshape reallocated despite sufficient capacity")
	}
	for r := 0; r < 4; r++ {
		if m.Row(r).Any() {
			t.Fatalf("reshape left stale bits in row %d", r)
		}
	}
}

// BenchmarkMatchRowKernel measures candidate-bitset construction — one FM
// row against a 300-row CM — with the 8-wide batch kernel versus the
// per-pair SubsetOf loop it replaces.
func BenchmarkMatchRowKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const rows, cols = 300, 44 // alu4-scale fabric
	cm := randMatrix(rng, rows, cols, 0.9)
	fm := NewRow(cols)
	for c := 0; c < cols; c++ {
		if rng.Float64() < 0.25 {
			fm.Set(c)
		}
	}
	out := NewRow(rows)
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatchRowAgainst(fm, cm, out)
		}
	})
	b.Run("perpair", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matchRowAgainstScalar(fm, cm, out)
		}
	})
}

// BenchmarkTranspose measures the 64×64 block word transpose at fabric scale.
func BenchmarkTranspose(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := randMatrix(rng, 300, 44, 0.9)
	var dst *Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = TransposeInto(dst, m)
	}
}
