//go:build !amd64 || purego

package bitmat

import "testing"

// TestKernelVariantPortable pins that non-amd64 and purego builds select the
// portable kernel, so the CI matrix visibly exercises both paths.
func TestKernelVariantPortable(t *testing.T) {
	if KernelVariant() != "portable" {
		t.Fatalf("expected portable kernel in this build, got %q", KernelVariant())
	}
}
