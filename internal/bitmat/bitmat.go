// Package bitmat provides word-packed boolean rows and matrices, the shared
// bit-matrix representation of the mapping stack. A Row packs 64 columns per
// uint64 word, so the paper's row-compatibility test — "every required-active
// device falls on a functional switch" — becomes a handful of AND-NOT word
// operations instead of a per-column scan.
//
// The packed-row contract: bit c of word c/64 (bit position c%64) represents
// column c; bits at positions >= Cols in the last word are always zero.
// Every operation below preserves that invariant, which is what lets Equal,
// PopCount, and the subset test work word-at-a-time without masking.
package bitmat

import "math/bits"

// wordBits is the packing width of one Row word.
const wordBits = 64

// Row is one word-packed boolean row: bit c of word c/64 is column c.
type Row []uint64

// Words returns the word count needed to pack cols columns.
//
//xbar:hotpath
func Words(cols int) int { return (cols + wordBits - 1) / wordBits }

// NewRow returns an all-zero packed row with capacity for cols columns.
func NewRow(cols int) Row { return make(Row, Words(cols)) }

// Get reports whether column c is set.
//
//xbar:hotpath
func (r Row) Get(c int) bool { return r[c/wordBits]&(1<<uint(c%wordBits)) != 0 }

// Set sets column c.
//
//xbar:hotpath
func (r Row) Set(c int) { r[c/wordBits] |= 1 << uint(c%wordBits) }

// Clear clears column c.
//
//xbar:hotpath
func (r Row) Clear(c int) { r[c/wordBits] &^= 1 << uint(c%wordBits) }

// Zero clears every column in place.
//
//xbar:hotpath
func (r Row) Zero() {
	for i := range r {
		r[i] = 0
	}
}

// Or folds b into r in place (r |= b). The rows must have equal length.
//
//xbar:hotpath
func (r Row) Or(b Row) {
	for i, w := range b {
		r[i] |= w
	}
}

// AndNot clears from r every column set in b (r &^= b). The rows must have
// equal length.
//
//xbar:hotpath
func (r Row) AndNot(b Row) {
	for i, w := range b {
		r[i] &^= w
	}
}

// Fill sets columns [0, n) and clears the rest (n may end anywhere inside
// the row; bits at positions >= n stay zero per the packed-row contract).
//
//xbar:hotpath
func (r Row) Fill(n int) {
	w := n / wordBits
	for i := 0; i < w; i++ {
		r[i] = ^uint64(0)
	}
	if w < len(r) {
		if rem := n % wordBits; rem != 0 {
			r[w] = (uint64(1) << uint(rem)) - 1
		} else {
			r[w] = 0
		}
		for i := w + 1; i < len(r); i++ {
			r[i] = 0
		}
	}
}

// Any reports whether any column is set.
//
//xbar:hotpath
func (r Row) Any() bool {
	for _, w := range r {
		if w != 0 {
			return true
		}
	}
	return false
}

// PopCount counts the set columns of r.
//
//xbar:hotpath
func PopCount(r Row) int {
	n := 0
	for _, w := range r {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether a and b have identical columns. The rows must have
// equal length.
//
//xbar:hotpath
func Equal(a, b Row) bool {
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	return true
}

// AndNotAny reports whether a &^ b has any set bit, i.e. whether a has a
// column that b lacks. The rows must have equal length.
//
//xbar:hotpath
func AndNotAny(a, b Row) bool {
	for i, w := range a {
		if w&^b[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every set column of a is also set in b
// (a &^ b == 0), the packed form of the paper's row-matching rule.
//
//xbar:hotpath
func SubsetOf(a, b Row) bool { return !AndNotAny(a, b) }

// FirstAnd returns the lowest column index set in both a and b, or -1 when
// the intersection is empty. The rows must have equal length.
//
//xbar:hotpath
func FirstAnd(a, b Row) int {
	for i, w := range a {
		if and := w & b[i]; and != 0 {
			return i*wordBits + bits.TrailingZeros64(and)
		}
	}
	return -1
}

// NextSet returns the lowest set column >= from, or -1 when none remains —
// the ascending-order iterator of the candidate-bitset enumeration loops.
//
//xbar:hotpath
func (r Row) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	i := from / wordBits
	if i >= len(r) {
		return -1
	}
	if w := r[i] >> uint(from%wordBits); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i++; i < len(r); i++ {
		if r[i] != 0 {
			return i*wordBits + bits.TrailingZeros64(r[i])
		}
	}
	return -1
}

// NextAndNot returns the lowest column >= from set in a but not in b, or -1.
// The rows must have equal length.
//
//xbar:hotpath
func NextAndNot(a, b Row, from int) int {
	if from < 0 {
		from = 0
	}
	i := from / wordBits
	if i >= len(a) {
		return -1
	}
	if w := (a[i] &^ b[i]) >> uint(from%wordBits); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i++; i < len(a); i++ {
		if w := a[i] &^ b[i]; w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Matrix is a word-packed boolean matrix stored row-major in one backing
// slice, so Row views alias contiguous memory and a whole matrix is a single
// allocation.
type Matrix struct {
	Rows, Cols int
	words      int
	bits       []uint64
}

// New returns an all-zero rows × cols packed matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative dimensions")
	}
	w := Words(cols)
	return &Matrix{Rows: rows, Cols: cols, words: w, bits: make([]uint64, rows*w)}
}

// Row returns the packed view of row r; mutations write through.
//
//xbar:hotpath
func (m *Matrix) Row(r int) Row { return m.bits[r*m.words : (r+1)*m.words] }

// Reshape resizes m in place to an all-zero rows × cols matrix, reusing the
// backing storage when it is large enough (the scratch-reuse primitive of
// TransposeInto and the candidate-bitset buffers).
func (m *Matrix) Reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative dimensions")
	}
	w := Words(cols)
	n := rows * w
	if cap(m.bits) < n {
		m.bits = make([]uint64, n)
	}
	m.bits = m.bits[:n]
	m.Rows, m.Cols, m.words = rows, cols, w
	for i := range m.bits {
		m.bits[i] = 0
	}
}

// Get reports whether cell (r, c) is set.
//
//xbar:hotpath
func (m *Matrix) Get(r, c int) bool { return m.Row(r).Get(c) }

// Set sets cell (r, c).
//
//xbar:hotpath
func (m *Matrix) Set(r, c int) { m.Row(r).Set(c) }

// Clear clears cell (r, c).
//
//xbar:hotpath
func (m *Matrix) Clear(r, c int) { m.Row(r).Clear(c) }

// Zero clears the whole matrix in place.
//
//xbar:hotpath
func (m *Matrix) Zero() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}

// Fill sets every in-range cell, keeping the trailing bits of each row's
// last word zero (the packed-row contract).
//
//xbar:hotpath
func (m *Matrix) Fill() {
	if m.words == 0 {
		return
	}
	var last uint64
	if rem := m.Cols % wordBits; rem == 0 {
		last = ^uint64(0)
	} else {
		last = (uint64(1) << uint(rem)) - 1
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] = ^uint64(0)
		}
		row[m.words-1] = last
	}
}
