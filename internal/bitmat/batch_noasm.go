//go:build !amd64 || purego

package bitmat

// Portable kernel selection: every non-amd64 architecture, plus amd64
// builds with -tags purego (the CI leg that keeps this path exercised).

// KernelVariant names the row-matching kernel compiled into this binary.
func KernelVariant() string { return "portable" }

//xbar:hotpath
func matchSingleWord(f uint64, bits []uint64, out Row, rows int) {
	matchSingleWordPortable(f, bits, out, rows)
}

//xbar:hotpath
func matchMultiWord(fm Row, bits []uint64, out Row, rows, w int) {
	matchMultiWordPortable(fm, bits, out, rows, w)
}
