package bitmat

// Batched candidate matching: the enumeration kernel of the mapping stack.
// The per-pair test of mapping.rowMatches answers "does FM row i fit CM row
// j" for one j; the Monte Carlo loops ask it for every j. MatchRowAgainst
// answers all of them in one pass over the CM words, producing the candidate
// bitset of an FM row — bit j set iff fmRow &^ cmRow_j == 0 — which the
// mapping algorithms then enumerate with word scans instead of re-testing
// pairs.

// MatchRowAgainst computes the candidate bitset of one packed FM row against
// every row of a CM matrix: bit j of out is set iff fm is a subset of
// cm.Row(j) (fm &^ cmRow == 0, the paper's row-matching rule). fm must be
// packed for cm.Cols columns (len(fm) == Words(cm.Cols)) and out for cm.Rows
// columns (len(out) == Words(cm.Rows)); out is overwritten. The kernel
// processes four CM rows per inner iteration over the matrix words, with the
// bounds checks hoisted out of the word loop, and preserves the packed-row
// contract on out (bits at positions >= cm.Rows stay zero).
func MatchRowAgainst(fm Row, cm *Matrix, out Row) {
	for i := range out {
		out[i] = 0
	}
	rows, w := cm.Rows, cm.words
	if w == 0 {
		// A zero-column FM row is a subset of everything.
		for j := 0; j < rows; j++ {
			out.Set(j)
		}
		return
	}
	bits := cm.bits
	fm = fm[:w] // one check here buys bounds-check-free access below
	if w == 1 {
		// Single-word fabric (<= 64 columns, every Table II circuit): each CM
		// row is one word, so the candidate test is one AND-NOT and the four
		// per-iteration rows share one bounds-checked subslice.
		f := fm[0]
		j := 0
		for ; j+3 < rows; j += 4 {
			blk := bits[j : j+4 : j+4]
			var nib uint64
			if f&^blk[0] == 0 {
				nib |= 1
			}
			if f&^blk[1] == 0 {
				nib |= 2
			}
			if f&^blk[2] == 0 {
				nib |= 4
			}
			if f&^blk[3] == 0 {
				nib |= 8
			}
			if nib != 0 {
				out[j>>6] |= nib << uint(j&63)
			}
		}
		for ; j < rows; j++ {
			if f&^bits[j] == 0 {
				out[j>>6] |= 1 << uint(j&63)
			}
		}
		return
	}
	j := 0
	for ; j+3 < rows; j += 4 {
		base := j * w
		r0 := bits[base+0*w : base+1*w][:w]
		r1 := bits[base+1*w : base+2*w][:w]
		r2 := bits[base+2*w : base+3*w][:w]
		r3 := bits[base+3*w : base+4*w][:w]
		var m0, m1, m2, m3 uint64
		for k, f := range fm {
			m0 |= f &^ r0[k]
			m1 |= f &^ r1[k]
			m2 |= f &^ r2[k]
			m3 |= f &^ r3[k]
		}
		var nib uint64
		if m0 == 0 {
			nib |= 1
		}
		if m1 == 0 {
			nib |= 2
		}
		if m2 == 0 {
			nib |= 4
		}
		if m3 == 0 {
			nib |= 8
		}
		// j is a multiple of 4, so the nibble never straddles a word.
		if nib != 0 {
			out[j>>6] |= nib << uint(j&63)
		}
	}
	for ; j < rows; j++ {
		r := bits[j*w : (j+1)*w][:w]
		var m uint64
		for k, f := range fm {
			m |= f &^ r[k]
		}
		if m == 0 {
			out[j>>6] |= 1 << uint(j&63)
		}
	}
}

// matchRowAgainstScalar is the one-row-at-a-time reference the batch kernel
// is property-tested and benchmarked against.
func matchRowAgainstScalar(fm Row, cm *Matrix, out Row) {
	for i := range out {
		out[i] = 0
	}
	for j := 0; j < cm.Rows; j++ {
		if SubsetOf(fm, cm.Row(j)) {
			out.Set(j)
		}
	}
}
