package bitmat

// Batched candidate matching: the enumeration kernel of the mapping stack.
// The per-pair test of mapping.rowMatches answers "does FM row i fit CM row
// j" for one j; the Monte Carlo loops ask it for every j. MatchRowAgainst
// answers all of them in one pass over the CM words, producing the candidate
// bitset of an FM row — bit j set iff fmRow &^ cmRow_j == 0 — which the
// mapping algorithms then enumerate with word scans instead of re-testing
// pairs.
//
// The inner loops process eight CM rows per iteration with the bounds checks
// hoisted out of the word loop, and the single-word fast path (every Table II
// fabric is <= 64 columns) dispatches to a per-architecture kernel: amd64
// builds get a hand-scheduled branchless variant (batch_amd64.go), everything
// else — and any build with the purego tag — runs the portable kernel below.
// All variants are property-tested against matchRowAgainstScalar.

// MatchRowAgainst computes the candidate bitset of one packed FM row against
// every row of a CM matrix: bit j of out is set iff fm is a subset of
// cm.Row(j) (fm &^ cmRow == 0, the paper's row-matching rule). fm must be
// packed for cm.Cols columns (len(fm) == Words(cm.Cols)) and out for cm.Rows
// columns (len(out) == Words(cm.Rows)); out is overwritten, and the
// packed-row contract is preserved (bits at positions >= cm.Rows stay zero).
//
//xbar:hotpath
func MatchRowAgainst(fm Row, cm *Matrix, out Row) {
	for i := range out {
		out[i] = 0
	}
	rows, w := cm.Rows, cm.words
	if w == 0 {
		// A zero-column FM row is a subset of everything.
		for j := 0; j < rows; j++ {
			out.Set(j)
		}
		return
	}
	bits := cm.bits
	fm = fm[:w] // one check here buys bounds-check-free access below
	if w == 1 {
		matchSingleWord(fm[0], bits, out, rows)
		return
	}
	matchMultiWord(fm, bits, out, rows, w)
}

// matchSingleWordPortable is the portable single-word kernel (<= 64 fabric
// columns): each CM row is one word, so the candidate test is one AND-NOT and
// the eight per-iteration rows share one bounds-checked subslice. It is the
// !amd64/purego implementation of matchSingleWord and the reference the
// amd64 variant is parity-tested against.
//
//xbar:hotpath
func matchSingleWordPortable(f uint64, bits []uint64, out Row, rows int) {
	j := 0
	for ; j+7 < rows; j += 8 {
		blk := bits[j : j+8 : j+8]
		var oct uint64
		if f&^blk[0] == 0 {
			oct |= 1 << 0
		}
		if f&^blk[1] == 0 {
			oct |= 1 << 1
		}
		if f&^blk[2] == 0 {
			oct |= 1 << 2
		}
		if f&^blk[3] == 0 {
			oct |= 1 << 3
		}
		if f&^blk[4] == 0 {
			oct |= 1 << 4
		}
		if f&^blk[5] == 0 {
			oct |= 1 << 5
		}
		if f&^blk[6] == 0 {
			oct |= 1 << 6
		}
		if f&^blk[7] == 0 {
			oct |= 1 << 7
		}
		// j is a multiple of 8, so the octet never straddles a word.
		if oct != 0 {
			out[j>>6] |= oct << uint(j&63)
		}
	}
	for ; j < rows; j++ {
		if f&^bits[j] == 0 {
			out[j>>6] |= 1 << uint(j&63)
		}
	}
}

// matchMultiWordPortable handles fabrics wider than 64 columns: eight CM rows
// per outer iteration, one accumulator each, all eight fed from a single
// bounds-checked window over the row words so the inner loop is
// bounds-check-free. An accumulator ends zero iff its row contains the FM
// row.
//
//xbar:hotpath
func matchMultiWordPortable(fm Row, bits []uint64, out Row, rows, w int) {
	j := 0
	for ; j+7 < rows; j += 8 {
		base := j * w
		blk := bits[base : base+8*w : base+8*w]
		var m0, m1, m2, m3, m4, m5, m6, m7 uint64
		for k, f := range fm {
			m0 |= f &^ blk[k]
			m1 |= f &^ blk[w+k]
			m2 |= f &^ blk[2*w+k]
			m3 |= f &^ blk[3*w+k]
			m4 |= f &^ blk[4*w+k]
			m5 |= f &^ blk[5*w+k]
			m6 |= f &^ blk[6*w+k]
			m7 |= f &^ blk[7*w+k]
		}
		var oct uint64
		if m0 == 0 {
			oct |= 1 << 0
		}
		if m1 == 0 {
			oct |= 1 << 1
		}
		if m2 == 0 {
			oct |= 1 << 2
		}
		if m3 == 0 {
			oct |= 1 << 3
		}
		if m4 == 0 {
			oct |= 1 << 4
		}
		if m5 == 0 {
			oct |= 1 << 5
		}
		if m6 == 0 {
			oct |= 1 << 6
		}
		if m7 == 0 {
			oct |= 1 << 7
		}
		if oct != 0 {
			out[j>>6] |= oct << uint(j&63)
		}
	}
	for ; j < rows; j++ {
		r := bits[j*w : (j+1)*w][:w]
		var m uint64
		for k, f := range fm {
			m |= f &^ r[k]
		}
		if m == 0 {
			out[j>>6] |= 1 << uint(j&63)
		}
	}
}

// matchRowAgainstScalar is the one-row-at-a-time reference the batch kernels
// are property-tested and benchmarked against.
//
//xbar:hotpath
func matchRowAgainstScalar(fm Row, cm *Matrix, out Row) {
	for i := range out {
		out[i] = 0
	}
	for j := 0; j < cm.Rows; j++ {
		if SubsetOf(fm, cm.Row(j)) {
			out.Set(j)
		}
	}
}
