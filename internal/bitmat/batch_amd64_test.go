//go:build amd64 && !purego

package bitmat

import (
	"math/rand"
	"testing"
)

// TestMatchSingleWordVariantsAgree pins the hand-scheduled amd64 single-word
// kernel against the portable one, bit for bit, across row counts that
// exercise the 8-wide body and every tail length, at candidate densities
// from never-matching to always-matching.
func TestMatchSingleWordVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rows := range []int{1, 5, 8, 9, 16, 63, 64, 65, 100, 128, 129, 191, 300} {
		for _, density := range []float64{0, 0.3, 0.7, 1} {
			bits := make([]uint64, rows)
			for i := range bits {
				if rng.Float64() < density {
					bits[i] = ^uint64(0)
				} else {
					bits[i] = rng.Uint64()
				}
			}
			f := rng.Uint64() >> (rng.Intn(63) + 1) // vary the popcount of fm
			wide, portable := NewRow(rows), NewRow(rows)
			matchSingleWordWide(f, bits, wide, rows)
			matchSingleWordPortable(f, bits, portable, rows)
			if !Equal(wide, portable) {
				t.Fatalf("rows=%d density=%.1f: amd64 kernel disagrees with portable", rows, density)
			}
		}
	}
}

// TestKernelVariantAMD64 pins which variant this build selected, so the CI
// matrix visibly exercises both.
func TestKernelVariantAMD64(t *testing.T) {
	if KernelVariant() != "amd64" {
		t.Fatalf("expected amd64 kernel in this build, got %q", KernelVariant())
	}
}
