package bitmat

// Column-major views. A Matrix stores rows contiguously, which makes row
// scans (the mapping hot path) one cache line; per-column scans stride
// through memory and test one bit per touched word. TransposeInto builds the
// word-transposed mirror — a Matrix whose row c is column c of the source —
// so per-column work (the column-aware mapper's penalty and feasibility
// scans) becomes whole-word popcounts and masks over contiguous memory.
// The transpose itself runs on 64×64 bit blocks with the classic
// recursive-halving word transpose, never touching individual bits.

// Transpose returns a freshly allocated column-major view of m: a
// src.Cols × src.Rows matrix with Get(c, r) == m.Get(r, c).
func Transpose(m *Matrix) *Matrix {
	return TransposeInto(nil, m)
}

// TransposeInto writes the column-major view of src into dst, growing dst
// only when its backing storage is too small (pass the previous result to
// amortize; nil allocates). It returns the view, whose row c is the packed
// bitset of src's column c over the source rows.
func TransposeInto(dst, src *Matrix) *Matrix {
	if dst == nil {
		dst = &Matrix{}
	}
	dst.Reshape(src.Cols, src.Rows)
	if src.Rows == 0 || src.Cols == 0 {
		return dst
	}
	var blk [64]uint64
	for rb := 0; rb < src.Rows; rb += 64 {
		cw := rb >> 6 // destination word holding source rows rb..rb+63
		nr := src.Rows - rb
		if nr > 64 {
			nr = 64
		}
		for cb := 0; cb < src.Cols; cb += 64 {
			// Gather: source word cb/64 of rows rb..rb+nr-1; the packed-row
			// contract keeps bits past src.Cols zero, and the zero padding
			// below keeps bits past src.Rows zero in the output.
			sw := cb >> 6
			for i := 0; i < nr; i++ {
				blk[i] = src.bits[(rb+i)*src.words+sw]
			}
			for i := nr; i < 64; i++ {
				blk[i] = 0
			}
			transpose64(&blk)
			nc := src.Cols - cb
			if nc > 64 {
				nc = 64
			}
			for c := 0; c < nc; c++ {
				dst.bits[(cb+c)*dst.words+cw] = blk[c]
			}
		}
	}
	return dst
}

// TransposeUpdate refreshes an existing column-major view in place after src
// changed, recomputing only the 64×64 blocks that intersect a dirty source
// row AND a dirty source column (dirtyRows/dirtyCols are packed masks over
// src's rows and columns, e.g. a defect.Map delta window). Blocks are
// 64-aligned, so "intersects" is a one-word mask test per block. Each touched
// block is rebuilt from src, so a conservative (superset) dirty mask is
// harmless. dst must be a view of this src previously built by TransposeInto
// (dst.Rows == src.Cols, dst.Cols == src.Rows); anything else panics rather
// than silently desynchronizing the view.
//
//xbar:hotpath
func TransposeUpdate(dst, src *Matrix, dirtyRows, dirtyCols Row) {
	if dst == nil || dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic("bitmat: TransposeUpdate on a view with mismatched dimensions")
	}
	if src.Rows == 0 || src.Cols == 0 {
		return
	}
	var blk [64]uint64
	for rb := 0; rb < src.Rows; rb += 64 {
		if dirtyRows[rb>>6] == 0 {
			continue
		}
		cw := rb >> 6
		nr := src.Rows - rb
		if nr > 64 {
			nr = 64
		}
		for cb := 0; cb < src.Cols; cb += 64 {
			if dirtyCols[cb>>6] == 0 {
				continue
			}
			sw := cb >> 6
			for i := 0; i < nr; i++ {
				blk[i] = src.bits[(rb+i)*src.words+sw]
			}
			for i := nr; i < 64; i++ {
				blk[i] = 0
			}
			transpose64(&blk)
			nc := src.Cols - cb
			if nc > 64 {
				nc = 64
			}
			for c := 0; c < nc; c++ {
				dst.bits[(cb+c)*dst.words+cw] = blk[c]
			}
		}
	}
}

// transpose64 transposes a 64×64 bit block in place (bit c of word r moves
// to bit r of word c) by recursive halving: swap the off-diagonal 32×32
// quadrants, then the 16×16 quadrants within each half, and so on down to
// single bits — six rounds of masked shift-and-xor instead of 4096 bit moves.
//
//xbar:hotpath
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j >>= 1 {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			// Swap the top-right quadrant (rows k.., upper j bits) with the
			// bottom-left (rows k+j.., lower j bits); bit c = column c, so the
			// upper halves sit at the high shift positions.
			t := ((a[k] >> j) ^ a[k+j]) & m
			a[k] ^= t << j
			a[k+j] ^= t
		}
		m ^= m << (j >> 1)
	}
}
