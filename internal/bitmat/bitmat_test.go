package bitmat

import (
	"math/rand"
	"testing"
)

func TestRowBasics(t *testing.T) {
	for _, cols := range []int{1, 63, 64, 65, 130} {
		r := NewRow(cols)
		if len(r) != Words(cols) {
			t.Fatalf("cols=%d: %d words, want %d", cols, len(r), Words(cols))
		}
		if r.Any() {
			t.Fatalf("cols=%d: fresh row not empty", cols)
		}
		r.Set(0)
		r.Set(cols - 1)
		if !r.Get(0) || !r.Get(cols-1) {
			t.Fatalf("cols=%d: Set/Get mismatch", cols)
		}
		if got := PopCount(r); got != 2 && !(cols == 1 && got == 1) {
			t.Fatalf("cols=%d: popcount %d", cols, got)
		}
		r.Clear(0)
		if r.Get(0) {
			t.Fatalf("cols=%d: Clear failed", cols)
		}
		r.Zero()
		if r.Any() {
			t.Fatalf("cols=%d: Zero failed", cols)
		}
	}
}

// TestOpsAgainstBoolSlices cross-checks every word op against the naive
// []bool implementation on random rows spanning word boundaries.
func TestOpsAgainstBoolSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		cols := 1 + rng.Intn(200)
		a, b := NewRow(cols), NewRow(cols)
		av, bv := make([]bool, cols), make([]bool, cols)
		for c := 0; c < cols; c++ {
			if rng.Intn(2) == 0 {
				a.Set(c)
				av[c] = true
			}
			if rng.Intn(3) == 0 {
				b.Set(c)
				bv[c] = true
			}
		}
		wantAndNot, wantSubset, wantFirst, wantPop := false, true, -1, 0
		for c := 0; c < cols; c++ {
			if av[c] && !bv[c] {
				wantAndNot = true
				wantSubset = false
			}
			if av[c] && bv[c] && wantFirst < 0 {
				wantFirst = c
			}
			if av[c] {
				wantPop++
			}
		}
		if AndNotAny(a, b) != wantAndNot {
			t.Fatalf("trial %d: AndNotAny mismatch", trial)
		}
		if SubsetOf(a, b) != wantSubset {
			t.Fatalf("trial %d: SubsetOf mismatch", trial)
		}
		if got := FirstAnd(a, b); got != wantFirst {
			t.Fatalf("trial %d: FirstAnd %d, want %d", trial, got, wantFirst)
		}
		if got := PopCount(a); got != wantPop {
			t.Fatalf("trial %d: PopCount %d, want %d", trial, got, wantPop)
		}
		if Equal(a, b) != (wantPop == PopCount(b) && !wantAndNot && !AndNotAny(b, a)) {
			t.Fatalf("trial %d: Equal mismatch", trial)
		}
		// Or must equal the element-wise union.
		u := NewRow(cols)
		copy(u, a)
		u.Or(b)
		for c := 0; c < cols; c++ {
			if u.Get(c) != (av[c] || bv[c]) {
				t.Fatalf("trial %d: Or mismatch at %d", trial, c)
			}
		}
	}
}

func TestMatrix(t *testing.T) {
	m := New(3, 70)
	m.Set(0, 0)
	m.Set(1, 69)
	m.Set(2, 64)
	if !m.Get(0, 0) || !m.Get(1, 69) || !m.Get(2, 64) || m.Get(0, 1) {
		t.Fatal("Matrix Set/Get mismatch")
	}
	if PopCount(m.Row(1)) != 1 {
		t.Fatal("row view wrong")
	}
	m.Clear(1, 69)
	if m.Get(1, 69) {
		t.Fatal("Clear failed")
	}
	m.Fill()
	for r := 0; r < 3; r++ {
		if PopCount(m.Row(r)) != 70 {
			t.Fatalf("Fill row %d: %d bits", r, PopCount(m.Row(r)))
		}
	}
	// Fill must keep the trailing bits zero so Equal works word-at-a-time.
	full := New(1, 70)
	for c := 0; c < 70; c++ {
		full.Set(0, c)
	}
	if !Equal(m.Row(0), full.Row(0)) {
		t.Fatal("Fill set trailing garbage bits")
	}
	m.Zero()
	if m.Row(0).Any() || m.Row(2).Any() {
		t.Fatal("Zero failed")
	}
}

func TestFillExactWordBoundary(t *testing.T) {
	m := New(2, 128)
	m.Fill()
	if PopCount(m.Row(0)) != 128 || PopCount(m.Row(1)) != 128 {
		t.Fatal("Fill on word-aligned width wrong")
	}
}
