package journal

import (
	"time"

	"repro/internal/metrics"
)

// journalMetrics holds the journal's instruments, registered on the
// caller's registry when Options.Metrics is set (the engine passes its
// per-engine registry through). All methods are nil-safe so the hot paths
// record unconditionally; a journal opened without a registry pays one nil
// check per event.
type journalMetrics struct {
	commitSecs    *metrics.Histogram // pre-resolved for this journal's sync mode
	commitRecords *metrics.Histogram
	appends       *metrics.Counter
	appendErrs    *metrics.Counter
	compactions   *metrics.Counter
	compactErrs   *metrics.Counter
	compactSecs   *metrics.Histogram
	tailRing      *metrics.Counter
	tailScan      *metrics.Counter
}

// commitBatchBuckets sizes the group-commit batch histogram: powers of two
// up to the default batch cap.
var commitBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// newJournalMetrics registers the journal families. The sync label on the
// commit latency histogram is fixed per journal (fsync vs nosync is an
// Options decision, not a per-append one), so the child is resolved once.
func newJournalMetrics(reg *metrics.Registry, noSync bool) *journalMetrics {
	if reg == nil {
		return nil
	}
	syncLabel := "fsync"
	if noSync {
		syncLabel = "nosync"
	}
	commitSecs := reg.NewHistogramVec("xbar_journal_commit_seconds",
		"Group-commit latency (write + fsync of one batch), by sync mode.",
		metrics.ExponentialBuckets(10e-6, 4, 10), "sync")
	appends := reg.NewCounterVec("xbar_journal_appends_total",
		"Appended records by result (an errored append was not committed).", "result")
	compactions := reg.NewCounterVec("xbar_journal_compactions_total",
		"Compaction runs by result.", "result")
	tailReads := reg.NewCounterVec("xbar_journal_tail_reads_total",
		"ReadAfter calls by source: served from the in-memory ring of recent records, or from a segment-file scan under the journal lock.",
		"source")
	return &journalMetrics{
		commitSecs: commitSecs.With(syncLabel),
		commitRecords: reg.NewHistogram("xbar_journal_commit_records",
			"Records per group commit (batching emerges from backlog).",
			commitBatchBuckets),
		appends:    appends.With("ok"),
		appendErrs: appends.With("error"),
		compactSecs: reg.NewHistogram("xbar_journal_compact_seconds",
			"Compaction duration (appends block for it).",
			metrics.ExponentialBuckets(100e-6, 4, 10)),
		compactions: compactions.With("ok"),
		compactErrs: compactions.With("error"),
		tailRing:    tailReads.With("ring"),
		tailScan:    tailReads.With("scan"),
	}
}

// registerGauges installs scrape-time views of the journal's live state.
// Called once from Open after j is fully constructed; the closures take
// j.mu, so a scrape briefly queues behind an in-flight group commit.
func (j *Journal) registerGauges(reg *metrics.Registry) {
	reg.NewGaugeFunc("xbar_journal_last_seq",
		"Newest committed journal sequence number (the follower cursor high-water mark).",
		func() float64 { return float64(j.LastSeq()) })
	reg.NewGaugeFunc("xbar_journal_records",
		"Records on disk in the active generation (superseded duplicates included until compaction).",
		func() float64 { return float64(j.Records()) })
	reg.NewGaugeFunc("xbar_journal_segments",
		"Segment files in the active generation.",
		func() float64 { return float64(j.Segments()) })
}

func (m *journalMetrics) observeCommit(d time.Duration, batch, published int) {
	if m == nil {
		return
	}
	m.commitSecs.Observe(d.Seconds())
	m.commitRecords.Observe(float64(batch))
	m.appends.Add(int64(published))
	if batch > published {
		m.appendErrs.Add(int64(batch - published))
	}
}

// countRefused books appends bounced without a commit attempt (journal
// closed or sticky-failed); no latency observation, the batch never
// touched disk.
func (m *journalMetrics) countRefused(n int) {
	if m == nil {
		return
	}
	m.appendErrs.Add(int64(n))
}

func (m *journalMetrics) observeCompact(d time.Duration, err error) {
	if m == nil {
		return
	}
	m.compactSecs.Observe(d.Seconds())
	if err != nil {
		m.compactErrs.Inc()
	} else {
		m.compactions.Inc()
	}
}

func (m *journalMetrics) countTailRead(fromRing bool) {
	if m == nil {
		return
	}
	if fromRing {
		m.tailRing.Inc()
	} else {
		m.tailScan.Inc()
	}
}
