package journal

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func appendN(t *testing.T, j *Journal, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if _, err := j.Append(key(i), val(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%04d-payload", i)) }

func collect(t *testing.T, j *Journal, after uint64) []Record {
	t.Helper()
	var out []Record
	if err := j.Replay(after, func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 100)
	if got := j.LastSeq(); got != 100 {
		t.Fatalf("LastSeq = %d, want 100", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := collect(t, j2, 0)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if !bytes.Equal(rec.Key, key(i)) || !bytes.Equal(rec.Value, val(i)) {
			t.Fatalf("record %d mismatch: %q=%q", i, rec.Key, rec.Value)
		}
	}
	// Appends continue the sequence across restarts.
	seq, err := j2.Append(key(100), val(100))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 101 {
		t.Fatalf("post-restart seq = %d, want 101", seq)
	}
}

func TestRotationAndReadAfter(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 200)
	if segs := j.Segments(); segs < 3 {
		t.Fatalf("Segments = %d, want rotation to several", segs)
	}
	recs, last, err := j.ReadAfter(150, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last != 200 || len(recs) != 50 || recs[0].Seq != 151 {
		t.Fatalf("ReadAfter(150): %d recs, first %d, last %d", len(recs), recs[0].Seq, last)
	}
	recs, _, err = j.ReadAfter(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || recs[9].Seq != 10 {
		t.Fatalf("ReadAfter limit: %d recs", len(recs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// All 200 records survive reopen across the rotated segments.
	j2, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if recs := collect(t, j2, 0); len(recs) != 200 {
		t.Fatalf("replayed %d records after rotation, want 200", len(recs))
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 2048, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		each    = 50
	)
	var wg sync.WaitGroup
	seqs := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := j.Append(key(w*each+i), val(w*each+i))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				seqs[w] = append(seqs[w], seq)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for w := range seqs {
		for i, s := range seqs[w] {
			if seen[s] {
				t.Fatalf("duplicate seq %d", s)
			}
			seen[s] = true
			if i > 0 && seqs[w][i-1] >= s {
				t.Fatalf("writer %d: seqs not increasing: %d then %d", w, seqs[w][i-1], s)
			}
		}
	}
	if len(seen) != writers*each {
		t.Fatalf("%d unique seqs, want %d", len(seen), writers*each)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if recs := collect(t, j2, 0); len(recs) != writers*each {
		t.Fatalf("replayed %d, want %d", len(recs), writers*each)
	}
}

func TestNotify(t *testing.T) {
	j, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	ch := j.Notify()
	select {
	case <-ch:
		t.Fatal("notify fired before any commit")
	default:
	}
	appendN(t, j, 0, 1)
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("notify did not fire after commit")
	}
}

func TestCompactDedupesAndPreservesSeqs(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// 30 keys written 4 times each: compaction must keep only the last
	// write of each key, with its original sequence number.
	for round := 0; round < 4; round++ {
		for k := 0; k < 30; k++ {
			if _, err := j.Append(key(k), []byte(fmt.Sprintf("round-%d-key-%d", round, k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !j.Expired() {
		t.Fatal("Expired = false with 90 superseded records")
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if j.Expired() {
		t.Fatal("Expired = true right after compaction")
	}
	recs := collect(t, j, 0)
	if len(recs) != 30 {
		t.Fatalf("%d records after compaction, want 30", len(recs))
	}
	for i, rec := range recs {
		wantSeq := uint64(90 + i + 1) // the 4th round wrote seqs 91..120
		if rec.Seq != wantSeq {
			t.Fatalf("record %d seq = %d, want %d (seqs must survive compaction)", i, rec.Seq, wantSeq)
		}
		if want := fmt.Sprintf("round-3-key-%d", i); string(rec.Value) != want {
			t.Fatalf("record %d value = %q, want %q", i, rec.Value, want)
		}
	}
	if got := j.Records(); got != 30 {
		t.Fatalf("Records = %d, want 30", got)
	}
	// The sequence counter never rewinds: next append is 121.
	seq, err := j.Append([]byte("fresh"), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 121 {
		t.Fatalf("post-compaction seq = %d, want 121", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// And the compacted generation replays after a restart.
	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if recs := collect(t, j2, 0); len(recs) != 31 {
		t.Fatalf("replayed %d after compaction+restart, want 31", len(recs))
	}
}

func TestEmptyCompactionPreservesSeqAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	opt := Options{NoSync: true, MaxAge: time.Hour}
	j, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	clock := base
	j.SetNowFunc(func() time.Time { return clock })
	appendN(t, j, 0, 10) // seqs 1..10
	clock = base.Add(2 * time.Hour)
	if err := j.Compact(); err != nil { // everything expired: empty generation
		t.Fatal(err)
	}
	if recs := collect(t, j, 0); len(recs) != 0 {
		t.Fatalf("%d records after full-expiry compaction, want 0", len(recs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The restarted journal must not rewind the sequence counter: the
	// empty tail segment's header baseSeq is the only trace of seqs 1..10.
	j2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := j2.Append(key(10), val(10))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("seq after empty-compaction restart = %d, want 11 (counter must not rewind)", seq)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// And the record appended after the restart survives the NEXT restart
	// (a rewound counter would have written seq 1 into a baseSeq-11
	// segment, which recovery destroys as an ordering break).
	j3, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	recs := collect(t, j3, 0)
	if len(recs) != 1 || recs[0].Seq != 11 {
		t.Fatalf("second restart recovered %d records (want 1 with seq 11)", len(recs))
	}
}

func TestCommitRotationErrorKeepsJournalConsistent(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(key(0), val(0)); err != nil {
		t.Fatal(err)
	}
	// Block the next rotation: the segment file the rotation would create
	// already exists, so createSegmentLocked's O_EXCL open fails mid-commit.
	blocker := segmentPath(dir, 0, 1)
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(key(1), val(1)); err == nil {
		t.Fatal("append succeeded despite failed rotation")
	}
	// The failed append left no trace: readers see only the acknowledged
	// record, and its sequence number was not burned.
	recs, last, err := j.ReadAfter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || last != 1 {
		t.Fatalf("after failed append: %d records, last seq %d; want 1, 1", len(recs), last)
	}
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	seq, err := j.Append(key(2), val(2))
	if err != nil {
		t.Fatalf("append after rotation unblocked: %v", err)
	}
	if seq != 2 {
		t.Fatalf("seq after recovered rotation = %d, want 2", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs2 := collect(t, j2, 0)
	if len(recs2) != 2 || recs2[0].Seq != 1 || recs2[1].Seq != 2 {
		t.Fatalf("restart recovered %d records (want seqs 1,2)", len(recs2))
	}
	if !bytes.Equal(recs2[1].Key, key(2)) {
		t.Fatalf("second record key %q, want %q", recs2[1].Key, key(2))
	}
}

func TestRollbackTruncatesUnpublishedFrames(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 3)
	// Simulate the failure shape rollbackLocked exists for: a group commit
	// that flushed frames into the tail and then errored (e.g. ENOSPC on a
	// later write or the final sync) before publishing them.
	j.mu.Lock()
	stable := j.tailSize
	orphan := appendFrame(nil, Record{Seq: j.lastSeq + 1, Time: 1, Key: []byte("orphan"), Value: []byte("x")})
	if _, werr := j.tail.Write(orphan); werr != nil {
		j.mu.Unlock()
		t.Fatal(werr)
	}
	j.tailSize += int64(len(orphan))
	j.rollbackLocked(stable)
	failedErr := j.failed
	j.mu.Unlock()
	if failedErr != nil {
		t.Fatalf("rollback reported failure: %v", failedErr)
	}
	// The orphan is gone: the next append reuses its offset and sequence
	// number cleanly, and nothing phantom is ever read back.
	seq, err := j.Append(key(3), val(3))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("seq after rollback = %d, want 4", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := collect(t, j2, 0)
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || bytes.Equal(rec.Key, []byte("orphan")) {
			t.Fatalf("record %d: seq %d key %q", i, rec.Seq, rec.Key)
		}
	}
}

func TestFailedRollbackRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 2)
	// Swap the tail for a read-only descriptor on the same file: the
	// commit's write fails, and so does the rollback's truncate, which must
	// leave the journal failed rather than risk writing after orphans.
	j.mu.Lock()
	good := j.tail
	ro, oerr := os.Open(j.segs[len(j.segs)-1].path)
	if oerr != nil {
		j.mu.Unlock()
		t.Fatal(oerr)
	}
	j.tail = ro
	j.mu.Unlock()
	defer good.Close()
	if _, err := j.Append(key(2), val(2)); err == nil {
		t.Fatal("append with unwritable tail succeeded")
	}
	j.mu.Lock()
	failedErr := j.failed
	j.mu.Unlock()
	if failedErr == nil {
		t.Fatal("journal not marked failed after rollback failure")
	}
	if _, err := j.Append(key(3), val(3)); err == nil || !strings.Contains(err.Error(), "rollback") {
		t.Fatalf("append on failed journal: %v, want the sticky rollback error", err)
	}
	// Committed records stay readable even in the failed state.
	recs, last, err := j.ReadAfter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || last != 2 {
		t.Fatalf("failed journal served %d records, last %d; want 2, 2", len(recs), last)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayToleratesTornOrphanTail(t *testing.T) {
	j, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendN(t, j, 0, 3)
	// A failed commit whose rollback also failed can leave a torn frame
	// past the published state; readers must keep serving the committed
	// prefix rather than erroring on the leftovers.
	j.mu.Lock()
	if _, werr := j.tail.Write([]byte{0x55, 0x00, 0x00, 0x00, 0xde, 0xad}); werr != nil {
		j.mu.Unlock()
		t.Fatal(werr)
	}
	j.mu.Unlock()
	recs, last, err := j.ReadAfter(0, 0)
	if err != nil {
		t.Fatalf("ReadAfter over torn orphan tail: %v", err)
	}
	if len(recs) != 3 || last != 3 {
		t.Fatalf("served %d records, last %d; want 3, 3", len(recs), last)
	}
}

func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if j2, err := Open(dir, Options{NoSync: true}); err == nil {
		j2.Close()
		t.Fatal("second Open of a live journal directory succeeded; its recovery would truncate the owner's tail")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	j3.Close()
}

func TestCloseConcurrent(t *testing.T) {
	j, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := j.Close(); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestCompactAgeAndCountPolicy(t *testing.T) {
	j, err := Open(t.TempDir(), Options{NoSync: true, MaxAge: time.Hour, MaxRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	base := time.Unix(1_700_000_000, 0)
	clock := base
	j.SetNowFunc(func() time.Time { return clock })
	appendN(t, j, 0, 10) // stamped at base: will be over MaxAge below
	clock = base.Add(2 * time.Hour)
	appendN(t, j, 10, 10) // fresh, but MaxRecords keeps only the newest 5
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, j, 0)
	if len(recs) != 5 {
		t.Fatalf("%d records after age+count compaction, want 5", len(recs))
	}
	if recs[0].Seq != 16 || recs[4].Seq != 20 {
		t.Fatalf("kept seqs %d..%d, want 16..20", recs[0].Seq, recs[4].Seq)
	}
}
