package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record is one durable journal entry: an opaque key/value pair stamped
// with its monotonic sequence number and append time. After compaction
// sequence numbers keep their original values, so they stay strictly
// increasing but need not be contiguous.
type Record struct {
	// Seq is the record's position in the journal's total order. It is
	// assigned at append and never reused, so a reader that remembers the
	// last Seq it processed can resume with ReadAfter(seq).
	Seq uint64
	// Time is the append wall-clock time in Unix nanoseconds; compaction
	// age policies (Options.MaxAge) evaluate against it.
	Time int64
	// Key identifies what the record describes (the engine stores the
	// canonical job-spec hash). Compaction keeps only the newest record
	// per key.
	Key []byte
	// Value is the record payload (the engine stores the JSON-encoded job
	// result).
	Value []byte
}

// Frame layout (all integers little-endian):
//
//	u32  body length
//	body:
//	  u64 seq
//	  i64 append time (unix ns)
//	  u32 key length, key bytes
//	  u32 value length, value bytes
//	u32  CRC-32C of body
//
// The length prefix lets the scanner skip to the checksum without parsing
// the body; the trailing CRC detects torn or bit-flipped records. A frame
// that fails either check ends recovery at the longest valid prefix.
const (
	frameOverhead   = 8  // length prefix + trailing CRC
	recordFixedSize = 24 // seq + time + two length fields
	// maxFrameBody rejects absurd length prefixes before allocating: a
	// torn length field must not ask the scanner for gigabytes.
	maxFrameBody = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes rec as one frame at the end of buf and returns the
// extended buffer.
func appendFrame(buf []byte, rec Record) []byte {
	body := recordFixedSize + len(rec.Key) + len(rec.Value)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(body))
	start := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Time))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Key)))
	buf = append(buf, rec.Key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Value)))
	buf = append(buf, rec.Value...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
}

// parseFrame decodes the frame at the start of data. It returns the decoded
// record and the total frame size, or an error when the frame is torn
// (data ends mid-frame) or corrupt (CRC or structure mismatch); both end
// recovery at this offset.
func parseFrame(data []byte) (Record, int, error) {
	if len(data) < 4 {
		return Record{}, 0, fmt.Errorf("journal: torn frame: %d header bytes", len(data))
	}
	body := int(binary.LittleEndian.Uint32(data))
	if body < recordFixedSize || body > maxFrameBody {
		return Record{}, 0, fmt.Errorf("journal: bad frame length %d", body)
	}
	total := frameOverhead + body
	if len(data) < total {
		return Record{}, 0, fmt.Errorf("journal: torn frame: %d of %d bytes", len(data), total)
	}
	b := data[4 : 4+body]
	if got, want := crc32.Checksum(b, crcTable), binary.LittleEndian.Uint32(data[4+body:]); got != want {
		return Record{}, 0, fmt.Errorf("journal: frame CRC mismatch: %08x != %08x", got, want)
	}
	rec := Record{
		Seq:  binary.LittleEndian.Uint64(b),
		Time: int64(binary.LittleEndian.Uint64(b[8:])),
	}
	keyLen := int(binary.LittleEndian.Uint32(b[16:]))
	if keyLen < 0 || 20+keyLen+4 > body {
		return Record{}, 0, fmt.Errorf("journal: bad key length %d", keyLen)
	}
	rec.Key = append([]byte(nil), b[20:20+keyLen]...)
	valLen := int(binary.LittleEndian.Uint32(b[20+keyLen:]))
	if valLen < 0 || recordFixedSize+keyLen+valLen != body {
		return Record{}, 0, fmt.Errorf("journal: bad value length %d", valLen)
	}
	rec.Value = append([]byte(nil), b[24+keyLen:24+keyLen+valLen]...)
	return rec, total, nil
}

// chainHash is the rolling integrity chain threaded through every record:
// chain' = SHA-256(chain || frame body). Each segment header stores the
// chain value coming into the segment, so tampering with a sealed segment
// (or reordering segments) breaks the chain check of everything after it.
type chainHash [sha256.Size]byte

// advance folds one frame body into the chain.
func (c chainHash) advance(body []byte) chainHash {
	h := sha256.New()
	h.Write(c[:])
	h.Write(body)
	var out chainHash
	h.Sum(out[:0])
	return out
}

// frameBody returns the body slice of an encoded frame (for chain updates).
func frameBody(frame []byte) []byte { return frame[4 : len(frame)-4] }

// Meta-record namespace. Cluster coordination state (currently the leader
// lease) rides the journal as ordinary records under reserved keys, so it
// is durable, hash-chained, and replicated to followers through the same
// tail feed as job results — no second consensus channel to keep
// consistent. The prefix starts with a NUL byte, which no canonical
// spec-hash key (hex) can contain, so meta keys can never collide with job
// records. Compaction keeps the newest record per key, so exactly the
// current lease survives compaction.
var metaKeyPrefix = []byte("\x00xbar:")

// LeaseKind is the meta-record kind carrying the leader lease
// (a JSON-encoded lease claim; see internal/engine).
const LeaseKind = "lease"

// MetaKey returns the reserved journal key for a meta-record kind.
func MetaKey(kind string) []byte {
	return append(append([]byte(nil), metaKeyPrefix...), kind...)
}

// IsMetaKey reports whether key is in the reserved meta-record namespace.
// Replay and replication consumers use it to divert coordination records
// away from the result cache.
func IsMetaKey(key []byte) bool {
	return len(key) >= len(metaKeyPrefix) && string(key[:len(metaKeyPrefix)]) == string(metaKeyPrefix)
}
