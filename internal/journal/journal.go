// Package journal is a segmented append-only write-ahead log of key/value
// records, built for the engine's result cache: every committed append is
// durable (group-committed fsync) before Append returns, recovery replays
// the longest valid prefix (per-record CRC, per-segment hash chain, torn
// final record tolerated), segments rotate at a size threshold, and
// compaction rewrites the newest record per key into a fresh generation —
// dropping superseded and expired records — with an atomic manifest swap so
// a crash at any point loses nothing.
//
// Readers resume from any sequence number with ReadAfter, which is what the
// xbarserver follower-replication endpoint serves: sequence numbers are
// assigned once and survive compaction, so a follower's cursor stays valid
// across the leader's rewrites.
package journal

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/metrics"
)

// Options tunes a journal.
type Options struct {
	// SegmentBytes rotates the live segment once it grows past this many
	// bytes; zero means DefaultSegmentBytes.
	SegmentBytes int64
	// BatchRecords caps one group commit; zero means DefaultBatchRecords.
	BatchRecords int
	// NoSync skips the per-commit fsync (records are still written through
	// the OS). For tests and benchmarks; production journals must sync.
	NoSync bool
	// MaxAge drops records older than this at compaction; zero keeps all.
	MaxAge time.Duration
	// MaxRecords keeps only the newest this-many live records at
	// compaction; zero keeps all.
	MaxRecords int
	// RingRecords bounds the in-memory ring of recent committed records
	// that answers tail reads (ReadAfter) without re-reading segment files
	// under the journal lock; zero means DefaultRingRecords, negative
	// disables the ring (every tail read scans files).
	RingRecords int
	// Metrics, when non-nil, registers the journal's instrument families
	// (commit latency by sync mode, group-commit batch size, append/
	// compaction outcomes, seq/records/segments gauges, tail-read sources)
	// on this registry. The engine passes its per-engine registry through.
	Metrics *metrics.Registry
}

const (
	// DefaultSegmentBytes is the rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 4 << 20
	// DefaultBatchRecords is the group-commit cap when
	// Options.BatchRecords is zero.
	DefaultBatchRecords = 256
)

// ErrClosed is reported by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Journal is one open segmented log. It is safe for concurrent use.
type Journal struct {
	dir string
	opt Options

	// mu guards every field below plus all file IO. The batcher holds it
	// for the write+fsync of each group commit; readers (ReadAfter,
	// Replay) and Compact hold it while scanning, so reads never observe
	// a half-written commit or a mid-compaction directory.
	mu       sync.Mutex
	gen      uint64
	segs     []segmentInfo // active generation, ascending index
	tail     *os.File      // last segment, open for append
	tailSize int64
	lastSeq  uint64
	chain    chainHash
	records  int            // records on disk in the active generation
	keys     map[string]int // on-disk record count per key (dup detection)
	oldest   int64          // oldest record Time in the generation, 0 when empty
	notify   chan struct{}  // closed and replaced on every commit
	ring     *recordRing    // recent committed records; nil when disabled
	closed   bool
	failed   error // sticky: rollback of a failed commit failed, appends refused

	met *journalMetrics // nil-safe instrument set (nil without Options.Metrics)

	in        chan *appendReq
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once // guards close(j.stop) for concurrent Close calls

	// commitBuf and seqScratch are the committer's reusable scratch: the
	// frame-encoding buffer and the per-batch table of seq slices. Only the
	// committer goroutine touches them, so they need no lock. The inner seq
	// slices handed to waiters are NOT reused — they either live on the
	// waiter's pooled request or are freshly allocated per batch request.
	commitBuf  []byte
	seqScratch [][]uint64

	// lock is the flock-held LOCK file guaranteeing single-process
	// ownership of dir; the kernel releases it if the process dies.
	lock *os.File

	// now stamps appended records; tests override it to age records.
	now func() time.Time
}

// Open recovers the journal in dir (creating it if needed) and starts the
// group-commit batcher. Recovery walks the active generation's segments in
// order, verifying each record's CRC and the rolling hash chain, and keeps
// the longest valid prefix: a torn or corrupt record truncates its segment
// there, and any later segments are discarded. Leftover files from other
// generations (a compaction that crashed before or after its manifest
// swap) are removed.
func Open(dir string, opt Options) (*Journal, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if opt.BatchRecords <= 0 {
		opt.BatchRecords = DefaultBatchRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Exactly one process may own the directory: a second Open's recovery
	// would truncate the live tail out from under the owner's writes,
	// corrupting records both processes acknowledged. flock (not a pid
	// file) so the kernel releases the lock when the owner dies, however
	// it dies.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			//xbar:allow errcheck-durable failed-Open cleanup; the flock is released by close regardless of the error
			lock.Close()
		}
	}()
	j := &Journal{
		dir:    dir,
		opt:    opt,
		keys:   make(map[string]int),
		notify: make(chan struct{}),
		in:     make(chan *appendReq, 4*opt.BatchRecords),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		now:    time.Now,
		lock:   lock,
		met:    newJournalMetrics(opt.Metrics, opt.NoSync),
	}
	ringCap := opt.RingRecords
	if ringCap == 0 {
		ringCap = DefaultRingRecords
	}
	if ringCap > 0 {
		j.ring = newRecordRing(ringCap)
	}
	m, ok, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		if err := writeManifest(dir, 0); err != nil {
			return nil, err
		}
	} else {
		j.gen = m.Gen
	}
	byGen, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for gen, segs := range byGen {
		if gen == j.gen {
			continue
		}
		// Uncommitted (crashed compaction) or superseded generation.
		for _, s := range segs {
			if err := os.Remove(s.path); err != nil {
				return nil, fmt.Errorf("journal: removing stale segment %s: %w", s.path, err)
			}
		}
	}
	if err := j.recover(byGen[j.gen]); err != nil {
		return nil, err
	}
	if opt.Metrics != nil {
		j.registerGauges(opt.Metrics)
	}
	opened = true
	go j.run()
	return j, nil
}

// lockDir takes an exclusive non-blocking flock on dir's LOCK file. The
// file is advisory and empty; only the kernel lock matters.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		//xbar:allow errcheck-durable cleanup after failed flock; the flock error is what the caller sees
		f.Close()
		return nil, fmt.Errorf("journal: %s is already open in another process: %w", dir, err)
	}
	return f, nil
}

// recover validates the generation's segments and opens the tail for
// append, keeping the longest valid prefix: a segment with a bad header,
// broken hash chain, or wrong index is dropped along with everything after
// it; a torn or corrupt record truncates its segment there and drops the
// later segments. Caller is Open; no lock needed yet.
func (j *Journal) recover(segs []segmentInfo) error {
	kept := segs[:0]
	for i, s := range segs {
		// Recovery seeds the tail ring with the newest committed records,
		// so tail reads serve from memory from the first request.
		valid, header, err := j.scanSegment(s.path, s.index, func(rec Record) error {
			j.ring.push(rec)
			return nil
		})
		if err != nil {
			log.Printf("journal: dropping segment %s and all after it: %v", s.path, err)
			for _, drop := range segs[i:] {
				if rmErr := os.Remove(drop.path); rmErr != nil {
					return rmErr
				}
			}
			break
		}
		segs[i].baseSeq = header.baseSeq
		kept = append(kept, segs[i])
		if valid < j.sizeOf(s.path) {
			log.Printf("journal: truncating %s to %d bytes (torn or corrupt tail), dropping later segments", s.path, valid)
			if trErr := os.Truncate(s.path, valid); trErr != nil {
				return trErr
			}
			for _, drop := range segs[i+1:] {
				if rmErr := os.Remove(drop.path); rmErr != nil {
					return rmErr
				}
			}
			break
		}
	}
	j.segs = kept
	if len(j.segs) == 0 {
		return j.createSegmentLocked(0, j.lastSeq+1)
	}
	tail := j.segs[len(j.segs)-1]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		//xbar:allow errcheck-durable cleanup after failed seek; nothing was written through f
		f.Close()
		return err
	}
	j.tail = f
	j.tailSize = size
	return nil
}

// scanSegment walks one segment file, verifying the header (before any
// record is folded into the journal state, so a rejected segment leaves
// j.lastSeq/j.chain untouched) and then every record's CRC and seq
// ordering, calling fn for each valid record and advancing
// j.lastSeq/j.chain/j.records/j.keys. It returns the byte offset of the
// valid prefix and the parsed header. The error reports the first invalid
// structure; records before it have already been delivered.
func (j *Journal) scanSegment(path string, wantIndex uint64, fn func(Record) error) (int64, segmentHeader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, segmentHeader{}, err
	}
	header, err := parseSegmentHeader(data)
	if err != nil {
		return 0, header, err
	}
	if header.gen != j.gen {
		return 0, header, fmt.Errorf("journal: segment generation %d, want %d", header.gen, j.gen)
	}
	if header.index != wantIndex {
		return 0, header, fmt.Errorf("journal: segment header index %d, file named %d", header.index, wantIndex)
	}
	if header.chainIn != j.chain {
		return 0, header, fmt.Errorf("journal: segment %s breaks the hash chain", path)
	}
	if header.baseSeq <= j.lastSeq {
		return 0, header, fmt.Errorf("journal: segment base seq %d overlaps last seq %d", header.baseSeq, j.lastSeq)
	}
	// The header alone advances the sequence floor: baseSeq was derived
	// from the sequence counter when the segment was created, so even a
	// segment holding no records (a compaction that expired everything)
	// must keep the counter from rewinding — a rewind would hand out
	// already-used seqs, which the NEXT recovery would then destroy as an
	// ordering break, losing acknowledged records. This floor also makes
	// any rec.Seq < baseSeq fall to the ordering check below.
	j.lastSeq = header.baseSeq - 1
	off := int64(headerSize)
	for int(off) < len(data) {
		rec, n, perr := parseFrame(data[off:])
		if perr != nil {
			return off, header, nil // torn/corrupt tail: valid prefix ends here
		}
		if rec.Seq <= j.lastSeq {
			return off, header, nil // ordering break: treat as corruption
		}
		if ferr := fn(rec); ferr != nil {
			return off, header, ferr
		}
		j.chain = j.chain.advance(frameBody(data[off : off+int64(n)]))
		j.lastSeq = rec.Seq
		j.records++
		j.keys[string(rec.Key)]++
		if j.oldest == 0 || rec.Time < j.oldest {
			j.oldest = rec.Time
		}
		off += int64(n)
	}
	return off, header, nil
}

func (j *Journal) sizeOf(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// createSegmentLocked opens a fresh segment continuing the journal's
// current chain, closing the previous tail. The caller must already have
// fsynced any outgoing-tail frames it intends to acknowledge: commit()
// syncs before publishing at the rotation boundary, and recover has no
// open tail — so no (second) seal-sync happens here. Caller holds j.mu
// (or is Open/recover).
func (j *Journal) createSegmentLocked(index, baseSeq uint64) error {
	path := segmentPath(j.dir, j.gen, index)
	//xbar:allow lock-io segment rotation runs under mu by design: the header must exist before any commit appends to it
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	// A failure past this point must remove the created file: it is not in
	// j.segs, so leaving it would make every retry of this rotation fail on
	// O_EXCL — a transient error would permanently disable appends.
	abort := func(err error) error {
		//xbar:allow errcheck-durable abort cleanup; the triggering error is returned
		//xbar:allow lock-io abort cleanup on the rotation path, which runs under mu by design
		f.Close()
		//xbar:allow lock-io abort cleanup on the rotation path, which runs under mu by design
		os.Remove(path)
		return err
	}
	header := segmentHeader{gen: j.gen, index: index, baseSeq: baseSeq, chainIn: j.chain}
	//xbar:allow lock-io segment rotation runs under mu by design; see Journal.mu doc
	if _, err := f.Write(header.encode()); err != nil {
		return abort(err)
	}
	if !j.opt.NoSync {
		//xbar:allow lock-io segment rotation fsyncs the header under mu by design
		if err := f.Sync(); err != nil {
			return abort(err)
		}
	}
	if err := syncDir(j.dir); err != nil {
		return abort(err)
	}
	if j.tail != nil {
		//xbar:allow errcheck-durable outgoing tail was fsynced before rotation; close errors cannot lose acknowledged frames
		//xbar:allow lock-io sealing the outgoing tail is part of the under-mu rotation
		j.tail.Close()
	}
	j.tail = f
	j.tailSize = headerSize
	j.segs = append(j.segs, segmentInfo{index: index, baseSeq: baseSeq, path: path})
	return nil
}

// rotateLocked seals the tail and starts the next segment. Caller holds
// j.mu.
func (j *Journal) rotateLocked() error {
	next := j.segs[len(j.segs)-1].index + 1
	return j.createSegmentLocked(next, j.lastSeq+1)
}

// LastSeq reports the sequence number of the newest committed record.
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSeq
}

// Records reports how many records the active generation holds on disk
// (superseded duplicates included until compaction rewrites them away).
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Segments reports how many segment files the active generation holds.
func (j *Journal) Segments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.segs)
}

// Notify returns a channel that is closed when the next group commit
// lands, waking tail readers without polling.
func (j *Journal) Notify() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.notify
}

// Replay streams every committed record with Seq > after, oldest first.
// It reads the on-disk state under the journal lock, so it observes only
// whole commits.
func (j *Journal) Replay(after uint64, fn func(Record) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayLocked(after, fn)
}

func (j *Journal) replayLocked(after uint64, fn func(Record) error) error {
	if j.closed {
		return ErrClosed
	}
	// scanned tracks the highest seq accounted for so far (parsed frames
	// plus whole skipped segments via their baseSeq). Once it reaches
	// j.lastSeq, every committed record has been seen, so anything further
	// on disk is leftovers of a failed commit whose rollback also failed —
	// tolerated like recovery tolerates a torn tail, never delivered.
	var scanned uint64
	for i, s := range j.segs {
		// Skip whole segments the cursor has passed: a segment is
		// skippable when the next one starts at or before after+1.
		if i+1 < len(j.segs) && j.segs[i+1].baseSeq <= after+1 {
			continue
		}
		if s.baseSeq > 0 && s.baseSeq-1 > scanned {
			scanned = s.baseSeq - 1
		}
		//xbar:allow lock-io replay runs at Open and after compaction, both under mu before any committer exists
		data, err := os.ReadFile(s.path)
		if err != nil {
			return err
		}
		off := headerSize
		for off < len(data) {
			rec, n, perr := parseFrame(data[off:])
			if perr != nil {
				if scanned >= j.lastSeq {
					return nil // unparseable bytes past the published state
				}
				return fmt.Errorf("journal: replay hit invalid frame in %s at %d: %w", s.path, off, perr)
			}
			if rec.Seq > j.lastSeq {
				return nil // whole frames past the published state
			}
			scanned = rec.Seq
			if rec.Seq > after {
				if ferr := fn(rec); ferr != nil {
					return ferr
				}
			}
			off += n
		}
	}
	return nil
}

// ReadAfter returns up to limit committed records with Seq > after, oldest
// first, plus the journal's newest committed sequence number. limit <= 0
// means no bound. Cursors within the tail ring's window (the common case:
// a caught-up follower trails by at most one pull) are answered from
// memory; older cursors fall back to a segment-file scan under the journal
// lock. Returned records may share backing memory with the ring; callers
// must treat Key and Value as read-only.
func (j *Journal) ReadAfter(after uint64, limit int) ([]Record, uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, 0, ErrClosed
	}
	if j.ring.covers(after) {
		j.met.countTailRead(true)
		return j.ring.readAfter(after, limit), j.lastSeq, nil
	}
	j.met.countTailRead(false)
	var out []Record
	errStop := errors.New("journal: read limit")
	err := j.replayLocked(after, func(rec Record) error {
		out = append(out, rec)
		if limit > 0 && len(out) >= limit {
			return errStop
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		return nil, 0, err
	}
	return out, j.lastSeq, nil
}

// markFailedLocked records a sticky failure: every later Append is refused
// with this error until restart, while committed records stay readable.
// Caller holds j.mu.
func (j *Journal) markFailedLocked(err error) error {
	j.failed = err
	log.Printf("%v (journal refuses appends until restart)", err)
	return err
}

// Close flushes pending appends, fsyncs, and closes the journal. Appends
// issued after Close report ErrClosed. Close is safe to call from
// concurrent goroutines; every call blocks until shutdown completes.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() { close(j.stop) })
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var err error
	if j.tail != nil {
		//xbar:allow lock-io shutdown: the committer has drained, mu only fences late readers
		err = j.tail.Close()
		j.tail = nil
	}
	if j.lock != nil {
		//xbar:allow errcheck-durable the LOCK file is empty and advisory; the kernel drops the flock on close either way
		//xbar:allow lock-io shutdown: the committer has drained, mu only fences late readers
		j.lock.Close() // releases the flock
		j.lock = nil
	}
	return err
}

// Healthy reports whether the journal can currently accept appends: nil
// when open and writable, ErrClosed after Close, or the sticky failure
// recorded when a commit rollback failed. Readiness probes (/readyz) call
// this — a member whose journal refuses writes must leave the ring even
// though its process is alive and its cache still serves reads.
func (j *Journal) Healthy() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.tail == nil {
		return ErrClosed
	}
	return j.failed
}
