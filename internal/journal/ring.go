package journal

import "sort"

// DefaultRingRecords is the tail-ring capacity when Options.RingRecords is
// zero: comfortably larger than one follower pull window (1024 records) so
// a caught-up follower never falls through to a file scan.
const DefaultRingRecords = 2048

// recordRing is a fixed-capacity ring of the newest committed records,
// kept in sequence order. It exists so tail reads (ReadAfter — the
// follower-replication feed) are answered from memory instead of
// re-reading segment files while holding the journal lock, which stalled
// the group-commit batcher behind every tail request.
//
// floor is the highest sequence number NOT present in the ring (0 while
// the ring still holds the journal's entire history): the ring can answer
// a cursor iff after >= floor, because then every committed record past
// the cursor is in the ring. Guarded by the journal's mu.
type recordRing struct {
	buf   []Record
	start int // index of the oldest record
	n     int
	floor uint64
}

func newRecordRing(capacity int) *recordRing {
	return &recordRing{buf: make([]Record, capacity)}
}

// push appends one committed record (callers push in commit order, so the
// ring stays seq-sorted), evicting the oldest when full.
//
//xbar:hotpath
func (r *recordRing) push(rec Record) {
	if r == nil {
		return
	}
	if r.n == len(r.buf) {
		r.floor = r.buf[r.start].Seq
		r.buf[r.start] = Record{}
		r.start = (r.start + 1) % len(r.buf)
		r.n--
	}
	r.buf[(r.start+r.n)%len(r.buf)] = rec
	r.n++
}

// covers reports whether every committed record with Seq > after is in the
// ring, i.e. whether a read from this cursor needs no file scan.
func (r *recordRing) covers(after uint64) bool {
	return r != nil && after >= r.floor
}

// readAfter returns up to limit records with Seq > after, oldest first
// (limit <= 0 means no bound). The caller must have checked covers(after).
// Returned records share the ring's key/value backing arrays; callers must
// treat them as read-only.
func (r *recordRing) readAfter(after uint64, limit int) []Record {
	// The ring is seq-sorted; binary-search the first record past the
	// cursor.
	first := sort.Search(r.n, func(i int) bool {
		return r.buf[(r.start+i)%len(r.buf)].Seq > after
	})
	count := r.n - first
	if limit > 0 && count > limit {
		count = limit
	}
	if count <= 0 {
		return nil
	}
	out := make([]Record, count)
	for i := 0; i < count; i++ {
		out[i] = r.buf[(r.start+first+i)%len(r.buf)]
	}
	return out
}

// rebuild replaces the ring's contents with the newest records of live
// (already seq-sorted — compaction hands over its surviving record list),
// so the ring keeps mirroring the on-disk state across a compaction: a
// superseded record dropped from disk is dropped from the ring too.
func (r *recordRing) rebuild(live []Record) {
	if r == nil {
		return
	}
	r.start, r.n, r.floor = 0, 0, 0
	if drop := len(live) - len(r.buf); drop > 0 {
		r.floor = live[drop-1].Seq
		live = live[drop:]
	}
	for _, rec := range live {
		r.push(rec)
	}
}
