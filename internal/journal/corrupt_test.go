package journal

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// segFiles returns the directory's segment files sorted by name (which
// sorts by generation then index).
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, en := range entries {
		if _, _, ok := parseSegmentName(en.Name()); ok {
			out = append(out, filepath.Join(dir, en.Name()))
		}
	}
	sort.Strings(out)
	return out
}

// writeJournal populates a fresh journal with n records across small
// segments and closes it.
func writeJournal(t *testing.T, dir string, n int) {
	t.Helper()
	j, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, n)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// reopenAndCount reopens the journal and returns the replayed records.
func reopenAndCount(t *testing.T, dir string) []Record {
	t.Helper()
	j, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer j.Close()
	return collect(t, j, 0)
}

// checkPrefix asserts recs is exactly records 1..n in order with intact
// payloads — the longest-valid-prefix contract.
func checkPrefix(t *testing.T, recs []Record, n int) {
	t.Helper()
	if len(recs) != n {
		t.Fatalf("recovered %d records, want the %d-record valid prefix", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
		if string(rec.Key) != string(key(i)) || string(rec.Value) != string(val(i)) {
			t.Fatalf("record %d payload corrupted after recovery", i)
		}
	}
}

// countRecords counts frames in one segment file (for test setup).
func countRecords(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, off := 0, headerSize
	for off < len(data) {
		_, fn, err := parseFrame(data[off:])
		if err != nil {
			t.Fatalf("segment %s not clean before corruption: %v", path, err)
		}
		off += fn
		n++
	}
	return n
}

func TestRecoverTruncatedMidRecord(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 100)
	files := segFiles(t, dir)
	last := files[len(files)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= headerSize+10 {
		t.Fatalf("final segment too small to tear: %d bytes", fi.Size())
	}
	// Chop the final record in half: a torn write from a crashed append.
	if err := os.Truncate(last, fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	recs := reopenAndCount(t, dir)
	checkPrefix(t, recs, 99)

	// The repaired journal accepts appends again and they land at seq 100.
	j, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	seq, err := j.Append(key(99), val(99))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 100 {
		t.Fatalf("append after torn-tail repair got seq %d, want 100", seq)
	}
	checkPrefix(t, collect(t, j, 0), 100)
}

func TestRecoverCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 100)
	files := segFiles(t, dir)
	last := files[len(files)-1]
	inEarlier := 0
	for _, f := range files[:len(files)-1] {
		inEarlier += countRecords(t, f)
	}
	inLast := countRecords(t, last)
	if inLast < 2 {
		t.Fatalf("final segment has %d records; corruption test needs >= 2", inLast)
	}
	// Flip one payload byte in the middle of the final segment's first
	// record: its CRC no longer matches, so recovery must stop before it
	// even though bytes after it are intact.
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameOverhead+recordFixedSize+2] ^= 0xff
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs := reopenAndCount(t, dir)
	checkPrefix(t, recs, inEarlier)
}

func TestRecoverChainBreak(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 100)
	files := segFiles(t, dir)
	if len(files) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(files))
	}
	inFirst := countRecords(t, files[0])
	// Rewrite the second segment's header with a wrong chain-in value but
	// a valid header CRC: every record inside still passes its own CRC,
	// so only the hash chain can catch it. Recovery must drop segment 2
	// and everything after.
	data, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	h, err := parseSegmentHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	h.chainIn[0] ^= 0xff
	copy(data, h.encode())
	if err := os.WriteFile(files[1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs := reopenAndCount(t, dir)
	checkPrefix(t, recs, inFirst)
}

func TestCrashMidCompactionLosesNothing(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for k := 0; k < 40; k++ {
			if _, err := j.Append(key(k), val(round*40+k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash after the compacted generation is written but before the
	// manifest swap: the new files exist on disk, the manifest still
	// names the old generation.
	crashErr := errors.New("simulated crash before manifest swap")
	compactCrashHook = func() error { return crashErr }
	defer func() { compactCrashHook = nil }()
	if err := j.Compact(); !errors.Is(err, crashErr) {
		t.Fatalf("Compact = %v, want simulated crash", err)
	}
	j.Close()

	// Reopen: the old generation must be fully intact (no record loss),
	// and the uncommitted new-generation files must be cleaned up.
	j2, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, j2, 0)
	if len(recs) != 120 {
		t.Fatalf("recovered %d records, want all 120 (crash-mid-compaction must lose nothing)", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq %d", i, rec.Seq)
		}
	}
	for _, f := range segFiles(t, dir) {
		gen, _, _ := parseSegmentName(filepath.Base(f))
		if gen != 0 {
			t.Fatalf("uncommitted generation file %s survived reopen", f)
		}
	}

	// A compaction after the crash-recovery succeeds and dedupes.
	compactCrashHook = nil
	if err := j2.Compact(); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, j2, 0); len(recs) != 40 {
		t.Fatalf("post-recovery compaction kept %d records, want 40", len(recs))
	}
	j2.Close()
}

func TestCrashAfterManifestSwap(t *testing.T) {
	// The mirror-image crash: manifest swapped but old-generation files
	// not yet deleted. Simulate by planting a stale old-gen segment after
	// a successful compaction; reopen must ignore and remove it.
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 50)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	stale := segmentPath(dir, 0, 99)
	if err := os.WriteFile(stale, []byte("stale old-generation leftovers"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs := reopenAndCount(t, dir)
	checkPrefix(t, recs, 50)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale old-generation segment not removed at reopen (err=%v)", err)
	}
}
