package journal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzParseFrame drives the frame decoder with mutated frames. The corpus
// seeds mirror the recovery tests' file surgery: a valid frame, torn
// prefixes, a bit-flipped body, and an absurd length prefix. Two properties
// must hold for every input: a rejected frame reports size 0, and an
// accepted frame re-encodes byte-for-byte (the encoding is canonical, so
// parse∘encode must be the identity on the consumed prefix).
func FuzzParseFrame(f *testing.F) {
	valid := appendFrame(nil, Record{Seq: 7, Time: 42, Key: []byte("job"), Value: []byte(`{"ok":true}`)})
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)-3]...)) // torn inside the CRC
	f.Add(append([]byte(nil), valid[:5]...))            // torn inside the body
	f.Add(append([]byte(nil), valid[:2]...))            // torn inside the length prefix
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40 // body bit flip: CRC mismatch
	f.Add(flipped)
	f.Add(binary.LittleEndian.AppendUint32(nil, 1<<30))      // absurd length prefix
	f.Add(appendFrame(nil, Record{}))                        // minimal frame
	f.Add(appendFrame(valid, Record{Key: []byte("second")})) // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := parseFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("rejected frame reported size %d, want 0", n)
			}
			return
		}
		if n < frameOverhead+recordFixedSize || n > len(data) {
			t.Fatalf("accepted frame size %d out of range (input %d bytes)", n, len(data))
		}
		if reenc := appendFrame(nil, rec); !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("re-encoded frame differs from consumed input:\n got %x\nwant %x", reenc, data[:n])
		}
	})
}
