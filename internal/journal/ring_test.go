package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// ringRecords collects the ring's contents oldest-first.
func ringRecords(r *recordRing) []Record {
	return r.readAfter(0, 0)
}

func TestRingPushEvictFloor(t *testing.T) {
	r := newRecordRing(4)
	if !r.covers(0) {
		t.Fatal("empty ring should cover cursor 0")
	}
	for i := 1; i <= 4; i++ {
		r.push(Record{Seq: uint64(i), Key: key(i), Value: val(i)})
	}
	if r.floor != 0 {
		t.Fatalf("floor = %d before eviction, want 0", r.floor)
	}
	// Fifth push evicts seq 1: the ring no longer holds the full history.
	r.push(Record{Seq: 5, Key: key(5), Value: val(5)})
	if r.floor != 1 {
		t.Fatalf("floor = %d after evicting seq 1, want 1", r.floor)
	}
	if r.covers(0) {
		t.Fatal("ring covers cursor 0 after eviction")
	}
	if !r.covers(1) {
		t.Fatal("ring should cover cursor 1 (records 2..5 all present)")
	}
	got := ringRecords(r)
	if len(got) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(got))
	}
	for i, rec := range got {
		if want := uint64(i + 2); rec.Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestRingReadAfter(t *testing.T) {
	r := newRecordRing(8)
	for i := 1; i <= 12; i++ { // wraps: holds seqs 5..12, floor 4
		r.push(Record{Seq: uint64(i)})
	}
	cases := []struct {
		after uint64
		limit int
		want  []uint64
	}{
		{4, 0, []uint64{5, 6, 7, 8, 9, 10, 11, 12}},
		{7, 0, []uint64{8, 9, 10, 11, 12}},
		{7, 2, []uint64{8, 9}},
		{12, 0, nil},
		{99, 0, nil},
	}
	for _, tc := range cases {
		got := r.readAfter(tc.after, tc.limit)
		if len(got) != len(tc.want) {
			t.Fatalf("readAfter(%d, %d) returned %d records, want %d", tc.after, tc.limit, len(got), len(tc.want))
		}
		for i, rec := range got {
			if rec.Seq != tc.want[i] {
				t.Fatalf("readAfter(%d, %d)[%d].Seq = %d, want %d", tc.after, tc.limit, i, rec.Seq, tc.want[i])
			}
		}
	}
}

func TestRingRebuild(t *testing.T) {
	r := newRecordRing(4)
	for i := 1; i <= 10; i++ {
		r.push(Record{Seq: uint64(i)})
	}
	// Rebuild with fewer records than capacity: full history, floor resets.
	r.rebuild([]Record{{Seq: 3}, {Seq: 7}})
	if r.floor != 0 {
		t.Fatalf("floor = %d after rebuild within capacity, want 0", r.floor)
	}
	if got := ringRecords(r); len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 7 {
		t.Fatalf("ring after rebuild = %v, want seqs [3 7]", got)
	}
	// Rebuild with more records than capacity keeps the newest and sets
	// floor to the last one excluded.
	live := make([]Record, 6)
	for i := range live {
		live[i] = Record{Seq: uint64(10 + i)}
	}
	r.rebuild(live)
	if r.floor != 11 {
		t.Fatalf("floor = %d after capped rebuild, want 11", r.floor)
	}
	if got := ringRecords(r); len(got) != 4 || got[0].Seq != 12 || got[3].Seq != 15 {
		t.Fatalf("ring after capped rebuild = %v, want seqs 12..15", got)
	}
}

// TestReadAfterRingParity drives ReadAfter through both the ring and the
// file-scan path and checks they agree record-for-record. The small ring
// forces recent cursors onto the ring path while older ones fall through
// to the scan.
func TestReadAfterRingParity(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, SegmentBytes: 256, RingRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendN(t, j, 0, 30)

	for after := uint64(0); after <= 31; after++ {
		for _, limit := range []int{0, 1, 5, 100} {
			recs, last, err := j.ReadAfter(after, limit)
			if err != nil {
				t.Fatalf("ReadAfter(%d, %d): %v", after, limit, err)
			}
			if last != 30 {
				t.Fatalf("ReadAfter(%d, %d) lastSeq = %d, want 30", after, limit, last)
			}
			want := collect(t, j, after)
			if limit > 0 && len(want) > limit {
				want = want[:limit]
			}
			if len(recs) != len(want) {
				t.Fatalf("ReadAfter(%d, %d) returned %d records, want %d", after, limit, len(recs), len(want))
			}
			for i := range recs {
				if recs[i].Seq != want[i].Seq ||
					string(recs[i].Key) != string(want[i].Key) ||
					string(recs[i].Value) != string(want[i].Value) {
					t.Fatalf("ReadAfter(%d, %d)[%d] = %+v, want %+v", after, limit, i, recs[i], want[i])
				}
			}
		}
	}
}

// TestTailReadNoFileIO proves ring-served tail reads touch no segment
// files: with the files deleted out from under a live journal, a recent
// cursor still reads fine while an old cursor (forced onto the scan path)
// fails.
func TestTailReadNoFileIO(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, RingRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendN(t, j, 0, 20) // ring holds 13..20, floor 12

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (found %d)", err, len(segs))
	}
	for _, s := range segs {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}

	recs, last, err := j.ReadAfter(15, 0)
	if err != nil {
		t.Fatalf("ring-covered ReadAfter after segment deletion: %v", err)
	}
	if last != 20 || len(recs) != 5 || recs[0].Seq != 16 {
		t.Fatalf("ReadAfter(15) = %d records (last %d), want 5 from seq 16", len(recs), last)
	}
	if _, _, err := j.ReadAfter(0, 0); err == nil {
		t.Fatal("scan-path ReadAfter succeeded with segment files deleted")
	}
}

// TestRingSeededOnRecovery reopens a journal and checks tail reads are
// ring-served immediately — recovery's segment scan seeds the ring, so a
// follower reattaching after a leader restart never pays a file scan.
func TestRingSeededOnRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, RingRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 20)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	j, err = Open(dir, Options{NoSync: true, RingRecords: 8, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	recs, last, err := j.ReadAfter(14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last != 20 || len(recs) != 6 {
		t.Fatalf("ReadAfter(14) after reopen = %d records (last %d), want 6 (last 20)", len(recs), last)
	}
	var buf strings.Builder
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `xbar_journal_tail_reads_total{source="ring"} 1`) {
		t.Fatalf("tail read after reopen was not ring-served:\n%s", buf.String())
	}
}

// TestCompactRebuildsRing checks the ring mirrors the on-disk state after
// compaction: superseded records leave the ring and survivors stay
// readable at their original sequence numbers.
func TestCompactRebuildsRing(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, RingRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// Two rounds over the same 10 keys: round one (seqs 1..10) is fully
	// superseded by round two (seqs 11..20).
	for round := 0; round < 2; round++ {
		for i := 0; i < 10; i++ {
			if _, err := j.Append(key(i), []byte(fmt.Sprintf("round-%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	recs, last, err := j.ReadAfter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last != 20 || len(recs) != 10 {
		t.Fatalf("post-compaction ReadAfter(0) = %d records (last %d), want 10 (last 20)", len(recs), last)
	}
	for i, rec := range recs {
		if want := uint64(11 + i); rec.Seq != want {
			t.Fatalf("post-compaction record %d has seq %d, want %d", i, rec.Seq, want)
		}
		if !strings.HasPrefix(string(rec.Value), "round-1-") {
			t.Fatalf("post-compaction record %d holds superseded value %q", i, rec.Value)
		}
	}
	// The ring rebuilt to exactly the live set: it answers tail reads from
	// memory even with the segment files gone.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*"))
	for _, s := range segs {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	if recs, _, err = j.ReadAfter(10, 0); err != nil || len(recs) != 10 {
		t.Fatalf("ring-served ReadAfter(10) after compaction = %d records, err %v", len(recs), err)
	}
}
