package journal

import (
	"fmt"
	"os"
	"time"
)

// compactCrashHook, when set by tests, runs after the compacted
// generation's segments are fully written but before the manifest swap
// commits them. Returning an error abandons the compaction at exactly the
// point a crash would: the old generation is still the active one and the
// new files are stale leftovers that the next Open removes.
var compactCrashHook func() error

// Compact rewrites the journal into a fresh generation containing only the
// newest record per key, minus records expired by the age/count policy
// (Options.MaxAge, Options.MaxRecords), then atomically swaps the manifest
// to the new generation and deletes the old files. Sequence numbers are
// preserved, so reader cursors (ReadAfter) survive compaction; the
// sequence counter never rewinds even when the newest records are dropped
// by policy. Appends block for the duration (compaction holds the journal
// lock), which keeps the swap trivially consistent.
func (j *Journal) Compact() error {
	start := time.Now()
	err := j.compact()
	j.met.observeCompact(time.Since(start), err)
	return err
}

func (j *Journal) compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	// Newest record per key wins. Records arrive oldest-first, so a plain
	// overwrite keeps the latest; the live list is rebuilt in seq order.
	latest := make(map[string]int)
	var live []Record
	if err := j.replayLocked(0, func(rec Record) error {
		if i, ok := latest[string(rec.Key)]; ok {
			live[i] = Record{} // superseded: hole, squeezed out below
		}
		latest[string(rec.Key)] = len(live)
		live = append(live, rec)
		return nil
	}); err != nil {
		return err
	}
	kept := live[:0]
	for _, rec := range live {
		if rec.Seq != 0 {
			kept = append(kept, rec)
		}
	}
	live = kept
	if j.opt.MaxAge > 0 {
		cutoff := j.now().Add(-j.opt.MaxAge).UnixNano()
		fresh := live[:0]
		for _, rec := range live {
			if rec.Time >= cutoff {
				fresh = append(fresh, rec)
			}
		}
		live = fresh
	}
	if j.opt.MaxRecords > 0 && len(live) > j.opt.MaxRecords {
		live = live[len(live)-j.opt.MaxRecords:] // seq order: keep newest
	}

	newGen := j.gen + 1
	segs, chain, err := writeGeneration(j.dir, newGen, live, j.lastSeq, j.opt)
	if err != nil {
		removeSegments(segs)
		return err
	}
	if compactCrashHook != nil {
		if herr := compactCrashHook(); herr != nil {
			return herr
		}
	}
	// The manifest rename is the commit point: before it the old
	// generation is authoritative (a crash loses nothing), after it the
	// new one is and the old files are garbage.
	if err := writeManifest(j.dir, newGen); err != nil {
		removeSegments(segs)
		return err
	}
	oldSegs := j.segs
	if j.tail != nil {
		//xbar:allow errcheck-durable the superseded generation is deleted on the next line; its close error is moot
		//xbar:allow lock-io compaction swaps generations under mu by design so readers never see a half-swapped state
		j.tail.Close()
		j.tail = nil
	}
	removeSegments(oldSegs)

	j.gen = newGen
	j.segs = segs
	j.chain = chain
	j.records = len(live)
	j.keys = make(map[string]int, len(live))
	j.oldest = 0
	for _, rec := range live {
		j.keys[string(rec.Key)]++
		if j.oldest == 0 || rec.Time < j.oldest {
			j.oldest = rec.Time
		}
	}
	// Keep the tail ring mirroring the on-disk state: records compaction
	// dropped (superseded or expired) leave the ring too, so ring-served
	// and scan-served tail reads agree.
	j.ring.rebuild(live)
	// The swap is committed; failing to reopen the tail now leaves nothing
	// to append into, so the journal is marked failed — appenders get this
	// error instead of a misleading ErrClosed, and readers keep serving the
	// compacted generation. A restart recovers cleanly.
	tail := segs[len(segs)-1]
	//xbar:allow lock-io compaction swaps generations under mu by design so readers never see a half-swapped state
	f, err := os.OpenFile(tail.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return j.markFailedLocked(fmt.Errorf("journal: reopening tail after compaction: %w", err))
	}
	//xbar:allow lock-io compaction swaps generations under mu by design so readers never see a half-swapped state
	fi, err := f.Stat()
	if err != nil {
		//xbar:allow errcheck-durable cleanup after failed stat; the journal is marked failed with the stat error
		//xbar:allow lock-io compaction swaps generations under mu by design so readers never see a half-swapped state
		f.Close()
		return j.markFailedLocked(fmt.Errorf("journal: reopening tail after compaction: %w", err))
	}
	j.tail = f
	j.tailSize = fi.Size()
	return nil
}

// writeGeneration writes live records into fresh segment files of gen,
// rotating at the size threshold, with the chain restarted from zero (a
// new generation is a new chain epoch). It returns the segment list and
// the chain value after the last record, so appends continue the chain.
// lastSeq seeds the base sequence of the trailing empty segment when there
// are no live records.
func writeGeneration(dir string, gen uint64, live []Record, lastSeq uint64, opt Options) ([]segmentInfo, chainHash, error) {
	var (
		segs  []segmentInfo
		chain chainHash
		f     *os.File
		size  int64
		index uint64
	)
	closeTail := func() error {
		if f == nil {
			return nil
		}
		if !opt.NoSync {
			if err := f.Sync(); err != nil {
				//xbar:allow errcheck-durable cleanup after failed sync; the sync error is returned
				f.Close()
				return err
			}
		}
		err := f.Close()
		f = nil
		return err
	}
	open := func(baseSeq uint64) error {
		if err := closeTail(); err != nil {
			return err
		}
		path := segmentPath(dir, gen, index)
		nf, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		header := segmentHeader{gen: gen, index: index, baseSeq: baseSeq, chainIn: chain}
		if _, err := nf.Write(header.encode()); err != nil {
			//xbar:allow errcheck-durable cleanup after failed header write; the write error is returned
			nf.Close()
			return err
		}
		segs = append(segs, segmentInfo{index: index, baseSeq: baseSeq, path: path})
		f, size = nf, headerSize
		index++
		return nil
	}
	var buf []byte
	for _, rec := range live {
		buf = appendFrame(buf[:0], rec)
		if f == nil || size+int64(len(buf)) > opt.SegmentBytes && size > headerSize {
			if err := open(rec.Seq); err != nil {
				return segs, chain, err
			}
		}
		if _, err := f.Write(buf); err != nil {
			closeTail()
			return segs, chain, err
		}
		chain = chain.advance(frameBody(buf))
		size += int64(len(buf))
	}
	if f == nil {
		if err := open(lastSeq + 1); err != nil {
			return segs, chain, err
		}
	}
	if err := closeTail(); err != nil {
		return segs, chain, err
	}
	return segs, chain, syncDir(dir)
}

func removeSegments(segs []segmentInfo) {
	for _, s := range segs {
		_ = os.Remove(s.path)
	}
}

// Expired reports whether the journal would drop anything at compaction:
// superseded duplicates, records older than MaxAge, or records beyond
// MaxRecords. It answers from the in-memory key index and oldest-record
// watermark — no file IO, so the engine's compaction loop can poll it
// without stalling appenders.
func (j *Journal) Expired() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return false
	}
	if j.records > len(j.keys) {
		return true // at least one key has a superseded duplicate
	}
	if j.opt.MaxAge > 0 && j.records > 0 && j.oldest < j.now().Add(-j.opt.MaxAge).UnixNano() {
		return true
	}
	return j.opt.MaxRecords > 0 && len(j.keys) > j.opt.MaxRecords
}

// SetNowFunc overrides the journal's clock (record timestamps and age
// policy evaluation). Tests only.
func (j *Journal) SetNowFunc(now func() time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.now = now
}
