package journal

import (
	"fmt"
	"testing"
)

// BenchmarkJournalAppend measures the append path without fsync (framing,
// CRC, chain, group-commit round trip) — the per-record CPU cost the
// engine pays on every cache insert.
func BenchmarkJournalAppend(b *testing.B) {
	j, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	k := []byte("0123456789abcdef0123456789abcdef") // sha256-sized key
	v := make([]byte, 256)                          // typical JSON job result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append(k, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppendSync measures the durable append path including
// the group-committed fsync — the floor on single-writer commit latency.
func BenchmarkJournalAppendSync(b *testing.B) {
	j, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	k := []byte("0123456789abcdef0123456789abcdef")
	v := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append(k, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalReplay measures warm-start recovery: scanning and
// validating 1024 records (CRC + hash chain) across rotated segments.
func BenchmarkJournalReplay(b *testing.B) {
	dir := b.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 64 << 10, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	v := make([]byte, 256)
	for i := 0; i < 1024; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("key-%04d", i)), v); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := j.Replay(0, func(Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 1024 {
			b.Fatalf("replayed %d", n)
		}
	}
	b.StopTimer()
	j.Close()
}
