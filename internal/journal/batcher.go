package journal

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Group-commit batcher: every Append/AppendBatch enqueues a request and
// blocks until its records are written and fsynced. A single committer
// goroutine drains the queue, so concurrent appenders that arrive while one
// fsync is in flight are committed together under the next one — batching
// emerges from backlog instead of from a fixed wait, which keeps
// single-writer latency at one fsync while amortizing the fsync cost under
// load (the shape of the batched ledger writer in the audit-log exemplar).

// KV is one key/value pair of a batched append.
type KV struct {
	Key, Value []byte
}

type appendReq struct {
	kvs  []KV
	resp chan appendRes
	// single marks a pooled one-record request (Append's path): the
	// committer writes the assigned seq into seqOne instead of allocating a
	// response slice, and the waiter copies the value out before the request
	// returns to the pool.
	single bool
	one    [1]KV
	seqOne [1]uint64
}

type appendRes struct {
	seqs []uint64
	err  error
}

// reqPool recycles append requests — struct, response channel, and the
// single-record KV/seq storage — so the steady-state append path allocates
// nothing per request.
var reqPool = sync.Pool{
	New: func() any { return &appendReq{resp: make(chan appendRes, 1)} },
}

// putReq returns a request to the pool, dropping references to the
// caller's key/value buffers. Only call it once the committer is provably
// done with the request (its response was received, or it was never
// enqueued): the response channel must be empty when the request is
// reused.
func putReq(req *appendReq) {
	req.kvs = nil
	req.one[0] = KV{}
	req.single = false
	reqPool.Put(req)
}

// Append durably writes one record and returns its assigned sequence
// number: when Append returns nil, the record is on disk (fsynced unless
// Options.NoSync) and visible to ReadAfter/Replay. An error means the
// record was NOT committed and readers will not see it — but, as in any
// WAL without commit markers, not that it is guaranteed absent from disk:
// if the error-path rollback itself failed, fully-written frames of the
// failed batch can survive a restart and recover as committed records
// (callers needing exactly-once must make records idempotent, as the
// engine's key->result records are).
func (j *Journal) Append(key, value []byte) (uint64, error) {
	req := reqPool.Get().(*appendReq)
	req.one[0] = KV{Key: key, Value: value}
	req.kvs = req.one[:1]
	req.single = true
	res, recycle := j.submit(req)
	var seq uint64
	if res.err == nil {
		// res.seqs aliases req.seqOne; copy the value out before the
		// request can be pooled and reused.
		seq = res.seqs[0]
	}
	if recycle {
		putReq(req)
	}
	return seq, res.err
}

// AppendBatch durably writes every record of kvs under ONE group commit and
// returns their assigned sequence numbers, in order. The assignment is
// all-or-nothing: either every record is committed — with consecutive
// sequence numbers, in one segment (a batch is never split across a
// rotation, so no published/rollback boundary can fall inside it) — or none
// is and the error reports why. One fsync covers the whole batch (plus any
// concurrent appends the committer drained alongside it), which is what the
// follower replication path leans on: a pulled window commits as one
// deterministic unit instead of one fsync per record. An empty batch is a
// no-op.
func (j *Journal) AppendBatch(kvs []KV) ([]uint64, error) {
	if len(kvs) == 0 {
		return nil, nil
	}
	req := reqPool.Get().(*appendReq)
	req.kvs = kvs
	res, recycle := j.submit(req)
	if recycle {
		// res.seqs (when set) was allocated for this batch and handed to
		// the caller; the committer never reuses it, so pooling the
		// request does not alias it.
		putReq(req)
	}
	return res.seqs, res.err
}

// submit enqueues req and blocks for the commit outcome. recycle reports
// that the committer is provably done with the request — its response was
// received, or it was never enqueued — so the caller may return it to the
// pool. When recycle is false the request may still sit unread in j.in
// (the enqueue raced past the committer's final drain) and must be leaked
// to the GC instead of reused.
func (j *Journal) submit(req *appendReq) (res appendRes, recycle bool) {
	select {
	case j.in <- req:
	case <-j.stop:
		return appendRes{err: ErrClosed}, true
	}
	select {
	case res := <-req.resp:
		return res, true
	case <-j.done:
		// The committer has exited. It drains j.in before exiting, so
		// either our request was committed (the response is buffered) or
		// the enqueue raced past the final drain — the send and the stop
		// were both ready and the select picked the send — and nobody
		// will ever answer.
		select {
		case res := <-req.resp:
			return res, true
		default:
			return appendRes{err: ErrClosed}, false
		}
	}
}

// run is the committer goroutine: take one request (blocking), drain
// whatever else is queued up to the batch record cap, commit the group,
// repeat.
func (j *Journal) run() {
	defer close(j.done)
	batch := make([]*appendReq, 0, j.opt.BatchRecords)
	for {
		batch = batch[:0]
		nrec := 0
		select {
		case req := <-j.in:
			batch = append(batch, req)
			nrec = len(req.kvs)
		case <-j.stop:
			// Drain stragglers that won the race against stop, then exit.
			for {
				select {
				case req := <-j.in:
					batch = append(batch, req)
				default:
					if len(batch) > 0 {
						j.commit(batch)
					}
					return
				}
			}
		}
	drain:
		for nrec < j.opt.BatchRecords {
			select {
			case req := <-j.in:
				batch = append(batch, req)
				nrec += len(req.kvs)
			default:
				break drain
			}
		}
		j.commit(batch)
	}
}

// commit writes one batch of requests as consecutive frames, rotating
// segments at the size threshold, fsyncs once, publishes the new state, and
// acknowledges every waiter. Rotation — and therefore every publish and
// rollback boundary — happens only between requests, never inside one, so a
// multi-record AppendBatch is atomic: its records are all acknowledged with
// their seqs or all reported failed. On a write, sync, or rotation error
// the tail is truncated back to the last published state, so the on-disk
// log never holds frames whose append reported failure (phantom records a
// follower could read, or orphans that a later commit would append after
// with reused sequence numbers). If that rollback itself fails, the journal
// is marked failed and refuses all further appends until restart; readers
// skip anything past the published state. Restart recovery truncates a torn
// orphan, but fully-written orphan frames are indistinguishable from
// committed records and recover as such (see the Append contract).
func (j *Journal) commit(batch []*appendReq) {
	start := time.Now()
	total := 0
	for _, req := range batch {
		total += len(req.kvs)
	}
	j.mu.Lock()
	if j.closed || j.tail == nil || j.failed != nil {
		err := ErrClosed
		if j.failed != nil {
			err = j.failed
		}
		j.mu.Unlock()
		j.met.countRefused(total)
		for _, req := range batch {
			req.resp <- appendRes{err: err}
		}
		return
	}
	// The seq table and frame buffer are committer-goroutine-local scratch,
	// reused across commits so the steady-state append path stops paying
	// per-commit allocations. Entries are cleared up front: a stale inner
	// slice from an earlier batch must never be acknowledged.
	if cap(j.seqScratch) < len(batch) {
		j.seqScratch = make([][]uint64, len(batch))
	}
	seqs := j.seqScratch[:len(batch)]
	for i := range seqs {
		seqs[i] = nil
	}
	now := j.now().UnixNano()
	var err error
	buf := j.commitBuf[:0]
	flush := func() {
		if err != nil || len(buf) == 0 {
			return
		}
		//xbar:allow lock-io single-committer group commit: mu guards all file IO by design; readers are served by the tail ring
		if _, werr := j.tail.Write(buf); werr != nil {
			err = werr
			return
		}
		j.tailSize += int64(len(buf))
		buf = buf[:0]
	}
	lastSeq, chain, records := j.lastSeq, j.chain, j.records
	// published counts the batch requests folded into the journal state
	// (their records are durable and will be acknowledged with their seqs
	// even if a later request fails); pubRecords is the record count behind
	// them; stable is the tail size consistent with that state — the
	// rollback point.
	published, pubRecords := 0, 0
	stable := j.tailSize
	publish := func(upTo int) {
		j.lastSeq, j.chain, j.records = lastSeq, chain, records
		j.publishLocked(batch, seqs, published, upTo, now)
		for i := published; i < upTo; i++ {
			pubRecords += len(batch[i].kvs)
		}
		published = upTo
		stable = j.tailSize
	}
	for i, req := range batch {
		if err != nil {
			break
		}
		// Size the whole request up front: if it would cross the segment
		// threshold, rotate BEFORE writing any of it, so its frames land in
		// one segment and publish boundaries stay request-aligned. A request
		// bigger than the segment budget overflows its fresh segment rather
		// than splitting.
		var need int64
		for _, kv := range req.kvs {
			need += int64(frameOverhead + recordFixedSize + len(kv.Key) + len(kv.Value))
		}
		if j.tailSize+int64(len(buf))+need > j.opt.SegmentBytes && (j.tailSize > headerSize || len(buf) > 0) {
			flush()
			if err == nil && !j.opt.NoSync {
				// The frames ahead of the rotation are published (and
				// acknowledged) below, so they must be durable first.
				//xbar:allow lock-io group commit fsyncs under mu by design; see Journal.mu doc
				err = j.tail.Sync()
			}
			if err == nil {
				// rotateLocked reads j.lastSeq/j.chain for the new
				// header, so publish progress before sealing.
				publish(i)
				err = j.rotateLocked()
				if err == nil {
					stable = j.tailSize
				}
			}
		}
		if err != nil {
			break
		}
		if req.single {
			// One-record pooled request: the seq rides back on the request
			// itself instead of a fresh slice.
			seqs[i] = req.seqOne[:1]
		} else {
			seqs[i] = make([]uint64, len(req.kvs))
		}
		for k, kv := range req.kvs {
			lastSeq++
			rec := Record{Seq: lastSeq, Time: now, Key: kv.Key, Value: kv.Value}
			s := len(buf)
			buf = appendFrame(buf, rec)
			chain = chain.advance(frameBody(buf[s:]))
			records++
			seqs[i][k] = lastSeq
		}
	}
	flush()
	if err == nil && !j.opt.NoSync {
		//xbar:allow lock-io group commit fsyncs under mu by design; see Journal.mu doc
		err = j.tail.Sync()
	}
	if err == nil {
		publish(len(batch))
	} else {
		j.rollbackLocked(stable)
	}
	if published > 0 {
		close(j.notify)
		j.notify = make(chan struct{})
	}
	j.commitBuf = buf[:0] // keep the (possibly grown) capacity for the next commit
	j.mu.Unlock()
	j.met.observeCommit(time.Since(start), total, pubRecords)
	for i, req := range batch {
		if i < published {
			req.resp <- appendRes{seqs: seqs[i]}
		} else {
			req.resp <- appendRes{err: err}
		}
	}
}

// publishLocked folds the committed batch requests [published, upTo) into
// the journal's in-memory read state: per-key counts, the tail ring, and
// the oldest-record clock. It runs under j.mu on every commit, between the
// group fsync and the acknowledgements, so it is pinned allocation-free
// apart from the deliberate per-record copies the ring owns. Caller holds
// j.mu.
//
//xbar:hotpath
func (j *Journal) publishLocked(batch []*appendReq, seqs [][]uint64, published, upTo int, now int64) {
	for i := published; i < upTo; i++ {
		req := batch[i]
		for k := range req.kvs {
			kv := &req.kvs[k]
			j.keys[string(kv.Key)]++
			// The ring owns copies: the appender's key/value slices are the
			// caller's to reuse once the append returns.
			j.ring.push(Record{
				Seq:  seqs[i][k],
				Time: now,
				//xbar:allow hotpath-alloc deliberate per-record copy; the ring must outlive the appender's buffer
				Key: append([]byte(nil), kv.Key...),
				//xbar:allow hotpath-alloc deliberate per-record copy; the ring must outlive the appender's buffer
				Value: append([]byte(nil), kv.Value...),
			})
		}
	}
	if j.oldest == 0 && upTo > 0 {
		j.oldest = now
	}
}

// rollbackLocked discards frames written past the published state after a
// failed commit: truncate the tail back to stable, reset the write offset
// (the tail is not opened O_APPEND, so a partial write leaves the offset
// past the truncation point), and fsync the truncation. Any failure here
// marks the journal failed so no later commit can write after the orphan
// frames and reuse their sequence numbers. Caller holds j.mu.
func (j *Journal) rollbackLocked(stable int64) {
	fail := func(what string, err error) {
		j.markFailedLocked(fmt.Errorf("journal: %s during rollback of failed commit: %w", what, err))
	}
	//xbar:allow lock-io rollback must repair the tail before any other committer can run
	if err := j.tail.Truncate(stable); err != nil {
		fail("truncate", err)
		return
	}
	//xbar:allow lock-io rollback must repair the tail before any other committer can run
	if _, err := j.tail.Seek(stable, io.SeekStart); err != nil {
		fail("seek", err)
		return
	}
	j.tailSize = stable
	if !j.opt.NoSync {
		//xbar:allow lock-io rollback must repair the tail before any other committer can run
		if err := j.tail.Sync(); err != nil {
			fail("sync", err)
		}
	}
}
