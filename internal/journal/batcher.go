package journal

// Group-commit batcher: every Append enqueues a request and blocks until
// its record is written and fsynced. A single committer goroutine drains
// the queue, so concurrent appenders that arrive while one fsync is in
// flight are committed together under the next one — batching emerges from
// backlog instead of from a fixed wait, which keeps single-writer latency
// at one fsync while amortizing the fsync cost under load (the shape of
// the batched ledger writer in the audit-log exemplar).

type appendReq struct {
	key, value []byte
	resp       chan appendRes
}

type appendRes struct {
	seq uint64
	err error
}

// Append durably writes one record and returns its assigned sequence
// number: when Append returns nil, the record is on disk (fsynced unless
// Options.NoSync) and visible to ReadAfter/Replay.
func (j *Journal) Append(key, value []byte) (uint64, error) {
	req := &appendReq{key: key, value: value, resp: make(chan appendRes, 1)}
	select {
	case j.in <- req:
	case <-j.stop:
		return 0, ErrClosed
	}
	select {
	case res := <-req.resp:
		return res.seq, res.err
	case <-j.done:
		// The committer has exited. It drains j.in before exiting, so
		// either our request was committed (the response is buffered) or
		// the enqueue raced past the final drain — the send and the stop
		// were both ready and the select picked the send — and nobody
		// will ever answer.
		select {
		case res := <-req.resp:
			return res.seq, res.err
		default:
			return 0, ErrClosed
		}
	}
}

// run is the committer goroutine: take one request (blocking), drain
// whatever else is queued up to the batch cap, commit the group, repeat.
func (j *Journal) run() {
	defer close(j.done)
	batch := make([]*appendReq, 0, j.opt.BatchRecords)
	for {
		batch = batch[:0]
		select {
		case req := <-j.in:
			batch = append(batch, req)
		case <-j.stop:
			// Drain stragglers that won the race against stop, then exit.
			for {
				select {
				case req := <-j.in:
					batch = append(batch, req)
				default:
					if len(batch) > 0 {
						j.commit(batch)
					}
					return
				}
			}
		}
	drain:
		for len(batch) < j.opt.BatchRecords {
			select {
			case req := <-j.in:
				batch = append(batch, req)
			default:
				break drain
			}
		}
		j.commit(batch)
	}
}

// commit writes one batch as consecutive frames, rotating segments at the
// size threshold, fsyncs once, publishes the new state, and acknowledges
// every waiter.
func (j *Journal) commit(batch []*appendReq) {
	j.mu.Lock()
	if j.closed || j.tail == nil {
		j.mu.Unlock()
		for _, req := range batch {
			req.resp <- appendRes{err: ErrClosed}
		}
		return
	}
	seqs := make([]uint64, len(batch))
	now := j.now().UnixNano()
	var err error
	var buf []byte
	flush := func() {
		if err != nil || len(buf) == 0 {
			return
		}
		if _, werr := j.tail.Write(buf); werr != nil {
			err = werr
			return
		}
		j.tailSize += int64(len(buf))
		buf = buf[:0]
	}
	lastSeq, chain, records := j.lastSeq, j.chain, j.records
	for i, req := range batch {
		if err != nil {
			break
		}
		if j.tailSize+int64(len(buf)) > j.opt.SegmentBytes && (j.tailSize > headerSize || len(buf) > 0) {
			flush()
			if err == nil {
				// rotateLocked reads j.lastSeq/j.chain for the new
				// header, so publish progress before sealing.
				j.lastSeq, j.chain, j.records = lastSeq, chain, records
				err = j.rotateLocked()
			}
		}
		if err != nil {
			break
		}
		lastSeq++
		rec := Record{Seq: lastSeq, Time: now, Key: req.key, Value: req.value}
		start := len(buf)
		buf = appendFrame(buf, rec)
		chain = chain.advance(frameBody(buf[start:]))
		records++
		seqs[i] = lastSeq
	}
	flush()
	if err == nil && !j.opt.NoSync {
		err = j.tail.Sync()
	}
	if err == nil {
		j.lastSeq, j.chain, j.records = lastSeq, chain, records
		for _, req := range batch {
			j.keys[string(req.key)]++
		}
		if j.oldest == 0 {
			j.oldest = now
		}
		close(j.notify)
		j.notify = make(chan struct{})
	}
	j.mu.Unlock()
	for i, req := range batch {
		if err != nil {
			req.resp <- appendRes{err: err}
		} else {
			req.resp <- appendRes{seq: seqs[i]}
		}
	}
}
