package journal

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

// countSegmentRecords parses one segment file's frames directly (no chain
// verification — the Open in the test already proved integrity).
func countSegmentRecords(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off, n := int64(headerSize), 0
	for int(off) < len(data) {
		_, sz, err := parseFrame(data[off:])
		if err != nil {
			t.Fatalf("segment %s: frame at %d: %v", path, off, err)
		}
		n++
		off += int64(sz)
	}
	return n
}

func batchKVs(start, n int) []KV {
	kvs := make([]KV, n)
	for i := range kvs {
		kvs[i] = KV{Key: key(start + i), Value: val(start + i)}
	}
	return kvs
}

func TestAppendBatchContiguousSeqs(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := j.AppendBatch(batchKVs(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 5 {
		t.Fatalf("got %d seqs, want 5", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs = %v, want contiguous from 1", seqs)
		}
	}
	// Interleave with single appends: numbering stays one shared space.
	seq, err := j.Append(key(5), val(5))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("Append after batch got seq %d, want 6", seq)
	}
	seqs2, err := j.AppendBatch(batchKVs(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if seqs2[0] != 7 || seqs2[2] != 9 {
		t.Fatalf("second batch seqs = %v, want 7..9", seqs2)
	}
	if got, err := j.AppendBatch(nil); got != nil || err != nil {
		t.Fatalf("empty batch = %v, %v; want nil, nil", got, err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := collect(t, j2, 0)
	if len(recs) != 9 {
		t.Fatalf("restart recovered %d records, want 9", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || !bytes.Equal(rec.Key, key(i)) || !bytes.Equal(rec.Value, val(i)) {
			t.Fatalf("record %d = seq %d key %q", i, rec.Seq, rec.Key)
		}
	}
}

// A batch must never be split by segment rotation: under heavy rotation
// pressure every multi-record batch still lands whole in one segment.
func TestAppendBatchNotSplitAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every 4-record batch exceeds the threshold by itself.
	j, err := Open(dir, Options{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const batches = 8
	for b := 0; b < batches; b++ {
		if _, err := j.AppendBatch(batchKVs(b*4, 4)); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Each sealed segment must contain whole batches: scanning every segment
	// independently, record counts are multiples of the batch size.
	byGen, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(byGen) != 1 {
		t.Fatalf("expected one generation, got %d", len(byGen))
	}
	var segs []segmentInfo
	for _, s := range byGen {
		segs = s
	}
	if len(segs) < batches-1 {
		t.Fatalf("only %d segments — rotation pressure test vacuous", len(segs))
	}
	total := 0
	for _, seg := range segs {
		n := countSegmentRecords(t, seg.path)
		if n%4 != 0 {
			t.Fatalf("segment %s holds %d records — a batch was split across rotation", seg.path, n)
		}
		total += n
	}
	if total != batches*4 {
		t.Fatalf("segments hold %d records, want %d", total, batches*4)
	}
}

// All-or-nothing: a batch that fails mid-commit (rotation blocked) must
// leave no records behind and burn no sequence numbers.
func TestAppendBatchAtomicOnFailure(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendBatch(batchKVs(0, 3)); err != nil {
		t.Fatal(err)
	}
	// Block the rotation the next batch needs (see
	// TestCommitRotationErrorKeepsJournalConsistent).
	blocker := segmentPath(dir, 0, 1)
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendBatch(batchKVs(3, 3)); err == nil {
		t.Fatal("batch succeeded despite failed rotation")
	}
	recs, last, err := j.ReadAfter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || last != 3 {
		t.Fatalf("after failed batch: %d records, last seq %d; want 3, 3", len(recs), last)
	}
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	seqs, err := j.AppendBatch(batchKVs(3, 3))
	if err != nil {
		t.Fatalf("batch after rotation unblocked: %v", err)
	}
	if seqs[0] != 4 || seqs[2] != 6 {
		t.Fatalf("recovered batch seqs = %v, want 4..6 (failed batch burned seqs)", seqs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if recs := collect(t, j2, 0); len(recs) != 6 {
		t.Fatalf("restart recovered %d records, want 6", len(recs))
	}
}

func TestAppendBatchConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 4096, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		each    = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				base := (w*each + i) * 3
				if w%2 == 0 {
					seqs, err := j.AppendBatch(batchKVs(base, 3))
					if err != nil {
						errs <- err
						return
					}
					// Batch records must be consecutive even when the
					// committer interleaves other writers' requests.
					if seqs[1] != seqs[0]+1 || seqs[2] != seqs[0]+2 {
						errs <- fmt.Errorf("batch seqs not consecutive: %v", seqs)
						return
					}
				} else {
					if _, err := j.Append(key(base), val(base)); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	wantRecords := (writers / 2 * each * 3) + (writers / 2 * each)
	recs, last, err := j.ReadAfter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = recs
	if last != uint64(wantRecords) {
		t.Fatalf("last seq %d, want %d (no gaps, no reuse)", last, wantRecords)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	all := collect(t, j2, 0)
	if len(all) != wantRecords {
		t.Fatalf("recovered %d records, want %d", len(all), wantRecords)
	}
	for i, rec := range all {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d — gap in total order", i, rec.Seq)
		}
	}
}

func TestMetaKeys(t *testing.T) {
	k := MetaKey(LeaseKind)
	if !IsMetaKey(k) {
		t.Fatalf("MetaKey(%q) not recognized by IsMetaKey", LeaseKind)
	}
	for _, plain := range [][]byte{[]byte("deadbeef"), []byte(""), []byte("xbar:lease")} {
		if IsMetaKey(plain) {
			t.Fatalf("IsMetaKey(%q) = true, want false", plain)
		}
	}
	// Meta records are ordinary records: compaction keeps exactly the
	// newest one per key.
	j, err := Open(t.TempDir(), Options{NoSync: true, MaxRecords: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Append(k, []byte(`{"epoch":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(k, []byte(`{"epoch":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, j, 0)
	if len(recs) != 1 || !bytes.Equal(recs[0].Value, []byte(`{"epoch":2}`)) {
		t.Fatalf("compaction kept %d lease records (want newest only): %+v", len(recs), recs)
	}
}

func TestHealthy(t *testing.T) {
	j, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Healthy(); err != nil {
		t.Fatalf("fresh journal Healthy() = %v, want nil", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Healthy(); err == nil {
		t.Fatal("closed journal Healthy() = nil, want error")
	}
}
