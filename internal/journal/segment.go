package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
)

// Segment header layout (little-endian):
//
//	magic   [4]byte  "XBWJ"
//	u32     format version
//	u64     generation (bumped by every compaction)
//	u64     segment index within the generation
//	u64     base sequence (first seq that may appear in this segment)
//	chain   [32]byte integrity chain coming into this segment
//	u32     CRC-32C of the preceding 64 bytes
//
// The chain-in value makes sealed segments tamper-evident: recovery
// recomputes the chain record by record and refuses any segment whose
// header does not continue the chain of the data before it.
const (
	segmentMagic   = "XBWJ"
	formatVersion  = 1
	headerSize     = 4 + 4 + 8 + 8 + 8 + 32 + 4
	manifestName   = "MANIFEST"
	segmentPattern = "wal-%08x-%08x.seg"
)

// segmentHeader is the decoded fixed-size segment preamble.
type segmentHeader struct {
	gen     uint64
	index   uint64
	baseSeq uint64
	chainIn chainHash
}

func (h segmentHeader) encode() []byte {
	buf := make([]byte, 0, headerSize)
	buf = append(buf, segmentMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint64(buf, h.gen)
	buf = binary.LittleEndian.AppendUint64(buf, h.index)
	buf = binary.LittleEndian.AppendUint64(buf, h.baseSeq)
	buf = append(buf, h.chainIn[:]...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func parseSegmentHeader(data []byte) (segmentHeader, error) {
	if len(data) < headerSize {
		return segmentHeader{}, fmt.Errorf("journal: segment shorter than header: %d bytes", len(data))
	}
	if string(data[:4]) != segmentMagic {
		return segmentHeader{}, fmt.Errorf("journal: bad segment magic %q", data[:4])
	}
	if got, want := binary.LittleEndian.Uint32(data[headerSize-4:headerSize]),
		crc32.Checksum(data[:headerSize-4], crcTable); want != got {
		return segmentHeader{}, fmt.Errorf("journal: segment header CRC mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != formatVersion {
		return segmentHeader{}, fmt.Errorf("journal: segment format version %d, want %d", v, formatVersion)
	}
	h := segmentHeader{
		gen:     binary.LittleEndian.Uint64(data[8:]),
		index:   binary.LittleEndian.Uint64(data[16:]),
		baseSeq: binary.LittleEndian.Uint64(data[24:]),
	}
	copy(h.chainIn[:], data[32:64])
	return h, nil
}

// segmentInfo tracks one on-disk segment of the active generation.
type segmentInfo struct {
	index   uint64
	baseSeq uint64
	path    string
}

func segmentPath(dir string, gen, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf(segmentPattern, gen, index))
}

// parseSegmentName extracts (gen, index) from a segment file name.
func parseSegmentName(name string) (gen, index uint64, ok bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(name, segmentPattern, &gen, &index); err != nil {
		return 0, 0, false
	}
	return gen, index, true
}

// manifest names the active generation. It is replaced atomically (write
// to a temp file, rename), so a crash anywhere in compaction leaves either
// the old or the new generation fully active — never a mix.
type manifest struct {
	Version int    `json:"version"`
	Gen     uint64 `json:"gen"`
}

func readManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return manifest{}, false, nil
		}
		return manifest{}, false, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("journal: parsing %s: %w", manifestName, err)
	}
	if m.Version != formatVersion {
		return manifest{}, false, fmt.Errorf("journal: manifest version %d, want %d", m.Version, formatVersion)
	}
	return m, true, nil
}

func writeManifest(dir string, gen uint64) error {
	data, err := json.Marshal(manifest{Version: formatVersion, Gen: gen})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// listSegments groups the directory's segment files by generation, each
// group sorted by index.
func listSegments(dir string) (map[uint64][]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byGen := make(map[uint64][]segmentInfo)
	for _, en := range entries {
		if en.IsDir() {
			continue
		}
		gen, index, ok := parseSegmentName(en.Name())
		if !ok {
			continue
		}
		byGen[gen] = append(byGen[gen], segmentInfo{index: index, path: filepath.Join(dir, en.Name())})
	}
	for gen := range byGen {
		s := byGen[gen]
		sort.Slice(s, func(i, j int) bool { return s[i].index < s[j].index })
		byGen[gen] = s
	}
	return byGen, nil
}

// syncDir fsyncs a directory so renames and newly created files survive a
// power cut. Filesystems that cannot fsync a directory report EINVAL or
// ENOTSUP and are tolerated; a real write-back failure (EIO) propagates.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if errors.Is(syncErr, syscall.EINVAL) || errors.Is(syncErr, syscall.ENOTSUP) {
		syncErr = nil
	}
	if err := d.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	return syncErr
}
