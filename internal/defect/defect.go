// Package defect models fabrication defects of memristive crossbars in the
// paper's stuck-at paradigm: stuck-at-open devices are frozen at R_OFF
// (usable wherever the design wants a disabled device) and stuck-at-closed
// devices are frozen at R_ON (they force their NAND line to a constant and
// poison their column, making both lines unusable on an optimum-size array).
package defect

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bitmat"
)

// Kind is the defect state of one crosspoint.
type Kind uint8

const (
	// OK is a functional, programmable device.
	OK Kind = iota
	// StuckOpen is frozen at R_OFF (logic 1 in the Snider model).
	StuckOpen
	// StuckClosed is frozen at R_ON (logic 0 in the Snider model).
	StuckClosed
)

// String names the defect kind.
func (k Kind) String() string {
	switch k {
	case OK:
		return "ok"
	case StuckOpen:
		return "stuck-open"
	case StuckClosed:
		return "stuck-closed"
	}
	return "unknown"
}

// Map is the defect map of one fabricated crossbar, the Crossbar Matrix (CM)
// of the paper's Fig. 8(b). Alongside the per-cell kinds it maintains, under
// the packed-row contract of internal/bitmat, a word-packed functional mask
// per row plus per-line stuck-closed caches; every mutation goes through Set,
// which updates them incrementally, so RowHasClosed / ColHasClosed are O(1)
// and the mapping hot path tests row compatibility with word operations.
type Map struct {
	Rows, Cols int
	cells      []Kind

	// functional packs Functional(r, c) row-major: bit c of row r is 1 when
	// the device is programmable (the CM of Fig. 8(b)).
	functional *bitmat.Matrix
	// closedRow / closedCol count stuck-closed devices per line; the masks
	// flag lines whose count is non-zero.
	closedRow     []int32
	closedCol     []int32
	closedRowMask bitmat.Row
	closedColMask bitmat.Row
	// open / closed are whole-map defect totals for Summarize.
	open, closed int

	// Delta window (see delta.go): version counts effective mutations;
	// deltaRows/deltaCols mark the lines changed since the last ResetDelta,
	// unless deltaAll says the whole map must be treated as dirty. deltaBase
	// is the version the window started at, and prevCells is the grow-once
	// snapshot buffer Regenerate diffs against.
	version   uint64
	deltaBase uint64
	deltaAll  bool
	deltaRows bitmat.Row
	deltaCols bitmat.Row
	prevCells []Kind
}

// NewMap returns an all-functional defect map.
func NewMap(rows, cols int) *Map {
	if rows < 0 || cols < 0 {
		panic("defect: negative dimensions")
	}
	// All four per-line masks (closed-row/col caches and the delta window)
	// share one backing slice: half the mask allocations of separate
	// bitmat.NewRow calls, and the delta window costs nothing extra.
	rw, cw := (rows+63)/64, (cols+63)/64
	masks := make([]uint64, 2*rw+2*cw)
	m := &Map{
		Rows:          rows,
		Cols:          cols,
		cells:         make([]Kind, rows*cols),
		functional:    bitmat.New(rows, cols),
		closedRow:     make([]int32, rows),
		closedCol:     make([]int32, cols),
		closedRowMask: masks[0:rw:rw],
		closedColMask: masks[rw : rw+cw : rw+cw],
		deltaAll:      true,
		deltaRows:     masks[rw+cw : rw+cw+rw : rw+cw+rw],
		deltaCols:     masks[rw+cw+rw:],
	}
	m.functional.Fill()
	return m
}

// Params controls random defect injection.
type Params struct {
	// POpen is the independent per-crosspoint probability of a stuck-at-open
	// defect (the paper's experiments use 0.10).
	POpen float64
	// PClosed is the independent probability of a stuck-at-closed defect.
	// The paper's Table II experiments set it to zero because closed defects
	// cannot be tolerated without redundant lines.
	PClosed float64
}

func (p Params) validate(rng *rand.Rand) error {
	if p.POpen < 0 || p.PClosed < 0 || p.POpen+p.PClosed > 1 {
		return fmt.Errorf("defect: invalid probabilities POpen=%v PClosed=%v", p.POpen, p.PClosed)
	}
	if rng == nil {
		return fmt.Errorf("defect: nil random source")
	}
	return nil
}

// Generate samples a defect map with independent uniform per-crosspoint
// defect probabilities, the paper's Monte Carlo defect model.
func Generate(rows, cols int, p Params, rng *rand.Rand) (*Map, error) {
	if err := p.validate(rng); err != nil {
		return nil, err
	}
	m := NewMap(rows, cols)
	m.sample(p, rng)
	return m, nil
}

// Regenerate resamples the map in place with the same defect model as
// Generate — identical draws from an identically-seeded rng produce an
// identical map — without allocating. It is the scratch-buffer primitive of
// the Monte Carlo yield loops: one preallocated map per worker, refilled per
// trial.
//
//xbar:hotpath
func (m *Map) Regenerate(p Params, rng *rand.Rand) error {
	//xbar:allow hotpath-alloc parameter validation is the cold error path and allocates only when it rejects
	if err := p.validate(rng); err != nil {
		return err
	}
	if m.deltaAll {
		// No consumer is tracking a window, so there is nothing to diff for.
		m.Reset()
		m.sample(p, rng)
		return nil
	}
	// Snapshot, resample, then report the exact delta: the rows/columns
	// holding a cell whose kind differs between the old and new trial. The
	// rng draw order is untouched, so the resampled map is bit-identical to
	// the non-tracking path.
	if cap(m.prevCells) < len(m.cells) {
		//xbar:allow hotpath-alloc grow-once snapshot buffer; steady-state trials reuse it
		m.prevCells = make([]Kind, len(m.cells))
	}
	prev := m.prevCells[:len(m.cells)]
	copy(prev, m.cells)
	m.Reset() // sets deltaAll; undone below once the exact delta is known
	m.sample(p, rng)
	m.deltaAll = false
	for r := 0; r < m.Rows; r++ {
		base := r * m.Cols
		dirty := false
		for c := 0; c < m.Cols; c++ {
			if m.cells[base+c] != prev[base+c] {
				dirty = true
				m.deltaCols.Set(c)
			}
		}
		if dirty {
			m.deltaRows.Set(r)
		}
	}
	return nil
}

// Reset clears the map to all-functional in place without allocating: the
// reuse primitive of both Regenerate and the column-aware mapper's scratch
// projection. Clearing rewrites every cell, so the delta window degrades to
// all-dirty (Regenerate narrows it back down by diffing against a snapshot).
//
//xbar:hotpath
func (m *Map) Reset() {
	if m.open == 0 && m.closed == 0 {
		return // already all-functional; nothing changed, keep the window
	}
	for i := range m.cells {
		m.cells[i] = OK
	}
	m.functional.Fill()
	for i := range m.closedRow {
		m.closedRow[i] = 0
	}
	for i := range m.closedCol {
		m.closedCol[i] = 0
	}
	m.closedRowMask.Zero()
	m.closedColMask.Zero()
	m.open, m.closed = 0, 0
	m.version++
	m.deltaAll = true
}

// sample draws every cell in row-major order (the rng consumption order is
// part of the reproducibility contract: Generate, Regenerate, and any
// identically-seeded rerun must agree bit for bit).
//
//xbar:hotpath
func (m *Map) sample(p Params, rng *rand.Rand) {
	for i := range m.cells {
		u := rng.Float64()
		switch {
		case u < p.POpen:
			m.set(i/m.Cols, i%m.Cols, StuckOpen)
		case u < p.POpen+p.PClosed:
			m.set(i/m.Cols, i%m.Cols, StuckClosed)
		}
	}
}

// At returns the defect kind at (r, c).
//
//xbar:hotpath
func (m *Map) At(r, c int) Kind { return m.cells[r*m.Cols+c] }

// Set stores a defect kind at (r, c), updating the packed masks and the
// per-line caches incrementally (O(1)); used by tests and fault injection.
//
//xbar:hotpath
func (m *Map) Set(r, c int, k Kind) { m.set(r, c, k) }

//xbar:hotpath
func (m *Map) set(r, c int, k Kind) {
	old := m.cells[r*m.Cols+c]
	if old == k {
		return
	}
	m.version++
	if !m.deltaAll {
		m.deltaRows.Set(r)
		m.deltaCols.Set(c)
	}
	switch old {
	case StuckOpen:
		m.open--
	case StuckClosed:
		m.closed--
		if m.closedRow[r]--; m.closedRow[r] == 0 {
			m.closedRowMask.Clear(r)
		}
		if m.closedCol[c]--; m.closedCol[c] == 0 {
			m.closedColMask.Clear(c)
		}
	}
	m.cells[r*m.Cols+c] = k
	switch k {
	case OK:
		m.functional.Set(r, c)
		return
	case StuckOpen:
		m.open++
	case StuckClosed:
		m.closed++
		if m.closedRow[r]++; m.closedRow[r] == 1 {
			m.closedRowMask.Set(r)
		}
		if m.closedCol[c]++; m.closedCol[c] == 1 {
			m.closedColMask.Set(c)
		}
	}
	m.functional.Clear(r, c)
}

// Functional reports whether the device at (r, c) is programmable.
//
//xbar:hotpath
func (m *Map) Functional(r, c int) bool { return m.At(r, c) == OK }

// FunctionalRow returns the packed functional mask of physical row r (bit c
// set = programmable device). The view aliases the map's storage: callers
// must treat it as read-only, and it is invalidated by Set/Regenerate.
//
//xbar:hotpath
func (m *Map) FunctionalRow(r int) bitmat.Row { return m.functional.Row(r) }

// ClosedCols returns the packed mask of columns containing at least one
// stuck-at-closed device (read-only view, invalidated by Set/Regenerate).
//
//xbar:hotpath
func (m *Map) ClosedCols() bitmat.Row { return m.closedColMask }

// ClosedRows returns the packed mask of rows containing at least one
// stuck-at-closed device (read-only view, invalidated by Set/Regenerate).
// ANDing its complement into a candidate bitset excludes every poisoned
// physical row in one word pass.
//
//xbar:hotpath
func (m *Map) ClosedRows() bitmat.Row { return m.closedRowMask }

// FunctionalMatrix returns the packed functional mask of the whole map, the
// CM the batched row-matching kernel scans. Read-only view, invalidated by
// Set/Regenerate.
//
//xbar:hotpath
func (m *Map) FunctionalMatrix() *bitmat.Matrix { return m.functional }

// ClosedInColumn returns the stuck-at-closed device count of column c (O(1)
// via the incremental cache).
//
//xbar:hotpath
func (m *Map) ClosedInColumn(c int) int { return int(m.closedCol[c]) }

// RowHasClosed reports whether row r contains a stuck-at-closed device, in
// which case the paper's model renders the whole horizontal line unusable
// (the NAND output is forced to logic 1). O(1) via the incremental cache.
//
//xbar:hotpath
func (m *Map) RowHasClosed(r int) bool { return m.closedRow[r] > 0 }

// ColHasClosed reports whether column c contains a stuck-at-closed device,
// which renders the vertical line unusable (it cannot be initialized to
// R_OFF). O(1) via the incremental cache.
//
//xbar:hotpath
func (m *Map) ColHasClosed(c int) bool { return m.closedCol[c] > 0 }

// UsableRow reports whether row r can host any logic line at all.
//
//xbar:hotpath
func (m *Map) UsableRow(r int) bool { return !m.RowHasClosed(r) }

// Stats summarizes a defect map.
type Stats struct {
	Devices     int
	Open        int
	Closed      int
	OpenRate    float64
	ClosedRate  float64
	PoisonedRow int // rows containing at least one stuck-closed device
	PoisonedCol int
}

// Summarize computes defect statistics from the incremental caches (no
// rescan of the cells).
func (m *Map) Summarize() Stats {
	s := Stats{
		Devices:     m.Rows * m.Cols,
		Open:        m.open,
		Closed:      m.closed,
		PoisonedRow: bitmat.PopCount(m.closedRowMask),
		PoisonedCol: bitmat.PopCount(m.closedColMask),
	}
	if s.Devices > 0 {
		s.OpenRate = float64(s.Open) / float64(s.Devices)
		s.ClosedRate = float64(s.Closed) / float64(s.Devices)
	}
	return s
}

// CrossbarMatrix renders the CM of the paper's Fig. 8(b): true = functional
// switch (matches both 1 and 0 of the FM), false = stuck-open (matches only
// 0). Stuck-closed devices are also false here; callers that tolerate them
// must additionally exclude poisoned lines.
func (m *Map) CrossbarMatrix() [][]bool {
	cm := make([][]bool, m.Rows)
	for r := range cm {
		cm[r] = make([]bool, m.Cols)
		for c := range cm[r] {
			cm[r][c] = m.Functional(r, c)
		}
	}
	return cm
}

// String renders the map: '.' functional, 'o' stuck-open, 'x' stuck-closed.
func (m *Map) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			switch m.At(r, c) {
			case OK:
				b.WriteByte('.')
			case StuckOpen:
				b.WriteByte('o')
			case StuckClosed:
				b.WriteByte('x')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
