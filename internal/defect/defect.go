// Package defect models fabrication defects of memristive crossbars in the
// paper's stuck-at paradigm: stuck-at-open devices are frozen at R_OFF
// (usable wherever the design wants a disabled device) and stuck-at-closed
// devices are frozen at R_ON (they force their NAND line to a constant and
// poison their column, making both lines unusable on an optimum-size array).
package defect

import (
	"fmt"
	"math/rand"
	"strings"
)

// Kind is the defect state of one crosspoint.
type Kind uint8

const (
	// OK is a functional, programmable device.
	OK Kind = iota
	// StuckOpen is frozen at R_OFF (logic 1 in the Snider model).
	StuckOpen
	// StuckClosed is frozen at R_ON (logic 0 in the Snider model).
	StuckClosed
)

// String names the defect kind.
func (k Kind) String() string {
	switch k {
	case OK:
		return "ok"
	case StuckOpen:
		return "stuck-open"
	case StuckClosed:
		return "stuck-closed"
	}
	return "unknown"
}

// Map is the defect map of one fabricated crossbar, the Crossbar Matrix (CM)
// of the paper's Fig. 8(b).
type Map struct {
	Rows, Cols int
	cells      []Kind
}

// NewMap returns an all-functional defect map.
func NewMap(rows, cols int) *Map {
	if rows < 0 || cols < 0 {
		panic("defect: negative dimensions")
	}
	return &Map{Rows: rows, Cols: cols, cells: make([]Kind, rows*cols)}
}

// Params controls random defect injection.
type Params struct {
	// POpen is the independent per-crosspoint probability of a stuck-at-open
	// defect (the paper's experiments use 0.10).
	POpen float64
	// PClosed is the independent probability of a stuck-at-closed defect.
	// The paper's Table II experiments set it to zero because closed defects
	// cannot be tolerated without redundant lines.
	PClosed float64
}

// Generate samples a defect map with independent uniform per-crosspoint
// defect probabilities, the paper's Monte Carlo defect model.
func Generate(rows, cols int, p Params, rng *rand.Rand) (*Map, error) {
	if p.POpen < 0 || p.PClosed < 0 || p.POpen+p.PClosed > 1 {
		return nil, fmt.Errorf("defect: invalid probabilities POpen=%v PClosed=%v", p.POpen, p.PClosed)
	}
	if rng == nil {
		return nil, fmt.Errorf("defect: nil random source")
	}
	m := NewMap(rows, cols)
	for i := range m.cells {
		u := rng.Float64()
		switch {
		case u < p.POpen:
			m.cells[i] = StuckOpen
		case u < p.POpen+p.PClosed:
			m.cells[i] = StuckClosed
		}
	}
	return m, nil
}

// At returns the defect kind at (r, c).
func (m *Map) At(r, c int) Kind { return m.cells[r*m.Cols+c] }

// Set stores a defect kind at (r, c); used by tests and fault injection.
func (m *Map) Set(r, c int, k Kind) { m.cells[r*m.Cols+c] = k }

// Functional reports whether the device at (r, c) is programmable.
func (m *Map) Functional(r, c int) bool { return m.At(r, c) == OK }

// RowHasClosed reports whether row r contains a stuck-at-closed device, in
// which case the paper's model renders the whole horizontal line unusable
// (the NAND output is forced to logic 1).
func (m *Map) RowHasClosed(r int) bool {
	for c := 0; c < m.Cols; c++ {
		if m.At(r, c) == StuckClosed {
			return true
		}
	}
	return false
}

// ColHasClosed reports whether column c contains a stuck-at-closed device,
// which renders the vertical line unusable (it cannot be initialized to
// R_OFF).
func (m *Map) ColHasClosed(c int) bool {
	for r := 0; r < m.Rows; r++ {
		if m.At(r, c) == StuckClosed {
			return true
		}
	}
	return false
}

// UsableRow reports whether row r can host any logic line at all.
func (m *Map) UsableRow(r int) bool { return !m.RowHasClosed(r) }

// Stats summarizes a defect map.
type Stats struct {
	Devices     int
	Open        int
	Closed      int
	OpenRate    float64
	ClosedRate  float64
	PoisonedRow int // rows containing at least one stuck-closed device
	PoisonedCol int
}

// Summarize computes defect statistics.
func (m *Map) Summarize() Stats {
	s := Stats{Devices: m.Rows * m.Cols}
	for _, k := range m.cells {
		switch k {
		case StuckOpen:
			s.Open++
		case StuckClosed:
			s.Closed++
		}
	}
	if s.Devices > 0 {
		s.OpenRate = float64(s.Open) / float64(s.Devices)
		s.ClosedRate = float64(s.Closed) / float64(s.Devices)
	}
	for r := 0; r < m.Rows; r++ {
		if m.RowHasClosed(r) {
			s.PoisonedRow++
		}
	}
	for c := 0; c < m.Cols; c++ {
		if m.ColHasClosed(c) {
			s.PoisonedCol++
		}
	}
	return s
}

// CrossbarMatrix renders the CM of the paper's Fig. 8(b): true = functional
// switch (matches both 1 and 0 of the FM), false = stuck-open (matches only
// 0). Stuck-closed devices are also false here; callers that tolerate them
// must additionally exclude poisoned lines.
func (m *Map) CrossbarMatrix() [][]bool {
	cm := make([][]bool, m.Rows)
	for r := range cm {
		cm[r] = make([]bool, m.Cols)
		for c := range cm[r] {
			cm[r][c] = m.Functional(r, c)
		}
	}
	return cm
}

// String renders the map: '.' functional, 'o' stuck-open, 'x' stuck-closed.
func (m *Map) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			switch m.At(r, c) {
			case OK:
				b.WriteByte('.')
			case StuckOpen:
				b.WriteByte('o')
			case StuckClosed:
				b.WriteByte('x')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
