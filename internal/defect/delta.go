package defect

import "repro/internal/bitmat"

// Delta window: incremental-maintenance support for consumers that cache a
// derived view of a Map (candidate bitsets, transposed functional views) and
// want to refresh only what changed instead of rebuilding per trial.
//
// The protocol is version-floored. A consumer records Version() when it
// (re)builds its view and calls ResetDelta() to open a window. On the next
// refresh it may apply the delta incrementally iff
//
//	!DeltaAll() && DeltaBase() == recordedVersion
//
// i.e. the window covers exactly the span since its last build. Any other
// state — a fresh map, a Reset, a second consumer having consumed the window
// in between — fails the check and the consumer falls back to a full
// rebuild, which is always correct. The window accumulates across multiple
// mutations and Regenerates, so a consumer that skips trials still sees the
// union of everything it missed.
//
// Mutation sources maintain the window as follows: Set marks the touched
// row/column in O(1); Reset degrades to all-dirty (DeltaAll); Regenerate
// diffs the new trial against a snapshot of the old one and marks exactly
// the rows/columns holding a cell whose kind changed (so back-to-back trials
// at the paper's defect rates mark only the small symmetric difference of
// the two defect sets). Version() advances on every effective mutation —
// an unchanged map keeps its version, letting consumers skip refreshes
// entirely.

// Version returns the mutation counter: it advances every time a cell's kind
// effectively changes (writes of the current kind are free). Equal versions
// across two observations guarantee identical map contents in between.
//
//xbar:hotpath
func (m *Map) Version() uint64 { return m.version }

// DeltaBase returns the version the current delta window was opened at (by
// the last ResetDelta). The window describes every change from DeltaBase to
// Version.
//
//xbar:hotpath
func (m *Map) DeltaBase() uint64 { return m.deltaBase }

// DeltaAll reports whether the window has degraded to whole-map dirty (fresh
// map, Reset, or dimension-scale rewrites); consumers must then rebuild.
//
//xbar:hotpath
func (m *Map) DeltaAll() bool { return m.deltaAll }

// DeltaRows returns the packed mask of rows changed within the window.
// Read-only view, meaningless while DeltaAll is set.
//
//xbar:hotpath
func (m *Map) DeltaRows() bitmat.Row { return m.deltaRows }

// DeltaCols returns the packed mask of columns changed within the window.
// Read-only view, meaningless while DeltaAll is set.
//
//xbar:hotpath
func (m *Map) DeltaCols() bitmat.Row { return m.deltaCols }

// ResetDelta closes the current window and opens a fresh one at the current
// version. The caller must have just (re)built its derived view from the
// map's present contents.
//
//xbar:hotpath
func (m *Map) ResetDelta() {
	m.deltaRows.Zero()
	m.deltaCols.Zero()
	m.deltaAll = false
	m.deltaBase = m.version
}

// CloseDelta closes the window without opening a new one: the map goes back
// to the untracked all-dirty state, so Set stops marking and Regenerate
// stops snapshotting and diffing trials. Consumers call it instead of
// ResetDelta when tracking has stopped paying for itself — a Monte Carlo
// loop resampling the whole map every trial produces only dense diffs, and
// the snapshot+diff per Regenerate is then pure overhead. A later
// ResetDelta reopens tracking at any time. Version() keeps advancing
// regardless, so version-equality skip paths survive a closed window.
//
//xbar:hotpath
func (m *Map) CloseDelta() { m.deltaAll = true }
