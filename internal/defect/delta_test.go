package defect

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

// deltaWindowExact replays the window contract by brute force: snapshot the
// map, mutate it however the caller likes, then check that every cell that
// changed lies on a (DeltaRows, DeltaCols) line — unless DeltaAll says the
// whole map is dirty, which is always a correct answer.
func checkWindowCovers(t *testing.T, m *Map, before []Kind, context string) {
	t.Helper()
	if m.DeltaAll() {
		return
	}
	rows, cols := m.DeltaRows(), m.DeltaCols()
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if m.At(r, c) != before[r*m.Cols+c] {
				if !rows.Get(r) {
					t.Fatalf("%s: cell (%d,%d) changed but row %d is not in the window", context, r, c, r)
				}
				if !cols.Get(c) {
					t.Fatalf("%s: cell (%d,%d) changed but column %d is not in the window", context, r, c, c)
				}
			}
		}
	}
}

func snapshotCells(m *Map) []Kind {
	out := make([]Kind, m.Rows*m.Cols)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out[r*m.Cols+c] = m.At(r, c)
		}
	}
	return out
}

// TestDeltaWindowFreshMap pins the initial state: a fresh map is all-dirty
// until some consumer builds its view and opens a window.
func TestDeltaWindowFreshMap(t *testing.T) {
	m := NewMap(10, 10)
	if !m.DeltaAll() {
		t.Fatal("fresh map must report DeltaAll")
	}
	m.ResetDelta()
	if m.DeltaAll() {
		t.Fatal("ResetDelta must clear DeltaAll")
	}
	if m.DeltaBase() != m.Version() {
		t.Fatal("ResetDelta must rebase the window at the current version")
	}
}

// TestDeltaWindowSet pins Set's O(1) marking and the version counter's
// effective-change semantics.
func TestDeltaWindowSet(t *testing.T) {
	m := NewMap(70, 130)
	m.ResetDelta()
	v0 := m.Version()

	m.Set(3, 100, StuckOpen)
	m.Set(65, 10, StuckClosed)
	m.Set(65, 10, StuckClosed) // same kind: no effective change
	if m.Version() != v0+2 {
		t.Fatalf("version advanced %d times, want 2", m.Version()-v0)
	}
	wantRows := []int{3, 65}
	wantCols := []int{10, 100}
	if got := bitmat.PopCount(m.DeltaRows()); got != len(wantRows) {
		t.Fatalf("window has %d dirty rows, want %d", got, len(wantRows))
	}
	for _, r := range wantRows {
		if !m.DeltaRows().Get(r) {
			t.Fatalf("row %d missing from the window", r)
		}
	}
	for _, c := range wantCols {
		if !m.DeltaCols().Get(c) {
			t.Fatalf("column %d missing from the window", c)
		}
	}

	// Reverting a cell to OK is also a change and must mark again after a
	// fresh window.
	m.ResetDelta()
	m.Set(3, 100, OK)
	if !m.DeltaRows().Get(3) || !m.DeltaCols().Get(100) {
		t.Fatal("clearing a defect must mark the window")
	}
}

// TestDeltaWindowReset pins that Reset degrades to all-dirty (it rewrites
// every cell) except when the map is already all-functional, in which case
// nothing changed and the window — and version — stay put.
func TestDeltaWindowReset(t *testing.T) {
	m := NewMap(8, 8)
	m.Set(1, 1, StuckOpen)
	m.ResetDelta()
	v := m.Version()
	m.Reset()
	if !m.DeltaAll() {
		t.Fatal("Reset of a defective map must set DeltaAll")
	}
	if m.Version() == v {
		t.Fatal("Reset of a defective map must advance the version")
	}
	m.ResetDelta()
	v = m.Version()
	m.Reset() // already all-functional: a no-op
	if m.DeltaAll() || m.Version() != v {
		t.Fatal("Reset of an all-functional map must not disturb the window")
	}
}

// TestRegenerateDelta is the incremental-vs-full property for Regenerate:
// across a random sequence of trials and manual Sets, (1) the resampled maps
// are bit-identical to a never-tracked twin fed the same rng stream, and
// (2) the reported window always covers the true cell diff.
func TestRegenerateDelta(t *testing.T) {
	const rows, cols = 70, 45
	p := Params{POpen: 0.1, PClosed: 0.03}
	tracked := NewMap(rows, cols)
	twin := NewMap(rows, cols)
	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	tracked.ResetDelta()

	for trial := 0; trial < 40; trial++ {
		before := snapshotCells(tracked)
		if err := tracked.Regenerate(p, rngA); err != nil {
			t.Fatal(err)
		}
		if err := twin.Regenerate(p, rngB); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if tracked.At(r, c) != twin.At(r, c) {
					t.Fatalf("trial %d: delta tracking changed the sampled map at (%d,%d)", trial, r, c)
				}
			}
		}
		checkWindowCovers(t, tracked, before, "after Regenerate")
		if trial%3 == 0 {
			// Interleave manual mutations; the window must accumulate them
			// alongside the next Regenerate's diff.
			tracked.Set(trial%rows, (trial*7)%cols, StuckClosed)
			twin.Set(trial%rows, (trial*7)%cols, StuckClosed)
			checkWindowCovers(t, tracked, before, "after Regenerate+Set")
		}
		if trial%5 == 0 {
			tracked.ResetDelta() // a consumer refreshed its view
		}
	}
}

// TestRegenerateDeltaZeroAllocs pins that window-tracked regeneration stays
// allocation-free in steady state (the Monte Carlo trial loop contract).
func TestRegenerateDeltaZeroAllocs(t *testing.T) {
	m := NewMap(300, 44)
	p := Params{POpen: 0.1}
	rng := rand.New(rand.NewSource(5))
	m.ResetDelta()
	if err := m.Regenerate(p, rng); err != nil {
		t.Fatal(err) // warm up prevCells
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := m.Regenerate(p, rng); err != nil {
			t.Fatal(err)
		}
		m.ResetDelta()
	})
	if allocs != 0 {
		t.Fatalf("tracked Regenerate allocates %v per trial, want 0", allocs)
	}
}

// TestVersionStableWhenUnchanged pins the skip contract consumers rely on:
// equal versions guarantee identical contents, so writes of the current kind
// and no-op Resets must not advance the version.
func TestVersionStableWhenUnchanged(t *testing.T) {
	m := NewMap(6, 6)
	m.Set(2, 2, StuckOpen)
	v := m.Version()
	m.Set(2, 2, StuckOpen)
	m.Set(3, 3, OK)
	if m.Version() != v {
		t.Fatal("no-effect writes must not advance the version")
	}
}
