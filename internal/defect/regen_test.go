package defect

import (
	"math/rand"
	"testing"
)

// TestRegenerateMatchesGenerate pins the scratch-reuse contract: Regenerate
// on a dirty map with an identically-seeded rng reproduces Generate's map
// exactly (same rng consumption order, same cells, same caches).
func TestRegenerateMatchesGenerate(t *testing.T) {
	p := Params{POpen: 0.15, PClosed: 0.03}
	fresh, err := Generate(37, 21, p, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	reused := NewMap(37, 21)
	// Dirty the scratch map first so the test proves Regenerate resets
	// everything, not just that it fills an empty map.
	if err := reused.Regenerate(Params{POpen: 0.5, PClosed: 0.3}, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if err := reused.Regenerate(p, rand.New(rand.NewSource(99))); err != nil {
		t.Fatal(err)
	}
	if fresh.String() != reused.String() {
		t.Fatal("Regenerate diverged from Generate on the same seed")
	}
	fs, rs := fresh.Summarize(), reused.Summarize()
	if fs != rs {
		t.Fatalf("summaries diverged: %+v vs %+v", fs, rs)
	}
	if err := reused.Regenerate(Params{POpen: -1}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid params accepted")
	}
	if err := reused.Regenerate(p, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

// TestIncrementalCachesMatchRescan drives random Set transitions (including
// overwrites and clears) and cross-checks every cached answer — the packed
// functional rows, the O(1) line flags, and Summarize — against a full
// rescan of the cells.
func TestIncrementalCachesMatchRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMap(13, 70) // spans a word boundary
	kinds := []Kind{OK, StuckOpen, StuckClosed}
	for step := 0; step < 2000; step++ {
		m.Set(rng.Intn(m.Rows), rng.Intn(m.Cols), kinds[rng.Intn(3)])
		if step%100 != 0 && step != 1999 {
			continue
		}
		var wantOpen, wantClosed int
		for r := 0; r < m.Rows; r++ {
			rowClosed := false
			for c := 0; c < m.Cols; c++ {
				switch m.At(r, c) {
				case StuckOpen:
					wantOpen++
				case StuckClosed:
					wantClosed++
					rowClosed = true
				}
				if m.FunctionalRow(r).Get(c) != m.Functional(r, c) {
					t.Fatalf("step %d: packed functional bit (%d,%d) stale", step, r, c)
				}
			}
			if m.RowHasClosed(r) != rowClosed {
				t.Fatalf("step %d: RowHasClosed(%d) stale", step, r)
			}
		}
		for c := 0; c < m.Cols; c++ {
			colClosed := false
			for r := 0; r < m.Rows; r++ {
				if m.At(r, c) == StuckClosed {
					colClosed = true
				}
			}
			if m.ColHasClosed(c) != colClosed {
				t.Fatalf("step %d: ColHasClosed(%d) stale", step, c)
			}
			if m.ClosedCols().Get(c) != colClosed {
				t.Fatalf("step %d: ClosedCols mask stale at %d", step, c)
			}
		}
		s := m.Summarize()
		if s.Open != wantOpen || s.Closed != wantClosed {
			t.Fatalf("step %d: Summarize counts %d/%d, want %d/%d",
				step, s.Open, s.Closed, wantOpen, wantClosed)
		}
	}
}
