package defect

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateRates(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m, err := Generate(200, 200, Params{POpen: 0.10, PClosed: 0.02}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summarize()
	if math.Abs(s.OpenRate-0.10) > 0.01 {
		t.Errorf("open rate = %v, want ~0.10", s.OpenRate)
	}
	if math.Abs(s.ClosedRate-0.02) > 0.005 {
		t.Errorf("closed rate = %v, want ~0.02", s.ClosedRate)
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(2, 2, Params{POpen: -0.1}, rng); err == nil {
		t.Error("negative probability must fail")
	}
	if _, err := Generate(2, 2, Params{POpen: 0.7, PClosed: 0.4}, rng); err == nil {
		t.Error("probabilities summing above 1 must fail")
	}
	if _, err := Generate(2, 2, Params{}, nil); err == nil {
		t.Error("nil rng must fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(20, 20, Params{POpen: 0.1}, rand.New(rand.NewSource(5)))
	b, _ := Generate(20, 20, Params{POpen: 0.1}, rand.New(rand.NewSource(5)))
	if a.String() != b.String() {
		t.Error("same seed must give the same defect map")
	}
}

func TestRowColPoisoning(t *testing.T) {
	m := NewMap(4, 5)
	m.Set(2, 3, StuckClosed)
	if !m.RowHasClosed(2) || m.RowHasClosed(1) {
		t.Error("RowHasClosed wrong")
	}
	if !m.ColHasClosed(3) || m.ColHasClosed(0) {
		t.Error("ColHasClosed wrong")
	}
	if m.UsableRow(2) || !m.UsableRow(0) {
		t.Error("UsableRow wrong")
	}
	s := m.Summarize()
	if s.PoisonedRow != 1 || s.PoisonedCol != 1 {
		t.Errorf("poisoned = %d/%d, want 1/1", s.PoisonedRow, s.PoisonedCol)
	}
}

func TestCrossbarMatrix(t *testing.T) {
	m := NewMap(2, 2)
	m.Set(0, 1, StuckOpen)
	m.Set(1, 0, StuckClosed)
	cm := m.CrossbarMatrix()
	if !cm[0][0] || cm[0][1] || cm[1][0] || !cm[1][1] {
		t.Errorf("CM = %v", cm)
	}
}

func TestStringRendering(t *testing.T) {
	m := NewMap(1, 3)
	m.Set(0, 1, StuckOpen)
	m.Set(0, 2, StuckClosed)
	if got := m.String(); got != ".ox\n" {
		t.Errorf("String = %q, want .ox\\n", got)
	}
	if StuckOpen.String() != "stuck-open" || StuckClosed.String() != "stuck-closed" || OK.String() != "ok" {
		t.Error("Kind.String wrong")
	}
}

func TestFunctionalAndAt(t *testing.T) {
	m := NewMap(3, 3)
	if !m.Functional(1, 1) {
		t.Error("fresh map must be functional")
	}
	m.Set(1, 1, StuckOpen)
	if m.Functional(1, 1) || m.At(1, 1) != StuckOpen {
		t.Error("Set/At roundtrip failed")
	}
}

func TestZeroDefectGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := Generate(10, 10, Params{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summarize()
	if s.Open != 0 || s.Closed != 0 {
		t.Error("zero-probability map must be clean")
	}
}
