// Package exact implements exact two-level minimization for small functions:
// Quine–McCluskey prime implicant generation followed by an exact (branch
// and bound) solution of the unate covering problem. It exists as the
// quality oracle for the heuristic espresso-style minimizer — on functions
// small enough to solve exactly, the heuristic result can be compared
// against the true minimum product count.
package exact

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/logic"
)

// MaxInputs bounds the input count accepted by Minimize; Quine–McCluskey is
// exponential in it.
const MaxInputs = 12

// implicant is a cube in (value, mask) form: mask bits are don't-cares,
// value bits are the fixed literal polarities.
type implicant struct {
	value uint32
	mask  uint32
}

// Minimize returns a minimum-product-count cover of the single-output
// function, together with the prime implicant count.
func Minimize(f *logic.Cover) (*logic.Cover, int, error) {
	if f.NumOut != 1 {
		return nil, 0, fmt.Errorf("exact: need a single-output cover, got %d outputs", f.NumOut)
	}
	n := f.NumIn
	if n > MaxInputs {
		return nil, 0, fmt.Errorf("exact: %d inputs exceed the limit %d", n, MaxInputs)
	}
	size := 1 << uint(n)
	on := make([]bool, size)
	minterms := []uint32{}
	for i := 0; i < size; i++ {
		if f.EvalOutput(0, logic.AssignmentFromIndex(uint64(i), n)) {
			on[i] = true
			minterms = append(minterms, uint32(i))
		}
	}
	if len(minterms) == 0 {
		return logic.NewCover(n, 1), 0, nil
	}
	if len(minterms) == size {
		u := logic.NewCover(n, 1)
		cube := logic.NewCube(n, 1)
		cube.Out[0] = true
		u.Cubes = append(u.Cubes, cube)
		return u, 1, nil
	}

	primes := primeImplicants(n, minterms)
	chosen := solveCover(n, minterms, primes)
	out := logic.NewCover(n, 1)
	for _, im := range chosen {
		out.Cubes = append(out.Cubes, im.toCube(n))
	}
	return out, len(primes), nil
}

// primeImplicants runs the Quine–McCluskey merging tableau.
func primeImplicants(n int, minterms []uint32) []implicant {
	current := map[implicant]bool{}
	for _, m := range minterms {
		current[implicant{value: m}] = true
	}
	primeSet := map[implicant]bool{}
	for len(current) > 0 {
		merged := map[implicant]bool{}
		used := map[implicant]bool{}
		list := make([]implicant, 0, len(current))
		for im := range current {
			list = append(list, im)
		}
		// Group by population count of the value for the classic pairing.
		sort.Slice(list, func(a, b int) bool {
			ca, cb := bits.OnesCount32(list[a].value), bits.OnesCount32(list[b].value)
			if ca != cb {
				return ca < cb
			}
			if list[a].value != list[b].value {
				return list[a].value < list[b].value
			}
			return list[a].mask < list[b].mask
		})
		for i := 0; i < len(list); i++ {
			for k := i + 1; k < len(list); k++ {
				a, b := list[i], list[k]
				if a.mask != b.mask {
					continue
				}
				diff := a.value ^ b.value
				if bits.OnesCount32(diff) != 1 {
					continue
				}
				m := implicant{value: a.value &^ diff, mask: a.mask | diff}
				merged[m] = true
				used[a] = true
				used[b] = true
			}
		}
		for im := range current {
			if !used[im] {
				primeSet[im] = true
			}
		}
		current = merged
	}
	primes := make([]implicant, 0, len(primeSet))
	for im := range primeSet {
		primes = append(primes, im)
	}
	sort.Slice(primes, func(a, b int) bool {
		if primes[a].mask != primes[b].mask {
			return primes[a].mask < primes[b].mask
		}
		return primes[a].value < primes[b].value
	})
	return primes
}

// solveCover picks a minimum subset of primes covering every minterm:
// essential primes first, then branch and bound on the residue.
func solveCover(n int, minterms []uint32, primes []implicant) []implicant {
	covers := func(im implicant, m uint32) bool {
		return (m &^ im.mask) == im.value
	}
	// coverage lists per minterm.
	byMinterm := make(map[uint32][]int)
	for _, m := range minterms {
		for pi, im := range primes {
			if covers(im, m) {
				byMinterm[m] = append(byMinterm[m], pi)
			}
		}
	}
	var chosen []int
	covered := map[uint32]bool{}
	// Essential primes: a minterm covered by exactly one prime forces it.
	for {
		progress := false
		for _, m := range minterms {
			if covered[m] {
				continue
			}
			if len(byMinterm[m]) == 1 {
				pi := byMinterm[m][0]
				if !intsContain(chosen, pi) {
					chosen = append(chosen, pi)
					for _, mm := range minterms {
						if covers(primes[pi], mm) {
							covered[mm] = true
						}
					}
					progress = true
				}
			}
		}
		if !progress {
			break
		}
	}
	var residue []uint32
	for _, m := range minterms {
		if !covered[m] {
			residue = append(residue, m)
		}
	}
	if len(residue) == 0 {
		return pick(primes, chosen)
	}
	// Branch and bound over the residue.
	best := make([]int, 0)
	bestLen := -1
	var cur []int
	var rec func(remaining []uint32)
	rec = func(remaining []uint32) {
		if bestLen >= 0 && len(cur) >= bestLen {
			return
		}
		if len(remaining) == 0 {
			best = append(best[:0], cur...)
			bestLen = len(cur)
			return
		}
		// Branch on the hardest minterm (fewest covering primes).
		hard := remaining[0]
		for _, m := range remaining {
			if len(byMinterm[m]) < len(byMinterm[hard]) {
				hard = m
			}
		}
		for _, pi := range byMinterm[hard] {
			cur = append(cur, pi)
			var next []uint32
			for _, m := range remaining {
				if !covers(primes[pi], m) {
					next = append(next, m)
				}
			}
			rec(next)
			cur = cur[:len(cur)-1]
		}
	}
	rec(residue)
	return pick(primes, append(chosen, best...))
}

func pick(primes []implicant, idx []int) []implicant {
	seen := map[int]bool{}
	var out []implicant
	for _, i := range idx {
		if !seen[i] {
			seen[i] = true
			out = append(out, primes[i])
		}
	}
	return out
}

func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// toCube converts an implicant to a cover cube.
func (im implicant) toCube(n int) logic.Cube {
	cube := logic.NewCube(n, 1)
	cube.Out[0] = true
	for i := 0; i < n; i++ {
		bit := uint32(1) << uint(i)
		if im.mask&bit != 0 {
			continue
		}
		if im.value&bit != 0 {
			cube.In[i] = logic.LitPos
		} else {
			cube.In[i] = logic.LitNeg
		}
	}
	return cube
}
