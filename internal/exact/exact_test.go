package exact

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/minimize"
)

func TestMinimizeKnownFunctions(t *testing.T) {
	cases := []struct {
		name string
		f    *logic.Cover
		want int // minimum product count
	}{
		{"xor2", logic.MustParseCover(2, 1, "10", "01"), 2},
		{"and", logic.MustParseCover(2, 1, "11"), 1},
		{"adjacent", logic.MustParseCover(2, 1, "11", "10"), 1},
		{"xor3", logic.MustParseCover(3, 1, "100", "010", "001", "111"), 4},
		{"majority", logic.MustParseCover(3, 1, "11-", "1-1", "-11"), 3},
		{"fig3-5var", logic.MustParseCover(5, 1, "1----", "-1---", "--111"), 3},
	}
	for _, tc := range cases {
		m, primes, err := Minimize(tc.f)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if primes <= 0 {
			t.Errorf("%s: no primes reported", tc.name)
		}
		if m.NumProducts() != tc.want {
			t.Errorf("%s: minimum = %d, want %d\n%v", tc.name, m.NumProducts(), tc.want, m)
		}
		ok, _ := logic.Equivalent(tc.f, m, 0, nil)
		if !ok {
			t.Errorf("%s: function changed", tc.name)
		}
	}
}

func TestMinimizeConstants(t *testing.T) {
	zero := logic.NewCover(3, 1)
	m, _, err := Minimize(zero)
	if err != nil || !m.IsEmpty() {
		t.Error("constant 0 must stay empty")
	}
	one := logic.MustParseCover(2, 1, "1-", "0-")
	m, _, err = Minimize(one)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumProducts() != 1 || m.Cubes[0].NumLiterals() != 0 {
		t.Errorf("tautology must minimize to the universe, got %v", m)
	}
}

func TestMinimizeErrors(t *testing.T) {
	if _, _, err := Minimize(logic.NewCover(3, 2)); err == nil {
		t.Error("multi-output must fail")
	}
	if _, _, err := Minimize(logic.NewCover(MaxInputs+1, 1)); err == nil {
		t.Error("too many inputs must fail")
	}
}

// TestHeuristicNeverBeatsExact cross-validates the espresso-style heuristic
// against the exact minimum: the heuristic can only tie or lose, and must
// stay close.
func TestHeuristicNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	totalExact, totalHeur := 0, 0
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(5)
		f := randomSingle(rng, n, 1+rng.Intn(10))
		em, _, err := Minimize(f)
		if err != nil {
			t.Fatal(err)
		}
		hm := minimize.MinimizeSingle(f, minimize.Options{})
		if hm.NumProducts() < em.NumProducts() {
			t.Fatalf("heuristic (%d) beat the exact minimum (%d)?!\n%v",
				hm.NumProducts(), em.NumProducts(), f)
		}
		ok, _ := logic.Equivalent(em, hm, 0, nil)
		if !ok {
			t.Fatal("exact and heuristic covers disagree on the function")
		}
		totalExact += em.NumProducts()
		totalHeur += hm.NumProducts()
	}
	// Quality bound: the heuristic stays within 25% of optimal on this
	// corpus in aggregate.
	if float64(totalHeur) > 1.25*float64(totalExact) {
		t.Errorf("heuristic quality degraded: %d products vs exact %d", totalHeur, totalExact)
	}
	t.Logf("aggregate products: exact=%d heuristic=%d", totalExact, totalHeur)
}

// TestExactIsMinimalBySearch verifies minimality on tiny functions by
// exhaustive comparison against all smaller covers via truth-table count.
func TestExactIsMinimalBySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(2) // 2..3 inputs
		tt := make([]bool, 1<<uint(n))
		any := false
		for i := range tt {
			tt[i] = rng.Intn(2) == 1
			any = any || tt[i]
		}
		if !any {
			continue
		}
		f, err := logic.FromTruthTable(n, tt)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := Minimize(f)
		if err != nil {
			t.Fatal(err)
		}
		if best := smallestCoverSize(n, tt); m.NumProducts() != best {
			t.Fatalf("exact returned %d products, true minimum %d (n=%d)", m.NumProducts(), best, n)
		}
	}
}

// smallestCoverSize brute-forces the minimum SOP size for tiny n by
// enumerating all cube subsets of increasing size.
func smallestCoverSize(n int, tt []bool) int {
	var cubes []logic.Cube
	var enumerate func(i int, cube logic.Cube)
	enumerate = func(i int, cube logic.Cube) {
		if i == n {
			cubes = append(cubes, cube.Clone())
			return
		}
		for _, v := range []logic.LitVal{logic.LitNeg, logic.LitPos, logic.LitDC} {
			cube.In[i] = v
			enumerate(i+1, cube)
		}
	}
	seed := logic.NewCube(n, 1)
	seed.Out[0] = true
	enumerate(0, seed)
	// Keep only implicants (cubes inside the ON-set).
	var impl []logic.Cube
	for _, cube := range cubes {
		inside := true
		for i := range tt {
			x := logic.AssignmentFromIndex(uint64(i), n)
			if cube.EvalInput(x) && !tt[i] {
				inside = false
				break
			}
		}
		if inside {
			impl = append(impl, cube)
		}
	}
	coversAll := func(sel []int) bool {
		for i := range tt {
			if !tt[i] {
				continue
			}
			x := logic.AssignmentFromIndex(uint64(i), n)
			hit := false
			for _, k := range sel {
				if impl[k].EvalInput(x) {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}
	for size := 1; ; size++ {
		sel := make([]int, size)
		var try func(start, d int) bool
		try = func(start, d int) bool {
			if d == size {
				return coversAll(sel)
			}
			for i := start; i < len(impl); i++ {
				sel[d] = i
				if try(i+1, d+1) {
					return true
				}
			}
			return false
		}
		if try(0, 0) {
			return size
		}
	}
}

func randomSingle(rng *rand.Rand, nIn, nCubes int) *logic.Cover {
	c := logic.NewCover(nIn, 1)
	for k := 0; k < nCubes; k++ {
		cube := logic.NewCube(nIn, 1)
		cube.Out[0] = true
		for i := range cube.In {
			switch rng.Intn(4) {
			case 0:
				cube.In[i] = logic.LitNeg
			case 1:
				cube.In[i] = logic.LitPos
			default:
				cube.In[i] = logic.LitDC
			}
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}
