package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckDurable forbids discarding the error of a durability-critical
// call: journal appends and closes, *os.File Sync/Close, and os.Rename.
// These are exactly the calls whose lost error silently converts "durable"
// into "probably durable" — a Close that reports a deferred write error, a
// Sync that failed, a rename that never happened. Both discard shapes are
// flagged: the bare expression statement (including defer) and assignment
// of the error position to _.
var ErrcheckDurable = &Analyzer{
	Name: errcheckDurableName,
	Doc:  "errors from journal append/close, file sync/close, and rename must be handled",
	Run:  runErrcheckDurable,
}

func runErrcheckDurable(m *Module) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						if what := durableCall(pkg, call); what != "" {
							out = append(out, errcheckFinding(m, call, "%s error discarded by bare call statement", what))
						}
					}
				case *ast.DeferStmt:
					if what := durableCall(pkg, n.Call); what != "" {
						out = append(out, errcheckFinding(m, n.Call, "%s error discarded by defer; use a named-return or logging wrapper", what))
					}
				case *ast.AssignStmt:
					if len(n.Rhs) != 1 {
						return true
					}
					call, ok := n.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					what := durableCall(pkg, call)
					if what == "" {
						return true
					}
					// The error is the last result; flag when its LHS is _.
					if last, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
						out = append(out, errcheckFinding(m, call, "%s error assigned to _", what))
					}
				}
				return true
			})
		}
	}
	return out
}

func errcheckFinding(m *Module, call *ast.CallExpr, format string, args ...any) Finding {
	return Finding{
		Pos:      m.Fset.Position(call.Pos()),
		Analyzer: errcheckDurableName,
		Message:  fmt.Sprintf(format, args...),
	}
}

// durableCall reports the human name of a durability-critical callee whose
// final result is an error, or "" when the call is out of scope.
func durableCall(pkg *Package, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 || !isErrorType(sig.Results().At(sig.Results().Len()-1).Type()) {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Pkg().Path() == "os" && fn.Name() == "Rename" {
			return "os.Rename"
		}
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	rp, rn := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case rp == "os" && rn == "File" && (fn.Name() == "Sync" || fn.Name() == "Close"):
		return "(*os.File)." + fn.Name()
	case (rp == "journal" || strings.HasSuffix(rp, "/journal")) && rn == "Journal":
		switch fn.Name() {
		case "Append", "AppendBatch", "Close", "Compact":
			return "(*journal.Journal)." + fn.Name()
		}
	}
	return ""
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
