package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricsContract enforces the instrumentation naming rules the CI metrics
// smoke test spot-checks: every metrics.Registry registration uses a
// compile-time-constant name with the xbar_ prefix, no name is registered
// by two different call sites (one engine registry receives every
// subsystem's families, so a module-wide literal collision is a runtime
// collision), and Vec label keys are constant and at most three per family
// (label cardinality is a production cost).
var MetricsContract = &Analyzer{
	Name: metricsContractName,
	Doc:  "registry names are xbar_-prefixed literals, unique, with <=3 literal label keys; span names are xbar.-prefixed unique literals",
	Run:  runMetricsContract,
}

// metricsRegFunc matches Registry constructor methods on any package whose
// import path ends in /metrics (the real module and test fixtures alike).
var metricsRegFunc = regexp.MustCompile(`^\(\*(?:[^)]*/)?metrics\.Registry\)\.New(Counter|Gauge|GaugeFunc|Histogram|CounterVec|GaugeVec|HistogramVec)$`)

// spanNameFunc matches the span-name constructor on any package whose import
// path ends in /trace. Span names feed the same cardinality contract as
// metric names: bounded at the source level, not at runtime.
var spanNameFunc = regexp.MustCompile(`^(?:[^(]*/)?trace\.MustName$`)

const metricsMaxLabels = 3

func runMetricsContract(m *Module) []Finding {
	var out []Finding
	seen := make(map[string]Finding)     // metric name -> first registration
	spanSeen := make(map[string]Finding) // span name -> first mint
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				out = append(out, checkRegistration(m, pkg, call, seen)...)
				out = append(out, checkSpanName(m, pkg, call, spanSeen)...)
				return true
			})
		}
	}
	return out
}

// checkSpanName enforces the trace.MustName contract: a compile-time
// string literal with the "xbar." prefix, unique module-wide. MustName has
// no runtime duplicate registry (it must stay idempotent for tests), so
// this analyzer is the only duplicate gate.
func checkSpanName(m *Module, pkg *Package, call *ast.CallExpr, seen map[string]Finding) []Finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !spanNameFunc.MatchString(fn.FullName()) || len(call.Args) != 1 {
		return nil
	}
	report := func(pos ast.Node, format string, args ...any) Finding {
		return Finding{
			Pos:      m.Fset.Position(pos.Pos()),
			Analyzer: metricsContractName,
			Message:  fmt.Sprintf(format, args...),
		}
	}
	name, isConst := constString(pkg, call.Args[0])
	switch {
	case !isConst:
		return []Finding{report(call.Args[0], "MustName argument must be a string literal, not a computed value")}
	case !strings.HasPrefix(name, "xbar."):
		return []Finding{report(call.Args[0], "span name %q must carry the xbar. prefix", name)}
	}
	if first, dup := seen[name]; dup {
		return []Finding{report(call.Args[0], "span name %q already minted at %s:%d",
			name, first.Pos.Filename, first.Pos.Line)}
	}
	seen[name] = report(call.Args[0], "")
	return nil
}

func checkRegistration(m *Module, pkg *Package, call *ast.CallExpr, seen map[string]Finding) []Finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	match := metricsRegFunc.FindStringSubmatch(fn.FullName())
	if match == nil || len(call.Args) == 0 {
		return nil
	}
	kind := match[1]
	report := func(pos ast.Node, format string, args ...any) Finding {
		return Finding{
			Pos:      m.Fset.Position(pos.Pos()),
			Analyzer: metricsContractName,
			Message:  fmt.Sprintf(format, args...),
		}
	}
	var out []Finding
	name, isConst := constString(pkg, call.Args[0])
	switch {
	case !isConst:
		out = append(out, report(call.Args[0], "New%s name must be a string literal, not a computed value", kind))
	case !strings.HasPrefix(name, "xbar_"):
		out = append(out, report(call.Args[0], "metric name %q must carry the xbar_ prefix", name))
	default:
		if first, dup := seen[name]; dup {
			out = append(out, report(call.Args[0], "metric name %q already registered at %s:%d",
				name, first.Pos.Filename, first.Pos.Line))
		} else {
			seen[name] = report(call.Args[0], "")
		}
	}
	if strings.HasSuffix(kind, "Vec") {
		labelStart := 2 // (name, help, labels...)
		if kind == "HistogramVec" {
			labelStart = 3 // (name, help, bounds, labels...)
		}
		if len(call.Args) > labelStart {
			labels := call.Args[labelStart:]
			if len(labels) > metricsMaxLabels {
				out = append(out, report(labels[metricsMaxLabels],
					"New%s declares %d label keys; the contract caps label cardinality at %d",
					kind, len(labels), metricsMaxLabels))
			}
			for _, l := range labels {
				if _, ok := constString(pkg, l); !ok {
					out = append(out, report(l, "New%s label keys must be string literals", kind))
				}
			}
		}
	}
	return out
}

// constString extracts a compile-time-constant string value.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
