package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Config selects what Load loads. Dir may be any directory inside the
// module; Load walks up to the enclosing go.mod. Tags are extra build tags
// (the purego leg passes []string{"purego"}), applied on top of the host
// build context.
type Config struct {
	Dir  string
	Tags []string
}

// Module is one fully loaded and type-checked build leg of the module:
// every package under the module root (testdata and hidden directories
// excluded), with the ASTs, type information, //xbar:hotpath annotations,
// and //xbar:allow suppressions the analyzers consume.
type Module struct {
	Fset *token.FileSet
	Dir  string // module root (the directory holding go.mod)
	Path string // module path declared by go.mod
	Tags []string

	Packages []*Package // sorted by import path

	// hotpath maps the declaration object of every //xbar:hotpath-annotated
	// function to its declaration, across all packages.
	hotpath map[types.Object]*ast.FuncDecl

	// allows records //xbar:allow comments: filename -> line -> analyzer
	// names allowed there. A finding is suppressed when its line or the
	// line above carries an allow for its analyzer.
	allows map[string]map[int][]string

	// malformed collects driver-level findings (bad allow comments) that
	// are reported alongside analyzer findings.
	malformed []Finding
}

// Package is one loaded package of the module.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File // non-test files selected by the build context
	Pkg   *types.Package
	Info  *types.Info
}

// loader resolves imports: module-internal paths load recursively from
// source under the module's build context; everything else (stdlib — the
// module has no dependencies) goes through the go/types source importer.
type loader struct {
	fset    *token.FileSet
	ctx     build.Context
	modPath string
	modDir  string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load type-checks the whole module under cfg's build tags.
func Load(cfg Config) (*Module, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(abs); err != nil {
		return nil, err
	} else if !fi.IsDir() {
		return nil, fmt.Errorf("analysis: %s is not a directory", abs)
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.BuildTags = append([]string(nil), cfg.Tags...)
	// The stdlib is imported from source; with cgo off the pure-Go variants
	// of net/os/user are selected, which is all type checking needs. The
	// source importer reads build.Default, so the global must agree.
	ctx.CgoEnabled = false
	build.Default.CgoEnabled = false

	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		ctx:     ctx,
		modPath: modPath,
		modDir:  modDir,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	dirs, err := packageDirs(modDir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Fset:    fset,
		Dir:     modDir,
		Path:    modPath,
		Tags:    cfg.Tags,
		hotpath: make(map[types.Object]*ast.FuncDecl),
		allows:  make(map[string]map[int][]string),
	}
	for _, d := range dirs {
		path := modPath
		if rel, _ := filepath.Rel(modDir, d); rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if pkg != nil {
			m.Packages = append(m.Packages, pkg)
		}
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].Path < m.Packages[j].Path })
	m.collectAnnotations()
	return m, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (string, string, error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mm := moduleLine.FindSubmatch(data)
			if mm == nil {
				return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
			}
			return d, string(mm[1]), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// packageDirs lists every directory under root that holds .go files,
// skipping testdata, hidden, and underscore-prefixed directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

func (l *loader) isModulePath(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// Import implements types.Importer for the type checker's import callbacks.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package (cached).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.modDir
	if path != l.modPath {
		dir = filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// collectAnnotations indexes //xbar:hotpath function annotations and
// //xbar:allow suppression comments across the module.
func (m *Module) collectAnnotations() {
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "xbar:hotpath" {
						if obj := pkg.Info.Defs[fd.Name]; obj != nil {
							m.hotpath[obj] = fd
						}
					}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m.recordAllow(c)
				}
			}
		}
	}
}

// recordAllow parses one comment for the //xbar:allow <analyzer> <reason>
// form. A missing reason is itself reported: suppressions must say why.
func (m *Module) recordAllow(c *ast.Comment) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(text, "xbar:allow") {
		return
	}
	fields := strings.Fields(strings.TrimPrefix(text, "xbar:allow"))
	pos := m.Fset.Position(c.Pos())
	if len(fields) < 2 {
		m.malformed = append(m.malformed, Finding{
			Pos:      pos,
			Analyzer: "xbarvet",
			Message:  "malformed suppression: want //xbar:allow <analyzer> <reason>",
		})
		return
	}
	lines := m.allows[pos.Filename]
	if lines == nil {
		lines = make(map[int][]string)
		m.allows[pos.Filename] = lines
	}
	end := m.Fset.Position(c.End()).Line
	lines[end] = append(lines[end], fields[0])
}

// allowed reports whether an //xbar:allow for analyzer covers the finding
// position (same line, or the whole line above).
func (m *Module) allowed(analyzer string, pos token.Position) bool {
	lines := m.allows[pos.Filename]
	if lines == nil {
		return false
	}
	match := func(l int) bool {
		for _, a := range lines[l] {
			if a == analyzer {
				return true
			}
		}
		return false
	}
	if match(pos.Line) {
		return true
	}
	// Walk up through a contiguous block of allow comments, so several
	// analyzers can be suppressed above one statement, one line each.
	for l := pos.Line - 1; len(lines[l]) > 0; l-- {
		if match(l) {
			return true
		}
	}
	return false
}

// Hotpath reports whether obj is a //xbar:hotpath-annotated function.
func (m *Module) Hotpath(obj types.Object) bool {
	_, ok := m.hotpath[obj]
	return ok
}
