// Package analysis is xbarvet's engine: a dependency-free static-analysis
// driver (stdlib go/ast, go/build, go/parser, go/types only) that loads and
// type-checks the module under a chosen build-tag leg and runs the
// repo-specific analyzers that lock in this codebase's load-bearing
// invariants — zero-allocation hot paths, journal/engine lock discipline,
// kernel-dispatch parity across build tags, the metrics naming contract,
// and durable-write error handling.
//
// Findings are reported as "file:line: [analyzer] message". A finding is
// suppressed by a same-line or preceding-line comment of the form
//
//	//xbar:allow <analyzer> <reason>
//
// and the reason is mandatory: an allow without one is itself a finding.
// Functions opt into the hotpath-alloc contract with a doc comment line
// "//xbar:hotpath".
package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer names, shared by the Analyzer values, their findings, and the
// //xbar:allow suppression comments.
const (
	hotpathAllocName    = "hotpath-alloc"
	lockIOName          = "lock-io"
	dispatchParityName  = "dispatch-parity"
	metricsContractName = "metrics-contract"
	errcheckDurableName = "errcheck-durable"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Format renders the finding as "file:line: [analyzer] message" with the
// filename relative to base (absolute when base is empty or unrelated).
func (f Finding) Format(base string) string {
	name := f.Pos.Filename
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d: [%s] %s", name, f.Pos.Line, f.Analyzer, f.Message)
}

// An Analyzer checks one module-wide invariant.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotpathAlloc,
		LockIO,
		DispatchParity,
		MetricsContract,
		ErrcheckDurable,
	}
}

// Lookup resolves comma-separable analyzer names; nil or empty selects the
// whole suite.
func Lookup(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the module, drops suppressed findings,
// and returns the rest sorted by position. Malformed suppression comments
// are appended as driver findings so a typoed allow cannot silently mask a
// real one.
func (m *Module) Run(analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(m) {
			if m.allowed(a.Name, f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	out = append(out, m.malformed...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
