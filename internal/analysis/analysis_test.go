package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches expectation comments in fixture files:
//
//	code // want "substring of the finding message"
//
// Several wants may share a line.
var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

type want struct {
	file   string // fixture-relative path
	line   int
	substr string
	hit    bool
}

// fixtureWants scans every .go file under dir (including files excluded by
// build tags — dispatch-parity findings land in those) for want comments.
func fixtureWants(t *testing.T, dir string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants = append(wants, &want{file: rel, line: i + 1, substr: m[1]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning %s: %v", dir, err)
	}
	return wants
}

// runFixture loads the fixture module under testdata/name on the default
// leg and returns the findings of one analyzer with fixture-relative paths.
func runFixture(t *testing.T, name, analyzer string) ([]Finding, *Module) {
	t.Helper()
	m, err := Load(Config{Dir: filepath.Join("testdata", name)})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	as, err := Lookup([]string{analyzer})
	if err != nil {
		t.Fatalf("lookup %s: %v", analyzer, err)
	}
	return m.Run(as), m
}

func TestAnalyzersAgainstFixtures(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer string
	}{
		{"hotpath", "hotpath-alloc"},
		{"lockio", "lock-io"},
		{"parity", "dispatch-parity"},
		{"metricsfix", "metrics-contract"},
		{"errcheckfix", "errcheck-durable"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			findings, m := runFixture(t, tc.fixture, tc.analyzer)
			if len(findings) == 0 {
				t.Fatalf("fixture %s produced no findings; seeded violations are not detected", tc.fixture)
			}
			wants := fixtureWants(t, filepath.Join("testdata", tc.fixture))
			for _, f := range findings {
				rel, err := filepath.Rel(m.Dir, f.Pos.Filename)
				if err != nil {
					rel = f.Pos.Filename
				}
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == rel && w.line == f.Pos.Line && strings.Contains(f.Message, w.substr) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding %s:%d: [%s] %s", rel, f.Pos.Line, f.Analyzer, f.Message)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("missing finding at %s:%d containing %q", w.file, w.line, w.substr)
				}
			}
		})
	}
}

func TestMalformedAllowIsReported(t *testing.T) {
	m, err := Load(Config{Dir: filepath.Join("testdata", "malformed")})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings := m.Run(Analyzers())
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the malformed-allow report: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "xbarvet" || !strings.Contains(f.Message, "malformed suppression") {
		t.Errorf("got [%s] %q, want driver malformed-suppression finding", f.Analyzer, f.Message)
	}
}

func TestLookup(t *testing.T) {
	all, err := Lookup(nil)
	if err != nil || len(all) != 5 {
		t.Fatalf("Lookup(nil) = %d analyzers, err %v; want all 5", len(all), err)
	}
	one, err := Lookup([]string{"lock-io"})
	if err != nil || len(one) != 1 || one[0].Name != "lock-io" {
		t.Fatalf("Lookup(lock-io) = %v, %v", one, err)
	}
	if _, err := Lookup([]string{"nope"}); err == nil {
		t.Fatal("Lookup(nope) succeeded; want unknown-analyzer error")
	}
}

func TestFindingFormat(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "/mod/pkg/file.go", Line: 7},
		Analyzer: "lock-io",
		Message:  "boom",
	}
	if got, wantStr := f.Format("/mod"), fmt.Sprintf("%s:7: [lock-io] boom", filepath.Join("pkg", "file.go")); got != wantStr {
		t.Errorf("Format(base) = %q, want %q", got, wantStr)
	}
	if got := f.Format("/elsewhere"); !strings.HasPrefix(got, "/mod/pkg/file.go:7:") {
		t.Errorf("Format(unrelated base) = %q, want absolute path kept", got)
	}
}

// TestRepoBothLegsClean is the self-test the CI gate relies on: the module
// this package lives in must run the whole suite clean on both build legs.
func TestRepoBothLegsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped in -short")
	}
	for _, tags := range [][]string{nil, {"purego"}} {
		name := "default"
		if len(tags) > 0 {
			name = strings.Join(tags, ",")
		}
		t.Run(name, func(t *testing.T) {
			m, err := Load(Config{Dir: filepath.Join("..", ".."), Tags: tags})
			if err != nil {
				t.Fatalf("loading module on the %s leg: %v", name, err)
			}
			for _, f := range m.Run(Analyzers()) {
				t.Errorf("%s", f.Format(m.Dir))
			}
		})
	}
}
