package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockIO enforces the lock discipline that PR 6's tail-ring fix made a
// design rule: no file I/O, network call, or sleep while a sync.Mutex or
// sync.RWMutex is held. Tracking is intraprocedural: Lock()/Unlock() calls
// (and defer Unlock) update a hold set keyed by the mutex expression, and
// functions whose name ends in "Locked" are analyzed with every mutex field
// of their receiver held on entry (the repo's caller-holds convention). A
// return on a path that still holds a lock with no deferred unlock is also
// reported — the leak half of the same bug class.
var LockIO = &Analyzer{
	Name: lockIOName,
	Doc:  "no file/network I/O or sleep while a mutex is held; no lock leaks on return",
	Run:  runLockIO,
}

// lockioBannedOSFile lists *os.File methods that hit the filesystem.
var lockioBannedOSFile = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"WriteString": true, "Sync": true, "Seek": true, "Truncate": true,
	"Close": true, "Stat": true, "Chmod": true, "ReadDir": true,
}

// lockioBannedOSFunc lists package-level os functions that hit the
// filesystem.
var lockioBannedOSFunc = map[string]bool{
	"ReadFile": true, "WriteFile": true, "Open": true, "OpenFile": true,
	"Create": true, "Rename": true, "Remove": true, "RemoveAll": true,
	"Stat": true, "Lstat": true, "Truncate": true, "Mkdir": true,
	"MkdirAll": true, "ReadDir": true,
}

func runLockIO(m *Module) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lw := &lockWalker{m: m, pkg: pkg}
				st := newLockState()
				if strings.HasSuffix(fd.Name.Name, "Locked") {
					lw.holdReceiverMutexes(fd, st)
				}
				lw.block(fd.Body.List, st)
				lw.flush()
				out = append(out, lw.out...)
			}
		}
	}
	return out
}

type lockState struct {
	held     map[string]token.Pos // mutex expr -> Lock position
	deferred map[string]bool      // mutex expr -> defer Unlock seen
	// entry marks mutexes already held when this body was entered — the
	// *Locked caller-holds convention, or a closure defined under a lock.
	// They stay banned for I/O but returning with them held is the
	// contract, not a leak.
	entry map[string]bool
}

func newLockState() *lockState {
	return &lockState{
		held:     make(map[string]token.Pos),
		deferred: make(map[string]bool),
		entry:    make(map[string]bool),
	}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	for k, v := range s.entry {
		c.entry[k] = v
	}
	return c
}

// markEntry freezes the current hold set as the body's entry obligation.
func (s *lockState) markEntry() {
	for k := range s.held {
		s.entry[k] = true
	}
}

// merge folds another fall-through path into s: a mutex counts as held when
// any continuing path holds it (may-held, the strict direction for I/O).
func (s *lockState) merge(o *lockState) {
	for k, v := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = v
		}
	}
	for k := range o.deferred {
		s.deferred[k] = true
	}
}

type lockWalker struct {
	m    *Module
	pkg  *Package
	out  []Finding
	lits []deferredLit // closures analyzed after the enclosing body
}

type deferredLit struct {
	lit *ast.FuncLit
	st  *lockState
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	w.out = append(w.out, Finding{
		Pos:      w.m.Fset.Position(pos),
		Analyzer: lockIOName,
		Message:  fmt.Sprintf(format, args...),
	})
}

// holdReceiverMutexes marks every sync.Mutex/RWMutex field of the receiver
// as held on entry — the *Locked naming convention.
func (w *lockWalker) holdReceiverMutexes(fd *ast.FuncDecl, st *lockState) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fd.Recv.List[0].Names[0].Name
	obj := w.pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return
	}
	t := obj.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if isMutexType(f.Type()) {
			st.held[recvName+"."+f.Name()] = fd.Pos()
		}
	}
	st.markEntry()
}

func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// mutexKey returns the canonical expression string of a Lock/Unlock target
// when recv is mutex-typed, else "".
func (w *lockWalker) mutexKey(recv ast.Expr) string {
	t := w.pkg.Info.Types[recv].Type
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if !isMutexType(t) {
		return ""
	}
	return types.ExprString(recv)
}

// lockTransition applies call if it is a Lock/Unlock on a mutex; returns
// true when it was one.
func (w *lockWalker) lockTransition(call *ast.CallExpr, st *lockState, deferred bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	key := w.mutexKey(sel.X)
	if key == "" {
		return false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if deferred {
			return true
		}
		if _, already := st.held[key]; already {
			w.report(call.Pos(), "%s locked twice on the same path (deadlock)", key)
		}
		st.held[key] = call.Pos()
		return true
	case "Unlock", "RUnlock":
		if deferred {
			st.deferred[key] = true
		} else {
			delete(st.held, key)
		}
		return true
	case "TryLock", "TryRLock":
		return true // result-dependent; out of scope for the linear tracker
	}
	return false
}

// block walks a statement list, threading the hold state through it, and
// reports whether every path through it terminates (return/panic).
func (w *lockWalker) block(stmts []ast.Stmt, st *lockState) bool {
	for _, s := range stmts {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt processes one statement; true means control does not continue past
// it on any path.
func (w *lockWalker) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.lockTransition(call, st, false) {
			return false
		}
		w.scan(s.X, st)
	case *ast.DeferStmt:
		if w.lockTransition(s.Call, st, true) {
			return false
		}
		w.scan(s.Call, st)
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.scan(s, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r, st)
		}
		for key, pos := range st.held {
			if !st.deferred[key] && !st.entry[key] {
				w.report(s.Pos(), "return with %s held (locked at line %d, no unlock on this path)",
					key, w.m.Fset.Position(pos).Line)
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scan(s.Cond, st)
		thenSt := st.clone()
		thenDone := w.block(s.Body.List, thenSt)
		var elseSt *lockState
		elseDone := false
		if s.Else != nil {
			elseSt = st.clone()
			elseDone = w.stmt(s.Else, elseSt)
		}
		// Rebuild st as the merge of the continuing paths.
		switch {
		case s.Else == nil:
			if !thenDone {
				st.merge(thenSt)
			}
			return false
		case thenDone && elseDone:
			return true
		case thenDone:
			*st = *elseSt
			return false
		case elseDone:
			*st = *thenSt
			return false
		default:
			*st = *thenSt
			st.merge(elseSt)
			return false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scan(s.Cond, st)
		}
		bodySt := st.clone()
		w.block(s.Body.List, bodySt)
		if s.Post != nil {
			w.stmt(s.Post, bodySt)
		}
		st.merge(bodySt)
	case *ast.RangeStmt:
		w.scan(s.X, st)
		bodySt := st.clone()
		w.block(s.Body.List, bodySt)
		st.merge(bodySt)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scan(s.Tag, st)
		}
		w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scan(s.Assign, st)
		w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseSt := st.clone()
			if cc.Comm != nil {
				w.stmt(cc.Comm, caseSt)
			}
			if !w.block(cc.Body, caseSt) {
				st.merge(caseSt)
			}
		}
	case *ast.BlockStmt:
		return w.block(s.List, st)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's hold set.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, deferredLit{lit: lit, st: newLockState()})
		}
		for _, a := range s.Call.Args {
			w.scan(a, st)
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto: stop the linear walk of this path; the
		// enclosing loop/switch already analyzed the body on a clone.
		return true
	}
	return false
}

func (w *lockWalker) caseClauses(body *ast.BlockStmt, st *lockState) {
	entry := st.clone()
	first := true
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		caseSt := entry.clone()
		for _, e := range cc.List {
			w.scan(e, caseSt)
		}
		if !w.block(cc.Body, caseSt) {
			if first {
				*st = *caseSt
				first = false
			} else {
				st.merge(caseSt)
			}
		}
	}
	if first {
		*st = *entry // every case terminated (or no cases): entry state stands
	}
}

// scan inspects an expression (or simple statement) for banned calls under
// the current hold set. Nested closures are queued and analyzed as separate
// bodies entered with the hold state at their definition point.
func (w *lockWalker) scan(n ast.Node, st *lockState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			litSt := st.clone()
			litSt.markEntry()
			w.lits = append(w.lits, deferredLit{lit: c, st: litSt})
			return false
		case *ast.CallExpr:
			if w.lockTransition(c, st, false) {
				return false
			}
			w.checkBanned(c, st)
		}
		return true
	})
}

// flush analyzes queued closures (which may queue more).
func (w *lockWalker) flush() {
	for len(w.lits) > 0 {
		d := w.lits[0]
		w.lits = w.lits[1:]
		w.block(d.lit.Body.List, d.st)
	}
}

// checkBanned reports call if it performs I/O or sleeps while any mutex is
// held.
func (w *lockWalker) checkBanned(call *ast.CallExpr, st *lockState) {
	if len(st.held) == 0 {
		return
	}
	what := w.bannedCall(call)
	if what == "" {
		return
	}
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	if len(keys) > 1 {
		// Deterministic message order.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
	}
	w.report(call.Pos(), "%s while holding %s", what, strings.Join(keys, ", "))
}

// bannedCall classifies a call as file I/O, network, or sleep; empty means
// allowed.
func (w *lockWalker) bannedCall(call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = w.pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = w.pkg.Info.Uses[fun.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	pkgPath := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if n, ok := rt.(*types.Named); ok && n.Obj().Pkg() != nil {
			rp := n.Obj().Pkg().Path()
			if rp == "os" && n.Obj().Name() == "File" && lockioBannedOSFile[fn.Name()] {
				return fmt.Sprintf("(*os.File).%s", fn.Name())
			}
			if rp == "net" || strings.HasPrefix(rp, "net/") {
				return fmt.Sprintf("(%s.%s).%s", rp, n.Obj().Name(), fn.Name())
			}
		}
		return ""
	}
	switch {
	case pkgPath == "os" && lockioBannedOSFunc[fn.Name()]:
		return "os." + fn.Name()
	case pkgPath == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case pkgPath == "syscall":
		return "syscall." + fn.Name()
	case pkgPath == "net" || strings.HasPrefix(pkgPath, "net/"):
		return pkgPath + "." + fn.Name()
	}
	return ""
}
