package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// DispatchParity keeps build-tag-gated kernel dispatch files in lockstep:
// within a package, the files selected only by the default (amd64) leg and
// the files selected only by the purego leg must declare the same
// package-level symbols with the same signatures. This is what guarantees
// that `-tags purego` is a drop-in build: a symbol added to batch_amd64.go
// but not batch_noasm.go fails here instead of in the other leg's CI build.
// The comparison is syntactic (both legs' files are parsed regardless of
// the host architecture), and bodies are free to differ — that is the
// point of the split.
var DispatchParity = &Analyzer{
	Name: dispatchParityName,
	Doc:  "build-tag leg pairs must declare identical symbol sets with identical signatures",
	Run:  runDispatchParity,
}

// parityGoarches are the filename-suffix architectures recognized as
// implicit build constraints (the subset this module could plausibly grow).
var parityGoarches = map[string]bool{
	"amd64": true, "arm64": true, "386": true, "arm": true,
	"riscv64": true, "ppc64le": true, "s390x": true, "wasm": true,
}

// parityLegTags evaluates a constraint tag for the two checked legs.
func parityLegTags(purego bool) func(string) bool {
	return func(tag string) bool {
		switch tag {
		case "purego":
			return purego
		case "amd64", "linux", "unix", "gc":
			return true
		}
		return goVersionTag.MatchString(tag)
	}
}

var goVersionTag = regexp.MustCompile(`^go1\.\d+$`)

func runDispatchParity(m *Module) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		out = append(out, parityCheckDir(m.Fset, pkg.Dir)...)
	}
	return out
}

// paritySymbol is one package-level declaration in a leg-specific file.
type paritySymbol struct {
	kind string // "func", "type", "const", "var"
	sig  string // normalized signature / type expression ("" for const/var)
	pos  token.Pos
	file string
}

func parityCheckDir(fset *token.FileSet, dir string) []Finding {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	legs := [2]map[string]paritySymbol{} // 0: default-only files, 1: purego-only files
	legFiles := [2][]string{}
	commonRefs := make(map[string]bool) // idents used by files built in both legs
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			continue // the loader reports parse errors; parity skips the file
		}
		inDefault := fileInLeg(f, name, false)
		inPurego := fileInLeg(f, name, true)
		var leg int
		switch {
		case inDefault && !inPurego:
			leg = 0
		case inPurego && !inDefault:
			leg = 1
		default:
			// Built in both legs (or neither): no parity obligation of its
			// own, but every name it references must resolve in both legs.
			if inDefault && inPurego {
				ast.Inspect(f, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						commonRefs[id.Name] = true
					}
					return true
				})
			}
			continue
		}
		if legs[leg] == nil {
			legs[leg] = make(map[string]paritySymbol)
		}
		legFiles[leg] = append(legFiles[leg], name)
		collectParitySymbols(fset, f, name, legs[leg])
	}
	if legs[0] == nil && legs[1] == nil {
		return nil
	}
	var out []Finding
	legName := [2]string{"default (amd64)", "purego"}
	for side := 0; side < 2; side++ {
		other := 1 - side
		names := make([]string, 0, len(legs[side]))
		for n := range legs[side] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sym := legs[side][n]
			counterpart, ok := legs[other][n]
			if !ok {
				// A leg-private unexported helper is fine: only symbols that
				// form the cross-leg contract — exported, or referenced by a
				// file built in both legs — must exist on both sides.
				if base := paritySymbolBase(n); !ast.IsExported(base) && !commonRefs[base] {
					continue
				}
				out = append(out, Finding{
					Pos:      fset.Position(sym.pos),
					Analyzer: dispatchParityName,
					Message: fmt.Sprintf("%s %s is declared in the %s leg but missing from the %s leg (%s)",
						sym.kind, n, legName[side], legName[other], legFileList(legFiles[other])),
				})
				continue
			}
			if side == 0 && sym.sig != counterpart.sig {
				out = append(out, Finding{
					Pos:      fset.Position(sym.pos),
					Analyzer: dispatchParityName,
					Message: fmt.Sprintf("%s %s differs between legs: %s leg has %q, %s leg has %q",
						sym.kind, n, legName[0], sym.sig, legName[1], counterpart.sig),
				})
			}
		}
	}
	return out
}

// paritySymbolBase strips a method's receiver qualifier ("(*Matrix).Get" ->
// "Get") so exportedness is judged on the member name.
func paritySymbolBase(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func legFileList(files []string) string {
	if len(files) == 0 {
		return "no files in that leg"
	}
	sort.Strings(files)
	return strings.Join(files, ", ")
}

// fileInLeg reports whether the file is selected when building the given
// leg, combining the //go:build expression with the filename-implied
// architecture constraint.
func fileInLeg(f *ast.File, name string, purego bool) bool {
	eval := parityLegTags(purego)
	if arch := filenameGoarch(name); arch != "" && !eval(arch) {
		return false
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err != nil {
					return false
				}
				return expr.Eval(eval)
			}
		}
	}
	return true
}

// filenameGoarch extracts a trailing _GOARCH filename constraint ("" when
// none).
func filenameGoarch(name string) string {
	base := strings.TrimSuffix(name, ".go")
	i := strings.LastIndexByte(base, '_')
	if i < 0 {
		return ""
	}
	if suffix := base[i+1:]; parityGoarches[suffix] {
		return suffix
	}
	return ""
}

// collectParitySymbols records the package-level declarations of one file.
func collectParitySymbols(fset *token.FileSet, f *ast.File, filename string, into map[string]paritySymbol) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				name = exprText(fset, d.Recv.List[0].Type) + "." + name
			}
			into[name] = paritySymbol{
				kind: "func",
				sig:  exprText(fset, stripBody(d)),
				pos:  d.Pos(),
				file: filename,
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					into[s.Name.Name] = paritySymbol{
						kind: "type",
						sig:  exprText(fset, s.Type),
						pos:  s.Pos(),
						file: filename,
					}
				case *ast.ValueSpec:
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					var typ string
					if s.Type != nil {
						typ = exprText(fset, s.Type)
					}
					for _, n := range s.Names {
						if n.Name == "_" {
							continue
						}
						// Values may legitimately differ between legs (a
						// kernel-name constant); only name and declared type
						// must match.
						into[n.Name] = paritySymbol{kind: kind, sig: typ, pos: n.Pos(), file: filename}
					}
				}
			}
		}
	}
}

// stripBody returns a copy of the func declaration without body or doc, the
// part both legs must agree on.
func stripBody(d *ast.FuncDecl) *ast.FuncDecl {
	c := *d
	c.Body = nil
	c.Doc = nil
	return &c
}

func exprText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
