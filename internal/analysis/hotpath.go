package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathAlloc enforces the zero-allocation contract on functions annotated
// //xbar:hotpath: no allocating constructs (make/new, slice/map composite
// literals, &T{} literals, append, string concatenation, string<->[]byte
// conversions, conversions to interface types, escaping closures, go
// statements) and no calls except to other hotpath-annotated functions, a
// small whitelist of non-allocating stdlib (math, math/bits, sync/atomic,
// *rand.Rand methods, time.Now/Since), or builtins. The bench gate catches
// a regression after the fact; this catches it in review.
var HotpathAlloc = &Analyzer{
	Name: hotpathAllocName,
	Doc:  "//xbar:hotpath functions must not allocate or call unannotated functions",
	Run:  runHotpathAlloc,
}

// hotpathCallWhitelist lists full-name prefixes (types.Func.FullName form)
// of stdlib calls allowed in hot paths: intrinsics and methods that do not
// allocate.
var hotpathCallWhitelist = []string{
	"math.",
	"math/bits.",
	"sync/atomic.",
	"(*sync/atomic.", // method form: (*sync/atomic.Uint32).CompareAndSwap etc.
	"(*math/rand.Rand).",
	"(math/rand.", // Source interface methods promoted onto Rand values
	"time.Now",
	"time.Since",
	"(time.Time).",
	"(time.Duration).",
}

func hotpathWhitelisted(full string) bool {
	for _, p := range hotpathCallWhitelist {
		if strings.HasPrefix(full, p) {
			return true
		}
	}
	return false
}

func runHotpathAlloc(m *Module) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		for obj, decl := range m.hotpath {
			if obj.Pkg() != pkg.Pkg || decl.Body == nil {
				continue
			}
			hw := &hotpathWalker{m: m, pkg: pkg, localFns: localClosures(pkg, decl.Body)}
			hw.node(decl.Body, nil)
			out = append(out, hw.out...)
		}
	}
	return out
}

type hotpathWalker struct {
	m        *Module
	pkg      *Package
	out      []Finding
	localFns map[types.Object]bool // idents bound once to a local func literal
}

// localClosures finds variables bound exactly once, by :=, to a func
// literal in body. A call through such a variable is as verifiable as a
// direct call — the literal's body is on the hot path and walked anyway —
// so it is exempt from the indirect-call report. Any reassignment disquali-
// fies the variable.
func localClosures(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	bound := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			_, isLit := as.Rhs[i].(*ast.FuncLit)
			if as.Tok == token.DEFINE && isLit {
				if obj := pkg.Info.Defs[id]; obj != nil {
					bound[obj] = true
				}
				continue
			}
			// Plain assignment (or := shadowing resolved to a use): the
			// binding is no longer single; drop it.
			if obj := pkg.Info.Uses[id]; obj != nil {
				delete(bound, obj)
			}
		}
		return true
	})
	return bound
}

func (w *hotpathWalker) report(pos token.Pos, format string, args ...any) {
	w.out = append(w.out, Finding{
		Pos:      w.m.Fset.Position(pos),
		Analyzer: hotpathAllocName,
		Message:  fmt.Sprintf(format, args...),
	})
}

// node walks one AST node with its parent, so context-sensitive rules
// (&T{} literals, closures in escaping positions, map-key conversions) see
// where an expression appears.
func (w *hotpathWalker) node(n ast.Node, parent ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		w.call(n, parent)
	case *ast.CompositeLit:
		w.compositeLit(n, parent)
	case *ast.FuncLit:
		if escapingFuncLit(parent) {
			w.report(n.Pos(), "closure in escaping position allocates")
		}
		// The body runs on the hot path either way; walk it.
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := w.pkg.Info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
				w.report(n.Pos(), "string concatenation allocates")
			}
		}
	case *ast.GoStmt:
		w.report(n.Pos(), "go statement on a hot path allocates a goroutine")
	}
	for _, child := range children(n) {
		w.node(child, n)
	}
}

// call checks one call expression: builtin allocators, type conversions,
// and the callee contract (hotpath-annotated, whitelisted, or reported).
func (w *hotpathWalker) call(call *ast.CallExpr, parent ast.Node) {
	info := w.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		w.conversion(call, tv.Type, parent)
		return
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	switch callee := obj.(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "make":
			w.report(call.Pos(), "make allocates")
		case "new":
			w.report(call.Pos(), "new allocates")
		case "append":
			w.report(call.Pos(), "append may grow its backing array; preallocate or justify with //xbar:allow")
		}
	case *types.Func:
		full := callee.FullName()
		if strings.HasPrefix(full, "fmt.") {
			w.report(call.Pos(), "%s allocates (fmt is banned on hot paths)", full)
			return
		}
		if w.m.Hotpath(callee) || hotpathWhitelisted(full) {
			return
		}
		w.report(call.Pos(), "calls %s, which is neither //xbar:hotpath nor whitelisted", full)
	case nil:
		// No object: a called function value (closure variable, callback
		// parameter) the checker cannot follow.
		w.report(call.Pos(), "indirect call cannot be verified allocation-free")
	default:
		if w.localFns[obj] {
			return // single-assignment local closure; its body is walked
		}
		// A variable of function type reached through an identifier.
		w.report(call.Pos(), "indirect call through %s cannot be verified allocation-free", obj.Name())
	}
}

// conversion flags the converting calls that allocate: string<->byte/rune
// slices (except the map-index idiom m[string(b)], which the compiler does
// not materialize) and conversions to interface types.
func (w *hotpathWalker) conversion(call *ast.CallExpr, target types.Type, parent ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	src := w.pkg.Info.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if types.IsInterface(target) && !types.IsInterface(src) {
		w.report(call.Pos(), "conversion to interface %s allocates", types.TypeString(target, nil))
		return
	}
	toString := isString(target) && isByteOrRuneSlice(src)
	fromString := isString(src) && isByteOrRuneSlice(target)
	if toString || fromString {
		if toString {
			if idx, ok := parent.(*ast.IndexExpr); ok && idx.Index == call {
				if t := w.pkg.Info.Types[idx.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return // m[string(b)] lookup does not copy
					}
				}
			}
		}
		w.report(call.Pos(), "string conversion copies its operand")
	}
}

func (w *hotpathWalker) compositeLit(lit *ast.CompositeLit, parent ast.Node) {
	if inner, ok := parent.(*ast.CompositeLit); ok && inner != nil {
		// Nested literal inside a flagged (or value-typed) outer literal;
		// the outer decision covers it.
		return
	}
	tv, ok := w.pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		w.report(lit.Pos(), "slice literal allocates")
	case *types.Map:
		w.report(lit.Pos(), "map literal allocates")
	default:
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
			w.report(lit.Pos(), "&%s literal allocates", types.TypeString(tv.Type, types.RelativeTo(w.pkg.Pkg)))
		}
	}
}

func escapingFuncLit(parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		// fn := func(){...} with direct calls stays on the stack; storing
		// into a field or element escapes.
		for _, lhs := range p.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return true // passed as an argument
	case *ast.ReturnStmt, *ast.KeyValueExpr, *ast.CompositeLit:
		return true
	case *ast.DeferStmt, *ast.GoStmt, *ast.ExprStmt:
		return false // go/defer/immediate invocation are flagged elsewhere
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// children returns the direct child nodes of n in source order, the walk
// order ast.Inspect would use, but with the parent kept by the caller.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	firstLevel := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if firstLevel {
			firstLevel = false
			return true // descend past n itself
		}
		out = append(out, c)
		return false // collect only direct children
	})
	return out
}
