// Package malformed carries a suppression comment with no reason, which the
// driver must report instead of silently honoring.
package malformed

//xbar:allow lock-io
var placeholder = 0
