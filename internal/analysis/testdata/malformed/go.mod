module malformedtest

go 1.24
