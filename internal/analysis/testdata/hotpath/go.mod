module hotpathtest

go 1.24
