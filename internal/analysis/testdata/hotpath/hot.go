// Package hotpath seeds one violation per hotpath-alloc rule; the golden
// test matches each finding against the want comments.
package hotpath

import (
	"fmt"
	"math/bits"
)

type counters struct {
	n int
}

//xbar:hotpath
func annotatedCallee(x int) int { return x + 1 }

func plain(x int) int { return x }

//xbar:hotpath
func callsAndBuiltins(b []byte, fn func() int, m map[string]int) int {
	s := make([]int, 4)    // want "make allocates"
	p := new(counters)     // want "new allocates"
	b = append(b, 1)       // want "append may grow its backing array"
	fmt.Println(len(s))    // want "fmt is banned on hot paths"
	total := plain(len(b)) // want "neither //xbar:hotpath nor whitelisted"
	total += fn()          // want "indirect call through fn cannot be verified"
	total += annotatedCallee(total)
	total += bits.OnesCount(uint(total))
	total += m[string(b)] // map-index conversion is free: no finding
	return total + p.n
}

//xbar:hotpath
func conversions(b []byte) (string, any) {
	s := string(b)    // want "string conversion copies its operand"
	return s, any(&b) // want "conversion to interface"
}

//xbar:hotpath
func literals(s1, s2 string) func() {
	xs := []int{1, 2}     // want "slice literal allocates"
	ms := map[int]int{}   // want "map literal allocates"
	c := &counters{}      // want "literal allocates"
	joined := s1 + s2     // want "string concatenation allocates"
	go annotatedCallee(1) // want "go statement on a hot path"
	_, _, _ = xs, ms, joined
	inc := func() { c.n++ } // single-assignment local closure: no finding
	inc()
	return func() { c.n++ } // want "closure in escaping position"
}

//xbar:hotpath
func allowedGrow(buf []int, n int) []int {
	if cap(buf) < n {
		//xbar:allow hotpath-alloc fixture demonstrates an allowed grow-once site
		buf = make([]int, n)
	}
	return buf[:n]
}
