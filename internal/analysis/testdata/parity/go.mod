module paritytest

go 1.24
