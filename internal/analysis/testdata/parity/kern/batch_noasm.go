//go:build !amd64 || purego

package kern

func kernel(x int64) int64 { return x }

func PuregoOnly() int { return 2 } // want "missing from the default (amd64) leg"

const KernelName = "portable"
