//go:build amd64 && !purego

package kern

// kernel's signature disagrees with the purego leg's.
func kernel(x int64) int { return int(x) } // want "differs between legs"

// helper is unexported but referenced from the common batch.go, so both
// legs must declare it.
func helper() int { return 0 } // want "missing from the purego leg"

// Exported symbols always need a counterpart.
func Exported() int { return 1 } // want "missing from the purego leg"

// wideHelper is a leg-private unexported helper: used only below, never
// from a common file, so the purego leg owes no counterpart.
func wideHelper(x int64) int { return int(x) }

func kernelWide(x int64) int { return wideHelper(x) }

// KernelName exists in both legs with different values; only the name and
// declared type must agree.
const KernelName = "amd64"
