// Package kern seeds dispatch-parity violations between a default-leg file
// (batch_amd64.go) and its purego counterpart (batch_noasm.go).
package kern

// Dispatch is the common entry point; kernel and helper must therefore
// resolve in both legs.
func Dispatch(x int64) int {
	return kernel(x) + helper()
}
