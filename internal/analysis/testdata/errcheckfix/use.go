// Package errcheckfix seeds every shape of discarded durable-write error:
// bare statements, defers, and blank assignments of journal appends, file
// sync/close, and renames.
package errcheckfix

import (
	"os"

	"errchecktest/journal"
)

func use(j *journal.Journal, f *os.File) error {
	j.Append(nil, nil)        // want "(*journal.Journal).Append error discarded by bare call statement"
	defer j.Close()           // want "(*journal.Journal).Close error discarded by defer"
	_, _ = j.Append(nil, nil) // want "(*journal.Journal).Append error assigned to _"
	j.Compact()               // want "(*journal.Journal).Compact error discarded by bare call statement"
	f.Sync()                  // want "(*os.File).Sync error discarded by bare call statement"
	defer f.Close()           // want "(*os.File).Close error discarded by defer"
	os.Rename("a", "b")       // want "os.Rename error discarded by bare call statement"
	_ = os.Rename("b", "a")   // want "os.Rename error assigned to _"

	//xbar:allow errcheck-durable fixture demonstrates a justified suppression
	f.Close()

	if _, err := j.AppendBatch(nil, nil); err != nil { // handled: no finding
		return err
	}
	seq, err := j.Append(nil, nil) // handled: no finding
	_ = seq
	return err
}
