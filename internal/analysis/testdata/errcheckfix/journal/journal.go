// Package journal mirrors the durable-write surface the errcheck-durable
// analyzer guards (it matches any */journal.Journal receiver).
package journal

type Journal struct{}

func (j *Journal) Append(key, value []byte) (uint64, error) { return 0, nil }
func (j *Journal) AppendBatch(keys, values [][]byte) ([]uint64, error) {
	return nil, nil
}
func (j *Journal) Close() error   { return nil }
func (j *Journal) Compact() error { return nil }
