module errchecktest

go 1.24
