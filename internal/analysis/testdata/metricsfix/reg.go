// Package metricsfix seeds metrics-contract violations: computed names,
// missing prefixes, duplicate registrations, oversized and non-literal
// label sets.
package metricsfix

import "metricstest/metrics"

const jobsTotal = "xbar_jobs_total"

func register(r *metrics.Registry, dyn string) {
	r.NewCounter(dyn, "computed name")            // want "must be a string literal"
	r.NewCounter("engine_jobs", "bad prefix")     // want "must carry the xbar_ prefix"
	r.NewCounter(jobsTotal, "named const is ok")  // no finding: constant expression
	r.NewGauge("xbar_jobs_total", "duplicate")    // want "already registered"
	r.NewHistogram("xbar_lat_seconds", "ok", nil) // no finding
	r.NewCounterVec("xbar_hits_total", "too many labels",
		"a", "b", "c", "d") // want "caps label cardinality at 3"
	r.NewHistogramVec("xbar_dur_seconds", "non-literal label", nil,
		dyn) // want "label keys must be string literals"
	r.NewGaugeVec("xbar_depth", "ok", "queue")
}
