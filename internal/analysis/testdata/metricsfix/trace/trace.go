// Package trace is a stub of the real internal/trace: the analyzer matches
// MustName on any package whose import path ends in /trace.
package trace

type Name string

func MustName(s string) Name { return Name(s) }
