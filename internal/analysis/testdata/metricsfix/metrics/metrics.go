// Package metrics mirrors the real registry's constructor surface so the
// metrics-contract analyzer (which matches any */metrics.Registry receiver)
// can be exercised against seeded violations.
package metrics

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}
type GaugeVec struct{}
type HistogramVec struct{}

func (r *Registry) NewCounter(name, help string) *Counter { return &Counter{} }
func (r *Registry) NewGauge(name, help string) *Gauge     { return &Gauge{} }
func (r *Registry) NewGaugeFunc(name, help string, f func() float64) *Gauge {
	return &Gauge{}
}
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return &Histogram{}
}
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{}
}
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{}
}
