package metricsfix

import "metricstest/trace"

const execName = "xbar.engine.exec"

var (
	spanAdmit = trace.MustName("xbar.http.admit")
	spanExec  = trace.MustName(execName)          // no finding: constant expression
	spanDup   = trace.MustName("xbar.http.admit") // want "already minted"
	spanBad   = trace.MustName("engine.queue")    // want "must carry the xbar. prefix"
)

func mint(suffix string) trace.Name {
	return trace.MustName("xbar." + suffix) // want "must be a string literal"
}
