module metricstest

go 1.24
