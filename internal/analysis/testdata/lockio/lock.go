// Package lockio seeds lock-discipline violations: file/network I/O and
// sleeps under a held mutex, a Lock with no Unlock on a return path, and a
// double Lock — plus the patterns that must stay clean (defer Unlock, the
// *Locked caller-holds convention, closures, goroutines).
package lockio

import (
	"net"
	"os"
	"sync"
	"time"
)

type Store struct {
	mu   sync.Mutex
	tail *os.File
}

func (s *Store) ioUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.tail.Sync(); err != nil { // want "(*os.File).Sync while holding s.mu"
		return err
	}
	time.Sleep(time.Millisecond)  // want "time.Sleep while holding s.mu"
	data, err := os.ReadFile("x") // want "os.ReadFile while holding s.mu"
	_ = data
	conn, derr := net.Dial("tcp", "localhost:1") // want "net.Dial while holding s.mu"
	if derr == nil {
		_ = conn.Close() // want "(net.Conn).Close while holding s.mu"
	}
	return err
}

func (s *Store) leakOnReturn(cond bool) {
	s.mu.Lock()
	if cond {
		return // want "return with s.mu held"
	}
	s.mu.Unlock()
}

func (s *Store) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want "s.mu locked twice on the same path"
	s.mu.Unlock()
	s.mu.Unlock()
}

// flushLocked follows the *Locked convention: the caller holds s.mu, so
// returning with it held is the contract — but I/O under it still flags.
func (s *Store) flushLocked() error {
	if s.tail != nil {
		return s.tail.Sync() // want "(*os.File).Sync while holding s.mu"
	}
	return nil
}

// clean exercises the patterns that must not flag: I/O before the lock,
// defer-paired unlock, closures returning under an entry-held lock, and
// goroutines that start with a fresh hold set.
func (s *Store) clean() error {
	if err := s.tail.Sync(); err != nil { // not held yet: no finding
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	probe := func() bool { return s.tail != nil } // closure may return under the entry-held lock
	if probe() {
		go func() {
			_ = os.Mkdir("spawned", 0o755) // fresh goroutine does not hold s.mu
		}()
	}
	return nil
}
