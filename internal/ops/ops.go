// Package ops is the opt-in operator debug listener behind the -ops-addr
// flag of xbarserver and xbargateway. It is a separate listener on purpose:
// profiling endpoints never ride on the public API port, so exposing the
// service does not expose pprof, and an operator can firewall the two
// independently.
package ops

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	rtpprof "runtime/pprof"
	"time"
)

// Handler returns the debug mux: the full net/http/pprof surface under
// /debug/pprof/ (heap, goroutine, allocs, block, mutex profiles via the
// index; CPU via /debug/pprof/profile) plus two plain-text snapshots that
// need no pprof tooling to read — /debug/stack (every goroutine's stack,
// the first thing to grab from a wedged process) and /debug/heap (the heap
// profile with per-site legends).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/stack", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = rtpprof.Lookup("goroutine").WriteTo(w, 2)
	})
	mux.HandleFunc("GET /debug/heap", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = rtpprof.Lookup("heap").WriteTo(w, 1)
	})
	return mux
}

// Start binds addr and serves Handler() on it in the background. The bind
// is synchronous so a bad -ops-addr fails startup loudly instead of
// surfacing as a missing debug port during an incident. Close the returned
// server to stop the listener.
func Start(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops listener: %w", err)
	}
	srv := &http.Server{
		Handler:           Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
