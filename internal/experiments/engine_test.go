package experiments

import (
	"testing"

	"repro/internal/engine"
)

// TestTable2EngineMatchesSerial is the acceptance check for the engine
// rewiring: routing the Table II study through the parallel engine must
// reproduce the serial path's Psucc columns exactly (timing columns are
// wall-clock and may differ).
func TestTable2EngineMatchesSerial(t *testing.T) {
	e := engine.New(engine.Options{CacheSize: -1})
	defer e.Close()
	only := []string{"rd53", "misex1"}
	opt := Table2Options{Samples: 20, Seed: 2018, Only: only}
	serial, err := Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Engine = e
	parallel, err := Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) != 2 {
		t.Fatalf("row counts: serial=%d engine=%d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Name != p.Name || s.Inputs != p.Inputs || s.Outputs != p.Outputs ||
			s.Products != p.Products || s.Area != p.Area || s.IR != p.IR {
			t.Errorf("row %d geometry differs: %+v vs %+v", i, s, p)
		}
		if s.HBA.Psucc != p.HBA.Psucc || s.EA.Psucc != p.EA.Psucc {
			t.Errorf("%s Psucc differs: HBA %v/%v EA %v/%v",
				s.Name, s.HBA.Psucc, p.HBA.Psucc, s.EA.Psucc, p.EA.Psucc)
		}
	}
	// An Only filter selecting nothing is benign on both paths.
	empty, err := Table2(Table2Options{Samples: 5, Only: []string{"no-such"}, Engine: e})
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty selection through engine = %v, %v", empty, err)
	}
}

func TestYieldEngineMatchesSerial(t *testing.T) {
	e := engine.New(engine.Options{CacheSize: -1})
	defer e.Close()
	spares, rates := []int{0, 2}, []float64{0.05, 0.10}
	serial, err := Yield("rd53", spares, rates, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := YieldEngine(e, "rd53", spares, rates, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("point counts: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
	if _, err := YieldEngine(e, "no-such-circuit", spares, rates, 5, 1); err == nil {
		t.Error("unknown circuit must fail")
	}
}

func TestMultiLevelMappingEngineMatchesSerial(t *testing.T) {
	e := engine.New(engine.Options{CacheSize: -1})
	defer e.Close()
	opt := MLOptions{Samples: 10, Seed: 5, Circuits: []string{"rd53"}}
	serial, err := MultiLevelMapping(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Engine = e
	parallel, err := MultiLevelMapping(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 1 || len(parallel) != 1 {
		t.Fatalf("row counts: %d vs %d", len(serial), len(parallel))
	}
	s, p := serial[0], parallel[0]
	if s.Gates != p.Gates || s.Wires != p.Wires || s.Area != p.Area ||
		s.HBA.Psucc != p.HBA.Psucc || s.EA.Psucc != p.EA.Psucc {
		t.Errorf("rows differ: %+v vs %+v", s, p)
	}
}
