package experiments

import "testing"

func TestClosedToleranceShape(t *testing.T) {
	points, err := ClosedTolerance("rd53",
		[]float64{0.01}, []int{0, 4}, []int{0, 4}, 0.05, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	noSpare, withSpare := points[0], points[1]
	// Without spares neither scheme can avoid closed defects in used
	// columns; with spares the column-aware mapper must do strictly better
	// than fixed wiring (which cannot use them for columns).
	if withSpare.ColumnPsucc < noSpare.ColumnPsucc {
		t.Errorf("spares hurt column-aware: %v -> %v", noSpare.ColumnPsucc, withSpare.ColumnPsucc)
	}
	if withSpare.ColumnPsucc <= withSpare.FixedPsucc {
		t.Errorf("column-aware (%v) should beat fixed wiring (%v) with spares",
			withSpare.ColumnPsucc, withSpare.FixedPsucc)
	}
}

func TestClosedToleranceUnknownCircuit(t *testing.T) {
	if _, err := ClosedTolerance("zzz", []float64{0.01}, []int{0}, []int{0}, 0.05, 2, 1); err == nil {
		t.Error("unknown circuit must fail")
	}
}
