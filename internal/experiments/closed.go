package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/defect"
	"repro/internal/mapping"
	"repro/internal/minimize"
	"repro/internal/montecarlo"
	"repro/internal/suite"
	"repro/internal/xbar"
)

// ClosedPoint is one configuration of the stuck-closed tolerance study.
type ClosedPoint struct {
	ClosedRate float64
	SparePairs int
	SpareRows  int
	// FixedPsucc is the success rate of the paper's fixed-wiring HBA; it
	// collapses as soon as closed defects hit used columns (Section IV-A).
	FixedPsucc float64
	// ColumnPsucc is the success rate of the column-permutation extension.
	ColumnPsucc float64
}

// ClosedTolerance sweeps stuck-at-closed defect rates against spare column
// pairs (and spare rows) for one circuit, comparing fixed-wiring HBA with
// the column-aware mapper. This turns the paper's qualitative Section IV-A
// statement — closed defects are untolerable without redundancy — into a
// measured yield curve.
func ClosedTolerance(circuit string, closedRates []float64, sparePairs, spareRows []int,
	openRate float64, samples int, seed int64) ([]ClosedPoint, error) {
	c, ok := suite.ByName(circuit)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown circuit %q", circuit)
	}
	cov := c.Build()
	if c.Kind == suite.Exact {
		cov = minimize.Minimize(cov, minimize.Options{MaxIterations: 2})
	}
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		return nil, err
	}
	base := mapping.SpecFor(l)
	var points []ClosedPoint
	for pi, sp := range sparePairs {
		sr := 0
		if pi < len(spareRows) {
			sr = spareRows[pi]
		}
		spec := mapping.FabricSpec{
			InputPairs:  base.InputPairs + sp,
			Wires:       base.Wires,
			OutputPairs: base.OutputPairs + sp,
		}
		for _, rate := range closedRates {
			// fixed/col are summed by the trials; this study runs serially
			// (no Parallel option), and the scratch state lives in the
			// factory so a future parallel switch gets one set per worker.
			// Everything the trial touches — defect map, fixed-wiring
			// projection, row scratch, column scratch — is preallocated
			// here and reused, so the trial loop is allocation-free in
			// steady state.
			fixed, col := 0, 0
			summary, err := montecarlo.RunFactory(montecarlo.Options{Samples: samples, Seed: seed},
				func() montecarlo.Trial {
					dm := defect.NewMap(l.Rows+sr, spec.Cols())
					// Fixed wiring: the design occupies the leading columns
					// of each block (trial-invariant, built once per worker).
					fixedAssign := identityAssignment(l, base)
					fdm := defect.NewMap(dm.Rows, l.Cols)
					fixedProblem, fpErr := mapping.NewProblem(l, fdm)
					rowScratch := mapping.NewScratch()
					colScratch := mapping.NewColumnScratch()
					return func(i int, rng *rand.Rand) montecarlo.Outcome {
						if genErr := dm.Regenerate(defect.Params{POpen: openRate, PClosed: rate}, rng); genErr != nil {
							return montecarlo.Outcome{}
						}
						mapping.ProjectDefectsInto(fdm, dm, spec, l, fixedAssign)
						if fpErr == nil && mapping.HBAScratch(fixedProblem, rowScratch).Valid {
							fixed++
						}
						res, caErr := mapping.ColumnAwareScratch(l, dm, spec, mapping.ColumnOptions{Seed: int64(i)}, colScratch)
						if caErr == nil && res.Valid {
							col++
						}
						return montecarlo.Outcome{Success: caErr == nil && res.Valid}
					}
				})
			if err != nil {
				return nil, err
			}
			_ = summary
			points = append(points, ClosedPoint{
				ClosedRate:  rate,
				SparePairs:  sp,
				SpareRows:   sr,
				FixedPsucc:  float64(fixed) / float64(samples),
				ColumnPsucc: float64(col) / float64(samples),
			})
		}
	}
	return points, nil
}

func identityAssignment(l *xbar.Layout, base mapping.FabricSpec) mapping.ColumnAssignment {
	a := mapping.ColumnAssignment{
		InputPair:  make([]int, base.InputPairs),
		Wire:       make([]int, base.Wires),
		OutputPair: make([]int, base.OutputPairs),
	}
	for i := range a.InputPair {
		a.InputPair[i] = i
	}
	for i := range a.Wire {
		a.Wire[i] = i
	}
	for i := range a.OutputPair {
		a.OutputPair[i] = i
	}
	return a
}
