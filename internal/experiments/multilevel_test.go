package experiments

import "testing"

func TestMultiLevelMappingSmall(t *testing.T) {
	rows, err := MultiLevelMapping(MLOptions{
		Samples:  25,
		Seed:     5,
		Circuits: []string{"rd53", "misex1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Gates <= 0 || r.Area != r.Rows*r.Cols {
			t.Errorf("%s geometry inconsistent: %+v", r.Name, r)
		}
		if r.HBA.Psucc > r.EA.Psucc+1e-9 {
			t.Errorf("%s: HBA beats EA (%v > %v)", r.Name, r.HBA.Psucc, r.EA.Psucc)
		}
		if r.IR <= 0 || r.IR >= 1 {
			t.Errorf("%s IR = %v out of range", r.Name, r.IR)
		}
	}
}

func TestMultiLevelMappingUnknownCircuit(t *testing.T) {
	if _, err := MultiLevelMapping(MLOptions{Samples: 1, Circuits: []string{"zzz"}}); err == nil {
		t.Error("unknown circuit must fail")
	}
}

func TestAblationOrdering(t *testing.T) {
	rows, err := Ablation("rd53", 60, 0.10, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// The paper HBA must not be worse than the greedy-only baseline.
	if rows[2].Psucc < rows[0].Psucc {
		t.Errorf("paper HBA (%v) below greedy-only (%v)", rows[2].Psucc, rows[0].Psucc)
	}
	for _, r := range rows {
		if r.Psucc < 0 || r.Psucc > 1 {
			t.Errorf("%s: Psucc %v out of range", r.Variant, r.Psucc)
		}
	}
}

func TestAblationUnknownCircuit(t *testing.T) {
	if _, err := Ablation("zzz", 1, 0.1, 1); err == nil {
		t.Error("unknown circuit must fail")
	}
}
