package experiments

import (
	"testing"
	"time"

	"repro/internal/suite"
)

const suiteProfile = suite.Profile

func TestFig6Shapes(t *testing.T) {
	series, err := Fig6([]int{8, 10}, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	for _, s := range series {
		if len(s.Samples) != 40 {
			t.Fatalf("n=%d: samples = %d, want 40", s.Inputs, len(s.Samples))
		}
		for i := 1; i < len(s.Samples); i++ {
			if s.Samples[i].Products < s.Samples[i-1].Products {
				t.Fatal("samples must be sorted by product count")
			}
		}
		for _, smp := range s.Samples {
			if smp.TwoLevelArea != (smp.Products+1)*(2*s.Inputs+2) {
				t.Fatalf("two-level area model violated: %+v", smp)
			}
			if smp.MultiLevelArea <= 0 {
				t.Fatal("multi-level area must be positive")
			}
		}
		if s.SuccessRate < 0 || s.SuccessRate > 1 {
			t.Fatalf("success rate %v out of range", s.SuccessRate)
		}
	}
}

func TestFig6SuccessRateFallsWithInputs(t *testing.T) {
	// The paper's headline Fig. 6 trend: harder to beat two-level as the
	// input count grows. Checked with the endpoints and a margin.
	series, err := Fig6([]int{8, 15}, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	small, large := series[0].SuccessRate, series[1].SuccessRate
	if small <= large {
		t.Errorf("success rate should fall with input size: n=8 %.2f vs n=15 %.2f", small, large)
	}
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.TwoLevel <= 0 || r.MultiLevel <= 0 || r.NegTwoLevel <= 0 || r.NegMultiLevel <= 0 {
			t.Fatalf("%s has non-positive areas: %+v", r.Name, r)
		}
	}
	// Two-level areas are a function of I, O, P alone: profile rows match
	// the paper exactly by construction; exact rows are regenerated through
	// our own minimizer, so they land within a 15% band of espresso's
	// product counts (EXPERIMENTS.md records the deltas).
	// Beating the paper's minimizer is fine; being >15% worse is not.
	within := func(got, paper int) bool {
		return got > 0 && float64(got) < float64(paper)*1.15
	}
	for _, r := range rows {
		if r.PaperTwoLevel == 0 {
			continue
		}
		if r.Kind == suiteProfile {
			if r.TwoLevel != r.PaperTwoLevel {
				t.Errorf("%s two-level area = %d, paper %d", r.Name, r.TwoLevel, r.PaperTwoLevel)
			}
			if r.NegTwoLevel != r.PaperNegTwoLevel {
				t.Errorf("%s negated two-level area = %d, paper %d", r.Name, r.NegTwoLevel, r.PaperNegTwoLevel)
			}
			continue
		}
		if !within(r.TwoLevel, r.PaperTwoLevel) {
			t.Errorf("%s two-level area = %d, paper %d (beyond 15%%)", r.Name, r.TwoLevel, r.PaperTwoLevel)
		}
		if !within(r.NegTwoLevel, r.PaperNegTwoLevel) {
			t.Errorf("%s negated two-level area = %d, paper %d (beyond 15%%)", r.Name, r.NegTwoLevel, r.PaperNegTwoLevel)
		}
	}
	// Shape: multi-level loses on the wide multi-output benchmarks...
	for _, name := range []string{"bw", "misex1", "rd84", "b12"} {
		r := byName[name]
		if r.MultiLevel <= r.TwoLevel {
			t.Errorf("%s: multi-level (%d) should exceed two-level (%d)", name, r.MultiLevel, r.TwoLevel)
		}
	}
	// ...and wins on the deep single-output stand-ins (the t481/cordic
	// phenomenon).
	for _, name := range []string{"t481", "cordic"} {
		r := byName[name]
		if r.MultiLevel >= r.TwoLevel {
			t.Errorf("%s: multi-level (%d) should beat two-level (%d)", name, r.MultiLevel, r.TwoLevel)
		}
	}
}

func TestTable2SmallRun(t *testing.T) {
	rows, err := Table2(Table2Options{
		Samples: 30,
		Seed:    3,
		Only:    []string{"rd53", "misex1", "rd73"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		// Profile circuits match the paper's geometry exactly; exact
		// circuits go through our own minimizer and land within ~20%.
		if c, _ := suite.ByName(r.Name); c.Kind == suite.Profile {
			if r.Area != r.PaperArea {
				t.Errorf("%s area = %d, paper %d", r.Name, r.Area, r.PaperArea)
			}
		} else if float64(r.Area) > 1.2*float64(r.PaperArea) {
			t.Errorf("%s area = %d, paper %d (beyond 20%%)", r.Name, r.Area, r.PaperArea)
		}
		if r.HBA.Psucc < 0 || r.HBA.Psucc > 1 || r.EA.Psucc < 0 || r.EA.Psucc > 1 {
			t.Errorf("%s success rates out of range: %+v", r.Name, r)
		}
		// HBA is sound: it can never beat the exact algorithm.
		if r.HBA.Psucc > r.EA.Psucc+1e-9 {
			t.Errorf("%s: HBA Psucc %.2f exceeds EA %.2f", r.Name, r.HBA.Psucc, r.EA.Psucc)
		}
		if r.HBA.MeanTime <= 0 || r.EA.MeanTime <= 0 {
			t.Errorf("%s: timings missing", r.Name)
		}
	}
	// Easy circuit maps nearly always; rd73 (IR 0.34, 127 products) is the
	// hard one and must be strictly harder than misex1.
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["misex1"].EA.Psucc < 0.9 {
		t.Errorf("misex1 should map nearly always, got %.2f", byName["misex1"].EA.Psucc)
	}
	if byName["rd73"].EA.Psucc >= byName["misex1"].EA.Psucc {
		t.Errorf("rd73 (%.2f) should be harder than misex1 (%.2f)",
			byName["rd73"].EA.Psucc, byName["misex1"].EA.Psucc)
	}
}

func TestYieldMonotonicInSpares(t *testing.T) {
	points, err := Yield("rd53", []int{0, 8}, []float64{0.15}, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	if points[1].Psucc < points[0].Psucc {
		t.Errorf("spare rows must not hurt yield: %v -> %v", points[0].Psucc, points[1].Psucc)
	}
}

func TestYieldUnknownCircuit(t *testing.T) {
	if _, err := Yield("nope", []int{0}, []float64{0.1}, 5, 1); err == nil {
		t.Error("unknown circuit must fail")
	}
}

func TestTable2Durations(t *testing.T) {
	rows, err := Table2(Table2Options{Samples: 10, Only: []string{"rd53"}})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].HBA.MeanTime > time.Second {
		t.Errorf("rd53 HBA mean time suspiciously slow: %v", rows[0].HBA.MeanTime)
	}
}
