// Package experiments regenerates every table and figure of the paper's
// evaluation: the Fig. 6 Monte Carlo area comparison, the Table I benchmark
// area comparison (original and negated circuits), the Table II
// defect-tolerant mapping study (HBA vs EA success rate and runtime), the
// Fig. 7/8 worked example, and the Section VI redundancy/yield exploration.
//
// Both cmd/experiments and the root bench suite drive this package, so the
// printed rows and the benchmarked code paths are the same.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/defect"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/minimize"
	"repro/internal/montecarlo"
	"repro/internal/randfunc"
	"repro/internal/suite"
	"repro/internal/synth"
	"repro/internal/xbar"
)

// ---------------------------------------------------------------------------
// Fig. 6: two-level vs multi-level area on random functions.

// Fig6Sample is one random function's costs.
type Fig6Sample struct {
	Products       int
	TwoLevelArea   int
	MultiLevelArea int
}

// Fig6Series is one subplot of Fig. 6 (one input size).
type Fig6Series struct {
	Inputs      int
	Samples     []Fig6Sample // sorted by product count, as in the figure
	SuccessRate float64      // fraction with MultiLevelArea < TwoLevelArea
}

// Fig6 reproduces the Monte Carlo study: `samples` random single-output
// functions per input size, two-level cost from the SOP, multi-level cost
// from the NAND synthesizer (the ABC substitute).
func Fig6(inputSizes []int, samples int, seed int64) ([]Fig6Series, error) {
	var out []Fig6Series
	for _, n := range inputSizes {
		s, err := fig6One(n, samples, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func fig6One(inputs, samples int, seed int64) (Fig6Series, error) {
	funcs, err := randfunc.GenerateBatch(randfunc.Params{Inputs: inputs}, samples, seed+int64(inputs)*7_919)
	if err != nil {
		return Fig6Series{}, err
	}
	series := Fig6Series{Inputs: inputs}
	wins := 0
	for _, f := range funcs {
		two := synth.TwoLevel(f)
		nw, err := synth.SynthesizeMultiLevel(f, synth.MultiLevelOptions{Minimize: true})
		if err != nil {
			return Fig6Series{}, err
		}
		multi := synth.MultiLevel(nw)
		series.Samples = append(series.Samples, Fig6Sample{
			Products:       two.Products,
			TwoLevelArea:   two.Area,
			MultiLevelArea: multi.Area,
		})
		if multi.Area < two.Area {
			wins++
		}
	}
	sort.SliceStable(series.Samples, func(a, b int) bool {
		return series.Samples[a].Products < series.Samples[b].Products
	})
	if samples > 0 {
		series.SuccessRate = float64(wins) / float64(samples)
	}
	return series, nil
}

// ---------------------------------------------------------------------------
// Table I: benchmark area comparison, original circuit and its negation.

// Table1Row is one benchmark line of Table I.
type Table1Row struct {
	Name string
	Kind suite.Kind
	// Original circuit.
	TwoLevel   int
	MultiLevel int
	// Negation of circuit.
	NegTwoLevel   int
	NegMultiLevel int
	// PaperTwoLevel / PaperNegTwoLevel are the paper's published two-level
	// areas (0 when the row is a structural stand-in whose dimensions are
	// intentionally different; see EXPERIMENTS.md).
	PaperTwoLevel    int
	PaperNegTwoLevel int
}

// table1Paper holds Table I's published areas and the negated-circuit
// product counts back-derived from them.
var table1Paper = map[string]struct {
	two, negTwo int
	negProducts int
	structural  bool // stand-in: do not expect the published numbers
}{
	"rd53":   {544, 560, 32, false},
	"con1":   {198, 198, 9, false},
	"misex1": {570, 1590, 46, false},
	"bw":     {3300, 3564, 26, false},
	"sqrt8":  {1008, 792, 29, false},
	"rd84":   {6216, 7128, 293, false},
	"b12":    {2496, 2064, 34, false},
	"t481":   {16388, 12274, 360, true},
	"cordic": {45800, 59650, 1191, true},
}

// Table1 regenerates Table I. Exact circuits are negated by true
// complementation (+ minimization); profile circuits use a second profile
// with the paper's negated-circuit dimensions; the structural stand-ins
// (t481, cordic) use their analytic complements.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, c := range suite.Table1Circuits() {
		paper := table1Paper[c.Name]
		orig, neg, err := table1Covers(c, paper.negProducts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %v", c.Name, err)
		}
		row := Table1Row{Name: c.Name, Kind: c.Kind}
		if !paper.structural {
			row.PaperTwoLevel = paper.two
			row.PaperNegTwoLevel = paper.negTwo
		}
		row.TwoLevel = synth.TwoLevel(orig).Area
		row.NegTwoLevel = synth.TwoLevel(neg).Area
		nw, err := synth.SynthesizeMultiLevel(orig, synth.MultiLevelOptions{})
		if err != nil {
			return nil, err
		}
		row.MultiLevel = synth.MultiLevel(nw).Area
		nwNeg, err := synth.SynthesizeMultiLevel(neg, synth.MultiLevelOptions{})
		if err != nil {
			return nil, err
		}
		row.NegMultiLevel = synth.MultiLevel(nwNeg).Area
		rows = append(rows, row)
	}
	return rows, nil
}

// table1Covers builds the original and negated covers for one benchmark.
func table1Covers(c suite.Circuit, negProducts int) (orig, neg *logic.Cover, err error) {
	switch c.Name {
	case "t481":
		return suite.T481Standin(), suite.T481StandinNeg(), nil
	case "cordic":
		return suite.CordicStandin(), suite.CordicStandinNeg(), nil
	}
	orig = c.Build()
	if c.Kind == suite.Exact {
		if c.Name == "sqrt8" {
			// sqrt8 is regenerated as raw minterms; Table I compares
			// minimized covers (espresso found 38 products, our minimizer
			// lands nearby — the delta is recorded in EXPERIMENTS.md).
			orig = minimize.Minimize(orig, minimize.Options{MaxIterations: 2})
		}
		neg = minimize.Minimize(orig.ComplementAll(), minimize.Options{MaxIterations: 2})
		return orig, neg, nil
	}
	negCircuit := suite.Circuit{
		Name:     c.Name + "-neg",
		Kind:     suite.Profile,
		Inputs:   c.Inputs,
		Outputs:  c.Outputs,
		Products: negProducts,
		IR:       c.IR,
	}
	neg = suite.BuildProfileCircuit(negCircuit)
	return orig, neg, nil
}

// ---------------------------------------------------------------------------
// Table II: HBA vs EA success rate and runtime at 10% stuck-open defects.

// AlgoStats is one algorithm's column pair in Table II.
type AlgoStats struct {
	Psucc    float64
	MeanTime time.Duration
}

// Table2Row is one benchmark line of Table II.
type Table2Row struct {
	Name     string
	Inputs   int
	Outputs  int
	Products int
	Area     int
	IR       float64
	HBA      AlgoStats
	EA       AlgoStats
	// Paper columns for side-by-side reporting.
	PaperArea  int
	PaperIR    float64
	PaperPsHBA float64
	PaperPsEA  float64
}

// paperTable2 holds the published Psucc columns (fractions).
var paperTable2 = map[string][2]float64{
	"rd53": {0.98, 0.98}, "squar5": {1, 1}, "bw": {1, 1}, "inc": {1, 1},
	"misex1": {1, 1}, "sqrt8": {1, 1}, "sao2": {0.94, 0.97}, "rd73": {0.78, 0.92},
	"clip": {0.76, 0.79}, "rd84": {0.82, 0.89}, "ex1010": {1, 1}, "table3": {1, 1},
	"misex3c": {1, 1}, "exp5": {0.65, 0.80}, "apex4": {1, 1}, "alu4": {1, 1},
}

// Table2Options tunes the Monte Carlo study.
type Table2Options struct {
	// Samples per benchmark; zero means the paper's 200.
	Samples int
	// DefectRate is the stuck-open probability; zero means the paper's 0.10.
	DefectRate float64
	// Seed drives defect-map sampling.
	Seed int64
	// Only restricts the run to the named circuits (nil = all).
	Only []string
	// Parallel distributes samples across cores.
	Parallel bool
	// Engine, when set, routes the study through the compilation engine:
	// every (circuit, algorithm) Monte Carlo batch becomes one job and
	// the rows fill in parallel across cores. Psucc columns are identical
	// to the serial path because per-sample rng derivation depends only
	// on the seed and sample index.
	Engine *engine.Engine
}

func (o Table2Options) withDefaults() Table2Options {
	if o.Samples == 0 {
		o.Samples = montecarlo.DefaultSamples
	}
	if o.DefectRate == 0 {
		o.DefectRate = 0.10
	}
	return o
}

// Table2 regenerates Table II: for each benchmark, 200 defect maps at the
// given rate on the optimum-size crossbar, mapped with both HBA and EA;
// reports success rates and mean per-sample algorithm runtime.
func Table2(opt Table2Options) ([]Table2Row, error) {
	opt = opt.withDefaults()
	circuits := table2Selection(opt.Only)
	if opt.Engine != nil {
		return table2Engine(circuits, opt)
	}
	var rows []Table2Row
	for _, c := range circuits {
		row, err := table2One(c, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %v", c.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table2Selection(only []string) []suite.Circuit {
	var circuits []suite.Circuit
	for _, c := range suite.Table2Circuits() {
		if len(only) > 0 && !contains(only, c.Name) {
			continue
		}
		circuits = append(circuits, c)
	}
	return circuits
}

// table2Engine runs the whole study as one engine batch: two Monte Carlo
// jobs (HBA, EA) per benchmark, scheduled across the pool.
func table2Engine(circuits []suite.Circuit, opt Table2Options) ([]Table2Row, error) {
	specs := make([]engine.JobSpec, 0, 2*len(circuits))
	for _, c := range circuits {
		l, err := xbar.NewTwoLevel(table2Cover(c))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %v", c.Name, err)
		}
		base := engine.JobSpec{
			Kind:     engine.MonteCarloYield,
			Layout:   l, // synthesized once, shared by both algorithm jobs
			OpenRate: opt.DefectRate,
			Samples:  opt.Samples,
			Seed:     opt.Seed + int64(len(c.Name)),
		}
		hba, ea := base, base
		hba.Algorithm, ea.Algorithm = "HBA", "EA"
		specs = append(specs, hba, ea)
	}
	results, err := opt.Engine.Run(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, 0, len(circuits))
	for i, c := range circuits {
		hba, ea := results[2*i], results[2*i+1]
		if hba.Err != "" {
			return nil, fmt.Errorf("experiments: %s (HBA): %s", c.Name, hba.Err)
		}
		if ea.Err != "" {
			return nil, fmt.Errorf("experiments: %s (EA): %s", c.Name, ea.Err)
		}
		cov := table2Cover(c)
		row := Table2Row{
			Name:      c.Name,
			Inputs:    cov.NumIn,
			Outputs:   cov.NumOut,
			Products:  cov.NumProducts(),
			Area:      hba.Area,
			IR:        hba.IR,
			HBA:       AlgoStats{Psucc: hba.Psucc, MeanTime: hba.MeanTime},
			EA:        AlgoStats{Psucc: ea.Psucc, MeanTime: ea.MeanTime},
			PaperArea: (c.Products + c.Outputs) * (2*c.Inputs + 2*c.Outputs),
			PaperIR:   c.IR,
		}
		if ps, ok := paperTable2[c.Name]; ok {
			row.PaperPsHBA, row.PaperPsEA = ps[0], ps[1]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// table2Cover builds the cover actually mapped in Table II. Exact circuits
// are regenerated as minterm lists and must be minimized first: the paper
// maps the espresso-minimized PLAs, whose don't-care positions are what
// keeps optimum-size mapping feasible at 10% defects (an all-literal minterm
// row dies whenever any input column pair is fully broken). Results are
// cached because the bench suite re-enters per iteration.
func table2Cover(c suite.Circuit) *logic.Cover {
	table2CoverMu.Lock()
	defer table2CoverMu.Unlock()
	if cov, ok := table2CoverCache[c.Name]; ok {
		return cov
	}
	cov := c.Build()
	if c.Kind == suite.Exact {
		cov = minimize.Minimize(cov, minimize.Options{MaxIterations: 2})
	}
	table2CoverCache[c.Name] = cov
	return cov
}

var (
	table2CoverMu    sync.Mutex
	table2CoverCache = map[string]*logic.Cover{}
)

// yieldTrialFactory builds the Monte Carlo trial shared by the mapping
// studies: per worker, one preallocated defect map regenerated in place per
// trial plus mapping scratch buffers, so the steady-state trial loop is
// allocation-free. Results are bit-identical to generating a fresh map per
// trial because Regenerate consumes the rng exactly like Generate.
func yieldTrialFactory(l *xbar.Layout, spareRows int, params defect.Params,
	algo func(*mapping.Problem, *mapping.Scratch) mapping.Result) montecarlo.TrialFactory {
	return func() montecarlo.Trial {
		dm := defect.NewMap(l.Rows+spareRows, l.Cols)
		scratch := mapping.NewScratch()
		p, pErr := mapping.NewProblem(l, dm)
		return func(i int, rng *rand.Rand) montecarlo.Outcome {
			if pErr != nil {
				return montecarlo.Outcome{}
			}
			if genErr := dm.Regenerate(params, rng); genErr != nil {
				return montecarlo.Outcome{}
			}
			start := time.Now()
			res := algo(p, scratch)
			return montecarlo.Outcome{Success: res.Valid, Elapsed: time.Since(start)}
		}
	}
}

func table2One(c suite.Circuit, opt Table2Options) (Table2Row, error) {
	cov := table2Cover(c)
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		return Table2Row{}, err
	}
	row := Table2Row{
		Name:      c.Name,
		Inputs:    cov.NumIn,
		Outputs:   cov.NumOut,
		Products:  cov.NumProducts(),
		Area:      l.Area(),
		IR:        l.InclusionRatio(),
		PaperArea: (c.Products + c.Outputs) * (2*c.Inputs + 2*c.Outputs),
		PaperIR:   c.IR,
	}
	if ps, ok := paperTable2[c.Name]; ok {
		row.PaperPsHBA, row.PaperPsEA = ps[0], ps[1]
	}
	run := func(algo func(*mapping.Problem, *mapping.Scratch) mapping.Result) (AlgoStats, error) {
		summary, err := montecarlo.RunFactory(montecarlo.Options{
			Samples:  opt.Samples,
			Seed:     opt.Seed + int64(len(c.Name)),
			Parallel: opt.Parallel,
		}, yieldTrialFactory(l, 0, defect.Params{POpen: opt.DefectRate}, algo))
		if err != nil {
			return AlgoStats{}, err
		}
		return AlgoStats{Psucc: summary.SuccessRate, MeanTime: summary.MeanTime}, nil
	}
	if row.HBA, err = run(mapping.HBAScratch); err != nil {
		return Table2Row{}, err
	}
	if row.EA, err = run(mapping.ExactScratch); err != nil {
		return Table2Row{}, err
	}
	return row, nil
}

// ---------------------------------------------------------------------------
// Section VI: redundancy vs yield exploration (future-work direction).

// YieldPoint is the mapping success rate for one (spare rows, defect rate)
// configuration.
type YieldPoint struct {
	SpareRows  int
	DefectRate float64
	Psucc      float64
}

// Yield sweeps redundant spare rows against stuck-open defect rates for one
// circuit, quantifying the paper's Section VI claim that redundancy buys
// defect tolerance.
func Yield(circuit string, spares []int, rates []float64, samples int, seed int64) ([]YieldPoint, error) {
	c, ok := suite.ByName(circuit)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown circuit %q", circuit)
	}
	l, err := xbar.NewTwoLevel(c.Build())
	if err != nil {
		return nil, err
	}
	var points []YieldPoint
	for _, spare := range spares {
		for _, rate := range rates {
			summary, err := montecarlo.RunFactory(montecarlo.Options{Samples: samples, Seed: seed},
				yieldTrialFactory(l, spare, defect.Params{POpen: rate}, mapping.HBAScratch))
			if err != nil {
				return nil, err
			}
			points = append(points, YieldPoint{SpareRows: spare, DefectRate: rate, Psucc: summary.SuccessRate})
		}
	}
	return points, nil
}

// YieldEngine runs the same sweep as Yield through the compilation engine:
// one monte-carlo-yield job per (spare rows, defect rate) point, executed
// across cores. Psucc values match Yield exactly (same seeds, same
// per-sample rng derivation); points come back in sweep order.
func YieldEngine(e *engine.Engine, circuit string, spares []int, rates []float64, samples int, seed int64) ([]YieldPoint, error) {
	c, ok := suite.ByName(circuit)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown circuit %q", circuit)
	}
	l, err := xbar.NewTwoLevel(c.Build())
	if err != nil {
		return nil, err
	}
	var specs []engine.JobSpec
	for _, spare := range spares {
		for _, rate := range rates {
			specs = append(specs, engine.JobSpec{
				Kind:      engine.MonteCarloYield,
				Layout:    l, // synthesized once, shared by every sweep point
				SpareRows: spare,
				OpenRate:  rate,
				Samples:   samples,
				Seed:      seed,
				Algorithm: "HBA",
			})
		}
	}
	results, err := e.Run(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	var points []YieldPoint
	i := 0
	for _, spare := range spares {
		for _, rate := range rates {
			if results[i].Err != "" {
				return nil, fmt.Errorf("experiments: yield point (%d, %.2f): %s", spare, rate, results[i].Err)
			}
			points = append(points, YieldPoint{SpareRows: spare, DefectRate: rate, Psucc: results[i].Psucc})
			i++
		}
	}
	return points, nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
