package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/defect"
	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/minimize"
	"repro/internal/montecarlo"
	"repro/internal/suite"
	"repro/internal/synth"
	"repro/internal/xbar"
)

// MLRow is one circuit of the multi-level defect-mapping study — the
// integration of multi-level synthesis with defect-tolerant mapping that
// the paper's Section VI names as future work. HBA and EA operate on any
// layout's function matrix, so the same machinery applies to gate rows.
type MLRow struct {
	Name  string
	Gates int
	Wires int
	Rows  int
	Cols  int
	Area  int
	IR    float64
	HBA   AlgoStats
	EA    AlgoStats
}

// MLOptions tunes the study.
type MLOptions struct {
	// Samples per circuit; zero means the paper's 200.
	Samples int
	// DefectRate is the stuck-open probability; zero means 0.10.
	DefectRate float64
	Seed       int64
	// Circuits restricts the run (nil = a representative default set; the
	// very large profiles are excluded because random dense covers factor
	// into very wide multi-level layouts).
	Circuits []string
	Parallel bool
	// Engine, when set, routes the Monte Carlo batches through the
	// compilation engine (one job per circuit and algorithm), with Psucc
	// identical to the serial path.
	Engine *engine.Engine
}

// DefaultMLCircuits is the default circuit set for the multi-level study.
var DefaultMLCircuits = []string{"rd53", "squar5", "misex1", "sqrt8", "inc", "sao2"}

// MultiLevelMapping measures defect-tolerant mapping success on multi-level
// layouts at the given stuck-open rate, on optimum-size fabrics.
func MultiLevelMapping(opt MLOptions) ([]MLRow, error) {
	if opt.Samples == 0 {
		opt.Samples = montecarlo.DefaultSamples
	}
	if opt.DefectRate == 0 {
		opt.DefectRate = 0.10
	}
	circuits := opt.Circuits
	if circuits == nil {
		circuits = DefaultMLCircuits
	}
	// Phase 1: geometry. Build every circuit's multi-level layout and the
	// static row columns; the Monte Carlo phase then runs either serially
	// or as one engine batch.
	var preps []mlPrepared
	for _, name := range circuits {
		c, ok := suite.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown circuit %q", name)
		}
		cov := c.Build()
		if c.Kind == suite.Exact {
			cov = minimize.Minimize(cov, minimize.Options{MaxIterations: 2})
		}
		nw, err := synth.SynthesizeMultiLevel(cov, synth.MultiLevelOptions{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %v", name, err)
		}
		l, err := xbar.NewMultiLevel(nw)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %v", name, err)
		}
		preps = append(preps, mlPrepared{name: name, l: l, row: MLRow{
			Name:  name,
			Gates: nw.NumGates(),
			Wires: nw.NumInternalWires(),
			Rows:  l.Rows,
			Cols:  l.Cols,
			Area:  l.Area(),
			IR:    l.InclusionRatio(),
		}})
	}
	if opt.Engine != nil {
		return mlEngine(preps, opt)
	}
	var rows []MLRow
	for _, p := range preps {
		name, l, row := p.name, p.l, p.row
		var err error
		run := func(algo func(*mapping.Problem, *mapping.Scratch) mapping.Result) (AlgoStats, error) {
			summary, err := montecarlo.RunFactory(montecarlo.Options{
				Samples: opt.Samples, Seed: opt.Seed + int64(len(name)), Parallel: opt.Parallel,
			}, yieldTrialFactory(l, 0, defect.Params{POpen: opt.DefectRate}, algo))
			if err != nil {
				return AlgoStats{}, err
			}
			return AlgoStats{Psucc: summary.SuccessRate, MeanTime: summary.MeanTime}, nil
		}
		if row.HBA, err = run(mapping.HBAScratch); err != nil {
			return nil, err
		}
		if row.EA, err = run(mapping.ExactScratch); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// mlPrepared is one circuit with its multi-level layout and static columns
// built, awaiting the Monte Carlo phase.
type mlPrepared struct {
	name string
	l    *xbar.Layout
	row  MLRow
}

// mlEngine runs the Monte Carlo phase of the multi-level study as one
// engine batch: two jobs (HBA, EA) per circuit on multi-level layouts.
func mlEngine(preps []mlPrepared, opt MLOptions) ([]MLRow, error) {
	var specs []engine.JobSpec
	for _, p := range preps {
		base := engine.JobSpec{
			Kind:     engine.MonteCarloYield,
			Layout:   p.l, // already synthesized in phase 1
			OpenRate: opt.DefectRate,
			Samples:  opt.Samples,
			Seed:     opt.Seed + int64(len(p.name)),
		}
		hba, ea := base, base
		hba.Algorithm, ea.Algorithm = "HBA", "EA"
		specs = append(specs, hba, ea)
	}
	results, err := opt.Engine.Run(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	rows := make([]MLRow, 0, len(preps))
	for i, p := range preps {
		hba, ea := results[2*i], results[2*i+1]
		if hba.Err != "" {
			return nil, fmt.Errorf("experiments: %s (HBA): %s", p.name, hba.Err)
		}
		if ea.Err != "" {
			return nil, fmt.Errorf("experiments: %s (EA): %s", p.name, ea.Err)
		}
		row := p.row
		row.HBA = AlgoStats{Psucc: hba.Psucc, MeanTime: hba.MeanTime}
		row.EA = AlgoStats{Psucc: ea.Psucc, MeanTime: ea.MeanTime}
		rows = append(rows, row)
	}
	return rows, nil
}

// Ablation compares HBA design-choice variants (backtracking, exact output
// assignment, density ordering) on one circuit, extending the paper's
// algorithm discussion with measured contributions.
type AblationRow struct {
	Variant string
	Psucc   float64
	Mean    time.Duration
}

// Ablation runs the HBA variants of mapping.HBAOptions on the named circuit.
func Ablation(circuit string, samples int, rate float64, seed int64) ([]AblationRow, error) {
	c, ok := suite.ByName(circuit)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown circuit %q", circuit)
	}
	cov := c.Build()
	if c.Kind == suite.Exact {
		cov = minimize.Minimize(cov, minimize.Options{MaxIterations: 2})
	}
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		opt  mapping.HBAOptions
	}{
		{"greedy only", mapping.HBAOptions{}},
		{"+backtracking", mapping.HBAOptions{Backtracking: true}},
		{"+exact outputs (paper HBA)", mapping.PaperHBAOptions()},
		{"+density order (extension)", mapping.HBAOptions{Backtracking: true, ExactOutputs: true, DensityOrder: true}},
		{"+scarcity order (extension)", mapping.HBAOptions{Backtracking: true, ExactOutputs: true, ScarcityOrder: true}},
	}
	var rows []AblationRow
	for _, v := range variants {
		opt := v.opt
		summary, err := montecarlo.RunFactory(montecarlo.Options{Samples: samples, Seed: seed},
			func() montecarlo.Trial {
				dm := defect.NewMap(l.Rows, l.Cols)
				p, pErr := mapping.NewProblem(l, dm)
				return func(i int, rng *rand.Rand) montecarlo.Outcome {
					if pErr != nil {
						return montecarlo.Outcome{}
					}
					if genErr := dm.Regenerate(defect.Params{POpen: rate}, rng); genErr != nil {
						return montecarlo.Outcome{}
					}
					start := time.Now()
					res := mapping.HBAWith(p, opt)
					return montecarlo.Outcome{Success: res.Valid, Elapsed: time.Since(start)}
				}
			})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: v.name, Psucc: summary.SuccessRate, Mean: summary.MeanTime})
	}
	return rows, nil
}
