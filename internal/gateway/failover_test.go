package gateway

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
)

// clusterMember is one full xbarserver: an engine with journal + cluster
// election behind a real HTTP listener whose URL is known before the
// engine starts (members name each other by URL in Options).
type clusterMember struct {
	url string
	ln  net.Listener
	eng *engine.Engine
	srv *http.Server
}

func newClusterListener(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, "http://" + ln.Addr().String()
}

func (m *clusterMember) serve() {
	m.srv = &http.Server{Handler: engine.NewHTTPHandler(m.eng)}
	go m.srv.Serve(m.ln)
}

// kill drops the member's listener and connections without touching the
// engine — the fleet-visible signature of a crashed process.
func (m *clusterMember) kill() { m.srv.Close() }

func waitFor(t *testing.T, what string, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func clusterEngineOpts(self string, peers []string, dir string) engine.Options {
	return engine.Options{
		Workers:            2,
		JournalDir:         dir,
		ClusterSelf:        self,
		ClusterPeers:       peers,
		LeaseDuration:      400 * time.Millisecond,
		HeartbeatInterval:  80 * time.Millisecond,
		FollowPollInterval: 20 * time.Millisecond,
	}
}

// TestGatewayLeaderFailover is the PR's end-to-end acceptance check: a
// three-member cluster behind the gateway computes a 64-job batch; the
// leader is killed; a follower promotes itself within the lease window;
// the gateway ejects the dead member and reroutes; and re-submitting the
// same batch — bounded by the retry budget, no hangs — serves every
// acknowledged result bit-identically from the survivors' mirrored
// caches, recomputing nothing.
func TestGatewayLeaderFailover(t *testing.T) {
	lnA, urlA := newClusterListener(t)
	lnB, urlB := newClusterListener(t)
	lnC, urlC := newClusterListener(t)

	a := &clusterMember{url: urlA, ln: lnA}
	a.eng = engine.New(clusterEngineOpts(urlA, []string{urlB, urlC}, t.TempDir()))
	defer a.eng.Close()
	a.serve()
	defer a.srv.Close()

	boot := func(self string, ln net.Listener, peers []string) *clusterMember {
		opts := clusterEngineOpts(self, peers, t.TempDir())
		opts.FollowPeer = urlA
		m := &clusterMember{url: self, ln: ln}
		m.eng = engine.New(opts)
		m.serve()
		return m
	}
	b := boot(urlB, lnB, []string{urlA, urlC})
	defer b.eng.Close()
	defer b.srv.Close()
	c := boot(urlC, lnC, []string{urlA, urlB})
	defer c.eng.Close()
	defer c.srv.Close()

	if st := a.eng.ClusterState(); st.Role != engine.RoleLeader {
		t.Fatalf("A boots as %s, want leader", st.Role)
	}

	g := testGateway(t, []string{urlA, urlB, urlC}, func(o *Options) {
		o.Health = cluster.HealthOptions{Interval: 50 * time.Millisecond, FailThreshold: 2}
		o.RetryBudget = 10 * time.Second
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	jobs := specs(64)
	owners := shardSplit(t, g, jobs)
	ownedBy := func(member string) int {
		n := 0
		for _, o := range owners {
			if o == member {
				n++
			}
		}
		return n
	}

	rec, first := submit(t, g.Handler(), jobs)
	if rec.Code != http.StatusAccepted || len(first.Errors) != 0 {
		t.Fatalf("baseline submit = %d %+v", rec.Code, first.Errors)
	}
	baseline := pollAll(t, gw.URL, first.JobIDs)

	// Every follower mirrors the leader's journal before the kill: its
	// cache must hold its own shard plus the leader's.
	wantB, wantC := ownedBy(urlB)+ownedBy(urlA), ownedBy(urlC)+ownedBy(urlA)
	waitFor(t, "followers to mirror the leader's results", 20*time.Second, func() bool {
		return b.eng.Stats().CacheEntries >= wantB && c.eng.Stats().CacheEntries >= wantC
	})

	a.kill()

	// The fleet elects a survivor within a few lease windows, and the
	// gateway's aggregated cluster view converges on it.
	var newLeader string
	waitFor(t, "a follower to promote itself", 10*time.Second, func() bool {
		resp, err := http.Get(gw.URL + "/v1/cluster/state")
		if err != nil {
			return false
		}
		var st fleetState
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || st.Epoch < 2 || st.Leader == "" || st.Leader == urlA {
			return false
		}
		newLeader = st.Leader
		return true
	})
	if newLeader != urlB && newLeader != urlC {
		t.Fatalf("promoted leader %q is not a surviving member", newLeader)
	}
	// Wait for the health checker to eject the dead member so routing is
	// deterministic (before ejection, requests still succeed via
	// per-request exclusion — just with visible retries).
	waitFor(t, "the gateway to eject the dead member", 5*time.Second, func() bool {
		return !g.health.Healthy(urlA)
	})

	// Re-submit the whole batch through the gateway: the dead member's
	// shard reroutes to survivors, completes within the retry budget, and
	// every acknowledged result comes back bit-identical from a mirrored
	// cache — nothing is lost, nothing recomputed.
	start := time.Now()
	rec, second := submit(t, g.Handler(), jobs)
	if rec.Code != http.StatusAccepted || len(second.Errors) != 0 {
		t.Fatalf("post-failover submit = %d %+v: %s", rec.Code, second.Errors, rec.Body)
	}
	if d := time.Since(start); d > g.opt.RetryBudget {
		t.Fatalf("post-failover submit took %v, beyond the %v retry budget", d, g.opt.RetryBudget)
	}
	results := pollAll(t, gw.URL, second.JobIDs)
	for i, r := range results {
		if r.Err != "" {
			t.Fatalf("post-failover job %d failed: %s", i, r.Err)
		}
		if !r.CacheHit {
			t.Fatalf("post-failover job %d (owner %s) was recomputed, want it served from a mirrored cache", i, owners[i])
		}
		if !samePayload(baseline[i], r) {
			t.Fatalf("post-failover job %d diverged:\n  before %+v\n  after  %+v", i, baseline[i], r)
		}
	}
	tokA := memberToken(urlA)
	for i, id := range second.JobIDs {
		if len(id) >= len(tokA) && id[:len(tokA)] == tokA {
			t.Fatalf("post-failover job %d still placed on the dead member: %s", i, id)
		}
	}
}
