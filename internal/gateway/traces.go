package gateway

import (
	"context"
	"net/http"
	"sync"

	"repro/internal/trace"
)

// serveTrace answers GET /v1/traces/{id} with the stitched cross-process
// timeline: the gateway's own spans (submit root, per-member attempts,
// hedges, retry waits) merged with every member's view of the same trace
// id, fetched in parallel. Members that never saw the trace (404) or are
// unreachable are skipped — a partial timeline beats none — and remote
// spans are stamped with the member's token so the rendering shows where
// each span ran.
func (g *Gateway) serveTrace(w http.ResponseWriter, r *http.Request) {
	tid, err := trace.ParseTraceID(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad trace id: "+err.Error())
		return
	}
	local, ok := g.traces.Get(tid)
	parts := make([]trace.MergePart, len(g.members))
	var wg sync.WaitGroup
	for i, m := range g.members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), g.opt.AttemptTimeout)
			defer cancel()
			var tl trace.Timeline
			if err := g.doJSON(ctx, http.MethodGet, m+"/v1/traces/"+tid.String(), nil, trace.SpanContext{}, &tl); err != nil {
				return // never sampled there, evicted, or member down: skip
			}
			parts[i] = trace.MergePart{Member: g.tokOf[m], Timeline: tl}
		}(i, m)
	}
	wg.Wait()
	remote := parts[:0]
	for _, p := range parts {
		if len(p.Timeline.Spans) > 0 {
			remote = append(remote, p)
		}
	}
	if !ok && len(remote) == 0 {
		httpError(w, http.StatusNotFound, "unknown trace id (evicted, never sampled, or never seen)")
		return
	}
	if !ok {
		// The gateway itself dropped the trace but a member kept it:
		// serve the remote view under the right id.
		local = trace.Timeline{TraceID: tid.String(), Finished: remote[0].Timeline.Finished}
	}
	writeJSON(w, http.StatusOK, trace.Merge(local, remote...))
}
