package gateway

import "repro/internal/trace"

// Span names for the gateway-side submission lifecycle. Minted once at
// init; the xbarvet metrics-contract analyzer enforces that each literal
// is unique module-wide (the engine mints its own, disjoint set).
var (
	// spanGwSubmit is the root of a gateway-submitted trace: one whole
	// POST /v1/jobs, across every retry round and shard.
	spanGwSubmit = trace.MustName("xbar.gateway.submit")
	// spanGwMember covers one primary submission attempt against one
	// member; its span id rides upstream as the traceparent, so the
	// member's admission span parents under it when timelines stitch.
	spanGwMember = trace.MustName("xbar.gateway.member-submit")
	// spanGwHedge covers a hedged (raced) submission attempt.
	spanGwHedge = trace.MustName("xbar.gateway.hedge")
	// spanGwRetry covers one backoff wait between retry rounds.
	spanGwRetry = trace.MustName("xbar.gateway.retry-wait")
)

// Traces returns the gateway's span store. GET /v1/traces serves its kept
// set; GET /v1/traces/{id} stitches member views on top of it.
func (g *Gateway) Traces() *trace.Store { return g.traces }
