package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/engine"
)

// The gateway's SSE endpoint merges the per-member event streams behind a
// composite batch id ("tok~bid.tok~bid"). Each member sub-batch gets one
// upstream subscription; result events are forwarded with the job id
// rewritten to its gateway form and the SSE event id rewritten to a
// composite cursor ("tok~lastid.tok~lastid" — the last member-local event
// id seen per part). A client that reconnects with that cursor as
// Last-Event-ID resumes every part exactly where it left off, preserving
// the members' exactly-once replay through the gateway. Upstream drops
// reconnect transparently (with backoff, resuming from the part's own
// cursor); a part that stays down past the retry budget is reported as an
// "error" event for that shard while the others keep streaming.

// ssePart is one member sub-batch of a composite batch id.
type ssePart struct {
	tok     string
	member  string
	batchID string
}

// parseBatchID splits a composite gateway batch id into its member parts.
func (g *Gateway) parseBatchID(id string) ([]ssePart, error) {
	raw := strings.Split(id, ".")
	out := make([]ssePart, len(raw))
	for i, p := range raw {
		tok, bid, ok := strings.Cut(p, "~")
		member := g.byTok[tok]
		if !ok || bid == "" || member == "" {
			return nil, fmt.Errorf("bad batch id part %q", p)
		}
		out[i] = ssePart{tok: tok, member: member, batchID: bid}
	}
	return out, nil
}

// parseCompositeLastID recovers the per-part cursors from a reconnecting
// client's Last-Event-ID header. Parts are positional — compositeID emits
// them in batch id order, and one member can own several parts (a retry
// round can place a second sub-batch on a member that already has one), so
// tokens alone don't identify a part. A header that doesn't line up with
// the batch id (wrong length or tokens) is ignored: the members replay
// from the start, which is correct just slower.
func parseCompositeLastID(s string, parts []ssePart) []string {
	lasts := make([]string, len(parts))
	if s == "" {
		return lasts
	}
	raw := strings.Split(s, ".")
	if len(raw) != len(parts) {
		return lasts
	}
	for i, p := range raw {
		tok, last, ok := strings.Cut(p, "~")
		if !ok || tok != parts[i].tok {
			return make([]string, len(parts))
		}
		lasts[i] = last
	}
	return lasts
}

// compositeID renders the gateway event id: every part's cursor, in batch
// id order, parts with no event yet as "tok~".
func compositeID(parts []ssePart, lasts []string) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(p.tok)
		b.WriteByte('~')
		b.WriteString(lasts[i])
	}
	return b.String()
}

// subEvent is one upstream event forwarded to the merge loop.
type subEvent struct {
	idx   int
	kind  string // "result" | "done" | "error"
	jobID string // member-local, result events
	data  []byte // rewritten payload, result events
	jobs  int    // done events: results in the sub-batch
	err   error  // error events
}

func (g *Gateway) serveBatchEvents(w http.ResponseWriter, r *http.Request) {
	parts, err := g.parseBatchID(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "unknown batch id (not issued by this gateway's fleet)")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	lasts := parseCompositeLastID(r.Header.Get("Last-Event-ID"), parts)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	events := make(chan subEvent, 16)
	for i, p := range parts {
		go g.streamPart(ctx, i, p, lasts[i], events)
	}

	// All writes happen here, in the handler goroutine: the part streams
	// only parse and forward.
	active, jobs := len(parts), 0
	for active > 0 {
		select {
		case ev := <-events:
			switch ev.kind {
			case "result":
				lasts[ev.idx] = ev.jobID
				if _, werr := fmt.Fprintf(w, "id: %s\nevent: result\ndata: %s\n\n",
					compositeID(parts, lasts), ev.data); werr != nil {
					return // client went away
				}
				fl.Flush()
			case "done":
				jobs += ev.jobs
				active--
			case "error":
				// Partial degradation: this shard's stream is lost, the rest
				// keep going. The client sees which member and why.
				data, _ := json.Marshal(map[string]string{
					"member": parts[ev.idx].tok, "error": ev.err.Error()})
				if _, werr := fmt.Fprintf(w, "event: error\ndata: %s\n\n", data); werr != nil {
					return
				}
				fl.Flush()
				active--
			}
		case <-ctx.Done():
			return
		}
	}
	fmt.Fprintf(w, "event: done\ndata: {\"batch_id\":%q,\"jobs\":%d}\n\n", r.PathValue("id"), jobs)
	fl.Flush()
}

// streamPart subscribes to one member's event stream and forwards it,
// reconnecting (resuming from its own cursor) until the sub-batch is done,
// the client leaves, or the member stays unreachable past the retry
// budget.
func (g *Gateway) streamPart(ctx context.Context, idx int, p ssePart, lastID string, out chan<- subEvent) {
	send := func(ev subEvent) bool {
		select {
		case out <- ev:
			return true
		case <-ctx.Done():
			return false
		}
	}
	attempt := 0
	lastProgress := time.Now()
	for {
		if ctx.Err() != nil {
			return
		}
		streamed, err := g.streamOnce(ctx, idx, p, &lastID, send)
		if streamed {
			attempt = 0
			lastProgress = time.Now()
		}
		if err == nil {
			return // done event delivered (or client gone)
		}
		if se := (*statusError)(nil); asStatusError(err, &se) && se.code >= 400 && se.code < 500 {
			// The member no longer knows the batch (restart cleared its
			// in-memory registry): retrying cannot help.
			send(subEvent{idx: idx, kind: "error", err: err})
			return
		}
		if time.Since(lastProgress) > g.opt.RetryBudget {
			send(subEvent{idx: idx, kind: "error",
				err: fmt.Errorf("member %s unreachable past retry budget: %v", p.member, err)})
			return
		}
		g.met.sseReconnects.Inc()
		select {
		case <-time.After(g.opt.Backoff.Delay(attempt, nil)):
		case <-ctx.Done():
			return
		}
		attempt++
	}
}

// streamOnce runs one upstream subscription: connect (resuming past
// *lastID), parse events, forward results with rewritten ids, advance
// *lastID per event. Returns streamed=true if at least one event arrived,
// and err=nil only on clean termination (done event, or client departure).
func (g *Gateway) streamOnce(ctx context.Context, idx int, p ssePart, lastID *string, send func(subEvent) bool) (streamed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.member+"/v1/batches/"+p.batchID+"/events", nil)
	if err != nil {
		return false, err
	}
	if *lastID != "" {
		req.Header.Set("Last-Event-ID", *lastID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, &statusError{code: resp.StatusCode, msg: "subscribing to member events"}
	}

	var id, event string
	var data []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			done, ok := g.dispatchEvent(idx, p, id, event, data, lastID, send)
			if !ok {
				return streamed, nil // client gone; ctx is cancelled
			}
			if event == "result" || event == "done" {
				streamed = true
			}
			if done {
				return streamed, nil
			}
			id, event, data = "", "", nil
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			if data != nil {
				data = append(data, '\n')
			}
			data = append(data, strings.TrimPrefix(line[len("data:"):], " ")...)
		}
	}
	if serr := sc.Err(); serr != nil {
		return streamed, serr
	}
	return streamed, fmt.Errorf("member %s closed the event stream mid-batch", p.member)
}

// dispatchEvent forwards one parsed upstream event. Returns done=true on
// the member's terminal event, ok=false when the merge loop is gone.
func (g *Gateway) dispatchEvent(idx int, p ssePart, id, event string, data []byte, lastID *string, send func(subEvent) bool) (done, ok bool) {
	switch event {
	case "result":
		// Rewrite the member-local job id to its gateway form in both the
		// payload and the (composite) event id.
		var res engine.JobResult
		if err := json.Unmarshal(data, &res); err != nil {
			slog.Warn("gateway forwarding undecodable result event verbatim",
				"component", "gateway", "member", p.member, "err", err)
		} else {
			res.ID = p.tok + "." + res.ID
			if enc, err := json.Marshal(res); err == nil {
				data = enc
			}
		}
		if !send(subEvent{idx: idx, kind: "result", jobID: id, data: data}) {
			return false, false
		}
		*lastID = id
		return false, true
	case "done":
		var d struct {
			Jobs int `json:"jobs"`
		}
		if err := json.Unmarshal(data, &d); err != nil {
			slog.Warn("gateway received undecodable done event",
				"component", "gateway", "member", p.member, "err", err)
		}
		return true, send(subEvent{idx: idx, kind: "done", jobs: d.Jobs})
	default:
		return false, true // comments, keep-alives, unknown event types
	}
}
