// Package gateway implements xbargateway: a stateless HTTP front for a
// fleet of xbarserver members. It consistent-hashes the canonical
// spec-hash space across the members (cache locality: identical jobs land
// on the same member no matter which client sent them), proxies the batch
// API through bounded retries with exponential backoff and hedging,
// actively health-checks the fleet, and degrades gracefully — a shard with
// no healthy member costs 503 + Retry-After for that shard's jobs, not the
// whole batch.
//
// The gateway keeps no per-job state: all routing information is encoded
// in the identifiers it hands out. A gateway job id is "tok.jobid" (tok
// names the member that owns the job), a batch id is "tok~bid.tok~bid"
// (one part per member sub-batch), and an SSE cursor is "tok~last.tok~last"
// — so any gateway replica (or a restarted one) can resume any request.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/trace"
)

// Defaults for Options zero values.
const (
	DefaultAttemptTimeout = 5 * time.Second
	DefaultRetryBudget    = 20 * time.Second
	DefaultHedgeDelay     = 400 * time.Millisecond
)

// retryAfterSeconds is the Retry-After hint on 503s: roughly one health
// probe round, after which an ejected member may be back.
const retryAfterSeconds = 1

// Options configures a Gateway.
type Options struct {
	// Members are the fleet's base URLs. Required, at least one.
	Members []string
	// VirtualNodes per member on the hash ring; zero means
	// cluster.DefaultVirtualNodes.
	VirtualNodes int
	// AttemptTimeout bounds one proxied attempt; zero means
	// DefaultAttemptTimeout.
	AttemptTimeout time.Duration
	// RetryBudget bounds one client request across all retries and
	// backoffs: when it runs out the client gets the last error rather
	// than a hang. Zero means DefaultRetryBudget.
	RetryBudget time.Duration
	// HedgeDelay is how long the gateway waits on a submission attempt
	// before racing a hedge against the next ring member (first answer
	// wins; the spec-hash idempotency on the members makes the duplicate
	// harmless). Zero means DefaultHedgeDelay; negative disables hedging.
	HedgeDelay time.Duration
	// Backoff paces retries; the zero value means cluster.DefaultBackoff.
	Backoff cluster.Backoff
	// Health tunes the member health checker. Health.Path defaults to
	// /readyz: a draining member fails readiness and leaves the ring
	// before its listener closes.
	Health cluster.HealthOptions
	// TraceSampleRate is the fraction of unremarkable submissions whose
	// trace is kept (errored, slow-tail, and explicitly sampled traces
	// are always kept). Zero means the trace package default; negative
	// disables rate-based keeps.
	TraceSampleRate float64
}

// Gateway is the stateless cluster front. Create with New, serve
// Handler(), Close when done.
type Gateway struct {
	opt     Options
	members []string          // sorted
	byTok   map[string]string // member token -> URL
	tokOf   map[string]string // URL -> token
	ring    *cluster.Ring
	health  *cluster.HealthChecker
	client  *http.Client
	met     *gatewayMetrics
	traces  *trace.Store
}

// New builds a gateway over opt.Members and starts its health checker.
func New(opt Options) (*Gateway, error) {
	if len(opt.Members) == 0 {
		return nil, fmt.Errorf("gateway: no members configured")
	}
	if opt.AttemptTimeout <= 0 {
		opt.AttemptTimeout = DefaultAttemptTimeout
	}
	if opt.RetryBudget <= 0 {
		opt.RetryBudget = DefaultRetryBudget
	}
	if opt.HedgeDelay == 0 {
		opt.HedgeDelay = DefaultHedgeDelay
	}
	g := &Gateway{
		opt:     opt,
		members: append([]string(nil), opt.Members...),
		byTok:   make(map[string]string, len(opt.Members)),
		tokOf:   make(map[string]string, len(opt.Members)),
		ring:    cluster.NewRing(opt.Members, opt.VirtualNodes),
		client:  &http.Client{}, // per-request contexts carry the timeouts
		met:     newGatewayMetrics(),
		traces:  trace.NewStore(trace.Options{SampleRate: opt.TraceSampleRate}),
	}
	sort.Strings(g.members)
	for _, m := range g.members {
		tok := memberToken(m)
		if prev, dup := g.byTok[tok]; dup {
			return nil, fmt.Errorf("gateway: member token collision: %s and %s both hash to %s", prev, m, tok)
		}
		g.byTok[tok] = m
		g.tokOf[m] = tok
	}
	health := opt.Health
	health.OnChange = func(member string, healthy bool) {
		to := "ejected"
		if healthy {
			to = "admitted"
		}
		slog.Info("gateway member health transition",
			"component", "gateway", "member", member, "to", to)
		g.met.transitions.With(to).Inc()
	}
	g.health = cluster.NewHealthChecker(g.members, health)
	g.met.registerGauges(g)
	g.health.Start()
	return g, nil
}

// Close stops the health checker.
func (g *Gateway) Close() { g.health.Stop() }

// memberToken is the stable short name a member URL gets inside gateway
// identifiers: 8 hex chars of fnv32a. Tokens must not contain '.' or '~'
// (the identifier separators) — hex can't.
func memberToken(url string) string {
	h := fnv.New32a()
	h.Write([]byte(url))
	return fmt.Sprintf("%08x", h.Sum32())
}

// prefsFor returns the member preference order for one job spec.
func (g *Gateway) prefsFor(spec engine.JobSpec) []string {
	return g.ring.Prefs([]byte(spec.CanonicalHash()))
}

// Handler returns the gateway's HTTP API — the same surface a single
// xbarserver exposes (submit, job status, batch SSE), plus the fleet
// aggregates.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			sw := &statusWriter{ResponseWriter: w}
			h(sw, r)
			g.met.observeHTTP(route, sw.status(), time.Since(start))
		})
	}
	handle("POST /v1/jobs", "/v1/jobs", g.serveSubmit)
	handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", g.serveJob)
	handle("GET /v1/batches/{id}/events", "/v1/batches/{id}/events", g.serveBatchEvents)
	handle("GET /v1/cluster/state", "/v1/cluster/state", g.serveClusterState)
	handle("GET /v1/traces/{id}", "/v1/traces/{id}", g.serveTrace)
	handle("GET /v1/traces", "/v1/traces", g.traces.ServeList)
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handle("GET /readyz", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		// The gateway is ready while it can route to anyone.
		if g.health.HealthyCount() == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status": "unready", "error": "no healthy members"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", g.met.reg.Handler())
	return mux
}

// SubmitResponse is the gateway's POST /v1/jobs payload: the fleet-wide
// batch id and per-job gateway ids, in submission order. Jobs whose shard
// had no healthy member (or exhausted the retry budget) have an empty id
// and an entry in Errors — the partial-batch degradation: accepted work is
// accepted even when part of the ring is dark.
type SubmitResponse struct {
	BatchID string        `json:"batch_id"`
	JobIDs  []string      `json:"job_ids"`
	TraceID string        `json:"trace_id,omitempty"`
	Errors  []SubmitError `json:"errors,omitempty"`
}

// SubmitError reports one group of jobs the gateway could not place.
type SubmitError struct {
	// Jobs are the submission indices that failed.
	Jobs []int `json:"jobs"`
	// Error says why (no healthy member, retry budget exhausted, ...).
	Error string `json:"error"`
}

// shardAck records one successfully placed sub-batch.
type shardAck struct {
	member  string
	batchID string   // member-local
	jobIDs  []string // member-local, parallel to the group's indices
}

func (g *Gateway) serveSubmit(w http.ResponseWriter, r *http.Request) {
	// Every submission gets a trace: the whole request is the root span,
	// each member attempt a child whose span id rides upstream as the
	// traceparent (so member-local timelines stitch under it), and the
	// store's sampling policy decides post-hoc what to keep.
	start := time.Now()
	caller := trace.FromRequestHeader(r.Header.Get(trace.Header))
	sc := caller.Child()
	if !caller.Valid() {
		sc = trace.SpanContext{Trace: trace.NewTraceID(), Span: trace.NewSpanID()}
	}
	finishTrace := func(errStr, detail string, failed bool) {
		end := time.Now()
		g.traces.Record(&trace.Span{
			Trace: sc.Trace, ID: sc.Span, Parent: caller.Span, Name: spanGwSubmit,
			Start: start.UnixNano(), End: end.UnixNano(), Err: errStr, Detail: detail,
		})
		g.traces.FinishTrace(sc, start, end, failed)
	}
	var req engine.SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&req); err != nil {
		finishTrace("bad request body", "", true)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Jobs) == 0 {
		finishTrace("empty batch", "", true)
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Jobs) > engine.MaxBatchJobs {
		finishTrace("batch exceeds job limit", "", true)
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d jobs exceeds limit %d", len(req.Jobs), engine.MaxBatchJobs))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.opt.RetryBudget)
	defer cancel()

	jobIDs := make([]string, len(req.Jobs))
	var batchParts []string
	var errsByMsg = map[string][]int{}
	// Jobs still unplaced, by submission index. Each round groups them by
	// their best healthy member not yet excluded this request, submits the
	// groups in parallel, and excludes members that failed — so the next
	// round re-shards the survivors onto each job's next preference
	// (deterministic failover down the ring).
	remaining := make([]int, len(req.Jobs))
	for i := range remaining {
		remaining[i] = i
	}
	excluded := map[string]bool{}
	for attempt := 0; len(remaining) > 0; attempt++ {
		if attempt > 0 {
			d := g.opt.Backoff.Delay(attempt-1, nil)
			g.met.retries.Add(int64(len(remaining)))
			waitStart := time.Now()
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
			g.traces.Record(&trace.Span{
				Trace: sc.Trace, ID: trace.NewSpanID(), Parent: sc.Span, Name: spanGwRetry,
				Start: waitStart.UnixNano(), End: time.Now().UnixNano(),
				Detail: fmt.Sprintf("round %d, %d jobs left", attempt, len(remaining)),
			})
		}
		if ctx.Err() != nil {
			for _, idx := range remaining {
				errsByMsg["retry budget exhausted"] = append(errsByMsg["retry budget exhausted"], idx)
			}
			break
		}
		groups := map[string][]int{}
		var unroutable []int
		for _, idx := range remaining {
			target := ""
			for _, m := range g.prefsFor(req.Jobs[idx]) {
				if !excluded[m] && g.health.Healthy(m) {
					target = m
					break
				}
			}
			if target == "" {
				unroutable = append(unroutable, idx)
				continue
			}
			groups[target] = append(groups[target], idx)
		}
		if len(groups) == 0 {
			g.met.unrouted.Add(int64(len(unroutable)))
			for _, idx := range unroutable {
				errsByMsg["no healthy member for shard"] = append(errsByMsg["no healthy member for shard"], idx)
			}
			break
		}
		type outcome struct {
			member string
			ack    *shardAck
			err    error
			jobs   []int
		}
		results := make([]outcome, 0, len(groups))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for member, idxs := range groups {
			wg.Add(1)
			go func(member string, idxs []int) {
				defer wg.Done()
				specs := make([]engine.JobSpec, len(idxs))
				for i, idx := range idxs {
					specs[i] = req.Jobs[idx]
				}
				ack, err := g.submitShard(ctx, sc, member, idxs, specs)
				mu.Lock()
				results = append(results, outcome{member: member, ack: ack, err: err, jobs: idxs})
				mu.Unlock()
			}(member, idxs)
		}
		wg.Wait()
		next := unroutable[:0:0]
		next = append(next, unroutable...)
		for _, o := range results {
			if o.err != nil {
				slog.Warn("gateway shard submit failed; excluding member this request",
					"component", "gateway", "member", o.member, "jobs", len(o.jobs),
					"trace_id", sc.Trace.String(), "err", o.err)
				excluded[o.member] = true
				next = append(next, o.jobs...)
				continue
			}
			tok := g.tokOf[o.ack.member]
			batchParts = append(batchParts, tok+"~"+o.ack.batchID)
			for i, idx := range o.jobs {
				jobIDs[idx] = tok + "." + o.ack.jobIDs[i]
			}
		}
		sort.Ints(next)
		remaining = next
		if len(unroutable) > 0 && attempt > 0 {
			// Second time around with nowhere to go: stop retrying them.
			g.met.unrouted.Add(int64(len(unroutable)))
			kept := remaining[:0]
			for _, idx := range remaining {
				routed := false
				for _, m := range g.prefsFor(req.Jobs[idx]) {
					if !excluded[m] && g.health.Healthy(m) {
						routed = true
						break
					}
				}
				if routed {
					kept = append(kept, idx)
				} else {
					errsByMsg["no healthy member for shard"] = append(errsByMsg["no healthy member for shard"], idx)
				}
			}
			remaining = kept
		}
	}

	resp := SubmitResponse{JobIDs: jobIDs, TraceID: sc.Trace.String()}
	for msg, idxs := range errsByMsg {
		sort.Ints(idxs)
		resp.Errors = append(resp.Errors, SubmitError{Jobs: idxs, Error: msg})
	}
	sort.Slice(resp.Errors, func(i, j int) bool { return resp.Errors[i].Jobs[0] < resp.Errors[j].Jobs[0] })
	if len(batchParts) == 0 {
		// Nothing was placed: total degradation, tell the client when to
		// come back rather than hanging or half-answering.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		msg := "no healthy members"
		if len(resp.Errors) > 0 {
			msg = resp.Errors[0].Error
		}
		finishTrace(msg, "", true)
		httpError(w, http.StatusServiceUnavailable, msg)
		return
	}
	sort.Strings(batchParts)
	resp.BatchID = strings.Join(batchParts, ".")
	finishTrace("", resp.BatchID, len(resp.Errors) > 0)
	writeJSON(w, http.StatusAccepted, resp)
}

// submitShard posts one member's sub-batch, hedging against the next ring
// member when the primary is slow: both requests race, the first
// acknowledgement wins, and the canonical spec-hash identity on the
// members makes the losing duplicate converge to the same cached results.
func (g *Gateway) submitShard(ctx context.Context, sc trace.SpanContext, member string, idxs []int, specs []engine.JobSpec) (*shardAck, error) {
	body, err := json.Marshal(engine.SubmitRequest{Jobs: specs})
	if err != nil {
		return nil, err
	}
	type res struct {
		ack *shardAck
		err error
	}
	// Each attempt is its own span, and its span id is exactly what rides
	// upstream in the traceparent header — the member's admission span
	// reports that id as its parent, so when the gateway later stitches
	// the member's timeline in, the remote spans hang off this attempt.
	attempt := func(ctx context.Context, member string, name trace.Name) (*shardAck, error) {
		actx, cancel := context.WithTimeout(ctx, g.opt.AttemptTimeout)
		defer cancel()
		attemptSC := sc.Child()
		attemptStart := time.Now()
		var sub engine.SubmitResponse
		err := g.doJSON(actx, http.MethodPost, member+"/v1/jobs", body, attemptSC, &sub)
		if err == nil && len(sub.JobIDs) != len(specs) {
			err = fmt.Errorf("member %s acked %d jobs, want %d", member, len(sub.JobIDs), len(specs))
		}
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		g.traces.Record(&trace.Span{
			Trace: sc.Trace, ID: attemptSC.Span, Parent: sc.Span, Name: name,
			Start: attemptStart.UnixNano(), End: time.Now().UnixNano(),
			Member: g.tokOf[member], Err: errStr, Detail: member,
		})
		if err != nil {
			return nil, err
		}
		return &shardAck{member: member, batchID: sub.BatchID, jobIDs: sub.JobIDs}, nil
	}
	hedge := ""
	if g.opt.HedgeDelay > 0 {
		// The hedge target is the next healthy preference of the group's
		// first job that isn't the primary.
		for _, m := range g.prefsFor(specs[0]) {
			if m != member && g.health.Healthy(m) {
				hedge = m
				break
			}
		}
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan res, 2)
	go func() {
		ack, err := attempt(cctx, member, spanGwMember)
		ch <- res{ack, err}
	}()
	launched := 1
	var timer <-chan time.Time
	if hedge != "" {
		t := time.NewTimer(g.opt.HedgeDelay)
		defer t.Stop()
		timer = t.C
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.ack, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			launched--
			if launched == 0 {
				return nil, firstErr
			}
		case <-timer:
			timer = nil
			g.met.hedges.Inc()
			launched++
			go func() {
				ack, err := attempt(cctx, hedge, spanGwHedge)
				ch <- res{ack, err}
			}()
		case <-cctx.Done():
			return nil, cctx.Err()
		}
	}
}

func (g *Gateway) serveJob(w http.ResponseWriter, r *http.Request) {
	tok, memberID, ok := strings.Cut(r.PathValue("id"), ".")
	member := g.byTok[tok]
	if !ok || member == "" {
		httpError(w, http.StatusNotFound, "unknown job id (not issued by this gateway's fleet)")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.opt.RetryBudget)
	defer cancel()
	var st engine.JobStatus
	err := g.withRetry(ctx, func(actx context.Context) error {
		return g.doJSON(actx, http.MethodGet, member+"/v1/jobs/"+memberID, nil, trace.SpanContext{}, &st)
	})
	if err != nil {
		if se := (*statusError)(nil); asStatusError(err, &se) && se.code == http.StatusNotFound {
			httpError(w, http.StatusNotFound, "unknown job id")
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("member %s unavailable: %v", member, err))
		return
	}
	// Job ids in the payload are member-local; hand back gateway ids.
	st.ID = tok + "." + st.ID
	if st.Result != nil {
		st.Result.ID = tok + "." + st.Result.ID
	}
	writeJSON(w, http.StatusOK, st)
}

// memberClusterState is one member's row in the gateway's fleet summary.
type memberClusterState struct {
	Member  string               `json:"member"`
	Healthy bool                 `json:"healthy"`
	State   *engine.ClusterState `json:"state,omitempty"`
	Error   string               `json:"error,omitempty"`
}

// fleetState is the gateway's GET /v1/cluster/state payload: every
// member's own view plus the gateway's conclusion about who leads (the
// highest-epoch leader claim wins — exactly the fencing order members
// use, so the gateway and the fleet converge on the same answer).
type fleetState struct {
	Leader  string               `json:"leader,omitempty"`
	Epoch   uint64               `json:"epoch,omitempty"`
	Healthy int                  `json:"healthy"`
	Members []memberClusterState `json:"members"`
}

func (g *Gateway) serveClusterState(w http.ResponseWriter, r *http.Request) {
	out := fleetState{Members: make([]memberClusterState, len(g.members))}
	var wg sync.WaitGroup
	for i, m := range g.members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			row := memberClusterState{Member: m, Healthy: g.health.Healthy(m)}
			ctx, cancel := context.WithTimeout(r.Context(), g.opt.AttemptTimeout)
			defer cancel()
			var st engine.ClusterState
			if err := g.doJSON(ctx, http.MethodGet, m+"/v1/cluster/state", nil, trace.SpanContext{}, &st); err != nil {
				row.Error = err.Error()
			} else {
				row.State = &st
			}
			out.Members[i] = row
		}(i, m)
	}
	wg.Wait()
	for _, row := range out.Members {
		if row.Healthy {
			out.Healthy++
		}
		st := row.State
		if st == nil || st.Role != engine.RoleLeader {
			continue
		}
		if st.Epoch > out.Epoch || (st.Epoch == out.Epoch && st.Self > out.Leader) {
			out.Leader, out.Epoch = st.Self, st.Epoch
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// withRetry runs fn under the gateway's backoff policy until it succeeds,
// the context (the retry budget) expires, or a terminal client error (4xx)
// comes back.
func (g *Gateway) withRetry(ctx context.Context, fn func(context.Context) error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			g.met.retries.Inc()
			select {
			case <-time.After(g.opt.Backoff.Delay(attempt-1, nil)):
			case <-ctx.Done():
				return lastErr
			}
		}
		actx, cancel := context.WithTimeout(ctx, g.opt.AttemptTimeout)
		err := fn(actx)
		cancel()
		if err == nil {
			return nil
		}
		if se := (*statusError)(nil); asStatusError(err, &se) && se.code >= 400 && se.code < 500 {
			return err // the member understood and said no; retrying won't change its mind
		}
		lastErr = err
		if ctx.Err() != nil {
			return lastErr
		}
	}
}

// statusError is a non-2xx member response.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.code, e.msg) }

func asStatusError(err error, out **statusError) bool {
	se, ok := err.(*statusError)
	if ok {
		*out = se
	}
	return ok
}

// doJSON performs one JSON request against a member. A valid sc is
// propagated upstream as the traceparent header so the member's spans join
// the gateway's trace; the zero SpanContext sends nothing.
func (g *Gateway) doJSON(ctx context.Context, method, url string, body []byte, sc trace.SpanContext, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if sc.Valid() {
		req.Header.Set(trace.Header, sc.Traceparent())
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &statusError{code: resp.StatusCode, msg: strings.TrimSpace(string(msg))}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// statusWriter mirrors the engine's HTTP instrumentation wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Warn("gateway response write failed", "component", "gateway", "code", code, "err", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
