package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/trace"
)

// submitTraced is submit with a caller traceparent riding the request.
func submitTraced(t *testing.T, h http.Handler, jobs []engine.JobSpec, traceparent string) (*httptest.ResponseRecorder, SubmitResponse) {
	t.Helper()
	body, _ := json.Marshal(engine.SubmitRequest{Jobs: jobs})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	req.Header.Set(trace.Header, traceparent)
	h.ServeHTTP(rec, req)
	var resp SubmitResponse
	if rec.Code == http.StatusAccepted {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad submit response: %v", err)
		}
	}
	return rec, resp
}

// fetchTimeline GETs one stitched timeline through the gateway handler.
func fetchTimeline(t *testing.T, h http.Handler, id string) (int, trace.Timeline) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces/"+id, nil))
	var tl trace.Timeline
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
			t.Fatalf("bad timeline payload: %v", err)
		}
	}
	return rec.Code, tl
}

// TestTraceStitchAcrossFleet submits a sharded batch through the gateway
// with a sampled traceparent and asserts GET /v1/traces/{id} returns ONE
// timeline spanning both processes: the gateway's root and per-member
// attempt spans, with each member's admission/batch/exec/publish spans
// stitched in under the attempt that carried them, stamped with the
// member's token.
func TestTraceStitchAcrossFleet(t *testing.T) {
	urlA, _ := realMember(t)
	urlB, _ := realMember(t)
	g := testGateway(t, []string{urlA, urlB}, nil)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	jobs := specs(16)
	shardSplit(t, g, jobs)

	const (
		traceID    = "aaaabbbbccccddddaaaabbbbccccdddd"
		callerSpan = "1111222233334444"
	)
	rec, resp := submitTraced(t, g.Handler(), jobs, "00-"+traceID+"-"+callerSpan+"-01")
	if rec.Code != http.StatusAccepted || len(resp.Errors) != 0 {
		t.Fatalf("submit = %d %+v", rec.Code, resp.Errors)
	}
	if resp.TraceID != traceID {
		t.Fatalf("submit trace_id = %q, want %q", resp.TraceID, traceID)
	}
	parts := len(strings.Split(resp.BatchID, "."))
	pollAll(t, gw.URL, resp.JobIDs)

	// The members finish their traces asynchronously after the batches
	// drain; poll the stitched view until every job's publish span arrived.
	var tl trace.Timeline
	count := func(name string) int {
		n := 0
		for _, sp := range tl.Spans {
			if sp.Name == name {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, got := fetchTimeline(t, g.Handler(), traceID)
		if code == http.StatusOK {
			tl = got
			if count("xbar.engine.publish") == len(jobs) && count("xbar.http.admit") == parts {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("stitched timeline incomplete: code=%d publish=%d/%d admit=%d/%d",
				code, count("xbar.engine.publish"), len(jobs), count("xbar.http.admit"), parts)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if tl.TraceID != traceID || tl.Error {
		t.Fatalf("timeline = trace_id=%q error=%v", tl.TraceID, tl.Error)
	}
	byID := make(map[string]trace.SpanOut, len(tl.Spans))
	for _, sp := range tl.Spans {
		byID[sp.SpanID] = sp
	}
	if n := count("xbar.gateway.submit"); n != 1 {
		t.Fatalf("gateway submit spans = %d, want 1", n)
	}
	var root trace.SpanOut
	attemptIDs := map[string]bool{}
	for _, sp := range tl.Spans {
		switch sp.Name {
		case "xbar.gateway.submit":
			root = sp
		case "xbar.gateway.member-submit", "xbar.gateway.hedge":
			attemptIDs[sp.SpanID] = true
		}
	}
	if root.ParentID != callerSpan {
		t.Fatalf("root parent = %q, want the caller span %q", root.ParentID, callerSpan)
	}
	if len(attemptIDs) < parts {
		t.Fatalf("attempt spans = %d, want >= %d (one per placed sub-batch)", len(attemptIDs), parts)
	}
	// Cross-process seam: every admission span parents under a gateway
	// attempt span, and every remote span carries its member's token.
	toks := map[string]bool{}
	for _, sp := range tl.Spans {
		if sp.Name == "xbar.http.admit" {
			if !attemptIDs[sp.ParentID] {
				t.Fatalf("admission span %s parent %q is not a gateway attempt span", sp.SpanID, sp.ParentID)
			}
			if sp.Member == "" {
				t.Fatalf("admission span %s has no member stamp", sp.SpanID)
			}
			toks[sp.Member] = true
		}
		if strings.HasPrefix(sp.Name, "xbar.engine.") || sp.Name == "xbar.journal.commit" {
			if sp.Member == "" {
				t.Fatalf("remote span %s (%s) has no member stamp", sp.Name, sp.SpanID)
			}
		}
	}
	if len(toks) < 2 {
		t.Fatalf("admission spans from %d members, want both shards represented", len(toks))
	}
	if count("xbar.engine.exec.map-hba") == 0 {
		t.Fatal("no execution spans stitched in")
	}
}

// TestTraceRecordsRetries: with one member hard-failing, the kept timeline
// shows the failed attempt (errored member-submit span) and the backoff
// (retry-wait span) that preceded the successful re-route.
func TestTraceRecordsRetries(t *testing.T) {
	good, bad := newFakeMember(t), newFakeMember(t)
	bad.failLeft.Store(1 << 30)
	g := testGateway(t, []string{good.url, bad.url}, nil)
	jobs := specs(64)
	shardSplit(t, g, jobs)

	const traceID = "bbbbccccddddeeeebbbbccccddddeeee"
	rec, resp := submitTraced(t, g.Handler(), jobs, "00-"+traceID+"-aaaa111122223333-01")
	if rec.Code != http.StatusAccepted || len(resp.Errors) != 0 {
		t.Fatalf("submit = %d %+v", rec.Code, resp.Errors)
	}
	code, tl := fetchTimeline(t, g.Handler(), traceID)
	if code != http.StatusOK {
		t.Fatalf("timeline fetch = %d", code)
	}
	var failedAttempts, retryWaits int
	for _, sp := range tl.Spans {
		if sp.Name == "xbar.gateway.member-submit" && sp.Err != "" {
			if sp.Member != memberToken(bad.url) {
				t.Fatalf("failed attempt stamped %q, want the bad member %q", sp.Member, memberToken(bad.url))
			}
			failedAttempts++
		}
		if sp.Name == "xbar.gateway.retry-wait" {
			retryWaits++
		}
	}
	if failedAttempts == 0 {
		t.Fatal("no errored member-submit span for the failing member")
	}
	if retryWaits == 0 {
		t.Fatal("no retry-wait span despite a re-route")
	}
}

// TestTraceRecordsHedge: a stalled primary loses the race and the timeline
// says so — a hedge span against the fast member, clean, wins the shard.
func TestTraceRecordsHedge(t *testing.T) {
	slow, fast := newFakeMember(t), newFakeMember(t)
	slow.sleep = 2 * time.Second
	g := testGateway(t, []string{slow.url, fast.url}, func(o *Options) {
		o.HedgeDelay = 30 * time.Millisecond
		o.AttemptTimeout = 5 * time.Second
	})
	var job engine.JobSpec
	found := false
	for seed := int64(0); seed < 4096 && !found; seed++ {
		job = hbaSpec(seed)
		found = g.ring.Owner([]byte(job.CanonicalHash())) == slow.url
	}
	if !found {
		t.Fatal("test precondition: no spec owned by the slow member")
	}

	const traceID = "ccccddddeeeeffffccccddddeeeeffff"
	rec, resp := submitTraced(t, g.Handler(), []engine.JobSpec{job}, "00-"+traceID+"-bbbb444455556666-01")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("hedged submit = %d: %s", rec.Code, rec.Body)
	}
	if want := memberToken(fast.url) + "."; !strings.HasPrefix(resp.JobIDs[0], want) {
		t.Fatalf("hedged job placed as %q, want on the fast member %q", resp.JobIDs[0], want)
	}
	code, tl := fetchTimeline(t, g.Handler(), traceID)
	if code != http.StatusOK {
		t.Fatalf("timeline fetch = %d", code)
	}
	hedges := 0
	for _, sp := range tl.Spans {
		if sp.Name != "xbar.gateway.hedge" {
			continue
		}
		hedges++
		if sp.Err != "" {
			t.Fatalf("winning hedge span carries error %q", sp.Err)
		}
		if sp.Member != memberToken(fast.url) {
			t.Fatalf("hedge span stamped %q, want the fast member %q", sp.Member, memberToken(fast.url))
		}
	}
	if hedges != 1 {
		t.Fatalf("hedge spans = %d, want exactly 1", hedges)
	}
}
