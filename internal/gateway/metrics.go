package gateway

import (
	"strconv"
	"time"

	"repro/internal/metrics"
)

// gatewayMetrics is the gateway's own registry: a gateway process fronts
// many members, so its numbers (retries, hedges, ejections, routing
// failures) are fleet-level signals distinct from any one member's.
type gatewayMetrics struct {
	reg *metrics.Registry

	requests      *metrics.CounterVec   // route, code
	latency       *metrics.HistogramVec // route
	retries       *metrics.Counter
	hedges        *metrics.Counter
	unrouted      *metrics.Counter
	transitions   *metrics.CounterVec // to = admitted | ejected
	sseReconnects *metrics.Counter
}

func newGatewayMetrics() *gatewayMetrics {
	reg := metrics.NewRegistry()
	return &gatewayMetrics{
		reg: reg,
		requests: reg.NewCounterVec("xbar_gateway_requests_total",
			"Gateway HTTP requests by route and status code.", "route", "code"),
		latency: reg.NewHistogramVec("xbar_gateway_request_seconds",
			"Gateway HTTP request latency by route.", nil, "route"),
		retries: reg.NewCounter("xbar_gateway_retries_total",
			"Proxied attempts retried after a member failure or timeout."),
		hedges: reg.NewCounter("xbar_gateway_hedges_total",
			"Hedged submissions raced against a slow primary member."),
		unrouted: reg.NewCounter("xbar_gateway_unrouted_total",
			"Jobs refused because their shard had no healthy member."),
		transitions: reg.NewCounterVec("xbar_gateway_member_transitions_total",
			"Health-checker ring changes (to = admitted | ejected).", "to"),
		sseReconnects: reg.NewCounter("xbar_gateway_sse_reconnects_total",
			"Upstream SSE connections re-established after a member drop."),
	}
}

// registerGauges wires the pull-style gauges that read gateway state at
// scrape time; split from construction because they capture the Gateway.
func (m *gatewayMetrics) registerGauges(g *Gateway) {
	m.reg.NewGaugeFunc("xbar_gateway_ring_members",
		"Members configured on the consistent-hash ring.",
		func() float64 { return float64(len(g.members)) })
	m.reg.NewGaugeFunc("xbar_gateway_healthy_members",
		"Members currently passing health checks.",
		func() float64 { return float64(g.health.HealthyCount()) })
}

func (m *gatewayMetrics) observeHTTP(route string, code int, d time.Duration) {
	m.requests.With(route, strconv.Itoa(code)).Inc()
	m.latency.With(route).Observe(d.Seconds())
}
