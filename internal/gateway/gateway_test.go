package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
)

var fig8Rows = []string{"11- 10", "-01 10", "0-0 01", "-11 01"}

// hbaSpec builds a cheap, deterministic mapping job whose identity varies
// with seed (distinct seeds hash to distinct shards).
func hbaSpec(seed int64) engine.JobSpec {
	return engine.JobSpec{
		Kind: engine.MapHBA, Inputs: 3, Outputs: 2, Rows: fig8Rows,
		OpenRate: 0.10, SpareRows: 2, Seed: seed,
	}
}

func specs(n int) []engine.JobSpec {
	out := make([]engine.JobSpec, n)
	for i := range out {
		out[i] = hbaSpec(int64(1000 + i))
	}
	return out
}

// realMember runs a full engine behind a real HTTP server.
func realMember(t *testing.T) (string, *engine.Engine) {
	t.Helper()
	e := engine.New(engine.Options{Workers: 2})
	srv := httptest.NewServer(engine.NewHTTPHandler(e))
	t.Cleanup(func() { srv.Close(); e.Close() })
	return srv.URL, e
}

// fakeMember is a scriptable member: submits fail while failLeft > 0 (or
// stall for sleep, or beyond okCap successes), then succeed with
// engine-shaped acks.
type fakeMember struct {
	url      string
	failLeft atomic.Int32
	okCap    atomic.Int32 // >0: hard-fail every submit after this many successes
	sleep    time.Duration
	submits  atomic.Int32
	oks      atomic.Int32
}

func newFakeMember(t *testing.T) *fakeMember {
	t.Helper()
	f := &fakeMember{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.submits.Add(1)
		if f.sleep > 0 {
			select {
			case <-time.After(f.sleep):
			case <-r.Context().Done():
				return
			}
		}
		if f.failLeft.Load() > 0 {
			f.failLeft.Add(-1)
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		if cap := f.okCap.Load(); cap > 0 && f.oks.Load() >= cap {
			http.Error(w, "injected failure (success budget spent)", http.StatusInternalServerError)
			return
		}
		f.oks.Add(1)
		var req engine.SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ids := make([]string, len(req.Jobs))
		for i := range ids {
			ids[i] = fmt.Sprintf("j%08d", i+1)
		}
		json.NewEncoder(w).Encode(engine.SubmitResponse{BatchID: "b00000001", JobIDs: ids})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	f.url = srv.URL
	return f
}

// testGateway builds a gateway with fast retry/backoff settings.
func testGateway(t *testing.T, members []string, tweak func(*Options)) *Gateway {
	t.Helper()
	opt := Options{
		Members:        members,
		AttemptTimeout: 2 * time.Second,
		RetryBudget:    5 * time.Second,
		HedgeDelay:     -1, // off unless a test opts in
		Backoff:        cluster.Backoff{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond, Jitter: -1},
	}
	if tweak != nil {
		tweak(&opt)
	}
	g, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func submit(t *testing.T, h http.Handler, jobs []engine.JobSpec) (*httptest.ResponseRecorder, SubmitResponse) {
	t.Helper()
	body, _ := json.Marshal(engine.SubmitRequest{Jobs: jobs})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	h.ServeHTTP(rec, req)
	var resp SubmitResponse
	if rec.Code == http.StatusAccepted {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad submit response: %v", err)
		}
	}
	return rec, resp
}

// shardSplit asserts the spec set lands on more than one member and
// returns the owner of each spec.
func shardSplit(t *testing.T, g *Gateway, jobs []engine.JobSpec) []string {
	t.Helper()
	owners := make([]string, len(jobs))
	seen := map[string]bool{}
	for i, s := range jobs {
		owners[i] = g.ring.Owner([]byte(s.CanonicalHash()))
		seen[owners[i]] = true
	}
	if len(seen) < 2 {
		t.Fatalf("test precondition: all %d specs hash to one member", len(jobs))
	}
	return owners
}

// TestSubmitRetriesAroundFailingMember: one member rejects every submit;
// its shard's jobs must re-route to the healthy member after bounded
// retries, with no job lost and no client-visible error.
func TestSubmitRetriesAroundFailingMember(t *testing.T) {
	good, bad := newFakeMember(t), newFakeMember(t)
	bad.failLeft.Store(1 << 30)
	g := testGateway(t, []string{good.url, bad.url}, nil)
	jobs := specs(64)
	shardSplit(t, g, jobs)

	rec, resp := submit(t, g.Handler(), jobs)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Errors) != 0 {
		t.Fatalf("submit reported errors despite a healthy fallback: %+v", resp.Errors)
	}
	goodTok := memberToken(good.url)
	for i, id := range resp.JobIDs {
		if !strings.HasPrefix(id, goodTok+".") {
			t.Fatalf("job %d placed as %q, want everything on the healthy member %s", i, id, goodTok)
		}
	}
	if g.met.retries.Value() == 0 {
		t.Fatal("rerouting around the failing member recorded no retries")
	}
}

// TestSubmitRecoversAfterTransientFailures: a member that fails N submits
// then recovers serves later submissions again (per-request exclusion is
// not permanent ejection).
func TestSubmitRecoversAfterTransientFailures(t *testing.T) {
	a, b := newFakeMember(t), newFakeMember(t)
	a.failLeft.Store(1)
	g := testGateway(t, []string{a.url, b.url}, nil)
	jobs := specs(64)
	shardSplit(t, g, jobs)

	// First submission: A eats its one failure, its shard re-routes to B;
	// every job still lands.
	rec, resp := submit(t, g.Handler(), jobs)
	if rec.Code != http.StatusAccepted || len(resp.Errors) != 0 {
		t.Fatalf("submit with transient failures = %d %+v", rec.Code, resp.Errors)
	}
	for i, id := range resp.JobIDs {
		if id == "" {
			t.Fatalf("job %d lost through transient failures", i)
		}
	}
	// Second submission: A has recovered — clean, no retries, spread
	// across both members again.
	before := g.met.retries.Value()
	rec, resp = submit(t, g.Handler(), jobs)
	if rec.Code != http.StatusAccepted || len(resp.Errors) != 0 {
		t.Fatalf("clean submit = %d %+v", rec.Code, resp.Errors)
	}
	if got := g.met.retries.Value(); got != before {
		t.Fatalf("clean submit retried (%d -> %d)", before, got)
	}
	toks := map[string]bool{}
	for _, id := range resp.JobIDs {
		toks[strings.SplitN(id, ".", 2)[0]] = true
	}
	if len(toks) < 2 {
		t.Fatalf("recovered fleet did not re-spread the shards: %v", toks)
	}
}

// TestSubmitAllMembersDown: total degradation answers 503 + Retry-After
// promptly instead of hanging out the retry budget.
func TestSubmitAllMembersDown(t *testing.T) {
	a, b := newFakeMember(t), newFakeMember(t)
	a.failLeft.Store(1 << 30)
	b.failLeft.Store(1 << 30)
	g := testGateway(t, []string{a.url, b.url}, nil)

	start := time.Now()
	rec, _ := submit(t, g.Handler(), specs(8))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit with fleet down = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("degraded answer took %v, want fast failure", d)
	}
	if g.met.unrouted.Value() == 0 {
		t.Fatal("unrouted jobs not counted")
	}
}

// TestSubmitPartialBatch: a member that succeeds once then dies strands
// the re-sharded jobs once every member is excluded — the response must
// keep the placed sub-batch and report the stranded jobs per-index.
func TestSubmitPartialBatch(t *testing.T) {
	flaky, dead := newFakeMember(t), newFakeMember(t)
	dead.failLeft.Store(1 << 30)
	g := testGateway(t, []string{flaky.url, dead.url}, nil)
	jobs := specs(64)
	owners := shardSplit(t, g, jobs)
	// The flaky member answers its first submit (round one's own shard)
	// and nothing after — so the dead member's re-sharded jobs strand.
	flaky.okCap.Store(1)
	var flakyShard []int
	for i, o := range owners {
		if o == flaky.url {
			flakyShard = append(flakyShard, i)
		}
	}

	rec, resp := submit(t, g.Handler(), jobs)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("partial submit = %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Errors) == 0 {
		t.Fatal("partial placement reported no errors")
	}
	placed := 0
	for i, id := range resp.JobIDs {
		owned := owners[i] == flaky.url
		if (id != "") != owned {
			t.Fatalf("job %d (owner %s): id %q", i, owners[i], id)
		}
		if id != "" {
			placed++
		}
	}
	if placed != len(flakyShard) {
		t.Fatalf("placed %d jobs, want the flaky member's shard of %d", placed, len(flakyShard))
	}
	var failed []int
	for _, e := range resp.Errors {
		failed = append(failed, e.Jobs...)
	}
	if len(failed) != len(jobs)-placed {
		t.Fatalf("errors cover %d jobs, want %d", len(failed), len(jobs)-placed)
	}
}

// TestSubmitHedgesSlowMember: a primary that stalls past the hedge delay
// loses the race to the next ring member; the client sees a fast ack.
func TestSubmitHedgesSlowMember(t *testing.T) {
	slow, fast := newFakeMember(t), newFakeMember(t)
	slow.sleep = 2 * time.Second
	g := testGateway(t, []string{slow.url, fast.url}, func(o *Options) {
		o.HedgeDelay = 30 * time.Millisecond
		o.AttemptTimeout = 5 * time.Second
	})
	// Pick one spec owned by the slow member.
	var job engine.JobSpec
	found := false
	for seed := int64(0); seed < 4096 && !found; seed++ {
		job = hbaSpec(seed)
		found = g.ring.Owner([]byte(job.CanonicalHash())) == slow.url
	}
	if !found {
		t.Fatal("test precondition: no spec owned by the slow member")
	}

	start := time.Now()
	rec, resp := submit(t, g.Handler(), []engine.JobSpec{job})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("hedged submit = %d: %s", rec.Code, rec.Body)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hedged submit took %v, want well under the slow member's stall", d)
	}
	if want := memberToken(fast.url) + "."; !strings.HasPrefix(resp.JobIDs[0], want) {
		t.Fatalf("hedged job placed as %q, want on the fast member %q", resp.JobIDs[0], want)
	}
	if g.met.hedges.Value() == 0 {
		t.Fatal("hedge not counted")
	}
}

// TestExactlyOnceAcrossFleet: identical batches submitted twice through
// the gateway shard identically, dedupe on the owning members' caches,
// and return payload-identical results — each unique spec is computed and
// cached on exactly one member.
func TestExactlyOnceAcrossFleet(t *testing.T) {
	urlA, engA := realMember(t)
	urlB, engB := realMember(t)
	urlC, engC := realMember(t)
	g := testGateway(t, []string{urlA, urlB, urlC}, nil)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	jobs := specs(16)
	shardSplit(t, g, jobs)

	rec1, resp1 := submit(t, g.Handler(), jobs)
	rec2, resp2 := submit(t, g.Handler(), jobs)
	if rec1.Code != http.StatusAccepted || rec2.Code != http.StatusAccepted {
		t.Fatalf("submits = %d, %d", rec1.Code, rec2.Code)
	}
	for i := range jobs {
		t1, _, _ := strings.Cut(resp1.JobIDs[i], ".")
		t2, _, _ := strings.Cut(resp2.JobIDs[i], ".")
		if t1 != t2 {
			t.Fatalf("job %d routed to %s then %s: routing not sticky on the spec hash", i, t1, t2)
		}
	}
	first := pollAll(t, gw.URL, resp1.JobIDs)
	second := pollAll(t, gw.URL, resp2.JobIDs)
	for i := range jobs {
		if !samePayload(first[i], second[i]) {
			t.Fatalf("job %d diverged between identical submissions:\n  %+v\n  %+v", i, first[i], second[i])
		}
	}
	// Exactly-once fleet-wide: every unique spec lives in exactly one
	// member's cache, even after being submitted twice.
	total := engA.Stats().CacheEntries + engB.Stats().CacheEntries + engC.Stats().CacheEntries
	if total != len(jobs) {
		t.Fatalf("fleet caches hold %d entries for %d unique specs", total, len(jobs))
	}
}

func pollAll(t *testing.T, gwURL string, ids []string) []engine.JobResult {
	t.Helper()
	out := make([]engine.JobResult, len(ids))
	deadline := time.Now().Add(30 * time.Second)
	for i, id := range ids {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s not done in time", id)
			}
			resp, err := http.Get(gwURL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st engine.JobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.ID != id {
				t.Fatalf("status id %q, want the gateway id %q", st.ID, id)
			}
			if st.Status == engine.StatusDone {
				if st.Result == nil || st.Result.ID != id {
					t.Fatalf("done status for %s carries result %+v", id, st.Result)
				}
				out[i] = *st.Result
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return out
}

func samePayload(a, b engine.JobResult) bool {
	a.ID, a.CacheHit, a.Elapsed = "", false, 0
	b.ID, b.CacheHit, b.Elapsed = "", false, 0
	return reflect.DeepEqual(a, b)
}

// sseEvent is one parsed client-side event.
type sseEvent struct {
	id, event string
	data      []byte
}

// readEvents consumes SSE events from r, stopping after limit events (or
// a done event, or EOF).
func readEvents(t *testing.T, r io.Reader, limit int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			out = append(out, cur)
			if cur.event == "done" || (limit > 0 && len(out) >= limit) {
				return out
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id:"):
			cur.id = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			cur.event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			cur.data = append(cur.data, strings.TrimPrefix(line[len("data:"):], " ")...)
		}
	}
	return out
}

// TestSSEReconnectExactlyOnce: a client that drops its merged gateway
// stream and reconnects with the composite Last-Event-ID sees every
// result exactly once across the two connections, with gateway job ids in
// every payload.
func TestSSEReconnectExactlyOnce(t *testing.T) {
	urlA, _ := realMember(t)
	urlB, _ := realMember(t)
	g := testGateway(t, []string{urlA, urlB}, nil)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	jobs := specs(24)
	shardSplit(t, g, jobs)

	rec, resp := submit(t, g.Handler(), jobs)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(resp.BatchID, ".") {
		t.Fatalf("test precondition: batch %q has one part, want a multi-member batch", resp.BatchID)
	}
	pollAll(t, gw.URL, resp.JobIDs) // everything finished: the stream replays deterministically

	streamURL := gw.URL + "/v1/batches/" + resp.BatchID + "/events"
	// First connection: read 7 results, then hang up mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, streamURL, nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	firstEvents := readEvents(t, sresp.Body, 7)
	cancel()
	sresp.Body.Close()
	if len(firstEvents) != 7 {
		t.Fatalf("first connection read %d events, want 7", len(firstEvents))
	}
	lastID := firstEvents[len(firstEvents)-1].id

	// Second connection resumes past the composite cursor.
	req, _ = http.NewRequest(http.MethodGet, streamURL, nil)
	req.Header.Set("Last-Event-ID", lastID)
	sresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	rest := readEvents(t, sresp.Body, 0)
	if n := len(rest); n == 0 || rest[n-1].event != "done" {
		t.Fatalf("second connection ended without a done event (%d events)", n)
	}

	seen := map[string]int{}
	for _, ev := range append(firstEvents, rest[:len(rest)-1]...) {
		if ev.event != "result" {
			t.Fatalf("unexpected event %q mid-stream", ev.event)
		}
		var res engine.JobResult
		if err := json.Unmarshal(ev.data, &res); err != nil {
			t.Fatalf("bad result payload: %v", err)
		}
		seen[res.ID]++
	}
	for _, id := range resp.JobIDs {
		if seen[id] != 1 {
			t.Fatalf("job %s delivered %d times across the reconnect, want exactly once", id, seen[id])
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("saw %d distinct results, want %d", len(seen), len(jobs))
	}
	var done struct {
		Jobs int `json:"jobs"`
	}
	// Members report their full sub-batch size in done (resume offsets
	// included), so the gateway's merged done covers the whole batch.
	if err := json.Unmarshal(rest[len(rest)-1].data, &done); err != nil || done.Jobs != len(jobs) {
		t.Fatalf("done event %s, want jobs=%d", rest[len(rest)-1].data, len(jobs))
	}
}

// TestGatewayReadyz: ready while any member is healthy, unready once the
// checker has ejected the whole fleet.
func TestGatewayReadyz(t *testing.T) {
	a := newFakeMember(t)
	g := testGateway(t, []string{a.url}, func(o *Options) {
		o.Health = cluster.HealthOptions{
			Interval:      5 * time.Millisecond,
			FailThreshold: 2,
			Probe: func(ctx context.Context, member string) error {
				return fmt.Errorf("injected probe failure")
			},
		}
	})
	h := g.Handler()
	get := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	// Optimistic admission: ready before the first probes land.
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz on fresh gateway = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for get("/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("gateway never went unready with every probe failing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d, want liveness to stay green", code)
	}
}
