package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseCubeRoundTrip(t *testing.T) {
	cases := []string{"1-0 10", "111 01", "--- 11", "000 00"}
	for _, s := range cases {
		c, err := ParseCube(s, 3, 2)
		if err != nil {
			t.Fatalf("ParseCube(%q): %v", s, err)
		}
		if got := c.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseCubeSingleOutputShorthand(t *testing.T) {
	c, err := ParseCube("10-", 3, 1)
	if err != nil {
		t.Fatalf("ParseCube: %v", err)
	}
	if !c.Out[0] {
		t.Error("shorthand cube should belong to output 0")
	}
}

func TestParseCubeErrors(t *testing.T) {
	bad := []struct {
		s         string
		nIn, nOut int
	}{
		{"", 3, 1},
		{"1-", 3, 1},
		{"1x0 1", 3, 1},
		{"1-0 1", 3, 2},
		{"1-0 1z", 3, 2},
		{"1-0", 3, 2}, // missing output part with multiple outputs
	}
	for _, tc := range bad {
		if _, err := ParseCube(tc.s, tc.nIn, tc.nOut); err == nil {
			t.Errorf("ParseCube(%q, %d, %d) should fail", tc.s, tc.nIn, tc.nOut)
		}
	}
}

func TestCubeEvalInput(t *testing.T) {
	c, _ := ParseCube("1-0 1", 3, 1)
	cases := []struct {
		x    []bool
		want bool
	}{
		{[]bool{true, false, false}, true},
		{[]bool{true, true, false}, true},
		{[]bool{false, true, false}, false},
		{[]bool{true, true, true}, false},
	}
	for _, tc := range cases {
		if got := c.EvalInput(tc.x); got != tc.want {
			t.Errorf("EvalInput(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCubeContainment(t *testing.T) {
	big, _ := ParseCube("1-- 1", 3, 1)
	small, _ := ParseCube("110 1", 3, 1)
	if !big.ContainsCube(small) {
		t.Error("1-- should contain 110")
	}
	if small.ContainsCube(big) {
		t.Error("110 should not contain 1--")
	}
	if !big.ContainsCube(big) {
		t.Error("containment must be reflexive")
	}
}

func TestCubeDistanceAndIntersect(t *testing.T) {
	a, _ := ParseCube("10- 1", 3, 1)
	b, _ := ParseCube("01- 1", 3, 1)
	if d := a.Distance(b); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
	if _, ok := a.Intersect(b); ok {
		t.Error("distance-2 cubes must not intersect")
	}
	c, _ := ParseCube("1-1 1", 3, 1)
	r, ok := a.Intersect(c)
	if !ok {
		t.Fatal("10- and 1-1 should intersect")
	}
	if r.String() != "101 1" {
		t.Errorf("intersection = %q, want 101 1", r.String())
	}
}

func TestCubeSupercube(t *testing.T) {
	a, _ := ParseCube("101 10", 3, 2)
	b, _ := ParseCube("111 01", 3, 2)
	s := a.Supercube(b)
	if s.String() != "1-1 11" {
		t.Errorf("supercube = %q, want 1-1 11", s.String())
	}
}

func TestCubeConsensus(t *testing.T) {
	a, _ := ParseCube("1-0 1", 3, 1)
	b, _ := ParseCube("-11 1", 3, 1)
	c, ok := a.Consensus(b)
	if !ok {
		t.Fatal("distance-1 cubes must have a consensus")
	}
	// Consensus of x1x̄3 and x2x3 is x1x2 (conflict variable x3 drops).
	if c.String() != "11- 1" {
		t.Errorf("consensus = %q, want 11- 1", c.String())
	}
	far, _ := ParseCube("011 1", 3, 1)
	if _, ok := a.Consensus(far); ok {
		t.Error("distance-2 cubes must have no consensus")
	}
}

func TestCofactorCube(t *testing.T) {
	a, _ := ParseCube("1-0 1", 3, 1)
	p, _ := ParseCube("1-- 1", 3, 1)
	r, ok := a.CofactorCube(p)
	if !ok {
		t.Fatal("cofactor should exist")
	}
	if r.String() != "--0 1" {
		t.Errorf("cofactor = %q, want --0 1", r.String())
	}
	q, _ := ParseCube("0-- 1", 3, 1)
	if _, ok := a.CofactorCube(q); ok {
		t.Error("cofactor against opposing literal must vanish")
	}
}

// Property: the supercube contains both operands.
func TestSupercubeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Cube {
		c := NewCube(6, 1)
		c.Out[0] = true
		for i := range c.In {
			c.In[i] = LitVal(rng.Intn(3))
		}
		return c
	}
	for trial := 0; trial < 500; trial++ {
		a, b := gen(), gen()
		s := a.Supercube(b)
		if !s.ContainsCube(a) || !s.ContainsCube(b) {
			t.Fatalf("supercube %v of %v,%v does not contain operands", s, a, b)
		}
	}
}

// Property: intersection, when it exists, is contained in both operands and
// covers exactly the assignments covered by both.
func TestIntersectProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	f := func(raw [6]uint8, x [3]bool) bool {
		a, b := NewCube(3, 1), NewCube(3, 1)
		for i := 0; i < 3; i++ {
			a.In[i] = LitVal(raw[i] % 3)
			b.In[i] = LitVal(raw[i+3] % 3)
		}
		r, ok := a.Intersect(b)
		both := a.EvalInput(x[:]) && b.EvalInput(x[:])
		if !ok {
			return !both
		}
		return r.EvalInput(x[:]) == both
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNumLiteralsAndOutputs(t *testing.T) {
	c, _ := ParseCube("1-0- 101", 4, 3)
	if n := c.NumLiterals(); n != 2 {
		t.Errorf("NumLiterals = %d, want 2", n)
	}
	if n := c.NumOutputs(); n != 2 {
		t.Errorf("NumOutputs = %d, want 2", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := ParseCube("10- 1", 3, 1)
	b := a.Clone()
	b.In[0] = LitNeg
	b.Out[0] = false
	if a.In[0] != LitPos || !a.Out[0] {
		t.Error("Clone must not alias the original")
	}
}
