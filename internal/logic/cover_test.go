package logic

import (
	"math/rand"
	"testing"
)

// fig3Cover is the running example of the paper (Figs. 3 and 5):
// f = x1 + x2 + x3 + x4 + x5·x6·x7·x8.
func fig3Cover() *Cover {
	return MustParseCover(8, 1,
		"1-------",
		"-1------",
		"--1-----",
		"---1----",
		"----1111",
	)
}

func TestCoverEvalFig3(t *testing.T) {
	f := fig3Cover()
	cases := []struct {
		x    string
		want bool
	}{
		{"10000000", true},
		{"00000000", false},
		{"00001111", true},
		{"00001110", false},
		{"01001110", true},
	}
	for _, tc := range cases {
		x := make([]bool, 8)
		for i := range x {
			x[i] = tc.x[i] == '1'
		}
		if got := f.EvalOutput(0, x); got != tc.want {
			t.Errorf("f(%s) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCoverMultiOutputEval(t *testing.T) {
	// Fig. 7 of the paper: O1 = x1·x̄2 + x̄2·x3 (per the FM in Fig. 8),
	// O2 = x̄1·x̄3 + x2·x̄3.
	f := MustParseCover(3, 2,
		"10- 10",
		"-01 10",
		"0-0 01",
		"-10 01",
	)
	x := []bool{true, false, true}
	y := f.Eval(x)
	if !y[0] || y[1] {
		t.Errorf("Eval(101) = %v, want [true false]", y)
	}
}

func TestOutputCoverAndMerge(t *testing.T) {
	f := MustParseCover(3, 2,
		"10- 10",
		"-01 11",
		"0-0 01",
	)
	o0 := f.OutputCover(0)
	o1 := f.OutputCover(1)
	if o0.NumProducts() != 2 || o1.NumProducts() != 2 {
		t.Fatalf("per-output product counts = %d,%d, want 2,2", o0.NumProducts(), o1.NumProducts())
	}
	merged, err := MergeOutputs([]*Cover{o0, o1})
	if err != nil {
		t.Fatal(err)
	}
	// The shared product -01 must be emitted once with both output bits.
	if merged.NumProducts() != 3 {
		t.Errorf("merged products = %d, want 3 (shared product re-fused)", merged.NumProducts())
	}
	ok, err := Equivalent(f, merged, 0, nil)
	if err != nil || !ok {
		t.Errorf("merge changed the function (ok=%v err=%v)", ok, err)
	}
}

func TestMergeOutputsErrors(t *testing.T) {
	a := NewCover(3, 1)
	b := NewCover(4, 1)
	if _, err := MergeOutputs([]*Cover{a, b}); err == nil {
		t.Error("mismatched input counts should fail")
	}
	if _, err := MergeOutputs(nil); err == nil {
		t.Error("empty merge should fail")
	}
	c := NewCover(3, 2)
	if _, err := MergeOutputs([]*Cover{a, c}); err == nil {
		t.Error("multi-output member should fail")
	}
}

func TestAddCubeDimensionCheck(t *testing.T) {
	c := NewCover(3, 1)
	if err := c.AddCube(NewCube(4, 1)); err == nil {
		t.Error("AddCube must reject wrong input arity")
	}
	if err := c.AddCube(NewCube(3, 2)); err == nil {
		t.Error("AddCube must reject wrong output arity")
	}
	if err := c.AddCube(NewCube(3, 1)); err != nil {
		t.Errorf("AddCube rejected a valid cube: %v", err)
	}
}

func TestRemoveDuplicates(t *testing.T) {
	c := MustParseCover(3, 1, "1--", "1--", "0-1")
	c.RemoveDuplicates()
	if c.NumProducts() != 2 {
		t.Errorf("products after dedup = %d, want 2", c.NumProducts())
	}
}

func TestSingleOutputContained(t *testing.T) {
	c := MustParseCover(3, 1, "1--", "11-", "0-1", "111")
	c.SingleOutputContained()
	if c.NumProducts() != 2 {
		t.Errorf("products after containment removal = %d, want 2: %v", c.NumProducts(), c)
	}
}

func TestCofactorVar(t *testing.T) {
	f := fig3Cover()
	// Cofactor on x1 = 1: function becomes constant 1 (the x1 cube covers).
	fx := f.CofactorVar(0, true)
	if !fx.IsTautology() {
		t.Error("f|x1=1 should be a tautology")
	}
	fnx := f.CofactorVar(0, false)
	if fnx.IsTautology() {
		t.Error("f|x1=0 should not be a tautology")
	}
}

func TestTotalLiterals(t *testing.T) {
	f := fig3Cover()
	if n := f.TotalLiterals(); n != 8 {
		t.Errorf("TotalLiterals = %d, want 8", n)
	}
}

func TestCoverCofactorAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randomCover(rng, 6, 2, 8)
	p := NewCube(6, 2)
	p.In[2] = LitPos
	p.In[4] = LitNeg
	g := f.Cofactor(p)
	for trial := 0; trial < 200; trial++ {
		x := make([]bool, 6)
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		x[2], x[4] = true, false // inside the cofactor cube
		want := f.Eval(x)
		got := g.Eval(x)
		if !equalBools(want, got) {
			t.Fatalf("cofactor mismatch at %v: %v vs %v", x, got, want)
		}
	}
}

// randomCover builds a random multi-output cover for property tests.
func randomCover(rng *rand.Rand, nIn, nOut, nCubes int) *Cover {
	c := NewCover(nIn, nOut)
	for k := 0; k < nCubes; k++ {
		cube := NewCube(nIn, nOut)
		for i := range cube.In {
			cube.In[i] = LitVal(rng.Intn(3))
		}
		for j := range cube.Out {
			cube.Out[j] = rng.Intn(2) == 1
		}
		if cube.NumOutputs() == 0 {
			cube.Out[rng.Intn(nOut)] = true
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}
