// Package logic implements the two-level Boolean function machinery the
// crossbar synthesizer is built on: three-valued cubes, multi-output covers
// (sum-of-products), cofactors, tautology checking, containment, sharp and
// complement via the unate recursive paradigm, and truth-table equivalence.
//
// The representation follows the classical espresso conventions: a cube has
// one three-valued literal per input variable (0 = complemented literal,
// 1 = positive literal, 2 = variable absent / don't care) and one bit per
// output (the cube belongs to that output's ON-set cover).
package logic

import (
	"fmt"
	"strings"
)

// LitVal is the three-valued state of one input variable inside a cube.
type LitVal uint8

const (
	// LitNeg means the complemented literal x̄ appears in the product.
	LitNeg LitVal = 0
	// LitPos means the positive literal x appears in the product.
	LitPos LitVal = 1
	// LitDC means the variable does not appear in the product.
	LitDC LitVal = 2
)

// String renders the literal in espresso PLA notation.
func (v LitVal) String() string {
	switch v {
	case LitNeg:
		return "0"
	case LitPos:
		return "1"
	case LitDC:
		return "-"
	}
	return "?"
}

// Cube is a product term over n input variables together with the set of
// outputs whose ON-set it belongs to. The zero value is not useful; build
// cubes with NewCube or by parsing.
type Cube struct {
	In  []LitVal // one entry per input variable
	Out []bool   // one entry per output; true = cube is in that output's cover
}

// NewCube returns a full don't-care cube (the universe) over nIn inputs that
// belongs to no output.
func NewCube(nIn, nOut int) Cube {
	c := Cube{In: make([]LitVal, nIn), Out: make([]bool, nOut)}
	for i := range c.In {
		c.In[i] = LitDC
	}
	return c
}

// Clone returns a deep copy of the cube.
func (c Cube) Clone() Cube {
	d := Cube{In: make([]LitVal, len(c.In)), Out: make([]bool, len(c.Out))}
	copy(d.In, c.In)
	copy(d.Out, c.Out)
	return d
}

// NumLiterals reports how many input variables appear in the product.
func (c Cube) NumLiterals() int {
	n := 0
	for _, v := range c.In {
		if v != LitDC {
			n++
		}
	}
	return n
}

// NumOutputs reports how many outputs the cube belongs to.
func (c Cube) NumOutputs() int {
	n := 0
	for _, b := range c.Out {
		if b {
			n++
		}
	}
	return n
}

// EvalInput reports whether the product term covers the input assignment x.
// It ignores the output part.
func (c Cube) EvalInput(x []bool) bool {
	for i, v := range c.In {
		switch v {
		case LitPos:
			if !x[i] {
				return false
			}
		case LitNeg:
			if x[i] {
				return false
			}
		}
	}
	return true
}

// ContainsCube reports whether c covers d in the input space: every
// assignment covered by d's product is covered by c's product.
func (c Cube) ContainsCube(d Cube) bool {
	for i, v := range c.In {
		if v != LitDC && v != d.In[i] {
			return false
		}
	}
	return true
}

// Distance counts input variables on which c and d have opposing literals
// (one LitPos, the other LitNeg). Distance 0 means the products intersect.
func (c Cube) Distance(d Cube) int {
	dist := 0
	for i, v := range c.In {
		w := d.In[i]
		if v != LitDC && w != LitDC && v != w {
			dist++
		}
	}
	return dist
}

// Intersect returns the product-space intersection of c and d and whether it
// is nonempty. The output part of the result is the AND of the two cubes'
// output parts.
func (c Cube) Intersect(d Cube) (Cube, bool) {
	r := NewCube(len(c.In), len(c.Out))
	for i, v := range c.In {
		w := d.In[i]
		switch {
		case v == LitDC:
			r.In[i] = w
		case w == LitDC || w == v:
			r.In[i] = v
		default:
			return Cube{}, false
		}
	}
	for i := range r.Out {
		r.Out[i] = c.Out[i] && d.Out[i]
	}
	return r, true
}

// Supercube returns the smallest cube containing both c and d; its output
// part is the OR of the operands'.
func (c Cube) Supercube(d Cube) Cube {
	r := NewCube(len(c.In), len(c.Out))
	for i, v := range c.In {
		w := d.In[i]
		if v == w {
			r.In[i] = v
		} else {
			r.In[i] = LitDC
		}
	}
	for i := range r.Out {
		r.Out[i] = c.Out[i] || d.Out[i]
	}
	return r
}

// Consensus returns the consensus cube of c and d (defined when the distance
// is exactly 1) and whether it exists. The consensus is the largest cube
// contained in c ∪ d that spans the single conflicting variable.
func (c Cube) Consensus(d Cube) (Cube, bool) {
	if c.Distance(d) != 1 {
		return Cube{}, false
	}
	r := NewCube(len(c.In), len(c.Out))
	for i, v := range c.In {
		w := d.In[i]
		switch {
		case v == LitDC:
			r.In[i] = w
		case w == LitDC || v == w:
			r.In[i] = v
		default:
			r.In[i] = LitDC // the conflicting variable drops out
		}
	}
	for i := range r.Out {
		r.Out[i] = c.Out[i] && d.Out[i]
	}
	return r, true
}

// CofactorCube returns the cofactor of c with respect to cube p (the
// generalized Shannon cofactor) and whether it is nonempty. Variables fixed
// by p become don't cares in the result.
func (c Cube) CofactorCube(p Cube) (Cube, bool) {
	r := NewCube(len(c.In), len(c.Out))
	for i, v := range c.In {
		w := p.In[i]
		switch {
		case w == LitDC:
			r.In[i] = v
		case v == LitDC || v == w:
			r.In[i] = LitDC
		default:
			return Cube{}, false
		}
	}
	copy(r.Out, c.Out)
	return r, true
}

// String renders the cube in PLA row notation, e.g. "1-0 10".
func (c Cube) String() string {
	var b strings.Builder
	for _, v := range c.In {
		b.WriteString(v.String())
	}
	if len(c.Out) > 0 {
		b.WriteByte(' ')
		for _, o := range c.Out {
			if o {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	return b.String()
}

// ParseCube parses a PLA-style row such as "1-0 10". The output part may be
// omitted for single-output covers, in which case the cube belongs to
// output 0 of nOut outputs.
func ParseCube(s string, nIn, nOut int) (Cube, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Cube{}, fmt.Errorf("logic: empty cube %q", s)
	}
	in := fields[0]
	if len(in) != nIn {
		return Cube{}, fmt.Errorf("logic: cube %q has %d input positions, want %d", s, len(in), nIn)
	}
	c := NewCube(nIn, nOut)
	for i := 0; i < nIn; i++ {
		switch in[i] {
		case '0':
			c.In[i] = LitNeg
		case '1':
			c.In[i] = LitPos
		case '-', '2':
			c.In[i] = LitDC
		default:
			return Cube{}, fmt.Errorf("logic: bad input literal %q in cube %q", in[i], s)
		}
	}
	switch {
	case len(fields) == 1:
		if nOut != 1 {
			return Cube{}, fmt.Errorf("logic: cube %q missing output part for %d outputs", s, nOut)
		}
		c.Out[0] = true
	default:
		out := fields[1]
		if len(out) != nOut {
			return Cube{}, fmt.Errorf("logic: cube %q has %d output positions, want %d", s, len(out), nOut)
		}
		for j := 0; j < nOut; j++ {
			switch out[j] {
			case '1', '4':
				c.Out[j] = true
			case '0', '~', '-', '2':
				c.Out[j] = false
			default:
				return Cube{}, fmt.Errorf("logic: bad output literal %q in cube %q", out[j], s)
			}
		}
	}
	return c, nil
}
