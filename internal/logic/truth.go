package logic

import (
	"fmt"
	"math/rand"
)

// MaxExhaustiveInputs is the largest input count for which equivalence and
// truth-table routines enumerate all 2^n assignments. Above it, callers fall
// back to random sampling.
const MaxExhaustiveInputs = 20

// AssignmentFromIndex decodes the i-th input assignment (bit k of i drives
// input k) into a bool slice of length n.
func AssignmentFromIndex(i uint64, n int) []bool {
	x := make([]bool, n)
	for k := 0; k < n; k++ {
		x[k] = i&(1<<uint(k)) != 0
	}
	return x
}

// TruthTable enumerates output j of the cover over all 2^NumIn assignments.
// It panics when NumIn exceeds MaxExhaustiveInputs.
func (c *Cover) TruthTable(j int) []bool {
	if c.NumIn > MaxExhaustiveInputs {
		panic(fmt.Sprintf("logic: TruthTable on %d inputs exceeds limit %d", c.NumIn, MaxExhaustiveInputs))
	}
	size := uint64(1) << uint(c.NumIn)
	tt := make([]bool, size)
	for i := uint64(0); i < size; i++ {
		tt[i] = c.EvalOutput(j, AssignmentFromIndex(i, c.NumIn))
	}
	return tt
}

// Equivalent reports whether two covers compute the same multi-output
// function, exhaustively when NumIn <= MaxExhaustiveInputs and on `samples`
// random assignments otherwise (rng must be non-nil in that case).
func Equivalent(a, b *Cover, samples int, rng *rand.Rand) (bool, error) {
	if a.NumIn != b.NumIn || a.NumOut != b.NumOut {
		return false, fmt.Errorf("logic: dimension mismatch %dx%d vs %dx%d",
			a.NumIn, a.NumOut, b.NumIn, b.NumOut)
	}
	if a.NumIn <= MaxExhaustiveInputs {
		size := uint64(1) << uint(a.NumIn)
		for i := uint64(0); i < size; i++ {
			x := AssignmentFromIndex(i, a.NumIn)
			if !equalBools(a.Eval(x), b.Eval(x)) {
				return false, nil
			}
		}
		return true, nil
	}
	if rng == nil {
		return false, fmt.Errorf("logic: sampling equivalence needs a rand source")
	}
	for s := 0; s < samples; s++ {
		x := make([]bool, a.NumIn)
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		if !equalBools(a.Eval(x), b.Eval(x)) {
			return false, nil
		}
	}
	return true, nil
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OnSetSize counts the minterms of output j (exhaustive; NumIn bounded by
// MaxExhaustiveInputs).
func (c *Cover) OnSetSize(j int) uint64 {
	tt := c.TruthTable(j)
	var n uint64
	for _, b := range tt {
		if b {
			n++
		}
	}
	return n
}

// FromTruthTable builds a canonical minterm cover for a single-output
// function given as a truth table of length 2^nIn.
func FromTruthTable(nIn int, tt []bool) (*Cover, error) {
	if len(tt) != 1<<uint(nIn) {
		return nil, fmt.Errorf("logic: truth table length %d does not match %d inputs", len(tt), nIn)
	}
	c := NewCover(nIn, 1)
	for i, b := range tt {
		if !b {
			continue
		}
		cube := NewCube(nIn, 1)
		cube.Out[0] = true
		for k := 0; k < nIn; k++ {
			if i&(1<<uint(k)) != 0 {
				cube.In[k] = LitPos
			} else {
				cube.In[k] = LitNeg
			}
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c, nil
}
