package logic

// This file implements the unate recursive paradigm: tautology checking and
// complementation of single-output covers, the two primitives the minimizer
// and the "dual implementation" area optimization of the paper rely on.

// varPolarity summarizes how a variable appears across the cubes of a cover.
type varPolarity struct {
	pos int // cubes with the positive literal
	neg int // cubes with the complemented literal
}

func polarities(c *Cover) []varPolarity {
	p := make([]varPolarity, c.NumIn)
	for _, cube := range c.Cubes {
		for i, v := range cube.In {
			switch v {
			case LitPos:
				p[i].pos++
			case LitNeg:
				p[i].neg++
			}
		}
	}
	return p
}

// mostBinateVar picks the splitting variable for the recursive paradigm: the
// variable appearing in the most cubes, favouring balanced polarity. Returns
// -1 when no cube mentions any variable (all cubes are the universe).
func mostBinateVar(c *Cover) int {
	pol := polarities(c)
	best, bestScore := -1, -1
	for i, p := range pol {
		total := p.pos + p.neg
		if total == 0 {
			continue
		}
		binate := 0
		if p.pos > 0 && p.neg > 0 {
			binate = 1
		}
		// Binate variables first, then highest occurrence, then most
		// balanced split.
		score := binate*1_000_000 + total*1_000 - abs(p.pos-p.neg)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// IsTautology reports whether the single-output cover computes constant 1.
func (c *Cover) IsTautology() bool {
	return tautologyRec(c)
}

func tautologyRec(c *Cover) bool {
	if len(c.Cubes) == 0 {
		return false
	}
	for _, cube := range c.Cubes {
		if cube.NumLiterals() == 0 {
			return true // the universe cube is present
		}
	}
	// A cover of cubes each with >=1 literal cannot be a tautology if the
	// total number of minterms covered is provably < 2^n: quick bound.
	// Sum of 2^(n - literals) over cubes must reach 2^n.
	if c.NumIn <= 30 {
		var sum uint64
		full := uint64(1) << uint(c.NumIn)
		for _, cube := range c.Cubes {
			sum += uint64(1) << uint(c.NumIn-cube.NumLiterals())
			if sum >= full {
				break
			}
		}
		if sum < full {
			return false
		}
	}
	// Unate reduction: if variable i appears only positively, the cover is a
	// tautology iff the cofactor against x̄i is (monotone containment).
	pol := polarities(c)
	for i, p := range pol {
		if p.pos > 0 && p.neg == 0 {
			return tautologyRec(c.CofactorVar(i, false))
		}
		if p.neg > 0 && p.pos == 0 {
			return tautologyRec(c.CofactorVar(i, true))
		}
	}
	j := mostBinateVar(c)
	if j < 0 {
		return false // no literals anywhere yet no universe cube: empty cubes only
	}
	return tautologyRec(c.CofactorVar(j, true)) && tautologyRec(c.CofactorVar(j, false))
}

// Complement returns a single-output cover computing the complement f̄ of
// this single-output cover, using the unate recursive paradigm.
func (c *Cover) Complement() *Cover {
	if c.NumOut != 1 {
		panic("logic: Complement requires a single-output cover")
	}
	r := complementRec(c)
	r.SingleOutputContained()
	return r
}

func complementRec(c *Cover) *Cover {
	// Base cases.
	if len(c.Cubes) == 0 {
		u := NewCover(c.NumIn, 1)
		cube := NewCube(c.NumIn, 1)
		cube.Out[0] = true
		u.Cubes = append(u.Cubes, cube)
		return u
	}
	for _, cube := range c.Cubes {
		if cube.NumLiterals() == 0 {
			return NewCover(c.NumIn, 1) // tautology: complement is empty
		}
	}
	if len(c.Cubes) == 1 {
		return complementCube(c.Cubes[0], c.NumIn)
	}
	j := mostBinateVar(c)
	if j < 0 {
		return NewCover(c.NumIn, 1)
	}
	pos := complementRec(c.CofactorVar(j, true))
	neg := complementRec(c.CofactorVar(j, false))
	r := NewCover(c.NumIn, 1)
	for _, cube := range pos.Cubes {
		nc := cube.Clone()
		if nc.In[j] == LitDC {
			nc.In[j] = LitPos
		}
		r.Cubes = append(r.Cubes, nc)
	}
	for _, cube := range neg.Cubes {
		nc := cube.Clone()
		if nc.In[j] == LitDC {
			nc.In[j] = LitNeg
		}
		r.Cubes = append(r.Cubes, nc)
	}
	mergeOpposingPairs(r, j)
	return r
}

// mergeOpposingPairs performs the classical x·A + x̄·A = A cleanup after the
// Shannon merge step: cubes identical except for opposite literals of the
// split variable are fused.
func mergeOpposingPairs(c *Cover, j int) {
	index := map[string]int{}
	out := c.Cubes[:0]
	for _, cube := range c.Cubes {
		if cube.In[j] == LitDC {
			out = append(out, cube)
			continue
		}
		key := pairKey(cube.In, j)
		if k, ok := index[key]; ok && out[k].In[j] != cube.In[j] && out[k].In[j] != LitDC {
			out[k].In[j] = LitDC
			continue
		}
		index[key] = len(out)
		out = append(out, cube)
	}
	c.Cubes = out
}

func pairKey(in []LitVal, j int) string {
	b := make([]byte, len(in))
	for i, v := range in {
		if i == j {
			b[i] = '*'
		} else {
			b[i] = byte('0' + v)
		}
	}
	return string(b)
}

// complementCube applies De Morgan to a single product: the complement of
// l1·l2·…·lk is l̄1 + l̄2 + … + l̄k.
func complementCube(cube Cube, nIn int) *Cover {
	r := NewCover(nIn, 1)
	for i, v := range cube.In {
		if v == LitDC {
			continue
		}
		nc := NewCube(nIn, 1)
		nc.Out[0] = true
		if v == LitPos {
			nc.In[i] = LitNeg
		} else {
			nc.In[i] = LitPos
		}
		r.Cubes = append(r.Cubes, nc)
	}
	return r
}

// ComplementAll complements every output of a multi-output cover and merges
// the per-output complements back into a single multi-output cover, sharing
// identical products.
func (c *Cover) ComplementAll() *Cover {
	per := make([]*Cover, c.NumOut)
	for j := 0; j < c.NumOut; j++ {
		per[j] = c.OutputCover(j).Complement()
	}
	m, err := MergeOutputs(per)
	if err != nil {
		panic(err) // dimensions are consistent by construction
	}
	return m
}

// CoversCube reports whether the single-output cover covers every minterm of
// the given product term (cube containment against a cover, decided by a
// tautology check of the cofactor).
func (c *Cover) CoversCube(cube Cube) bool {
	return c.Cofactor(cube).IsTautology()
}

// Sharp returns the cover computing c AND NOT(cube): the set difference of a
// single-output cover and one product term, as a disjoint-free cover.
func (c *Cover) Sharp(cube Cube) *Cover {
	r := NewCover(c.NumIn, c.NumOut)
	for _, a := range c.Cubes {
		if _, ok := a.Intersect(cube); !ok {
			r.Cubes = append(r.Cubes, a.Clone())
			continue
		}
		// a # cube: for each literal of cube not already fixed oppositely in
		// a, emit a with that literal flipped.
		for i, v := range cube.In {
			if v == LitDC {
				continue
			}
			av := a.In[i]
			if av == v {
				continue // cannot flip; this literal already agrees
			}
			if av != LitDC {
				continue // opposite literal: handled by the no-intersection case
			}
			nc := a.Clone()
			if v == LitPos {
				nc.In[i] = LitNeg
			} else {
				nc.In[i] = LitPos
			}
			r.Cubes = append(r.Cubes, nc)
			// Restrict a to the agreeing half so emitted pieces stay disjoint.
			a = a.Clone()
			a.In[i] = v
		}
	}
	return r
}
