package logic

import (
	"math/rand"
	"testing"
)

func TestTautologyBasics(t *testing.T) {
	empty := NewCover(3, 1)
	if empty.IsTautology() {
		t.Error("empty cover is not a tautology")
	}
	universe := MustParseCover(3, 1, "---")
	if !universe.IsTautology() {
		t.Error("universe cube is a tautology")
	}
	split := MustParseCover(1, 1, "0", "1")
	if !split.IsTautology() {
		t.Error("x + x̄ is a tautology")
	}
	half := MustParseCover(2, 1, "1-")
	if half.IsTautology() {
		t.Error("x1 alone is not a tautology")
	}
}

func TestTautologyAgainstTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5)
		c := randomSingleOutput(rng, n, 1+rng.Intn(8))
		tt := c.TruthTable(0)
		all := true
		for _, b := range tt {
			if !b {
				all = false
				break
			}
		}
		if got := c.IsTautology(); got != all {
			t.Fatalf("IsTautology = %v, truth table says %v for\n%v", got, all, c)
		}
	}
}

func TestComplementFig3(t *testing.T) {
	f := fig3Cover()
	g := f.Complement()
	// f̄ = x̄1·x̄2·x̄3·x̄4·(x̄5 + x̄6 + x̄7 + x̄8): 4 products of 5 literals.
	checkComplement(t, f, g)
	if g.NumProducts() != 4 {
		t.Errorf("complement products = %d, want 4\n%v", g.NumProducts(), g)
	}
}

func TestComplementEdgeCases(t *testing.T) {
	empty := NewCover(3, 1)
	g := empty.Complement()
	if !g.IsTautology() {
		t.Error("complement of constant 0 must be constant 1")
	}
	universe := MustParseCover(3, 1, "---")
	h := universe.Complement()
	if !h.IsEmpty() {
		t.Errorf("complement of constant 1 must be empty, got %v", h)
	}
	single := MustParseCover(3, 1, "101")
	s := single.Complement()
	checkComplement(t, single, s)
	if s.NumProducts() != 3 {
		t.Errorf("De Morgan of a 3-literal product should give 3 cubes, got %d", s.NumProducts())
	}
}

func TestComplementRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		c := randomSingleOutput(rng, n, 1+rng.Intn(10))
		checkComplement(t, c, c.Complement())
	}
}

func TestDoubleComplementIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		c := randomSingleOutput(rng, n, 1+rng.Intn(8))
		cc := c.Complement().Complement()
		ok, err := Equivalent(c, cc, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("double complement changed the function:\n%v\nvs\n%v", c, cc)
		}
	}
}

func TestComplementPanicsOnMultiOutput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Complement on a multi-output cover must panic")
		}
	}()
	NewCover(3, 2).Complement()
}

func TestComplementAll(t *testing.T) {
	f := MustParseCover(3, 2,
		"10- 10",
		"-01 11",
		"0-0 01",
	)
	g := f.ComplementAll()
	if g.NumOut != 2 {
		t.Fatalf("ComplementAll outputs = %d, want 2", g.NumOut)
	}
	for i := uint64(0); i < 8; i++ {
		x := AssignmentFromIndex(i, 3)
		fy, gy := f.Eval(x), g.Eval(x)
		for j := 0; j < 2; j++ {
			if fy[j] == gy[j] {
				t.Fatalf("output %d not complemented at %v", j, x)
			}
		}
	}
}

func TestCoversCube(t *testing.T) {
	f := MustParseCover(3, 1, "1--", "01-")
	in, _ := ParseCube("11-", 3, 1)
	if !f.CoversCube(in) {
		t.Error("f covers 11-")
	}
	out, _ := ParseCube("00-", 3, 1)
	if f.CoversCube(out) {
		t.Error("f does not cover 00-")
	}
}

func TestSharp(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		c := randomSingleOutput(rng, n, 1+rng.Intn(6))
		cube := NewCube(n, 1)
		cube.Out[0] = true
		for i := range cube.In {
			cube.In[i] = LitVal(rng.Intn(3))
		}
		d := c.Sharp(cube)
		for i := uint64(0); i < 1<<uint(n); i++ {
			x := AssignmentFromIndex(i, n)
			want := c.EvalOutput(0, x) && !cube.EvalInput(x)
			if got := d.EvalOutput(0, x); got != want {
				t.Fatalf("sharp mismatch at %v: got %v want %v\ncover:\n%v\ncube: %v",
					x, got, want, c, cube)
			}
		}
	}
}

// checkComplement verifies g == NOT f exhaustively.
func checkComplement(t *testing.T, f, g *Cover) {
	t.Helper()
	size := uint64(1) << uint(f.NumIn)
	for i := uint64(0); i < size; i++ {
		x := AssignmentFromIndex(i, f.NumIn)
		if f.EvalOutput(0, x) == g.EvalOutput(0, x) {
			t.Fatalf("complement not disjoint/covering at %v\nf:\n%v\ng:\n%v", x, f, g)
		}
	}
}

func randomSingleOutput(rng *rand.Rand, nIn, nCubes int) *Cover {
	c := NewCover(nIn, 1)
	for k := 0; k < nCubes; k++ {
		cube := NewCube(nIn, 1)
		cube.Out[0] = true
		for i := range cube.In {
			// Bias toward don't cares to get interesting overlaps.
			switch rng.Intn(4) {
			case 0:
				cube.In[i] = LitNeg
			case 1:
				cube.In[i] = LitPos
			default:
				cube.In[i] = LitDC
			}
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}
