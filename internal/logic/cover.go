package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Cover is a multi-output sum-of-products: a list of cubes over NumIn input
// variables and NumOut outputs. Output j computes the OR of the products of
// all cubes whose Out[j] bit is set.
type Cover struct {
	NumIn  int
	NumOut int
	Cubes  []Cube
}

// NewCover returns an empty cover (constant 0 on every output).
func NewCover(nIn, nOut int) *Cover {
	return &Cover{NumIn: nIn, NumOut: nOut}
}

// ParseCover builds a cover from PLA-style rows. Rows may omit the output
// part when nOut == 1.
func ParseCover(nIn, nOut int, rows ...string) (*Cover, error) {
	c := NewCover(nIn, nOut)
	for _, r := range rows {
		cube, err := ParseCube(r, nIn, nOut)
		if err != nil {
			return nil, err
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c, nil
}

// MustParseCover is ParseCover that panics on malformed input; intended for
// tests and package-internal literals.
func MustParseCover(nIn, nOut int, rows ...string) *Cover {
	c, err := ParseCover(nIn, nOut, rows...)
	if err != nil {
		panic(err)
	}
	return c
}

// Clone returns a deep copy of the cover.
func (c *Cover) Clone() *Cover {
	d := NewCover(c.NumIn, c.NumOut)
	d.Cubes = make([]Cube, len(c.Cubes))
	for i, cube := range c.Cubes {
		d.Cubes[i] = cube.Clone()
	}
	return d
}

// AddCube appends a cube; the cube must have matching dimensions.
func (c *Cover) AddCube(cube Cube) error {
	if len(cube.In) != c.NumIn || len(cube.Out) != c.NumOut {
		return fmt.Errorf("logic: cube dimensions %dx%d do not match cover %dx%d",
			len(cube.In), len(cube.Out), c.NumIn, c.NumOut)
	}
	c.Cubes = append(c.Cubes, cube)
	return nil
}

// Eval computes all outputs for the input assignment x.
func (c *Cover) Eval(x []bool) []bool {
	y := make([]bool, c.NumOut)
	for _, cube := range c.Cubes {
		if !cube.EvalInput(x) {
			continue
		}
		for j, b := range cube.Out {
			if b {
				y[j] = true
			}
		}
	}
	return y
}

// EvalOutput computes a single output for the input assignment x.
func (c *Cover) EvalOutput(j int, x []bool) bool {
	for _, cube := range c.Cubes {
		if cube.Out[j] && cube.EvalInput(x) {
			return true
		}
	}
	return false
}

// OutputCover extracts the single-output cover of output j: all cubes that
// belong to output j, re-labelled as a 1-output function.
func (c *Cover) OutputCover(j int) *Cover {
	d := NewCover(c.NumIn, 1)
	for _, cube := range c.Cubes {
		if !cube.Out[j] {
			continue
		}
		nc := Cube{In: append([]LitVal(nil), cube.In...), Out: []bool{true}}
		d.Cubes = append(d.Cubes, nc)
	}
	return d
}

// MergeOutputs assembles a multi-output cover from per-output single-output
// covers, sharing identical products across outputs. All inputs must agree
// on NumIn.
func MergeOutputs(perOut []*Cover) (*Cover, error) {
	if len(perOut) == 0 {
		return nil, fmt.Errorf("logic: MergeOutputs needs at least one cover")
	}
	nIn := perOut[0].NumIn
	nOut := len(perOut)
	merged := NewCover(nIn, nOut)
	index := map[string]int{} // product pattern -> cube index in merged
	for j, oc := range perOut {
		if oc.NumIn != nIn {
			return nil, fmt.Errorf("logic: output %d has %d inputs, want %d", j, oc.NumIn, nIn)
		}
		if oc.NumOut != 1 {
			return nil, fmt.Errorf("logic: output %d cover is not single-output", j)
		}
		for _, cube := range oc.Cubes {
			key := inputKey(cube.In)
			if k, ok := index[key]; ok {
				merged.Cubes[k].Out[j] = true
				continue
			}
			nc := NewCube(nIn, nOut)
			copy(nc.In, cube.In)
			nc.Out[j] = true
			index[key] = len(merged.Cubes)
			merged.Cubes = append(merged.Cubes, nc)
		}
	}
	return merged, nil
}

func inputKey(in []LitVal) string {
	b := make([]byte, len(in))
	for i, v := range in {
		b[i] = byte('0' + v)
	}
	return string(b)
}

// NumProducts reports the number of distinct product terms (cubes).
func (c *Cover) NumProducts() int { return len(c.Cubes) }

// TotalLiterals reports the total literal count across all cubes, the usual
// two-level cost metric.
func (c *Cover) TotalLiterals() int {
	n := 0
	for _, cube := range c.Cubes {
		n += cube.NumLiterals()
	}
	return n
}

// IsEmpty reports whether the cover has no cubes (constant 0).
func (c *Cover) IsEmpty() bool { return len(c.Cubes) == 0 }

// RemoveDuplicates deletes cubes whose input part and output part are both
// identical to an earlier cube's.
func (c *Cover) RemoveDuplicates() {
	seen := map[string]bool{}
	out := c.Cubes[:0]
	for _, cube := range c.Cubes {
		key := cube.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, cube)
	}
	c.Cubes = out
}

// SingleOutputContained deletes cubes (of a single-output cover) that are
// contained in another single cube of the cover.
func (c *Cover) SingleOutputContained() {
	keep := c.Cubes[:0]
	for i, cube := range c.Cubes {
		contained := false
		for k, other := range c.Cubes {
			if i == k {
				continue
			}
			if other.ContainsCube(cube) {
				// Break ties deterministically: drop the later, or the one
				// with more literals when mutual containment (duplicates).
				if !cube.ContainsCube(other) || k < i {
					contained = true
					break
				}
			}
		}
		if !contained {
			keep = append(keep, cube)
		}
	}
	c.Cubes = keep
}

// SortCubes orders cubes deterministically (by string form); useful for
// reproducible output and comparisons.
func (c *Cover) SortCubes() {
	sort.Slice(c.Cubes, func(i, k int) bool {
		return c.Cubes[i].String() < c.Cubes[k].String()
	})
}

// String renders the cover as newline-separated PLA rows.
func (c *Cover) String() string {
	var b strings.Builder
	for i, cube := range c.Cubes {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(cube.String())
	}
	return b.String()
}

// Cofactor returns the cover cofactored against cube p: the Shannon cofactor
// of the function with respect to the assignment p fixes.
func (c *Cover) Cofactor(p Cube) *Cover {
	d := NewCover(c.NumIn, c.NumOut)
	for _, cube := range c.Cubes {
		if r, ok := cube.CofactorCube(p); ok {
			d.Cubes = append(d.Cubes, r)
		}
	}
	return d
}

// CofactorVar returns the cofactor with respect to variable i set to the
// given polarity (true = positive).
func (c *Cover) CofactorVar(i int, positive bool) *Cover {
	p := NewCube(c.NumIn, c.NumOut)
	if positive {
		p.In[i] = LitPos
	} else {
		p.In[i] = LitNeg
	}
	return c.Cofactor(p)
}
