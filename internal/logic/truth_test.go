package logic

import (
	"math/rand"
	"testing"
)

func TestAssignmentFromIndex(t *testing.T) {
	x := AssignmentFromIndex(5, 4) // 0b0101
	want := []bool{true, false, true, false}
	if !equalBools(x, want) {
		t.Errorf("AssignmentFromIndex(5,4) = %v, want %v", x, want)
	}
}

func TestTruthTableFig3(t *testing.T) {
	f := fig3Cover()
	tt := f.TruthTable(0)
	if len(tt) != 256 {
		t.Fatalf("truth table length = %d, want 256", len(tt))
	}
	// f is 0 only when x1..x4 are 0 and x5..x8 are not all 1:
	// 2^4 - 1 = 15 zero points.
	zeros := 0
	for _, b := range tt {
		if !b {
			zeros++
		}
	}
	if zeros != 15 {
		t.Errorf("zero count = %d, want 15", zeros)
	}
}

func TestTruthTablePanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TruthTable must panic above MaxExhaustiveInputs")
		}
	}()
	NewCover(MaxExhaustiveInputs+1, 1).TruthTable(0)
}

func TestEquivalentDimensionMismatch(t *testing.T) {
	if _, err := Equivalent(NewCover(3, 1), NewCover(4, 1), 0, nil); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestEquivalentSampled(t *testing.T) {
	a := NewCover(25, 1)
	cube := NewCube(25, 1)
	cube.Out[0] = true
	cube.In[0] = LitPos
	a.Cubes = append(a.Cubes, cube)
	b := a.Clone()
	rng := rand.New(rand.NewSource(3))
	ok, err := Equivalent(a, b, 200, rng)
	if err != nil || !ok {
		t.Errorf("identical large covers should sample as equivalent (ok=%v err=%v)", ok, err)
	}
	if _, err := Equivalent(a, b, 200, nil); err == nil {
		t.Error("sampling without rng should error")
	}
}

func TestFromTruthTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		tt := make([]bool, 1<<uint(n))
		for i := range tt {
			tt[i] = rng.Intn(2) == 1
		}
		c, err := FromTruthTable(n, tt)
		if err != nil {
			t.Fatal(err)
		}
		got := c.TruthTable(0)
		if !equalBools(tt, got) {
			t.Fatalf("round trip failed for n=%d", n)
		}
	}
}

func TestFromTruthTableBadLength(t *testing.T) {
	if _, err := FromTruthTable(3, make([]bool, 7)); err == nil {
		t.Error("bad table length should error")
	}
}

func TestOnSetSize(t *testing.T) {
	f := fig3Cover()
	if n := f.OnSetSize(0); n != 256-15 {
		t.Errorf("OnSetSize = %d, want %d", n, 256-15)
	}
}
