// Package munkres implements Munkres' assignment algorithm (the Hungarian
// method, O(n³)), the exact zero-cost row-assignment engine of the paper's
// defect-tolerant mapping flow [Munkres 1957].
//
// The paper uses it in two places: the exact algorithm (EA) assigns every
// function-matrix row to a crossbar row, and the hybrid algorithm (HBA)
// assigns only the output rows after the heuristic has placed the products.
package munkres

import (
	"fmt"
	"math"
)

// Solver runs the assignment algorithm with reusable internal buffers, so a
// hot loop (the Monte Carlo yield trials) can solve thousands of instances
// without allocating. The zero value is ready to use; a Solver must not be
// shared between goroutines. Results are identical to the package-level
// Solve / SolveBinary, which are thin wrappers over a fresh Solver.
type Solver struct {
	u, v, minv []float64
	p, way     []int
	used       []bool
	assignment []int
	cost       [][]float64
	costCells  []float64
}

// Solve finds a minimum-cost assignment of rows to columns of the cost
// matrix. The matrix may be rectangular with rows <= cols; every row is
// assigned a distinct column. It returns the column chosen for each row and
// the total cost.
//
// All costs must be finite and non-negative.
func Solve(cost [][]float64) (assignment []int, total float64, err error) {
	var s Solver
	return s.Solve(cost)
}

// Solve is the buffer-reusing form of the package-level Solve. The returned
// assignment aliases the Solver's scratch storage and is only valid until
// the next call on the same Solver.
func (s *Solver) Solve(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("munkres: ragged cost matrix at row %d", i)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, 0, fmt.Errorf("munkres: invalid cost %v at (%d,%d)", v, i, j)
			}
		}
	}
	if n > m {
		return nil, 0, fmt.Errorf("munkres: %d rows exceed %d columns; no complete assignment exists", n, m)
	}

	// Jonker-style O(n³) shortest augmenting path formulation of the
	// Hungarian method with row/column potentials. Columns and rows are
	// 1-indexed internally; index 0 is the virtual source.
	const inf = math.MaxFloat64
	u := growFloats(&s.u, n+1)   // row potentials
	v := growFloats(&s.v, m+1)   // column potentials
	p := growInts(&s.p, m+1)     // p[j] = row assigned to column j (0 = none)
	way := growInts(&s.way, m+1) // augmenting-path predecessors
	minv := growFloats(&s.minv, m+1)
	used := s.growUsed(m + 1)
	for j := range u {
		u[j] = 0
	}
	for j := range v {
		v[j] = 0
		p[j] = 0
	}

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assignment = growInts(&s.assignment, n)
	for i := range assignment {
		assignment[i] = 0
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][assignment[i]]
	}
	return assignment, total, nil
}

// SolveBinary runs Solve on a 0/1 matching matrix (false = a zero-cost valid
// pairing, true = cost 1 / forbidden) and reports whether a complete
// zero-cost assignment exists. This is exactly the validity test of the
// paper's Fig. 8(d): cost 0 means every function row landed on a compatible
// crossbar row.
func SolveBinary(forbidden [][]bool) (assignment []int, ok bool, err error) {
	var s Solver
	return s.SolveBinary(forbidden)
}

// SolveBinary is the buffer-reusing form of the package-level SolveBinary;
// the returned assignment aliases the Solver's scratch storage.
func (s *Solver) SolveBinary(forbidden [][]bool) (assignment []int, ok bool, err error) {
	n := len(forbidden)
	m := 0
	if n > 0 {
		m = len(forbidden[0])
	}
	if cap(s.cost) < n {
		s.cost = make([][]float64, n)
	}
	cost := s.cost[:n]
	if cap(s.costCells) < n*m {
		s.costCells = make([]float64, n*m)
	}
	cells := s.costCells[:n*m]
	for i, row := range forbidden {
		if len(row) != m {
			return nil, false, fmt.Errorf("munkres: ragged cost matrix at row %d", i)
		}
		cost[i] = cells[i*m : (i+1)*m]
		for j, bad := range row {
			if bad {
				cost[i][j] = 1
			} else {
				cost[i][j] = 0
			}
		}
	}
	assignment, total, err := s.Solve(cost)
	if err != nil {
		return nil, false, err
	}
	return assignment, total == 0, nil
}

// growFloats / growInts / growUsed resize a scratch slice without zeroing
// (callers reinitialize the prefix they use).
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func (s *Solver) growUsed(n int) []bool {
	if cap(s.used) < n {
		s.used = make([]bool, n)
	}
	s.used = s.used[:n]
	return s.used
}
