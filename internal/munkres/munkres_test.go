package munkres

import (
	"math/rand"
	"testing"
)

func TestSolveKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total = %v, want 5 (assignment %v)", total, assign)
	}
	checkPermutation(t, assign, 3)
}

func TestSolveIdentity(t *testing.T) {
	n := 6
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 10
			}
		}
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total = %v, want 0", total)
	}
	for i, j := range assign {
		if i != j {
			t.Errorf("assign[%d] = %d, want identity", i, j)
		}
	}
}

func TestSolveRectangular(t *testing.T) {
	cost := [][]float64{
		{5, 1, 9, 4},
		{8, 7, 3, 2},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 { // columns 1 and 3
		t.Errorf("total = %v, want 3 (assignment %v)", total, assign)
	}
	if assign[0] == assign[1] {
		t.Error("columns must be distinct")
	}
}

func TestSolveErrors(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should error")
	}
	if _, _, err := Solve([][]float64{{-1}}); err == nil {
		t.Error("negative cost should error")
	}
	if _, _, err := Solve([][]float64{{1}, {2}}); err == nil {
		t.Error("more rows than columns should error")
	}
	assign, total, err := Solve(nil)
	if err != nil || assign != nil || total != 0 {
		t.Error("empty problem should be trivially solved")
	}
}

// TestSolveAgainstBruteForce cross-checks optimality on random instances.
func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(20))
			}
		}
		_, total, err := Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		if best := bruteForce(cost); total != best {
			t.Fatalf("n=%d: Solve=%v brute=%v cost=%v", n, total, best, cost)
		}
	}
}

func TestSolveBinaryFeasible(t *testing.T) {
	forbidden := [][]bool{
		{true, false, true},
		{false, true, true},
		{true, true, false},
	}
	assign, ok, err := SolveBinary(forbidden)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a zero-cost assignment exists")
	}
	want := []int{1, 0, 2}
	for i := range want {
		if assign[i] != want[i] {
			t.Errorf("assign = %v, want %v", assign, want)
			break
		}
	}
}

func TestSolveBinaryInfeasible(t *testing.T) {
	// Two rows compete for the single allowed column 0.
	forbidden := [][]bool{
		{false, true},
		{false, true},
	}
	_, ok, err := SolveBinary(forbidden)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("no zero-cost assignment exists")
	}
}

// Property: the result is always a permutation with distinct columns, and
// perturbing any two rows' columns never improves the cost (local check).
func TestSolvePermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		m := n + rng.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(50))
			}
		}
		assign, total, err := Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		var sum float64
		for i, j := range assign {
			if j < 0 || j >= m || seen[j] {
				t.Fatalf("invalid assignment %v", assign)
			}
			seen[j] = true
			sum += cost[i][j]
		}
		if sum != total {
			t.Fatalf("reported total %v != recomputed %v", total, sum)
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				swapped := total - cost[a][assign[a]] - cost[b][assign[b]] +
					cost[a][assign[b]] + cost[b][assign[a]]
				if swapped < total {
					t.Fatalf("2-swap improves cost: %v < %v", swapped, total)
				}
			}
		}
	}
}

func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := -1.0
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var s float64
			for i, j := range perm {
				s += cost[i][j]
			}
			if best < 0 || s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func checkPermutation(t *testing.T, assign []int, m int) {
	t.Helper()
	seen := map[int]bool{}
	for _, j := range assign {
		if j < 0 || j >= m || seen[j] {
			t.Fatalf("assignment %v is not a valid selection of %d columns", assign, m)
		}
		seen[j] = true
	}
}
