package munkres

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the Munkres total never exceeds the cost of any random
// permutation (optimality against arbitrary witnesses).
func TestSolveNotWorseThanRandomPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	f := func(raw [16]uint8, permSeed int64) bool {
		n := 4
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(raw[i*n+j] % 50)
			}
		}
		_, total, err := Solve(cost)
		if err != nil {
			return false
		}
		perm := rand.New(rand.NewSource(permSeed)).Perm(n)
		var witness float64
		for i, j := range perm {
			witness += cost[i][j]
		}
		return total <= witness
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: adding a constant to one row shifts the optimal total by
// exactly that constant (row potentials are gauge freedoms).
func TestSolveRowShiftInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(607))}
	f := func(raw [9]uint8, shift uint8) bool {
		n := 3
		base := make([][]float64, n)
		shifted := make([][]float64, n)
		for i := range base {
			base[i] = make([]float64, n)
			shifted[i] = make([]float64, n)
			for j := range base[i] {
				base[i][j] = float64(raw[i*n+j] % 30)
				shifted[i][j] = base[i][j]
				if i == 0 {
					shifted[i][j] += float64(shift % 20)
				}
			}
		}
		_, t1, err1 := Solve(base)
		_, t2, err2 := Solve(shifted)
		if err1 != nil || err2 != nil {
			return false
		}
		return t2 == t1+float64(shift%20)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
