package faultsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/defect"
	"repro/internal/logic"
	"repro/internal/synth"
	"repro/internal/xbar"
)

func fig3() *logic.Cover {
	return logic.MustParseCover(8, 1,
		"1-------", "-1------", "--1-----", "---1----", "----1111")
}

func TestCampaignFig3(t *testing.T) {
	f := fig3()
	l, err := xbar.NewTwoLevel(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(l, func(x []bool) []bool { return f.Eval(x) }, Options{
		Inputs:        xbar.AllAssignments(8),
		KeepWitnesses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 2*l.Rows*l.Cols {
		t.Fatalf("injected = %d, want %d", res.Injected, 2*l.Rows*l.Cols)
	}
	// Every stuck-open fault on an active device of this irredundant cover
	// is critical, and every one on a disabled device is benign, so the
	// open critical fraction equals the inclusion ratio exactly.
	want := l.InclusionRatio()
	if got := res.OpenCriticalFraction(); math.Abs(got-want) > 1e-9 {
		t.Errorf("open critical fraction = %v, want IR %v", got, want)
	}
	// Stuck-closed faults poison a full row and column; on this layout
	// every row computes logic, so they must all be critical.
	if got := res.ClosedCriticalFraction(); got != 1 {
		t.Errorf("closed critical fraction = %v, want 1", got)
	}
	for _, fault := range res.Faults {
		if fault.Verdict == Critical && fault.FailingInput == nil {
			t.Fatal("critical fault missing its witness")
		}
		if fault.Verdict == Benign && fault.FailingInput != nil {
			t.Fatal("benign fault has a witness")
		}
	}
}

func TestCampaignMatchesMappingModel(t *testing.T) {
	// The mapping algorithms assume stuck-open is benign exactly on
	// disabled devices; the simulator-backed campaign must agree on random
	// irredundant covers.
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(3)
		f := logic.NewCover(n, 1)
		seen := map[string]bool{}
		for len(f.Cubes) < 3 {
			cube := logic.NewCube(n, 1)
			cube.Out[0] = true
			for i := range cube.In {
				cube.In[i] = logic.LitVal(rng.Intn(3))
			}
			if cube.NumLiterals() == 0 {
				continue
			}
			if seen[cube.String()] {
				continue
			}
			seen[cube.String()] = true
			f.Cubes = append(f.Cubes, cube)
		}
		f.SingleOutputContained()
		l, err := xbar.NewTwoLevel(f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(l, func(x []bool) []bool { return f.Eval(x) }, Options{
			Inputs:     xbar.AllAssignments(n),
			InjectOpen: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, fault := range res.Faults {
			active := l.Active[fault.Row][fault.Col]
			if !active && fault.Verdict == Critical {
				t.Fatalf("open fault on a disabled device (%d,%d) cannot be critical",
					fault.Row, fault.Col)
			}
			// Active devices may be benign when the cover is redundant;
			// criticality implies activity, not vice versa.
		}
	}
}

func TestCampaignMultiLevel(t *testing.T) {
	f := fig3()
	nw, err := synth.SynthesizeMultiLevel(f, synth.MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := xbar.NewMultiLevel(nw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(l, func(x []bool) []bool { return f.Eval(x) }, Options{
		Inputs:     xbar.AllAssignments(8),
		InjectOpen: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalOpen == 0 {
		t.Error("multi-level campaign found no critical faults")
	}
	if got, want := res.OpenCriticalFraction(), l.InclusionRatio(); math.Abs(got-want) > 1e-9 {
		t.Errorf("multi-level open critical fraction %v != IR %v", got, want)
	}
}

func TestCampaignOptions(t *testing.T) {
	f := fig3()
	l, _ := xbar.NewTwoLevel(f)
	if _, err := Run(l, func(x []bool) []bool { return f.Eval(x) }, Options{}); err == nil {
		t.Error("missing probe inputs must fail")
	}
	res, err := Run(l, func(x []bool) []bool { return f.Eval(x) }, Options{
		Inputs:       xbar.AllAssignments(8)[:16],
		InjectClosed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalOpen+res.BenignOpen != 0 {
		t.Error("open faults must not be injected when only closed selected")
	}
	if res.Injected != l.Rows*l.Cols {
		t.Errorf("injected = %d, want %d", res.Injected, l.Rows*l.Cols)
	}
	if Benign.String() != "benign" || Critical.String() != "critical" {
		t.Error("Verdict.String wrong")
	}
	_ = defect.OK // document the defect dependency explicitly
}
