// Package faultsim runs exhaustive single-fault injection campaigns on
// crossbar layouts: every crosspoint is given each stuck-at fault in turn
// and the fabric is re-simulated to classify the fault as benign or
// critical. The campaign connects the paper's Inclusion Ratio to fault
// sensitivity — IR is exactly the fraction of crosspoints whose stuck-open
// failure can matter — and provides ground truth for the mapping
// algorithms' defect model (stuck-open on a disabled device is always
// benign, stuck-closed is almost always fatal).
package faultsim

import (
	"fmt"

	"repro/internal/defect"
	"repro/internal/xbar"
)

// Verdict classifies one injected fault.
type Verdict uint8

const (
	// Benign means the fabric still computes the function on every probed
	// input.
	Benign Verdict = iota
	// Critical means at least one probed input mis-computes.
	Critical
)

// String names the verdict.
func (v Verdict) String() string {
	if v == Benign {
		return "benign"
	}
	return "critical"
}

// Fault is one injected fault and its verdict.
type Fault struct {
	Row, Col int
	Kind     defect.Kind
	Verdict  Verdict
	// FailingInput is a witness assignment for critical faults (nil for
	// benign ones).
	FailingInput []bool
}

// Result summarizes a campaign.
type Result struct {
	Faults []Fault
	// Injected counts injected faults; CriticalOpen / CriticalClosed and
	// the benign counterparts partition them by kind.
	Injected       int
	CriticalOpen   int
	BenignOpen     int
	CriticalClosed int
	BenignClosed   int
}

// OpenCriticalFraction is the fraction of stuck-open injections that were
// critical; for a layout with no logical redundancy it approaches the
// inclusion ratio.
func (r Result) OpenCriticalFraction() float64 {
	total := r.CriticalOpen + r.BenignOpen
	if total == 0 {
		return 0
	}
	return float64(r.CriticalOpen) / float64(total)
}

// ClosedCriticalFraction is the fraction of stuck-closed injections that
// were critical.
func (r Result) ClosedCriticalFraction() float64 {
	total := r.CriticalClosed + r.BenignClosed
	if total == 0 {
		return 0
	}
	return float64(r.CriticalClosed) / float64(total)
}

// Options tunes a campaign.
type Options struct {
	// Inputs are the probe assignments; use xbar.AllAssignments for
	// exhaustive campaigns on small functions.
	Inputs [][]bool
	// InjectOpen / InjectClosed select the fault kinds; both default true
	// when neither is set.
	InjectOpen   bool
	InjectClosed bool
	// KeepWitnesses stores a failing input per critical fault.
	KeepWitnesses bool
}

// Run injects every selected single fault into the layout (placed with the
// identity assignment on an otherwise clean fabric) and classifies it by
// simulation against eval.
func Run(l *xbar.Layout, eval func(x []bool) []bool, opt Options) (Result, error) {
	if len(opt.Inputs) == 0 {
		return Result{}, fmt.Errorf("faultsim: no probe inputs")
	}
	if !opt.InjectOpen && !opt.InjectClosed {
		opt.InjectOpen, opt.InjectClosed = true, true
	}
	var kinds []defect.Kind
	if opt.InjectOpen {
		kinds = append(kinds, defect.StuckOpen)
	}
	if opt.InjectClosed {
		kinds = append(kinds, defect.StuckClosed)
	}
	var res Result
	for r := 0; r < l.Rows; r++ {
		for c := 0; c < l.Cols; c++ {
			for _, k := range kinds {
				dm := defect.NewMap(l.Rows, l.Cols)
				dm.Set(r, c, k)
				witness, err := probe(l, eval, dm, opt.Inputs)
				if err != nil {
					return Result{}, err
				}
				f := Fault{Row: r, Col: c, Kind: k}
				if witness != nil {
					f.Verdict = Critical
					if opt.KeepWitnesses {
						f.FailingInput = witness
					}
				}
				res.Injected++
				switch {
				case k == defect.StuckOpen && f.Verdict == Critical:
					res.CriticalOpen++
				case k == defect.StuckOpen:
					res.BenignOpen++
				case f.Verdict == Critical:
					res.CriticalClosed++
				default:
					res.BenignClosed++
				}
				res.Faults = append(res.Faults, f)
			}
		}
	}
	return res, nil
}

// probe simulates the faulty fabric on every input and returns a failing
// assignment, checking both fabric outputs: f must equal the function and
// f̄ its complement (the crossbar contract delivers both polarities).
func probe(l *xbar.Layout, eval func(x []bool) []bool, dm *defect.Map, inputs [][]bool) ([]bool, error) {
	for _, x := range inputs {
		res, err := l.SimulateMapped(x, dm, nil)
		if err != nil {
			return nil, err
		}
		want := eval(x)
		for j := range want {
			if res.F[j] != want[j] || res.FBar[j] == want[j] {
				return x, nil
			}
		}
	}
	return nil, nil
}
