package xbar

// Timing and energy estimation for crossbar designs. The paper's multi-level
// design trades area for computation cycles ("minterm dependent computation
// cycles": gates evaluate one by one, with an extra CR state per multi-level
// connection), so a fair comparison needs the schedule length alongside the
// area. Energy is a first-order device-event count: every programmed switch
// toggles at most twice per computation (initialize + configure/evaluate).

// TimingModel carries per-state controller costs in arbitrary time units.
// The zero value is not useful; DefaultTimingModel matches a uniform-cost
// controller (every state takes one cycle).
type TimingModel struct {
	INA float64 // initialize all devices to R_OFF
	RI  float64 // receive inputs into the input latch
	CFM float64 // configure minterms (copy latch values)
	EVM float64 // evaluate one NAND line (two-level: all lines at once)
	CR  float64 // copy one gate result to its connection column
	EVR float64 // evaluate the AND plane
	INR float64 // invert results
	SO  float64 // send outputs
}

// DefaultTimingModel charges one cycle per controller state.
func DefaultTimingModel() TimingModel {
	return TimingModel{INA: 1, RI: 1, CFM: 1, EVM: 1, CR: 1, EVR: 1, INR: 1, SO: 1}
}

// Schedule describes the controller schedule of one computation.
type Schedule struct {
	// Cycles is the number of controller states executed.
	Cycles int
	// Time is the weighted schedule length under the timing model.
	Time float64
	// EVMSteps counts NAND evaluation states (1 for two-level; one per gate
	// for multi-level).
	EVMSteps int
	// CRSteps counts copy-result states (multi-level only).
	CRSteps int
}

// ScheduleFor computes the schedule the layout needs for one computation.
// Two-level designs follow the 7-state machine of Fig. 2(b); multi-level
// designs follow Fig. 4(b), evaluating gates sequentially with a CR state
// after every gate that feeds a connection column.
func (l *Layout) ScheduleFor(m TimingModel) Schedule {
	s := Schedule{}
	add := func(w float64) {
		s.Cycles++
		s.Time += w
	}
	add(m.INA)
	add(m.RI)
	add(m.CFM)
	if l.MultiLevel {
		wires := 0
		for _, d := range l.WireDriver {
			if d >= 0 {
				wires++
			}
		}
		for range l.GateOrder {
			add(m.EVM)
			s.EVMSteps++
		}
		for i := 0; i < wires; i++ {
			add(m.CR)
			s.CRSteps++
		}
	} else {
		add(m.EVM)
		s.EVMSteps++
		add(m.EVR)
	}
	add(m.INR)
	add(m.SO)
	return s
}

// EnergyModel carries per-event device energies in arbitrary energy units.
type EnergyModel struct {
	// Reset is the cost of initializing one device to R_OFF (INA touches
	// every device in the array, defective or not).
	Reset float64
	// Program is the cost of configuring one active device.
	Program float64
	// Evaluate is the cost of one device participating in a NAND/AND
	// evaluation.
	Evaluate float64
}

// DefaultEnergyModel charges one unit per device event.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{Reset: 1, Program: 1, Evaluate: 1}
}

// Energy estimates the per-computation energy of the layout: a reset for
// every crosspoint, programming for every active device, and an evaluation
// event for every active device read during EVM/EVR.
func (l *Layout) Energy(m EnergyModel) float64 {
	devices := float64(l.Devices())
	return m.Reset*float64(l.Area()) + m.Program*devices + m.Evaluate*devices
}

// AreaDelayProduct is the classical area×delay figure of merit under the
// default timing model, letting the two design styles be ranked on a single
// axis (the paper compares area only and flags latency as the multi-level
// disadvantage).
func (l *Layout) AreaDelayProduct() float64 {
	s := l.ScheduleFor(DefaultTimingModel())
	return float64(l.Area()) * s.Time
}
