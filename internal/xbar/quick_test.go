package xbar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// Property: the two-level layout always satisfies the paper's geometry
// formula rows = P+O, cols = 2I+2O, and its device count decomposes as
// literals + product-output links + 2 per output.
func TestTwoLevelGeometryProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(701))}
	f := func(rawIn [4][5]uint8, rawOut [4]uint8) bool {
		nIn, nOut := 5, 2
		c := logic.NewCover(nIn, nOut)
		for k := 0; k < 4; k++ {
			cube := logic.NewCube(nIn, nOut)
			for i := 0; i < nIn; i++ {
				cube.In[i] = logic.LitVal(rawIn[k][i] % 3)
			}
			cube.Out[0] = rawOut[k]&1 != 0
			cube.Out[1] = rawOut[k]&2 != 0
			if !cube.Out[0] && !cube.Out[1] {
				cube.Out[0] = true
			}
			c.Cubes = append(c.Cubes, cube)
		}
		l, err := NewTwoLevel(c)
		if err != nil {
			return false
		}
		if l.Rows != c.NumProducts()+nOut || l.Cols != 2*nIn+2*nOut {
			return false
		}
		devices := 2 * nOut
		for _, cube := range c.Cubes {
			devices += cube.NumLiterals() + cube.NumOutputs()
		}
		return l.Devices() == devices
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: simulation of a freshly placed two-level layout always agrees
// with direct cover evaluation, for arbitrary cube sets and inputs.
func TestTwoLevelSimulationProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(709))}
	f := func(rawIn [3][4]uint8, x [4]bool) bool {
		nIn := 4
		c := logic.NewCover(nIn, 1)
		for k := 0; k < 3; k++ {
			cube := logic.NewCube(nIn, 1)
			cube.Out[0] = true
			for i := 0; i < nIn; i++ {
				cube.In[i] = logic.LitVal(rawIn[k][i] % 3)
			}
			c.Cubes = append(c.Cubes, cube)
		}
		l, err := NewTwoLevel(c)
		if err != nil {
			return false
		}
		res, err := l.Simulate(x[:])
		if err != nil {
			return false
		}
		want := c.EvalOutput(0, x[:])
		return res.F[0] == want && res.FBar[0] == !want
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the inclusion ratio is always in (0, 1] for non-empty layouts,
// and rendering never panics and reflects the device count.
func TestLayoutInvariantsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(719))}
	f := func(rawIn [2][3]uint8) bool {
		c := logic.NewCover(3, 1)
		for k := 0; k < 2; k++ {
			cube := logic.NewCube(3, 1)
			cube.Out[0] = true
			for i := 0; i < 3; i++ {
				cube.In[i] = logic.LitVal(rawIn[k][i] % 3)
			}
			c.Cubes = append(c.Cubes, cube)
		}
		l, err := NewTwoLevel(c)
		if err != nil {
			return false
		}
		ir := l.InclusionRatio()
		if ir <= 0 || ir > 1 {
			return false
		}
		rendered := l.Render()
		hashes := 0
		for _, r := range rendered {
			if r == '#' {
				hashes++
			}
		}
		return hashes == l.Devices()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
