// Package xbar models the memristive crossbar fabric of the paper: the
// physical array geometry, the placement of a two-level (NAND–AND plane) or
// multi-level (NAND network with connection columns) design onto it, and a
// functional simulator for the controller state machine in the Snider
// Boolean logic model (R_ON = logic 0, R_OFF = logic 1).
package xbar

import (
	"fmt"
	"strings"

	"repro/internal/bitmat"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// RowKind classifies a horizontal line of a layout.
type RowKind uint8

const (
	// RowProduct computes the NAND of its connected literal columns
	// (a minterm line of the two-level design).
	RowProduct RowKind = iota
	// RowGate computes one NAND gate of a multi-level design.
	RowGate
	// RowOutput is the inversion line of one output: it reads the output
	// column pair and produces the complementary value.
	RowOutput
)

// ColKind classifies a vertical line of a layout.
type ColKind uint8

const (
	// ColInputPos carries primary input x_i.
	ColInputPos ColKind = iota
	// ColInputNeg carries the complemented input x̄_i.
	ColInputNeg
	// ColWire is a multi-level connection column carrying one gate output.
	ColWire
	// ColFBar carries the AND-plane result f̄_j (two-level) or the
	// complemented output (multi-level inversion result).
	ColFBar
	// ColF carries output f_j.
	ColF
)

// Layout is a logical design placed on crossbar coordinates: which devices
// must be programmed active, plus the metadata needed to simulate it. Row
// order is the canonical function-matrix order (products/gates first, then
// output lines); the defect-tolerant mapper permutes rows onto a physical
// array.
type Layout struct {
	NumIn  int
	NumOut int
	Rows   int
	Cols   int

	RowKinds []RowKind
	ColKinds []ColKind
	// ColIndex gives the input, wire, or output index a column refers to.
	ColIndex []int
	// Active[r][c] reports whether the device at (r,c) must be programmed
	// active; inactive positions must be programmable to disabled (R_OFF).
	Active [][]bool

	// GateOrder lists gate/product rows in evaluation order. For two-level
	// layouts the order is immaterial (all minterms evaluate in one EVM
	// step); for multi-level layouts it is the sequential schedule.
	GateOrder []int
	// WireDriver maps each wire index to the row that drives it (-1 none).
	WireDriver []int
	// OutputDriver maps each output to the product/gate rows feeding its
	// f̄ column (two-level) or the single gate row driving its f column
	// (multi-level).
	OutputDriver [][]int
	// MultiLevel marks the layout style.
	MultiLevel bool

	// packed mirrors Active under the packed-row contract of
	// internal/bitmat; usedCols flags columns with at least one active
	// device. Both are built once by pack() at the end of construction and
	// never mutated afterwards, so concurrent readers (the engine shares one
	// layout across jobs) need no synchronization.
	packed   *bitmat.Matrix
	usedCols bitmat.Row
	// productRows / outputRows cache the row-kind partitions so the mapping
	// hot path doesn't rebuild them per attempt.
	productRows, outputRows []int
}

// pack builds the word-packed mirror of Active and the derived caches.
// Constructors call it last; layouts must not be mutated after construction.
func (l *Layout) pack() {
	l.packed = bitmat.New(l.Rows, l.Cols)
	l.usedCols = bitmat.NewRow(l.Cols)
	for r, row := range l.Active {
		for c, a := range row {
			if a {
				l.packed.Set(r, c)
				l.usedCols.Set(c)
			}
		}
	}
	for r, k := range l.RowKinds {
		if k == RowOutput {
			l.outputRows = append(l.outputRows, r)
		} else {
			l.productRows = append(l.productRows, r)
		}
	}
}

// ActiveRow returns the packed required-active mask of layout row r (the FM
// row of Fig. 8(a)). Read-only view: callers must not mutate it.
//
//xbar:hotpath
func (l *Layout) ActiveRow(r int) bitmat.Row { return l.packed.Row(r) }

// UsedColumns returns the packed mask of columns the layout actually uses
// (read-only view).
func (l *Layout) UsedColumns() bitmat.Row { return l.usedCols }

// PackedWords returns the packed active matrix's backing words row by row,
// the canonical serialization the engine hashes job specs from.
func (l *Layout) PackedWords(fn func(row bitmat.Row)) {
	for r := 0; r < l.Rows; r++ {
		fn(l.packed.Row(r))
	}
}

// colPos computes the canonical column layout
// [x_0..x_{I-1}, x̄_0..x̄_{I-1}, wires..., f̄_0..f̄_{O-1}, f_0..f_{O-1}].
func buildColumns(nIn, nWires, nOut int) ([]ColKind, []int) {
	kinds := make([]ColKind, 0, 2*nIn+nWires+2*nOut)
	index := make([]int, 0, cap(kinds))
	for i := 0; i < nIn; i++ {
		kinds = append(kinds, ColInputPos)
		index = append(index, i)
	}
	for i := 0; i < nIn; i++ {
		kinds = append(kinds, ColInputNeg)
		index = append(index, i)
	}
	for w := 0; w < nWires; w++ {
		kinds = append(kinds, ColWire)
		index = append(index, w)
	}
	for j := 0; j < nOut; j++ {
		kinds = append(kinds, ColFBar)
		index = append(index, j)
	}
	for j := 0; j < nOut; j++ {
		kinds = append(kinds, ColF)
		index = append(index, j)
	}
	return kinds, index
}

// NewTwoLevel places a sum-of-products cover on the two-level NAND–AND
// crossbar of Fig. 3: one product line per cube connecting its literal
// columns and the f̄ column of every output containing it, plus one
// inversion line per output.
func NewTwoLevel(c *logic.Cover) (*Layout, error) {
	if c.NumIn == 0 {
		return nil, fmt.Errorf("xbar: cover has no inputs")
	}
	nP := c.NumProducts()
	l := &Layout{
		NumIn:      c.NumIn,
		NumOut:     c.NumOut,
		Rows:       nP + c.NumOut,
		MultiLevel: false,
	}
	l.ColKinds, l.ColIndex = buildColumns(c.NumIn, 0, c.NumOut)
	l.Cols = len(l.ColKinds)
	l.Active = makeGrid(l.Rows, l.Cols)
	l.RowKinds = make([]RowKind, l.Rows)
	l.OutputDriver = make([][]int, c.NumOut)

	fbarCol := func(j int) int { return 2*c.NumIn + j }
	fCol := func(j int) int { return 2*c.NumIn + c.NumOut + j }

	for r, cube := range c.Cubes {
		l.RowKinds[r] = RowProduct
		l.GateOrder = append(l.GateOrder, r)
		for i, v := range cube.In {
			switch v {
			case logic.LitPos:
				l.Active[r][i] = true
			case logic.LitNeg:
				l.Active[r][c.NumIn+i] = true
			}
		}
		for j, b := range cube.Out {
			if b {
				l.Active[r][fbarCol(j)] = true
				l.OutputDriver[j] = append(l.OutputDriver[j], r)
			}
		}
	}
	for j := 0; j < c.NumOut; j++ {
		r := nP + j
		l.RowKinds[r] = RowOutput
		l.Active[r][fbarCol(j)] = true
		l.Active[r][fCol(j)] = true
	}
	l.pack()
	return l, nil
}

// NewMultiLevel places a NAND network on the multi-level crossbar of
// Fig. 5: one gate line per NAND in topological order, one connection
// column per gate that feeds other gates, one inversion line per output.
func NewMultiLevel(nw *netlist.Network) (*Layout, error) {
	if nw.NumIn == 0 {
		return nil, fmt.Errorf("xbar: network has no inputs")
	}
	if len(nw.Outputs) == 0 {
		return nil, fmt.Errorf("xbar: network has no outputs")
	}
	// Assign a wire index to every gate consumed by another gate.
	wireOf := make(map[int]int)
	for _, g := range nw.Gates {
		for _, s := range g.Fanins {
			if s.Kind == netlist.GateOut {
				if _, ok := wireOf[s.Index]; !ok {
					wireOf[s.Index] = len(wireOf)
				}
			}
		}
	}
	nG, nW, nOut := nw.NumGates(), len(wireOf), len(nw.Outputs)
	l := &Layout{
		NumIn:      nw.NumIn,
		NumOut:     nOut,
		Rows:       nG + nOut,
		MultiLevel: true,
	}
	l.ColKinds, l.ColIndex = buildColumns(nw.NumIn, nW, nOut)
	l.Cols = len(l.ColKinds)
	l.Active = makeGrid(l.Rows, l.Cols)
	l.RowKinds = make([]RowKind, l.Rows)
	l.WireDriver = make([]int, nW)
	for i := range l.WireDriver {
		l.WireDriver[i] = -1
	}
	l.OutputDriver = make([][]int, nOut)

	wireCol := func(w int) int { return 2*nw.NumIn + w }
	fbarCol := func(j int) int { return 2*nw.NumIn + nW + j }
	fCol := func(j int) int { return 2*nw.NumIn + nW + nOut + j }

	for gi, g := range nw.Gates {
		r := gi // gates stored in topological order
		l.RowKinds[r] = RowGate
		l.GateOrder = append(l.GateOrder, r)
		for _, s := range g.Fanins {
			switch s.Kind {
			case netlist.InputPos:
				l.Active[r][s.Index] = true
			case netlist.InputNeg:
				l.Active[r][nw.NumIn+s.Index] = true
			case netlist.GateOut:
				l.Active[r][wireCol(wireOf[s.Index])] = true
			}
		}
		if w, ok := wireOf[gi]; ok {
			l.Active[r][wireCol(w)] = true
			l.WireDriver[w] = r
		}
	}
	for j, s := range nw.Outputs {
		r := nG + j
		l.RowKinds[r] = RowOutput
		l.Active[r][fCol(j)] = true
		l.Active[r][fbarCol(j)] = true
		// The driving gate writes its value onto the f column.
		l.Active[s.Index][fCol(j)] = true
		l.OutputDriver[j] = []int{s.Index}
	}
	l.pack()
	return l, nil
}

// Area reports rows*cols, the paper's area cost.
func (l *Layout) Area() int { return l.Rows * l.Cols }

// Devices counts required-active devices.
func (l *Layout) Devices() int {
	n := 0
	for r := 0; r < l.Rows; r++ {
		n += bitmat.PopCount(l.packed.Row(r))
	}
	return n
}

// InclusionRatio is Devices()/Area(), the paper's IR metric.
func (l *Layout) InclusionRatio() float64 {
	if l.Area() == 0 {
		return 0
	}
	return float64(l.Devices()) / float64(l.Area())
}

// FunctionMatrix returns a copy of the required-active matrix, the FM of
// the paper's Fig. 8(a).
func (l *Layout) FunctionMatrix() [][]bool {
	fm := makeGrid(l.Rows, l.Cols)
	for r := range l.Active {
		copy(fm[r], l.Active[r])
	}
	return fm
}

// ProductRows lists the indices of product/gate rows (FMm in the paper);
// OutputRows lists inversion rows (FMo). Both return cached slices built at
// construction time — callers must not mutate them.
func (l *Layout) ProductRows() []int { return l.productRows }

// OutputRows lists the inversion rows of the layout.
func (l *Layout) OutputRows() []int { return l.outputRows }

// Render draws the layout as ASCII art: '#' for an active device, '.' for a
// disabled one, with column kind markers. Intended for examples and docs.
func (l *Layout) Render() string {
	var b strings.Builder
	b.WriteString("    ")
	for _, k := range l.ColKinds {
		switch k {
		case ColInputPos:
			b.WriteByte('x')
		case ColInputNeg:
			b.WriteByte('n')
		case ColWire:
			b.WriteByte('w')
		case ColFBar:
			b.WriteByte('b')
		case ColF:
			b.WriteByte('f')
		}
	}
	b.WriteByte('\n')
	for r := 0; r < l.Rows; r++ {
		switch l.RowKinds[r] {
		case RowProduct:
			b.WriteString("P   ")
		case RowGate:
			b.WriteString("G   ")
		case RowOutput:
			b.WriteString("O   ")
		}
		for c := 0; c < l.Cols; c++ {
			if l.Active[r][c] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func makeGrid(rows, cols int) [][]bool {
	g := make([][]bool, rows)
	cells := make([]bool, rows*cols)
	for r := range g {
		g[r], cells = cells[:cols], cells[cols:]
	}
	return g
}
