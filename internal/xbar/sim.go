package xbar

import (
	"fmt"

	"repro/internal/defect"
)

// State is one step of the controller state machine (Fig. 2b / Fig. 4b).
type State uint8

const (
	// StateINA initializes every memristor to R_OFF.
	StateINA State = iota
	// StateRI latches inputs from the CMOS controller or a previous OL.
	StateRI
	// StateCFM copies the input latch values onto the minterm lines.
	StateCFM
	// StateEVM evaluates minterm/gate NANDs.
	StateEVM
	// StateCR copies a gate result onto its multi-level connection column
	// (multi-level designs only).
	StateCR
	// StateEVR evaluates the AND plane, producing f̄ (two-level only).
	StateEVR
	// StateINR inverts f̄ to recover f.
	StateINR
	// StateSO sends outputs to the output latch.
	StateSO
)

// String names the state.
func (s State) String() string {
	names := [...]string{"INA", "RI", "CFM", "EVM", "CR", "EVR", "INR", "SO"}
	if int(s) < len(names) {
		return names[s]
	}
	return "?"
}

// Trace records the state sequence of one computation, so tests can verify
// the schedule matches the paper's state machines.
type Trace struct {
	States []State
	// Cycles is the total number of controller steps.
	Cycles int
}

// SimResult is the outcome of one crossbar computation.
type SimResult struct {
	F     []bool // output values f_j
	FBar  []bool // complemented outputs f̄_j
	Trace Trace
}

// Simulate runs the layout on a defect-free fabric with the identity row
// placement.
func (l *Layout) Simulate(x []bool) (SimResult, error) {
	return l.SimulateMapped(x, nil, nil)
}

// SimulateMapped runs the layout on a fabric with the given defect map and
// row assignment (layout row r is placed on physical row assignment[r]).
// A nil assignment means identity placement; a nil defect map means a
// perfect fabric.
//
// Defect semantics follow Section IV-A: a stuck-open device where the
// layout wants an active device silently fails to sense its column (the
// connection is missing); a stuck-closed device forces its NAND line to
// logic 1 and poisons its column (the column reads logic 0, R_ON).
func (l *Layout) SimulateMapped(x []bool, dm *defect.Map, assignment []int) (SimResult, error) {
	if len(x) != l.NumIn {
		return SimResult{}, fmt.Errorf("xbar: %d inputs supplied, layout has %d", len(x), l.NumIn)
	}
	physRow, err := l.physRows(dm, assignment)
	if err != nil {
		return SimResult{}, err
	}

	trace := Trace{States: []State{StateINA, StateRI, StateCFM}}

	deviceActive := func(r, c int) bool {
		if !l.Active[r][c] {
			return false
		}
		if dm == nil {
			return true
		}
		return dm.Functional(physRow[r], c)
	}
	colPoisoned := make([]bool, l.Cols)
	rowForced := make([]bool, l.Rows)
	if dm != nil {
		for c := 0; c < l.Cols; c++ {
			colPoisoned[c] = dm.ColHasClosed(c)
		}
		for r := 0; r < l.Rows; r++ {
			rowForced[r] = dm.RowHasClosed(physRow[r])
		}
	}

	// Column values for input columns; logic 0 when the line is poisoned.
	colVal := func(c int) bool {
		if colPoisoned[c] {
			return false
		}
		switch l.ColKinds[c] {
		case ColInputPos:
			return x[l.ColIndex[c]]
		case ColInputNeg:
			return !x[l.ColIndex[c]]
		}
		return false
	}

	rowVal := make([]bool, l.Rows)
	wireVal := make([]bool, len(l.WireDriver))

	// EVM: evaluate product/gate rows. Two-level evaluates all lines in one
	// step; multi-level evaluates sequentially, with a CR copy after each
	// gate that drives a connection column.
	for _, r := range l.GateOrder {
		and := true
		for c := 0; c < l.Cols; c++ {
			if !deviceActive(r, c) {
				continue
			}
			switch l.ColKinds[c] {
			case ColInputPos, ColInputNeg:
				if !colVal(c) {
					and = false
				}
			case ColWire:
				w := l.ColIndex[c]
				if l.WireDriver[w] == r {
					continue // this device writes the wire, it is not a fan-in
				}
				v := wireVal[w]
				if colPoisoned[c] {
					v = false
				}
				if !v {
					and = false
				}
			}
		}
		rowVal[r] = !and
		if rowForced[r] {
			rowVal[r] = true // a stuck-closed device holds the line at logic 1
		}
		if l.MultiLevel {
			trace.States = append(trace.States, StateEVM)
			for w, driver := range l.WireDriver {
				if driver == r && deviceActive(r, 2*l.NumIn+w) {
					wireVal[w] = rowVal[r]
					trace.States = append(trace.States, StateCR)
				}
			}
		}
	}
	if !l.MultiLevel {
		trace.States = append(trace.States, StateEVM, StateEVR)
	}

	res := SimResult{
		F:    make([]bool, l.NumOut),
		FBar: make([]bool, l.NumOut),
	}
	if l.MultiLevel {
		// The driving gate wrote f onto the f column; the output row
		// inverts it onto f̄.
		nW := len(l.WireDriver)
		for j := 0; j < l.NumOut; j++ {
			fbarCol := 2*l.NumIn + nW + j
			fCol := 2*l.NumIn + nW + l.NumOut + j
			driver := l.OutputDriver[j][0]
			v := false
			if deviceActive(driver, fCol) && !colPoisoned[fCol] {
				v = rowVal[driver]
			}
			res.F[j] = v
			outRow := l.outputRow(j)
			fb := !v
			if !deviceActive(outRow, fCol) || rowForced[outRow] {
				fb = true // broken inversion line reads R_OFF / forced 1
			}
			if !deviceActive(outRow, fbarCol) || colPoisoned[fbarCol] {
				fb = true // the f̄ column cannot be driven; it stays at R_OFF
			}
			res.FBar[j] = fb
		}
	} else {
		// EVR: f̄_j is the wired AND of the product rows connected to the
		// f̄ column. INR: the output row inverts it.
		for j := 0; j < l.NumOut; j++ {
			fbarCol := 2*l.NumIn + j
			and := true
			for _, r := range l.OutputDriver[j] {
				if !deviceActive(r, fbarCol) {
					continue // open defect: this product silently drops out
				}
				if !rowVal[r] {
					and = false
				}
			}
			fbar := and
			if colPoisoned[fbarCol] {
				fbar = false
			}
			res.FBar[j] = fbar
			outRow := l.outputRow(j)
			f := !fbar
			if !deviceActive(outRow, fbarCol) || rowForced[outRow] {
				f = false // the inversion line cannot read f̄
			}
			fCol := 2*l.NumIn + l.NumOut + j
			if !deviceActive(outRow, fCol) || colPoisoned[fCol] {
				f = false // the inversion line cannot drive f
			}
			res.F[j] = f
		}
	}
	trace.States = append(trace.States, StateINR, StateSO)
	trace.Cycles = len(trace.States)
	res.Trace = trace
	return res, nil
}

// outputRow returns the layout row index of output j's inversion line.
func (l *Layout) outputRow(j int) int {
	return l.Rows - l.NumOut + j
}

// physRows resolves the layout-row → physical-row map and validates it.
func (l *Layout) physRows(dm *defect.Map, assignment []int) ([]int, error) {
	phys := make([]int, l.Rows)
	if assignment == nil {
		for r := range phys {
			phys[r] = r
		}
	} else {
		if len(assignment) != l.Rows {
			return nil, fmt.Errorf("xbar: assignment covers %d rows, layout has %d", len(assignment), l.Rows)
		}
		copy(phys, assignment)
	}
	if dm != nil {
		if dm.Cols != l.Cols {
			return nil, fmt.Errorf("xbar: defect map has %d columns, layout %d", dm.Cols, l.Cols)
		}
		seen := make(map[int]bool, l.Rows)
		for r, p := range phys {
			if p < 0 || p >= dm.Rows {
				return nil, fmt.Errorf("xbar: row %d assigned to physical row %d outside [0,%d)", r, p, dm.Rows)
			}
			if seen[p] {
				return nil, fmt.Errorf("xbar: physical row %d assigned twice", p)
			}
			seen[p] = true
		}
	}
	return phys, nil
}

// Verify exhaustively (or for the provided assignments) checks that the
// mapped, possibly defective crossbar computes the same outputs as eval.
// It returns the first failing assignment, if any.
func (l *Layout) Verify(eval func(x []bool) []bool, dm *defect.Map, assignment []int, inputs [][]bool) ([]bool, error) {
	for _, x := range inputs {
		res, err := l.SimulateMapped(x, dm, assignment)
		if err != nil {
			return nil, err
		}
		want := eval(x)
		for j := range want {
			if res.F[j] != want[j] {
				return x, nil
			}
		}
	}
	return nil, nil
}

// AllAssignments enumerates all 2^n input vectors for n <= 20, for
// exhaustive verification of small layouts.
func AllAssignments(n int) [][]bool {
	if n > 20 {
		panic("xbar: refusing to enumerate more than 2^20 assignments")
	}
	out := make([][]bool, 0, 1<<uint(n))
	for i := 0; i < 1<<uint(n); i++ {
		x := make([]bool, n)
		for k := 0; k < n; k++ {
			x[k] = i&(1<<uint(k)) != 0
		}
		out = append(out, x)
	}
	return out
}
