package xbar

import (
	"testing"

	"repro/internal/synth"
)

func TestScheduleTwoLevel(t *testing.T) {
	l, err := NewTwoLevel(fig3Cover())
	if err != nil {
		t.Fatal(err)
	}
	s := l.ScheduleFor(DefaultTimingModel())
	// INA RI CFM EVM EVR INR SO = 7 states, exactly Fig. 2(b).
	if s.Cycles != 7 || s.Time != 7 {
		t.Errorf("two-level schedule = %+v, want 7 cycles", s)
	}
	if s.EVMSteps != 1 || s.CRSteps != 0 {
		t.Errorf("two-level steps = %+v", s)
	}
}

func TestScheduleMultiLevel(t *testing.T) {
	nw, err := synth.SynthesizeMultiLevel(fig3Cover(), synth.MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewMultiLevel(nw)
	if err != nil {
		t.Fatal(err)
	}
	s := l.ScheduleFor(DefaultTimingModel())
	// Fig. 5 network: 2 gates (2 EVM) + 1 wire (1 CR) + INA RI CFM INR SO.
	if s.EVMSteps != 2 || s.CRSteps != 1 {
		t.Errorf("multi-level steps = %+v, want 2 EVM + 1 CR", s)
	}
	if s.Cycles != 8 {
		t.Errorf("cycles = %d, want 8", s.Cycles)
	}
	two, _ := NewTwoLevel(fig3Cover())
	if s.Cycles <= two.ScheduleFor(DefaultTimingModel()).Cycles {
		t.Error("multi-level must cost more cycles than two-level (the paper's latency tradeoff)")
	}
}

func TestScheduleWeights(t *testing.T) {
	l, _ := NewTwoLevel(fig3Cover())
	m := DefaultTimingModel()
	m.EVM = 10
	s := l.ScheduleFor(m)
	if s.Time != 6+10 {
		t.Errorf("weighted time = %v, want 16", s.Time)
	}
}

func TestEnergyModel(t *testing.T) {
	l, _ := NewTwoLevel(fig3Cover())
	e := l.Energy(DefaultEnergyModel())
	want := float64(l.Area() + 2*l.Devices())
	if e != want {
		t.Errorf("energy = %v, want %v", e, want)
	}
	cheapReset := EnergyModel{Reset: 0, Program: 1, Evaluate: 1}
	if l.Energy(cheapReset) != float64(2*l.Devices()) {
		t.Error("energy model weights not applied")
	}
}

func TestAreaDelayProduct(t *testing.T) {
	two, _ := NewTwoLevel(fig3Cover())
	nw, _ := synth.SynthesizeMultiLevel(fig3Cover(), synth.MultiLevelOptions{})
	multi, _ := NewMultiLevel(nw)
	adTwo, adMulti := two.AreaDelayProduct(), multi.AreaDelayProduct()
	if adTwo != 108*7 {
		t.Errorf("two-level ADP = %v, want 756", adTwo)
	}
	if adMulti != 57*8 {
		t.Errorf("multi-level ADP = %v, want 456", adMulti)
	}
	// For this function the multi-level design wins even on area×delay.
	if adMulti >= adTwo {
		t.Error("multi-level should win on ADP for the Fig. 5 function")
	}
}
