package xbar

import (
	"math/rand"
	"testing"

	"repro/internal/defect"
	"repro/internal/logic"
	"repro/internal/synth"
)

func fig3Cover() *logic.Cover {
	return logic.MustParseCover(8, 1,
		"1-------",
		"-1------",
		"--1-----",
		"---1----",
		"----1111",
	)
}

func TestTwoLevelLayoutGeometry(t *testing.T) {
	l, err := NewTwoLevel(fig3Cover())
	if err != nil {
		t.Fatal(err)
	}
	if l.Rows != 6 || l.Cols != 18 || l.Area() != 108 {
		t.Errorf("geometry %dx%d=%d, want 6x18=108", l.Rows, l.Cols, l.Area())
	}
	if got := l.Devices(); got != 15 {
		t.Errorf("devices = %d, want 15", got)
	}
	if len(l.ProductRows()) != 5 || len(l.OutputRows()) != 1 {
		t.Error("row partition wrong")
	}
}

func TestTwoLevelSimulation(t *testing.T) {
	f := fig3Cover()
	l, err := NewTwoLevel(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range AllAssignments(8) {
		res, err := l.Simulate(x)
		if err != nil {
			t.Fatal(err)
		}
		want := f.EvalOutput(0, x)
		if res.F[0] != want {
			t.Fatalf("F(%v) = %v, want %v", x, res.F[0], want)
		}
		if res.FBar[0] != !want {
			t.Fatalf("FBar(%v) = %v, want %v", x, res.FBar[0], !want)
		}
	}
}

func TestTwoLevelMultiOutputSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(5)
		f := randomMulti(rng, n, 1+rng.Intn(3), 1+rng.Intn(7))
		l, err := NewTwoLevel(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range AllAssignments(n) {
			res, err := l.Simulate(x)
			if err != nil {
				t.Fatal(err)
			}
			want := f.Eval(x)
			for j := range want {
				if res.F[j] != want[j] {
					t.Fatalf("output %d differs at %v\n%v", j, x, l.Render())
				}
			}
		}
	}
}

func TestTwoLevelStateMachineTrace(t *testing.T) {
	l, _ := NewTwoLevel(fig3Cover())
	res, err := l.Simulate(make([]bool, 8))
	if err != nil {
		t.Fatal(err)
	}
	want := []State{StateINA, StateRI, StateCFM, StateEVM, StateEVR, StateINR, StateSO}
	if len(res.Trace.States) != len(want) {
		t.Fatalf("trace = %v, want %v", res.Trace.States, want)
	}
	for i := range want {
		if res.Trace.States[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, res.Trace.States[i], want[i])
		}
	}
}

func TestMultiLevelLayoutFig5(t *testing.T) {
	nw, err := synth.SynthesizeMultiLevel(fig3Cover(), synth.MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewMultiLevel(nw)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rows != 3 || l.Cols != 19 || l.Area() != 57 {
		t.Errorf("geometry %dx%d=%d, want 3x19=57\n%s", l.Rows, l.Cols, l.Area(), l.Render())
	}
}

func TestMultiLevelSimulation(t *testing.T) {
	f := fig3Cover()
	nw, err := synth.SynthesizeMultiLevel(f, synth.MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewMultiLevel(nw)
	if err != nil {
		t.Fatal(err)
	}
	sawCR := false
	for _, x := range AllAssignments(8) {
		res, err := l.Simulate(x)
		if err != nil {
			t.Fatal(err)
		}
		want := f.EvalOutput(0, x)
		if res.F[0] != want || res.FBar[0] == want {
			t.Fatalf("F(%v) = %v/%v, want %v/%v", x, res.F[0], res.FBar[0], want, !want)
		}
		for _, s := range res.Trace.States {
			if s == StateCR {
				sawCR = true
			}
		}
	}
	if !sawCR {
		t.Error("multi-level trace must contain CR states")
	}
}

func TestMultiLevelRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		f := randomMulti(rng, n, 1+rng.Intn(3), 1+rng.Intn(6))
		nw, err := synth.SynthesizeMultiLevel(f, synth.MultiLevelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewMultiLevel(nw)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range AllAssignments(n) {
			res, err := l.Simulate(x)
			if err != nil {
				t.Fatal(err)
			}
			want := f.Eval(x)
			for j := range want {
				if res.F[j] != want[j] {
					t.Fatalf("trial %d output %d differs at %v\n%v\n%s", trial, j, x, nw, l.Render())
				}
			}
		}
	}
}

func TestStuckClosedForcesRow(t *testing.T) {
	f := logic.MustParseCover(2, 1, "11")
	l, err := NewTwoLevel(f)
	if err != nil {
		t.Fatal(err)
	}
	dm := defect.NewMap(l.Rows, l.Cols)
	// Poison the product row: a stuck-closed device anywhere on it forces
	// the NAND output to logic 1 (the minterm always reads as absent), so
	// f becomes constant 0.
	dm.Set(0, 5, defect.StuckClosed)
	for _, x := range AllAssignments(2) {
		res, err := l.SimulateMapped(x, dm, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Column 5 is the f column; poisoning it also kills the output
		// drive, so f must read 0 everywhere.
		if res.F[0] {
			t.Fatalf("poisoned crossbar computed f=1 at %v", x)
		}
	}
}

func TestStuckOpenOnActiveDeviceBreaksFunction(t *testing.T) {
	f := fig3Cover()
	l, _ := NewTwoLevel(f)
	dm := defect.NewMap(l.Rows, l.Cols)
	dm.Set(0, 0, defect.StuckOpen) // the x1 literal of product x1
	bad, err := l.Verify(func(x []bool) []bool { return f.Eval(x) }, dm, nil, AllAssignments(8))
	if err != nil {
		t.Fatal(err)
	}
	if bad == nil {
		t.Error("an open defect on a required-active device must corrupt some input")
	}
}

func TestStuckOpenOnDisabledDeviceIsHarmless(t *testing.T) {
	f := fig3Cover()
	l, _ := NewTwoLevel(f)
	dm := defect.NewMap(l.Rows, l.Cols)
	// Product row 0 only uses column 0 (x1) and the f̄ column; an open
	// defect on x5's column of that row coincides with a disabled device.
	dm.Set(0, 4, defect.StuckOpen)
	bad, err := l.Verify(func(x []bool) []bool { return f.Eval(x) }, dm, nil, AllAssignments(8))
	if err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Errorf("open defect on a disabled position corrupted input %v", bad)
	}
}

func TestSimulateMappedPermutation(t *testing.T) {
	f := fig3Cover()
	l, _ := NewTwoLevel(f)
	dm := defect.NewMap(l.Rows, l.Cols)
	// Reverse the rows: function must be unchanged on a clean fabric.
	assign := make([]int, l.Rows)
	for r := range assign {
		assign[r] = l.Rows - 1 - r
	}
	bad, err := l.Verify(func(x []bool) []bool { return f.Eval(x) }, dm, assign, AllAssignments(8))
	if err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Errorf("row permutation broke the function at %v", bad)
	}
}

func TestSimulateMappedValidation(t *testing.T) {
	l, _ := NewTwoLevel(fig3Cover())
	dm := defect.NewMap(l.Rows, l.Cols)
	x := make([]bool, 8)
	if _, err := l.SimulateMapped(x[:4], dm, nil); err == nil {
		t.Error("wrong input arity must fail")
	}
	if _, err := l.SimulateMapped(x, dm, []int{0}); err == nil {
		t.Error("short assignment must fail")
	}
	dup := []int{0, 0, 1, 2, 3, 4}
	if _, err := l.SimulateMapped(x, dm, dup); err == nil {
		t.Error("duplicate physical rows must fail")
	}
	oob := []int{0, 1, 2, 3, 4, 99}
	if _, err := l.SimulateMapped(x, dm, oob); err == nil {
		t.Error("out-of-range physical row must fail")
	}
	wrongCols := defect.NewMap(l.Rows, l.Cols+1)
	if _, err := l.SimulateMapped(x, wrongCols, nil); err == nil {
		t.Error("column mismatch must fail")
	}
}

func TestInclusionRatioFig3(t *testing.T) {
	l, _ := NewTwoLevel(fig3Cover())
	ir := l.InclusionRatio()
	want := 15.0 / 108.0
	if ir < want-1e-9 || ir > want+1e-9 {
		t.Errorf("IR = %v, want %v", ir, want)
	}
}

func TestFunctionMatrixIsCopy(t *testing.T) {
	l, _ := NewTwoLevel(fig3Cover())
	fm := l.FunctionMatrix()
	fm[0][0] = !fm[0][0]
	if fm[0][0] == l.Active[0][0] {
		t.Error("FunctionMatrix must return a copy")
	}
}

func TestNewTwoLevelErrors(t *testing.T) {
	if _, err := NewTwoLevel(logic.NewCover(0, 1)); err == nil {
		t.Error("zero-input cover must fail")
	}
}

func randomMulti(rng *rand.Rand, nIn, nOut, nCubes int) *logic.Cover {
	c := logic.NewCover(nIn, nOut)
	for k := 0; k < nCubes; k++ {
		cube := logic.NewCube(nIn, nOut)
		for i := range cube.In {
			switch rng.Intn(4) {
			case 0:
				cube.In[i] = logic.LitNeg
			case 1:
				cube.In[i] = logic.LitPos
			default:
				cube.In[i] = logic.LitDC
			}
		}
		for j := range cube.Out {
			cube.Out[j] = rng.Intn(2) == 1
		}
		if cube.NumOutputs() == 0 {
			cube.Out[rng.Intn(nOut)] = true
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}
