package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestRingPrefsDeterministicAndComplete(t *testing.T) {
	members := []string{"http://c:3", "http://a:1", "http://b:2"}
	r := NewRing(members, 0)
	r2 := NewRing([]string{"http://b:2", "http://a:1", "http://c:3"}, 0)
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		p := r.Prefs(key)
		if len(p) != 3 {
			t.Fatalf("Prefs(%q) = %v, want 3 distinct members", key, p)
		}
		seen := map[string]bool{}
		for _, m := range p {
			if seen[m] {
				t.Fatalf("Prefs(%q) repeats member %s: %v", key, m, p)
			}
			seen[m] = true
		}
		if got, want := fmt.Sprint(p), fmt.Sprint(r2.Prefs(key)); got != want {
			t.Fatalf("ring depends on member list order: %s vs %s", got, want)
		}
		if r.Owner(key) != p[0] {
			t.Fatalf("Owner != Prefs[0]")
		}
	}
}

func TestRingDistributionRoughlyBalanced(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(members, 128)
	counts := map[string]int{}
	const n = 8000
	for i := 0; i < n; i++ {
		counts[r.Owner([]byte(fmt.Sprintf("spec-hash-%d", i)))]++
	}
	for m, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys — ring badly unbalanced: %v", m, 100*frac, counts)
		}
	}
}

// Removing one member must move only that member's keys: every other key
// keeps its owner (the consistent-hashing property the gateway's failover
// depends on).
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	without := NewRing([]string{"http://a", "http://c"}, 0)
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		was, now := full.Owner(key), without.Owner(key)
		if was == "http://b" {
			if now == "http://b" {
				t.Fatalf("removed member still owns key %q", key)
			}
			// And the new owner must be the old second preference.
			if prefs := full.Prefs(key); prefs[1] != now {
				t.Fatalf("key %q moved to %s, want old second preference %s", key, now, prefs[1])
			}
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the removed member — test vacuous")
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Prefs([]byte("k")); got != nil {
		t.Fatalf("empty ring Prefs = %v, want nil", got)
	}
	if got := r.Owner([]byte("k")); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
}

func TestBackoffGrowthCapAndJitterBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	j := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5}
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		d := j.Delay(2, rnd)
		if d < 200*time.Millisecond || d > 400*time.Millisecond {
			t.Fatalf("jittered Delay(2) = %v, want within [200ms, 400ms]", d)
		}
	}
	var zero Backoff
	if d := zero.Delay(0, rnd); d <= 0 || d > DefaultBackoff.Base {
		t.Fatalf("zero-value Delay(0) = %v, want (0, %v]", d, DefaultBackoff.Base)
	}
}

func TestHealthCheckerEjectsAndReadmits(t *testing.T) {
	failing := map[string]bool{"http://b": true}
	var changes []string
	h := NewHealthChecker([]string{"http://a", "http://b"}, HealthOptions{
		Interval:         time.Hour, // driven manually via ProbeOnce
		FailThreshold:    3,
		RecoverThreshold: 2,
		Probe: func(_ context.Context, m string) error {
			if failing[m] {
				return errors.New("down")
			}
			return nil
		},
		OnChange: func(m string, healthy bool) {
			changes = append(changes, fmt.Sprintf("%s=%t", m, healthy))
		},
	})
	if !h.Healthy("http://b") {
		t.Fatal("members must start healthy (optimistic admission)")
	}
	ctx := context.Background()
	h.ProbeOnce(ctx)
	h.ProbeOnce(ctx)
	if !h.Healthy("http://b") {
		t.Fatal("ejected before FailThreshold consecutive failures")
	}
	h.ProbeOnce(ctx)
	if h.Healthy("http://b") {
		t.Fatal("not ejected after FailThreshold consecutive failures")
	}
	if h.Healthy("http://a") != true || h.HealthyCount() != 1 {
		t.Fatalf("healthy member affected by sibling ejection (count %d)", h.HealthyCount())
	}
	// One good probe must not re-admit below the recover threshold.
	failing["http://b"] = false
	h.ProbeOnce(ctx)
	if h.Healthy("http://b") {
		t.Fatal("re-admitted below RecoverThreshold")
	}
	h.ProbeOnce(ctx)
	if !h.Healthy("http://b") {
		t.Fatal("not re-admitted after RecoverThreshold consecutive successes")
	}
	if want := []string{"http://b=false", "http://b=true"}; fmt.Sprint(changes) != fmt.Sprint(want) {
		t.Fatalf("OnChange sequence = %v, want %v", changes, want)
	}
	snap := h.Snapshot()
	if len(snap) != 2 || snap[1].Member != "http://b" || !snap[1].Healthy {
		t.Fatalf("bad snapshot: %+v", snap)
	}
}

// A flapping member (alternating probe outcomes) must stay ejected: the
// consecutive-success requirement is the hysteresis.
func TestHealthCheckerHysteresis(t *testing.T) {
	up := false
	h := NewHealthChecker([]string{"http://a"}, HealthOptions{
		FailThreshold:    2,
		RecoverThreshold: 3,
		Probe: func(context.Context, string) error {
			up = !up
			if up {
				return nil
			}
			return errors.New("flap")
		},
	})
	ctx := context.Background()
	for i := 0; i < 4; i++ { // ok, fail, ok, fail ... never 2 consecutive fails
		h.ProbeOnce(ctx)
	}
	if !h.Healthy("http://a") {
		t.Fatal("alternating failures below threshold must not eject")
	}
	// Force ejection, then flap: never RecoverThreshold consecutive oks.
	h.opt.Probe = func(context.Context, string) error { return errors.New("down") }
	h.ProbeOnce(ctx)
	h.ProbeOnce(ctx)
	if h.Healthy("http://a") {
		t.Fatal("not ejected")
	}
	n := 0
	h.opt.Probe = func(context.Context, string) error {
		n++
		if n%3 == 0 {
			return errors.New("flap")
		}
		return nil
	}
	for i := 0; i < 9; i++ {
		h.ProbeOnce(ctx)
	}
	if h.Healthy("http://a") {
		t.Fatal("flapping member re-admitted without RecoverThreshold consecutive successes")
	}
}
