package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Health defaults.
const (
	DefaultProbeInterval    = time.Second
	DefaultFailThreshold    = 3
	DefaultRecoverThreshold = 2
	DefaultProbePath        = "/readyz"
)

// HealthOptions tunes a HealthChecker.
type HealthOptions struct {
	// Interval is the probe period; zero means DefaultProbeInterval.
	Interval time.Duration
	// Timeout bounds one probe; zero means Interval.
	Timeout time.Duration
	// FailThreshold ejects a member after this many consecutive probe
	// failures; zero means DefaultFailThreshold.
	FailThreshold int
	// RecoverThreshold re-admits an ejected member after this many
	// consecutive probe successes; zero means DefaultRecoverThreshold.
	RecoverThreshold int
	// Path is the endpoint probed on each member (expects a 2xx); zero
	// means DefaultProbePath. Readiness — not liveness — is the right
	// probe: a draining member answers /healthz but must leave the ring.
	Path string
	// Probe overrides the HTTP probe entirely (tests).
	Probe func(ctx context.Context, member string) error
	// OnChange, when non-nil, is called (outside the checker's lock) on
	// every ejection (healthy=false) and re-admission (healthy=true).
	OnChange func(member string, healthy bool)
}

// MemberHealth is one member's probe state snapshot.
type MemberHealth struct {
	Member           string    `json:"member"`
	Healthy          bool      `json:"healthy"`
	ConsecutiveFails int       `json:"consecutive_fails,omitempty"`
	LastErr          string    `json:"last_error,omitempty"`
	LastProbe        time.Time `json:"last_probe,omitempty"`
}

// HealthChecker actively probes a fixed member set and tracks which members
// are in service. Members start healthy (optimistic admission: a fresh
// fleet must not reject traffic while the first probe round is in flight)
// and are ejected after FailThreshold consecutive failures, re-admitted
// after RecoverThreshold consecutive successes — the hysteresis keeps one
// flaky probe from flapping the ring.
type HealthChecker struct {
	opt     HealthOptions
	members []string
	client  *http.Client

	mu sync.Mutex
	st map[string]*memberState

	stop chan struct{}
	wg   sync.WaitGroup
}

type memberState struct {
	healthy   bool
	fails     int
	oks       int
	lastErr   string
	lastProbe time.Time
}

// NewHealthChecker builds a checker over members; call Start to begin
// probing (Healthy answers optimistically until then).
func NewHealthChecker(members []string, opt HealthOptions) *HealthChecker {
	if opt.Interval <= 0 {
		opt.Interval = DefaultProbeInterval
	}
	if opt.Timeout <= 0 {
		opt.Timeout = opt.Interval
	}
	if opt.FailThreshold <= 0 {
		opt.FailThreshold = DefaultFailThreshold
	}
	if opt.RecoverThreshold <= 0 {
		opt.RecoverThreshold = DefaultRecoverThreshold
	}
	if opt.Path == "" {
		opt.Path = DefaultProbePath
	}
	h := &HealthChecker{
		opt:     opt,
		members: append([]string(nil), members...),
		client:  &http.Client{Timeout: opt.Timeout},
		st:      make(map[string]*memberState, len(members)),
		stop:    make(chan struct{}),
	}
	for _, m := range h.members {
		h.st[m] = &memberState{healthy: true}
	}
	return h
}

// Start begins the background probe loop.
func (h *HealthChecker) Start() {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		t := time.NewTicker(h.opt.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.ProbeOnce(context.Background())
			case <-h.stop:
				return
			}
		}
	}()
}

// Stop ends the probe loop.
func (h *HealthChecker) Stop() {
	close(h.stop)
	h.wg.Wait()
}

// ProbeOnce probes every member once, concurrently, and folds the results
// into the health state. Exposed so tests (and a gateway that wants an
// initial reading before serving) can drive rounds synchronously.
func (h *HealthChecker) ProbeOnce(ctx context.Context) {
	errs := make([]error, len(h.members))
	var wg sync.WaitGroup
	for i, m := range h.members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, h.opt.Timeout)
			defer cancel()
			errs[i] = h.probe(pctx, m)
		}(i, m)
	}
	wg.Wait()
	// Threshold bookkeeping happens under the lock, change callbacks
	// outside it: an OnChange that re-enters the checker must not deadlock.
	type change struct {
		member  string
		healthy bool
	}
	var changes []change
	h.mu.Lock()
	now := time.Now()
	for i, m := range h.members {
		st := h.st[m]
		st.lastProbe = now
		if errs[i] == nil {
			st.fails, st.oks, st.lastErr = 0, st.oks+1, ""
			if !st.healthy && st.oks >= h.opt.RecoverThreshold {
				st.healthy = true
				changes = append(changes, change{m, true})
			}
		} else {
			st.oks, st.fails, st.lastErr = 0, st.fails+1, errs[i].Error()
			if st.healthy && st.fails >= h.opt.FailThreshold {
				st.healthy = false
				changes = append(changes, change{m, false})
			}
		}
	}
	h.mu.Unlock()
	if h.opt.OnChange != nil {
		for _, c := range changes {
			h.opt.OnChange(c.member, c.healthy)
		}
	}
}

func (h *HealthChecker) probe(ctx context.Context, member string) error {
	if h.opt.Probe != nil {
		return h.opt.Probe(ctx, member)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+h.opt.Path, nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("probe %s: HTTP %d", h.opt.Path, resp.StatusCode)
	}
	return nil
}

// Healthy reports whether member is currently in service. Unknown members
// are unhealthy.
func (h *HealthChecker) Healthy(member string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.st[member]
	return ok && st.healthy
}

// HealthyCount reports how many members are currently in service.
func (h *HealthChecker) HealthyCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, st := range h.st {
		if st.healthy {
			n++
		}
	}
	return n
}

// Snapshot returns every member's probe state, in member order.
func (h *HealthChecker) Snapshot() []MemberHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]MemberHealth, 0, len(h.members))
	for _, m := range h.members {
		st := h.st[m]
		out = append(out, MemberHealth{
			Member:           m,
			Healthy:          st.healthy,
			ConsecutiveFails: st.fails,
			LastErr:          st.lastErr,
			LastProbe:        st.lastProbe,
		})
	}
	return out
}
