// Package cluster provides the building blocks of the self-healing xbar
// fleet: a consistent hash ring that shards the canonical spec-hash space
// across member instances, an active health checker with fail/recover
// thresholds that ejects and re-admits members, and a bounded
// exponential-backoff policy shared by the gateway's retry loop and the
// engine's follower pull loop.
//
// The package is deliberately free of engine dependencies so both sides of
// the wire — cmd/xbargateway fronting the fleet and internal/engine running
// inside a member — can build on it.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the ring points placed per member when
// RingOptions.VirtualNodes is zero. More points smooth the key distribution
// across members at the cost of a larger (still tiny) sorted point table.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent hash ring over member names (the gateway
// uses member base URLs). Keys map to the member owning the first ring
// point at or clockwise after the key's hash; the full preference order —
// the owner followed by each next distinct member clockwise — is what
// failover walks, so ejecting a member moves only that member's keys.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over the given members with vnodes points each
// (zero means DefaultVirtualNodes). Member order does not matter; the ring
// is fully determined by the member names.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{
		members: append([]string(nil), members...),
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	// Sorting the member list first makes the ring independent of the
	// order the operator listed members in, so every gateway replica with
	// the same member set computes the same shards.
	sort.Strings(r.members)
	for m, name := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashString(fmt.Sprintf("%s#%d", name, v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner returns the member owning key (the first preference), or "" for an
// empty ring.
func (r *Ring) Owner(key []byte) string {
	p := r.Prefs(key)
	if len(p) == 0 {
		return ""
	}
	return p[0]
}

// Prefs returns the key's full preference order: the owning member first,
// then each next distinct member walking the ring clockwise. A caller that
// finds the owner unhealthy retries down this list, so every key has a
// deterministic failover sequence that stays stable as other keys move.
func (r *Ring) Prefs(key []byte) []string {
	if len(r.members) == 0 {
		return nil
	}
	h := HashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make(map[int]bool, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// HashKey maps an opaque key (the engine's canonical spec hash) onto the
// ring's 64-bit hash space.
func HashKey(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64()
}

func hashString(s string) uint64 { return HashKey([]byte(s)) }
