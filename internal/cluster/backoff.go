package cluster

import (
	"math/rand"
	"time"
)

// Backoff is a capped exponential backoff policy with proportional jitter.
// The zero value is usable and means DefaultBackoff. The policy is a value
// (no state): callers track their own attempt counter and reset it on
// success, so one policy can be shared by every retry loop in a process.
type Backoff struct {
	// Base is the delay of attempt zero; zero means 100ms.
	Base time.Duration
	// Cap bounds the grown delay before jitter; zero means 5s.
	Cap time.Duration
	// Factor is the per-attempt growth; values below 1 mean 2.
	Factor float64
	// Jitter is the fraction of the delay that is randomized, in [0, 1]:
	// the returned delay is uniform in [d*(1-Jitter), d]. Zero means 0.5;
	// negative disables jitter entirely (tests).
	Jitter float64
}

// DefaultBackoff is the policy the gateway and the follower pull loop both
// start from: 100ms doubling to a 5s cap, half-jittered so a fleet of
// retriers doesn't re-converge on the same instant.
var DefaultBackoff = Backoff{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Factor: 2, Jitter: 0.5}

// Delay returns the pause before retry number attempt (attempt 0 is the
// first retry). rnd supplies the jitter source; nil uses the global
// math/rand source (safe for concurrent use).
func (b Backoff) Delay(attempt int, rnd *rand.Rand) time.Duration {
	base, cp, factor, jitter := b.Base, b.Cap, b.Factor, b.Jitter
	if base <= 0 {
		base = DefaultBackoff.Base
	}
	if cp <= 0 {
		cp = DefaultBackoff.Cap
	}
	if factor < 1 {
		factor = DefaultBackoff.Factor
	}
	if jitter == 0 {
		jitter = DefaultBackoff.Jitter
	}
	d := float64(base)
	for i := 0; i < attempt && d < float64(cp); i++ {
		d *= factor
	}
	if d > float64(cp) {
		d = float64(cp)
	}
	if jitter > 0 {
		if jitter > 1 {
			jitter = 1
		}
		f := rand.Float64
		if rnd != nil {
			f = rnd.Float64
		}
		d = d*(1-jitter) + f()*d*jitter
	}
	return time.Duration(d)
}
