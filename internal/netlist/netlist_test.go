package netlist

import (
	"math/rand"
	"testing"
)

// buildFig5 constructs the paper's Fig. 5 network by hand:
// h = NAND(x5,x6,x7,x8); f = NAND(x̄1,x̄2,x̄3,x̄4,h).
func buildFig5(t *testing.T) *Network {
	t.Helper()
	nw := New(8)
	h, err := nw.AddNAND(Input(4, false), Input(5, false), Input(6, false), Input(7, false))
	if err != nil {
		t.Fatal(err)
	}
	f, err := nw.AddNAND(Input(0, true), Input(1, true), Input(2, true), Input(3, true), h)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetOutputs(f); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestFig5NetworkEval(t *testing.T) {
	nw := buildFig5(t)
	// f = x1+x2+x3+x4+x5x6x7x8.
	ref := func(x []bool) bool {
		return x[0] || x[1] || x[2] || x[3] || (x[4] && x[5] && x[6] && x[7])
	}
	for i := 0; i < 256; i++ {
		x := make([]bool, 8)
		for k := range x {
			x[k] = i&(1<<uint(k)) != 0
		}
		if got := nw.Eval(x)[0]; got != ref(x) {
			t.Fatalf("Eval(%v) = %v, want %v", x, got, ref(x))
		}
	}
}

func TestFig5Geometry(t *testing.T) {
	nw := buildFig5(t)
	if g := nw.NumGates(); g != 2 {
		t.Errorf("gates = %d, want 2", g)
	}
	if w := nw.NumInternalWires(); w != 1 {
		t.Errorf("internal wires = %d, want 1", w)
	}
	if m := nw.MaxFanin(); m != 5 {
		t.Errorf("max fanin = %d, want 5", m)
	}
	_, depth := nw.Levels()
	if depth != 2 {
		t.Errorf("depth = %d, want 2", depth)
	}
}

func TestStructuralHashing(t *testing.T) {
	nw := New(2)
	a, _ := nw.AddNAND(Input(0, false), Input(1, false))
	b, _ := nw.AddNAND(Input(1, false), Input(0, false)) // same gate, reordered
	if a != b {
		t.Error("structurally identical gates must be shared")
	}
	if nw.NumGates() != 1 {
		t.Errorf("gates = %d, want 1", nw.NumGates())
	}
	c, _ := nw.AddNAND(Input(0, false), Input(0, false)) // duplicate fanin collapses
	d, _ := nw.AddNAND(Input(0, false))
	if c != d {
		t.Error("duplicate fan-ins must canonicalize")
	}
}

func TestAddNANDErrors(t *testing.T) {
	nw := New(2)
	if _, err := nw.AddNAND(); err == nil {
		t.Error("empty fanin list should fail")
	}
	if _, err := nw.AddNAND(Input(5, false)); err == nil {
		t.Error("out-of-range input should fail")
	}
	if _, err := nw.AddNAND(Signal{Kind: GateOut, Index: 0}); err == nil {
		t.Error("forward gate reference should fail")
	}
}

func TestSetOutputsErrors(t *testing.T) {
	nw := New(2)
	if err := nw.SetOutputs(Input(0, false)); err == nil {
		t.Error("input as output should fail (crossbar outputs are gates)")
	}
	if err := nw.SetOutputs(Signal{Kind: GateOut, Index: 3}); err == nil {
		t.Error("dangling gate output should fail")
	}
}

func TestInverterSemantics(t *testing.T) {
	nw := New(1)
	inv, _ := nw.AddNAND(Input(0, false))
	if err := nw.SetOutputs(inv); err != nil {
		t.Fatal(err)
	}
	if nw.Eval([]bool{true})[0] != false || nw.Eval([]bool{false})[0] != true {
		t.Error("single-fanin NAND must invert")
	}
}

func TestSweepDead(t *testing.T) {
	nw := New(3)
	dead, _ := nw.AddNAND(Input(0, false), Input(1, false))
	_ = dead
	live1, _ := nw.AddNAND(Input(1, false), Input(2, false))
	live2, _ := nw.AddNAND(live1, Input(0, true))
	if err := nw.SetOutputs(live2); err != nil {
		t.Fatal(err)
	}
	before := nw.Eval([]bool{true, true, false})
	nw.SweepDead()
	if nw.NumGates() != 2 {
		t.Errorf("gates after sweep = %d, want 2", nw.NumGates())
	}
	after := nw.Eval([]bool{true, true, false})
	if before[0] != after[0] {
		t.Error("SweepDead changed the function")
	}
	// Hash state must be rebuilt: re-adding a kept gate shares it.
	s, _ := nw.AddNAND(Input(1, false), Input(2, false))
	if s.Index >= 2 {
		t.Error("structural hash not rebuilt after sweep")
	}
}

func TestSweepDeadRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		nw := New(4)
		var sigs []Signal
		for i := 0; i < 4; i++ {
			sigs = append(sigs, Input(i, false), Input(i, true))
		}
		for g := 0; g < 8; g++ {
			k := 1 + rng.Intn(3)
			var fin []Signal
			for i := 0; i < k; i++ {
				fin = append(fin, sigs[rng.Intn(len(sigs))])
			}
			s, err := nw.AddNAND(fin...)
			if err != nil {
				t.Fatal(err)
			}
			sigs = append(sigs, s)
		}
		var outs []Signal
		for _, s := range sigs {
			if s.Kind == GateOut && rng.Intn(3) == 0 {
				outs = append(outs, s)
			}
		}
		if len(outs) == 0 {
			continue
		}
		if err := nw.SetOutputs(outs...); err != nil {
			t.Fatal(err)
		}
		x := make([]bool, 4)
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		before := nw.Eval(x)
		nw.SweepDead()
		after := nw.Eval(x)
		for j := range before {
			if before[j] != after[j] {
				t.Fatalf("SweepDead changed output %d", j)
			}
		}
	}
}

func TestLevels(t *testing.T) {
	nw := New(2)
	g0, _ := nw.AddNAND(Input(0, false))
	g1, _ := nw.AddNAND(g0, Input(1, false))
	g2, _ := nw.AddNAND(g1, g0)
	_ = nw.SetOutputs(g2)
	per, depth := nw.Levels()
	if depth != 3 {
		t.Errorf("depth = %d, want 3", depth)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if per[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, per[i], want[i])
		}
	}
}

func TestStringRendering(t *testing.T) {
	nw := buildFig5(t)
	s := nw.String()
	if s == "" {
		t.Error("String should render something")
	}
}
