// Package netlist models NAND-only gate networks, the multi-level
// representation of the paper's Section III. The crossbar realizes one NAND
// gate per horizontal line; gate outputs that feed other gates travel on
// dedicated multi-level connection columns, so the network cost maps
// directly onto crossbar geometry.
//
// Inputs are available in both polarities for free (the input latch drives
// x and x̄ columns); gate outputs are available only in positive polarity,
// exactly as on the fabric.
package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// SignalKind distinguishes the three sources a NAND fan-in can come from.
type SignalKind uint8

const (
	// InputPos is primary input i in positive polarity (column x_i).
	InputPos SignalKind = iota
	// InputNeg is primary input i complemented (column x̄_i).
	InputNeg
	// GateOut is the output of gate Index (a multi-level connection).
	GateOut
)

// Signal references a value in the network.
type Signal struct {
	Kind  SignalKind
	Index int
}

// String renders the signal for diagnostics, e.g. "x3", "~x3", "g7".
func (s Signal) String() string {
	switch s.Kind {
	case InputPos:
		return fmt.Sprintf("x%d", s.Index)
	case InputNeg:
		return fmt.Sprintf("~x%d", s.Index)
	case GateOut:
		return fmt.Sprintf("g%d", s.Index)
	}
	return "?"
}

// Input returns the signal for primary input i, complemented when neg.
func Input(i int, neg bool) Signal {
	if neg {
		return Signal{Kind: InputNeg, Index: i}
	}
	return Signal{Kind: InputPos, Index: i}
}

// Gate is a single NAND gate.
type Gate struct {
	Fanins []Signal
}

// Network is a NAND-only DAG. Gates must be stored in topological order:
// gate k may reference only gates with index < k.
type Network struct {
	NumIn   int
	Gates   []Gate
	Outputs []Signal // each must be a GateOut for crossbar realization

	hash map[string]int // structural hashing: fanin key -> gate index
}

// New creates an empty network over n primary inputs.
func New(n int) *Network {
	return &Network{NumIn: n, hash: map[string]int{}}
}

// AddNAND appends a NAND gate with the given fan-ins (deduplicated and
// canonically ordered) and returns its output signal. Structurally identical
// gates are shared. A constant-like gate with no fan-ins is rejected.
func (nw *Network) AddNAND(fanins ...Signal) (Signal, error) {
	if len(fanins) == 0 {
		return Signal{}, fmt.Errorf("netlist: NAND with no fan-ins")
	}
	canon := append([]Signal(nil), fanins...)
	sort.Slice(canon, func(a, b int) bool {
		if canon[a].Kind != canon[b].Kind {
			return canon[a].Kind < canon[b].Kind
		}
		return canon[a].Index < canon[b].Index
	})
	dedup := canon[:1]
	for _, s := range canon[1:] {
		if s != dedup[len(dedup)-1] {
			dedup = append(dedup, s)
		}
	}
	for _, s := range dedup {
		if err := nw.checkSignal(s, len(nw.Gates)); err != nil {
			return Signal{}, err
		}
	}
	key := signalsKey(dedup)
	if nw.hash == nil {
		nw.hash = map[string]int{}
	}
	if idx, ok := nw.hash[key]; ok {
		return Signal{Kind: GateOut, Index: idx}, nil
	}
	idx := len(nw.Gates)
	nw.Gates = append(nw.Gates, Gate{Fanins: dedup})
	nw.hash[key] = idx
	return Signal{Kind: GateOut, Index: idx}, nil
}

func (nw *Network) checkSignal(s Signal, gateLimit int) error {
	switch s.Kind {
	case InputPos, InputNeg:
		if s.Index < 0 || s.Index >= nw.NumIn {
			return fmt.Errorf("netlist: input %d out of range [0,%d)", s.Index, nw.NumIn)
		}
	case GateOut:
		if s.Index < 0 || s.Index >= gateLimit {
			return fmt.Errorf("netlist: gate reference %d breaks topological order (limit %d)", s.Index, gateLimit)
		}
	default:
		return fmt.Errorf("netlist: unknown signal kind %d", s.Kind)
	}
	return nil
}

func signalsKey(ss []Signal) string {
	var b strings.Builder
	for _, s := range ss {
		fmt.Fprintf(&b, "%d:%d;", s.Kind, s.Index)
	}
	return b.String()
}

// SetOutputs declares the network outputs; each must be a gate output.
func (nw *Network) SetOutputs(outs ...Signal) error {
	for j, s := range outs {
		if s.Kind != GateOut {
			return fmt.Errorf("netlist: output %d is %v; crossbar outputs must be gate outputs", j, s)
		}
		if err := nw.checkSignal(s, len(nw.Gates)); err != nil {
			return err
		}
	}
	nw.Outputs = append([]Signal(nil), outs...)
	return nil
}

// NumGates reports the gate count G.
func (nw *Network) NumGates() int { return len(nw.Gates) }

// NumInternalWires reports W: the number of distinct gates whose output is
// consumed by at least one other gate. Each such gate needs one multi-level
// connection column on the crossbar.
func (nw *Network) NumInternalWires() int {
	used := make([]bool, len(nw.Gates))
	for _, g := range nw.Gates {
		for _, s := range g.Fanins {
			if s.Kind == GateOut {
				used[s.Index] = true
			}
		}
	}
	n := 0
	for _, b := range used {
		if b {
			n++
		}
	}
	return n
}

// MaxFanin reports the largest gate fan-in in the network.
func (nw *Network) MaxFanin() int {
	m := 0
	for _, g := range nw.Gates {
		if len(g.Fanins) > m {
			m = len(g.Fanins)
		}
	}
	return m
}

// Eval computes all outputs for the input assignment x. Gate evaluation is a
// single topological sweep, mirroring the fabric's one-gate-per-cycle
// sequential schedule.
func (nw *Network) Eval(x []bool) []bool {
	vals := make([]bool, len(nw.Gates))
	read := func(s Signal) bool {
		switch s.Kind {
		case InputPos:
			return x[s.Index]
		case InputNeg:
			return !x[s.Index]
		default:
			return vals[s.Index]
		}
	}
	for i, g := range nw.Gates {
		and := true
		for _, s := range g.Fanins {
			if !read(s) {
				and = false
				break
			}
		}
		vals[i] = !and
	}
	y := make([]bool, len(nw.Outputs))
	for j, s := range nw.Outputs {
		y[j] = vals[s.Index]
	}
	return y
}

// Levels returns the logic depth of each gate (inputs are level 0; a gate is
// 1 + max level of its fan-ins) and the network depth.
func (nw *Network) Levels() (perGate []int, depth int) {
	perGate = make([]int, len(nw.Gates))
	for i, g := range nw.Gates {
		lv := 0
		for _, s := range g.Fanins {
			if s.Kind == GateOut && perGate[s.Index] >= lv {
				lv = perGate[s.Index]
			}
		}
		perGate[i] = lv + 1
		if perGate[i] > depth {
			depth = perGate[i]
		}
	}
	return perGate, depth
}

// SweepDead removes gates not reachable from any output and compacts
// indices. Outputs are re-pointed. Structural hash state is rebuilt.
func (nw *Network) SweepDead() {
	live := make([]bool, len(nw.Gates))
	var mark func(i int)
	mark = func(i int) {
		if live[i] {
			return
		}
		live[i] = true
		for _, s := range nw.Gates[i].Fanins {
			if s.Kind == GateOut {
				mark(s.Index)
			}
		}
	}
	for _, s := range nw.Outputs {
		mark(s.Index)
	}
	remap := make([]int, len(nw.Gates))
	var kept []Gate
	for i, g := range nw.Gates {
		if !live[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(kept)
		ng := Gate{Fanins: append([]Signal(nil), g.Fanins...)}
		for k, s := range ng.Fanins {
			if s.Kind == GateOut {
				ng.Fanins[k] = Signal{Kind: GateOut, Index: remap[s.Index]}
			}
		}
		kept = append(kept, ng)
	}
	nw.Gates = kept
	for j, s := range nw.Outputs {
		nw.Outputs[j] = Signal{Kind: GateOut, Index: remap[s.Index]}
	}
	nw.hash = map[string]int{}
	for i, g := range nw.Gates {
		nw.hash[signalsKey(g.Fanins)] = i
	}
}

// String renders the network in a readable single-line-per-gate form.
func (nw *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "inputs: %d\n", nw.NumIn)
	for i, g := range nw.Gates {
		fmt.Fprintf(&b, "g%d = NAND(", i)
		for k, s := range g.Fanins {
			if k > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
		b.WriteString(")\n")
	}
	fmt.Fprintf(&b, "outputs:")
	for _, s := range nw.Outputs {
		fmt.Fprintf(&b, " %s", s.String())
	}
	return b.String()
}
