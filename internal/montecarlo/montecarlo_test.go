package montecarlo

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestRunBasics(t *testing.T) {
	s, err := Run(Options{Samples: 100, Seed: 1}, func(i int, rng *rand.Rand) Outcome {
		return Outcome{Success: i%2 == 0, Elapsed: time.Millisecond, Value: float64(i)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Samples != 100 || s.Successes != 50 || s.SuccessRate != 0.5 {
		t.Errorf("summary = %+v", s)
	}
	if s.TotalTime != 100*time.Millisecond || s.MeanTime != time.Millisecond {
		t.Errorf("timing = %v/%v", s.TotalTime, s.MeanTime)
	}
	if s.Values[7] != 7 {
		t.Error("values must be in sample order")
	}
}

func TestRunDefaults(t *testing.T) {
	s, err := Run(Options{}, func(i int, rng *rand.Rand) Outcome { return Outcome{} })
	if err != nil {
		t.Fatal(err)
	}
	if s.Samples != DefaultSamples {
		t.Errorf("samples = %d, want %d", s.Samples, DefaultSamples)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Options{}, nil); err == nil {
		t.Error("nil trial must fail")
	}
	if _, err := Run(Options{Samples: -1}, func(i int, rng *rand.Rand) Outcome { return Outcome{} }); err == nil {
		t.Error("negative samples must fail")
	}
}

func TestRunDeterministicRNG(t *testing.T) {
	collect := func(parallel bool) []float64 {
		s, err := Run(Options{Samples: 50, Seed: 42, Parallel: parallel},
			func(i int, rng *rand.Rand) Outcome {
				return Outcome{Value: rng.Float64()}
			})
		if err != nil {
			t.Fatal(err)
		}
		return s.Values
	}
	seq := collect(false)
	par := collect(true)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("sample %d differs between sequential and parallel", i)
		}
	}
	seq2 := collect(false)
	for i := range seq {
		if seq[i] != seq2[i] {
			t.Fatal("reruns must be identical")
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	collect := func(workers int) []float64 {
		s, err := Run(Options{Samples: 64, Seed: 9, Parallel: true, Workers: workers},
			func(i int, rng *rand.Rand) Outcome {
				return Outcome{Value: rng.Float64()}
			})
		if err != nil {
			t.Fatal(err)
		}
		return s.Values
	}
	base := collect(1)
	for _, workers := range []int{2, 3, 7, 64, 200} {
		got := collect(workers)
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("workers=%d: sample %d differs from workers=1", workers, i)
			}
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []bool{false, true} {
		_, err := Run(Options{Samples: 100, Seed: 1, Parallel: parallel, Context: ctx},
			func(i int, rng *rand.Rand) Outcome { return Outcome{} })
		if err != context.Canceled {
			t.Fatalf("parallel=%v: err = %v, want context.Canceled", parallel, err)
		}
	}
}

func TestRunFactoryPerWorkerState(t *testing.T) {
	// The factory is invoked once per worker (once for serial runs), and a
	// trial's private scratch state persists across the samples it claims.
	factoryCalls := 0
	s, err := RunFactory(Options{Samples: 20, Seed: 3}, func() Trial {
		factoryCalls++
		claimed := 0
		return func(i int, rng *rand.Rand) Outcome {
			claimed++
			return Outcome{Value: rng.Float64(), Success: claimed > 0}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if factoryCalls != 1 {
		t.Fatalf("serial run built %d trials, want 1", factoryCalls)
	}
	// Same seeds through Run must reproduce the same values.
	plain, err := Run(Options{Samples: 20, Seed: 3}, func(i int, rng *rand.Rand) Outcome {
		return Outcome{Value: rng.Float64()}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Values {
		if s.Values[i] != plain.Values[i] {
			t.Fatalf("sample %d: factory path diverged from plain Run", i)
		}
	}
	if _, err := RunFactory(Options{Samples: 1}, nil); err == nil {
		t.Error("nil factory must fail")
	}
	if _, err := RunFactory(Options{Samples: 1}, func() Trial { return nil }); err == nil {
		t.Error("nil trial from factory must fail")
	}
	if _, err := RunFactory(Options{Samples: 1, Parallel: true}, func() Trial { return nil }); err == nil {
		t.Error("nil trial from factory must fail (parallel)")
	}
}

func TestRunSamplesIndependentOfNeighbours(t *testing.T) {
	// The rng of sample i must not depend on how many samples run.
	small, _ := Run(Options{Samples: 5, Seed: 7}, func(i int, rng *rand.Rand) Outcome {
		return Outcome{Value: rng.Float64()}
	})
	big, _ := Run(Options{Samples: 50, Seed: 7}, func(i int, rng *rand.Rand) Outcome {
		return Outcome{Value: rng.Float64()}
	})
	for i := 0; i < 5; i++ {
		if small.Values[i] != big.Values[i] {
			t.Fatalf("sample %d changed with batch size", i)
		}
	}
}
