// Package montecarlo provides the sampling harness of the paper's
// experiments: fixed-size batches (the paper uses 200 samples, "fluctuating
// of parameter values stabilize nearly after this threshold value") with
// per-sample derived random seeds, success-rate accounting, and timing.
package montecarlo

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// DefaultSamples is the paper's Monte Carlo sample size.
const DefaultSamples = 200

// Outcome is the result of a single trial.
type Outcome struct {
	// Success marks the trial as successful (e.g. a valid mapping found).
	Success bool
	// Elapsed is the portion of the trial the experiment wants timed
	// (algorithm time only, excluding workload generation).
	Elapsed time.Duration
	// Value carries an experiment-specific measurement (e.g. area).
	Value float64
}

// Trial runs one sample. The rng is derived deterministically from the
// harness seed and the sample index, so trials are reproducible and order
// independent.
type Trial func(sample int, rng *rand.Rand) Outcome

// Summary aggregates a batch.
type Summary struct {
	Samples     int
	Successes   int
	SuccessRate float64 // the paper's Psucc
	TotalTime   time.Duration
	MeanTime    time.Duration
	Values      []float64 // per-sample Value, in sample order
}

// Options tunes a run.
type Options struct {
	// Samples is the batch size; zero means DefaultSamples.
	Samples int
	// Seed drives the per-sample rngs.
	Seed int64
	// Parallel runs trials across GOMAXPROCS workers. Determinism is
	// preserved because each sample owns an independent seed.
	Parallel bool
}

// Run executes the batch.
func Run(opt Options, trial Trial) (Summary, error) {
	if trial == nil {
		return Summary{}, fmt.Errorf("montecarlo: nil trial")
	}
	n := opt.Samples
	if n == 0 {
		n = DefaultSamples
	}
	if n < 0 {
		return Summary{}, fmt.Errorf("montecarlo: negative sample count %d", n)
	}
	outcomes := make([]Outcome, n)
	if opt.Parallel {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				outcomes[i] = trial(i, sampleRNG(opt.Seed, i))
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			outcomes[i] = trial(i, sampleRNG(opt.Seed, i))
		}
	}
	s := Summary{Samples: n, Values: make([]float64, n)}
	for i, o := range outcomes {
		if o.Success {
			s.Successes++
		}
		s.TotalTime += o.Elapsed
		s.Values[i] = o.Value
	}
	if n > 0 {
		s.SuccessRate = float64(s.Successes) / float64(n)
		s.MeanTime = s.TotalTime / time.Duration(n)
	}
	return s, nil
}

// sampleRNG derives the per-sample random source.
func sampleRNG(seed int64, sample int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(sample)*2_147_483_659))
}
