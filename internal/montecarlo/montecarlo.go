// Package montecarlo provides the sampling harness of the paper's
// experiments: fixed-size batches (the paper uses 200 samples, "fluctuating
// of parameter values stabilize nearly after this threshold value") with
// per-sample derived random seeds, success-rate accounting, and timing.
//
// Parallel runs go through the shared internal/workpool pool: each worker
// goroutine owns a private *rand.Rand that is reseeded deterministically for
// every sample it claims, so no random state is ever shared between
// goroutines and a batch produces bit-identical Values regardless of worker
// count, scheduling order, or whether it ran serially.
package montecarlo

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/workpool"
)

// DefaultSamples is the paper's Monte Carlo sample size.
const DefaultSamples = 200

// Outcome is the result of a single trial.
type Outcome struct {
	// Success marks the trial as successful (e.g. a valid mapping found).
	Success bool
	// Elapsed is the portion of the trial the experiment wants timed
	// (algorithm time only, excluding workload generation).
	Elapsed time.Duration
	// Value carries an experiment-specific measurement (e.g. area).
	Value float64
}

// Trial runs one sample. The rng is derived deterministically from the
// harness seed and the sample index, so trials are reproducible and order
// independent.
type Trial func(sample int, rng *rand.Rand) Outcome

// TrialFactory builds one Trial per worker goroutine (one total for serial
// runs), so a trial can own private scratch state — preallocated defect
// maps, mapping buffers — that is reused across the samples that worker
// claims. Because per-sample randomness is derived from the harness seed
// and sample index alone, results are identical no matter how samples are
// spread over workers.
type TrialFactory func() Trial

// Summary aggregates a batch.
type Summary struct {
	Samples     int
	Successes   int
	SuccessRate float64 // the paper's Psucc
	TotalTime   time.Duration
	MeanTime    time.Duration
	Values      []float64 // per-sample Value, in sample order
}

// Options tunes a run.
type Options struct {
	// Samples is the batch size; zero means DefaultSamples.
	Samples int
	// Seed drives the per-sample rngs.
	Seed int64
	// Parallel runs trials across Workers goroutines. Determinism is
	// preserved because each sample's rng state is derived from Seed and
	// the sample index alone.
	Parallel bool
	// Workers bounds the parallel pool; zero means GOMAXPROCS. Ignored
	// unless Parallel is set.
	Workers int
	// Context cancels the batch early; remaining samples are skipped and
	// Run returns the context error. Nil means no cancellation.
	Context context.Context
}

// Run executes the batch.
func Run(opt Options, trial Trial) (Summary, error) {
	if trial == nil {
		return Summary{}, fmt.Errorf("montecarlo: nil trial")
	}
	return RunFactory(opt, func() Trial { return trial })
}

// RunFactory executes the batch with one Trial per worker built by the
// factory, enabling per-worker scratch state. Run is RunFactory with a
// factory that shares one Trial everywhere.
func RunFactory(opt Options, factory TrialFactory) (Summary, error) {
	if factory == nil {
		return Summary{}, fmt.Errorf("montecarlo: nil trial factory")
	}
	n := opt.Samples
	if n == 0 {
		n = DefaultSamples
	}
	if n < 0 {
		return Summary{}, fmt.Errorf("montecarlo: negative sample count %d", n)
	}
	outcomes := make([]Outcome, n)
	if opt.Parallel {
		workers := opt.Workers
		if workers <= 0 {
			workers = workpool.DefaultWorkers()
		}
		if workers > n {
			workers = n
		}
		// One private rng and trial per worker: the rng is reseeded from
		// (Seed, sample) before each trial, so results do not depend on
		// which worker claims which sample.
		rngs := make([]*rand.Rand, workers)
		trials := make([]Trial, workers)
		for w := range rngs {
			rngs[w] = rand.New(rand.NewSource(0))
			if trials[w] = factory(); trials[w] == nil {
				return Summary{}, fmt.Errorf("montecarlo: factory returned nil trial")
			}
		}
		if err := workpool.Run(opt.Context, workers, n, func(w, i int) {
			runSample(opt.Seed, i, rngs[w], trials[w], outcomes)
		}); err != nil {
			return Summary{}, err
		}
	} else {
		// One rng for the whole serial batch, reseeded per sample exactly
		// like the parallel workers' — bit-identical outcomes, no per-trial
		// source allocation.
		trial := factory()
		if trial == nil {
			return Summary{}, fmt.Errorf("montecarlo: factory returned nil trial")
		}
		rng := rand.New(rand.NewSource(0))
		if err := runSerial(opt, trial, rng, outcomes); err != nil {
			return Summary{}, err
		}
	}
	s := Summary{Samples: n, Values: make([]float64, n)}
	for i, o := range outcomes {
		if o.Success {
			s.Successes++
		}
		s.TotalTime += o.Elapsed
		s.Values[i] = o.Value
	}
	if n > 0 {
		s.SuccessRate = float64(s.Successes) / float64(n)
		s.MeanTime = s.TotalTime / time.Duration(n)
	}
	return s, nil
}

// runSerial is the serial batch loop: reseed, run, record, once per
// sample. It is the hot loop of every non-parallel experiment, so it is
// pinned allocation-free; per-trial cost is the trial's own.
//
//xbar:hotpath
func runSerial(opt Options, trial Trial, rng *rand.Rand, outcomes []Outcome) error {
	for i := range outcomes {
		if opt.Context != nil {
			//xbar:allow hotpath-alloc cancellation poll is an interface call, not an allocation
			if err := opt.Context.Err(); err != nil {
				return err
			}
		}
		runSample(opt.Seed, i, rng, trial, outcomes)
	}
	return nil
}

// runSample reseeds the (worker-private) rng for sample i and runs the
// trial: the shared per-sample step of the serial and parallel paths, which
// is what makes their outcomes bit-identical.
//
//xbar:hotpath
func runSample(seed int64, i int, rng *rand.Rand, trial Trial, outcomes []Outcome) {
	rng.Seed(SampleSeed(seed, i))
	//xbar:allow hotpath-alloc the trial callback is the experiment body; its own hot paths carry their own annotations
	outcomes[i] = trial(i, rng)
}

// SampleSeed derives the per-sample rng seed from the harness seed — the
// schedule every trial's randomness comes from, exported so benchmarks and
// external replays can reproduce individual samples exactly.
//
//xbar:hotpath
func SampleSeed(seed int64, sample int) int64 {
	return seed + int64(sample)*2_147_483_659
}
