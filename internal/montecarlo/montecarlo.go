// Package montecarlo provides the sampling harness of the paper's
// experiments: fixed-size batches (the paper uses 200 samples, "fluctuating
// of parameter values stabilize nearly after this threshold value") with
// per-sample derived random seeds, success-rate accounting, and timing.
//
// Parallel runs go through the shared internal/workpool pool: each worker
// goroutine owns a private *rand.Rand that is reseeded deterministically for
// every sample it claims, so no random state is ever shared between
// goroutines and a batch produces bit-identical Values regardless of worker
// count, scheduling order, or whether it ran serially.
package montecarlo

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/workpool"
)

// DefaultSamples is the paper's Monte Carlo sample size.
const DefaultSamples = 200

// Outcome is the result of a single trial.
type Outcome struct {
	// Success marks the trial as successful (e.g. a valid mapping found).
	Success bool
	// Elapsed is the portion of the trial the experiment wants timed
	// (algorithm time only, excluding workload generation).
	Elapsed time.Duration
	// Value carries an experiment-specific measurement (e.g. area).
	Value float64
}

// Trial runs one sample. The rng is derived deterministically from the
// harness seed and the sample index, so trials are reproducible and order
// independent.
type Trial func(sample int, rng *rand.Rand) Outcome

// Summary aggregates a batch.
type Summary struct {
	Samples     int
	Successes   int
	SuccessRate float64 // the paper's Psucc
	TotalTime   time.Duration
	MeanTime    time.Duration
	Values      []float64 // per-sample Value, in sample order
}

// Options tunes a run.
type Options struct {
	// Samples is the batch size; zero means DefaultSamples.
	Samples int
	// Seed drives the per-sample rngs.
	Seed int64
	// Parallel runs trials across Workers goroutines. Determinism is
	// preserved because each sample's rng state is derived from Seed and
	// the sample index alone.
	Parallel bool
	// Workers bounds the parallel pool; zero means GOMAXPROCS. Ignored
	// unless Parallel is set.
	Workers int
	// Context cancels the batch early; remaining samples are skipped and
	// Run returns the context error. Nil means no cancellation.
	Context context.Context
}

// Run executes the batch.
func Run(opt Options, trial Trial) (Summary, error) {
	if trial == nil {
		return Summary{}, fmt.Errorf("montecarlo: nil trial")
	}
	n := opt.Samples
	if n == 0 {
		n = DefaultSamples
	}
	if n < 0 {
		return Summary{}, fmt.Errorf("montecarlo: negative sample count %d", n)
	}
	outcomes := make([]Outcome, n)
	if opt.Parallel {
		workers := opt.Workers
		if workers <= 0 {
			workers = workpool.DefaultWorkers()
		}
		if workers > n {
			workers = n
		}
		// One private rng per worker: reseeded from (Seed, sample) before
		// each trial, so results do not depend on which worker claims
		// which sample.
		rngs := make([]*rand.Rand, workers)
		for w := range rngs {
			rngs[w] = rand.New(rand.NewSource(0))
		}
		if err := workpool.Run(opt.Context, workers, n, func(w, i int) {
			rng := rngs[w]
			rng.Seed(sampleSeed(opt.Seed, i))
			outcomes[i] = trial(i, rng)
		}); err != nil {
			return Summary{}, err
		}
	} else {
		for i := 0; i < n; i++ {
			if opt.Context != nil && opt.Context.Err() != nil {
				return Summary{}, opt.Context.Err()
			}
			outcomes[i] = trial(i, sampleRNG(opt.Seed, i))
		}
	}
	s := Summary{Samples: n, Values: make([]float64, n)}
	for i, o := range outcomes {
		if o.Success {
			s.Successes++
		}
		s.TotalTime += o.Elapsed
		s.Values[i] = o.Value
	}
	if n > 0 {
		s.SuccessRate = float64(s.Successes) / float64(n)
		s.MeanTime = s.TotalTime / time.Duration(n)
	}
	return s, nil
}

// sampleSeed derives the per-sample seed from the harness seed.
func sampleSeed(seed int64, sample int) int64 {
	return seed + int64(sample)*2_147_483_659
}

// sampleRNG derives the per-sample random source.
func sampleRNG(seed int64, sample int) *rand.Rand {
	return rand.New(rand.NewSource(sampleSeed(seed, sample)))
}
