// Package workpool provides the bounded fan-out primitive shared by the
// compilation engine and the Monte Carlo harness: a fixed set of worker
// goroutines draining an indexed task list, with cooperative cancellation
// through a context. Keeping the pool in one place means every parallel
// sweep in the repository saturates cores the same way and honours
// cancellation the same way.
package workpool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes zero.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes task(worker, index) for every index in [0, n) on `workers`
// goroutines. Each worker has a stable identity in [0, workers), so callers
// can give every worker private state (an RNG, a scratch buffer) without
// locking. Indices are claimed from a shared atomic counter, so the
// assignment of index to worker is scheduling dependent — tasks must not
// rely on it.
//
// When ctx is cancelled, workers stop claiming new indices and Run returns
// ctx.Err(); tasks already started run to completion. A nil ctx means no
// cancellation.
func Run(ctx context.Context, workers, n int, task func(worker, index int)) error {
	if task == nil {
		return fmt.Errorf("workpool: nil task")
	}
	if n < 0 {
		return fmt.Errorf("workpool: negative task count %d", n)
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return ctxErr(ctx)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctxErr(ctx) != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(w, i)
			}
		}(w)
	}
	wg.Wait()
	return ctxErr(ctx)
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
