package workpool

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	n := 1000
	counts := make([]atomic.Int32, n)
	if err := Run(context.Background(), 8, n, func(w, i int) {
		counts[i].Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int32
	if err := Run(context.Background(), workers, 200, func(w, i int) {
		a := active.Add(1)
		for {
			p := peak.Load()
			if a <= p || peak.CompareAndSwap(p, a) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		active.Add(-1)
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestRunWorkerIdentityIsStable(t *testing.T) {
	const workers = 4
	seen := make([]atomic.Int32, workers)
	if err := Run(context.Background(), workers, 100, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		seen[w].Add(1)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	err := Run(ctx, 2, 10_000, func(w, i int) {
		if done.Add(1) == 5 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := done.Load(); d >= 10_000 {
		t.Fatalf("cancellation did not stop the pool (ran %d tasks)", d)
	}
}

func TestRunEdgeCases(t *testing.T) {
	if err := Run(context.Background(), 4, 0, func(w, i int) {}); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := Run(nil, 0, 3, func(w, i int) {}); err != nil {
		t.Fatalf("nil ctx, default workers: %v", err)
	}
	if err := Run(context.Background(), 4, -1, func(w, i int) {}); err == nil {
		t.Fatal("negative n must fail")
	}
	if err := Run(context.Background(), 4, 1, nil); err == nil {
		t.Fatal("nil task must fail")
	}
}
