// Package report renders the experiment outputs: fixed-width ASCII tables
// matching the paper's table shapes and CSV series for the figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	var sep strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(w, "%-*s  ", widths[i], h)
		sep.WriteString(strings.Repeat("-", widths[i]))
		sep.WriteString("  ")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.TrimRight(sep.String(), " "))
	for _, row := range t.rows {
		for i, cell := range row {
			fmt.Fprintf(w, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes rows of float64 series as comma-separated values with a header,
// the format used for the figure data.
func CSV(w io.Writer, headers []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders a coarse text plot of a series, so figure shapes are
// visible directly in terminal output.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(marks)-1))
		}
		b.WriteRune(marks[idx])
	}
	return b.String()
}
