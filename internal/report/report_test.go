package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Name", "Area", "IR")
	tb.AddRow("rd53", 544, 0.33)
	tb.AddRow("longer-name", 12, 0.125)
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "rd53") {
		t.Errorf("render missing content:\n%s", s)
	}
	if !strings.Contains(s, "0.330") {
		t.Errorf("float formatting wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), s)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"sample", "two", "multi"}, [][]float64{
		{0, 108, 57},
		{1, 126, 70},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "sample,two,multi\n0,108,57\n1,126,70\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty series should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d, want 4", len([]rune(s)))
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Errorf("flat series = %q", flat)
	}
}
