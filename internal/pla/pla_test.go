package pla

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

const sample = `# con1 style example
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
10- 10
-01 11
0-0 01
.e
`

func TestParseBasics(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cover.NumIn != 3 || f.Cover.NumOut != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", f.Cover.NumIn, f.Cover.NumOut)
	}
	if f.Cover.NumProducts() != 3 {
		t.Fatalf("products = %d, want 3", f.Cover.NumProducts())
	}
	if len(f.InLabels) != 3 || f.InLabels[0] != "a" {
		t.Errorf("InLabels = %v", f.InLabels)
	}
	if len(f.OutLabels) != 2 || f.OutLabels[1] != "g" {
		t.Errorf("OutLabels = %v", f.OutLabels)
	}
}

func TestParseEvaluates(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	y := f.Cover.Eval([]bool{true, false, false})
	if !y[0] || y[1] {
		t.Errorf("Eval(100) = %v, want [true false]", y)
	}
	y = f.Cover.Eval([]bool{false, false, true})
	if !y[0] || !y[1] {
		t.Errorf("Eval(001) = %v, want [true true]", y)
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := f.String()
	g, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	ok, err := logic.Equivalent(f.Cover, g.Cover, 0, nil)
	if err != nil || !ok {
		t.Errorf("round trip changed the function (ok=%v err=%v)", ok, err)
	}
	if g.Cover.NumProducts() != f.Cover.NumProducts() {
		t.Errorf("round trip changed product count")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"10- 1\n",                        // cube before .i/.o
		".i 2\n.o 1\n.p 5\n10 1\n.e\n",   // .p mismatch
		".i x\n.o 1\n.e\n",               // bad .i
		".i 2\n.o 1\n.ilb a\n10 1\n.e\n", // .ilb arity
		".i 2\n.o 2\n.ob a\n10 11\n.e\n", // .ob arity
		".i 2\n.o 1\n1x 1\n.e\n",         // bad literal
		".i 2\n",                         // missing .o entirely? (.o undeclared)
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) should fail", s)
		}
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	s := ".i 2\n.o 1\n\n# full comment\n10 1 # trailing comment\n.e\n"
	f, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cover.NumProducts() != 1 {
		t.Errorf("products = %d, want 1", f.Cover.NumProducts())
	}
}

func TestParseEmptyCover(t *testing.T) {
	f, err := ParseString(".i 4\n.o 2\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Cover.IsEmpty() {
		t.Error("cover should be empty")
	}
}

func TestParseSingleOutputShorthandRejectedForMulti(t *testing.T) {
	if _, err := ParseString(".i 2\n.o 2\n10\n.e\n"); err == nil {
		t.Error("missing output part with .o 2 should fail")
	}
}

func TestParseTypeDirective(t *testing.T) {
	f, err := ParseString(".i 1\n.o 1\n.type fr\n1 1\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != "fr" {
		t.Errorf("Type = %q, want fr", f.Type)
	}
	if !strings.Contains(f.String(), ".type fr") {
		t.Error("Write must preserve .type")
	}
}

func TestParseStopsAtEnd(t *testing.T) {
	f, err := ParseString(".i 2\n.o 1\n10 1\n.e\n11 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Cover.NumProducts() != 1 {
		t.Errorf("rows after .e must be ignored, got %d products", f.Cover.NumProducts())
	}
}
