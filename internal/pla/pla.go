// Package pla reads and writes espresso-format PLA files, the interchange
// format of the IWLS'93/MCNC benchmark suite the paper evaluates on.
//
// The subset supported covers the completely-specified functions the paper
// uses: .i/.o/.p/.ilb/.ob/.type/.e directives and {0,1,-} input plus
// {0,1,~,-} output rows (type fd treats '-' outputs as "not in this cover",
// matching espresso's default reading for ON-set covers).
package pla

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/logic"
)

// File is a parsed PLA: the cover plus its metadata.
type File struct {
	Name      string   // optional model name (from comments or caller)
	InLabels  []string // .ilb labels, empty when absent
	OutLabels []string // .ob labels, empty when absent
	Type      string   // .type directive; "" means fd (espresso default)
	Cover     *logic.Cover
}

// Parse reads a PLA from r.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	f := &File{}
	nIn, nOut := -1, -1
	declaredP := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".i":
				v, err := directiveInt(fields, lineNo)
				if err != nil {
					return nil, err
				}
				nIn = v
			case ".o":
				v, err := directiveInt(fields, lineNo)
				if err != nil {
					return nil, err
				}
				nOut = v
			case ".p":
				v, err := directiveInt(fields, lineNo)
				if err != nil {
					return nil, err
				}
				declaredP = v
			case ".ilb":
				f.InLabels = fields[1:]
			case ".ob":
				f.OutLabels = fields[1:]
			case ".type":
				if len(fields) > 1 {
					f.Type = fields[1]
				}
			case ".e", ".end":
				goto done
			default:
				// Ignore directives we do not model (.mv, .phase, ...): the
				// benchmark set in this repo does not use them.
			}
			continue
		}
		if nIn < 0 || nOut < 0 {
			return nil, fmt.Errorf("pla: line %d: cube before .i/.o declarations", lineNo)
		}
		if f.Cover == nil {
			f.Cover = logic.NewCover(nIn, nOut)
		}
		cube, err := logic.ParseCube(line, nIn, nOut)
		if err != nil {
			return nil, fmt.Errorf("pla: line %d: %v", lineNo, err)
		}
		f.Cover.Cubes = append(f.Cover.Cubes, cube)
	}
done:
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pla: %v", err)
	}
	if nIn < 0 || nOut < 0 {
		return nil, fmt.Errorf("pla: missing .i/.o declarations")
	}
	if f.Cover == nil {
		f.Cover = logic.NewCover(nIn, nOut)
	}
	if declaredP >= 0 && declaredP != f.Cover.NumProducts() {
		return nil, fmt.Errorf("pla: .p declares %d products, file has %d", declaredP, f.Cover.NumProducts())
	}
	if len(f.InLabels) > 0 && len(f.InLabels) != nIn {
		return nil, fmt.Errorf("pla: .ilb has %d labels, .i declares %d", len(f.InLabels), nIn)
	}
	if len(f.OutLabels) > 0 && len(f.OutLabels) != nOut {
		return nil, fmt.Errorf("pla: .ob has %d labels, .o declares %d", len(f.OutLabels), nOut)
	}
	return f, nil
}

func directiveInt(fields []string, lineNo int) (int, error) {
	if len(fields) < 2 {
		return 0, fmt.Errorf("pla: line %d: %s needs an argument", lineNo, fields[0])
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil || v < 0 {
		return 0, fmt.Errorf("pla: line %d: bad %s argument %q", lineNo, fields[0], fields[1])
	}
	return v, nil
}

// ParseString parses a PLA held in a string.
func ParseString(s string) (*File, error) {
	return Parse(strings.NewReader(s))
}

// Write emits the PLA in espresso format.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if f.Name != "" {
		fmt.Fprintf(bw, "# %s\n", f.Name)
	}
	fmt.Fprintf(bw, ".i %d\n.o %d\n", f.Cover.NumIn, f.Cover.NumOut)
	if len(f.InLabels) > 0 {
		fmt.Fprintf(bw, ".ilb %s\n", strings.Join(f.InLabels, " "))
	}
	if len(f.OutLabels) > 0 {
		fmt.Fprintf(bw, ".ob %s\n", strings.Join(f.OutLabels, " "))
	}
	if f.Type != "" {
		fmt.Fprintf(bw, ".type %s\n", f.Type)
	}
	fmt.Fprintf(bw, ".p %d\n", f.Cover.NumProducts())
	for _, cube := range f.Cover.Cubes {
		fmt.Fprintln(bw, cube.String())
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// String renders the PLA as text.
func (f *File) String() string {
	var b strings.Builder
	if err := f.Write(&b); err != nil {
		return "" // strings.Builder never errors; keep the signature honest
	}
	return b.String()
}
