package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/defect"
	"repro/internal/randfunc"
	"repro/internal/xbar"
)

// benchProblem builds a mid-size random instance (8-input two-level layout,
// 10% stuck-open fabric) for the matcher micro-benches.
func benchProblem(b *testing.B) *Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	cov, err := randfunc.Generate(randfunc.Params{Inputs: 8}, rng)
	if err != nil {
		b.Fatal(err)
	}
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		b.Fatal(err)
	}
	dm, err := defect.Generate(l.Rows, l.Cols, defect.Params{POpen: 0.10}, rng)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewProblem(l, dm)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkRowMatch compares the word-packed compatibility test against the
// retained scalar reference — the per-check speedup behind every mapping
// algorithm's hot loop.
func BenchmarkRowMatch(b *testing.B) {
	p := benchProblem(b)
	match := func(b *testing.B, fn func(int, int, *Stats) bool) {
		b.ReportAllocs()
		var stats Stats
		for i := 0; i < b.N; i++ {
			fm := i % p.Layout.Rows
			fn(fm, (i*7)%p.Defects.Rows, &stats)
		}
	}
	b.Run("packed", func(b *testing.B) { match(b, p.rowMatches) })
	b.Run("scalar", func(b *testing.B) { match(b, p.scalarRowMatches) })
}

// BenchmarkBatchRowMatch compares full candidate-set construction — the
// candidate bitset of every FM row over every CM row, the enumeration input
// of HBA and EA — via the batched kernel against per-pair loops over the
// packed matcher and the retained scalar reference.
func BenchmarkBatchRowMatch(b *testing.B) {
	p := benchProblem(b)
	var s Scratch
	perPair := func(fn func(int, int, *Stats) bool) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var stats Stats
			for i := 0; i < b.N; i++ {
				s.cand.Reshape(p.Layout.Rows, p.Defects.Rows)
				for fm := 0; fm < p.Layout.Rows; fm++ {
					row := s.cand.Row(fm)
					for cm := 0; cm < p.Defects.Rows; cm++ {
						if fn(fm, cm, &stats) {
							row.Set(cm)
						}
					}
				}
			}
		}
	}
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		var stats Stats
		for i := 0; i < b.N; i++ {
			s.computeCandidates(p, &stats)
		}
	})
	b.Run("perpair", perPair(p.rowMatches))
	b.Run("scalar", perPair(p.scalarRowMatches))
}
