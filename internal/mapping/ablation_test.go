package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/defect"
	"repro/internal/xbar"
)

func TestHBAWithPaperOptionsMatchesHBA(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		f := randomMulti(rng, n, 1+rng.Intn(3), 1+rng.Intn(7))
		l, err := xbar.NewTwoLevel(f)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := defect.Generate(l.Rows, l.Cols, defect.Params{POpen: 0.12}, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(l, dm)
		if err != nil {
			t.Fatal(err)
		}
		a := HBA(p)
		b := HBAWith(p, PaperHBAOptions())
		if a.Valid != b.Valid {
			t.Fatalf("HBAWith(paper options) disagrees with HBA: %v vs %v", a.Valid, b.Valid)
		}
		if b.Valid {
			if err := p.Validate(b.Assignment); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAblationVariantsAreSound(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	variants := []HBAOptions{
		{},
		{Backtracking: true},
		{ExactOutputs: true},
		{Backtracking: true, ExactOutputs: true, DensityOrder: true},
		{DensityOrder: true},
	}
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(4)
		f := randomMulti(rng, n, 1+rng.Intn(3), 1+rng.Intn(7))
		l, err := xbar.NewTwoLevel(f)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := defect.Generate(l.Rows, l.Cols, defect.Params{POpen: 0.12}, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(l, dm)
		if err != nil {
			t.Fatal(err)
		}
		exact := Exact(p)
		for _, opt := range variants {
			res := HBAWith(p, opt)
			if res.Valid {
				if err := p.Validate(res.Assignment); err != nil {
					t.Fatalf("variant %+v produced invalid mapping: %v", opt, err)
				}
				if !exact.Valid {
					t.Fatalf("variant %+v succeeded where EA failed", opt)
				}
			}
		}
	}
}

func TestBacktrackingHelps(t *testing.T) {
	// Across many random instances, backtracking must succeed at least as
	// often as the plain greedy sweep, and strictly more overall.
	rng := rand.New(rand.NewSource(107))
	withBT, withoutBT := 0, 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(4)
		f := randomMulti(rng, n, 1+rng.Intn(2), 2+rng.Intn(6))
		l, err := xbar.NewTwoLevel(f)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := defect.Generate(l.Rows, l.Cols, defect.Params{POpen: 0.18}, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(l, dm)
		if err != nil {
			t.Fatal(err)
		}
		if HBAWith(p, HBAOptions{Backtracking: true, ExactOutputs: true}).Valid {
			withBT++
		}
		if HBAWith(p, HBAOptions{Backtracking: false, ExactOutputs: true}).Valid {
			withoutBT++
		}
	}
	if withBT < withoutBT {
		t.Errorf("backtracking hurt: %d vs %d successes", withBT, withoutBT)
	}
	if withBT == withoutBT {
		t.Logf("note: backtracking never changed the outcome in %d trials", 400)
	}
}

func TestExactOutputsHelp(t *testing.T) {
	// The paper's motivation for the hybrid: outputs assigned exactly must
	// do at least as well as greedy outputs.
	rng := rand.New(rand.NewSource(109))
	exactWins, greedyWins := 0, 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(4)
		f := randomMulti(rng, n, 2+rng.Intn(3), 2+rng.Intn(6))
		l, err := xbar.NewTwoLevel(f)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := defect.Generate(l.Rows, l.Cols, defect.Params{POpen: 0.18}, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(l, dm)
		if err != nil {
			t.Fatal(err)
		}
		e := HBAWith(p, HBAOptions{Backtracking: true, ExactOutputs: true}).Valid
		g := HBAWith(p, HBAOptions{Backtracking: true, ExactOutputs: false}).Valid
		if e && !g {
			exactWins++
		}
		if g && !e {
			greedyWins++
		}
	}
	// Whenever first-fit outputs succeed, Munkres outputs succeed too
	// (both pick from the same free rows); the converse fails on some
	// instances, which is the paper's motivation for the hybrid.
	if greedyWins != 0 {
		t.Errorf("greedy outputs succeeded where exact failed on %d instances; impossible", greedyWins)
	}
	if exactWins == 0 {
		t.Log("note: exact output assignment never made the difference in this corpus")
	}
}

func TestFig8UnderAllVariants(t *testing.T) {
	p := fig8Problem(t)
	for _, opt := range []HBAOptions{
		PaperHBAOptions(),
		{Backtracking: true, ExactOutputs: true, DensityOrder: true},
	} {
		res := HBAWith(p, opt)
		if !res.Valid {
			t.Errorf("variant %+v fails the Fig. 8 instance: %s", opt, res.Reason)
		}
	}
}
