package mapping

import (
	"fmt"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/munkres"
)

// HBAOptions exposes the hybrid algorithm's design choices for ablation:
// the paper motivates (a) backtracking in the product phase and (b) an
// exact assignment for the output rows ("more critical since a single
// defect might discard a whole output"). Disabling either quantifies its
// contribution; DensityOrder is an extension beyond the paper.
type HBAOptions struct {
	// Backtracking enables the single-level relocation step of Algorithm 1.
	Backtracking bool
	// ExactOutputs assigns output rows with Munkres; when false, outputs
	// are placed with the same greedy scan as products.
	ExactOutputs bool
	// DensityOrder places the densest product rows (most required-active
	// devices) first instead of top-to-bottom. Hard rows grab scarce
	// compatible lines early; an extension beyond the paper.
	DensityOrder bool
	// ScarcityOrder places the product rows with the fewest compatible CM
	// rows first, reading each row's candidate popcount off the batched
	// matching kernel. Rows with the scarcest options commit before the
	// flexible ones consume their lines; an extension beyond the paper.
	// Takes precedence over DensityOrder.
	ScarcityOrder bool
}

// PaperHBAOptions returns Algorithm 1 as published: backtracking on, exact
// output assignment on, top-to-bottom order.
func PaperHBAOptions() HBAOptions {
	return HBAOptions{Backtracking: true, ExactOutputs: true}
}

// HBAWith runs the hybrid algorithm under the given option set.
func HBAWith(p *Problem, opt HBAOptions) Result {
	var stats Stats
	if ok, c := p.ColumnFeasible(); !ok {
		return Result{Reason: fmt.Sprintf("column %d poisoned by a stuck-closed defect", c), Stats: stats}
	}
	nCM := p.Defects.Rows
	products := append([]int(nil), p.Layout.ProductRows()...)
	outputs := p.Layout.OutputRows()
	switch {
	case opt.ScarcityOrder:
		// The ordering pass costs one batched-kernel sweep on top of the
		// per-pair loops below (this path is the ablation harness, not the
		// hot path). Its checks go to a throwaway Stats so MatchChecks keeps
		// the per-pair early-exit convention of the other variants.
		var s Scratch
		var orderStats Stats
		s.computeCandidates(p, &orderStats)
		scarcity := func(r int) int { return bitmat.PopCount(s.cand.Row(r)) }
		sort.SliceStable(products, func(a, b int) bool {
			return scarcity(products[a]) < scarcity(products[b])
		})
	case opt.DensityOrder:
		density := func(r int) int { return bitmat.PopCount(p.Layout.ActiveRow(r)) }
		sort.SliceStable(products, func(a, b int) bool {
			return density(products[a]) > density(products[b])
		})
	}

	occupant := make([]int, nCM)
	for t := range occupant {
		occupant[t] = -1
	}
	place := make([]int, p.Layout.Rows)
	for r := range place {
		place[r] = -1
	}
	findUnmatched := func(fmRow, except int) int {
		for t := 0; t < nCM; t++ {
			if t == except {
				continue
			}
			if occupant[t] == -1 && p.rowMatches(fmRow, t, &stats) {
				return t
			}
		}
		return -1
	}
	placeRow := func(i int) bool {
		if t := findUnmatched(i, -1); t >= 0 {
			occupant[t] = i
			place[i] = t
			return true
		}
		if !opt.Backtracking {
			return false
		}
		stats.Backtracks++
		for t := 0; t < nCM; t++ {
			if occupant[t] == -1 || !p.rowMatches(i, t, &stats) {
				continue
			}
			prev := occupant[t]
			occupant[t] = -1
			if u := findUnmatched(prev, t); u >= 0 {
				occupant[u] = prev
				place[prev] = u
				occupant[t] = i
				place[i] = t
				return true
			}
			occupant[t] = prev
		}
		return false
	}

	for _, i := range products {
		if !placeRow(i) {
			return Result{
				Reason: fmt.Sprintf("product row %d has no compatible crossbar row", i),
				Stats:  stats,
			}
		}
	}
	if !opt.ExactOutputs {
		// First-fit output placement among the free rows, with no
		// relocation: this isolates exactly the choice the paper motivates
		// (Munkres on outputs vs continuing the greedy scan). Whenever the
		// first-fit succeeds, Munkres also succeeds, so the exact variant
		// dominates this one by construction.
		for _, i := range outputs {
			t := findUnmatched(i, -1)
			if t < 0 {
				return Result{
					Reason: fmt.Sprintf("output row %d has no compatible crossbar row", i),
					Stats:  stats,
				}
			}
			occupant[t] = i
			place[i] = t
		}
		return Result{Valid: true, Assignment: place, Stats: stats}
	}

	var free []int
	for t := 0; t < nCM; t++ {
		if occupant[t] == -1 {
			free = append(free, t)
		}
	}
	if len(free) < len(outputs) {
		return Result{Reason: "not enough free rows for outputs", Stats: stats}
	}
	forbidden := make([][]bool, len(outputs))
	for k, i := range outputs {
		forbidden[k] = make([]bool, len(free))
		for u, t := range free {
			forbidden[k][u] = !p.rowMatches(i, t, &stats)
		}
	}
	assign, ok, err := munkres.SolveBinary(forbidden)
	if err != nil {
		return Result{Reason: err.Error(), Stats: stats}
	}
	if !ok {
		return Result{Reason: "outputs cannot be assigned defect-free", Stats: stats}
	}
	for k, i := range outputs {
		place[i] = free[assign[k]]
	}
	return Result{Valid: true, Assignment: place, Stats: stats}
}
