package mapping

// Incremental-vs-full parity for the delta-window consumers: a reused
// Scratch patching its candidate bitsets, and a reused ColumnScratch
// refreshing its transposed view and projected map, must stay bit-identical
// to cold rebuilds across arbitrary Set / Regenerate sequences. The fresh
// reference always runs against a clone of the defect map so it cannot
// consume (and thereby reset) the delta window the reused scratch relies on.

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/defect"
	"repro/internal/randfunc"
	"repro/internal/xbar"
)

// cloneMap copies a defect map cell by cell into a fresh Map with its own
// delta window.
func cloneMap(m *defect.Map) *defect.Map {
	out := defect.NewMap(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(r, c, m.At(r, c))
		}
	}
	return out
}

// mutate applies one random step of the kinds the hot loops produce:
// full-trial Regenerate, sparse manual Sets, or nothing at all (the skip
// path).
func mutate(t *testing.T, dm *defect.Map, rng *rand.Rand, step int) {
	t.Helper()
	switch step % 4 {
	case 0, 1:
		if err := dm.Regenerate(defect.Params{POpen: 0.1, PClosed: 0.02}, rng); err != nil {
			t.Fatal(err)
		}
	case 2:
		for n := rng.Intn(4); n >= 0; n-- {
			dm.Set(rng.Intn(dm.Rows), rng.Intn(dm.Cols), defect.Kind(rng.Intn(3)))
		}
	case 3:
		// No mutation: the next refresh must take the version-skip path.
	}
}

// TestIncrementalCandidatesMatchFull drives a reused Scratch through random
// delta sequences and compares its candidate bitsets — the raw cand matrix,
// not just the algorithm outcome — against a cold rebuild on a cloned map.
func TestIncrementalCandidatesMatchFull(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cov, err := randfunc.Generate(randfunc.Params{Inputs: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		t.Fatal(err)
	}
	dm := defect.NewMap(l.Rows+3, l.Cols)
	p, err := NewProblem(l, dm)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewScratch()
	for step := 0; step < 60; step++ {
		mutate(t, dm, rng, step)
		var warmStats Stats
		warm.computeCandidates(p, &warmStats)

		cold := NewScratch()
		coldProblem, err := NewProblem(l, cloneMap(dm))
		if err != nil {
			t.Fatal(err)
		}
		var coldStats Stats
		cold.computeCandidates(coldProblem, &coldStats)

		if warmStats != coldStats {
			t.Fatalf("step %d: stats diverged: warm %+v cold %+v", step, warmStats, coldStats)
		}
		for i := 0; i < l.Rows; i++ {
			if !bitmat.Equal(warm.cand.Row(i), cold.cand.Row(i)) {
				t.Fatalf("step %d: candidate bitset of FM row %d diverged", step, i)
			}
		}
	}
}

// TestIncrementalColumnViewMatchesFull drives a reused ColumnScratch through
// random delta sequences on the fabric map and checks its transposed
// functional view — maintained per dirty 64×64 block — against a full
// transpose of the current map.
func TestIncrementalColumnViewMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	dm := defect.NewMap(130, 70)
	s := NewColumnScratch()
	for step := 0; step < 60; step++ {
		mutate(t, dm, rng, step)
		s.refreshColumnView(dm)
		want := bitmat.TransposeInto(nil, dm.FunctionalMatrix())
		for c := 0; c < dm.Cols; c++ {
			if !bitmat.Equal(s.colsView.Row(c), want.Row(c)) {
				t.Fatalf("step %d: incremental column view diverged at column %d", step, c)
			}
		}
	}
}

// TestColumnAwareIncrementalMatchesFresh runs the full column-aware search
// on a reused scratch across delta sequences — exercising the incremental
// transpose, the diff-based projection, and the cascaded candidate patching
// on the projected map — against a fresh run on a cloned map each step.
func TestColumnAwareIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cov, err := randfunc.Generate(randfunc.Params{Inputs: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		t.Fatal(err)
	}
	spec := SpecFor(l)
	spec.InputPairs += 2
	spec.OutputPairs++
	dm := defect.NewMap(l.Rows+3, spec.Cols())
	s := NewColumnScratch()
	for step := 0; step < 40; step++ {
		mutate(t, dm, rng, step)
		opt := ColumnOptions{Seed: int64(step), Retries: 6}
		got, err := ColumnAwareScratch(l, dm, spec, opt, s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ColumnAware(l, cloneMap(dm), spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Valid != want.Valid || got.Attempts != want.Attempts || got.Reason != want.Reason {
			t.Fatalf("step %d: outcome diverged: warm {%v %d %q} vs fresh {%v %d %q}",
				step, got.Valid, got.Attempts, got.Reason, want.Valid, want.Attempts, want.Reason)
		}
		if !got.Valid {
			continue
		}
		for i := range want.Columns.InputPair {
			if got.Columns.InputPair[i] != want.Columns.InputPair[i] {
				t.Fatalf("step %d: input pair %d diverged", step, i)
			}
		}
		for i := range want.Columns.OutputPair {
			if got.Columns.OutputPair[i] != want.Columns.OutputPair[i] {
				t.Fatalf("step %d: output pair %d diverged", step, i)
			}
		}
		for r := range want.Rows.Assignment {
			if got.Rows.Assignment[r] != want.Rows.Assignment[r] {
				t.Fatalf("step %d: row assignment diverged at %d", step, r)
			}
		}
		for r := 0; r < want.Projected.Rows; r++ {
			for c := 0; c < want.Projected.Cols; c++ {
				if got.Projected.At(r, c) != want.Projected.At(r, c) {
					t.Fatalf("step %d: projected map diverged at (%d,%d)", step, r, c)
				}
			}
		}
	}
}

// TestScratchSteadyStateZeroAllocs pins the Monte Carlo trial-loop contract
// on the row algorithms directly: Regenerate + HBAScratch and Regenerate +
// ExactScratch on warm scratches allocate nothing.
func TestScratchSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cov, err := randfunc.Generate(randfunc.Params{Inputs: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		t.Fatal(err)
	}
	dm := defect.NewMap(l.Rows+2, l.Cols)
	p, err := NewProblem(l, dm)
	if err != nil {
		t.Fatal(err)
	}
	params := defect.Params{POpen: 0.1}
	for _, algo := range []struct {
		name string
		run  func(*Problem, *Scratch) Result
	}{
		{"hba", HBAScratch},
		{"ea", ExactScratch},
	} {
		scratch := NewScratch()
		if err := dm.Regenerate(params, rng); err != nil {
			t.Fatal(err)
		}
		algo.run(p, scratch) // warm the buffers
		allocs := testing.AllocsPerRun(30, func() {
			if err := dm.Regenerate(params, rng); err != nil {
				t.Fatal(err)
			}
			algo.run(p, scratch)
		})
		if allocs != 0 {
			t.Fatalf("%s: steady-state trial allocates %v per run, want 0", algo.name, allocs)
		}
	}
}
