package mapping

import (
	"fmt"
	"math/rand"

	"repro/internal/bitmat"
	"repro/internal/defect"
	"repro/internal/xbar"
)

// Column-aware mapping: the extension that makes stuck-at-closed defects
// tolerable. Section IV-A of the paper shows a closed device poisons its
// whole vertical line, so on an optimum-size crossbar with fixed wiring no
// row permutation can save a used column. But the fabric's columns are
// interchangeable within their roles — any physical (x, x̄) column pair can
// carry any logical input, wire columns can carry any connection, output
// pairs any output — so with redundant column pairs the mapper can route
// logic away from poisoned lines. This file implements that joint
// column-assignment + row-assignment search.
//
// The search is a retry loop — greedy column ranking, then random restarts —
// and every Monte Carlo trial of the stuck-closed tolerance study runs it
// afresh, so the loop is built the same way as the row algorithms: all
// working storage lives in a ColumnScratch, the per-column penalty scans run
// as popcounts over the word-transposed functional view, and the projected
// defect map is rebuilt in place per attempt. In steady state a retry loop
// on a reused scratch performs zero heap allocations.

// FabricSpec describes the physical column resources of a crossbar. The
// physical column order is [x_0..x_{P-1}, x̄_0..x̄_{P-1}, wires,
// f̄-pairs..., f-pairs...], mirroring the layout convention.
type FabricSpec struct {
	InputPairs  int // physical (x, x̄) column pairs
	Wires       int // physical multi-level connection columns
	OutputPairs int // physical (f̄, f) column pairs
}

// Cols is the total physical column count.
func (s FabricSpec) Cols() int { return 2*s.InputPairs + s.Wires + 2*s.OutputPairs }

// SpecFor returns the minimum fabric spec for a layout (no spare columns).
func SpecFor(l *xbar.Layout) FabricSpec {
	wires := 0
	for _, k := range l.ColKinds {
		if k == xbar.ColWire {
			wires++
		}
	}
	return FabricSpec{InputPairs: l.NumIn, Wires: wires, OutputPairs: l.NumOut}
}

// ColumnAssignment maps the layout's logical column resources onto physical
// ones: logical input i uses physical pair InputPair[i], and so on. All
// three maps are injective.
type ColumnAssignment struct {
	InputPair  []int
	Wire       []int
	OutputPair []int
}

// ColumnOptions tunes the column-aware search.
type ColumnOptions struct {
	// Retries bounds the random-restart swaps after the greedy assignment
	// fails. Zero means 20.
	Retries int
	// Seed drives the retry randomization.
	Seed int64
	// RowAlgorithm runs the row-mapping phase; nil means HBA (on the
	// scratch's reusable row storage).
	RowAlgorithm func(*Problem) Result
}

// ColumnResult is the outcome of a column-aware mapping attempt.
type ColumnResult struct {
	Valid   bool
	Columns ColumnAssignment
	Rows    Result
	Reason  string
	// Attempts counts column assignments tried.
	Attempts int
	// Projected is the defect map restricted to the chosen physical
	// columns in layout order; simulate the mapped design against it.
	Projected *defect.Map
}

// ColumnScratch holds the reusable working storage of one column-aware
// mapping worker: the row-mapping Scratch, the projected defect map, the
// transposed functional view the greedy penalty scans run over, the
// assignment and ranking buffers, and the retry rng. One ColumnScratch per
// goroutine makes the stuck-closed tolerance trial loop allocation-free in
// steady state. The zero value is ready; a ColumnScratch must not be shared
// between goroutines.
type ColumnScratch struct {
	rows      Scratch
	problem   Problem
	projected *defect.Map
	// colsView is the column-major (word-transposed) functional view of the
	// fabric defect map: row c is the packed functional bitset of physical
	// column c, so a column's defect count is one popcount.
	colsView *bitmat.Matrix
	assign   ColumnAssignment
	usage    []int
	// physOrder/physKey and logOrder/logKey are the greedy ranking buffers.
	physOrder, physKey []int
	logOrder, logKey   []int
	rng                *rand.Rand

	// viewMap/viewVersion identify the (fabric map, version) colsView was
	// last built for; when the map's delta window matches, the view is
	// refreshed per dirty 64×64 block instead of a full re-transpose.
	// viewStreak is the dense-window give-up counter (see
	// Scratch.denseStreak): while positive, the map's window is closed
	// instead of reopened so wholesale-resampled maps stop paying
	// Regenerate's diff for it.
	viewMap     *defect.Map
	viewVersion uint64
	viewStreak  uint8
	// projSrc/projSrcVersion/projVersion and the prev* assignment snapshots
	// identify what s.projected currently holds: the projection of projSrc
	// at projSrcVersion under the prev* column assignment, with s.projected
	// itself at projVersion (guarding against external mutation of the
	// handed-out Projected map). When all of it still holds, an attempt
	// re-projects only the columns whose assignment entry changed.
	// The three prev* snapshots are subslices of the shared prevBuf backing
	// (one allocation, resized per spec).
	projSrc                   *defect.Map
	projSrcVersion            uint64
	projVersion               uint64
	prevIn, prevWire, prevOut []int
	prevBuf                   []int
}

// NewColumnScratch returns an empty ColumnScratch (buffers grow on first
// use).
func NewColumnScratch() *ColumnScratch { return &ColumnScratch{} }

// ColumnAware searches for a joint column and row assignment of the layout
// onto a physical fabric with the given defect map. The fabric may have
// spare rows (dm.Rows > layout rows) and spare column pairs (spec larger
// than SpecFor(layout)); spares are what make stuck-closed defects
// survivable.
func ColumnAware(l *xbar.Layout, dm *defect.Map, spec FabricSpec, opt ColumnOptions) (ColumnResult, error) {
	return ColumnAwareScratch(l, dm, spec, opt, nil)
}

// ColumnAwareScratch is ColumnAware with reusable working storage (nil
// behaves like ColumnAware). On success, Columns, Rows.Assignment, and
// Projected alias scratch storage and are only valid until the next call
// with the same ColumnScratch.
func ColumnAwareScratch(l *xbar.Layout, dm *defect.Map, spec FabricSpec, opt ColumnOptions, s *ColumnScratch) (ColumnResult, error) {
	need := SpecFor(l)
	if spec.InputPairs < need.InputPairs || spec.Wires < need.Wires || spec.OutputPairs < need.OutputPairs {
		return ColumnResult{}, fmt.Errorf("mapping: fabric %+v too small for layout needing %+v", spec, need)
	}
	if dm.Cols != spec.Cols() {
		return ColumnResult{}, fmt.Errorf("mapping: defect map has %d columns, fabric spec needs %d", dm.Cols, spec.Cols())
	}
	if dm.Rows < l.Rows {
		return ColumnResult{}, fmt.Errorf("mapping: defect map has %d rows, layout needs %d", dm.Rows, l.Rows)
	}
	if s == nil {
		s = &ColumnScratch{}
	}
	if opt.Retries == 0 {
		opt.Retries = 20
	}

	s.columnUsage(l)
	s.refreshColumnView(dm)
	s.greedyColumns(l, dm, spec)
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(opt.Seed))
	} else {
		s.rng.Seed(opt.Seed)
	}
	if s.projected == nil || s.projected.Rows != dm.Rows || s.projected.Cols != l.Cols {
		s.projected = defect.NewMap(dm.Rows, l.Cols)
		s.projSrc = nil // fresh target: the incremental-projection state is void
	}
	p := &s.problem
	p.Layout, p.Defects = l, s.projected

	res := ColumnResult{}
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		res.Attempts++
		s.projectAssigned(dm, spec, l)
		if ok, _ := p.ColumnFeasible(); ok {
			var rows Result
			if opt.RowAlgorithm != nil {
				rows = opt.RowAlgorithm(p)
			} else {
				rows = HBAScratch(p, &s.rows)
			}
			if rows.Valid {
				return ColumnResult{
					Valid:     true,
					Columns:   s.assign,
					Rows:      rows,
					Attempts:  res.Attempts,
					Projected: s.projected,
				}, nil
			}
			res.Reason = rows.Reason
		} else {
			res.Reason = "poisoned column in the chosen set"
		}
		// Perturb: swap a used input pair with another (possibly spare)
		// pair; occasionally reshuffle an output pair too.
		s.perturb(spec)
	}
	res.Valid = false
	return res, nil
}

// columnUsage counts active devices per logical column (demand weight) into
// the scratch buffer.
//
//xbar:hotpath
func (s *ColumnScratch) columnUsage(l *xbar.Layout) {
	usage := growInts(&s.usage, l.Cols)
	for i := range usage {
		usage[i] = 0
	}
	for _, row := range l.Active {
		for c, a := range row {
			if a {
				usage[c]++
			}
		}
	}
}

// refreshColumnView brings colsView (the word-transposed functional view the
// greedy penalty scans popcount over) up to date with dm. On a reused
// scratch whose map delta window spans exactly the changes since the last
// call, only the 64×64 blocks intersecting a dirty row and a dirty column
// are re-transposed (bitmat.TransposeUpdate); an unchanged map skips the
// work entirely; anything else falls back to the full transpose.
//
//xbar:hotpath
func (s *ColumnScratch) refreshColumnView(dm *defect.Map) {
	fn := dm.FunctionalMatrix()
	if s.viewMap == dm && s.colsView != nil && s.colsView.Rows == dm.Cols && s.colsView.Cols == dm.Rows {
		v := dm.Version()
		if v == s.viewVersion {
			return
		}
		if !dm.DeltaAll() && dm.DeltaBase() == s.viewVersion {
			// A window marking most of the map buys nothing over the full
			// transpose; treat it as evidence the map is being wholesale
			// resampled between calls (see Scratch.denseStreak).
			if 2*bitmat.PopCount(dm.DeltaRows()) < dm.Rows {
				bitmat.TransposeUpdate(s.colsView, fn, dm.DeltaRows(), dm.DeltaCols())
				s.viewStreak = 0
				dm.ResetDelta()
				s.viewVersion = v
				return
			}
			if s.viewStreak <= 240 {
				s.viewStreak += 8
			}
		}
	}
	//xbar:allow hotpath-alloc full-transpose fallback reuses colsView and allocates only on first use or a size change
	s.colsView = bitmat.TransposeInto(s.colsView, fn)
	if s.viewStreak > 0 {
		s.viewStreak--
		dm.CloseDelta()
	} else {
		dm.ResetDelta()
	}
	s.viewMap, s.viewVersion = dm, dm.Version()
}

// columnPenalty ranks one physical column for the greedy assignment: pairs
// containing a stuck-closed device rank last (effectively unusable), then
// by stuck-open defect count. The open count is read off the transposed
// functional view — defective devices of column c are the zero bits of its
// packed row, minus the stuck-closed ones — so the scan is one popcount
// instead of a per-row walk.
//
//xbar:hotpath
func (s *ColumnScratch) columnPenalty(dm *defect.Map, c int) int {
	p := dm.Rows - bitmat.PopCount(s.colsView.Row(c)) - dm.ClosedInColumn(c)
	if dm.ColHasClosed(c) {
		p += 1_000_000
	}
	return p
}

// stableSortByKey sorts order by ascending key (descending when desc),
// preserving the relative order of equal keys. Insertion sort: the slices
// are small (column counts) and the scratch path must not allocate, which
// rules out sort.SliceStable's closure and reflection machinery.
//
//xbar:hotpath
func stableSortByKey(order, key []int, desc bool) {
	for i := 1; i < len(order); i++ {
		o, k := order[i], key[i]
		j := i
		for j > 0 {
			prev := key[j-1]
			if prev == k || (prev < k) != desc {
				break // equal keys keep their order; sorted pairs stay put
			}
			order[j], key[j] = order[j-1], key[j-1]
			j--
		}
		order[j], key[j] = o, k
	}
}

// greedyColumns assigns the heaviest-demand logical resources to the
// cleanest physical ones, filling s.assign.
//
//xbar:hotpath
func (s *ColumnScratch) greedyColumns(l *xbar.Layout, dm *defect.Map, spec FabricSpec) {
	physPairCols := func(p int) (int, int) { return p, spec.InputPairs + p }
	physWireCol := func(w int) int { return 2*spec.InputPairs + w }
	physOutCols := func(o int) (int, int) {
		base := 2*spec.InputPairs + spec.Wires
		return base + o, base + spec.OutputPairs + o
	}

	nW := 0
	for _, k := range l.ColKinds {
		if k == xbar.ColWire {
			nW++
		}
	}
	s.assign.InputPair = growInts(&s.assign.InputPair, l.NumIn)
	s.assign.Wire = growInts(&s.assign.Wire, nW)
	s.assign.OutputPair = growInts(&s.assign.OutputPair, l.NumOut)

	// rank prepares the scratch order/key buffers: physical resources by
	// ascending penalty, logical resources by descending demand.
	rank := func(order *[]int, key *[]int, n int, desc bool) ([]int, []int) {
		o, k := growInts(order, n), growInts(key, n)
		for i := range o {
			o[i] = i
		}
		return o, k
	}

	// Input pairs.
	physIn, keyIn := rank(&s.physOrder, &s.physKey, spec.InputPairs, false)
	for i := range physIn {
		x, nx := physPairCols(i)
		keyIn[i] = s.columnPenalty(dm, x) + s.columnPenalty(dm, nx)
	}
	stableSortByKey(physIn, keyIn, false)
	logIn, demIn := rank(&s.logOrder, &s.logKey, l.NumIn, true)
	for i := range logIn {
		demIn[i] = s.usage[i] + s.usage[l.NumIn+i]
	}
	stableSortByKey(logIn, demIn, true)
	for k, li := range logIn {
		s.assign.InputPair[li] = physIn[k]
	}

	// Wires.
	physW, keyW := rank(&s.physOrder, &s.physKey, spec.Wires, false)
	for w := range physW {
		keyW[w] = s.columnPenalty(dm, physWireCol(w))
	}
	stableSortByKey(physW, keyW, false)
	logW, demW := rank(&s.logOrder, &s.logKey, nW, true)
	for w := range logW {
		demW[w] = s.usage[2*l.NumIn+w]
	}
	stableSortByKey(logW, demW, true)
	for k, lw := range logW {
		s.assign.Wire[lw] = physW[k]
	}

	// Output pairs.
	physO, keyO := rank(&s.physOrder, &s.physKey, spec.OutputPairs, false)
	for o := range physO {
		fb, f := physOutCols(o)
		keyO[o] = s.columnPenalty(dm, fb) + s.columnPenalty(dm, f)
	}
	stableSortByKey(physO, keyO, false)
	logO, demO := rank(&s.logOrder, &s.logKey, l.NumOut, true)
	base := 2*l.NumIn + nW
	for j := range logO {
		demO[j] = s.usage[base+j] + s.usage[base+l.NumOut+j]
	}
	stableSortByKey(logO, demO, true)
	for k, lj := range logO {
		s.assign.OutputPair[lj] = physO[k]
	}
}

// perturb swaps one assignment entry with a random alternative (used or
// spare) in place, drawing from the scratch rng in the same order as every
// prior revision of this search (the retry schedule is part of the
// reproducibility contract).
//
//xbar:hotpath
func (s *ColumnScratch) perturb(spec FabricSpec) {
	rng := s.rng
	swapInto := func(slice []int, limit int) {
		if len(slice) == 0 || limit == 0 {
			return
		}
		i := rng.Intn(len(slice))
		target := rng.Intn(limit)
		for k, v := range slice {
			if v == target {
				slice[i], slice[k] = slice[k], slice[i]
				return
			}
		}
		slice[i] = target
	}
	switch rng.Intn(3) {
	case 0:
		swapInto(s.assign.InputPair, spec.InputPairs)
	case 1:
		if len(s.assign.Wire) > 0 && spec.Wires > 0 {
			swapInto(s.assign.Wire, spec.Wires)
		} else {
			swapInto(s.assign.InputPair, spec.InputPairs)
		}
	default:
		swapInto(s.assign.OutputPair, spec.OutputPairs)
	}
}

// ProjectDefects extracts the physical columns chosen by the assignment, in
// layout column order, producing the defect map the row mapper (and the
// simulator) sees.
func ProjectDefects(dm *defect.Map, spec FabricSpec, l *xbar.Layout, a ColumnAssignment) *defect.Map {
	out := defect.NewMap(dm.Rows, l.Cols)
	projectDefectsInto(out, dm, spec, l, a)
	return out
}

// ProjectDefectsInto is ProjectDefects into a caller-owned map (the
// scratch-path primitive: one projection per retry attempt, no allocation).
// dst must be dm.Rows × l.Cols; a mismatch panics rather than silently
// projecting into a fresh map the caller's aliases would never see.
func ProjectDefectsInto(dst *defect.Map, dm *defect.Map, spec FabricSpec, l *xbar.Layout, a ColumnAssignment) {
	if dst.Rows != dm.Rows || dst.Cols != l.Cols {
		panic(fmt.Sprintf("mapping: projection target is %dx%d, need %dx%d",
			dst.Rows, dst.Cols, dm.Rows, l.Cols))
	}
	projectDefectsInto(dst, dm, spec, l, a)
}

// projectDefectsInto rebuilds dst (dimensions already correct) as the
// projection of dm onto the assigned columns in layout order. Every
// destination column is rewritten in full via projectColumn, so no prior
// Reset is needed and dst's own delta window stays precise: cells that keep
// their kind are free (defect.Map.Set early-returns), which is what lets a
// row Scratch consuming dst refresh its candidate bitsets incrementally.
//
//xbar:hotpath
func projectDefectsInto(dst *defect.Map, dm *defect.Map, spec FabricSpec, l *xbar.Layout, a ColumnAssignment) {
	for i := 0; i < l.NumIn; i++ {
		projectColumn(dst, i, dm, a.InputPair[i])
		projectColumn(dst, l.NumIn+i, dm, spec.InputPairs+a.InputPair[i])
	}
	for w := 0; w < len(a.Wire); w++ {
		projectColumn(dst, 2*l.NumIn+w, dm, 2*spec.InputPairs+a.Wire[w])
	}
	srcBase := 2*spec.InputPairs + spec.Wires
	dstBase := 2*l.NumIn + len(a.Wire)
	for j := 0; j < l.NumOut; j++ {
		projectColumn(dst, dstBase+j, dm, srcBase+a.OutputPair[j])
		projectColumn(dst, dstBase+l.NumOut+j, dm, srcBase+spec.OutputPairs+a.OutputPair[j])
	}
}

// projectColumn overwrites destination column k with source column src of
// the fabric map, cell by cell through Set so the caches and the delta
// window of dst stay exact.
//
//xbar:hotpath
func projectColumn(dst *defect.Map, k int, dm *defect.Map, src int) {
	for r := 0; r < dm.Rows; r++ {
		dst.Set(r, k, dm.At(r, src))
	}
}

// projectAssigned maintains s.projected as the projection of dm under the
// current s.assign. When neither dm nor s.projected changed since the last
// attempt (versions match) and the assignment vectors have their previous
// lengths, only the destination columns whose assignment entry differs from
// the recorded snapshot are re-projected — between retry attempts that is
// the handful of columns perturb touched, not the whole map. Any staleness
// falls back to the full projection, which itself marks precise deltas.
//
//xbar:hotpath
func (s *ColumnScratch) projectAssigned(dm *defect.Map, spec FabricSpec, l *xbar.Layout) {
	dst := s.projected
	a := s.assign
	incremental := s.projSrc == dm && s.projSrcVersion == dm.Version() &&
		s.projVersion == dst.Version() &&
		len(s.prevIn) == len(a.InputPair) &&
		len(s.prevWire) == len(a.Wire) &&
		len(s.prevOut) == len(a.OutputPair)
	srcBase := 2*spec.InputPairs + spec.Wires
	dstBase := 2*l.NumIn + len(a.Wire)
	for i, pair := range a.InputPair {
		if incremental && s.prevIn[i] == pair {
			continue
		}
		projectColumn(dst, i, dm, pair)
		projectColumn(dst, l.NumIn+i, dm, spec.InputPairs+pair)
	}
	for w, wire := range a.Wire {
		if incremental && s.prevWire[w] == wire {
			continue
		}
		projectColumn(dst, 2*l.NumIn+w, dm, 2*spec.InputPairs+wire)
	}
	for j, pair := range a.OutputPair {
		if incremental && s.prevOut[j] == pair {
			continue
		}
		projectColumn(dst, dstBase+j, dm, srcBase+pair)
		projectColumn(dst, dstBase+l.NumOut+j, dm, srcBase+spec.OutputPairs+pair)
	}
	ni, nw, no := len(a.InputPair), len(a.Wire), len(a.OutputPair)
	if cap(s.prevBuf) < ni+nw+no {
		//xbar:allow hotpath-alloc grow-once snapshot of the assignment vectors; retries reuse it
		s.prevBuf = make([]int, ni+nw+no)
	}
	buf := s.prevBuf[:ni+nw+no]
	s.prevIn = buf[0:ni:ni]
	s.prevWire = buf[ni : ni+nw : ni+nw]
	s.prevOut = buf[ni+nw:]
	copy(s.prevIn, a.InputPair)
	copy(s.prevWire, a.Wire)
	copy(s.prevOut, a.OutputPair)
	s.projSrc, s.projSrcVersion, s.projVersion = dm, dm.Version(), dst.Version()
}
