package mapping

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/defect"
	"repro/internal/xbar"
)

// Column-aware mapping: the extension that makes stuck-at-closed defects
// tolerable. Section IV-A of the paper shows a closed device poisons its
// whole vertical line, so on an optimum-size crossbar with fixed wiring no
// row permutation can save a used column. But the fabric's columns are
// interchangeable within their roles — any physical (x, x̄) column pair can
// carry any logical input, wire columns can carry any connection, output
// pairs any output — so with redundant column pairs the mapper can route
// logic away from poisoned lines. This file implements that joint
// column-assignment + row-assignment search.

// FabricSpec describes the physical column resources of a crossbar. The
// physical column order is [x_0..x_{P-1}, x̄_0..x̄_{P-1}, wires,
// f̄-pairs..., f-pairs...], mirroring the layout convention.
type FabricSpec struct {
	InputPairs  int // physical (x, x̄) column pairs
	Wires       int // physical multi-level connection columns
	OutputPairs int // physical (f̄, f) column pairs
}

// Cols is the total physical column count.
func (s FabricSpec) Cols() int { return 2*s.InputPairs + s.Wires + 2*s.OutputPairs }

// SpecFor returns the minimum fabric spec for a layout (no spare columns).
func SpecFor(l *xbar.Layout) FabricSpec {
	wires := 0
	for _, k := range l.ColKinds {
		if k == xbar.ColWire {
			wires++
		}
	}
	return FabricSpec{InputPairs: l.NumIn, Wires: wires, OutputPairs: l.NumOut}
}

// ColumnAssignment maps the layout's logical column resources onto physical
// ones: logical input i uses physical pair InputPair[i], and so on. All
// three maps are injective.
type ColumnAssignment struct {
	InputPair  []int
	Wire       []int
	OutputPair []int
}

// ColumnOptions tunes the column-aware search.
type ColumnOptions struct {
	// Retries bounds the random-restart swaps after the greedy assignment
	// fails. Zero means 20.
	Retries int
	// Seed drives the retry randomization.
	Seed int64
	// RowAlgorithm runs the row-mapping phase; nil means HBA.
	RowAlgorithm func(*Problem) Result
}

// ColumnResult is the outcome of a column-aware mapping attempt.
type ColumnResult struct {
	Valid   bool
	Columns ColumnAssignment
	Rows    Result
	Reason  string
	// Attempts counts column assignments tried.
	Attempts int
	// Projected is the defect map restricted to the chosen physical
	// columns in layout order; simulate the mapped design against it.
	Projected *defect.Map
}

// ColumnAware searches for a joint column and row assignment of the layout
// onto a physical fabric with the given defect map. The fabric may have
// spare rows (dm.Rows > layout rows) and spare column pairs (spec larger
// than SpecFor(layout)); spares are what make stuck-closed defects
// survivable.
func ColumnAware(l *xbar.Layout, dm *defect.Map, spec FabricSpec, opt ColumnOptions) (ColumnResult, error) {
	need := SpecFor(l)
	if spec.InputPairs < need.InputPairs || spec.Wires < need.Wires || spec.OutputPairs < need.OutputPairs {
		return ColumnResult{}, fmt.Errorf("mapping: fabric %+v too small for layout needing %+v", spec, need)
	}
	if dm.Cols != spec.Cols() {
		return ColumnResult{}, fmt.Errorf("mapping: defect map has %d columns, fabric spec needs %d", dm.Cols, spec.Cols())
	}
	if dm.Rows < l.Rows {
		return ColumnResult{}, fmt.Errorf("mapping: defect map has %d rows, layout needs %d", dm.Rows, l.Rows)
	}
	if opt.Retries == 0 {
		opt.Retries = 20
	}
	rowAlgo := opt.RowAlgorithm
	if rowAlgo == nil {
		rowAlgo = HBA
	}

	usage := columnUsage(l)
	assign := greedyColumns(l, dm, spec, usage)
	rng := rand.New(rand.NewSource(opt.Seed))
	res := ColumnResult{}
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		res.Attempts++
		projected := ProjectDefects(dm, spec, l, assign)
		p, err := NewProblem(l, projected)
		if err != nil {
			return ColumnResult{}, err
		}
		if ok, _ := p.ColumnFeasible(); ok {
			rows := rowAlgo(p)
			if rows.Valid {
				return ColumnResult{
					Valid:     true,
					Columns:   assign,
					Rows:      rows,
					Attempts:  res.Attempts,
					Projected: projected,
				}, nil
			}
			res.Reason = rows.Reason
		} else {
			res.Reason = "poisoned column in the chosen set"
		}
		// Perturb: swap a used input pair with another (possibly spare)
		// pair; occasionally reshuffle an output pair too.
		assign = perturb(assign, spec, rng)
	}
	res.Valid = false
	return res, nil
}

// columnUsage counts active devices per logical column (demand weight).
func columnUsage(l *xbar.Layout) []int {
	usage := make([]int, l.Cols)
	for _, row := range l.Active {
		for c, a := range row {
			if a {
				usage[c]++
			}
		}
	}
	return usage
}

// greedyColumns assigns the heaviest-demand logical resources to the
// cleanest physical ones: pairs containing a stuck-closed device rank last
// (effectively unusable), then by open-defect count.
func greedyColumns(l *xbar.Layout, dm *defect.Map, spec FabricSpec, usage []int) ColumnAssignment {
	penalty := func(cols ...int) int {
		p := 0
		for _, c := range cols {
			if dm.ColHasClosed(c) {
				p += 1_000_000
			}
			for r := 0; r < dm.Rows; r++ {
				if dm.At(r, c) == defect.StuckOpen {
					p++
				}
			}
		}
		return p
	}
	physPairCols := func(p int) (int, int) { return p, spec.InputPairs + p }
	physWireCol := func(w int) int { return 2*spec.InputPairs + w }
	physOutCols := func(o int) (int, int) {
		base := 2*spec.InputPairs + spec.Wires
		return base + o, base + spec.OutputPairs + o
	}

	rankPhys := func(n int, pen func(i int) int) []int {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return pen(order[a]) < pen(order[b]) })
		return order
	}
	rankLogical := func(n int, demand func(i int) int) []int {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return demand(order[a]) > demand(order[b]) })
		return order
	}

	nW := 0
	for _, k := range l.ColKinds {
		if k == xbar.ColWire {
			nW++
		}
	}
	a := ColumnAssignment{
		InputPair:  make([]int, l.NumIn),
		Wire:       make([]int, nW),
		OutputPair: make([]int, l.NumOut),
	}
	physIn := rankPhys(spec.InputPairs, func(p int) int { x, nx := physPairCols(p); return penalty(x, nx) })
	logIn := rankLogical(l.NumIn, func(i int) int { return usage[i] + usage[l.NumIn+i] })
	for k, li := range logIn {
		a.InputPair[li] = physIn[k]
	}
	physW := rankPhys(spec.Wires, func(w int) int { return penalty(physWireCol(w)) })
	logW := rankLogical(nW, func(w int) int { return usage[2*l.NumIn+w] })
	for k, lw := range logW {
		a.Wire[lw] = physW[k]
	}
	physO := rankPhys(spec.OutputPairs, func(o int) int { fb, f := physOutCols(o); return penalty(fb, f) })
	logO := rankLogical(l.NumOut, func(j int) int {
		base := 2*l.NumIn + nW
		return usage[base+j] + usage[base+l.NumOut+j]
	})
	for k, lj := range logO {
		a.OutputPair[lj] = physO[k]
	}
	return a
}

// perturb swaps one assignment entry with a random alternative (used or
// spare), returning a fresh assignment.
func perturb(a ColumnAssignment, spec FabricSpec, rng *rand.Rand) ColumnAssignment {
	b := ColumnAssignment{
		InputPair:  append([]int(nil), a.InputPair...),
		Wire:       append([]int(nil), a.Wire...),
		OutputPair: append([]int(nil), a.OutputPair...),
	}
	swapInto := func(slice []int, limit int) {
		if len(slice) == 0 || limit == 0 {
			return
		}
		i := rng.Intn(len(slice))
		target := rng.Intn(limit)
		for k, v := range slice {
			if v == target {
				slice[i], slice[k] = slice[k], slice[i]
				return
			}
		}
		slice[i] = target
	}
	switch rng.Intn(3) {
	case 0:
		swapInto(b.InputPair, spec.InputPairs)
	case 1:
		if len(b.Wire) > 0 && spec.Wires > 0 {
			swapInto(b.Wire, spec.Wires)
		} else {
			swapInto(b.InputPair, spec.InputPairs)
		}
	default:
		swapInto(b.OutputPair, spec.OutputPairs)
	}
	return b
}

// ProjectDefects extracts the physical columns chosen by the assignment, in
// layout column order, producing the defect map the row mapper (and the
// simulator) sees.
func ProjectDefects(dm *defect.Map, spec FabricSpec, l *xbar.Layout, a ColumnAssignment) *defect.Map {
	nW := len(a.Wire)
	cols := make([]int, 0, l.Cols)
	for i := 0; i < l.NumIn; i++ {
		cols = append(cols, a.InputPair[i])
	}
	for i := 0; i < l.NumIn; i++ {
		cols = append(cols, spec.InputPairs+a.InputPair[i])
	}
	for w := 0; w < nW; w++ {
		cols = append(cols, 2*spec.InputPairs+a.Wire[w])
	}
	base := 2*spec.InputPairs + spec.Wires
	for j := 0; j < l.NumOut; j++ {
		cols = append(cols, base+a.OutputPair[j])
	}
	for j := 0; j < l.NumOut; j++ {
		cols = append(cols, base+spec.OutputPairs+a.OutputPair[j])
	}
	out := defect.NewMap(dm.Rows, len(cols))
	for r := 0; r < dm.Rows; r++ {
		for k, c := range cols {
			out.Set(r, k, dm.At(r, c))
		}
	}
	return out
}
