package mapping

// Equivalence tests for the word-packed refactor: the packed matcher and the
// refactored algorithms must agree with the retained pre-refactor scalar
// implementations. The reference* functions below are verbatim copies of the
// pre-refactor code paths (per-column scans, no stuck-closed row pruning,
// full-matrix Munkres), built on scalarRowMatches.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/defect"
	"repro/internal/munkres"
	"repro/internal/randfunc"
	"repro/internal/xbar"
)

// refColHasClosed rescans the column like the pre-refactor defect.Map did.
func refColHasClosed(dm *defect.Map, c int) bool {
	for r := 0; r < dm.Rows; r++ {
		if dm.At(r, c) == defect.StuckClosed {
			return true
		}
	}
	return false
}

// referenceColumnFeasible is the pre-refactor per-column scan.
func referenceColumnFeasible(p *Problem) (bool, int) {
	used := make([]bool, p.Layout.Cols)
	for _, row := range p.Layout.Active {
		for c, a := range row {
			if a {
				used[c] = true
			}
		}
	}
	for c, u := range used {
		if u && refColHasClosed(p.Defects, c) {
			return false, c
		}
	}
	return true, -1
}

// referenceNaive is the pre-refactor Naive.
func referenceNaive(p *Problem) Result {
	var stats Stats
	assignment := make([]int, p.Layout.Rows)
	for r := range assignment {
		assignment[r] = r
	}
	if ok, _ := referenceColumnFeasible(p); !ok {
		return Result{Stats: stats}
	}
	for r := range assignment {
		if !p.scalarRowMatches(r, r, &stats) {
			return Result{Stats: stats}
		}
	}
	return Result{Valid: true, Assignment: assignment, Stats: stats}
}

// referenceExact is the pre-refactor EA: full FM × CM matrix, no pruning.
func referenceExact(p *Problem) Result {
	var stats Stats
	if ok, _ := referenceColumnFeasible(p); !ok {
		return Result{Stats: stats}
	}
	nFM, nCM := p.Layout.Rows, p.Defects.Rows
	forbidden := make([][]bool, nFM)
	for i := 0; i < nFM; i++ {
		forbidden[i] = make([]bool, nCM)
		for t := 0; t < nCM; t++ {
			forbidden[i][t] = !p.scalarRowMatches(i, t, &stats)
		}
	}
	assign, ok, err := munkres.SolveBinary(forbidden)
	if err != nil || !ok {
		return Result{Stats: stats}
	}
	return Result{Valid: true, Assignment: assign, Stats: stats}
}

// referenceHBA is the pre-refactor Algorithm 1.
func referenceHBA(p *Problem) Result {
	var stats Stats
	if ok, _ := referenceColumnFeasible(p); !ok {
		return Result{Stats: stats}
	}
	nCM := p.Defects.Rows
	products := p.Layout.ProductRows()
	outputs := p.Layout.OutputRows()
	occupant := make([]int, nCM)
	for t := range occupant {
		occupant[t] = -1
	}
	place := make([]int, p.Layout.Rows)
	for r := range place {
		place[r] = -1
	}
	findUnmatched := func(fmRow, except int) int {
		for t := 0; t < nCM; t++ {
			if t == except {
				continue
			}
			if occupant[t] == -1 && p.scalarRowMatches(fmRow, t, &stats) {
				return t
			}
		}
		return -1
	}
	for _, i := range products {
		if t := findUnmatched(i, -1); t >= 0 {
			occupant[t] = i
			place[i] = t
			continue
		}
		stats.Backtracks++
		placed := false
		for t := 0; t < nCM && !placed; t++ {
			if occupant[t] == -1 || !p.scalarRowMatches(i, t, &stats) {
				continue
			}
			prev := occupant[t]
			occupant[t] = -1
			if u := findUnmatched(prev, t); u >= 0 {
				occupant[u] = prev
				place[prev] = u
				occupant[t] = i
				place[i] = t
				placed = true
			} else {
				occupant[t] = prev
			}
		}
		if !placed {
			return Result{Stats: stats}
		}
	}
	var free []int
	for t := 0; t < nCM; t++ {
		if occupant[t] == -1 {
			free = append(free, t)
		}
	}
	if len(free) < len(outputs) {
		return Result{Stats: stats}
	}
	forbidden := make([][]bool, len(outputs))
	for k, i := range outputs {
		forbidden[k] = make([]bool, len(free))
		for u, t := range free {
			forbidden[k][u] = !p.scalarRowMatches(i, t, &stats)
		}
	}
	assign, ok, err := munkres.SolveBinary(forbidden)
	if err != nil || !ok {
		return Result{Stats: stats}
	}
	for k, i := range outputs {
		place[i] = free[assign[k]]
	}
	return Result{Valid: true, Assignment: place, Stats: stats}
}

// randomProblem builds a random two-level layout with a random defect map
// (optionally with spare rows and stuck-closed defects).
func randomProblem(seed int64, spares int, pClosed float64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	cov, err := randfunc.Generate(randfunc.Params{Inputs: 4 + rng.Intn(3)}, rng)
	if err != nil {
		return nil, err
	}
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		return nil, err
	}
	dm, err := defect.Generate(l.Rows+spares, l.Cols,
		defect.Params{POpen: 0.12, PClosed: pClosed}, rng)
	if err != nil {
		return nil, err
	}
	return NewProblem(l, dm)
}

// TestPackedMatcherAgreesWithScalar is the bitset/scalar property: on random
// layouts and defect maps (including stuck-closed lines and spare rows), the
// packed matcher and ColumnFeasible agree with the scalar reference on every
// (FM row, CM row) pair.
func TestPackedMatcherAgreesWithScalar(t *testing.T) {
	property := func(seed int64) bool {
		p, err := randomProblem(seed%10_000, int(uint64(seed)%3), 0.02)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < p.Layout.Rows; i++ {
			for cm := 0; cm < p.Defects.Rows; cm++ {
				var a, b Stats
				if p.rowMatches(i, cm, &a) != p.scalarRowMatches(i, cm, &b) {
					t.Logf("seed %d: packed/scalar disagree at FM %d, CM %d", seed, i, cm)
					return false
				}
				if a.MatchChecks != 1 || b.MatchChecks != 1 {
					return false
				}
			}
		}
		gotOK, gotCol := p.ColumnFeasible()
		wantOK, wantCol := referenceColumnFeasible(p)
		return gotOK == wantOK && gotCol == wantCol
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithmsMatchPreRefactor pins Naive/HBA/EA to the pre-refactor
// implementations on stuck-open instances (the Table II regime, where EA's
// up-front pruning is a no-op): identical Valid, Assignment, and Backtracks.
// MatchChecks is compared only for Naive — HBA and EA now enumerate from
// batched candidate bitsets, so their check count is the deterministic
// enumeration volume (layout rows × CM rows) rather than the early-exit
// scan count of the per-pair references.
func TestAlgorithmsMatchPreRefactor(t *testing.T) {
	property := func(seed int64) bool {
		p, err := randomProblem(seed%10_000, int(uint64(seed)%3), 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		check := func(name string, got, want Result) bool {
			if got.Valid != want.Valid || got.Stats.Backtracks != want.Stats.Backtracks {
				t.Logf("seed %d %s: got Valid=%v %+v, want Valid=%v %+v",
					seed, name, got.Valid, got.Stats, want.Valid, want.Stats)
				return false
			}
			if got.Valid {
				if len(got.Assignment) != len(want.Assignment) {
					return false
				}
				for r := range got.Assignment {
					if got.Assignment[r] != want.Assignment[r] {
						t.Logf("seed %d %s: assignment differs at row %d", seed, name, r)
						return false
					}
				}
			}
			return true
		}
		gotN, wantN := Naive(p), referenceNaive(p)
		if gotN.Stats != wantN.Stats {
			t.Logf("seed %d naive: stats %+v vs %+v", seed, gotN.Stats, wantN.Stats)
			return false
		}
		gotH := HBA(p)
		wantChecks := (p.Layout.Rows) * p.Defects.Rows
		if gotH.Stats.MatchChecks != wantChecks {
			t.Logf("seed %d hba: MatchChecks %d, want enumeration volume %d",
				seed, gotH.Stats.MatchChecks, wantChecks)
			return false
		}
		return check("naive", gotN, wantN) &&
			check("hba", gotH, referenceHBA(p)) &&
			check("ea", Exact(p), referenceExact(p))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithmsMatchWithClosedDefects covers the stuck-closed regime. HBA
// and Naive are structurally unchanged, so they stay fully identical. EA now
// prunes poisoned CM rows before Munkres — the assignment may legitimately
// differ among equally-valid ones — so EA is pinned on Valid plus an
// independent Validate of any assignment it returns.
func TestAlgorithmsMatchWithClosedDefects(t *testing.T) {
	property := func(seed int64) bool {
		p, err := randomProblem(seed%10_000, 1+int(uint64(seed)%3), 0.03)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gotN, wantN := Naive(p), referenceNaive(p)
		if gotN.Valid != wantN.Valid || gotN.Stats != wantN.Stats {
			t.Logf("seed %d naive diverged", seed)
			return false
		}
		gotH, wantH := HBA(p), referenceHBA(p)
		if gotH.Valid != wantH.Valid || gotH.Stats.Backtracks != wantH.Stats.Backtracks {
			t.Logf("seed %d hba diverged: %+v vs %+v", seed, gotH.Stats, wantH.Stats)
			return false
		}
		gotE, wantE := Exact(p), referenceExact(p)
		if gotE.Valid != wantE.Valid {
			t.Logf("seed %d ea validity diverged", seed)
			return false
		}
		if gotE.Valid {
			if err := p.Validate(gotE.Assignment); err != nil {
				t.Logf("seed %d ea assignment invalid: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCandidateBitsetsMatchPairTests is the batch-kernel property at the
// mapping layer: on random layouts and defect maps (spare rows and
// stuck-closed lines included), bit t of every FM row's candidate bitset
// equals both the packed per-pair matcher and the pre-refactor scalar
// matcher, and the accounted check volume is exactly rows × CM rows.
func TestCandidateBitsetsMatchPairTests(t *testing.T) {
	property := func(seed int64) bool {
		p, err := randomProblem(seed%10_000, int(uint64(seed)%3), 0.02)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var s Scratch
		var stats Stats
		s.computeCandidates(p, &stats)
		if stats.MatchChecks != p.Layout.Rows*p.Defects.Rows {
			t.Logf("seed %d: MatchChecks %d, want %d", seed, stats.MatchChecks, p.Layout.Rows*p.Defects.Rows)
			return false
		}
		for i := 0; i < p.Layout.Rows; i++ {
			cand := s.cand.Row(i)
			for cm := 0; cm < p.Defects.Rows; cm++ {
				var a, b Stats
				packed, scalar := p.rowMatches(i, cm, &a), p.scalarRowMatches(i, cm, &b)
				if cand.Get(cm) != packed || packed != scalar {
					t.Logf("seed %d: candidate/packed/scalar disagree at FM %d, CM %d: %v/%v/%v",
						seed, i, cm, cand.Get(cm), packed, scalar)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestScratchReuseMatchesFresh re-runs the scratch variants many times on
// one reusable Scratch and defect map, asserting bit-identical results with
// the allocate-fresh paths (the zero-alloc yield-loop contract).
func TestScratchReuseMatchesFresh(t *testing.T) {
	cov, err := randfunc.Generate(randfunc.Params{Inputs: 5}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := xbar.NewTwoLevel(cov)
	if err != nil {
		t.Fatal(err)
	}
	dm := defect.NewMap(l.Rows+2, l.Cols)
	p, err := NewProblem(l, dm)
	if err != nil {
		t.Fatal(err)
	}
	scratch := NewScratch()
	rng := rand.New(rand.NewSource(0))
	for trial := 0; trial < 50; trial++ {
		rng.Seed(int64(trial) * 977)
		if err := dm.Regenerate(defect.Params{POpen: 0.12, PClosed: 0.01}, rng); err != nil {
			t.Fatal(err)
		}
		algos := []struct {
			name    string
			scratch func(*Problem, *Scratch) Result
			fresh   func(*Problem) Result
		}{
			{"naive", NaiveScratch, Naive},
			{"hba", HBAScratch, HBA},
			{"ea", ExactScratch, Exact},
		}
		for _, a := range algos {
			// Compare one algorithm at a time: a scratch Result's
			// Assignment aliases the Scratch and the next scratch call
			// overwrites it.
			got := a.scratch(p, scratch)
			want := a.fresh(p)
			name := a.name
			if got.Valid != want.Valid || got.Stats != want.Stats || got.Reason != want.Reason {
				t.Fatalf("trial %d %s: scratch %+v vs fresh %+v", trial, name, got, want)
			}
			if got.Valid {
				for r := range want.Assignment {
					if got.Assignment[r] != want.Assignment[r] {
						t.Fatalf("trial %d %s: assignment differs at %d", trial, name, r)
					}
				}
			}
		}
	}
}
