// Package mapping implements the defect-tolerant logic mapping algorithms of
// the paper's Section IV-B: the naive (defect-blind) mapper of Fig. 7(a),
// the exact algorithm (EA) that solves the full row-assignment problem with
// Munkres' method, and the hybrid algorithm (HBA, Algorithm 1) that places
// product rows with a greedy backtracking heuristic and reserves the exact
// assignment for the critical output rows.
//
// Rows of the function matrix (FM) are matched to rows of the crossbar
// matrix (CM): an FM row fits a CM row when every required-active device
// (FM = 1) falls on a functional switch (CM = 1); stuck-open switches
// (CM = 0) can only host disabled devices (FM = 0). Columns are fixed by
// the fabric wiring, so only rows are permuted.
//
// The compatibility test runs on the word-packed rows of internal/bitmat:
// an FM row fits a CM row iff fmRow &^ cmFunctional == 0, a handful of
// AND-NOT word operations instead of a per-column scan. HBA and EA go one
// step further and never test pairs in their enumeration loops at all: the
// batched kernel (bitmat.MatchRowAgainst) computes each FM row's full
// candidate bitset over every CM row in one pass, and the greedy scans,
// backtracking relocations, and Munkres matrix construction read those
// bitsets with word operations — visiting rows in the same top-to-bottom
// order as the pre-batch scans, so placements are bit-identical. The
// pre-refactor scalar matcher is retained (scalarRowMatches) as the
// reference implementation the equivalence tests check both paths against.
package mapping

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/defect"
	"repro/internal/munkres"
	"repro/internal/xbar"
)

// Stats counts the work a mapping attempt performed.
type Stats struct {
	// MatchChecks is the number of row-compatibility tests. The batched
	// kernel performs them in bulk — one pass of bitmat.MatchRowAgainst
	// tests one FM row against every CM row and counts Defects.Rows checks —
	// so algorithms built on candidate bitsets report the enumeration
	// volume, not the pre-batch early-exit scan count.
	MatchChecks int
	// Backtracks counts heuristic backtracking events (HBA only).
	Backtracks int
}

// Result is the outcome of a mapping attempt.
type Result struct {
	// Valid reports whether a complete, defect-avoiding row assignment was
	// found.
	Valid bool
	// Assignment maps each layout (FM) row to a physical (CM) row; nil when
	// Valid is false. When the algorithm ran with a non-nil Scratch, the
	// slice aliases scratch storage and is only valid until the next call
	// with the same Scratch.
	Assignment []int
	// Reason explains a failure for diagnostics.
	Reason string
	Stats  Stats
}

// Problem pairs a layout with the defect map of the target crossbar. The
// defect map may have more rows than the layout (redundant spare lines, the
// paper's Section VI future-work direction); it must have exactly the
// layout's column count.
type Problem struct {
	Layout  *xbar.Layout
	Defects *defect.Map
}

// NewProblem validates dimensions. The Problem holds only the two pointers,
// so one Problem can be reused across trials that regenerate the defect map
// in place (defect.Map.Regenerate).
func NewProblem(l *xbar.Layout, dm *defect.Map) (*Problem, error) {
	if dm.Cols != l.Cols {
		return nil, fmt.Errorf("mapping: defect map has %d columns, layout needs %d", dm.Cols, l.Cols)
	}
	if dm.Rows < l.Rows {
		return nil, fmt.Errorf("mapping: defect map has %d rows, layout needs %d", dm.Rows, l.Rows)
	}
	return &Problem{Layout: l, Defects: dm}, nil
}

// Scratch holds the reusable working storage of one mapping worker: the
// assignment buffers, the candidate-bitset matrix, the forbidden matrix, and
// a Munkres solver. One Scratch per goroutine makes the Monte Carlo yield
// trial loop allocation-free in steady state. The zero value is ready; a
// Scratch must not be shared between goroutines.
type Scratch struct {
	occupant, place, free []int
	usable, assignment    []int
	forbidden             [][]bool
	forbiddenCells        []bool
	solver                munkres.Solver
	// cand holds one candidate bitset per FM row (bit t = FM row fits CM
	// row t), built by the batched matching kernel; freeMask tracks the
	// unoccupied CM rows during HBA's greedy phase.
	cand     bitmat.Matrix
	freeMask bitmat.Row
	// candMap/candLayout/candVersion identify the (defect map, layout,
	// map version) s.cand was last built for. When the next call sees the
	// same pair and the map's delta window spans exactly the versions in
	// between, computeCandidates patches only the bitset columns touched by
	// dirty CM rows instead of re-running the kernel over every FM row; on
	// an unchanged map it skips the rebuild entirely. denseStreak is the
	// give-up counter: each valid window too dense to patch bumps it, and
	// while it is positive the window is closed instead of reopened, so a
	// Monte Carlo loop that resamples the whole map per trial stops paying
	// Regenerate's snapshot+diff for a window it can never use. The streak
	// decays one per rebuild, re-probing occasionally in case the workload
	// turns sparse again.
	candMap     *defect.Map
	candLayout  *xbar.Layout
	candVersion uint64
	denseStreak uint8
}

// NewScratch returns an empty Scratch (buffers grow on first use).
func NewScratch() *Scratch { return &Scratch{} }

// Failure reasons are constant strings: the Monte Carlo yield loops discard
// them (only Valid is read), and formatting an index into them would be the
// one allocation left in an otherwise allocation-free trial loop. Callers
// needing the exact failing line re-check with Validate.
const (
	reasonPoisonedColumn = "a used column is poisoned by a stuck-closed defect"
	reasonRowCollision   = "a row collides with a defect"
	reasonNoProductRow   = "a product row has no compatible crossbar row"
	reasonRowShortage    = "not enough usable crossbar rows for the layout"
	reasonNoAssignment   = "no zero-cost assignment exists"
	reasonOutputShortage = "not enough free rows for outputs"
	reasonOutputsBlocked = "outputs cannot be assigned defect-free"
)

// growInts resizes a scratch int slice without zeroing.
//
//xbar:hotpath
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		//xbar:allow hotpath-alloc grow-once scratch buffer; steady state reuses it
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growRow resizes a scratch packed row to cols columns without preserving
// contents.
//
//xbar:hotpath
func growRow(buf *bitmat.Row, cols int) bitmat.Row {
	n := bitmat.Words(cols)
	if cap(*buf) < n {
		//xbar:allow hotpath-alloc grow-once scratch buffer; steady state reuses it
		*buf = make(bitmat.Row, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// computeCandidates fills s.cand with the candidate bitset of every FM row:
// one batched-kernel pass per row over the defect map's packed functional
// matrix, then a word-AND against the complement of the poisoned-row mask.
// Bit t of s.cand.Row(i) afterwards equals rowMatches(i, t). Each pass
// tests the row against all Defects.Rows CM rows, which is what MatchChecks
// accounts.
//
//xbar:hotpath
func (s *Scratch) computeCandidates(p *Problem, stats *Stats) {
	nFM, nCM := p.Layout.Rows, p.Defects.Rows
	// MatchChecks accounts the enumeration volume — nFM × nCM row tests —
	// regardless of how much of it the incremental paths below actually
	// re-execute, so Stats are identical across cold, warm, and incremental
	// runs (the equivalence tests compare them exactly).
	stats.MatchChecks += nFM * nCM
	m := p.Defects
	if s.candMap == m && s.candLayout == p.Layout && s.cand.Rows == nFM && s.cand.Cols == nCM {
		v := m.Version()
		if v == s.candVersion {
			return // map unchanged since the last build: bitsets still exact
		}
		if !m.DeltaAll() && m.DeltaBase() == s.candVersion {
			// The window spans exactly our build → now. Patch dirty CM rows
			// when that is cheaper than the batched rebuild (the kernel
			// retires ~8 CM rows per iteration, the patch one per test).
			dirty := m.DeltaRows()
			if 8*bitmat.PopCount(dirty) <= nCM {
				s.patchCandidates(p, dirty)
				s.denseStreak = 0
				m.ResetDelta()
				s.candVersion = v
				return
			}
			// A valid window we could not use: evidence the mutation
			// pattern is whole-map resampling, not sparse edits.
			if s.denseStreak <= 240 {
				s.denseStreak += 8
			}
		}
	}
	//xbar:allow hotpath-alloc Reshape reuses the backing words and allocates only when the fabric grows
	s.cand.Reshape(nFM, nCM)
	fn := m.FunctionalMatrix()
	closed := m.ClosedRows()
	for i := 0; i < nFM; i++ {
		row := s.cand.Row(i)
		bitmat.MatchRowAgainst(p.Layout.ActiveRow(i), fn, row)
		row.AndNot(closed)
	}
	if s.denseStreak > 0 {
		s.denseStreak--
		m.CloseDelta()
	} else {
		m.ResetDelta()
	}
	s.candMap, s.candLayout, s.candVersion = m, p.Layout, m.Version()
}

// patchCandidates re-tests only the dirty CM rows against every FM row,
// setting or clearing the corresponding candidate bit in place. The
// resulting bitsets are exactly what the full rebuild would produce: for
// clean CM rows neither the functional words nor the closed-row bit changed,
// so their candidate bits are already correct.
//
//xbar:hotpath
func (s *Scratch) patchCandidates(p *Problem, dirty bitmat.Row) {
	m := p.Defects
	for i := 0; i < p.Layout.Rows; i++ {
		active := p.Layout.ActiveRow(i)
		row := s.cand.Row(i)
		for t := dirty.NextSet(0); t >= 0; t = dirty.NextSet(t + 1) {
			if !m.RowHasClosed(t) && bitmat.SubsetOf(active, m.FunctionalRow(t)) {
				row.Set(t)
			} else {
				row.Clear(t)
			}
		}
	}
}

// boolMatrix returns a rows × cols matrix over the scratch backing store;
// callers overwrite every cell.
func (s *Scratch) boolMatrix(rows, cols int) [][]bool {
	if cap(s.forbidden) < rows {
		s.forbidden = make([][]bool, rows)
	}
	f := s.forbidden[:rows]
	if cap(s.forbiddenCells) < rows*cols {
		s.forbiddenCells = make([]bool, rows*cols)
	}
	cells := s.forbiddenCells[:rows*cols]
	for i := range f {
		f[i] = cells[i*cols : (i+1)*cols]
	}
	return f
}

// ColumnFeasible reports whether every column the layout actually uses is
// free of stuck-at-closed defects. A closed device poisons its entire
// vertical line, and columns cannot be re-routed, so a used poisoned column
// makes every mapping invalid regardless of row assignment (Section IV-A).
// One word-AND pass over the layout's precomputed used-columns mask and the
// defect map's cached closed-columns mask.
func (p *Problem) ColumnFeasible() (bool, int) {
	if c := bitmat.FirstAnd(p.Layout.UsedColumns(), p.Defects.ClosedCols()); c >= 0 {
		return false, c
	}
	return true, -1
}

// rowMatches tests the paper's row-matching rule on the packed rows,
// counting the check: CM row usable (no stuck-closed device, O(1) cached)
// and fmRow &^ cmFunctional == 0.
//
//xbar:hotpath
func (p *Problem) rowMatches(fmRow int, cmRow int, stats *Stats) bool {
	stats.MatchChecks++
	if p.Defects.RowHasClosed(cmRow) {
		return false // forced-1 line cannot host any logic row
	}
	return bitmat.SubsetOf(p.Layout.ActiveRow(fmRow), p.Defects.FunctionalRow(cmRow))
}

// scalarRowMatches is the pre-refactor per-column matcher, kept as the
// reference implementation for the packed/scalar equivalence tests. It
// deliberately rescans the defect cells instead of using the cached masks.
func (p *Problem) scalarRowMatches(fmRow int, cmRow int, stats *Stats) bool {
	stats.MatchChecks++
	for c := 0; c < p.Defects.Cols; c++ {
		if p.Defects.At(cmRow, c) == defect.StuckClosed {
			return false
		}
	}
	active := p.Layout.Active[fmRow]
	for c, a := range active {
		if a && !p.Defects.Functional(cmRow, c) {
			return false
		}
	}
	return true
}

// Naive places rows in identity order, ignoring defects, then validates.
// This is the defect-blind flow of Fig. 7(a); it exists as the baseline the
// defect-aware algorithms are compared against.
func Naive(p *Problem) Result { return NaiveScratch(p, nil) }

// NaiveScratch is Naive with reusable working storage (nil behaves like
// Naive).
func NaiveScratch(p *Problem, s *Scratch) Result {
	if s == nil {
		s = &Scratch{}
	}
	var stats Stats
	assignment := growInts(&s.assignment, p.Layout.Rows)
	for r := range assignment {
		assignment[r] = r
	}
	if ok, _ := p.ColumnFeasible(); !ok {
		return Result{Reason: reasonPoisonedColumn, Stats: stats}
	}
	for r := range assignment {
		if !p.rowMatches(r, r, &stats) {
			return Result{Reason: reasonRowCollision, Stats: stats}
		}
	}
	return Result{Valid: true, Assignment: assignment, Stats: stats}
}

// Exact is the paper's EA: it builds the full matching matrix between every
// FM row and every usable CM row and runs Munkres' assignment; a zero-cost
// complete assignment is a valid mapping. EA is exact: if any valid row
// assignment exists, it finds one.
func Exact(p *Problem) Result { return ExactScratch(p, nil) }

// ExactScratch is Exact with reusable working storage (nil behaves like
// Exact). The matching matrix is read off the batched candidate bitsets —
// one kernel pass per FM row — instead of re-testing pairs.
func ExactScratch(p *Problem, s *Scratch) Result {
	if s == nil {
		s = &Scratch{}
	}
	var stats Stats
	if ok, _ := p.ColumnFeasible(); !ok {
		return Result{Reason: reasonPoisonedColumn, Stats: stats}
	}
	nFM, nCM := p.Layout.Rows, p.Defects.Rows
	// Prune unusable (stuck-closed) CM rows once up front: a poisoned row
	// matches no FM row, so carrying it only inflates the Munkres matrix. On
	// instances without closed defects this is a no-op and the assignment is
	// identical to the unpruned formulation.
	usable := growInts(&s.usable, 0)
	for t := 0; t < nCM; t++ {
		if !p.Defects.RowHasClosed(t) {
			usable = append(usable, t)
		}
	}
	s.usable = usable
	if len(usable) < nFM {
		return Result{Reason: reasonRowShortage, Stats: stats}
	}
	s.computeCandidates(p, &stats)
	forbidden := s.boolMatrix(nFM, len(usable))
	for i := 0; i < nFM; i++ {
		cand := s.cand.Row(i)
		row := forbidden[i]
		for k, t := range usable {
			row[k] = !cand.Get(t)
		}
	}
	assign, ok, err := s.solver.SolveBinary(forbidden)
	if err != nil {
		return Result{Reason: err.Error(), Stats: stats}
	}
	if !ok {
		return Result{Reason: reasonNoAssignment, Stats: stats}
	}
	out := growInts(&s.place, nFM)
	for i, k := range assign {
		out[i] = usable[k]
	}
	return Result{Valid: true, Assignment: out, Stats: stats}
}

// HBA is the paper's hybrid algorithm (Algorithm 1): a greedy top-to-bottom
// heuristic with single-level backtracking places the product (minterm)
// rows, then Munkres' algorithm assigns the output rows — the critical
// resource, since a single defect can discard a whole output — onto the
// remaining crossbar rows.
func HBA(p *Problem) Result { return HBAScratch(p, nil) }

// HBAScratch is HBA with reusable working storage (nil behaves like HBA).
// The enumeration loops run on precomputed candidate bitsets: the greedy
// scan is a first-set-bit of cand & free, and the backtracking scan walks
// the set bits of cand &^ free — the same top-to-bottom visiting order (and
// therefore bit-identical placements) as the pre-batch per-pair scans.
func HBAScratch(p *Problem, s *Scratch) Result {
	if s == nil {
		s = &Scratch{}
	}
	var stats Stats
	if ok, _ := p.ColumnFeasible(); !ok {
		return Result{Reason: reasonPoisonedColumn, Stats: stats}
	}
	nCM := p.Defects.Rows
	products := p.Layout.ProductRows()
	outputs := p.Layout.OutputRows()
	s.computeCandidates(p, &stats)

	// occupant[t] = FM product row currently on CM row t, or -1; freeBits is
	// the packed mirror of the occupant == -1 predicate.
	occupant := growInts(&s.occupant, nCM)
	for t := range occupant {
		occupant[t] = -1
	}
	place := growInts(&s.place, p.Layout.Rows)
	for r := range place {
		place[r] = -1
	}
	freeBits := growRow(&s.freeMask, nCM)
	freeBits.Fill(nCM)

	for _, i := range products {
		cand := s.cand.Row(i)
		if t := bitmat.FirstAnd(cand, freeBits); t >= 0 {
			occupant[t] = i
			place[i] = t
			freeBits.Clear(t)
			continue
		}
		// Backtracking: walk matched CM rows compatible with row i top to
		// bottom; if relocating such a row's occupant to an unmatched row
		// succeeds, row i takes its place. The lifted row t stays outside
		// freeBits, so the relocation scan never offers it back.
		stats.Backtracks++
		placed := false
		for t := bitmat.NextAndNot(cand, freeBits, 0); t >= 0 && !placed; t = bitmat.NextAndNot(cand, freeBits, t+1) {
			prev := occupant[t]
			if u := bitmat.FirstAnd(s.cand.Row(prev), freeBits); u >= 0 {
				occupant[u] = prev
				place[prev] = u
				freeBits.Clear(u)
				occupant[t] = i
				place[i] = t
				placed = true
			}
		}
		if !placed {
			return Result{Reason: reasonNoProductRow, Stats: stats}
		}
	}

	// Exact assignment of the output rows onto the unmatched CM rows.
	free := growInts(&s.free, 0)
	for t := freeBits.NextSet(0); t >= 0; t = freeBits.NextSet(t + 1) {
		free = append(free, t)
	}
	s.free = free
	if len(free) < len(outputs) {
		return Result{Reason: reasonOutputShortage, Stats: stats}
	}
	forbidden := s.boolMatrix(len(outputs), len(free))
	for k, i := range outputs {
		cand := s.cand.Row(i)
		row := forbidden[k]
		for u, t := range free {
			row[u] = !cand.Get(t)
		}
	}
	assign, ok, err := s.solver.SolveBinary(forbidden)
	if err != nil {
		return Result{Reason: err.Error(), Stats: stats}
	}
	if !ok {
		return Result{Reason: reasonOutputsBlocked, Stats: stats}
	}
	for k, i := range outputs {
		place[i] = free[assign[k]]
	}
	return Result{Valid: true, Assignment: place, Stats: stats}
}

// Validate re-checks a claimed assignment against the matching rule,
// independent of how it was produced.
func (p *Problem) Validate(assignment []int) error {
	if len(assignment) != p.Layout.Rows {
		return fmt.Errorf("mapping: assignment covers %d rows, layout has %d", len(assignment), p.Layout.Rows)
	}
	if ok, c := p.ColumnFeasible(); !ok {
		return fmt.Errorf("mapping: used column %d is poisoned", c)
	}
	seen := make(map[int]bool, len(assignment))
	var stats Stats
	for r, t := range assignment {
		if t < 0 || t >= p.Defects.Rows {
			return fmt.Errorf("mapping: row %d assigned outside the crossbar (%d)", r, t)
		}
		if seen[t] {
			return fmt.Errorf("mapping: physical row %d used twice", t)
		}
		seen[t] = true
		if !p.rowMatches(r, t, &stats) {
			return fmt.Errorf("mapping: row %d collides with defects on physical row %d", r, t)
		}
	}
	return nil
}

// BruteForce searches all row permutations for a valid mapping. It is the
// test oracle for EA's exactness claim and is exponential; callers must keep
// the instance small.
func BruteForce(p *Problem, limitRows int) Result {
	var stats Stats
	if p.Layout.Rows > limitRows {
		return Result{Reason: fmt.Sprintf("instance too large for brute force (%d rows)", p.Layout.Rows)}
	}
	if ok, c := p.ColumnFeasible(); !ok {
		return Result{Reason: fmt.Sprintf("column %d poisoned", c), Stats: stats}
	}
	nCM := p.Defects.Rows
	used := make([]bool, nCM)
	assignment := make([]int, p.Layout.Rows)
	var rec func(r int) bool
	rec = func(r int) bool {
		if r == p.Layout.Rows {
			return true
		}
		for t := 0; t < nCM; t++ {
			if used[t] || !p.rowMatches(r, t, &stats) {
				continue
			}
			used[t] = true
			assignment[r] = t
			if rec(r + 1) {
				return true
			}
			used[t] = false
		}
		return false
	}
	if rec(0) {
		return Result{Valid: true, Assignment: assignment, Stats: stats}
	}
	return Result{Reason: "exhaustive search found no valid mapping", Stats: stats}
}
