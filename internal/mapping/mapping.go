// Package mapping implements the defect-tolerant logic mapping algorithms of
// the paper's Section IV-B: the naive (defect-blind) mapper of Fig. 7(a),
// the exact algorithm (EA) that solves the full row-assignment problem with
// Munkres' method, and the hybrid algorithm (HBA, Algorithm 1) that places
// product rows with a greedy backtracking heuristic and reserves the exact
// assignment for the critical output rows.
//
// Rows of the function matrix (FM) are matched to rows of the crossbar
// matrix (CM): an FM row fits a CM row when every required-active device
// (FM = 1) falls on a functional switch (CM = 1); stuck-open switches
// (CM = 0) can only host disabled devices (FM = 0). Columns are fixed by
// the fabric wiring, so only rows are permuted.
package mapping

import (
	"fmt"

	"repro/internal/defect"
	"repro/internal/munkres"
	"repro/internal/xbar"
)

// Stats counts the work a mapping attempt performed.
type Stats struct {
	// MatchChecks is the number of row-compatibility tests.
	MatchChecks int
	// Backtracks counts heuristic backtracking events (HBA only).
	Backtracks int
}

// Result is the outcome of a mapping attempt.
type Result struct {
	// Valid reports whether a complete, defect-avoiding row assignment was
	// found.
	Valid bool
	// Assignment maps each layout (FM) row to a physical (CM) row; nil when
	// Valid is false.
	Assignment []int
	// Reason explains a failure for diagnostics.
	Reason string
	Stats  Stats
}

// Problem pairs a layout with the defect map of the target crossbar. The
// defect map may have more rows than the layout (redundant spare lines, the
// paper's Section VI future-work direction); it must have exactly the
// layout's column count.
type Problem struct {
	Layout  *xbar.Layout
	Defects *defect.Map
}

// NewProblem validates dimensions and pre-computes row usability.
func NewProblem(l *xbar.Layout, dm *defect.Map) (*Problem, error) {
	if dm.Cols != l.Cols {
		return nil, fmt.Errorf("mapping: defect map has %d columns, layout needs %d", dm.Cols, l.Cols)
	}
	if dm.Rows < l.Rows {
		return nil, fmt.Errorf("mapping: defect map has %d rows, layout needs %d", dm.Rows, l.Rows)
	}
	return &Problem{Layout: l, Defects: dm}, nil
}

// ColumnFeasible reports whether every column the layout actually uses is
// free of stuck-at-closed defects. A closed device poisons its entire
// vertical line, and columns cannot be re-routed, so a used poisoned column
// makes every mapping invalid regardless of row assignment (Section IV-A).
func (p *Problem) ColumnFeasible() (bool, int) {
	used := make([]bool, p.Layout.Cols)
	for _, row := range p.Layout.Active {
		for c, a := range row {
			if a {
				used[c] = true
			}
		}
	}
	for c, u := range used {
		if u && p.Defects.ColHasClosed(c) {
			return false, c
		}
	}
	return true, -1
}

// rowMatches tests the paper's row-matching rule, counting the check.
func (p *Problem) rowMatches(fmRow int, cmRow int, stats *Stats) bool {
	stats.MatchChecks++
	if p.Defects.RowHasClosed(cmRow) {
		return false // forced-1 line cannot host any logic row
	}
	active := p.Layout.Active[fmRow]
	for c, a := range active {
		if a && !p.Defects.Functional(cmRow, c) {
			return false
		}
	}
	return true
}

// Naive places rows in identity order, ignoring defects, then validates.
// This is the defect-blind flow of Fig. 7(a); it exists as the baseline the
// defect-aware algorithms are compared against.
func Naive(p *Problem) Result {
	var stats Stats
	assignment := make([]int, p.Layout.Rows)
	for r := range assignment {
		assignment[r] = r
	}
	if ok, c := p.ColumnFeasible(); !ok {
		return Result{Reason: fmt.Sprintf("column %d poisoned by a stuck-closed defect", c), Stats: stats}
	}
	for r := range assignment {
		if !p.rowMatches(r, r, &stats) {
			return Result{Reason: fmt.Sprintf("row %d collides with a defect", r), Stats: stats}
		}
	}
	return Result{Valid: true, Assignment: assignment, Stats: stats}
}

// Exact is the paper's EA: it builds the full matching matrix between every
// FM row and every usable CM row and runs Munkres' assignment; a zero-cost
// complete assignment is a valid mapping. EA is exact: if any valid row
// assignment exists, it finds one.
func Exact(p *Problem) Result {
	var stats Stats
	if ok, c := p.ColumnFeasible(); !ok {
		return Result{Reason: fmt.Sprintf("column %d poisoned by a stuck-closed defect", c), Stats: stats}
	}
	nFM, nCM := p.Layout.Rows, p.Defects.Rows
	forbidden := make([][]bool, nFM)
	for i := 0; i < nFM; i++ {
		forbidden[i] = make([]bool, nCM)
		for t := 0; t < nCM; t++ {
			forbidden[i][t] = !p.rowMatches(i, t, &stats)
		}
	}
	assign, ok, err := munkres.SolveBinary(forbidden)
	if err != nil {
		return Result{Reason: err.Error(), Stats: stats}
	}
	if !ok {
		return Result{Reason: "no zero-cost assignment exists", Stats: stats}
	}
	return Result{Valid: true, Assignment: assign, Stats: stats}
}

// HBA is the paper's hybrid algorithm (Algorithm 1): a greedy top-to-bottom
// heuristic with single-level backtracking places the product (minterm)
// rows, then Munkres' algorithm assigns the output rows — the critical
// resource, since a single defect can discard a whole output — onto the
// remaining crossbar rows.
func HBA(p *Problem) Result {
	var stats Stats
	if ok, c := p.ColumnFeasible(); !ok {
		return Result{Reason: fmt.Sprintf("column %d poisoned by a stuck-closed defect", c), Stats: stats}
	}
	nCM := p.Defects.Rows
	products := p.Layout.ProductRows()
	outputs := p.Layout.OutputRows()

	// occupant[t] = FM product row currently on CM row t, or -1.
	occupant := make([]int, nCM)
	for t := range occupant {
		occupant[t] = -1
	}
	place := make([]int, p.Layout.Rows)
	for r := range place {
		place[r] = -1
	}

	// findUnmatched scans unmatched CM rows top to bottom; except excludes a
	// row temporarily lifted during backtracking (-1 excludes nothing).
	findUnmatched := func(fmRow, except int) int {
		for t := 0; t < nCM; t++ {
			if t == except {
				continue
			}
			if occupant[t] == -1 && p.rowMatches(fmRow, t, &stats) {
				return t
			}
		}
		return -1
	}

	for _, i := range products {
		if t := findUnmatched(i, -1); t >= 0 {
			occupant[t] = i
			place[i] = t
			continue
		}
		// Backtracking: scan matched CM rows top to bottom; if row i fits a
		// matched row t, try to relocate t's occupant to an unmatched row.
		stats.Backtracks++
		placed := false
		for t := 0; t < nCM && !placed; t++ {
			if occupant[t] == -1 || !p.rowMatches(i, t, &stats) {
				continue
			}
			prev := occupant[t]
			occupant[t] = -1 // lift the occupant while searching
			if u := findUnmatched(prev, t); u >= 0 {
				occupant[u] = prev
				place[prev] = u
				occupant[t] = i
				place[i] = t
				placed = true
			} else {
				occupant[t] = prev
			}
		}
		if !placed {
			return Result{
				Reason: fmt.Sprintf("product row %d has no compatible crossbar row", i),
				Stats:  stats,
			}
		}
	}

	// Exact assignment of the output rows onto the unmatched CM rows.
	var free []int
	for t := 0; t < nCM; t++ {
		if occupant[t] == -1 {
			free = append(free, t)
		}
	}
	if len(free) < len(outputs) {
		return Result{Reason: "not enough free rows for outputs", Stats: stats}
	}
	forbidden := make([][]bool, len(outputs))
	for k, i := range outputs {
		forbidden[k] = make([]bool, len(free))
		for u, t := range free {
			forbidden[k][u] = !p.rowMatches(i, t, &stats)
		}
	}
	assign, ok, err := munkres.SolveBinary(forbidden)
	if err != nil {
		return Result{Reason: err.Error(), Stats: stats}
	}
	if !ok {
		return Result{Reason: "outputs cannot be assigned defect-free", Stats: stats}
	}
	for k, i := range outputs {
		place[i] = free[assign[k]]
	}
	return Result{Valid: true, Assignment: place, Stats: stats}
}

// Validate re-checks a claimed assignment against the matching rule,
// independent of how it was produced.
func (p *Problem) Validate(assignment []int) error {
	if len(assignment) != p.Layout.Rows {
		return fmt.Errorf("mapping: assignment covers %d rows, layout has %d", len(assignment), p.Layout.Rows)
	}
	if ok, c := p.ColumnFeasible(); !ok {
		return fmt.Errorf("mapping: used column %d is poisoned", c)
	}
	seen := make(map[int]bool, len(assignment))
	var stats Stats
	for r, t := range assignment {
		if t < 0 || t >= p.Defects.Rows {
			return fmt.Errorf("mapping: row %d assigned outside the crossbar (%d)", r, t)
		}
		if seen[t] {
			return fmt.Errorf("mapping: physical row %d used twice", t)
		}
		seen[t] = true
		if !p.rowMatches(r, t, &stats) {
			return fmt.Errorf("mapping: row %d collides with defects on physical row %d", r, t)
		}
	}
	return nil
}

// BruteForce searches all row permutations for a valid mapping. It is the
// test oracle for EA's exactness claim and is exponential; callers must keep
// the instance small.
func BruteForce(p *Problem, limitRows int) Result {
	var stats Stats
	if p.Layout.Rows > limitRows {
		return Result{Reason: fmt.Sprintf("instance too large for brute force (%d rows)", p.Layout.Rows)}
	}
	if ok, c := p.ColumnFeasible(); !ok {
		return Result{Reason: fmt.Sprintf("column %d poisoned", c), Stats: stats}
	}
	nCM := p.Defects.Rows
	used := make([]bool, nCM)
	assignment := make([]int, p.Layout.Rows)
	var rec func(r int) bool
	rec = func(r int) bool {
		if r == p.Layout.Rows {
			return true
		}
		for t := 0; t < nCM; t++ {
			if used[t] || !p.rowMatches(r, t, &stats) {
				continue
			}
			used[t] = true
			assignment[r] = t
			if rec(r + 1) {
				return true
			}
			used[t] = false
		}
		return false
	}
	if rec(0) {
		return Result{Valid: true, Assignment: assignment, Stats: stats}
	}
	return Result{Reason: "exhaustive search found no valid mapping", Stats: stats}
}
