package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/defect"
	"repro/internal/logic"
	"repro/internal/synth"
	"repro/internal/xbar"
)

// fig8Cover is the two-output function of Figs. 7/8:
// O1 = x1·x2 + x̄2·x3, O2 = x̄1·x̄3 + x2·x3 (FM layout of Fig. 8a).
func fig8Cover() *logic.Cover {
	return logic.MustParseCover(3, 2,
		"11- 10",
		"-01 10",
		"0-0 01",
		"-11 01",
	)
}

// fig8Defects reconstructs the CM of Fig. 8(b): 6x10, true=functional.
func fig8Defects(t *testing.T) *defect.Map {
	t.Helper()
	rows := []string{
		"1010111101",
		"1111111111",
		"0011111111",
		"1011011111",
		"1101111111",
		"1110111011",
	}
	dm := defect.NewMap(6, 10)
	for r, s := range rows {
		for c, ch := range s {
			if ch == '0' {
				dm.Set(r, c, defect.StuckOpen)
			}
		}
	}
	return dm
}

func fig8Problem(t *testing.T) *Problem {
	t.Helper()
	l, err := xbar.NewTwoLevel(fig8Cover())
	if err != nil {
		t.Fatal(err)
	}
	if l.Rows != 6 || l.Cols != 10 {
		t.Fatalf("Fig. 8 layout is %dx%d, want 6x10", l.Rows, l.Cols)
	}
	p, err := NewProblem(l, fig8Defects(t))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFig8FunctionMatrix(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	fm := l.FunctionMatrix()
	want := []string{
		"1100001000",
		"0010101000",
		"0001010100",
		"0110000100",
		"0000001010",
		"0000000101",
	}
	for r, s := range want {
		for c, ch := range s {
			if fm[r][c] != (ch == '1') {
				t.Fatalf("FM[%d][%d] = %v, want %c (paper Fig. 8a)", r, c, fm[r][c], ch)
			}
		}
	}
}

func TestFig7NaiveFailsDefectAwareSucceeds(t *testing.T) {
	p := fig8Problem(t)
	naive := Naive(p)
	if naive.Valid {
		t.Error("the naive identity mapping of Fig. 7(a) must fail on this defect map")
	}
	hba := HBA(p)
	if !hba.Valid {
		t.Fatalf("HBA must find the valid mapping of Fig. 7(b): %s", hba.Reason)
	}
	if err := p.Validate(hba.Assignment); err != nil {
		t.Fatal(err)
	}
	ea := Exact(p)
	if !ea.Valid {
		t.Fatalf("EA must find a valid mapping: %s", ea.Reason)
	}
	if err := p.Validate(ea.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestFig8MatchingMatrixEntries(t *testing.T) {
	p := fig8Problem(t)
	m := p.MatchingMatrix()
	// Spot checks against Fig. 8(c): H1 cannot host m1 (x2 column is
	// stuck-open) but can host m2; H2 hosts everything.
	if m[0][0] != 1 {
		t.Error("H1/m1 should be a mismatch")
	}
	if m[0][1] != 0 {
		t.Error("H1/m2 should match")
	}
	for i := 0; i < 6; i++ {
		if m[1][i] != 0 {
			t.Errorf("H2/%d should match (H2 is defect-free)", i)
		}
	}
	if s := p.RenderMatchingMatrix(); s == "" {
		t.Error("render should produce output")
	}
}

func TestMappedSimulationComputesFunction(t *testing.T) {
	p := fig8Problem(t)
	f := fig8Cover()
	for _, algo := range []struct {
		name string
		run  func(*Problem) Result
	}{{"HBA", HBA}, {"EA", Exact}} {
		res := algo.run(p)
		if !res.Valid {
			t.Fatalf("%s failed: %s", algo.name, res.Reason)
		}
		bad, err := p.Layout.Verify(func(x []bool) []bool { return f.Eval(x) },
			p.Defects, res.Assignment, xbar.AllAssignments(3))
		if err != nil {
			t.Fatal(err)
		}
		if bad != nil {
			t.Errorf("%s mapping mis-computes at input %v", algo.name, bad)
		}
	}
}

func TestNaiveSucceedsOnCleanFabric(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	p, err := NewProblem(l, defect.NewMap(l.Rows, l.Cols))
	if err != nil {
		t.Fatal(err)
	}
	res := Naive(p)
	if !res.Valid {
		t.Fatalf("naive mapping must succeed without defects: %s", res.Reason)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	agreeFail, agreeOK := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(3)
		f := randomMulti(rng, n, 1+rng.Intn(2), 1+rng.Intn(5))
		l, err := xbar.NewTwoLevel(f)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := defect.Generate(l.Rows, l.Cols, defect.Params{POpen: 0.25}, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(l, dm)
		if err != nil {
			t.Fatal(err)
		}
		ea := Exact(p)
		bf := BruteForce(p, 10)
		if ea.Valid != bf.Valid {
			t.Fatalf("EA valid=%v but brute force valid=%v\nlayout:\n%s\ndefects:\n%s",
				ea.Valid, bf.Valid, l.Render(), dm)
		}
		if ea.Valid {
			agreeOK++
			if err := p.Validate(ea.Assignment); err != nil {
				t.Fatal(err)
			}
		} else {
			agreeFail++
		}
	}
	if agreeOK == 0 || agreeFail == 0 {
		t.Errorf("test corpus is degenerate: ok=%d fail=%d", agreeOK, agreeFail)
	}
}

func TestHBASoundness(t *testing.T) {
	// HBA success implies EA success, and every HBA mapping validates.
	rng := rand.New(rand.NewSource(79))
	hbaWins := 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(4)
		f := randomMulti(rng, n, 1+rng.Intn(3), 1+rng.Intn(7))
		l, err := xbar.NewTwoLevel(f)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := defect.Generate(l.Rows, l.Cols, defect.Params{POpen: 0.15}, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(l, dm)
		if err != nil {
			t.Fatal(err)
		}
		hba := HBA(p)
		if hba.Valid {
			hbaWins++
			if err := p.Validate(hba.Assignment); err != nil {
				t.Fatalf("HBA produced an invalid mapping: %v", err)
			}
			if !Exact(p).Valid {
				t.Fatal("HBA found a mapping that EA says cannot exist")
			}
		}
	}
	if hbaWins == 0 {
		t.Error("HBA never succeeded; corpus degenerate")
	}
}

func TestStuckClosedPoisonsColumns(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	dm := defect.NewMap(l.Rows, l.Cols)
	dm.Set(3, 0, defect.StuckClosed) // x1 column is used by m1
	p, err := NewProblem(l, dm)
	if err != nil {
		t.Fatal(err)
	}
	if ok, col := p.ColumnFeasible(); ok || col != 0 {
		t.Errorf("ColumnFeasible = %v,%d, want false,0", ok, col)
	}
	for _, algo := range []func(*Problem) Result{Naive, HBA, Exact} {
		if algo(p).Valid {
			t.Error("no algorithm may claim success with a poisoned used column")
		}
	}
}

func TestStuckClosedRowIsExcluded(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	dm := defect.NewMap(l.Rows+1, l.Cols) // one spare row
	// Poison a full spare-capacity row on an unused column... every column
	// is used here, so poison via an extra spare row's own column is not
	// possible; instead verify RowHasClosed exclusion logic directly with a
	// redundant-row instance where the poisoned column is the spare's.
	p, err := NewProblem(l, dm)
	if err != nil {
		t.Fatal(err)
	}
	res := Exact(p)
	if !res.Valid {
		t.Fatalf("clean 7-row fabric must map a 6-row layout: %s", res.Reason)
	}
}

func TestRedundantRowsImproveMapping(t *testing.T) {
	// With a spare row, a defect pattern that defeats the optimum-size
	// array becomes mappable: the paper's Section VI yield direction.
	l, _ := xbar.NewTwoLevel(fig8Cover())
	// Block row 1 completely except for disabled positions needed nowhere:
	// an open defect on every column kills all rows' chances to host
	// anything except the all-zero FM row (none exists here).
	dm := defect.NewMap(l.Rows, l.Cols)
	for c := 0; c < l.Cols; c++ {
		dm.Set(2, c, defect.StuckOpen)
	}
	p, _ := NewProblem(l, dm)
	if Exact(p).Valid {
		t.Fatal("a fully open row must defeat the optimum-size array")
	}
	spare := defect.NewMap(l.Rows+1, l.Cols)
	for c := 0; c < l.Cols; c++ {
		spare.Set(2, c, defect.StuckOpen)
	}
	p2, _ := NewProblem(l, spare)
	if !Exact(p2).Valid {
		t.Fatal("one spare row must rescue the mapping")
	}
}

func TestNewProblemValidation(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	if _, err := NewProblem(l, defect.NewMap(l.Rows, l.Cols+2)); err == nil {
		t.Error("column mismatch must fail")
	}
	if _, err := NewProblem(l, defect.NewMap(l.Rows-1, l.Cols)); err == nil {
		t.Error("too few rows must fail")
	}
}

func TestValidateRejectsBadAssignments(t *testing.T) {
	p := fig8Problem(t)
	if err := p.Validate([]int{0, 1}); err == nil {
		t.Error("short assignment must fail")
	}
	if err := p.Validate([]int{0, 0, 1, 2, 3, 4}); err == nil {
		t.Error("duplicate rows must fail")
	}
	if err := p.Validate([]int{0, 1, 2, 3, 4, 99}); err == nil {
		t.Error("out-of-range row must fail")
	}
	if err := p.Validate([]int{0, 1, 2, 3, 4, 5}); err == nil {
		t.Error("the identity mapping is invalid on the Fig. 8 defects")
	}
}

func TestHBAStatsReported(t *testing.T) {
	p := fig8Problem(t)
	res := HBA(p)
	if res.Stats.MatchChecks == 0 {
		t.Error("HBA must count match checks")
	}
}

func TestBruteForceLimit(t *testing.T) {
	p := fig8Problem(t)
	res := BruteForce(p, 2)
	if res.Valid {
		t.Error("instance above the limit must be refused")
	}
}

func TestMultiLevelMapping(t *testing.T) {
	// Defect-tolerant mapping of a multi-level layout: the paper's stated
	// future-work integration, supported here because HBA/EA operate on any
	// layout's function matrix.
	cov := logic.MustParseCover(4, 1, "11--", "--11", "1--1")
	nw, err := synth.SynthesizeMultiLevel(cov, synth.MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := xbar.NewMultiLevel(nw)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	found := false
	for trial := 0; trial < 50 && !found; trial++ {
		dm, err := defect.Generate(l.Rows, l.Cols, defect.Params{POpen: 0.10}, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(l, dm)
		if err != nil {
			t.Fatal(err)
		}
		res := HBA(p)
		if !res.Valid {
			continue
		}
		found = true
		bad, err := l.Verify(func(x []bool) []bool { return cov.Eval(x) },
			dm, res.Assignment, xbar.AllAssignments(4))
		if err != nil {
			t.Fatal(err)
		}
		if bad != nil {
			t.Errorf("mapped multi-level crossbar mis-computes at %v", bad)
		}
	}
	if !found {
		t.Error("HBA never mapped the multi-level layout at 10% defects")
	}
}

func randomMulti(rng *rand.Rand, nIn, nOut, nCubes int) *logic.Cover {
	c := logic.NewCover(nIn, nOut)
	for k := 0; k < nCubes; k++ {
		cube := logic.NewCube(nIn, nOut)
		for i := range cube.In {
			switch rng.Intn(4) {
			case 0:
				cube.In[i] = logic.LitNeg
			case 1:
				cube.In[i] = logic.LitPos
			default:
				cube.In[i] = logic.LitDC
			}
		}
		for j := range cube.Out {
			cube.Out[j] = rng.Intn(2) == 1
		}
		if cube.NumOutputs() == 0 {
			cube.Out[rng.Intn(nOut)] = true
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}
