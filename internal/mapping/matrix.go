package mapping

import (
	"fmt"
	"strings"
)

// MatchingMatrix builds the matrix of Fig. 8(c): entry [t][i] is 0 when FM
// row i can be hosted by CM row t and 1 otherwise, mirroring the cost-matrix
// convention of assignment problems (0 = zero-cost pairing).
func (p *Problem) MatchingMatrix() [][]int {
	var stats Stats
	m := make([][]int, p.Defects.Rows)
	for t := range m {
		m[t] = make([]int, p.Layout.Rows)
		for i := range m[t] {
			if !p.rowMatches(i, t, &stats) {
				m[t][i] = 1
			}
		}
	}
	return m
}

// RenderMatchingMatrix renders the matrix with the paper's row/column
// labels (H1.., m1.., O1..) for examples and documentation.
func (p *Problem) RenderMatchingMatrix() string {
	m := p.MatchingMatrix()
	nP := len(p.Layout.ProductRows())
	var b strings.Builder
	b.WriteString("      ")
	for i := 0; i < p.Layout.Rows; i++ {
		if i < nP {
			fmt.Fprintf(&b, "m%-3d", i+1)
		} else {
			fmt.Fprintf(&b, "O%-3d", i-nP+1)
		}
	}
	b.WriteByte('\n')
	for t, row := range m {
		fmt.Fprintf(&b, "H%-4d ", t+1)
		for _, v := range row {
			fmt.Fprintf(&b, "%-4d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
