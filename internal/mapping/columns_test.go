package mapping

import (
	"math/rand"
	"testing"

	"repro/internal/defect"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/xbar"
)

func synthNetHelper(cov *logic.Cover) (*netlist.Network, error) {
	return synth.SynthesizeMultiLevel(cov, synth.MultiLevelOptions{})
}

func TestSpecFor(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	spec := SpecFor(l)
	if spec.InputPairs != 3 || spec.Wires != 0 || spec.OutputPairs != 2 {
		t.Errorf("spec = %+v", spec)
	}
	if spec.Cols() != 10 {
		t.Errorf("cols = %d, want 10", spec.Cols())
	}
}

func TestColumnAwareIdentityOnCleanFabric(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	spec := SpecFor(l)
	dm := defect.NewMap(l.Rows, spec.Cols())
	res, err := ColumnAware(l, dm, spec, ColumnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("clean fabric must map: %s", res.Reason)
	}
	if err := validateAssignment(res.Columns, spec, l); err != nil {
		t.Fatal(err)
	}
}

func TestColumnAwareValidation(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	small := FabricSpec{InputPairs: 2, Wires: 0, OutputPairs: 2}
	if _, err := ColumnAware(l, defect.NewMap(6, small.Cols()), small, ColumnOptions{}); err == nil {
		t.Error("too-small fabric must fail")
	}
	spec := SpecFor(l)
	if _, err := ColumnAware(l, defect.NewMap(6, spec.Cols()+1), spec, ColumnOptions{}); err == nil {
		t.Error("column mismatch must fail")
	}
	if _, err := ColumnAware(l, defect.NewMap(l.Rows-1, spec.Cols()), spec, ColumnOptions{}); err == nil {
		t.Error("too few rows must fail")
	}
}

// TestStuckClosedToleratedWithSpareColumns is the headline of this
// extension: a stuck-closed defect on a used input column defeats every
// fixed-wiring algorithm, but one spare input pair plus column permutation
// recovers the mapping — and the mapped defective fabric still computes
// the function.
func TestStuckClosedToleratedWithSpareColumns(t *testing.T) {
	f := fig8Cover()
	l, _ := xbar.NewTwoLevel(f)

	// Closed defect on physical column 0 (= x1, used by product m1).
	spec := SpecFor(l)
	dm := defect.NewMap(l.Rows, spec.Cols())
	dm.Set(3, 0, defect.StuckClosed)
	p, _ := NewProblem(l, dm)
	if Exact(p).Valid {
		t.Fatal("fixed wiring must fail on a used poisoned column")
	}
	resNoSpare, err := ColumnAware(l, dm, spec, ColumnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resNoSpare.Valid {
		t.Fatal("without spare pairs every input pair is used; permutation alone cannot help")
	}

	// One spare input pair: fabric has 4 pairs, the design needs 3.
	spare := FabricSpec{InputPairs: 4, Wires: 0, OutputPairs: 2}
	dmSpare := defect.NewMap(l.Rows, spare.Cols())
	dmSpare.Set(3, 0, defect.StuckClosed) // poison physical pair 0's x column
	res, err := ColumnAware(l, dmSpare, spare, ColumnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("one spare pair must rescue the mapping: %s", res.Reason)
	}
	for _, pair := range res.Columns.InputPair {
		if pair == 0 {
			t.Error("the poisoned pair 0 must not be chosen")
		}
	}
	// End-to-end: simulate against the projected defect map.
	bad, err := l.Verify(func(x []bool) []bool { return f.Eval(x) },
		res.Projected, res.Rows.Assignment, xbar.AllAssignments(3))
	if err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Errorf("column-remapped fabric mis-computes at %v", bad)
	}
}

func TestColumnAwareImprovesOpenToleranceWithSpares(t *testing.T) {
	// With spare pairs, column permutation must help at least as often as
	// fixed wiring on random defect maps.
	f := fig8Cover()
	l, _ := xbar.NewTwoLevel(f)
	spec := SpecFor(l)
	spare := FabricSpec{InputPairs: spec.InputPairs + 2, Wires: 0, OutputPairs: spec.OutputPairs + 1}
	rng := rand.New(rand.NewSource(331))
	fixedOK, colOK := 0, 0
	for trial := 0; trial < 120; trial++ {
		dmFull, err := defect.Generate(l.Rows+1, spare.Cols(), defect.Params{POpen: 0.2, PClosed: 0.02}, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Fixed wiring sees the first columns of each block.
		fixed := ProjectDefects(dmFull, spare, l, ColumnAssignment{
			InputPair:  []int{0, 1, 2},
			Wire:       nil,
			OutputPair: []int{0, 1},
		})
		p, err := NewProblem(l, fixed)
		if err != nil {
			t.Fatal(err)
		}
		if HBA(p).Valid {
			fixedOK++
		}
		res, err := ColumnAware(l, dmFull, spare, ColumnOptions{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Valid {
			colOK++
			// Every claimed success must validate structurally.
			pp, err := NewProblem(l, res.Projected)
			if err != nil {
				t.Fatal(err)
			}
			if err := pp.Validate(res.Rows.Assignment); err != nil {
				t.Fatal(err)
			}
		}
	}
	if colOK < fixedOK {
		t.Errorf("column permutation hurt: %d vs %d", colOK, fixedOK)
	}
	if colOK == 0 {
		t.Error("column-aware mapping never succeeded; corpus degenerate")
	}
	t.Logf("fixed=%d column-aware=%d of 120", fixedOK, colOK)
}

func TestColumnAwareMultiLevelLayout(t *testing.T) {
	cov := logic.MustParseCover(4, 1, "11--", "--11", "1--1")
	nw, err := synthNetHelper(cov)
	if err != nil {
		t.Fatal(err)
	}
	l, err := xbar.NewMultiLevel(nw)
	if err != nil {
		t.Fatal(err)
	}
	spec := SpecFor(l)
	spare := FabricSpec{InputPairs: spec.InputPairs + 1, Wires: spec.Wires + 1, OutputPairs: spec.OutputPairs}
	rng := rand.New(rand.NewSource(337))
	found := false
	for trial := 0; trial < 40 && !found; trial++ {
		dm, err := defect.Generate(l.Rows+1, spare.Cols(), defect.Params{POpen: 0.08, PClosed: 0.01}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ColumnAware(l, dm, spare, ColumnOptions{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Valid {
			continue
		}
		found = true
		bad, err := l.Verify(func(x []bool) []bool { return cov.Eval(x) },
			res.Projected, res.Rows.Assignment, xbar.AllAssignments(4))
		if err != nil {
			t.Fatal(err)
		}
		if bad != nil {
			t.Errorf("multi-level column-aware mapping mis-computes at %v", bad)
		}
	}
	if !found {
		t.Error("column-aware never mapped the multi-level layout")
	}
}

func validateAssignment(a ColumnAssignment, spec FabricSpec, l *xbar.Layout) error {
	checkInjective := func(xs []int, limit int, what string) error {
		seen := map[int]bool{}
		for _, v := range xs {
			if v < 0 || v >= limit || seen[v] {
				return errInvalid(what, xs)
			}
			seen[v] = true
		}
		return nil
	}
	if err := checkInjective(a.InputPair, spec.InputPairs, "input pairs"); err != nil {
		return err
	}
	if err := checkInjective(a.Wire, spec.Wires, "wires"); err != nil {
		return err
	}
	return checkInjective(a.OutputPair, spec.OutputPairs, "output pairs")
}

type assignErr struct {
	what string
	xs   []int
}

func (e assignErr) Error() string { return e.what + " assignment invalid" }

func errInvalid(what string, xs []int) error { return assignErr{what, xs} }
