package mapping

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/defect"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/xbar"
)

func synthNetHelper(cov *logic.Cover) (*netlist.Network, error) {
	return synth.SynthesizeMultiLevel(cov, synth.MultiLevelOptions{})
}

func TestSpecFor(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	spec := SpecFor(l)
	if spec.InputPairs != 3 || spec.Wires != 0 || spec.OutputPairs != 2 {
		t.Errorf("spec = %+v", spec)
	}
	if spec.Cols() != 10 {
		t.Errorf("cols = %d, want 10", spec.Cols())
	}
}

func TestColumnAwareIdentityOnCleanFabric(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	spec := SpecFor(l)
	dm := defect.NewMap(l.Rows, spec.Cols())
	res, err := ColumnAware(l, dm, spec, ColumnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("clean fabric must map: %s", res.Reason)
	}
	if err := validateAssignment(res.Columns, spec, l); err != nil {
		t.Fatal(err)
	}
}

func TestColumnAwareValidation(t *testing.T) {
	l, _ := xbar.NewTwoLevel(fig8Cover())
	small := FabricSpec{InputPairs: 2, Wires: 0, OutputPairs: 2}
	if _, err := ColumnAware(l, defect.NewMap(6, small.Cols()), small, ColumnOptions{}); err == nil {
		t.Error("too-small fabric must fail")
	}
	spec := SpecFor(l)
	if _, err := ColumnAware(l, defect.NewMap(6, spec.Cols()+1), spec, ColumnOptions{}); err == nil {
		t.Error("column mismatch must fail")
	}
	if _, err := ColumnAware(l, defect.NewMap(l.Rows-1, spec.Cols()), spec, ColumnOptions{}); err == nil {
		t.Error("too few rows must fail")
	}
}

// TestStuckClosedToleratedWithSpareColumns is the headline of this
// extension: a stuck-closed defect on a used input column defeats every
// fixed-wiring algorithm, but one spare input pair plus column permutation
// recovers the mapping — and the mapped defective fabric still computes
// the function.
func TestStuckClosedToleratedWithSpareColumns(t *testing.T) {
	f := fig8Cover()
	l, _ := xbar.NewTwoLevel(f)

	// Closed defect on physical column 0 (= x1, used by product m1).
	spec := SpecFor(l)
	dm := defect.NewMap(l.Rows, spec.Cols())
	dm.Set(3, 0, defect.StuckClosed)
	p, _ := NewProblem(l, dm)
	if Exact(p).Valid {
		t.Fatal("fixed wiring must fail on a used poisoned column")
	}
	resNoSpare, err := ColumnAware(l, dm, spec, ColumnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resNoSpare.Valid {
		t.Fatal("without spare pairs every input pair is used; permutation alone cannot help")
	}

	// One spare input pair: fabric has 4 pairs, the design needs 3.
	spare := FabricSpec{InputPairs: 4, Wires: 0, OutputPairs: 2}
	dmSpare := defect.NewMap(l.Rows, spare.Cols())
	dmSpare.Set(3, 0, defect.StuckClosed) // poison physical pair 0's x column
	res, err := ColumnAware(l, dmSpare, spare, ColumnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("one spare pair must rescue the mapping: %s", res.Reason)
	}
	for _, pair := range res.Columns.InputPair {
		if pair == 0 {
			t.Error("the poisoned pair 0 must not be chosen")
		}
	}
	// End-to-end: simulate against the projected defect map.
	bad, err := l.Verify(func(x []bool) []bool { return f.Eval(x) },
		res.Projected, res.Rows.Assignment, xbar.AllAssignments(3))
	if err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Errorf("column-remapped fabric mis-computes at %v", bad)
	}
}

func TestColumnAwareImprovesOpenToleranceWithSpares(t *testing.T) {
	// With spare pairs, column permutation must help at least as often as
	// fixed wiring on random defect maps.
	f := fig8Cover()
	l, _ := xbar.NewTwoLevel(f)
	spec := SpecFor(l)
	spare := FabricSpec{InputPairs: spec.InputPairs + 2, Wires: 0, OutputPairs: spec.OutputPairs + 1}
	rng := rand.New(rand.NewSource(331))
	fixedOK, colOK := 0, 0
	for trial := 0; trial < 120; trial++ {
		dmFull, err := defect.Generate(l.Rows+1, spare.Cols(), defect.Params{POpen: 0.2, PClosed: 0.02}, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Fixed wiring sees the first columns of each block.
		fixed := ProjectDefects(dmFull, spare, l, ColumnAssignment{
			InputPair:  []int{0, 1, 2},
			Wire:       nil,
			OutputPair: []int{0, 1},
		})
		p, err := NewProblem(l, fixed)
		if err != nil {
			t.Fatal(err)
		}
		if HBA(p).Valid {
			fixedOK++
		}
		res, err := ColumnAware(l, dmFull, spare, ColumnOptions{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Valid {
			colOK++
			// Every claimed success must validate structurally.
			pp, err := NewProblem(l, res.Projected)
			if err != nil {
				t.Fatal(err)
			}
			if err := pp.Validate(res.Rows.Assignment); err != nil {
				t.Fatal(err)
			}
		}
	}
	if colOK < fixedOK {
		t.Errorf("column permutation hurt: %d vs %d", colOK, fixedOK)
	}
	if colOK == 0 {
		t.Error("column-aware mapping never succeeded; corpus degenerate")
	}
	t.Logf("fixed=%d column-aware=%d of 120", fixedOK, colOK)
}

func TestColumnAwareMultiLevelLayout(t *testing.T) {
	cov := logic.MustParseCover(4, 1, "11--", "--11", "1--1")
	nw, err := synthNetHelper(cov)
	if err != nil {
		t.Fatal(err)
	}
	l, err := xbar.NewMultiLevel(nw)
	if err != nil {
		t.Fatal(err)
	}
	spec := SpecFor(l)
	spare := FabricSpec{InputPairs: spec.InputPairs + 1, Wires: spec.Wires + 1, OutputPairs: spec.OutputPairs}
	rng := rand.New(rand.NewSource(337))
	found := false
	for trial := 0; trial < 40 && !found; trial++ {
		dm, err := defect.Generate(l.Rows+1, spare.Cols(), defect.Params{POpen: 0.08, PClosed: 0.01}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ColumnAware(l, dm, spare, ColumnOptions{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Valid {
			continue
		}
		found = true
		bad, err := l.Verify(func(x []bool) []bool { return cov.Eval(x) },
			res.Projected, res.Rows.Assignment, xbar.AllAssignments(4))
		if err != nil {
			t.Fatal(err)
		}
		if bad != nil {
			t.Errorf("multi-level column-aware mapping mis-computes at %v", bad)
		}
	}
	if !found {
		t.Error("column-aware never mapped the multi-level layout")
	}
}

// referenceColumnAware is a verbatim copy of the pre-scratch column-aware
// search (sort.SliceStable greedy ranking, per-attempt projection and
// perturb copies, HBA row phase), frozen as the reference the refactored
// retry loop — scratch buffers, popcount penalties, insertion sort, in-place
// perturb — is pinned against. The retry schedule (greedy result + rng draw
// order) is part of the stuck-closed study's reproducibility contract.
func referenceColumnAware(l *xbar.Layout, dm *defect.Map, spec FabricSpec, opt ColumnOptions) (ColumnResult, error) {
	if opt.Retries == 0 {
		opt.Retries = 20
	}
	usage := make([]int, l.Cols)
	for _, row := range l.Active {
		for c, a := range row {
			if a {
				usage[c]++
			}
		}
	}
	assign := referenceGreedyColumns(l, dm, spec, usage)
	rng := rand.New(rand.NewSource(opt.Seed))
	res := ColumnResult{}
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		res.Attempts++
		projected := ProjectDefects(dm, spec, l, assign)
		p, err := NewProblem(l, projected)
		if err != nil {
			return ColumnResult{}, err
		}
		if ok, _ := p.ColumnFeasible(); ok {
			rows := HBA(p)
			if rows.Valid {
				return ColumnResult{
					Valid: true, Columns: assign, Rows: rows,
					Attempts: res.Attempts, Projected: projected,
				}, nil
			}
			res.Reason = rows.Reason
		} else {
			res.Reason = "poisoned column in the chosen set"
		}
		assign = referencePerturb(assign, spec, rng)
	}
	res.Valid = false
	return res, nil
}

func referenceGreedyColumns(l *xbar.Layout, dm *defect.Map, spec FabricSpec, usage []int) ColumnAssignment {
	penalty := func(cols ...int) int {
		p := 0
		for _, c := range cols {
			if dm.ColHasClosed(c) {
				p += 1_000_000
			}
			for r := 0; r < dm.Rows; r++ {
				if dm.At(r, c) == defect.StuckOpen {
					p++
				}
			}
		}
		return p
	}
	physPairCols := func(p int) (int, int) { return p, spec.InputPairs + p }
	physWireCol := func(w int) int { return 2*spec.InputPairs + w }
	physOutCols := func(o int) (int, int) {
		base := 2*spec.InputPairs + spec.Wires
		return base + o, base + spec.OutputPairs + o
	}
	rankPhys := func(n int, pen func(i int) int) []int {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return pen(order[a]) < pen(order[b]) })
		return order
	}
	rankLogical := func(n int, demand func(i int) int) []int {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return demand(order[a]) > demand(order[b]) })
		return order
	}
	nW := 0
	for _, k := range l.ColKinds {
		if k == xbar.ColWire {
			nW++
		}
	}
	a := ColumnAssignment{
		InputPair:  make([]int, l.NumIn),
		Wire:       make([]int, nW),
		OutputPair: make([]int, l.NumOut),
	}
	physIn := rankPhys(spec.InputPairs, func(p int) int { x, nx := physPairCols(p); return penalty(x, nx) })
	logIn := rankLogical(l.NumIn, func(i int) int { return usage[i] + usage[l.NumIn+i] })
	for k, li := range logIn {
		a.InputPair[li] = physIn[k]
	}
	physW := rankPhys(spec.Wires, func(w int) int { return penalty(physWireCol(w)) })
	logW := rankLogical(nW, func(w int) int { return usage[2*l.NumIn+w] })
	for k, lw := range logW {
		a.Wire[lw] = physW[k]
	}
	physO := rankPhys(spec.OutputPairs, func(o int) int { fb, f := physOutCols(o); return penalty(fb, f) })
	logO := rankLogical(l.NumOut, func(j int) int {
		base := 2*l.NumIn + nW
		return usage[base+j] + usage[base+l.NumOut+j]
	})
	for k, lj := range logO {
		a.OutputPair[lj] = physO[k]
	}
	return a
}

func referencePerturb(a ColumnAssignment, spec FabricSpec, rng *rand.Rand) ColumnAssignment {
	b := ColumnAssignment{
		InputPair:  append([]int(nil), a.InputPair...),
		Wire:       append([]int(nil), a.Wire...),
		OutputPair: append([]int(nil), a.OutputPair...),
	}
	swapInto := func(slice []int, limit int) {
		if len(slice) == 0 || limit == 0 {
			return
		}
		i := rng.Intn(len(slice))
		target := rng.Intn(limit)
		for k, v := range slice {
			if v == target {
				slice[i], slice[k] = slice[k], slice[i]
				return
			}
		}
		slice[i] = target
	}
	switch rng.Intn(3) {
	case 0:
		swapInto(b.InputPair, spec.InputPairs)
	case 1:
		if len(b.Wire) > 0 && spec.Wires > 0 {
			swapInto(b.Wire, spec.Wires)
		} else {
			swapInto(b.InputPair, spec.InputPairs)
		}
	default:
		swapInto(b.OutputPair, spec.OutputPairs)
	}
	return b
}

// TestColumnAwareMatchesPreRefactor pins the refactored retry loop to the
// frozen pre-scratch implementation on random fabrics (two-level and
// multi-level, mixed open/closed defects): identical validity, attempt
// count, column assignment, and row assignment.
func TestColumnAwareMatchesPreRefactor(t *testing.T) {
	layouts := []*xbar.Layout{}
	{
		l, _ := xbar.NewTwoLevel(fig8Cover())
		layouts = append(layouts, l)
	}
	{
		cov := logic.MustParseCover(4, 1, "11--", "--11", "1--1")
		nw, err := synthNetHelper(cov)
		if err != nil {
			t.Fatal(err)
		}
		l, err := xbar.NewMultiLevel(nw)
		if err != nil {
			t.Fatal(err)
		}
		layouts = append(layouts, l)
	}
	rng := rand.New(rand.NewSource(271))
	for li, l := range layouts {
		spec := SpecFor(l)
		spare := FabricSpec{InputPairs: spec.InputPairs + 2, Wires: spec.Wires + 1, OutputPairs: spec.OutputPairs + 1}
		scratch := NewColumnScratch()
		dm := defect.NewMap(l.Rows+1, spare.Cols())
		for trial := 0; trial < 40; trial++ {
			rng.Seed(int64(li*1000+trial) * 31337)
			if err := dm.Regenerate(defect.Params{POpen: 0.15, PClosed: 0.015}, rng); err != nil {
				t.Fatal(err)
			}
			opt := ColumnOptions{Seed: int64(trial)}
			want, err := referenceColumnAware(l, dm, spare, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ColumnAwareScratch(l, dm, spare, opt, scratch)
			if err != nil {
				t.Fatal(err)
			}
			if got.Valid != want.Valid || got.Attempts != want.Attempts {
				t.Fatalf("layout %d trial %d: got {valid %v attempts %d} want {valid %v attempts %d}",
					li, trial, got.Valid, got.Attempts, want.Valid, want.Attempts)
			}
			if !got.Valid {
				continue
			}
			pairs := [][2][]int{
				{got.Columns.InputPair, want.Columns.InputPair},
				{got.Columns.Wire, want.Columns.Wire},
				{got.Columns.OutputPair, want.Columns.OutputPair},
				{got.Rows.Assignment, want.Rows.Assignment},
			}
			for pi, pr := range pairs {
				if len(pr[0]) != len(pr[1]) {
					t.Fatalf("layout %d trial %d: slice %d length mismatch", li, trial, pi)
				}
				for i := range pr[0] {
					if pr[0][i] != pr[1][i] {
						t.Fatalf("layout %d trial %d: slice %d differs at %d (%d vs %d)",
							li, trial, pi, i, pr[0][i], pr[1][i])
					}
				}
			}
		}
	}
}

// TestColumnAwareScratchMatchesFresh re-runs the column-aware search many
// times on one reusable ColumnScratch, asserting results identical to the
// allocate-fresh path: same validity, attempt count, column assignment, row
// assignment, and projected defect map (the retry loop's reproducibility
// contract).
func TestColumnAwareScratchMatchesFresh(t *testing.T) {
	f := fig8Cover()
	l, _ := xbar.NewTwoLevel(f)
	spec := SpecFor(l)
	spare := FabricSpec{InputPairs: spec.InputPairs + 2, Wires: 0, OutputPairs: spec.OutputPairs + 1}
	rng := rand.New(rand.NewSource(99))
	scratch := NewColumnScratch()
	dm := defect.NewMap(l.Rows+1, spare.Cols())
	for trial := 0; trial < 60; trial++ {
		rng.Seed(int64(trial) * 1303)
		if err := dm.Regenerate(defect.Params{POpen: 0.18, PClosed: 0.015}, rng); err != nil {
			t.Fatal(err)
		}
		opt := ColumnOptions{Seed: int64(trial)}
		want, err := ColumnAware(l, dm, spare, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ColumnAwareScratch(l, dm, spare, opt, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if got.Valid != want.Valid || got.Attempts != want.Attempts || got.Reason != want.Reason {
			t.Fatalf("trial %d: scratch {valid %v attempts %d %q} vs fresh {valid %v attempts %d %q}",
				trial, got.Valid, got.Attempts, got.Reason, want.Valid, want.Attempts, want.Reason)
		}
		if !got.Valid {
			continue
		}
		sameInts := func(name string, a, b []int) {
			if len(a) != len(b) {
				t.Fatalf("trial %d: %s length %d vs %d", trial, name, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d: %s differs at %d (%d vs %d)", trial, name, i, a[i], b[i])
				}
			}
		}
		sameInts("input pairs", got.Columns.InputPair, want.Columns.InputPair)
		sameInts("wires", got.Columns.Wire, want.Columns.Wire)
		sameInts("output pairs", got.Columns.OutputPair, want.Columns.OutputPair)
		sameInts("row assignment", got.Rows.Assignment, want.Rows.Assignment)
		for r := 0; r < want.Projected.Rows; r++ {
			for c := 0; c < want.Projected.Cols; c++ {
				if got.Projected.At(r, c) != want.Projected.At(r, c) {
					t.Fatalf("trial %d: projected map differs at (%d,%d)", trial, r, c)
				}
			}
		}
	}
}

// TestColumnAwareScratchZeroAllocs pins the scratch retry loop at zero heap
// allocations in steady state, the same contract BenchmarkYield200 pins for
// the row-mapping trial loop.
func TestColumnAwareScratchZeroAllocs(t *testing.T) {
	f := fig8Cover()
	l, _ := xbar.NewTwoLevel(f)
	spec := SpecFor(l)
	spare := FabricSpec{InputPairs: spec.InputPairs + 2, Wires: 0, OutputPairs: spec.OutputPairs + 1}
	rng := rand.New(rand.NewSource(7))
	dm := defect.NewMap(l.Rows+1, spare.Cols())
	scratch := NewColumnScratch()
	run := func(seed int64) {
		rng.Seed(seed * 7717)
		if err := dm.Regenerate(defect.Params{POpen: 0.15, PClosed: 0.01}, rng); err != nil {
			t.Fatal(err)
		}
		if _, err := ColumnAwareScratch(l, dm, spare, ColumnOptions{Seed: seed}, scratch); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the scratch buffers across several defect maps (Munkres and
	// forbidden-matrix storage grow to the instance's worst case).
	for seed := int64(0); seed < 8; seed++ {
		run(seed)
	}
	seed := int64(8)
	if allocs := testing.AllocsPerRun(50, func() {
		run(seed)
		seed++
	}); allocs != 0 {
		t.Fatalf("steady-state ColumnAwareScratch allocates %.1f times per retry loop, want 0", allocs)
	}
}

func validateAssignment(a ColumnAssignment, spec FabricSpec, l *xbar.Layout) error {
	checkInjective := func(xs []int, limit int, what string) error {
		seen := map[int]bool{}
		for _, v := range xs {
			if v < 0 || v >= limit || seen[v] {
				return errInvalid(what, xs)
			}
			seen[v] = true
		}
		return nil
	}
	if err := checkInjective(a.InputPair, spec.InputPairs, "input pairs"); err != nil {
		return err
	}
	if err := checkInjective(a.Wire, spec.Wires, "wires"); err != nil {
		return err
	}
	return checkInjective(a.OutputPair, spec.OutputPairs, "output pairs")
}

type assignErr struct {
	what string
	xs   []int
}

func (e assignErr) Error() string { return e.what + " assignment invalid" }

func errInvalid(what string, xs []int) error { return assignErr{what, xs} }
