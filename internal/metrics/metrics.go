// Package metrics is a small dependency-free instrumentation registry in
// the flat, allocation-light style of the audit-log exemplar's timing
// structs: atomic counters, gauges, and fixed-bucket histograms, with and
// without labels, rendered on demand in the Prometheus text exposition
// format (version 0.0.4) by Registry.WriteTo.
//
// Instruments are cheap enough for hot paths — a counter increment is one
// atomic add, a histogram observation is two atomic adds plus a bucket
// search — and the registry takes no locks on the update path, so the
// engine's workers, the journal's committer, and the HTTP handlers all
// record into one registry without contending with each other or with
// scrapes.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must not be negative (counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed cumulative buckets. Bounds are
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. Observations also accumulate into a sum, so scrapes can derive the
// mean as well as quantile estimates.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus the +Inf bucket at the end
	sum    atomic.Uint64  // float64 bits, CAS-accumulated

	// Exemplars: the most recent traced observation per bucket, so an
	// operator can jump from a bad bucket to a concrete trace. Lazily
	// allocated on the first ObserveWithExemplar; plain Observe never
	// touches them.
	exmu sync.Mutex
	ex   []exemplar
}

// exemplar links one bucket to the trace id of a recent observation that
// landed in it (OpenMetrics exemplar semantics: last write wins).
type exemplar struct {
	traceID string
	value   float64
	tsNS    int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveWithExemplar records one value and, when traceID is non-empty,
// remembers it as the bucket's exemplar. The exposition layer shows
// exemplars only when asked (?exemplars=1), so default scrapes are
// byte-identical with or without them.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exmu.Lock()
	if h.ex == nil {
		h.ex = make([]exemplar, len(h.bounds)+1)
	}
	h.ex[i] = exemplar{traceID: traceID, value: v, tsNS: time.Now().UnixNano()}
	h.exmu.Unlock()
}

// exemplarAt snapshots the bucket's exemplar, if any.
func (h *Histogram) exemplarAt(i int) (exemplar, bool) {
	h.exmu.Lock()
	defer h.exmu.Unlock()
	if h.ex == nil || h.ex[i].traceID == "" {
		return exemplar{}, false
	}
	return h.ex[i], true
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket that holds it, the same estimate Prometheus's
// histogram_quantile computes. With no observations it reports 0; a
// quantile landing in the +Inf bucket reports the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen int64
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(seen+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if c == 0 {
				return bound
			}
			return lo + (bound-lo)*(rank-float64(seen))/float64(c)
		}
		seen += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// ExponentialBuckets returns n bounds starting at start, each factor times
// the previous — the usual latency bucket shape.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefLatencyBuckets spans 50µs to ~200s in factor-4 steps: wide enough for
// both the microsecond mapping kernels and multi-second Monte Carlo jobs.
var DefLatencyBuckets = ExponentialBuckets(50e-6, 4, 12)

// kind tags a family for the TYPE line.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one registered metric name: either a single unlabeled
// instrument or a set of labeled children.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histograms only

	labels []string // empty for unlabeled families

	mu       sync.Mutex
	children map[string]any // label-values key -> *Counter/*Gauge/*Histogram
	order    []string       // insertion order of children keys

	single any            // unlabeled instrument
	fn     func() float64 // gauge-func families
}

// Registry holds families and renders them. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate or invalid name:
// registration happens at construction time with literal names, so a
// collision is a programming error, not a runtime condition.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic("metrics: invalid metric name " + f.name)
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic("metrics: invalid label name " + l)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic("metrics: duplicate metric name " + f.name)
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, single: c})
	return c
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, single: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is pulled from fn at scrape
// time — for values that already live elsewhere (queue depth, cache size,
// journal seq) and shouldn't be double-booked.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, fn: fn})
}

// NewHistogram registers and returns an unlabeled histogram with the given
// ascending bucket upper bounds (nil means DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := &family{name: name, help: help, kind: kindHistogram, bounds: histBounds(bounds)}
	h := newHistogram(f.bounds)
	f.single = h
	r.register(f)
	return h
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: kindCounter, labels: labels,
		children: make(map[string]any)}
	r.register(f)
	return &CounterVec{f}
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: kindGauge, labels: labels,
		children: make(map[string]any)}
	r.register(f)
	return &GaugeVec{f}
}

// NewHistogramVec registers a labeled histogram family (nil bounds means
// DefLatencyBuckets).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	f := &family{name: name, help: help, kind: kindHistogram, labels: labels,
		bounds: histBounds(bounds), children: make(map[string]any)}
	r.register(f)
	return &HistogramVec{f}
}

// With returns the counter for the given label values (created on first
// use). Hot paths should capture the child once instead of resolving the
// labels per event when the values are fixed.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	bounds := v.f.bounds
	return v.f.child(values, func() any { return newHistogram(bounds) }).(*Histogram)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func histBounds(bounds []float64) []float64 {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not ascending")
		}
	}
	return bounds
}

func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// WriteTo renders every family in registration order (children sorted by
// label values, so output is deterministic) in the Prometheus text
// exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	return r.writeTo(w, false)
}

// WriteToWithExemplars renders like WriteTo plus an OpenMetrics-style
// exemplar annotation ("# {trace_id=...} value timestamp") after each
// histogram bucket that has one.
func (r *Registry) WriteToWithExemplars(w io.Writer) (int64, error) {
	return r.writeTo(w, true)
}

func (r *Registry) writeTo(w io.Writer, exemplars bool) (int64, error) {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	cw := &countingWriter{w: w}
	var buf []byte
	for _, f := range families {
		buf = f.render(buf[:0], exemplars)
		if _, err := cw.Write(buf); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func (f *family) render(buf []byte, exemplars bool) []byte {
	if f.help != "" {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, '\n')
	}
	buf = append(buf, "# TYPE "...)
	buf = append(buf, f.name...)
	buf = append(buf, ' ')
	buf = append(buf, f.kind...)
	buf = append(buf, '\n')
	if f.fn != nil {
		return appendSample(buf, f.name, "", f.fn())
	}
	if f.single != nil {
		return f.renderChild(buf, "", f.single, exemplars)
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	for _, i := range idx {
		buf = f.renderChild(buf, labelString(f.labels, strings.Split(keys[i], "\x00"), ""), children[i], exemplars)
	}
	return buf
}

func (f *family) renderChild(buf []byte, labels string, c any, exemplars bool) []byte {
	switch v := c.(type) {
	case *Counter:
		return appendSample(buf, f.name, labels, float64(v.Value()))
	case *Gauge:
		return appendSample(buf, f.name, labels, float64(v.Value()))
	case *Histogram:
		var cum int64
		for i, bound := range f.bounds {
			cum += v.counts[i].Load()
			buf = appendSample(buf, f.name+"_bucket", mergeLE(labels, formatFloat(bound)), float64(cum))
			if exemplars {
				buf = appendExemplar(buf, v, i)
			}
		}
		cum += v.counts[len(f.bounds)].Load()
		buf = appendSample(buf, f.name+"_bucket", mergeLE(labels, "+Inf"), float64(cum))
		if exemplars {
			buf = appendExemplar(buf, v, len(f.bounds))
		}
		buf = appendSample(buf, f.name+"_sum", labels, v.Sum())
		buf = appendSample(buf, f.name+"_count", labels, float64(cum))
		return buf
	}
	return buf
}

// labelString renders {a="x",b="y"} (plus an optional extra pair) or ""
// when there are no labels.
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLE splices an le label into an existing (possibly empty) label set.
func mergeLE(labels, le string) string {
	pair := `le="` + le + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func appendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = append(buf, formatFloat(v)...)
	return append(buf, '\n')
}

// appendExemplar rewrites the just-appended bucket line to carry its
// exemplar, OpenMetrics style: "... 5 # {trace_id=\"abc\"} 0.003 <ts>\n".
func appendExemplar(buf []byte, h *Histogram, i int) []byte {
	e, ok := h.exemplarAt(i)
	if !ok {
		return buf
	}
	buf = buf[:len(buf)-1] // drop the trailing newline of the bucket line
	buf = append(buf, ` # {trace_id="`...)
	buf = append(buf, e.traceID...)
	buf = append(buf, `"} `...)
	buf = append(buf, formatFloat(e.value)...)
	buf = append(buf, ' ')
	buf = append(buf, strconv.FormatFloat(float64(e.tsNS)/1e9, 'f', 3, 64)...)
	return append(buf, '\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a Prometheus scrape target. Appending
// ?exemplars=1 adds OpenMetrics-style exemplar annotations to histogram
// bucket lines; the default exposition is unchanged.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := r.writeTo(w, req.URL.Query().Get("exemplars") == "1"); err != nil {
			// Too late for a status change; the client sees a short body.
			return
		}
	})
}
