package metrics

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text rendering of one
// registry holding every instrument shape: an external scraper parses this
// byte-for-byte, so format drift is a wire-compatibility break, not a
// cosmetic one.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Total operations.")
	c.Add(3)
	g := r.NewGauge("test_depth", "Current depth.")
	g.Set(-2)
	r.NewGaugeFunc("test_pulled", "Pulled at scrape.", func() float64 { return 7.5 })
	cv := r.NewCounterVec("test_rejects_total", "Rejects by reason.", "reason")
	cv.With("overloaded").Add(2)
	cv.With("quota").Inc()
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_ops_total Total operations.
# TYPE test_ops_total counter
test_ops_total 3
# HELP test_depth Current depth.
# TYPE test_depth gauge
test_depth -2
# HELP test_pulled Pulled at scrape.
# TYPE test_pulled gauge
test_pulled 7.5
# HELP test_rejects_total Rejects by reason.
# TYPE test_rejects_total counter
test_rejects_total{reason="overloaded"} 2
test_rejects_total{reason="quota"} 1
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 6.05
test_latency_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramBuckets checks boundary placement: le buckets are inclusive
// upper bounds, values past the last bound land in +Inf only.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5, 100} {
		h.Observe(v)
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	// Non-cumulative: (<=1): 0.5, 1 -> 2; (<=2): 1.0000001, 2 -> 2;
	// (<=4): 4 -> 1; +Inf: 4.5, 100 -> 2.
	want := []int64{2, 2, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.0000001+2+4+4.5+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{10, 20, 40})
	if h.Quantile(0.99) != 0 {
		t.Errorf("empty quantile = %v, want 0", h.Quantile(0.99))
	}
	// 100 observations uniform in (0,10]: p50 interpolates to ~5 within
	// the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	// Push 100 more into (10,20]; p99 now lands in the second bucket.
	for i := 0; i < 100; i++ {
		h.Observe(15)
	}
	if got := h.Quantile(0.99); got <= 10 || got > 20 {
		t.Errorf("p99 = %v, want within (10,20]", got)
	}
	// A quantile past every finite bound reports the last finite bound.
	h.Observe(1000)
	if got := h.Quantile(1); got != 40 {
		t.Errorf("p100 = %v, want 40 (last finite bound)", got)
	}
}

// TestConcurrentScrape hammers every instrument kind from parallel
// goroutines while scraping; run under -race this is the data-race proof
// for the lock-free update paths.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	cv := r.NewCounterVec("cv_total", "", "k")
	hv := r.NewHistogramVec("hv_seconds", "", nil, "k")
	r.NewGaugeFunc("gf", "", func() float64 { return float64(c.Value()) })

	const writers = 8
	const perWriter = 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []string{"a", "b", "c"}[w%3]
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				cv.With(key).Inc()
				hv.With(key).Observe(float64(i) * 1e-5)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if _, err := r.WriteTo(&sb); err != nil {
				t.Error(err)
				return
			}
			if !strings.Contains(sb.String(), "c_total") {
				t.Error("scrape missing c_total")
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != writers*perWriter {
		t.Errorf("counter = %d, want %d", c.Value(), writers*perWriter)
	}
	total := int64(0)
	for _, k := range []string{"a", "b", "c"} {
		total += cv.With(k).Value()
	}
	if total != writers*perWriter {
		t.Errorf("vec total = %d, want %d", total, writers*perWriter)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "X.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 1") {
		t.Errorf("body = %q", buf[:n])
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	for name, fn := range map[string]func(){
		"duplicate":   func() { r.NewCounter("dup_total", "") },
		"bad name":    func() { r.NewCounter("9bad", "") },
		"bad label":   func() { r.NewCounterVec("ok_total", "", "bad-label") },
		"bad bounds":  func() { r.NewHistogram("h_rev", "", []float64{2, 1}) },
		"label arity": func() { r.NewCounterVec("arity_total", "", "a", "b").With("only-one") },
		"empty name":  func() { r.NewGauge("", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("xbar_ex_seconds", "exemplar test", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.ObserveWithExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveWithExemplar(0.5, "") // empty trace id: counted, no exemplar

	// Default exposition is byte-identical to a registry without exemplars.
	var plain strings.Builder
	if _, err := r.WriteTo(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "trace_id") {
		t.Fatalf("default exposition leaks exemplars:\n%s", plain.String())
	}

	var with strings.Builder
	if _, err := r.WriteToWithExemplars(&with); err != nil {
		t.Fatal(err)
	}
	out := with.String()
	if !strings.Contains(out, `xbar_ex_seconds_bucket{le="0.1"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05 `) {
		t.Fatalf("exemplar annotation missing or malformed:\n%s", out)
	}
	if strings.Count(out, "trace_id") != 1 {
		t.Fatalf("want exactly one exemplar, got:\n%s", out)
	}

	// The handler gates exemplars on ?exemplars=1.
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for _, tc := range []struct {
		q    string
		want bool
	}{{"", false}, {"?exemplars=1", true}} {
		resp, err := http.Get(srv.URL + tc.q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if got := strings.Contains(string(body), "trace_id"); got != tc.want {
			t.Errorf("GET %q exemplars=%v, want %v", tc.q, got, tc.want)
		}
	}
}
