package engine

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCachePersistRoundTrip proves the warm-start contract: a restarted
// engine pointed at the same cache file answers a previously computed
// batch entirely from cache — CacheHits equal to the batch size and
// bit-identical results, with zero recompute.
func TestCachePersistRoundTrip(t *testing.T) {
	file := filepath.Join(t.TempDir(), "cache.json")
	specs := []JobSpec{mcSpec(1), mcSpec(2), fig8Spec(SynthTwoLevel)}

	e1 := New(Options{Workers: 2, CacheFile: file, CachePersistInterval: -1})
	first, err := e1.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range first {
		if r.Err != "" {
			t.Fatalf("job %d: %s", i, r.Err)
		}
	}
	e1.Close() // writes the final snapshot

	e2 := New(Options{Workers: 2, CacheFile: file, CachePersistInterval: -1})
	defer e2.Close()
	if got := e2.Stats().CacheEntries; got != len(specs) {
		t.Fatalf("reloaded cache holds %d entries, want %d", got, len(specs))
	}
	second, err := e2.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if r.Err != "" || !r.CacheHit {
			t.Fatalf("job %d must be served from the reloaded cache: %+v", i, r)
		}
		// Bit-identical payloads: Psucc and timing stats survive the disk
		// round trip exactly.
		if r.Psucc != first[i].Psucc || r.Samples != first[i].Samples ||
			r.MeanTime != first[i].MeanTime || r.Area != first[i].Area {
			t.Fatalf("job %d drifted across restart:\n  before %+v\n  after  %+v", i, first[i], r)
		}
	}
	if hits := e2.Stats().CacheHits; hits != int64(len(specs)) {
		t.Fatalf("CacheHits = %d, want %d (whole batch from cache)", hits, len(specs))
	}
}

// TestCachePersistInterval checks the background snapshot loop writes the
// file while the engine is still running (i.e. without Close).
func TestCachePersistInterval(t *testing.T) {
	file := filepath.Join(t.TempDir(), "cache.json")
	e := New(Options{Workers: 1, CacheFile: file, CachePersistInterval: 10 * time.Millisecond})
	defer e.Close()
	if _, err := e.Run(context.Background(), []JobSpec{fig8Spec(SynthTwoLevel)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, err := os.ReadFile(file)
		if err == nil {
			var snap cacheSnapshotFile
			if json.Unmarshal(data, &snap) == nil && len(snap.Entries) > 0 {
				return // background loop persisted a live snapshot
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("background persist loop never wrote a usable snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCacheFileCorruptStartsCold: a damaged snapshot must never keep the
// engine from starting; it runs cold and overwrites the file at Close.
func TestCacheFileCorruptStartsCold(t *testing.T) {
	file := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(file, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 1, CacheFile: file, CachePersistInterval: -1})
	r, err := e.Run(context.Background(), []JobSpec{fig8Spec(SynthTwoLevel)})
	if err != nil || r[0].Err != "" {
		t.Fatalf("engine with corrupt cache file must still run: %v %+v", err, r)
	}
	e.Close()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var snap cacheSnapshotFile
	if err := json.Unmarshal(data, &snap); err != nil || len(snap.Entries) == 0 {
		t.Fatalf("close must replace the corrupt file with a valid snapshot: %v", err)
	}
}
