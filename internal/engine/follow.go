package engine

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// DefaultFollowPollInterval paces the follower's retry/backoff when the
// peer is unreachable or answers with no new records and long-polling is
// unavailable; zero Options.FollowPollInterval means this.
const DefaultFollowPollInterval = time.Second

// followWait is the long-poll window the follower asks the leader to hold
// a tail request open for; convergence latency is one commit, not one
// poll interval.
const followWait = 25 * time.Second

// followBatchLimit caps records pulled per tail request.
const followBatchLimit = 1024

// startFollower begins continuously mirroring the peer's journal into the
// local result cache (and local journal, when configured). The follower
// pulls GET /v1/journal/tail from its last applied sequence. A restart
// re-pulls the peer's history from cursor zero (the peer's sequence
// numbers are not ours), but records the local journal already restored
// are recognized in applyReplicated and skipped, so the re-pull costs
// network only — no duplicate fsyncs, no local journal growth.
func (e *Engine) startFollower() {
	ctx, cancel := context.WithCancel(context.Background())
	e.followCancel = cancel
	e.followWG.Add(1)
	go e.followLoop(ctx)
}

func (e *Engine) followLoop(ctx context.Context) {
	defer e.followWG.Done()
	interval := e.opt.FollowPollInterval
	if interval <= 0 {
		interval = DefaultFollowPollInterval
	}
	client := &http.Client{Timeout: followWait + 10*time.Second}
	var cursor uint64
	// A local journal already holds everything mirrored before the last
	// restart; the peer's sequence numbers are not ours, though, so the
	// cursor always starts at zero and convergence relies on idempotent
	// replays (identical spec hash -> identical result).
	errLogged := false
	for {
		if ctx.Err() != nil {
			return
		}
		resp, err := e.pullTail(ctx, client, cursor)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			e.met.replPullErrs.Inc()
			if !errLogged {
				log.Printf("engine: follower: %v (will keep retrying every %s)", err, interval)
				errLogged = true
			}
			select {
			case <-time.After(interval):
			case <-ctx.Done():
				return
			}
			continue
		}
		if errLogged {
			log.Printf("engine: follower: peer reachable again")
			errLogged = false
		}
		if resp.LastSeq < cursor {
			// The peer's sequence space regressed — its journal was
			// recreated (lost disk, fresh volume). Without a reset the
			// cursor points past everything the new journal will ever
			// hold and replication silently stops; re-pulling from zero
			// is safe because applyReplicated skips records the local
			// cache already holds verbatim.
			log.Printf("engine: follower: peer journal regressed (last_seq %d < cursor %d), re-pulling from the start",
				resp.LastSeq, cursor)
			cursor = 0
			continue
		}
		// Apply the window keeping only the newest record per key (the
		// same winner compaction would pick), all concurrently: a lone
		// sequential caller would hand the local journal's group-commit
		// batcher one record at a time — one fsync per record — while a
		// concurrent burst lets one fsync cover the whole window.
		latest := make(map[string]JobResult, len(resp.Records))
		for _, rec := range resp.Records {
			key, derr := hex.DecodeString(rec.Key)
			if derr != nil || len(key) == 0 {
				log.Printf("engine: follower: bad record key %q (skipped)", rec.Key)
			} else {
				latest[string(key)] = rec.Result
			}
			cursor = rec.Seq
		}
		var wg sync.WaitGroup
		for key, r := range latest {
			wg.Add(1)
			go func(key string, r JobResult) {
				defer wg.Done()
				e.applyReplicated([]byte(key), r)
			}(key, r)
		}
		wg.Wait()
		// MaxSeq covers records the leader scanned but skipped as
		// undecodable; advancing past them keeps the follower converging
		// instead of re-pulling the same window forever. An empty response
		// (long poll timed out, MaxSeq == cursor) just loops back into the
		// next wait.
		if resp.MaxSeq > cursor {
			cursor = resp.MaxSeq
		}
		e.met.replCursor.Set(int64(cursor))
		e.met.replLeader.Set(int64(resp.LastSeq))
		e.met.replLag.Set(int64(resp.LastSeq) - int64(cursor))
	}
}

// pullTail performs one long-polling tail request against the peer.
func (e *Engine) pullTail(ctx context.Context, client *http.Client, cursor uint64) (tailResponse, error) {
	u := fmt.Sprintf("%s/v1/journal/tail?after=%d&limit=%d&wait=%s",
		e.opt.FollowPeer, cursor, followBatchLimit, url.QueryEscape(followWait.String()))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return tailResponse{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return tailResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return tailResponse{}, fmt.Errorf("peer tail: HTTP %d (is the peer running with -journal-dir?)", resp.StatusCode)
	}
	var tr tailResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return tailResponse{}, fmt.Errorf("decoding peer tail: %w", err)
	}
	return tr, nil
}

// stopFollower cancels the follower's in-flight long poll and waits for
// the loop to exit.
func (e *Engine) stopFollower() {
	if e.followCancel == nil {
		return
	}
	e.followCancel()
	e.followWG.Wait()
}
