package engine

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"time"

	"repro/internal/cluster"
	"repro/internal/journal"
)

// DefaultFollowPollInterval is the base of the follower's retry backoff
// (and its pacing when the peer answers with no new records and
// long-polling is unavailable); zero Options.FollowPollInterval means this.
const DefaultFollowPollInterval = time.Second

// followBackoffCap bounds the follower's retry backoff against an
// unreachable peer: during a failover the loop must notice the new leader
// within a lease or two, so the backoff never grows past this no matter
// how long the old leader was down.
const followBackoffCap = 30 * time.Second

// followWait is the long-poll window the follower asks the leader to hold
// a tail request open for; convergence latency is one commit, not one
// poll interval.
const followWait = 25 * time.Second

// followBatchLimit caps records pulled per tail request.
const followBatchLimit = 1024

// startFollower begins continuously mirroring the current leader's journal
// into the local result cache (and local journal, when configured). The
// follower pulls GET /v1/journal/tail from its last applied sequence. A
// restart re-pulls the peer's history from cursor zero (the peer's
// sequence numbers are not ours), but records the local journal already
// restored are recognized in applyWindow and skipped, so the re-pull costs
// network only — no duplicate fsyncs, no local journal growth.
func (e *Engine) startFollower() {
	if e.followCancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	e.followCancel = cancel
	e.followWG.Add(1)
	go e.followLoop(ctx)
}

func (e *Engine) followLoop(ctx context.Context) {
	defer e.followWG.Done()
	interval := e.opt.FollowPollInterval
	if interval <= 0 {
		interval = DefaultFollowPollInterval
	}
	// Pull failures back off exponentially up to followBackoffCap, with
	// jitter so a fleet of followers orphaned by the same crash doesn't
	// hammer (and re-synchronize on) the next leader in lockstep.
	policy := cluster.Backoff{Base: interval, Cap: followBackoffCap}
	client := &http.Client{Timeout: followWait + 10*time.Second}
	var cursor uint64
	// A local journal already holds everything mirrored before the last
	// restart; the leader's sequence numbers are not ours, though, so the
	// cursor always starts at zero and convergence relies on idempotent
	// replays (identical spec hash -> identical result). The cursor is also
	// per-leader: when a failover moves the target, the new leader's
	// sequence space starts over.
	target := ""
	attempt := 0
	errLogged := false
	backoff := func() {
		d := policy.Delay(attempt, nil)
		attempt++
		e.met.replBackoff.Set(int64(d / time.Second))
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
	}
	for {
		if ctx.Err() != nil {
			return
		}
		if t := e.followTarget(); t != target {
			if target != "" {
				slog.Info("follower re-aiming; cursor resets", "component", "follower", "from", target, "to", t)
			}
			target, cursor = t, 0
		}
		if target == "" {
			// Clustered and currently leading (or no leader known yet):
			// nothing to mirror; check again after a pause.
			backoff()
			continue
		}
		resp, err := e.pullTail(ctx, client, target, cursor)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			e.met.replPullErrs.Inc()
			if !errLogged {
				slog.Warn("follower pull failed; backing off", "component", "follower", "peer", target, "cursor", cursor, "err", err, "backoff_base", interval, "backoff_cap", followBackoffCap)
				errLogged = true
			}
			backoff()
			continue
		}
		attempt = 0
		e.met.replBackoff.Set(0)
		if errLogged {
			slog.Info("follower peer reachable again", "component", "follower", "peer", target, "cursor", cursor)
			errLogged = false
		}
		if e.cluster != nil {
			e.cluster.noteContact()
		}
		if resp.LastSeq < cursor {
			// The peer's sequence space regressed — its journal was
			// recreated (lost disk, fresh volume). Without a reset the
			// cursor points past everything the new journal will ever
			// hold and replication silently stops; re-pulling from zero
			// is safe because applyWindow skips records the local
			// cache already holds verbatim.
			slog.Warn("follower peer journal regressed; re-pulling from the start", "component", "follower", "peer", target, "last_seq", resp.LastSeq, "cursor", cursor)
			cursor = 0
			continue
		}
		cursor = e.applyWindow(resp.Records, cursor)
		// MaxSeq covers records the leader scanned but skipped as
		// undecodable; advancing past them keeps the follower converging
		// instead of re-pulling the same window forever. An empty response
		// (long poll timed out, MaxSeq == cursor) just loops back into the
		// next wait.
		if resp.MaxSeq > cursor {
			cursor = resp.MaxSeq
		}
		e.stReplCursor.Store(cursor)
		e.met.replCursor.Set(int64(cursor))
		e.met.replLeader.Set(int64(resp.LastSeq))
		e.met.replLag.Set(int64(resp.LastSeq) - int64(cursor))
	}
}

// applyWindow installs one pulled tail window: lease meta-records feed the
// election state, job records land in the local journal and cache keeping
// only the newest record per key (the same winner compaction would pick).
// The whole window's journal writes go through one AppendBatch — one group
// commit, one fsync — and, matching runTask's durable-before-published
// order, every cache insert happens after that commit returns. Returns the
// advanced cursor.
func (e *Engine) applyWindow(recs []TailRecord, cursor uint64) uint64 {
	latest := make(map[string]JobResult, len(recs))
	for _, rec := range recs {
		key, derr := hex.DecodeString(rec.Key)
		switch {
		case derr != nil || len(key) == 0:
			slog.Warn("follower skipping bad record key", "component", "follower", "key", rec.Key, "seq", rec.Seq)
		case journal.IsMetaKey(key):
			e.applyLease(key, rec.Meta)
		default:
			latest[string(key)] = rec.Result
		}
		cursor = rec.Seq
	}
	type insert struct {
		key string
		r   JobResult
	}
	kvs := make([]journal.KV, 0, len(latest))
	puts := make([]insert, 0, len(latest))
	for key, r := range latest {
		r = canonicalResult(r)
		// A record whose result is already cached verbatim is skipped
		// entirely: the cursor restarts at zero on every boot, so without
		// this check each restart would re-fsync and re-journal the
		// leader's whole history.
		if cur, ok := e.cache.Get(key); ok && resultsEqual(cur, r) {
			e.met.replSkipped.Inc()
			continue
		}
		if e.journal != nil {
			data, jerr := json.Marshal(r)
			if jerr != nil {
				slog.Error("follower failed to encode journal record", "component", "follower", "job_id", r.ID, "err", jerr)
				continue
			}
			kvs = append(kvs, journal.KV{Key: []byte(key), Value: data})
		}
		puts = append(puts, insert{key, r})
	}
	if len(kvs) > 0 {
		if _, err := e.journal.AppendBatch(kvs); err != nil {
			// Durability lost, correctness kept: the in-memory results still
			// serve (same degradation as journalAppend on the leader path).
			slog.Error("follower journal batch append failed; serving from memory only", "component", "follower", "records", len(kvs), "err", err)
		}
	}
	for _, p := range puts {
		e.cache.Put(p.key, p.r)
		e.stReplicated.Add(1)
		e.met.replApplied.Inc()
	}
	return cursor
}

// applyLease handles one replicated lease meta-record: persist it locally
// (so a restart recovers the fleet's leadership view from its own disk)
// and fold the claim into the election state.
func (e *Engine) applyLease(key []byte, raw json.RawMessage) {
	if len(raw) == 0 {
		return
	}
	var claim leaseClaim
	if err := json.Unmarshal(raw, &claim); err != nil {
		slog.Warn("follower skipping bad lease record", "component", "follower", "err", err)
		return
	}
	if e.journal != nil {
		if _, err := e.journal.Append(key, raw); err != nil {
			slog.Error("follower failed to journal lease record", "component", "follower", "epoch", claim.Epoch, "err", err)
		}
	}
	if e.cluster != nil {
		e.cluster.observeLease(claim)
	}
}

// pullTail performs one long-polling tail request against the peer.
func (e *Engine) pullTail(ctx context.Context, client *http.Client, peer string, cursor uint64) (TailResponse, error) {
	u := fmt.Sprintf("%s/v1/journal/tail?after=%d&limit=%d&wait=%s",
		peer, cursor, followBatchLimit, url.QueryEscape(followWait.String()))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return TailResponse{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return TailResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return TailResponse{}, fmt.Errorf("peer tail: HTTP %d (is the peer running with -journal-dir?)", resp.StatusCode)
	}
	var tr TailResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return TailResponse{}, fmt.Errorf("decoding peer tail: %w", err)
	}
	return tr, nil
}

// stopFollower cancels the follower's in-flight long poll and waits for
// the loop to exit; idempotent, so a failover promotion and Close can both
// call it.
func (e *Engine) stopFollower() {
	if e.followCancel == nil {
		return
	}
	e.followCancel()
	e.followWG.Wait()
	e.followCancel = nil
}
