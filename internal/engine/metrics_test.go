package engine

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrapeMetrics fetches GET /metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the sample value of one exposition line by its full
// series name (including any label set), failing if absent.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s has unparsable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, body)
	return 0
}

// TestMetricsEndpoint drives a journaled engine through cache misses, cache
// hits, and overload rejects, then checks GET /metrics exposes every metric
// family the observability contract promises — engine, journal, HTTP,
// quota, and replication — with the counters agreeing with the traffic.
func TestMetricsEndpoint(t *testing.T) {
	e := New(Options{Workers: 2, JournalDir: t.TempDir(), JournalNoSync: true})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	for i := 0; i < 2; i++ { // second round hits the cache
		resp := postJobsAs(t, srv.URL, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		waitForStats(t, e, func(s Stats) bool { return s.Completed == int64(i+1) })
	}

	body := scrapeMetrics(t, srv.URL)
	for _, family := range []string{
		// engine
		"xbar_engine_queue_wait_seconds", "xbar_engine_job_seconds",
		"xbar_engine_jobs_total", "xbar_engine_cache_hits_total",
		"xbar_engine_cache_misses_total", "xbar_engine_dedup_total",
		"xbar_engine_rejects_total", "xbar_engine_workers",
		"xbar_engine_queue_depth", "xbar_engine_cache_entries",
		// journal
		"xbar_journal_commit_seconds", "xbar_journal_commit_records",
		"xbar_journal_appends_total", "xbar_journal_last_seq",
		"xbar_journal_records", "xbar_journal_segments",
		"xbar_journal_tail_reads_total", "xbar_journal_compactions_total",
		// http + quota
		"xbar_http_request_seconds", "xbar_http_requests_total",
		"xbar_http_sse_subscribers", "xbar_quota_rejects_total",
		// replication
		"xbar_replication_applied_total", "xbar_replication_skipped_total",
		"xbar_replication_pull_errors_total", "xbar_replication_lag",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from /metrics", family)
		}
	}

	if v := metricValue(t, body, "xbar_engine_cache_misses_total"); v != 1 {
		t.Errorf("cache_misses_total = %v, want 1", v)
	}
	if v := metricValue(t, body, "xbar_engine_cache_hits_total"); v != 1 {
		t.Errorf("cache_hits_total = %v, want 1", v)
	}
	if v := metricValue(t, body, `xbar_engine_jobs_total{kind="synthesize-two-level",outcome="ok"}`); v != 2 {
		t.Errorf("jobs_total{synthesize-two-level,ok} = %v, want 2", v)
	}
	// One kernel ran; its latency histogram must hold exactly one sample
	// and the +Inf bucket must be cumulative over all of them.
	if v := metricValue(t, body, `xbar_engine_job_seconds_count{kind="synthesize-two-level"}`); v != 1 {
		t.Errorf("job_seconds_count = %v, want 1", v)
	}
	if v := metricValue(t, body, `xbar_engine_job_seconds_bucket{kind="synthesize-two-level",le="+Inf"}`); v != 1 {
		t.Errorf("job_seconds_bucket{+Inf} = %v, want 1", v)
	}
	// Both submissions and this earlier scrape-free traffic went through
	// instrumented routes.
	if v := metricValue(t, body, `xbar_http_requests_total{route="/v1/jobs",code="202"}`); v != 2 {
		t.Errorf(`http_requests_total{/v1/jobs,202} = %v, want 2`, v)
	}
	// The journal committed one record (the cache hit appended nothing).
	if v := metricValue(t, body, "xbar_journal_last_seq"); v != 1 {
		t.Errorf("journal_last_seq = %v, want 1", v)
	}
	if v := metricValue(t, body, `xbar_journal_appends_total{result="ok"}`); v != 1 {
		t.Errorf("journal_appends_total{ok} = %v, want 1", v)
	}
}

// TestMetricsOverloadRejects checks admission-control rejections reach both
// the reject counter family and the 429 status counter.
func TestMetricsOverloadRejects(t *testing.T) {
	e := New(Options{Workers: 1, MaxQueuedJobs: 1})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	var rejected int
	for i := 0; i < 40 && rejected == 0; i++ {
		resp := postJobsAs(t, srv.URL, "")
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected++
		}
	}
	if rejected == 0 {
		t.Skip("queue never saturated on this machine")
	}
	body := scrapeMetrics(t, srv.URL)
	if v := metricValue(t, body, `xbar_engine_rejects_total{reason="overloaded"}`); v < 1 {
		t.Errorf(`rejects_total{overloaded} = %v, want >= 1`, v)
	}
	if v := metricValue(t, body, `xbar_http_requests_total{route="/v1/jobs",code="429"}`); v < 1 {
		t.Errorf(`http_requests_total{/v1/jobs,429} = %v, want >= 1`, v)
	}
}

// TestQuotaRejectMetrics is the regression test for the per-client quota
// counters: over-quota submissions must book into Stats.QuotaRejected and
// into xbar_quota_rejects_total under the right bucket-namespace label
// (hdr for X-Client-ID traffic, ip for anonymous), and must not count as
// engine admission rejects.
func TestQuotaRejectMetrics(t *testing.T) {
	e := New(Options{Workers: 1, ClientRPS: 0.01, ClientBurst: 2})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	countRejects := func(clientID string, n int) int {
		t.Helper()
		rejects := 0
		for i := 0; i < n; i++ {
			if resp := postJobsAs(t, srv.URL, clientID); resp.StatusCode == http.StatusTooManyRequests {
				rejects++
			}
		}
		return rejects
	}
	hdrRejects := countRejects("client-a", 4) // burst 2 -> 2 rejects
	ipRejects := countRejects("", 3)          // anonymous bucket -> 1 reject
	if hdrRejects != 2 || ipRejects != 1 {
		t.Fatalf("rejects = %d hdr, %d ip; want 2 and 1", hdrRejects, ipRejects)
	}

	if got := e.Stats().QuotaRejected; got != 3 {
		t.Errorf("Stats.QuotaRejected = %d, want 3", got)
	}
	body := scrapeMetrics(t, srv.URL)
	if v := metricValue(t, body, `xbar_quota_rejects_total{key="hdr"}`); v != 2 {
		t.Errorf(`quota_rejects_total{hdr} = %v, want 2`, v)
	}
	if v := metricValue(t, body, `xbar_quota_rejects_total{key="ip"}`); v != 1 {
		t.Errorf(`quota_rejects_total{ip} = %v, want 1`, v)
	}
	// Quota rejections happen before admission: the engine-level reject
	// counter must not have moved.
	if m := regexp.MustCompile(`xbar_engine_rejects_total\{[^}]*\} [1-9]`).FindString(body); m != "" {
		t.Errorf("engine admission rejects booked for quota rejections: %s", m)
	}
}

// waitForStats polls the engine's stats until cond holds.
func waitForStats(t *testing.T, e *Engine, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond(e.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
