package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSE consumes a text/event-stream body until a "done" event (or EOF),
// returning every event in arrival order.
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				events = append(events, cur)
				if cur.event == "done" {
					return events
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events
}

// checkBatchStream asserts an SSE stream delivers every job of the batch
// exactly once, then done.
func checkBatchStream(t *testing.T, url string, sub SubmitResponse) {
	t.Helper()
	resp, err := http.Get(url + "/v1/batches/" + sub.BatchID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}
	events := readSSE(t, bufio.NewScanner(resp.Body))
	seen := make(map[string]int)
	var done int
	for _, ev := range events {
		switch ev.event {
		case "result":
			var r JobResult
			if err := json.Unmarshal([]byte(ev.data), &r); err != nil {
				t.Fatalf("bad result payload %q: %v", ev.data, err)
			}
			if r.ID != ev.id {
				t.Fatalf("event id %q carries result for %q", ev.id, r.ID)
			}
			if r.Err != "" {
				t.Fatalf("job %s failed: %s", r.ID, r.Err)
			}
			seen[r.ID]++
		case "done":
			done++
		default:
			t.Fatalf("unexpected event %q", ev.event)
		}
	}
	if done != 1 {
		t.Fatalf("saw %d done events, want exactly 1", done)
	}
	if len(seen) != len(sub.JobIDs) {
		t.Fatalf("streamed %d distinct jobs, want %d (%v)", len(seen), len(sub.JobIDs), seen)
	}
	for _, id := range sub.JobIDs {
		if seen[id] != 1 {
			t.Fatalf("job %s streamed %d times, want exactly once", id, seen[id])
		}
	}
}

// TestHTTPBatchEventStream submits a batch and asserts the SSE endpoint
// delivers every job result exactly once — both for a subscriber that
// connects while the batch is running and for a late subscriber that
// connects after completion (full replay).
func TestHTTPBatchEventStream(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: -1})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	body, _ := json.Marshal(SubmitRequest{Jobs: []JobSpec{
		mcSpec(11), mcSpec(12), mcSpec(13), fig8Spec(SynthTwoLevel),
	}})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.BatchID == "" || len(sub.JobIDs) != 4 {
		t.Fatalf("submit response = %+v", sub)
	}

	// Live subscriber: connects right after submission, while jobs run.
	checkBatchStream(t, srv.URL, sub)
	// Late subscriber: the batch is now done; the stream must replay every
	// result exactly once and close with done again.
	checkBatchStream(t, srv.URL, sub)

	r, err := http.Get(srv.URL + "/v1/batches/b99999999/events")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown batch status = %d, want 404", r.StatusCode)
	}
}

// TestStopStreamsUnblocksSubscribers: a live SSE subscriber to an
// unfinished batch must end promptly when StopStreams fires (the graceful
// shutdown path), not wait the batch out.
func TestStopStreamsUnblocksSubscribers(t *testing.T) {
	e := New(Options{Workers: 1, CacheSize: -1})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	slow := mcSpec(31)
	slow.Samples = 500_000
	slow.TimeoutMS = 3000 // bound the job so Close doesn't wait long
	body, _ := json.Marshal(SubmitRequest{Jobs: []JobSpec{slow}})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	streamDone := make(chan error, 1)
	go func() {
		r, err := http.Get(srv.URL + "/v1/batches/" + sub.BatchID + "/events")
		if err != nil {
			streamDone <- err
			return
		}
		_, err = io.Copy(io.Discard, r.Body) // blocks until the stream ends
		r.Body.Close()
		streamDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the subscriber connect and block
	e.StopStreams()
	select {
	case <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("StopStreams did not unblock the live subscriber")
	}

	// The signal re-arms: a subscriber connecting after StopStreams (here
	// to a fresh batch) streams to completion as usual.
	quick, _ := json.Marshal(SubmitRequest{Jobs: []JobSpec{fig8Spec(SynthTwoLevel)}})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(quick))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	checkBatchStream(t, srv.URL, sub)
}

// TestSSEResumeWithLastEventID: a reconnecting client that presents the
// standard Last-Event-ID header must receive only the results it has not
// seen yet, keeping delivery exactly-once across reconnects.
func TestSSEResumeWithLastEventID(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: -1})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	body, _ := json.Marshal(SubmitRequest{Jobs: []JobSpec{mcSpec(41), mcSpec(42), mcSpec(43)}})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// First connection: read the full stream to learn the delivery order.
	r1, err := http.Get(srv.URL + "/v1/batches/" + sub.BatchID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	full := readSSE(t, bufio.NewScanner(r1.Body))
	r1.Body.Close()
	if len(full) != 4 { // 3 results + done
		t.Fatalf("full stream = %d events, want 4", len(full))
	}

	// Reconnect claiming the first result was already processed.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/batches/"+sub.BatchID+"/events", nil)
	req.Header.Set("Last-Event-ID", full[0].id)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resumed := readSSE(t, bufio.NewScanner(r2.Body))
	r2.Body.Close()
	if len(resumed) != 3 { // remaining 2 results + done
		t.Fatalf("resumed stream = %+v, want 2 results + done", resumed)
	}
	for _, ev := range resumed[:2] {
		if ev.id == full[0].id {
			t.Fatalf("result %s delivered twice across reconnect", ev.id)
		}
	}

	// An unknown Last-Event-ID replays from the start.
	req.Header.Set("Last-Event-ID", "j99999999")
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if all := readSSE(t, bufio.NewScanner(r3.Body)); len(all) != 4 {
		t.Fatalf("unknown-id stream = %d events, want full replay of 4", len(all))
	}
	r3.Body.Close()
}

// TestHTTPAdmissionControl drives the 429 path end to end: with one
// unfinished job at the queue limit, a second submission is rejected with
// 429 + Retry-After; once the accepted batch completes, submissions are
// admitted (and complete) again.
func TestHTTPAdmissionControl(t *testing.T) {
	e := New(Options{Workers: 1, MaxQueuedJobs: 1, CacheSize: -1})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	slow := mcSpec(21)
	slow.Samples = 200_000 // long enough to still be running at the next POST
	slowBody, _ := json.Marshal(SubmitRequest{Jobs: []JobSpec{slow}})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(slowBody))
	if err != nil {
		t.Fatal(err)
	}
	var first SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp.StatusCode)
	}

	// A batch bigger than the queue limit is permanently unservable: 413
	// with no Retry-After, so clients split instead of retrying forever.
	bigBatchBody, _ := json.Marshal(SubmitRequest{Jobs: []JobSpec{mcSpec(23), mcSpec(24)}})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(bigBatchBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized-for-queue batch status = %d, want 413", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("413 must not advertise Retry-After")
	}

	quickBody, _ := json.Marshal(SubmitRequest{Jobs: []JobSpec{mcSpec(22)}})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(quickBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response must carry Retry-After")
	}

	// The accepted batch still completes.
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + first.JobIDs[0])
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.Status == StatusDone {
			if st.Result.Err != "" {
				t.Fatalf("accepted batch failed: %s", st.Result.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("accepted batch never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Capacity drained: the rejected submission is admitted on retry.
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(quickBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retry after drain status = %d, want 202", resp.StatusCode)
	}
}
