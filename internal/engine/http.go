package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/trace"
)

// MaxBatchJobs bounds one HTTP batch submission.
const MaxBatchJobs = 4096

// maxBodyBytes bounds the POST /v1/jobs request body so the job limit is
// enforceable before the whole payload is buffered.
const maxBodyBytes = 32 << 20

// SubmitRequest is the POST /v1/jobs payload. Exported so the gateway (and
// other Go clients) share one wire definition with the server.
type SubmitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// SubmitResponse acknowledges a batch with the assigned job ids, in
// submission order, the batch id for the SSE streaming endpoint, and the
// trace id of the batch's span timeline (GET /v1/traces/{trace_id}).
type SubmitResponse struct {
	BatchID string   `json:"batch_id"`
	JobIDs  []string `json:"job_ids"`
	TraceID string   `json:"trace_id,omitempty"`
}

// HealthResponse is the GET /healthz (liveness) and /readyz (readiness)
// payload; on an unready 503 Status is "unready" and Error says why.
type HealthResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	Stats  Stats  `json:"stats"`
}

// NewHTTPHandler exposes the engine as the xbarserver batch API:
//
//	POST /v1/jobs                 {"jobs":[{...JobSpec...}]} -> 202
//	                              {"batch_id":"b...","job_ids":[...]}
//	GET  /v1/jobs/{id}            -> {"id","status","result"?}
//	GET  /v1/batches/{id}/events  -> Server-Sent Events: one "result" event
//	                              per job as it finishes (replayed from the
//	                              start for late subscribers, each result
//	                              exactly once), then one "done" event
//	GET  /v1/journal/tail         -> committed journal records past a
//	                              cursor (?after=N&limit=M&wait=25s), the
//	                              follower-replication feed
//	GET  /healthz                 -> liveness: {"status":"ok","stats":{...}}
//	GET  /readyz                  -> readiness: 200 while the member should
//	                              receive traffic, 503 while draining or
//	                              journal-degraded
//	GET  /v1/cluster/state        -> this member's role, epoch, leader, and
//	                              replication cursor (leader discovery)
//	GET  /v1/traces/{id}          -> one trace's span timeline (admission,
//	                              queue wait, execution, journal commit,
//	                              publish, SSE delivery), JSON
//	GET  /v1/traces?slowest=N     -> the N slowest kept timelines
//	GET  /metrics                 -> Prometheus text exposition of the
//	                              engine's registry (engine, journal, HTTP,
//	                              quota, and replication families)
//
// Submission is asynchronous: the response returns as soon as the batch is
// queued, and clients stream the batch id (or poll job ids — identical jobs
// are answered from the result cache). When the engine bounds admission,
// over-limit submissions are rejected with 429 and a Retry-After header;
// with Options.ClientRPS set, each X-Client-ID additionally has its own
// token bucket, and an over-quota client gets 429 + Retry-After before its
// submission consumes any queue slots. Requests without the header are
// bucketed by remote IP so unrelated anonymous clients don't share (and
// exhaust) a single quota; the quota is a fairness mechanism for
// well-behaved clients, not an authentication boundary — a client that
// rotates header values mints fresh buckets.
func NewHTTPHandler(e *Engine) http.Handler {
	limiter := newClientLimiter(e.opt.ClientRPS, e.opt.ClientBurst)
	mux := http.NewServeMux()
	// handle registers one route with per-route latency and status-count
	// instrumentation; the route label is the pattern, so cardinality is
	// fixed regardless of path values.
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			sw := &statusWriter{ResponseWriter: w}
			h(sw, r)
			e.met.observeHTTP(route, sw.status(), time.Since(start))
		})
	}
	handle("POST /v1/jobs", "/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if limiter != nil {
			if ok, retry := limiter.allow(clientQuotaID(r)); !ok {
				e.quotaRejected(r)
				w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
				httpError(w, http.StatusTooManyRequests, "client over submission quota")
				return
			}
		}
		var req SubmitRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		if len(req.Jobs) == 0 {
			httpError(w, http.StatusBadRequest, "empty batch")
			return
		}
		if len(req.Jobs) > MaxBatchJobs {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d jobs exceeds limit %d", len(req.Jobs), MaxBatchJobs))
			return
		}
		// The trace rides in on the W3C traceparent header when the caller
		// (gateway, loadgen) propagates one; otherwise this admission is
		// the trace root. The admission span is recorded when the handler
		// returns; the batch span parents under it.
		admitStart := time.Now()
		caller := trace.FromRequestHeader(r.Header.Get(trace.Header))
		admitSC := caller.Child()
		if !caller.Valid() {
			admitSC = trace.SpanContext{Trace: trace.NewTraceID(), Span: trace.NewSpanID()}
		}
		// The batch must outlive this request, so it is detached from the
		// request context; admission control (Options.MaxQueuedJobs and
		// MaxBatches) bounds how much detached work can pile up.
		b, err := e.Submit(trace.ContextWith(context.Background(), admitSC), req.Jobs)
		if err != nil {
			switch {
			case errors.Is(err, ErrBatchTooLarge):
				// Permanently unservable at this queue limit: no
				// Retry-After, the client must split the batch.
				httpError(w, http.StatusRequestEntityTooLarge, err.Error())
			case errors.Is(err, ErrOverloaded):
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, err.Error())
			default:
				httpError(w, http.StatusServiceUnavailable, err.Error())
			}
			return
		}
		go func() {
			for range b.Results {
			}
		}()
		e.traces.Record(&trace.Span{
			Trace:  admitSC.Trace,
			ID:     admitSC.Span,
			Parent: caller.Span,
			Name:   spanAdmit,
			Start:  admitStart.UnixNano(),
			End:    time.Now().UnixNano(),
			Detail: b.ID,
		})
		writeJSON(w, http.StatusAccepted, SubmitResponse{
			BatchID: b.ID, JobIDs: b.IDs, TraceID: admitSC.Trace.String(),
		})
	})
	handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := e.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job id")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	handle("GET /v1/batches/{id}/events", "/v1/batches/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveBatchEvents(e, w, r)
	})
	handle("GET /v1/journal/tail", "/v1/journal/tail", func(w http.ResponseWriter, r *http.Request) {
		serveJournalTail(e, w, r)
	})
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and serving. Deliberately undemanding —
		// a draining or journal-degraded member is still alive (restarting it
		// would make things worse); readiness is /readyz's job.
		writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Stats: e.Stats()})
	})
	handle("GET /readyz", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness: should this member receive traffic right now? The
		// gateway's health checker and the CI smoke scripts probe this, so a
		// draining member leaves the ring before its listener closes.
		if err := e.Ready(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "unready", Error: err.Error(), Stats: e.Stats()})
			return
		}
		writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Stats: e.Stats()})
	})
	handle("GET /v1/cluster/state", "/v1/cluster/state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.ClusterState())
	})
	handle("GET /v1/traces/{id}", "/v1/traces/{id}", e.traces.ServeTimeline)
	handle("GET /v1/traces", "/v1/traces", e.traces.ServeList)
	// The scrape itself is deliberately not instrumented: a request-latency
	// series for /metrics would grow the exposition it is measuring.
	mux.Handle("GET /metrics", e.met.reg.Handler())
	return mux
}

// statusWriter records the response status for the per-route request
// counters. It forwards Flush so the SSE endpoint still reaches the real
// http.Flusher through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// status is the effective response code: a handler that never wrote (the
// client disconnected mid-long-poll) counts as 200, matching what net/http
// would have sent.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// quotaRejected books one submission bounced by the per-client quota,
// labeled by bucket namespace (authenticated header vs anonymous IP) so a
// noisy-anonymous-traffic problem is distinguishable from a misbehaving
// identified client.
func (e *Engine) quotaRejected(r *http.Request) {
	e.stQuotaReject.Add(1)
	kind := "ip"
	if r.Header.Get("X-Client-ID") != "" {
		kind = "hdr"
	}
	e.met.quotaRejects.With(kind).Inc()
}

// serveBatchEvents streams a batch's job results as Server-Sent Events.
// Results already finished when the client connects are replayed first, so
// every subscriber sees each result exactly once regardless of when it
// joins; a terminal "done" event follows the last result.
func serveBatchEvents(e *Engine, w http.ResponseWriter, r *http.Request) {
	b, ok := e.batch(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown batch id")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	e.met.sseSubs.Inc()
	defer e.met.sseSubs.Dec()
	// The delivery span covers the subscription's whole lifetime. It is
	// recorded on return — usually after the batch's trace has finished, so
	// it surfaces in the timeline through the live-ring union in Get.
	sseStart := time.Now()
	delivered := false
	if b.sc.Valid() {
		defer func() {
			detail := "disconnected"
			if delivered {
				detail = "delivered"
			}
			e.traces.Record(&trace.Span{
				Trace:  b.sc.Trace,
				ID:     trace.NewSpanID(),
				Parent: b.sc.Span,
				Name:   spanSSE,
				Start:  sseStart.UnixNano(),
				End:    time.Now().UnixNano(),
				Detail: detail,
			})
		}()
	}
	stop := e.streamStopChan()
	// A reconnecting SSE client sends the last event id it processed;
	// resume past it so reconnects keep the exactly-once delivery.
	sent := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		sent = b.resumeAfter(last)
	}
	for {
		rs, changed, complete := b.next(sent)
		for _, res := range rs {
			data, err := json.Marshal(res)
			if err != nil {
				log.Printf("engine: encoding SSE result %s: %v", res.ID, err)
				return
			}
			if _, err := fmt.Fprintf(w, "id: %s\nevent: result\ndata: %s\n\n", res.ID, data); err != nil {
				return // client went away
			}
			sent++
		}
		if len(rs) > 0 {
			fl.Flush()
		}
		if complete && sent == len(b.jobIDs) {
			fmt.Fprintf(w, "event: done\ndata: {\"batch_id\":%q,\"jobs\":%d}\n\n", b.id, sent)
			fl.Flush()
			delivered = true
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-stop:
			return // engine closing or server shutting down
		}
	}
}

// tailWaitMax caps how long one tail request may long-poll for new
// records before answering empty.
const tailWaitMax = 30 * time.Second

// tailLimitMax caps records per tail response.
const tailLimitMax = 4096

// serveJournalTail answers the follower-replication feed: committed
// journal records with sequence numbers past ?after, oldest first, up to
// ?limit. With ?wait, an empty read long-polls until the next group commit
// (or the wait expires), so a caught-up follower converges one commit
// behind the leader instead of one poll interval.
func serveJournalTail(e *Engine, w http.ResponseWriter, r *http.Request) {
	if e.journal == nil {
		httpError(w, http.StatusNotFound, "journal not enabled (start the server with -journal-dir)")
		return
	}
	q := r.URL.Query()
	var after uint64
	if s := q.Get("after"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad after cursor: "+err.Error())
			return
		}
		after = v
	}
	limit := 512
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = min(v, tailLimitMax)
	}
	var wait time.Duration
	if s := q.Get("wait"); s != "" {
		v, err := time.ParseDuration(s)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad wait duration")
			return
		}
		wait = min(v, tailWaitMax)
	}
	// The commit signal is armed before the first read: a commit landing
	// between the read and the select closes this channel, so the long
	// poll can never sleep through it.
	notify := e.journalNotify()
	resp, err := e.journalTail(after, limit)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if len(resp.Records) == 0 && resp.MaxSeq > after {
		// The window was scanned but every record was skipped as
		// undecodable. A current follower advances its cursor from MaxSeq
		// as soon as it sees the response, but an older follower ignores
		// max_seq and would re-poll the same window immediately — so pace
		// it with a short wait instead of the full long poll (which would
		// stall cursor advance for current followers).
		wait = min(wait, time.Second)
	}
	if len(resp.Records) == 0 && wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-notify:
			if resp, err = e.journalTail(after, limit); err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
		case <-timer.C:
		case <-r.Context().Done():
			return
		case <-e.streamStopChan():
			// Server shutting down: answer empty now so graceful shutdown
			// is not held open by long-polling followers.
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// clientQuotaID picks the token-bucket key for one submission: the
// X-Client-ID header when present, else the remote IP (port stripped, so
// one host's successive connections share a bucket). The two prefixes
// keep the namespaces disjoint: no header value — not even one spelling
// "ip:10.0.0.1" — can land in another host's anonymous bucket.
func clientQuotaID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return "hdr:" + id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "ip:" + host
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late to change the status; log so failed writes are visible.
		log.Printf("engine: writing %d response: %v", code, err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
