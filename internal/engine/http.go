package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// MaxBatchJobs bounds one HTTP batch submission.
const MaxBatchJobs = 4096

// maxBodyBytes bounds the POST /v1/jobs request body so the job limit is
// enforceable before the whole payload is buffered.
const maxBodyBytes = 32 << 20

// submitRequest is the POST /v1/jobs payload.
type submitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// submitResponse acknowledges a batch with the assigned job ids, in
// submission order.
type submitResponse struct {
	JobIDs []string `json:"job_ids"`
}

// healthResponse is the GET /healthz payload.
type healthResponse struct {
	Status string `json:"status"`
	Stats  Stats  `json:"stats"`
}

// NewHTTPHandler exposes the engine as the xbarserver batch API:
//
//	POST /v1/jobs      {"jobs":[{...JobSpec...}]} -> 202 {"job_ids":[...]}
//	GET  /v1/jobs/{id} -> {"id","status","result"?}
//	GET  /healthz      -> {"status":"ok","stats":{...}}
//
// Submission is asynchronous: the response returns as soon as the batch is
// queued, and clients poll job ids (or re-submit — identical jobs are
// answered from the result cache).
func NewHTTPHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req submitRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		if len(req.Jobs) == 0 {
			httpError(w, http.StatusBadRequest, "empty batch")
			return
		}
		if len(req.Jobs) > MaxBatchJobs {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d jobs exceeds limit %d", len(req.Jobs), MaxBatchJobs))
			return
		}
		// The batch must outlive this request, so it is detached from the
		// request context; results land in the engine's status store.
		b, err := e.Submit(context.Background(), req.Jobs)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		go func() {
			for range b.Results {
			}
		}()
		writeJSON(w, http.StatusAccepted, submitResponse{JobIDs: b.IDs})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := e.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job id")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Stats: e.Stats()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
