package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestHTTPRoundTrip drives the full xbarserver API surface against a live
// httptest server: batch submit, polling to completion, health.
func TestHTTPRoundTrip(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	body, _ := json.Marshal(SubmitRequest{Jobs: []JobSpec{
		{Kind: SynthTwoLevel, Benchmark: "rd53"},
		{Kind: MapHBA, Inputs: 3, Outputs: 2, Rows: fig8Rows, OpenRate: 0.10, Seed: 4},
		{Kind: MonteCarloYield, Benchmark: "rd53", OpenRate: 0.10, Samples: 20, Seed: 9},
	}})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sub.JobIDs) != 3 {
		t.Fatalf("job ids = %v", sub.JobIDs)
	}

	poll := func(id string) JobStatus {
		deadline := time.Now().Add(30 * time.Second)
		for {
			r, err := http.Get(srv.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st JobStatus
			if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if st.Status == StatusDone {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, st.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if st := poll(sub.JobIDs[0]); st.Result.Err != "" || st.Result.Area != 544 {
		t.Fatalf("synth result = %+v", st.Result)
	}
	if st := poll(sub.JobIDs[1]); st.Result.Err != "" {
		t.Fatalf("map result = %+v", st.Result)
	}
	if st := poll(sub.JobIDs[2]); st.Result.Err != "" || st.Result.Samples != 20 {
		t.Fatalf("monte carlo result = %+v", st.Result)
	}

	// Re-submitting an identical job is answered from the cache.
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if st := poll(sub.JobIDs[0]); !st.Result.CacheHit {
		t.Fatalf("re-submitted job must hit the cache: %+v", st.Result)
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Status != "ok" || health.Stats.Submitted < 6 {
		t.Fatalf("health = %+v", health)
	}
}

func TestHTTPErrors(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{"jobs":[]}`, http.StatusBadRequest},
		{fmt.Sprintf(`{"jobs":[%s]}`, bigBatch(MaxBatchJobs+1)), http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %q status = %d, want %d", tc.body[:min(20, len(tc.body))], resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/j99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

func bigBatch(n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"kind":"synthesize-two-level","benchmark":"rd53"}`)
	}
	return b.String()
}
