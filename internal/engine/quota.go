package engine

import (
	"math"
	"sync"
	"time"
)

// maxClientBuckets bounds the limiter's per-client state; when the map is
// full, a small random sample is pruned — idle (fully refilled) buckets
// first, else the least-recently-seen of the sample is evicted, and that
// client re-enters at full burst, the price of bounded memory (see
// pruneLocked).
const maxClientBuckets = 4096

// clientLimiter is a token-bucket rate limiter keyed by client id (the
// HTTP layer keys it by the X-Client-ID header), layered on top of the
// engine's global admission limits: a single chatty client exhausts its
// own bucket and gets 429 + Retry-After before the submission consumes
// any queue slots, while other clients keep their full allowance.
type clientLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	now     func() time.Time // test hook
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newClientLimiter builds a limiter granting rps sustained submissions per
// second per client with the given burst; burst < 1 defaults to the
// larger of 1 and one second's worth of tokens.
func newClientLimiter(rps float64, burst int) *clientLimiter {
	if rps <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rps))
	}
	return &clientLimiter{
		rate:    rps,
		burst:   b,
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// allow takes one token from id's bucket. When the bucket is empty it
// reports false plus how long until the next token accrues (the
// Retry-After hint).
func (l *clientLimiter) allow(id string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[id]
	if !ok {
		if len(l.buckets) >= maxClientBuckets {
			l.pruneLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[id] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(math.Ceil(need)) * time.Second
}

// pruneLocked makes room by approximate LRU over a small random sample
// (Go map iteration order is randomized): sampled buckets that have
// refilled to burst (idle long enough to be indistinguishable from a
// fresh client) are deleted; if none qualify — a flood of unique client
// ids, each bucket still draining — the least-recently-seen of the sample
// is evicted, so the map never exceeds maxClientBuckets. Sampling keeps
// the cost O(1) per new client even when the map is full: a full scan
// here would serialize every submission (including well-behaved clients')
// behind an O(maxClientBuckets) sweep under l.mu — the exact flood the
// limiter exists to absorb. The evicted client re-enters at full burst
// later, which is the price of bounded memory. Caller holds l.mu.
func (l *clientLimiter) pruneLocked(now time.Time) {
	const sampleSize = 8
	var stalest string
	var stalestLast time.Time
	removed := false
	sampled := 0
	for id, b := range l.buckets {
		if sampled++; sampled > sampleSize {
			break
		}
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, id)
			removed = true
			continue
		}
		if stalest == "" || b.last.Before(stalestLast) {
			stalest, stalestLast = id, b.last
		}
	}
	if !removed && stalest != "" {
		delete(l.buckets, stalest)
	}
}
