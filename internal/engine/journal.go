package engine

import (
	"encoding/hex"
	"encoding/json"
	"log"
	"reflect"
	"time"

	"repro/internal/journal"
)

// DefaultJournalCompactInterval is the background compaction period when
// Options.JournalDir is set and Options.JournalCompactInterval is zero.
const DefaultJournalCompactInterval = 5 * time.Minute

// openJournal opens (and recovers) the durable job journal and replays it
// into the result cache. The journal is the source of truth for finished
// results: every cache insert appends to it before the result is
// published, so a process killed at any point — even one that never wrote
// a -cache-file snapshot — warm-starts with every result it ever
// acknowledged. The snapshot, when also configured, is just a compaction
// checkpoint that the journal replay then overlays (journal records are
// newer, and replays are bit-identical, so the overlay is idempotent).
//
// A journal that cannot be opened is fatal for durability, but following
// the engine's log-and-degrade convention for persistence (see
// loadCacheFile) it is logged and the engine runs without one rather than
// taking the service down.
func (e *Engine) openJournal() {
	j, err := journal.Open(e.opt.JournalDir, journal.Options{
		SegmentBytes: e.opt.JournalSegmentBytes,
		NoSync:       e.opt.JournalNoSync,
		MaxAge:       e.opt.JournalMaxAge,
		MaxRecords:   e.opt.JournalMaxRecords,
		Metrics:      e.met.reg,
	})
	if err != nil {
		log.Printf("engine: opening journal in %s: %v (running WITHOUT durability)", e.opt.JournalDir, err)
		return
	}
	e.journal = j
	n := 0
	err = j.Replay(0, func(rec journal.Record) error {
		if journal.IsMetaKey(rec.Key) {
			// Cluster coordination records ride the journal but never the
			// result cache. Replay is oldest-first, so the last lease seen
			// is the newest claim this member knew before it stopped.
			if string(rec.Key) == string(journal.MetaKey(journal.LeaseKind)) {
				var claim leaseClaim
				if jerr := json.Unmarshal(rec.Value, &claim); jerr != nil {
					log.Printf("engine: journal lease record %d undecodable: %v (skipped)", rec.Seq, jerr)
				} else {
					e.recoveredLease = &claim
				}
			}
			return nil
		}
		var r JobResult
		if jerr := json.Unmarshal(rec.Value, &r); jerr != nil {
			// A record that framed correctly but doesn't decode is from
			// an incompatible build; skip it rather than refuse to start.
			log.Printf("engine: journal record %d undecodable: %v (skipped)", rec.Seq, jerr)
			return nil
		}
		e.cache.Put(string(rec.Key), canonicalResult(r))
		n++
		return nil
	})
	if err != nil {
		log.Printf("engine: replaying journal: %v", err)
	}
	if n > 0 {
		log.Printf("engine: replayed %d journaled results from %s (journal seq %d)",
			n, e.opt.JournalDir, j.LastSeq())
	}
	interval := e.opt.JournalCompactInterval
	if interval == 0 {
		interval = DefaultJournalCompactInterval
	}
	if interval > 0 {
		e.compactStop = make(chan struct{})
		e.compactWG.Add(1)
		go e.compactLoop(interval)
	}
}

// journalAppend durably records one finished result under its canonical
// spec-hash key. It runs on the worker goroutine after the cache insert
// and before the result is published, so an acknowledged result is always
// recoverable. Append failures cost durability, not correctness: the
// in-memory result is still served, so they are logged rather than failing
// the job.
func (e *Engine) journalAppend(key string, r JobResult) {
	if e.journal == nil {
		return
	}
	data, err := json.Marshal(canonicalResult(r))
	if err != nil {
		log.Printf("engine: encoding journal record: %v", err)
		return
	}
	if _, err := e.journal.Append([]byte(key), data); err != nil {
		log.Printf("engine: journal append: %v", err)
	}
}

// canonicalResult strips per-lookup identity and hit metadata so persisted
// results (journal records, snapshots) are keyed purely by spec hash; the
// serving path reassigns them per request.
func canonicalResult(r JobResult) JobResult {
	r.ID, r.CacheHit = "", false
	return r
}

// compactLoop periodically rewrites the journal when it holds superseded
// or expired records, so the on-disk log tracks the live result set
// instead of growing with every recomputation.
func (e *Engine) compactLoop(interval time.Duration) {
	defer e.compactWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if !e.journal.Expired() {
				continue
			}
			if err := e.journal.Compact(); err != nil {
				log.Printf("engine: compacting journal: %v", err)
			}
		case <-e.compactStop:
			return
		}
	}
}

// CompactJournal forces one journal compaction (normally the background
// loop's job); it reports whether a journal is configured.
func (e *Engine) CompactJournal() (bool, error) {
	if e.journal == nil {
		return false, nil
	}
	return true, e.journal.Compact()
}

// journalStats reports the journal's live record count and newest sequence
// number (zeros without a journal).
func (e *Engine) journalStats() (records int, lastSeq uint64) {
	if e.journal == nil {
		return 0, 0
	}
	return e.journal.Records(), e.journal.LastSeq()
}

// resultsEqual reports whether a replicated result matches the cached one
// verbatim (the skip-if-already-applied check of applyWindow).
func resultsEqual(a, b JobResult) bool { return reflect.DeepEqual(a, b) }

// TailRecord is the wire form of one journal record on the replication
// endpoint: the sequence cursor, the hex key, and the payload — Result for
// job records, Meta (the raw value, currently a lease claim) for records
// in the journal's reserved meta-key namespace.
type TailRecord struct {
	Seq    uint64          `json:"seq"`
	Key    string          `json:"key"`
	Result JobResult       `json:"result"`
	Meta   json.RawMessage `json:"meta,omitempty"`
}

// TailResponse is the GET /v1/journal/tail payload. MaxSeq is the highest
// sequence number scanned for this response — past skipped (undecodable)
// records as well as returned ones — so a follower advances its cursor
// even when a whole window fails to decode (build version skew) instead of
// re-pulling the same records forever.
type TailResponse struct {
	LastSeq uint64       `json:"last_seq"`
	MaxSeq  uint64       `json:"max_seq"`
	Records []TailRecord `json:"records"`
}

// journalTail reads up to limit committed records past the cursor for the
// replication endpoint.
func (e *Engine) journalTail(after uint64, limit int) (TailResponse, error) {
	recs, last, err := e.journal.ReadAfter(after, limit)
	if err != nil {
		return TailResponse{}, err
	}
	resp := TailResponse{LastSeq: last, MaxSeq: after, Records: make([]TailRecord, 0, len(recs))}
	for _, rec := range recs {
		resp.MaxSeq = rec.Seq // ReadAfter returns records oldest first
		if journal.IsMetaKey(rec.Key) {
			// Meta-record values are not JobResults; ship them raw so the
			// follower's election state sees the exact claim.
			resp.Records = append(resp.Records, TailRecord{
				Seq:  rec.Seq,
				Key:  hex.EncodeToString(rec.Key),
				Meta: json.RawMessage(rec.Value),
			})
			continue
		}
		var r JobResult
		if jerr := json.Unmarshal(rec.Value, &r); jerr != nil {
			log.Printf("engine: journal record %d undecodable on tail: %v (skipped)", rec.Seq, jerr)
			continue
		}
		resp.Records = append(resp.Records, TailRecord{
			Seq:    rec.Seq,
			Key:    hex.EncodeToString(rec.Key),
			Result: r,
		})
	}
	return resp, nil
}

// journalNotify exposes the journal's commit signal to the long-polling
// tail endpoint.
func (e *Engine) journalNotify() <-chan struct{} {
	return e.journal.Notify()
}
