package engine

import "repro/internal/trace"

// Span names for the engine-side job lifecycle. Minted once at init into
// package variables so the recording path touches pre-resolved names only;
// the xbarvet metrics-contract analyzer enforces that each literal is
// unique module-wide.
var (
	spanAdmit   = trace.MustName("xbar.http.admit")
	spanBatch   = trace.MustName("xbar.engine.batch")
	spanQueue   = trace.MustName("xbar.engine.queue")
	spanCache   = trace.MustName("xbar.engine.cache-hit")
	spanDedup   = trace.MustName("xbar.engine.dedup-join")
	spanJournal = trace.MustName("xbar.journal.commit")
	spanPublish = trace.MustName("xbar.engine.publish")
	spanSSE     = trace.MustName("xbar.engine.sse")

	spanExecTwoLevel   = trace.MustName("xbar.engine.exec.synthesize-two-level")
	spanExecMultiLevel = trace.MustName("xbar.engine.exec.synthesize-multilevel")
	spanExecMapHBA     = trace.MustName("xbar.engine.exec.map-hba")
	spanExecMapEA      = trace.MustName("xbar.engine.exec.map-ea")
	spanExecMC         = trace.MustName("xbar.engine.exec.monte-carlo-yield")
	spanExecOther      = trace.MustName("xbar.engine.exec.unknown")
)

// execSpanNames pre-resolves one execution span name per job kind, so the
// per-kind name is a map read, never a concatenation.
var execSpanNames = map[Kind]trace.Name{
	SynthTwoLevel:   spanExecTwoLevel,
	SynthMultiLevel: spanExecMultiLevel,
	MapHBA:          spanExecMapHBA,
	MapEA:           spanExecMapEA,
	MonteCarloYield: spanExecMC,
}

func execSpanName(k Kind) trace.Name {
	if n, ok := execSpanNames[k]; ok {
		return n
	}
	return spanExecOther
}

// Traces returns the engine's span store; cmd/xbarserver serves it at
// GET /v1/traces, and the gateway stitches member timelines from it.
func (e *Engine) Traces() *trace.Store { return e.traces }
