package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/defect"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/minimize"
	"repro/internal/montecarlo"
	"repro/internal/suite"
	"repro/internal/synth"
	"repro/internal/xbar"
)

// Kind selects what a job computes.
type Kind string

const (
	// SynthTwoLevel places the function on the two-level NAND–AND crossbar
	// and reports its geometry.
	SynthTwoLevel Kind = "synthesize-two-level"
	// SynthMultiLevel factors the function into a NAND network, places it
	// on the multi-level crossbar, and reports geometry and network stats.
	SynthMultiLevel Kind = "synthesize-multilevel"
	// MapHBA maps the synthesized layout onto one defective fabric with
	// the paper's hybrid algorithm.
	MapHBA Kind = "map-hba"
	// MapEA maps with the exact (Munkres) algorithm.
	MapEA Kind = "map-ea"
	// MonteCarloYield runs a defect-map Monte Carlo batch and reports the
	// mapping success rate Psucc and mean per-sample algorithm time.
	MonteCarloYield Kind = "monte-carlo-yield"
)

// Styles select the synthesis style a mapping or yield job operates on.
const (
	StyleTwoLevel   = "two-level"
	StyleMultiLevel = "multi-level"
)

// JobSpec describes one unit of work. The function comes from exactly one
// of three sources, in precedence order: an in-memory Cover (library
// callers), a built-in Benchmark name, or PLA-style Rows. Two specs that
// hash identically (see hash.go) are the same work and share one cached
// result.
type JobSpec struct {
	Kind Kind `json:"kind"`

	// Benchmark names a built-in circuit (memxbar.BenchmarkNames).
	Benchmark string `json:"benchmark,omitempty"`
	// Inputs, Outputs and Rows define the function as PLA product rows
	// when no benchmark is named.
	Inputs  int      `json:"inputs,omitempty"`
	Outputs int      `json:"outputs,omitempty"`
	Rows    []string `json:"rows,omitempty"`
	// Cover supplies the function directly; library callers only (not
	// serialized). Takes precedence over Benchmark and Rows.
	Cover *logic.Cover `json:"-"`
	// Layout supplies a pre-synthesized layout for map-* and
	// monte-carlo-yield jobs, skipping synthesis inside the job; library
	// callers only (not serialized). Takes precedence over every
	// function source.
	Layout *xbar.Layout `json:"-"`

	// Minimize runs two-level minimization before use (Table II maps the
	// espresso-minimized covers; the engine mirrors that convention with
	// the same iteration bound as internal/experiments).
	Minimize bool `json:"minimize,omitempty"`

	// Style selects the layout for map-* and monte-carlo-yield jobs:
	// StyleTwoLevel (default) or StyleMultiLevel.
	Style string `json:"style,omitempty"`
	// MaxFanin bounds NAND fan-in for multi-level synthesis; zero means
	// the input count.
	MaxFanin int `json:"max_fanin,omitempty"`

	// DefectMap gives the fabric explicitly for map-* jobs, one string
	// per physical row ('.' ok, 'o' stuck-open, 'x' stuck-closed). When
	// empty, a map is sampled from Seed/OpenRate/ClosedRate.
	DefectMap []string `json:"defect_map,omitempty"`
	// SpareRows adds redundant physical rows beyond the design's.
	SpareRows int `json:"spare_rows,omitempty"`
	// OpenRate and ClosedRate are the per-crosspoint defect probabilities
	// (the paper's Table II uses OpenRate 0.10).
	OpenRate   float64 `json:"open_rate,omitempty"`
	ClosedRate float64 `json:"closed_rate,omitempty"`
	// Seed drives defect sampling (the harness seed for Monte Carlo jobs).
	Seed int64 `json:"seed,omitempty"`

	// Samples is the Monte Carlo batch size; zero means the paper's 200.
	Samples int `json:"samples,omitempty"`
	// Algorithm selects the mapper for monte-carlo-yield jobs: "HBA"
	// (default), "EA", or "naive".
	Algorithm string `json:"algorithm,omitempty"`

	// TimeoutMS bounds this job's execution in milliseconds; zero uses
	// the engine default. Not part of the job's identity hash.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JobResult is the outcome of one job. Err is non-empty on failure
// (including cancellation and timeout); the remaining fields are filled
// according to the job kind.
type JobResult struct {
	ID       string `json:"id"`
	Kind     Kind   `json:"kind"`
	Err      string `json:"error,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Elapsed is the execution time of the job body (zero on cache hits).
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`

	// Synthesis outputs.
	Rows  int     `json:"rows,omitempty"`
	Cols  int     `json:"cols,omitempty"`
	Area  int     `json:"area,omitempty"`
	IR    float64 `json:"ir,omitempty"`
	Gates int     `json:"gates,omitempty"`
	Wires int     `json:"wires,omitempty"`
	Depth int     `json:"depth,omitempty"`

	// Mapping outputs.
	Valid       bool   `json:"valid,omitempty"`
	Assignment  []int  `json:"assignment,omitempty"`
	Reason      string `json:"reason,omitempty"`
	Backtracks  int    `json:"backtracks,omitempty"`
	MatchChecks int    `json:"match_checks,omitempty"`

	// Monte Carlo outputs.
	Samples  int           `json:"samples,omitempty"`
	Psucc    float64       `json:"psucc,omitempty"`
	MeanTime time.Duration `json:"mean_time_ns,omitempty"`
}

// timeout resolves the job's effective deadline.
func (s JobSpec) timeout(def time.Duration) time.Duration {
	if s.TimeoutMS > 0 {
		return time.Duration(s.TimeoutMS) * time.Millisecond
	}
	return def
}

// Execute runs one job synchronously. Monte Carlo jobs abort early when ctx
// is cancelled; synthesis and single-map jobs are uninterruptible compute
// kernels, so the engine enforces their deadline from outside.
func Execute(ctx context.Context, spec JobSpec) JobResult {
	start := time.Now()
	res, err := execute(ctx, spec)
	res.Kind = spec.Kind
	res.Elapsed = time.Since(start)
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

func execute(ctx context.Context, spec JobSpec) (JobResult, error) {
	switch spec.Kind {
	case SynthTwoLevel:
		return executeSynthTwoLevel(spec)
	case SynthMultiLevel:
		return executeSynthMultiLevel(spec)
	case MapHBA, MapEA:
		return executeMap(spec)
	case MonteCarloYield:
		return executeMonteCarlo(ctx, spec)
	default:
		return JobResult{}, fmt.Errorf("engine: unknown job kind %q", spec.Kind)
	}
}

// buildCover resolves the job's function source.
func buildCover(spec JobSpec) (*logic.Cover, error) {
	var c *logic.Cover
	switch {
	case spec.Cover != nil:
		c = spec.Cover
	case spec.Benchmark != "":
		circuit, ok := suite.ByName(spec.Benchmark)
		if !ok {
			return nil, fmt.Errorf("engine: unknown benchmark %q", spec.Benchmark)
		}
		c = circuit.Build()
	case len(spec.Rows) > 0:
		parsed, err := logic.ParseCover(spec.Inputs, spec.Outputs, spec.Rows...)
		if err != nil {
			return nil, fmt.Errorf("engine: bad rows: %v", err)
		}
		c = parsed
	default:
		return nil, fmt.Errorf("engine: job has no function (set cover, benchmark, or rows)")
	}
	if spec.Minimize {
		c = minimize.Minimize(c, minimize.Options{MaxIterations: 2})
	}
	return c, nil
}

// buildLayout synthesizes the layout a mapping-style job operates on.
func buildLayout(spec JobSpec) (*xbar.Layout, error) {
	if spec.Layout != nil {
		return spec.Layout, nil
	}
	c, err := buildCover(spec)
	if err != nil {
		return nil, err
	}
	switch spec.Style {
	case "", StyleTwoLevel:
		return xbar.NewTwoLevel(c)
	case StyleMultiLevel:
		nw, err := synth.SynthesizeMultiLevel(c, synth.MultiLevelOptions{MaxFanin: spec.MaxFanin})
		if err != nil {
			return nil, err
		}
		return xbar.NewMultiLevel(nw)
	default:
		return nil, fmt.Errorf("engine: unknown style %q", spec.Style)
	}
}

func executeSynthTwoLevel(spec JobSpec) (JobResult, error) {
	c, err := buildCover(spec)
	if err != nil {
		return JobResult{}, err
	}
	l, err := xbar.NewTwoLevel(c)
	if err != nil {
		return JobResult{}, err
	}
	return JobResult{Rows: l.Rows, Cols: l.Cols, Area: l.Area(), IR: l.InclusionRatio()}, nil
}

func executeSynthMultiLevel(spec JobSpec) (JobResult, error) {
	c, err := buildCover(spec)
	if err != nil {
		return JobResult{}, err
	}
	nw, err := synth.SynthesizeMultiLevel(c, synth.MultiLevelOptions{
		MaxFanin: spec.MaxFanin,
		Minimize: spec.Minimize,
	})
	if err != nil {
		return JobResult{}, err
	}
	l, err := xbar.NewMultiLevel(nw)
	if err != nil {
		return JobResult{}, err
	}
	cost := synth.MultiLevel(nw)
	return JobResult{
		Rows: l.Rows, Cols: l.Cols, Area: l.Area(), IR: l.InclusionRatio(),
		Gates: cost.Gates, Wires: cost.Wires, Depth: cost.Depth,
	}, nil
}

// mapScratchPool shares mapping scratches (candidate matrices, Munkres
// buffers) across map jobs instead of allocating a fresh one per request;
// under concurrent single-map traffic the scratch is the dominant per-job
// allocation once layouts are cached.
var mapScratchPool = sync.Pool{New: func() any { return mapping.NewScratch() }}

func executeMap(spec JobSpec) (JobResult, error) {
	l, err := buildLayout(spec)
	if err != nil {
		return JobResult{}, err
	}
	dm, err := jobDefectMap(spec, l)
	if err != nil {
		return JobResult{}, err
	}
	p, err := mapping.NewProblem(l, dm)
	if err != nil {
		return JobResult{}, err
	}
	algo := mapping.HBAScratch
	if spec.Kind == MapEA {
		algo = mapping.ExactScratch
	}
	scratch := mapScratchPool.Get().(*mapping.Scratch)
	r := algo(p, scratch)
	// r.Assignment aliases the scratch; copy it out before the scratch goes
	// back to the pool and another job overwrites the buffer.
	var assignment []int
	if r.Assignment != nil {
		assignment = append([]int(nil), r.Assignment...)
	}
	mapScratchPool.Put(scratch)
	return JobResult{
		Rows: l.Rows, Cols: l.Cols, Area: l.Area(), IR: l.InclusionRatio(),
		Valid: r.Valid, Assignment: assignment, Reason: r.Reason,
		Backtracks: r.Stats.Backtracks, MatchChecks: r.Stats.MatchChecks,
	}, nil
}

func executeMonteCarlo(ctx context.Context, spec JobSpec) (JobResult, error) {
	l, err := buildLayout(spec)
	if err != nil {
		return JobResult{}, err
	}
	algo, err := algorithmByName(spec.Algorithm)
	if err != nil {
		return JobResult{}, err
	}
	params := defect.Params{POpen: spec.OpenRate, PClosed: spec.ClosedRate}
	// Samples run serially inside the job: the engine parallelizes across
	// jobs, and serial per-sample rng derivation keeps Psucc identical to
	// the one-shot experiment code paths. The job owns one preallocated
	// defect map (regenerated in place per trial) and one mapping scratch,
	// so the trial loop is allocation-free in steady state.
	//
	// Trial-setup failures (problem construction, defect regeneration) must
	// fail the job, never count as failed samples: Outcome{} here would
	// silently depress Psucc — the paper's headline statistic. Trials can't
	// return errors, so the first one is recorded (and the run cancelled so
	// the remaining samples abort instead of spinning as no-ops) and the
	// record is checked after the run, before the harness's own error.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var trialMu sync.Mutex
	var trialErr error
	fail := func(err error) {
		trialMu.Lock()
		if trialErr == nil {
			trialErr = err
		}
		trialMu.Unlock()
		cancelRun()
	}
	sum, err := montecarlo.RunFactory(montecarlo.Options{
		Samples: spec.Samples,
		Seed:    spec.Seed,
		Context: runCtx,
	}, func() montecarlo.Trial {
		dm := defect.NewMap(l.Rows+spec.SpareRows, l.Cols)
		scratch := mapping.NewScratch()
		p, pErr := mapping.NewProblem(l, dm)
		if pErr != nil {
			fail(pErr)
			return func(int, *rand.Rand) montecarlo.Outcome { return montecarlo.Outcome{} }
		}
		return func(i int, rng *rand.Rand) montecarlo.Outcome {
			if genErr := dm.Regenerate(params, rng); genErr != nil {
				fail(genErr)
				return montecarlo.Outcome{}
			}
			start := time.Now()
			r := algo(p, scratch)
			return montecarlo.Outcome{Success: r.Valid, Elapsed: time.Since(start)}
		}
	})
	trialMu.Lock()
	setupErr := trialErr
	trialMu.Unlock()
	if setupErr != nil {
		return JobResult{}, setupErr
	}
	if err != nil {
		return JobResult{}, err
	}
	return JobResult{
		Rows: l.Rows, Cols: l.Cols, Area: l.Area(), IR: l.InclusionRatio(),
		Samples: sum.Samples, Psucc: sum.SuccessRate, MeanTime: sum.MeanTime,
	}, nil
}

func algorithmByName(name string) (func(*mapping.Problem, *mapping.Scratch) mapping.Result, error) {
	switch strings.ToUpper(name) {
	case "", "HBA":
		return mapping.HBAScratch, nil
	case "EA", "EXACT":
		return mapping.ExactScratch, nil
	case "NAIVE":
		return mapping.NaiveScratch, nil
	}
	return nil, fmt.Errorf("engine: unknown algorithm %q", name)
}

// jobDefectMap resolves the fabric for a single-map job: explicit rows when
// given, otherwise one sampled map.
func jobDefectMap(spec JobSpec, l *xbar.Layout) (*defect.Map, error) {
	if len(spec.DefectMap) == 0 {
		return defect.Generate(l.Rows+spec.SpareRows, l.Cols,
			defect.Params{POpen: spec.OpenRate, PClosed: spec.ClosedRate},
			rand.New(rand.NewSource(spec.Seed)))
	}
	cols := len(spec.DefectMap[0])
	dm := defect.NewMap(len(spec.DefectMap), cols)
	for r, row := range spec.DefectMap {
		if len(row) != cols {
			return nil, fmt.Errorf("engine: defect map row %d has %d cells, want %d", r, len(row), cols)
		}
		for c, ch := range row {
			switch ch {
			case '.':
			case 'o':
				dm.Set(r, c, defect.StuckOpen)
			case 'x':
				dm.Set(r, c, defect.StuckClosed)
			default:
				return nil, fmt.Errorf("engine: defect map row %d: bad cell %q (want . o x)", r, ch)
			}
		}
	}
	return dm, nil
}
