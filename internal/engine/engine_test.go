package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fig8Rows is the paper's Figs. 7/8 walkthrough function (3 inputs, 2
// outputs), small enough that every kernel is fast.
var fig8Rows = []string{"11- 10", "-01 10", "0-0 01", "-11 01"}

func fig8Spec(kind Kind) JobSpec {
	return JobSpec{Kind: kind, Inputs: 3, Outputs: 2, Rows: fig8Rows}
}

// mcSpec is a Monte Carlo job that takes long enough to observe scheduling.
func mcSpec(seed int64) JobSpec {
	s := fig8Spec(MonteCarloYield)
	s.OpenRate = 0.10
	s.Samples = 40
	s.Seed = seed
	return s
}

func TestExecuteSynthesisKinds(t *testing.T) {
	two := Execute(context.Background(), fig8Spec(SynthTwoLevel))
	if two.Err != "" {
		t.Fatalf("two-level: %s", two.Err)
	}
	// Geometry: (P+O) x (2I+2O) = 6 x 10.
	if two.Rows != 6 || two.Cols != 10 || two.Area != 60 {
		t.Fatalf("two-level geometry = %dx%d (%d)", two.Rows, two.Cols, two.Area)
	}
	multi := Execute(context.Background(), fig8Spec(SynthMultiLevel))
	if multi.Err != "" {
		t.Fatalf("multi-level: %s", multi.Err)
	}
	if multi.Gates == 0 || multi.Area == 0 {
		t.Fatalf("multi-level result = %+v", multi)
	}
	bench := Execute(context.Background(), JobSpec{Kind: SynthTwoLevel, Benchmark: "rd53"})
	if bench.Err != "" {
		t.Fatalf("benchmark: %s", bench.Err)
	}
	// rd53: (31+3) x (2*5+2*3) = 34 x 16 = 544, the paper's Table I area.
	if bench.Area != 544 {
		t.Fatalf("rd53 area = %d, want 544", bench.Area)
	}
}

func TestExecuteMapWithExplicitDefects(t *testing.T) {
	// The Fig. 8 walkthrough fabric: HBA must find a valid mapping.
	spec := fig8Spec(MapHBA)
	spec.DefectMap = []string{
		"o.o.....o.", "..........", "oo........",
		".o..o.....", "..o.......", "...o...o..",
	}
	r := Execute(context.Background(), spec)
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if !r.Valid || len(r.Assignment) == 0 {
		t.Fatalf("HBA on Fig. 8 fabric = %+v", r)
	}
	ea := spec
	ea.Kind = MapEA
	if r := Execute(context.Background(), ea); r.Err != "" || !r.Valid {
		t.Fatalf("EA on Fig. 8 fabric = %+v", r)
	}
}

func TestExecuteErrors(t *testing.T) {
	cases := []JobSpec{
		{Kind: "bogus", Benchmark: "rd53"},
		{Kind: SynthTwoLevel},                                          // no function source
		{Kind: SynthTwoLevel, Benchmark: "no-such-circuit"},            // unknown benchmark
		{Kind: MapHBA, Benchmark: "rd53", Style: "bogus"},              // unknown style
		{Kind: MonteCarloYield, Benchmark: "rd53", Algorithm: "bogus"}, // unknown algorithm
		{Kind: MapHBA, Inputs: 3, Outputs: 2, Rows: fig8Rows,
			DefectMap: []string{"?........."}}, // bad defect cell
	}
	for _, spec := range cases {
		if r := Execute(context.Background(), spec); r.Err == "" {
			t.Errorf("spec %+v must fail", spec)
		}
	}
}

// TestMonteCarloSetupErrorFailsJob is the regression test for the silent
// Psucc corruption bug: trial-setup failures (problem construction, defect
// regeneration) used to be counted as failed samples, reporting a depressed
// Psucc instead of an error. They must fail the job.
func TestMonteCarloSetupErrorFailsJob(t *testing.T) {
	// Problem construction fails: the fabric is smaller than the design.
	bad := mcSpec(1)
	bad.SpareRows = -1
	r := Execute(context.Background(), bad)
	if r.Err == "" {
		t.Fatalf("shrunken fabric must fail the job, got Psucc=%v over %d samples", r.Psucc, r.Samples)
	}
	if !strings.Contains(r.Err, "mapping:") {
		t.Errorf("error must come from problem construction, got %q", r.Err)
	}
	if r.Samples != 0 || r.Psucc != 0 {
		t.Errorf("failed job must not report Monte Carlo outputs: %+v", r)
	}

	// Defect regeneration fails: impossible defect probabilities.
	bad = mcSpec(1)
	bad.OpenRate = 1.5
	r = Execute(context.Background(), bad)
	if r.Err == "" {
		t.Fatalf("invalid defect rate must fail the job, got Psucc=%v over %d samples", r.Psucc, r.Samples)
	}
	if !strings.Contains(r.Err, "invalid probabilities") {
		t.Errorf("error must come from defect regeneration, got %q", r.Err)
	}

	// A healthy spec still succeeds, so the checks don't over-trigger.
	if r := Execute(context.Background(), mcSpec(1)); r.Err != "" {
		t.Fatalf("healthy spec failed: %s", r.Err)
	}
}

// TestStatusEvictionSkipsLiveJobs pins the store-growth fix: one stuck live
// job at the head of the eviction order must not stop finished jobs behind
// it from being evicted.
func TestStatusEvictionSkipsLiveJobs(t *testing.T) {
	e := New(Options{Workers: 1, StatusLimit: 3})
	defer e.Close()
	e.mu.Lock()
	e.recordLocked("stuck") // stays pending: a live job pinned at the head
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("done%02d", i)
		e.recordLocked(id)
		e.status[id].Status = StatusDone
	}
	if len(e.order) > 3 || len(e.status) > 3 {
		e.mu.Unlock()
		t.Fatalf("status store grew to %d/%d entries despite limit 3", len(e.order), len(e.status))
	}
	if _, ok := e.status["stuck"]; !ok {
		e.mu.Unlock()
		t.Fatal("live job must never be evicted")
	}
	// Once the stuck job finishes it becomes evictable again.
	e.status["stuck"].Status = StatusDone
	e.recordLocked("after")
	_, stuckLeft := e.status["stuck"]
	n := len(e.order)
	e.mu.Unlock()
	if stuckLeft || n > 3 {
		t.Fatalf("finished head must be evicted (left=%v, order=%d)", stuckLeft, n)
	}
}

// TestEngineAdmissionControl exercises both submission bounds at the
// library level: queued-job and open-batch limits reject with
// ErrOverloaded, and the engine admits again once load drains.
func TestEngineAdmissionControl(t *testing.T) {
	e := New(Options{Workers: 1, MaxQueuedJobs: 1, CacheSize: -1})
	defer e.Close()
	// A batch bigger than the queue limit can never be admitted: not
	// retryable, distinct error.
	if _, err := e.Submit(context.Background(), []JobSpec{mcSpec(8), mcSpec(9)}); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch error = %v, want ErrBatchTooLarge", err)
	}
	a, err := e.Submit(context.Background(), []JobSpec{mcSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	// The first job is admitted but unfinished, so a second submission
	// exceeds MaxQueuedJobs deterministically.
	if _, err := e.Submit(context.Background(), []JobSpec{mcSpec(2)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-limit submit error = %v, want ErrOverloaded", err)
	}
	for r := range a.Results {
		if r.Err != "" {
			t.Fatalf("admitted batch must complete: %s", r.Err)
		}
	}
	// finish() decrements the queue count before publishing the result, so
	// after draining the batch the engine must admit again.
	b, err := e.Submit(context.Background(), []JobSpec{mcSpec(2)})
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	for range b.Results {
	}

	eb := New(Options{Workers: 1, MaxBatches: 1, CacheSize: -1})
	defer eb.Close()
	a, err = eb.Submit(context.Background(), []JobSpec{mcSpec(3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eb.Submit(context.Background(), []JobSpec{mcSpec(4)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-batch submit error = %v, want ErrOverloaded", err)
	}
	for range a.Results {
	}
	// The open-batch count drops before the results channel closes.
	if _, err := eb.Submit(context.Background(), []JobSpec{mcSpec(4)}); err != nil {
		t.Fatalf("submit after batch drained: %v", err)
	}
}

func TestHashKeyIdentity(t *testing.T) {
	a, b := mcSpec(1), mcSpec(1)
	if a.hashKey() != b.hashKey() {
		t.Fatal("identical specs must hash identically")
	}
	b.TimeoutMS = 500
	if a.hashKey() != b.hashKey() {
		t.Fatal("timeout must not change the identity hash")
	}
	for _, mutate := range []func(*JobSpec){
		func(s *JobSpec) { s.Seed++ },
		func(s *JobSpec) { s.Kind = MapHBA },
		func(s *JobSpec) { s.OpenRate = 0.15 },
		func(s *JobSpec) { s.Samples++ },
		func(s *JobSpec) { s.Algorithm = "EA" },
		func(s *JobSpec) { s.Style = StyleMultiLevel },
		func(s *JobSpec) { s.SpareRows = 2 },
		func(s *JobSpec) { s.Minimize = true },
		func(s *JobSpec) { s.Rows = append([]string{}, "111 11") },
	} {
		c := mcSpec(1)
		mutate(&c)
		if c.hashKey() == a.hashKey() {
			t.Errorf("mutated spec %+v must hash differently", c)
		}
	}
}

func TestEngineRunsBatchAndSaturatesPool(t *testing.T) {
	const workers = 2
	e := New(Options{Workers: workers, CacheSize: -1})
	defer e.Close()
	specs := make([]JobSpec, 16)
	for i := range specs {
		specs[i] = mcSpec(int64(i)) // distinct seeds: no dedup
	}
	results, err := e.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != "" {
			t.Fatalf("job %d: %s", i, r.Err)
		}
		if r.Samples != 40 {
			t.Fatalf("job %d ran %d samples", i, r.Samples)
		}
	}
	st := e.Stats()
	if st.Completed != 16 || st.Submitted != 16 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxConcurrent > workers {
		t.Fatalf("max concurrency %d exceeds %d workers", st.MaxConcurrent, workers)
	}
}

func TestEngineResultsStreamInSpecOrderViaRun(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	specs := []JobSpec{
		fig8Spec(SynthTwoLevel),
		{Kind: SynthTwoLevel, Benchmark: "rd53"},
		fig8Spec(SynthMultiLevel),
	}
	results, err := e.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Area != 60 || results[1].Area != 544 || results[2].Gates == 0 {
		t.Fatalf("results out of order: %+v", results)
	}
}

func TestEngineCacheHitAndSharedDedup(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	spec := mcSpec(7)
	first, err := e.Run(context.Background(), []JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if first[0].CacheHit {
		t.Fatal("first run cannot be a cache hit")
	}
	// Second run of the identical spec must come from the cache with the
	// same Psucc.
	second, err := e.Run(context.Background(), []JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !second[0].CacheHit {
		t.Fatal("identical re-run must hit the cache")
	}
	if second[0].Psucc != first[0].Psucc || second[0].Samples != first[0].Samples {
		t.Fatalf("cached result drifted: %+v vs %+v", second[0], first[0])
	}
	// A batch full of the same job computes it once (cache + singleflight).
	dup := make([]JobSpec, 8)
	for i := range dup {
		dup[i] = mcSpec(7)
	}
	results, err := e.Run(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != "" || !r.CacheHit {
			t.Fatalf("dup job %d: %+v", i, r)
		}
	}
}

func TestEngineCacheEviction(t *testing.T) {
	// One shard of capacity 2, single worker for deterministic LRU order.
	e := New(Options{Workers: 1, CacheSize: 2, CacheShards: 1})
	defer e.Close()
	run := func(seed int64) JobResult {
		r, err := e.Run(context.Background(), []JobSpec{mcSpec(seed)})
		if err != nil {
			t.Fatal(err)
		}
		return r[0]
	}
	run(1)
	run(2)
	run(3) // evicts seed 1
	if got := e.Stats().CacheEntries; got != 2 {
		t.Fatalf("cache entries = %d, want 2", got)
	}
	if r := run(1); r.CacheHit {
		t.Fatal("seed 1 must have been evicted (LRU)")
	}
	// Seed 3 was just re-inserted... seed 1's re-run evicted seed 2; 3 stays.
	if r := run(3); !r.CacheHit {
		t.Fatal("seed 3 must still be cached")
	}
}

func TestEngineCancellationMidBatch(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: -1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	specs := make([]JobSpec, 32)
	for i := range specs {
		specs[i] = mcSpec(int64(100 + i))
		specs[i].Samples = 200
	}
	b, err := e.Submit(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	var ok, cancelled int
	first := true
	for r := range b.Results {
		if first {
			cancel()
			first = false
		}
		if r.Err == "" {
			ok++
		} else if strings.Contains(r.Err, "context canceled") {
			cancelled++
		} else {
			t.Fatalf("unexpected error: %s", r.Err)
		}
	}
	if ok+cancelled != len(specs) {
		t.Fatalf("accounted for %d of %d jobs", ok+cancelled, len(specs))
	}
	if cancelled == 0 {
		t.Fatal("cancellation must abort at least the queued jobs")
	}
	// The engine must remain usable after a cancelled batch.
	after, err := e.Run(context.Background(), []JobSpec{fig8Spec(SynthTwoLevel)})
	if err != nil || after[0].Err != "" {
		t.Fatalf("engine unusable after cancel: %v %+v", err, after)
	}
}

func TestEnginePerJobTimeout(t *testing.T) {
	e := New(Options{Workers: 1, CacheSize: -1})
	defer e.Close()
	slow := mcSpec(5)
	slow.Samples = 100_000
	slow.TimeoutMS = 30
	start := time.Now()
	r, err := e.Run(context.Background(), []JobSpec{slow})
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Err == "" {
		t.Fatal("a 30ms deadline on a 100k-sample job must expire")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v to fire", elapsed)
	}
}

func TestEngineSubmitValidation(t *testing.T) {
	e := New(Options{Workers: 1})
	// An empty batch is valid (serial code paths return empty results for
	// empty selections) and its channel closes immediately.
	b, err := e.Submit(context.Background(), nil)
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if _, open := <-b.Results; open {
		t.Fatal("empty batch channel must be closed")
	}
	if out, err := e.Run(context.Background(), nil); err != nil || len(out) != 0 {
		t.Fatalf("empty Run = %v, %v", out, err)
	}
	e.Close()
	e.Close() // double close is safe
	if _, err := e.Submit(context.Background(), []JobSpec{fig8Spec(SynthTwoLevel)}); err == nil {
		t.Fatal("submit after close must fail")
	}
}

func TestEngineJobStatusLifecycle(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	b, err := e.Submit(context.Background(), []JobSpec{fig8Spec(SynthTwoLevel)})
	if err != nil {
		t.Fatal(err)
	}
	id := b.IDs[0]
	for range b.Results {
	}
	st, ok := e.Job(id)
	if !ok || st.Status != StatusDone || st.Result == nil || st.Result.Area != 60 {
		t.Fatalf("status = %+v ok=%v", st, ok)
	}
	if _, ok := e.Job("j99999999"); ok {
		t.Fatal("unknown id must not resolve")
	}
}
