package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/bitmat"
)

// CanonicalHash returns the spec's canonical identity as a hex string —
// the same key (hex-encoded) the engine caches and journals results under
// and the replication feed reports. The gateway shards on it, and it is
// the idempotency token that makes retried submissions exactly-once: two
// specs with equal hashes resolve to one cached computation no matter how
// many members or retries saw them.
func (s JobSpec) CanonicalHash() string { return hex.EncodeToString([]byte(s.hashKey())) }

// hashKey is the canonical identity of a job: two specs with equal keys
// compute the same result and may share one cache entry. The key covers
// every field that influences the output — the function source (with the
// in-memory cover rendered to its deterministic PLA form), synthesis
// options, fabric parameters, and Monte Carlo parameters — and excludes
// scheduling-only fields (TimeoutMS).
func (s JobSpec) hashKey() string {
	h := sha256.New()
	hstr(h, string(s.Kind))
	switch {
	case s.Layout != nil:
		// The layout identity is its geometry, line kinds, and the packed
		// active words — the canonical serialization of the device
		// placement, hashed without rendering an intermediate string.
		hstr(h, "layout")
		hint(h, int64(s.Layout.Rows))
		hint(h, int64(s.Layout.Cols))
		hbool(h, s.Layout.MultiLevel)
		for _, k := range s.Layout.RowKinds {
			h.Write([]byte{byte(k)})
		}
		for _, k := range s.Layout.ColKinds {
			h.Write([]byte{byte(k)})
		}
		s.Layout.PackedWords(func(row bitmat.Row) {
			for _, w := range row {
				hint(h, int64(w))
			}
		})
	case s.Cover != nil:
		hstr(h, "cover")
		hint(h, int64(s.Cover.NumIn))
		hint(h, int64(s.Cover.NumOut))
		hstr(h, s.Cover.String())
	case s.Benchmark != "":
		hstr(h, "benchmark")
		hstr(h, s.Benchmark)
	default:
		hstr(h, "rows")
		hint(h, int64(s.Inputs))
		hint(h, int64(s.Outputs))
		hint(h, int64(len(s.Rows)))
		for _, r := range s.Rows {
			hstr(h, r)
		}
	}
	hbool(h, s.Minimize)
	hstr(h, s.Style)
	hint(h, int64(s.MaxFanin))
	hint(h, int64(len(s.DefectMap)))
	for _, r := range s.DefectMap {
		hstr(h, r)
	}
	hint(h, int64(s.SpareRows))
	hint(h, int64(math.Float64bits(s.OpenRate)))
	hint(h, int64(math.Float64bits(s.ClosedRate)))
	hint(h, s.Seed)
	hint(h, int64(s.Samples))
	hstr(h, s.Algorithm)
	return string(h.Sum(nil))
}

func hstr(h hash.Hash, s string) {
	hint(h, int64(len(s)))
	h.Write([]byte(s))
}

func hint(h hash.Hash, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
}

func hbool(h hash.Hash, v bool) {
	if v {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}
