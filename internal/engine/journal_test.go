package engine

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// batch64 builds the acceptance batch: 64 distinct map-hba jobs (different
// defect seeds over the Fig. 8 layout) whose results include full
// assignments, so bit-identical replay is checked on real payloads.
func batch64() []JobSpec {
	specs := make([]JobSpec, 64)
	for i := range specs {
		s := fig8Spec(MapHBA)
		s.OpenRate = 0.10
		s.SpareRows = 2
		s.Seed = int64(1000 + i)
		specs[i] = s
	}
	return specs
}

// samePayload compares two results modulo the per-lookup fields (ID,
// CacheHit, Elapsed): everything the paper's statistics are built from
// must match exactly.
func samePayload(a, b JobResult) bool {
	a.ID, a.CacheHit, a.Elapsed = "", false, 0
	b.ID, b.CacheHit, b.Elapsed = "", false, 0
	return reflect.DeepEqual(a, b)
}

// TestJournalKillRestart64 is the PR's kill-and-restart acceptance check:
// a server that computed a 64-job batch and was killed WITHOUT ever
// writing a cache snapshot (no CacheFile configured, no orderly
// snapshotting) must, restarted on the same journal directory, answer the
// same batch entirely from cache with bit-identical results.
func TestJournalKillRestart64(t *testing.T) {
	dir := t.TempDir()
	specs := batch64()

	e1 := New(Options{Workers: 4, JournalDir: dir})
	first, err := e1.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range first {
		if r.Err != "" {
			t.Fatalf("job %d: %s", i, r.Err)
		}
	}
	// Run returning means every result was journaled (appends are durable
	// before a result is published), so a kill here loses nothing. Close
	// writes no snapshot — there is no CacheFile.
	e1.Close()

	e2 := New(Options{Workers: 4, JournalDir: dir})
	defer e2.Close()
	if got := e2.Stats().CacheEntries; got != len(specs) {
		t.Fatalf("journal replay restored %d results, want %d", got, len(specs))
	}
	second, err := e2.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if r.Err != "" || !r.CacheHit {
			t.Fatalf("job %d must come from the replayed journal: %+v", i, r)
		}
		if !samePayload(first[i], r) {
			t.Fatalf("job %d drifted across kill+restart:\n  before %+v\n  after  %+v", i, first[i], r)
		}
	}
	if hits := e2.Stats().CacheHits; hits != int64(len(specs)) {
		t.Fatalf("CacheHits = %d, want %d (whole batch from journal replay)", hits, len(specs))
	}
}

// TestJournalOverlaysSnapshot checks the snapshot-as-checkpoint
// relationship: results present only in the journal (computed after the
// last snapshot) are restored alongside the snapshotted ones.
func TestJournalOverlaysSnapshot(t *testing.T) {
	dir := t.TempDir()
	cacheFile := dir + "/cache.json"

	e1 := New(Options{Workers: 2, JournalDir: dir, CacheFile: cacheFile, CachePersistInterval: -1})
	if _, err := e1.Run(context.Background(), []JobSpec{mcSpec(1)}); err != nil {
		t.Fatal(err)
	}
	e1.Close() // snapshot now holds mcSpec(1)

	// Second life: compute one more job, then "crash" — Close would write
	// a fresh snapshot, so this engine is abandoned instead. Its journal
	// append already committed when Run returned.
	e2 := New(Options{Workers: 2, JournalDir: dir, CacheFile: cacheFile, CachePersistInterval: -1})
	if _, err := e2.Run(context.Background(), []JobSpec{mcSpec(2)}); err != nil {
		t.Fatal(err)
	}
	if n := e2.Stats().CacheEntries; n != 2 {
		t.Fatalf("second engine holds %d entries, want 2", n)
	}
	// Release the journal's file handles without snapshotting, simulating
	// a kill: drop the cache file setting by closing after clearing it.
	e2.opt.CacheFile = ""
	e2.Close()

	e3 := New(Options{Workers: 2, JournalDir: dir, CacheFile: cacheFile, CachePersistInterval: -1})
	defer e3.Close()
	if n := e3.Stats().CacheEntries; n != 2 {
		t.Fatalf("restart restored %d entries, want 2 (snapshot checkpoint + journal overlay)", n)
	}
	res, err := e3.Run(context.Background(), []JobSpec{mcSpec(1), mcSpec(2)})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != "" || !r.CacheHit {
			t.Fatalf("job %d not served from restored cache: %+v", i, r)
		}
	}
}

// TestFollowerConverges is the PR's replication acceptance check: a
// -follow instance converges to the leader's cache and passes the same
// all-from-cache bit-identical batch check, including after a restart
// from its own journal.
func TestFollowerConverges(t *testing.T) {
	specs := batch64()
	leaderDir, followerDir := t.TempDir(), t.TempDir()

	leader := New(Options{Workers: 4, JournalDir: leaderDir})
	defer leader.Close()
	srv := httptest.NewServer(NewHTTPHandler(leader))
	defer srv.Close()

	first, err := leader.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range first {
		if r.Err != "" {
			t.Fatalf("leader job %d: %s", i, r.Err)
		}
	}

	follower := New(Options{
		Workers:            2,
		JournalDir:         followerDir,
		FollowPeer:         srv.URL,
		FollowPollInterval: 20 * time.Millisecond,
	})
	// Wait on Replicated: it is bumped after the cache insert, so once it
	// reaches the batch size the cache provably holds every result.
	deadline := time.Now().Add(15 * time.Second)
	for follower.Stats().Replicated < int64(len(specs)) {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d/%d replicated results", follower.Stats().Replicated, len(specs))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := follower.Stats().CacheEntries; got != len(specs) {
		t.Fatalf("follower cache holds %d entries, want %d", got, len(specs))
	}

	res, err := follower.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != "" || !r.CacheHit {
			t.Fatalf("follower job %d not from mirrored cache: %+v", i, r)
		}
		if !samePayload(first[i], r) {
			t.Fatalf("follower job %d diverged from leader:\n  leader   %+v\n  follower %+v", i, first[i], r)
		}
	}
	follower.Close()

	// The follower journaled what it mirrored: restarted WITHOUT a peer,
	// it still answers the batch from its own disk.
	f2 := New(Options{Workers: 2, JournalDir: followerDir})
	if got := f2.Stats().CacheEntries; got != len(specs) {
		t.Fatalf("restarted follower restored %d results, want %d", got, len(specs))
	}
	res2, err := f2.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res2 {
		if r.Err != "" || !r.CacheHit || !samePayload(first[i], r) {
			t.Fatalf("restarted follower job %d: %+v", i, r)
		}
	}
	f2.Close()

	// Restarted WITH the peer, the follower re-pulls the leader's history
	// from cursor zero but recognizes every already-restored record: its
	// local journal must not grow by a second copy of the history. One
	// genuinely new leader result (seq 65, ordered after the 64 replayed
	// records) proves the catch-up pull completed.
	f3 := New(Options{
		Workers:            2,
		JournalDir:         followerDir,
		FollowPeer:         srv.URL,
		FollowPollInterval: 20 * time.Millisecond,
	})
	defer f3.Close()
	extra := fig8Spec(MapHBA)
	extra.OpenRate = 0.10
	extra.SpareRows = 2
	extra.Seed = 99_999
	if _, err := leader.Run(context.Background(), []JobSpec{extra}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for f3.Stats().CacheEntries < len(specs)+1 {
		if time.Now().After(deadline) {
			t.Fatalf("re-attached follower stuck at %d entries", f3.Stats().CacheEntries)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if records, _ := f3.journalStats(); records != len(specs)+1 {
		t.Fatalf("re-attached follower journal holds %d records, want %d (history must not re-append)",
			records, len(specs)+1)
	}
}

// TestFollowerLiveMirroring checks results computed on the leader while
// the follower is already attached stream across promptly (the long-poll
// wakes on the leader's next commit, not on a poll interval).
func TestFollowerLiveMirroring(t *testing.T) {
	leader := New(Options{Workers: 2, JournalDir: t.TempDir()})
	defer leader.Close()
	srv := httptest.NewServer(NewHTTPHandler(leader))
	defer srv.Close()

	follower := New(Options{
		Workers:            1,
		CacheSize:          256,
		FollowPeer:         srv.URL, // no local journal: cache-only mirror
		FollowPollInterval: 20 * time.Millisecond,
	})
	defer follower.Close()

	for round := 0; round < 3; round++ {
		s := fig8Spec(MapHBA)
		s.OpenRate = 0.10
		s.SpareRows = 2
		s.Seed = int64(round)
		if _, err := leader.Run(context.Background(), []JobSpec{s}); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for follower.Stats().CacheEntries < round+1 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: follower stuck at %d entries", round, follower.Stats().CacheEntries)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestJournalTailAdvancesPastUndecodable pins the replication feed's
// cursor semantics under build version skew: a window of records that
// frame correctly but don't decode as JobResults must still advance
// MaxSeq, or a follower whose every pull lands on such a window re-reads
// it forever and never converges.
func TestJournalTailAdvancesPastUndecodable(t *testing.T) {
	e := New(Options{Workers: 1, JournalDir: t.TempDir()})
	defer e.Close()
	for i := 0; i < 2; i++ {
		if _, err := e.journal.Append([]byte{0xab, byte(i)}, []byte("not a JobResult")); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := e.journalTail(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Records) != 0 || resp.MaxSeq != 2 {
		t.Fatalf("tail over undecodable window: %d records, MaxSeq %d; want 0 records, MaxSeq 2",
			len(resp.Records), resp.MaxSeq)
	}
	// Re-pulling from the advanced cursor finds nothing left to scan —
	// the follower is past the poison, not stuck on it.
	resp, err = e.journalTail(resp.MaxSeq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Records) != 0 || resp.MaxSeq != 2 {
		t.Fatalf("tail past the window: %d records, MaxSeq %d; want 0 records, MaxSeq 2",
			len(resp.Records), resp.MaxSeq)
	}
}

// TestCloseTimeoutBounded proves a stuck job cannot hang shutdown: Close
// with a bound returns promptly while an uncancellable long job is still
// running, and the results computed before the timeout stay durable.
func TestCloseTimeoutBounded(t *testing.T) {
	dir := t.TempDir()
	e := New(Options{Workers: 1, JournalDir: dir})
	// A fast job first, so the journal provably holds something.
	fast := fig8Spec(SynthTwoLevel)
	if _, err := e.Run(context.Background(), []JobSpec{fast}); err != nil {
		t.Fatal(err)
	}
	// Then park the single worker on a huge Monte Carlo job. Cancel it
	// only after CloseTimeout returns, proving the bound doesn't depend
	// on the job finishing.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slow := mcSpec(7)
	slow.Samples = 50_000_000
	if _, err := e.Submit(ctx, []JobSpec{slow}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		e.CloseTimeout(300 * time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("CloseTimeout hung behind a stuck job")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("CloseTimeout took %v, want prompt return after its 300ms bound", took)
	}
	cancel() // release the worker

	// The fast job survived the bounded shutdown.
	e2 := New(Options{Workers: 1, JournalDir: dir})
	defer e2.Close()
	res, err := e2.Run(context.Background(), []JobSpec{fast})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != "" || !res[0].CacheHit {
		t.Fatalf("pre-timeout result not durable: %+v", res[0])
	}
}

// TestJournalCompactionKeepsServing checks an engine-triggered compaction
// preserves replay: recompute-heavy histories shrink to one record per
// spec and a restart still answers from cache.
func TestJournalCompactionKeepsServing(t *testing.T) {
	dir := t.TempDir()
	e := New(Options{Workers: 2, JournalDir: dir, JournalCompactInterval: -1})
	specs := []JobSpec{mcSpec(1), mcSpec(2), mcSpec(3)}
	if _, err := e.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	ok, err := e.CompactJournal()
	if !ok || err != nil {
		t.Fatalf("CompactJournal: ok=%v err=%v", ok, err)
	}
	records, _ := e.journalStats()
	if records != len(specs) {
		t.Fatalf("journal holds %d records after compaction, want %d", records, len(specs))
	}
	e.Close()

	e2 := New(Options{Workers: 2, JournalDir: dir, JournalCompactInterval: -1})
	defer e2.Close()
	res, err := e2.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != "" || !r.CacheHit {
			t.Fatalf("job %d not served from compacted journal: %+v", i, r)
		}
	}
}
