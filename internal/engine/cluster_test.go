package engine

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// member is one in-process cluster member: an engine plus a real HTTP
// server on a pre-allocated port (the URL must exist before the engine,
// because every member's Options list the others' URLs).
type member struct {
	url string
	ln  net.Listener
	eng *Engine
	srv *http.Server
}

func newMemberListener(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, "http://" + ln.Addr().String()
}

func (m *member) serve() {
	m.srv = &http.Server{Handler: NewHTTPHandler(m.eng)}
	go m.srv.Serve(m.ln)
}

// kill abruptly stops the member's HTTP server (in-flight connections
// dropped), leaving the engine running: from the fleet's point of view
// this is indistinguishable from the process freezing or the host
// vanishing, which is exactly what elections react to.
func (m *member) kill() { m.srv.Close() }

func waitFor(t *testing.T, what string, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func clusterOpts(self string, peers []string, dir string) Options {
	return Options{
		Workers:            2,
		JournalDir:         dir,
		ClusterSelf:        self,
		ClusterPeers:       peers,
		LeaseDuration:      400 * time.Millisecond,
		HeartbeatInterval:  80 * time.Millisecond,
		FollowPollInterval: 20 * time.Millisecond,
	}
}

// TestClusterFailover is the engine-level failover check: kill the leader,
// assert the follower promotes itself via the journal lease within the
// lease window, bumps the epoch, and serves the leader's results
// bit-identically from its mirrored cache.
func TestClusterFailover(t *testing.T) {
	lnA, urlA := newMemberListener(t)
	lnB, urlB := newMemberListener(t)
	dirA, dirB := t.TempDir(), t.TempDir()

	a := &member{url: urlA, ln: lnA}
	a.eng = New(clusterOpts(urlA, []string{urlB}, dirA))
	defer a.eng.Close()
	a.serve()
	defer a.srv.Close()

	b := &member{url: urlB, ln: lnB}
	opts := clusterOpts(urlB, []string{urlA}, dirB)
	opts.FollowPeer = urlA
	b.eng = New(opts)
	defer b.eng.Close()
	b.serve()
	defer b.srv.Close()

	if st := a.eng.ClusterState(); st.Role != RoleLeader || st.Epoch != 1 {
		t.Fatalf("A started as %s epoch %d, want leader epoch 1", st.Role, st.Epoch)
	}
	if st := b.eng.ClusterState(); st.Role != RoleFollower || st.Leader != urlA {
		t.Fatalf("B started as %s of %q, want follower of A", st.Role, st.Leader)
	}

	specs := batch64()
	first, err := a.eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "B to mirror the batch", 15*time.Second, func() bool {
		return b.eng.Stats().CacheEntries >= len(specs)
	})
	// B's election state must have seen A's lease through the feed.
	waitFor(t, "B to observe A's lease", 5*time.Second, func() bool {
		return b.eng.ClusterState().Epoch >= 1
	})

	a.kill()
	waitFor(t, "B to promote itself", 10*time.Second, func() bool {
		return b.eng.ClusterState().Role == RoleLeader
	})
	st := b.eng.ClusterState()
	if st.Epoch < 2 {
		t.Fatalf("promotion did not bump the epoch: %d", st.Epoch)
	}
	if st.Leader != urlB {
		t.Fatalf("promoted member reports leader %q, want itself", st.Leader)
	}

	// Every result acknowledged by the dead leader is served by the new
	// one, bit-identical, from the mirrored cache.
	res, err := b.eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != "" || !r.CacheHit {
			t.Fatalf("post-failover job %d not from mirrored cache: %+v", i, r)
		}
		if !samePayload(first[i], r) {
			t.Fatalf("post-failover job %d diverged:\n  old leader %+v\n  new leader %+v", i, first[i], r)
		}
	}

	// The new leader's lease is durable: restarted on the same journal, it
	// resumes leading at the recovered epoch without an election.
	b.eng.Close()
	b2 := New(clusterOpts(urlB, []string{urlA}, dirB))
	defer b2.Close()
	st2 := b2.ClusterState()
	if st2.Role != RoleLeader || st2.Epoch < st.Epoch {
		t.Fatalf("restarted member recovered role %s epoch %d, want leader epoch >= %d", st2.Role, st2.Epoch, st.Epoch)
	}
}

// TestClusterDemotionResolvesSplitBrain: two members that both boot
// believing they lead (epoch 1) must converge to one leader — the greater
// URL wins the tie, the other demotes and mirrors it.
func TestClusterDemotionResolvesSplitBrain(t *testing.T) {
	lnA, urlA := newMemberListener(t)
	lnB, urlB := newMemberListener(t)
	winner, loser := urlA, urlB
	if urlB > urlA {
		winner, loser = urlB, urlA
	}

	a := &member{url: urlA, ln: lnA}
	a.eng = New(clusterOpts(urlA, []string{urlB}, t.TempDir()))
	defer a.eng.Close()
	a.serve()
	defer a.srv.Close()
	b := &member{url: urlB, ln: lnB}
	b.eng = New(clusterOpts(urlB, []string{urlA}, t.TempDir()))
	defer b.eng.Close()
	b.serve()
	defer b.srv.Close()

	engOf := map[string]*Engine{urlA: a.eng, urlB: b.eng}
	waitFor(t, "split brain to resolve", 10*time.Second, func() bool {
		w, l := engOf[winner].ClusterState(), engOf[loser].ClusterState()
		return w.Role == RoleLeader && l.Role == RoleFollower && l.Leader == winner
	})
	// The loser keeps mirroring the winner afterwards: a result computed on
	// the winner shows up in the loser's cache.
	if _, err := engOf[winner].Run(context.Background(), []JobSpec{mcSpec(77)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "demoted member to mirror the winner", 10*time.Second, func() bool {
		return engOf[loser].Stats().Replicated >= 1
	})
}

func TestClusterStateAndReadyzEndpoints(t *testing.T) {
	e := New(Options{Workers: 1, JournalDir: t.TempDir()})
	h := NewHTTPHandler(e)

	get := func(path string) (*httptest.ResponseRecorder, map[string]any) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return rec, body
	}

	rec, body := get("/v1/cluster/state")
	if rec.Code != http.StatusOK || body["role"] != RoleSingle {
		t.Fatalf("unclustered state = %d %v, want 200 role %q", rec.Code, body, RoleSingle)
	}
	if rec, body = get("/readyz"); rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("readyz on live engine = %d %v", rec.Code, body)
	}
	if rec, body = get("/healthz"); rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz on live engine = %d %v", rec.Code, body)
	}

	e.Close()
	// Draining/closed: liveness stays green, readiness goes red.
	if rec, body = get("/readyz"); rec.Code != http.StatusServiceUnavailable || body["status"] != "unready" {
		t.Fatalf("readyz on closed engine = %d %v, want 503 unready", rec.Code, body)
	}
	if rec, _ = get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz on closed engine = %d, want 200 (liveness, not readiness)", rec.Code)
	}
}
