package engine

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func postJobsAs(t *testing.T, url, clientID string) *http.Response {
	t.Helper()
	body := []byte(`{"jobs":[{"kind":"synthesize-two-level","inputs":3,"outputs":2,"rows":["11- 10","1-1 01"]}]}`)
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestClientQuota checks the per-client token bucket: a client that
// exhausts its burst gets 429 + Retry-After while other clients keep
// their full allowance, and rejected submissions consume no queue slots.
func TestClientQuota(t *testing.T) {
	e := New(Options{Workers: 1, ClientRPS: 0.5, ClientBurst: 2})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	// Burst of 2 for client A, then over quota.
	for i := 0; i < 2; i++ {
		if resp := postJobsAs(t, srv.URL, "client-a"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("client-a submission %d: HTTP %d, want 202", i, resp.StatusCode)
		}
	}
	resp := postJobsAs(t, srv.URL, "client-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: HTTP %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}
	submittedAfterReject := e.Stats().Submitted

	// Another client is unaffected — quotas are per X-Client-ID.
	if resp := postJobsAs(t, srv.URL, "client-b"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("client-b blocked by client-a's quota: HTTP %d", resp.StatusCode)
	}
	// The rejected submission consumed no queue slots: only the three
	// accepted single-job batches ever reached the engine.
	if got := e.Stats().Submitted; got != submittedAfterReject+1 || got != 3 {
		t.Fatalf("Submitted = %d, want 3 (quota rejections must not consume queue slots)", got)
	}

	// Tokens accrue back at ClientRPS: after ~2s client A may submit
	// again (0.5 rps -> one token in 2s).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if resp := postJobsAs(t, srv.URL, "client-a"); resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client-a never recovered quota")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestClientQuotaID checks the bucket key derivation: the X-Client-ID
// header when present, else the remote IP — so unrelated anonymous
// clients never drain one shared bucket.
func TestClientQuotaID(t *testing.T) {
	a := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
	a.RemoteAddr = "10.1.2.3:5555"
	b := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
	b.RemoteAddr = "10.1.2.4:6666"
	if got := clientQuotaID(a); got != "ip:10.1.2.3" {
		t.Fatalf("anonymous quota id = %q, want ip:10.1.2.3", got)
	}
	if clientQuotaID(a) == clientQuotaID(b) {
		t.Fatal("anonymous clients on different hosts share a bucket")
	}
	// Two connections from the same host share one anonymous bucket.
	a2 := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
	a2.RemoteAddr = "10.1.2.3:7777"
	if clientQuotaID(a) != clientQuotaID(a2) {
		t.Fatal("same host's connections got separate anonymous buckets")
	}
	a.Header.Set("X-Client-ID", "client-a")
	if got := clientQuotaID(a); got != "hdr:client-a" {
		t.Fatalf("header quota id = %q, want hdr:client-a", got)
	}
	// Header and anonymous namespaces are disjoint: neither a bare address
	// nor a forged "ip:"-prefixed header lands in a host's anonymous bucket.
	for _, forged := range []string{"10.1.2.3", "ip:10.1.2.3"} {
		b.Header.Set("X-Client-ID", forged)
		if clientQuotaID(b) == "ip:10.1.2.3" {
			t.Fatalf("header %q collided with the anonymous bucket", forged)
		}
	}
}

// TestClientQuotaDisabled checks the zero-value path: without ClientRPS
// every submission passes straight to admission control.
func TestClientQuotaDisabled(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()
	for i := 0; i < 5; i++ {
		if resp := postJobsAs(t, srv.URL, "hammer"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: HTTP %d, want 202 with quotas disabled", i, resp.StatusCode)
		}
	}
}

// TestClientLimiterBuckets unit-tests the token bucket math with a fake
// clock: refill rate, burst cap, retry hints, and idle-bucket pruning.
func TestClientLimiterBuckets(t *testing.T) {
	l := newClientLimiter(2, 4) // 2 tokens/s, burst 4
	now := time.Unix(1_700_000_000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("burst draw %d refused", i)
		}
	}
	ok, retry := l.allow("c")
	if ok {
		t.Fatal("5th draw allowed past burst")
	}
	if retry < time.Second/2 || retry > 2*time.Second {
		t.Fatalf("retry hint %v, want about 0.5s rounded up", retry)
	}
	now = now.Add(time.Second) // 2 tokens accrue
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("second refilled token refused")
	}
	if ok, _ := l.allow("c"); ok {
		t.Fatal("third draw allowed with 2 accrued")
	}

	// An unknown id starts at full burst.
	if ok, _ := l.allow("fresh"); !ok {
		t.Fatal("fresh client refused")
	}

	// Pruning: fill the map, age every bucket to full, and the next new
	// client reclaims the space.
	for i := 0; i < maxClientBuckets; i++ {
		l.allow("bulk-" + strconv.Itoa(i))
	}
	now = now.Add(time.Hour)
	l.allow("overflow")
	if n := len(l.buckets); n > maxClientBuckets {
		t.Fatalf("limiter kept %d buckets, want pruning at %d", n, maxClientBuckets)
	}
}
