package engine

import (
	"strconv"
	"time"

	"repro/internal/metrics"
)

// engineMetrics holds every instrument the engine's hot paths record into.
// One instance (and one metrics.Registry) lives per Engine; cmd/xbarserver
// exposes the registry at GET /metrics. Per-kind histogram children are
// resolved once at construction so the worker loop does an atomic add per
// observation, not a map lookup under a lock.
type engineMetrics struct {
	reg *metrics.Registry

	queueWait *metrics.HistogramVec // kind
	jobSecs   *metrics.HistogramVec // kind
	jobs      *metrics.CounterVec   // kind, outcome

	queueWaitByKind map[Kind]*metrics.Histogram
	jobSecsByKind   map[Kind]*metrics.Histogram

	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	dedup       *metrics.Counter
	rejects     *metrics.CounterVec // reason

	httpSeconds  *metrics.HistogramVec // route
	httpRequests *metrics.CounterVec   // route, code
	sseSubs      *metrics.Gauge
	quotaRejects *metrics.CounterVec // key ("hdr" or "ip")

	replApplied  *metrics.Counter
	replSkipped  *metrics.Counter
	replPullErrs *metrics.Counter
	replCursor   *metrics.Gauge
	replLeader   *metrics.Gauge
	replLag      *metrics.Gauge
	replBackoff  *metrics.Gauge

	clusterEpoch     *metrics.Gauge
	clusterIsLeader  *metrics.Gauge
	clusterFailovers *metrics.Counter
	clusterDemotions *metrics.Counter
}

// knownKinds is the fixed set of job kinds, used to pre-resolve per-kind
// histogram children off the hot path.
var knownKinds = []Kind{SynthTwoLevel, SynthMultiLevel, MapHBA, MapEA, MonteCarloYield}

func newEngineMetrics() *engineMetrics {
	reg := metrics.NewRegistry()
	m := &engineMetrics{
		reg: reg,
		queueWait: reg.NewHistogramVec("xbar_engine_queue_wait_seconds",
			"Time from batch admission to a worker picking the job up.",
			nil, "kind"),
		jobSecs: reg.NewHistogramVec("xbar_engine_job_seconds",
			"Kernel execution time of jobs actually run (cache hits and dedup waits excluded).",
			nil, "kind"),
		jobs: reg.NewCounterVec("xbar_engine_jobs_total",
			"Finished jobs by kind and outcome.", "kind", "outcome"),
		cacheHits: reg.NewCounter("xbar_engine_cache_hits_total",
			"Jobs answered from the result cache (dedup waits on an identical in-flight job included)."),
		cacheMisses: reg.NewCounter("xbar_engine_cache_misses_total",
			"Jobs that ran a kernel because no cached result existed."),
		dedup: reg.NewCounter("xbar_engine_dedup_total",
			"Jobs coalesced onto an identical in-flight execution instead of running twice."),
		rejects: reg.NewCounterVec("xbar_engine_rejects_total",
			"Batch submissions refused by admission control, by reason.", "reason"),
		httpSeconds: reg.NewHistogramVec("xbar_http_request_seconds",
			"HTTP request latency by route (SSE streams observe their whole lifetime).",
			nil, "route"),
		httpRequests: reg.NewCounterVec("xbar_http_requests_total",
			"HTTP responses by route and status code.", "route", "code"),
		sseSubs: reg.NewGauge("xbar_http_sse_subscribers",
			"Currently connected Server-Sent-Events subscribers."),
		quotaRejects: reg.NewCounterVec("xbar_quota_rejects_total",
			"Submissions refused by the per-client quota, by bucket key kind (hdr = X-Client-ID, ip = remote address).",
			"key"),
		replApplied: reg.NewCounter("xbar_replication_applied_total",
			"Records replicated from the followed peer and applied locally."),
		replSkipped: reg.NewCounter("xbar_replication_skipped_total",
			"Replicated records skipped because the local cache already held them verbatim."),
		replPullErrs: reg.NewCounter("xbar_replication_pull_errors_total",
			"Failed tail pulls against the followed peer."),
		replCursor: reg.NewGauge("xbar_replication_cursor",
			"The follower's replication cursor (highest peer sequence number applied or skipped)."),
		replLeader: reg.NewGauge("xbar_replication_leader_seq",
			"The followed peer's newest committed journal sequence number, as of the last pull."),
		replLag: reg.NewGauge("xbar_replication_lag",
			"Records the follower still trails the leader by (leader_seq - cursor)."),
		replBackoff: reg.NewGauge("xbar_replication_pull_backoff_seconds",
			"Current retry backoff of the follower's tail pull (0 while the peer is healthy)."),
		clusterEpoch: reg.NewGauge("xbar_cluster_epoch",
			"Leadership epoch this member has observed (bumped on every promotion)."),
		clusterIsLeader: reg.NewGauge("xbar_cluster_is_leader",
			"1 while this member holds the leader lease, else 0."),
		clusterFailovers: reg.NewCounter("xbar_cluster_failovers_total",
			"Times this member promoted itself to leader after a lease expiry."),
		clusterDemotions: reg.NewCounter("xbar_cluster_demotions_total",
			"Times this member yielded leadership after observing a higher claim."),
	}
	m.queueWaitByKind = make(map[Kind]*metrics.Histogram, len(knownKinds))
	m.jobSecsByKind = make(map[Kind]*metrics.Histogram, len(knownKinds))
	for _, k := range knownKinds {
		m.queueWaitByKind[k] = m.queueWait.With(string(k))
		m.jobSecsByKind[k] = m.jobSecs.With(string(k))
	}
	return m
}

// registerEngineGauges installs the scrape-time gauges that read live
// engine state. Split from newEngineMetrics because the closures need the
// Engine, which needs the metrics first.
func (e *Engine) registerEngineGauges() {
	reg := e.met.reg
	reg.NewGaugeFunc("xbar_engine_workers",
		"Size of the worker pool.", func() float64 { return float64(e.opt.Workers) })
	reg.NewGaugeFunc("xbar_engine_active_workers",
		"Workers currently executing a job.", func() float64 { return float64(e.stActive.Load()) })
	reg.NewGaugeFunc("xbar_engine_queue_depth",
		"Jobs admitted but not yet finished.", func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.queuedJobs)
		})
	reg.NewGaugeFunc("xbar_engine_open_batches",
		"Batches submitted but not fully finished.", func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.openBatches)
		})
	reg.NewGaugeFunc("xbar_engine_cache_entries",
		"Entries in the result cache.", func() float64 {
			if e.cache == nil {
				return 0
			}
			return float64(e.cache.Len())
		})
}

// Metrics returns the engine's metrics registry; cmd/xbarserver serves it
// at GET /metrics, and library callers can render or inspect it directly.
func (e *Engine) Metrics() *metrics.Registry { return e.met.reg }

func (m *engineMetrics) observeQueueWait(k Kind, d time.Duration, traceID string) {
	h, ok := m.queueWaitByKind[k]
	if !ok {
		h = m.queueWait.With(string(k))
	}
	h.ObserveWithExemplar(d.Seconds(), traceID)
}

func (m *engineMetrics) observeJob(k Kind, d time.Duration, traceID string) {
	h, ok := m.jobSecsByKind[k]
	if !ok {
		h = m.jobSecs.With(string(k))
	}
	h.ObserveWithExemplar(d.Seconds(), traceID)
}

func (m *engineMetrics) countJob(k Kind, errStr string) {
	outcome := "ok"
	if errStr != "" {
		outcome = "error"
	}
	m.jobs.With(string(k), outcome).Inc()
}

// observeHTTP records one finished request (or stream) on a route.
func (m *engineMetrics) observeHTTP(route string, code int, d time.Duration) {
	m.httpSeconds.With(route).Observe(d.Seconds())
	m.httpRequests.With(route, strconv.Itoa(code)).Inc()
}
