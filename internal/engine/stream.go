package engine

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// maxTrackedBatches bounds the batch registry used by the SSE streaming
// endpoint. The oldest fully finished batches are evicted first; batches
// with unfinished jobs are never dropped, so a live stream always has its
// backing state.
const maxTrackedBatches = 1024

// batchState is the streamable record of one submitted batch: every job
// result published so far, in finish order, plus a broadcast channel that
// subscribers wait on for the next publish. Results are appended exactly
// once per job (by Engine.finish), so a subscriber that replays from cursor
// zero sees every result exactly once no matter when it connects.
type batchState struct {
	id     string
	jobIDs []string // immutable after construction

	// Trace identity, set once by Submit before the batch is registered:
	// sc is the batch span's own context (per-job spans parent under
	// sc.Span), parent is the admission/caller span id, traceID is the
	// pre-rendered id string handed to metric exemplars.
	sc      trace.SpanContext
	parent  trace.SpanID
	traceID string
	start   time.Time

	mu      sync.Mutex
	results []JobResult
	errs    bool          // any published result carried an error
	changed chan struct{} // closed and replaced on every publish
}

func newBatchState(id string, jobIDs []string) *batchState {
	return &batchState{
		id:      id,
		jobIDs:  jobIDs,
		results: make([]JobResult, 0, len(jobIDs)),
		changed: make(chan struct{}),
	}
}

// publish appends one finished job result and wakes every subscriber.
func (b *batchState) publish(r JobResult) {
	b.mu.Lock()
	b.results = append(b.results, r)
	if r.Err != "" {
		b.errs = true
	}
	close(b.changed)
	b.changed = make(chan struct{})
	b.mu.Unlock()
}

// failed reports whether any job of the batch published an error (the
// trace sampling policy pins errored batches).
func (b *batchState) failed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.errs
}

// next returns a copy of the results past cursor i, the channel signalling
// the next publish, and whether every job of the batch has finished as of
// this snapshot.
func (b *batchState) next(i int) ([]JobResult, <-chan struct{}, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var rs []JobResult
	if i < len(b.results) {
		rs = append(rs, b.results[i:]...)
	}
	return rs, b.changed, len(b.results) == len(b.jobIDs)
}

// done reports whether every job of the batch has finished.
func (b *batchState) done() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.results) == len(b.jobIDs)
}

// batch looks up a tracked batch by id.
func (e *Engine) batch(id string) (*batchState, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.batches[id]
	return b, ok
}

// registerBatchLocked tracks a new batch for streaming and evicts the
// oldest finished batches beyond the registry bound, skipping live ones
// (same policy as the job status store — see pruneOrder). Caller holds
// e.mu.
func (e *Engine) registerBatchLocked(b *batchState) {
	e.batches[b.id] = b
	e.batchOrder = append(e.batchOrder, b.id)
	e.batchOrder = pruneOrder(e.batchOrder, maxTrackedBatches,
		func(id string) bool {
			bs, ok := e.batches[id]
			return !ok || bs.done()
		},
		func(id string) { delete(e.batches, id) })
}

// StopStreams unblocks every currently connected Server-Sent-Events
// subscriber so in-flight streams end promptly instead of waiting out
// their batches. Wire it to http.Server.RegisterOnShutdown so graceful
// shutdown isn't held hostage by a live stream; Close calls it as well.
// The engine keeps running and the signal re-arms: subscribers that
// connect after a StopStreams stream normally.
func (e *Engine) StopStreams() {
	e.mu.Lock()
	close(e.streamStop)
	e.streamStop = make(chan struct{})
	e.mu.Unlock()
}

// streamStopChan snapshots the stop signal for one subscriber: it fires
// for the StopStreams calls that happen while this subscriber is live.
func (e *Engine) streamStopChan() <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.streamStop
}

// resumeAfter returns the replay cursor just past the result whose job id
// is lastID (the SSE Last-Event-ID of a reconnecting client), or 0 when
// the id is unknown so the whole batch replays.
func (b *batchState) resumeAfter(lastID string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, r := range b.results {
		if r.ID == lastID {
			return i + 1
		}
	}
	return 0
}
