package engine

import (
	"container/list"
	"sync"
)

// DefaultCacheSize is the total entry budget when Options.CacheSize is zero.
const DefaultCacheSize = 1024

// defaultCacheShards splits the cache into independently locked LRU shards
// so concurrent workers don't serialize on one mutex.
const defaultCacheShards = 16

// resultCache is a sharded LRU of finished job results keyed by the
// canonical spec hash.
type resultCache struct {
	shards []*cacheShard
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used
	m   map[string]*list.Element // key -> *entry element
}

type cacheEntry struct {
	key string
	val JobResult
}

// newResultCache builds a cache holding about `size` entries in total.
func newResultCache(size, shards int) *resultCache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	if shards <= 0 {
		shards = defaultCacheShards
	}
	if shards > size {
		shards = size
	}
	perShard := (size + shards - 1) / shards
	c := &resultCache{shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap: perShard,
			ll:  list.New(),
			m:   make(map[string]*list.Element, perShard),
		}
	}
	return c
}

// shard picks the shard for a key. Keys are sha256 digests, so the first
// byte is uniformly distributed.
func (c *resultCache) shard(key string) *cacheShard {
	if key == "" {
		return c.shards[0]
	}
	return c.shards[int(key[0])%len(c.shards)]
}

// Get returns the cached result for key and marks it most recently used.
func (c *resultCache) Get(key string) (JobResult, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return JobResult{}, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a result, evicting the least recently used entry of the
// shard when it is full.
func (c *resultCache) Put(key string, val JobResult) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
	}
}

// Snapshot copies every entry, oldest-first within each shard, so a
// restore that Puts entries in snapshot order reproduces the LRU order.
func (c *resultCache) Snapshot() []cacheEntry {
	var out []cacheEntry
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Back(); el != nil; el = el.Prev() {
			en := el.Value.(*cacheEntry)
			out = append(out, cacheEntry{key: en.key, val: en.val})
		}
		s.mu.Unlock()
	}
	return out
}

// Len reports the total entry count across shards.
func (c *resultCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
