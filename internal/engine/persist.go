package engine

import (
	"encoding/hex"
	"encoding/json"
	"log"
	"os"
	"time"
)

// DefaultCachePersistInterval is the background cache snapshot period when
// Options.CacheFile is set and Options.CachePersistInterval is zero.
const DefaultCachePersistInterval = 30 * time.Second

// cacheFileVersion is the snapshot format version; files with a different
// version are ignored (the engine starts cold) rather than misread.
const cacheFileVersion = 1

// cacheSnapshotFile is the on-disk form of the result cache: every entry's
// canonical spec hash (hex) and its finished result. Entries are written
// oldest-first per shard, so reloading with Put restores the LRU order.
//
// With Options.JournalDir set, the snapshot is a compaction checkpoint of
// the durable job journal, not the source of truth: New loads it first and
// then replays the journal over it (journal records are newer, and
// bit-identical replays make the overlay idempotent). JournalSeq records
// the journal's newest committed sequence number at save time, for
// operators correlating a snapshot with the log.
type cacheSnapshotFile struct {
	Version    int              `json:"version"`
	Saved      time.Time        `json:"saved"`
	JournalSeq uint64           `json:"journal_seq,omitempty"`
	Entries    []persistedEntry `json:"entries"`
}

type persistedEntry struct {
	Key    string    `json:"key"`
	Result JobResult `json:"result"`
}

// loadCacheFile warm-starts the result cache from Options.CacheFile. A
// missing file is a normal cold start; an unreadable or corrupt file is
// logged and ignored so a bad snapshot can never keep the server down.
func (e *Engine) loadCacheFile() {
	data, err := os.ReadFile(e.opt.CacheFile)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("engine: reading cache file %s: %v (starting cold)", e.opt.CacheFile, err)
		}
		return
	}
	var snap cacheSnapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		log.Printf("engine: parsing cache file %s: %v (starting cold)", e.opt.CacheFile, err)
		return
	}
	if snap.Version != cacheFileVersion {
		log.Printf("engine: cache file %s has version %d, want %d (starting cold)",
			e.opt.CacheFile, snap.Version, cacheFileVersion)
		return
	}
	n := 0
	for _, pe := range snap.Entries {
		key, err := hex.DecodeString(pe.Key)
		if err != nil || len(key) == 0 {
			continue
		}
		// Identity and hit metadata are assigned per lookup, never stored.
		e.cache.Put(string(key), canonicalResult(pe.Result))
		n++
	}
	if n > 0 {
		log.Printf("engine: warm-started %d cached results from %s", n, e.opt.CacheFile)
	}
}

// saveCacheFile snapshots the result cache to Options.CacheFile via a
// temp-file rename, so readers never observe a torn snapshot. It is a
// no-op when persistence is not configured.
func (e *Engine) saveCacheFile() error {
	if e.cache == nil || e.opt.CacheFile == "" {
		return nil
	}
	entries := e.cache.Snapshot()
	_, journalSeq := e.journalStats()
	snap := cacheSnapshotFile{
		Version:    cacheFileVersion,
		Saved:      time.Now().UTC(),
		JournalSeq: journalSeq,
		Entries:    make([]persistedEntry, 0, len(entries)),
	}
	for _, en := range entries {
		snap.Entries = append(snap.Entries, persistedEntry{
			Key:    hex.EncodeToString([]byte(en.key)),
			Result: en.val,
		})
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	tmp := e.opt.CacheFile + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, e.opt.CacheFile)
}

// persistLoop snapshots the cache every interval until Close stops it.
func (e *Engine) persistLoop(interval time.Duration) {
	defer e.persistWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := e.saveCacheFile(); err != nil {
				log.Printf("engine: persisting cache: %v", err)
			}
		case <-e.persistStop:
			return
		}
	}
}
