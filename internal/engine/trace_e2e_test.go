package engine

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestTraceLifecycleSpans submits one journaled job with a sampled
// traceparent and asserts the kept timeline carries exactly one span per
// lifecycle stage — admission, batch, queue wait, kernel execution,
// journal commit, publish — correctly parented, with the caller's span id
// as the admission span's parent.
func TestTraceLifecycleSpans(t *testing.T) {
	e := New(Options{Workers: 1, JournalDir: t.TempDir(), JournalNoSync: true})
	defer e.Close()
	srv := httptest.NewServer(NewHTTPHandler(e))
	defer srv.Close()

	const (
		traceID    = "0123456789abcdef0123456789abcdef"
		callerSpan = "00f067aa0ba902b7"
	)
	body, _ := json.Marshal(SubmitRequest{Jobs: []JobSpec{{Kind: SynthTwoLevel, Benchmark: "rd53"}}})
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "00-"+traceID+"-"+callerSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(sub.JobIDs) != 1 {
		t.Fatalf("submit: status=%d resp=%+v", resp.StatusCode, sub)
	}
	if sub.TraceID != traceID {
		t.Fatalf("submit trace_id = %q, want %q", sub.TraceID, traceID)
	}

	// FinishTrace runs asynchronously once the batch drains; poll the
	// timeline endpoint until it reports finished.
	var tl trace.Timeline
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/traces/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		tl = trace.Timeline{}
		if r.StatusCode == http.StatusOK {
			if err := json.NewDecoder(r.Body).Decode(&tl); err != nil {
				t.Fatal(err)
			}
		}
		r.Body.Close()
		if tl.Finished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never finished: status=%d timeline=%+v", r.StatusCode, tl)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tl.TraceID != traceID || tl.Error {
		t.Fatalf("timeline = %+v", tl)
	}

	counts := make(map[string]int)
	byName := make(map[string]trace.SpanOut)
	for _, sp := range tl.Spans {
		counts[sp.Name]++
		byName[sp.Name] = sp
	}
	for _, want := range []string{
		"xbar.http.admit",
		"xbar.engine.batch",
		"xbar.engine.queue",
		"xbar.engine.exec.synthesize-two-level",
		"xbar.journal.commit",
		"xbar.engine.publish",
	} {
		if counts[want] != 1 {
			t.Errorf("span %q appears %d times, want exactly 1", want, counts[want])
		}
	}
	if t.Failed() {
		t.Fatalf("timeline spans: %+v", tl.Spans)
	}

	// Parenting: caller -> admit -> batch -> per-job leaves.
	admit, batch := byName["xbar.http.admit"], byName["xbar.engine.batch"]
	if admit.ParentID != callerSpan {
		t.Fatalf("admit parent = %q, want caller span %q", admit.ParentID, callerSpan)
	}
	if batch.ParentID != admit.SpanID {
		t.Fatalf("batch parent = %q, want admit span %q", batch.ParentID, admit.SpanID)
	}
	for _, leaf := range []string{"xbar.engine.queue", "xbar.engine.exec.synthesize-two-level", "xbar.journal.commit", "xbar.engine.publish"} {
		sp := byName[leaf]
		if sp.ParentID != batch.SpanID {
			t.Fatalf("%s parent = %q, want batch span %q", leaf, sp.ParentID, batch.SpanID)
		}
		if sp.JobID != "j00000001" {
			t.Fatalf("%s job id = %q", leaf, sp.JobID)
		}
	}
}
