// Package engine is the parallel crossbar compilation engine: a job-oriented
// layer over the synthesis, defect-mapping, and Monte Carlo kernels that runs
// batches on a bounded worker pool, enforces per-job timeouts and
// cancellation through context.Context, deduplicates identical work through
// a sharded LRU result cache keyed by a canonical function/defect hash, and
// streams per-job results as they finish.
//
// The engine is what cmd/xbarserver serves over HTTP, what memxbar.NewEngine
// exposes as a library API, and what cmd/experiments uses to parallelize the
// paper's table reproductions across cores.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workpool"
)

// Options tunes an engine.
type Options struct {
	// Workers bounds concurrent job execution; zero means GOMAXPROCS.
	Workers int
	// CacheSize is the result cache entry budget: zero means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// CacheShards splits the cache (zero means 16).
	CacheShards int
	// DefaultTimeout bounds each job's execution when the job doesn't set
	// its own; zero means no limit. Cooperative kernels (Monte Carlo)
	// abort at the deadline; the uninterruptible synthesis/map kernels
	// run to completion on their worker and report a late result, so
	// concurrent compute never exceeds Workers.
	DefaultTimeout time.Duration
	// StatusLimit bounds the in-memory job status store used by the HTTP
	// service; the oldest finished jobs are evicted first. Zero means
	// 16384.
	StatusLimit int
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusPending Status = "pending"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
)

// JobStatus is the queryable state of one submitted job.
type JobStatus struct {
	ID     string     `json:"id"`
	Status Status     `json:"status"`
	Result *JobResult `json:"result,omitempty"`
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Workers       int   `json:"workers"`
	Submitted     int64 `json:"submitted"`
	Completed     int64 `json:"completed"`
	CacheHits     int64 `json:"cache_hits"`
	Errors        int64 `json:"errors"`
	MaxConcurrent int64 `json:"max_concurrent"`
	CacheEntries  int   `json:"cache_entries"`
}

// Batch is one submitted group of jobs. Results carries each job's outcome
// as it finishes (no ordering guarantee) and closes when the batch is done;
// IDs lists the assigned job ids in spec order.
type Batch struct {
	IDs     []string
	Results <-chan JobResult
}

// Engine runs job batches on a bounded worker pool.
type Engine struct {
	opt   Options
	queue chan *task
	cache *resultCache

	workerWG sync.WaitGroup
	submitWG sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	status   map[string]*JobStatus
	order    []string
	inflight map[string]*flight

	nextID      atomic.Int64
	stSubmitted atomic.Int64
	stCompleted atomic.Int64
	stCacheHits atomic.Int64
	stErrors    atomic.Int64
	stActive    atomic.Int64
	stMaxActive atomic.Int64
}

// flight is one in-progress execution of a job identity, shared by every
// concurrent job with the same hash (singleflight).
type flight struct {
	done chan struct{}
	res  JobResult
	// ctxFailed marks a failure caused by the leader's own context
	// (cancellation or deadline): followers should retry rather than
	// inherit it. Deterministic job errors are inherited.
	ctxFailed bool
}

type task struct {
	id   string
	spec JobSpec
	ctx  context.Context
	out  chan JobResult
	wg   *sync.WaitGroup
}

// New starts an engine. Callers must Close it to release the workers.
func New(opt Options) *Engine {
	if opt.Workers <= 0 {
		opt.Workers = workpool.DefaultWorkers()
	}
	if opt.StatusLimit <= 0 {
		opt.StatusLimit = 16384
	}
	e := &Engine{
		opt:      opt,
		queue:    make(chan *task, 4*opt.Workers),
		status:   make(map[string]*JobStatus),
		inflight: make(map[string]*flight),
	}
	if opt.CacheSize >= 0 {
		e.cache = newResultCache(opt.CacheSize, opt.CacheShards)
	}
	for i := 0; i < opt.Workers; i++ {
		e.workerWG.Add(1)
		go e.worker()
	}
	return e
}

// Submit enqueues a batch and returns immediately. Jobs not yet started
// when ctx is cancelled complete with the context error in their result;
// running Monte Carlo jobs abort cooperatively. An empty batch is valid
// and yields an immediately closed Results channel.
func (e *Engine) Submit(ctx context.Context, specs []JobSpec) (*Batch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("engine: closed")
	}
	if len(specs) == 0 {
		e.mu.Unlock()
		out := make(chan JobResult)
		close(out)
		return &Batch{Results: out}, nil
	}
	ids := make([]string, len(specs))
	for i := range specs {
		ids[i] = fmt.Sprintf("j%08d", e.nextID.Add(1))
		e.recordLocked(ids[i])
	}
	e.submitWG.Add(1)
	e.mu.Unlock()
	e.stSubmitted.Add(int64(len(specs)))

	out := make(chan JobResult, len(specs))
	var wg sync.WaitGroup
	wg.Add(len(specs))
	go func() {
		defer e.submitWG.Done()
		for i := range specs {
			t := &task{id: ids[i], spec: specs[i], ctx: ctx, out: out, wg: &wg}
			select {
			case e.queue <- t:
			case <-ctx.Done():
				e.finish(t, errResult(t, ctx.Err()))
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return &Batch{IDs: ids, Results: out}, nil
}

// Run submits the batch and blocks until every job finishes (or is
// cancelled), returning results in spec order.
func (e *Engine) Run(ctx context.Context, specs []JobSpec) ([]JobResult, error) {
	b, err := e.Submit(ctx, specs)
	if err != nil {
		return nil, err
	}
	pos := make(map[string]int, len(b.IDs))
	for i, id := range b.IDs {
		pos[id] = i
	}
	out := make([]JobResult, len(specs))
	for r := range b.Results {
		out[pos[r.ID]] = r
	}
	return out, nil
}

// Job reports the status of a submitted job by id.
func (e *Engine) Job(id string) (JobStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.status[id]
	if !ok {
		return JobStatus{}, false
	}
	cp := *st
	if st.Result != nil {
		r := *st.Result
		cp.Result = &r
	}
	return cp, true
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:       e.opt.Workers,
		Submitted:     e.stSubmitted.Load(),
		Completed:     e.stCompleted.Load(),
		CacheHits:     e.stCacheHits.Load(),
		Errors:        e.stErrors.Load(),
		MaxConcurrent: e.stMaxActive.Load(),
	}
	if e.cache != nil {
		s.CacheEntries = e.cache.Len()
	}
	return s
}

// Close stops accepting work, waits for queued jobs to drain, and releases
// the workers. Safe to call more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.submitWG.Wait()
	close(e.queue)
	e.workerWG.Wait()
}

// ---------------------------------------------------------------------------
// Internals.

func (e *Engine) worker() {
	defer e.workerWG.Done()
	for t := range e.queue {
		a := e.stActive.Add(1)
		for {
			p := e.stMaxActive.Load()
			if a <= p || e.stMaxActive.CompareAndSwap(p, a) {
				break
			}
		}
		e.setRunning(t.id)
		res := e.runTask(t)
		e.stActive.Add(-1)
		e.finish(t, res)
	}
}

// runTask executes one job: deadline setup, cache lookup, singleflight
// dedup, then the kernel.
func (e *Engine) runTask(t *task) JobResult {
	ctx := t.ctx
	if d := t.spec.timeout(e.opt.DefaultTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	key := t.spec.hashKey()
	for {
		if err := ctx.Err(); err != nil {
			return errResult(t, err)
		}
		if e.cache != nil {
			if r, ok := e.cache.Get(key); ok {
				e.stCacheHits.Add(1)
				r.ID, r.CacheHit, r.Elapsed = t.id, true, 0
				return r
			}
		}
		e.mu.Lock()
		fl, ok := e.inflight[key]
		if ok {
			// Identical work is already running on another worker: wait
			// for it instead of computing it twice.
			e.mu.Unlock()
			select {
			case <-fl.done:
				if fl.res.Err == "" {
					e.stCacheHits.Add(1)
					r := fl.res
					r.ID, r.CacheHit, r.Elapsed = t.id, true, 0
					return r
				}
				if fl.ctxFailed {
					// The leader died of its own cancellation or
					// deadline; retry through the cache/flight path so
					// exactly one follower re-runs the kernel.
					continue
				}
				// Deterministic job error: same spec, same failure.
				r := fl.res
				r.ID = t.id
				return r
			case <-ctx.Done():
				return errResult(t, ctx.Err())
			}
		}
		fl = &flight{done: make(chan struct{})}
		e.inflight[key] = fl
		e.mu.Unlock()
		// The leader runs the kernel on this worker goroutine, so
		// concurrent compute never exceeds the Workers cap: cancellation
		// and deadlines reach cooperative kernels (Monte Carlo) through
		// ctx, while the uninterruptible synthesis/map kernels run to
		// completion and report their (possibly late) result.
		fl.res = Execute(ctx, t.spec)
		fl.ctxFailed = fl.res.Err != "" && ctx.Err() != nil
		if fl.res.Err == "" && e.cache != nil {
			e.cache.Put(key, fl.res)
		}
		e.mu.Lock()
		delete(e.inflight, key)
		e.mu.Unlock()
		close(fl.done)
		r := fl.res
		r.ID = t.id
		return r
	}
}

func (e *Engine) finish(t *task, r JobResult) {
	if r.Err != "" {
		e.stErrors.Add(1)
	}
	e.stCompleted.Add(1)
	e.mu.Lock()
	if st, ok := e.status[t.id]; ok {
		st.Status = StatusDone
		rc := r
		st.Result = &rc
	}
	e.mu.Unlock()
	t.out <- r
	t.wg.Done()
}

func (e *Engine) setRunning(id string) {
	e.mu.Lock()
	if st, ok := e.status[id]; ok && st.Status == StatusPending {
		st.Status = StatusRunning
	}
	e.mu.Unlock()
}

// recordLocked registers a pending job in the status store and evicts the
// oldest finished jobs beyond the limit. Caller holds e.mu.
func (e *Engine) recordLocked(id string) {
	e.status[id] = &JobStatus{ID: id, Status: StatusPending}
	e.order = append(e.order, id)
	for len(e.order) > e.opt.StatusLimit {
		oldest := e.order[0]
		st, ok := e.status[oldest]
		if ok && st.Status != StatusDone {
			break // never drop live jobs; the store shrinks as they finish
		}
		delete(e.status, oldest)
		e.order = e.order[1:]
	}
}

func errResult(t *task, err error) JobResult {
	return JobResult{ID: t.id, Kind: t.spec.Kind, Err: err.Error()}
}
