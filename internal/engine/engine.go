// Package engine is the parallel crossbar compilation engine: a job-oriented
// layer over the synthesis, defect-mapping, and Monte Carlo kernels that runs
// batches on a bounded worker pool, enforces per-job timeouts and
// cancellation through context.Context, deduplicates identical work through
// a sharded LRU result cache keyed by a canonical function/defect hash, and
// streams per-job results as they finish.
//
// The engine is what cmd/xbarserver serves over HTTP, what memxbar.NewEngine
// exposes as a library API, and what cmd/experiments uses to parallelize the
// paper's table reproductions across cores.
package engine

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/trace"
	"repro/internal/workpool"
)

// Options tunes an engine.
type Options struct {
	// Workers bounds concurrent job execution; zero means GOMAXPROCS.
	Workers int
	// CacheSize is the result cache entry budget: zero means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// CacheShards splits the cache (zero means 16).
	CacheShards int
	// DefaultTimeout bounds each job's execution when the job doesn't set
	// its own; zero means no limit. Cooperative kernels (Monte Carlo)
	// abort at the deadline; the uninterruptible synthesis/map kernels
	// run to completion on their worker and report a late result, so
	// concurrent compute never exceeds Workers.
	DefaultTimeout time.Duration
	// StatusLimit bounds the in-memory job status store used by the HTTP
	// service; the oldest finished jobs are evicted first. Zero means
	// 16384.
	StatusLimit int
	// CacheFile, when non-empty, makes the result cache persistent: the
	// snapshot is loaded at New (warm start), written every
	// CachePersistInterval while the engine runs, and written a final time
	// at Close. Keys are the canonical spec hashes, so a reloaded cache
	// answers exactly the jobs it would have answered before the restart.
	CacheFile string
	// CachePersistInterval is the background snapshot period when CacheFile
	// is set: zero means DefaultCachePersistInterval, negative disables the
	// background loop (the cache is still saved at Close).
	CachePersistInterval time.Duration
	// MaxQueuedJobs bounds jobs admitted but not yet finished across all
	// batches; Submit fails with ErrOverloaded (retryable) beyond it, and
	// with ErrBatchTooLarge (not retryable) for a single batch bigger than
	// the limit. Zero means unlimited.
	MaxQueuedJobs int
	// MaxBatches bounds concurrently open (not fully finished) batches;
	// Submit fails with ErrOverloaded beyond it. Zero means unlimited.
	MaxBatches int
	// JournalDir, when non-empty, makes finished results durable in a
	// segmented write-ahead log under this directory: every cache insert
	// is group-committed to the journal before the result is published,
	// New recovers by replaying the journal (tolerating a torn final
	// record), and the log is compacted in the background. With a journal
	// the CacheFile snapshot is just a warm-start checkpoint, not the
	// source of truth.
	JournalDir string
	// JournalSegmentBytes rotates journal segments past this size; zero
	// means the journal package default (4 MiB).
	JournalSegmentBytes int64
	// JournalCompactInterval is the background compaction period; zero
	// means DefaultJournalCompactInterval, negative disables background
	// compaction.
	JournalCompactInterval time.Duration
	// JournalMaxAge drops journal records older than this at compaction;
	// zero keeps all. Results evicted this way survive only in the cache
	// snapshot (if configured) until the process restarts.
	JournalMaxAge time.Duration
	// JournalMaxRecords keeps only the newest this-many live journal
	// records at compaction; zero keeps all.
	JournalMaxRecords int
	// JournalNoSync skips the per-commit fsync (tests and benchmarks
	// only; production journals must sync).
	JournalNoSync bool
	// FollowPeer, when non-empty, runs this engine as a follower of the
	// peer xbarserver at this base URL: the peer's journal is pulled over
	// GET /v1/journal/tail and replayed into the local cache (and local
	// journal), so this instance warm-starts from the peer and
	// continuously mirrors its results.
	FollowPeer string
	// FollowPollInterval paces follower retries when the peer is down (the
	// base of the pull loop's capped exponential backoff); zero means
	// DefaultFollowPollInterval.
	FollowPollInterval time.Duration
	// ClusterSelf, when non-empty, runs this engine as a member of a
	// self-healing cluster, advertised to peers at this base URL. Members
	// elect a leader through lease records in the journal: followers mirror
	// the leader's journal exactly as with FollowPeer, but when the
	// leader's lease expires the follower with the highest replicated
	// cursor promotes itself and the rest of the fleet re-aims at it.
	// Cluster mode wants JournalDir set — the journal is both the ballot
	// box and the replication feed.
	ClusterSelf string
	// ClusterPeers lists the other members' base URLs (excluding self).
	ClusterPeers []string
	// LeaseDuration is how long a follower tolerates silence from the
	// leader before starting an election; the leader renews its lease at
	// half this period. Zero means DefaultLeaseDuration.
	LeaseDuration time.Duration
	// HeartbeatInterval paces the election loop (lease renewal, peer state
	// polls, expiry checks); zero means LeaseDuration/3.
	HeartbeatInterval time.Duration
	// ClientRPS enables per-client submission quotas in the HTTP layer:
	// each X-Client-ID may submit this many batches per second sustained
	// (burst up to ClientBurst) before getting 429 + Retry-After without
	// consuming queue slots. Zero disables per-client quotas.
	ClientRPS float64
	// ClientBurst is the per-client burst allowance; zero means the
	// larger of 1 and one second's worth of ClientRPS.
	ClientBurst int
	// TraceSampleRate is the probability an unremarkable finished trace is
	// kept in the span store (errored and slow-tail traces are always
	// kept). Zero means the trace package default (0.10); negative keeps
	// only errored, slow-tail, and explicitly sampled traces.
	TraceSampleRate float64
}

// ErrOverloaded is reported (wrapped) by Submit when admission control
// rejects a batch that could be admitted later: the caller should back off
// and retry. The HTTP layer maps it to 429 Too Many Requests with a
// Retry-After header.
var ErrOverloaded = errors.New("engine: overloaded")

// ErrBatchTooLarge is reported (wrapped) by Submit for a batch bigger than
// MaxQueuedJobs: such a batch can never be admitted, so retrying is
// pointless — split it instead. The HTTP layer maps it to 413.
var ErrBatchTooLarge = errors.New("engine: batch exceeds queue capacity")

// Status is a job's lifecycle state.
type Status string

const (
	StatusPending Status = "pending"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
)

// JobStatus is the queryable state of one submitted job.
type JobStatus struct {
	ID     string     `json:"id"`
	Status Status     `json:"status"`
	Result *JobResult `json:"result,omitempty"`
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Workers       int   `json:"workers"`
	Submitted     int64 `json:"submitted"`
	Completed     int64 `json:"completed"`
	CacheHits     int64 `json:"cache_hits"`
	Errors        int64 `json:"errors"`
	MaxConcurrent int64 `json:"max_concurrent"`
	CacheEntries  int   `json:"cache_entries"`
	// Deduped counts jobs coalesced onto an identical in-flight execution
	// (they also count as CacheHits when the leader succeeds).
	Deduped int64 `json:"deduped,omitempty"`
	// Rejected counts batch submissions refused by admission control
	// (overload and batch-too-large); QuotaRejected counts submissions the
	// HTTP layer refused for a per-client quota before they reached
	// admission.
	Rejected      int64 `json:"rejected,omitempty"`
	QuotaRejected int64 `json:"quota_rejected,omitempty"`
	// QueueDepth and OpenBatches are the live admission-control levels.
	QueueDepth  int `json:"queue_depth,omitempty"`
	OpenBatches int `json:"open_batches,omitempty"`
	// Replicated counts results applied from a followed peer's journal.
	Replicated int64 `json:"replicated,omitempty"`
	// JournalRecords and JournalSeq describe the durable job journal when
	// Options.JournalDir is set: live records on disk and the newest
	// committed sequence number (the follower cursor high-water mark).
	JournalRecords int    `json:"journal_records,omitempty"`
	JournalSeq     uint64 `json:"journal_seq,omitempty"`
}

// Batch is one submitted group of jobs. Results carries each job's outcome
// as it finishes (no ordering guarantee) and closes when the batch is done;
// IDs lists the assigned job ids in spec order. ID names the batch for the
// HTTP streaming endpoint (GET /v1/batches/{id}/events).
type Batch struct {
	ID      string
	IDs     []string
	Results <-chan JobResult
}

// Engine runs job batches on a bounded worker pool.
type Engine struct {
	opt     Options
	queue   chan *task
	cache   *resultCache
	journal *journal.Journal
	met     *engineMetrics
	traces  *trace.Store

	workerWG sync.WaitGroup
	submitWG sync.WaitGroup

	mu          sync.Mutex
	closed      bool
	status      map[string]*JobStatus
	order       []string
	inflight    map[string]*flight
	batches     map[string]*batchState
	batchOrder  []string
	openBatches int // batches submitted but not fully finished
	queuedJobs  int // jobs admitted but not yet finished

	persistStop chan struct{}
	persistWG   sync.WaitGroup

	compactStop chan struct{}
	compactWG   sync.WaitGroup

	followCancel func() // cancels the follower's context; nil when not following
	followWG     sync.WaitGroup

	cluster        *clusterNode // lease-based election state; nil without ClusterSelf
	recoveredLease *leaseClaim  // newest lease record seen during journal replay

	streamStop chan struct{} // guarded by mu; closed and replaced by StopStreams

	nextID        atomic.Int64
	nextBatch     atomic.Int64
	stSubmitted   atomic.Int64
	stCompleted   atomic.Int64
	stCacheHits   atomic.Int64
	stErrors      atomic.Int64
	stActive      atomic.Int64
	stMaxActive   atomic.Int64
	stReplicated  atomic.Int64
	stReplCursor  atomic.Uint64
	stDeduped     atomic.Int64
	stRejected    atomic.Int64
	stQuotaReject atomic.Int64
}

// flight is one in-progress execution of a job identity, shared by every
// concurrent job with the same hash (singleflight).
type flight struct {
	done chan struct{}
	res  JobResult
	// ctxFailed marks a failure caused by the leader's own context
	// (cancellation or deadline): followers should retry rather than
	// inherit it. Deterministic job errors are inherited.
	ctxFailed bool
}

type task struct {
	id    string
	spec  JobSpec
	ctx   context.Context
	out   chan JobResult
	wg    *sync.WaitGroup
	batch *batchState
	enq   time.Time // when the task entered the queue (queue-wait metric)
}

// traceSC is the batch span context per-job spans parent under, or the
// zero context for a batch submitted before tracing initialized.
func (t *task) traceSC() trace.SpanContext {
	if t.batch == nil {
		return trace.SpanContext{}
	}
	return t.batch.sc
}

// traceID is the pre-rendered trace id string for metric exemplars ("" for
// an untraced batch).
func (t *task) traceID() string {
	if t.batch == nil {
		return ""
	}
	return t.batch.traceID
}

// New starts an engine. Callers must Close it to release the workers.
func New(opt Options) *Engine {
	if opt.Workers <= 0 {
		opt.Workers = workpool.DefaultWorkers()
	}
	if opt.StatusLimit <= 0 {
		opt.StatusLimit = 16384
	}
	e := &Engine{
		opt:        opt,
		queue:      make(chan *task, 4*opt.Workers),
		status:     make(map[string]*JobStatus),
		inflight:   make(map[string]*flight),
		batches:    make(map[string]*batchState),
		streamStop: make(chan struct{}),
		met:        newEngineMetrics(),
		traces:     trace.NewStore(trace.Options{SampleRate: opt.TraceSampleRate}),
	}
	e.registerEngineGauges()
	if opt.CacheSize >= 0 {
		e.cache = newResultCache(opt.CacheSize, opt.CacheShards)
	}
	if e.cache != nil && opt.CacheFile != "" {
		e.loadCacheFile()
		interval := opt.CachePersistInterval
		if interval == 0 {
			interval = DefaultCachePersistInterval
		}
		if interval > 0 {
			e.persistStop = make(chan struct{})
			e.persistWG.Add(1)
			go e.persistLoop(interval)
		}
	}
	// The journal replays after the snapshot load: its records are newer
	// than any checkpoint, and bit-identical replays make the overlay
	// idempotent where they overlap.
	if e.cache != nil && opt.JournalDir != "" {
		e.openJournal()
	}
	if opt.ClusterSelf != "" {
		e.startCluster()
	}
	if e.cache != nil && (opt.FollowPeer != "" || e.clusterFollowing()) {
		e.startFollower()
	}
	if e.cache == nil && (opt.JournalDir != "" || opt.FollowPeer != "") {
		// Journal and follower state both live in the result cache; with
		// caching disabled they would be write-only. Say so loudly rather
		// than let an operator believe results are durable.
		log.Printf("engine: caching disabled (CacheSize < 0): ignoring JournalDir=%q FollowPeer=%q — results will NOT be durable or mirrored",
			opt.JournalDir, opt.FollowPeer)
	}
	for i := 0; i < opt.Workers; i++ {
		e.workerWG.Add(1)
		go e.worker()
	}
	return e
}

// Submit enqueues a batch and returns immediately. Jobs not yet started
// when ctx is cancelled complete with the context error in their result;
// running Monte Carlo jobs abort cooperatively. An empty batch is valid
// and yields an immediately closed Results channel. When Options bounds
// admission (MaxQueuedJobs, MaxBatches), over-limit submissions fail with
// an error wrapping ErrOverloaded instead of queuing without bound.
func (e *Engine) Submit(ctx context.Context, specs []JobSpec) (*Batch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("engine: closed")
	}
	if len(specs) == 0 {
		e.mu.Unlock()
		out := make(chan JobResult)
		close(out)
		return &Batch{Results: out}, nil
	}
	if e.opt.MaxQueuedJobs > 0 && len(specs) > e.opt.MaxQueuedJobs {
		e.mu.Unlock()
		e.rejected("batch_too_large")
		return nil, fmt.Errorf("%w: batch of %d jobs > queue limit %d (split the batch)",
			ErrBatchTooLarge, len(specs), e.opt.MaxQueuedJobs)
	}
	if e.opt.MaxBatches > 0 && e.openBatches >= e.opt.MaxBatches {
		e.mu.Unlock()
		e.rejected("overloaded")
		return nil, fmt.Errorf("%w: %d batches open (limit %d)",
			ErrOverloaded, e.opt.MaxBatches, e.opt.MaxBatches)
	}
	if e.opt.MaxQueuedJobs > 0 && e.queuedJobs+len(specs) > e.opt.MaxQueuedJobs {
		queued := e.queuedJobs
		e.mu.Unlock()
		e.rejected("overloaded")
		return nil, fmt.Errorf("%w: %d jobs queued and batch adds %d (limit %d)",
			ErrOverloaded, queued, len(specs), e.opt.MaxQueuedJobs)
	}
	ids := make([]string, len(specs))
	for i := range specs {
		ids[i] = fmt.Sprintf("j%08d", e.nextID.Add(1))
		e.recordLocked(ids[i])
	}
	bs := newBatchState(fmt.Sprintf("b%08d", e.nextBatch.Add(1)), ids)
	// Every batch gets a trace: the caller's span context (HTTP admission,
	// gateway propagation) when one rides in on ctx, a fresh root
	// otherwise. The batch span parents every per-job lifecycle span.
	parent := trace.FromContext(ctx)
	if !parent.Valid() {
		parent = trace.SpanContext{Trace: trace.NewTraceID()}
	}
	bs.sc = parent.Child()
	bs.parent = parent.Span
	bs.traceID = bs.sc.Trace.String()
	bs.start = time.Now()
	e.registerBatchLocked(bs)
	e.openBatches++
	e.queuedJobs += len(specs)
	e.submitWG.Add(1)
	e.mu.Unlock()
	e.stSubmitted.Add(int64(len(specs)))

	out := make(chan JobResult, len(specs))
	var wg sync.WaitGroup
	wg.Add(len(specs))
	go func() {
		defer e.submitWG.Done()
		for i := range specs {
			t := &task{id: ids[i], spec: specs[i], ctx: ctx, out: out, wg: &wg, batch: bs, enq: time.Now()}
			select {
			case e.queue <- t:
			case <-ctx.Done():
				e.finish(t, errResult(t, ctx.Err()))
			}
		}
	}()
	go func() {
		wg.Wait()
		e.mu.Lock()
		e.openBatches--
		e.mu.Unlock()
		close(out)
		end := time.Now()
		failed := bs.failed()
		e.traces.Record(&trace.Span{
			Trace:  bs.sc.Trace,
			ID:     bs.sc.Span,
			Parent: bs.parent,
			Name:   spanBatch,
			Start:  bs.start.UnixNano(),
			End:    end.UnixNano(),
			Detail: bs.id,
		})
		e.traces.FinishTrace(bs.sc, bs.start, end, failed)
	}()
	return &Batch{ID: bs.id, IDs: ids, Results: out}, nil
}

// Run submits the batch and blocks until every job finishes (or is
// cancelled), returning results in spec order.
func (e *Engine) Run(ctx context.Context, specs []JobSpec) ([]JobResult, error) {
	b, err := e.Submit(ctx, specs)
	if err != nil {
		return nil, err
	}
	pos := make(map[string]int, len(b.IDs))
	for i, id := range b.IDs {
		pos[id] = i
	}
	out := make([]JobResult, len(specs))
	for r := range b.Results {
		out[pos[r.ID]] = r
	}
	return out, nil
}

// Job reports the status of a submitted job by id.
func (e *Engine) Job(id string) (JobStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.status[id]
	if !ok {
		return JobStatus{}, false
	}
	cp := *st
	if st.Result != nil {
		r := *st.Result
		cp.Result = &r
	}
	return cp, true
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:       e.opt.Workers,
		Submitted:     e.stSubmitted.Load(),
		Completed:     e.stCompleted.Load(),
		CacheHits:     e.stCacheHits.Load(),
		Errors:        e.stErrors.Load(),
		MaxConcurrent: e.stMaxActive.Load(),
		Replicated:    e.stReplicated.Load(),
		Deduped:       e.stDeduped.Load(),
		Rejected:      e.stRejected.Load(),
		QuotaRejected: e.stQuotaReject.Load(),
	}
	if e.cache != nil {
		s.CacheEntries = e.cache.Len()
	}
	e.mu.Lock()
	s.QueueDepth = e.queuedJobs
	s.OpenBatches = e.openBatches
	e.mu.Unlock()
	s.JournalRecords, s.JournalSeq = e.journalStats()
	return s
}

// Ready reports whether the engine can currently take and durably serve
// work: nil when it is accepting submissions and its journal (if
// configured) is writable. A draining engine (Close in progress) and one
// whose journal went read-only (failed rollback) are unready — alive, but
// to be taken out of load-balancer rotation. GET /readyz maps this to
// 200/503; liveness stays on /healthz, which answers as long as the
// process serves HTTP at all.
func (e *Engine) Ready() error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return errors.New("engine: draining")
	}
	if e.journal != nil {
		if err := e.journal.Healthy(); err != nil {
			return fmt.Errorf("journal not writable: %w", err)
		}
	}
	return nil
}

// Close stops accepting work, waits for queued jobs to drain, releases the
// workers, flushes and closes the journal, and — when Options.CacheFile is
// set — writes a final cache snapshot. Safe to call more than once. Use
// CloseTimeout when a stuck job must not be allowed to hang process exit.
func (e *Engine) Close() { e.CloseTimeout(0) }

// CloseTimeout is Close with a bound on the drain: when the queued jobs
// have not finished within d (zero means wait forever), the remaining work
// is abandoned — the journal is still flushed and closed and the final
// cache snapshot still written, so every result computed before the
// timeout stays durable. Safe to call more than once.
func (e *Engine) CloseTimeout(d time.Duration) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.StopStreams()
	// The cluster loop stops before the follower: it is the only other
	// caller of startFollower/stopFollower, so once it has exited the
	// follower teardown below cannot race a failover restarting it.
	e.stopCluster()
	e.stopFollower()
	drained := make(chan struct{})
	go func() {
		e.submitWG.Wait()
		close(e.queue)
		e.workerWG.Wait()
		close(drained)
	}()
	if d > 0 {
		select {
		case <-drained:
		case <-time.After(d):
			log.Printf("engine: close timed out after %v with jobs still running; abandoning the drain", d)
		}
	} else {
		<-drained
	}
	if e.persistStop != nil {
		close(e.persistStop)
		e.persistWG.Wait()
	}
	if e.compactStop != nil {
		close(e.compactStop)
		e.compactWG.Wait()
	}
	if e.journal != nil {
		// Abandoned workers that finish later get ErrClosed from their
		// journal append (logged); their results were never published as
		// durable.
		if err := e.journal.Close(); err != nil {
			log.Printf("engine: closing journal: %v", err)
		}
	}
	if err := e.saveCacheFile(); err != nil {
		log.Printf("engine: saving cache at close: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Internals.

func (e *Engine) worker() {
	defer e.workerWG.Done()
	for t := range e.queue {
		a := e.stActive.Add(1)
		for {
			p := e.stMaxActive.Load()
			if a <= p || e.stMaxActive.CompareAndSwap(p, a) {
				break
			}
		}
		picked := time.Now()
		e.met.observeQueueWait(t.spec.Kind, picked.Sub(t.enq), t.traceID())
		if sc := t.traceSC(); sc.Valid() {
			e.traces.Record(&trace.Span{
				Trace:  sc.Trace,
				ID:     trace.NewSpanID(),
				Parent: sc.Span,
				Name:   spanQueue,
				Start:  t.enq.UnixNano(),
				End:    picked.UnixNano(),
				JobID:  t.id,
				Kind:   string(t.spec.Kind),
			})
		}
		e.setRunning(t.id)
		res := e.runTask(t)
		e.stActive.Add(-1)
		e.finish(t, res)
	}
}

// runTask executes one job: deadline setup, cache lookup, singleflight
// dedup, then the kernel.
func (e *Engine) runTask(t *task) JobResult {
	ctx := t.ctx
	if d := t.spec.timeout(e.opt.DefaultTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	key := t.spec.hashKey()
	for {
		if err := ctx.Err(); err != nil {
			return errResult(t, err)
		}
		if e.cache != nil {
			if r, ok := e.cache.Get(key); ok {
				e.stCacheHits.Add(1)
				e.met.cacheHits.Inc()
				r.ID, r.CacheHit, r.Elapsed = t.id, true, 0
				e.recordJobSpan(t, spanCache, time.Now(), time.Now(), "")
				return r
			}
		}
		e.mu.Lock()
		fl, ok := e.inflight[key]
		if ok {
			// Identical work is already running on another worker: wait
			// for it instead of computing it twice.
			e.mu.Unlock()
			e.stDeduped.Add(1)
			e.met.dedup.Inc()
			joinStart := time.Now()
			select {
			case <-fl.done:
				e.recordJobSpan(t, spanDedup, joinStart, time.Now(), fl.res.Err)
				if fl.res.Err == "" {
					e.stCacheHits.Add(1)
					e.met.cacheHits.Inc()
					r := fl.res
					r.ID, r.CacheHit, r.Elapsed = t.id, true, 0
					return r
				}
				if fl.ctxFailed {
					// The leader died of its own cancellation or
					// deadline; retry through the cache/flight path so
					// exactly one follower re-runs the kernel.
					continue
				}
				// Deterministic job error: same spec, same failure.
				r := fl.res
				r.ID = t.id
				return r
			case <-ctx.Done():
				return errResult(t, ctx.Err())
			}
		}
		fl = &flight{done: make(chan struct{})}
		e.inflight[key] = fl
		e.mu.Unlock()
		e.met.cacheMisses.Inc()
		// The leader runs the kernel on this worker goroutine, so
		// concurrent compute never exceeds the Workers cap: cancellation
		// and deadlines reach cooperative kernels (Monte Carlo) through
		// ctx, while the uninterruptible synthesis/map kernels run to
		// completion and report their (possibly late) result.
		execStart := time.Now()
		fl.res = Execute(ctx, t.spec)
		e.recordJobSpan(t, execSpanName(t.spec.Kind), execStart, time.Now(), fl.res.Err)
		e.met.observeJob(t.spec.Kind, fl.res.Elapsed, t.traceID())
		fl.ctxFailed = fl.res.Err != "" && ctx.Err() != nil
		if fl.res.Err == "" && e.cache != nil {
			// Durable before published: the journal fsync completes before
			// the result becomes visible anywhere — including the cache,
			// where a concurrent identical job could otherwise serve it to
			// a client ahead of the commit.
			if e.journal != nil {
				commitStart := time.Now()
				e.journalAppend(key, fl.res)
				e.recordJobSpan(t, spanJournal, commitStart, time.Now(), "")
			}
			e.cache.Put(key, fl.res)
		}
		e.mu.Lock()
		delete(e.inflight, key)
		e.mu.Unlock()
		close(fl.done)
		r := fl.res
		r.ID = t.id
		return r
	}
}

func (e *Engine) finish(t *task, r JobResult) {
	if r.Err != "" {
		e.stErrors.Add(1)
	}
	e.stCompleted.Add(1)
	e.met.countJob(t.spec.Kind, r.Err)
	e.mu.Lock()
	if st, ok := e.status[t.id]; ok {
		st.Status = StatusDone
		rc := r
		st.Result = &rc
	}
	e.queuedJobs--
	e.mu.Unlock()
	if t.batch != nil {
		pubStart := time.Now()
		t.batch.publish(r)
		e.recordJobSpan(t, spanPublish, pubStart, time.Now(), r.Err)
	}
	t.out <- r
	t.wg.Done()
}

// recordJobSpan records one per-job lifecycle span under the batch span.
// A no-op for untraced batches (library submissions before tracing, tests
// that build tasks by hand).
func (e *Engine) recordJobSpan(t *task, name trace.Name, start, end time.Time, errStr string) {
	sc := t.traceSC()
	if !sc.Valid() {
		return
	}
	e.traces.Record(&trace.Span{
		Trace:  sc.Trace,
		ID:     trace.NewSpanID(),
		Parent: sc.Span,
		Name:   name,
		Start:  start.UnixNano(),
		End:    end.UnixNano(),
		JobID:  t.id,
		Kind:   string(t.spec.Kind),
		Err:    errStr,
	})
}

func (e *Engine) setRunning(id string) {
	e.mu.Lock()
	if st, ok := e.status[id]; ok && st.Status == StatusPending {
		st.Status = StatusRunning
	}
	e.mu.Unlock()
}

// recordLocked registers a pending job in the status store and evicts the
// oldest finished jobs beyond the limit. Live jobs are never dropped, but
// they don't stall eviction either: a stuck job at the head of the order
// is skipped and the finished jobs behind it are evicted, so the store
// stays bounded under sustained traffic. Caller holds e.mu.
func (e *Engine) recordLocked(id string) {
	e.status[id] = &JobStatus{ID: id, Status: StatusPending}
	e.order = append(e.order, id)
	e.order = pruneOrder(e.order, e.opt.StatusLimit,
		func(id string) bool {
			st, ok := e.status[id]
			return !ok || st.Status == StatusDone
		},
		func(id string) { delete(e.status, id) })
}

// pruneOrder is the shared eviction loop of the bounded insertion-ordered
// stores (job statuses, batch registry): entries beyond limit are evicted
// oldest first, but only when evictable reports they are finished — live
// entries are kept (and skipped, so one stuck entry at the head can't pin
// the store). The usual case — a finished head — stays O(1); compaction
// only runs when live entries sit in front of evictable ones.
func pruneOrder(order []string, limit int, evictable func(id string) bool, evict func(id string)) []string {
	excess := len(order) - limit
	for excess > 0 && evictable(order[0]) {
		evict(order[0])
		order = order[1:]
		excess--
	}
	if excess <= 0 {
		return order
	}
	kept := order[:0]
	for _, id := range order {
		if excess > 0 && evictable(id) {
			evict(id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	return kept
}

// rejected books one admission-control refusal under both counter systems
// (Stats and /metrics).
func (e *Engine) rejected(reason string) {
	e.stRejected.Add(1)
	e.met.rejects.With(reason).Inc()
}

func errResult(t *task, err error) JobResult {
	return JobResult{ID: t.id, Kind: t.spec.Kind, Err: err.Error()}
}
