package engine

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
)

// DefaultLeaseDuration is the leader lease when Options.LeaseDuration is
// zero: a follower that has had no proof of leader life for this long
// starts an election.
const DefaultLeaseDuration = 3 * time.Second

// Cluster roles reported by ClusterState.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
	// RoleSingle is a member running without cluster options: it is its own
	// source of truth, but does not participate in elections.
	RoleSingle = "single"
)

// ClusterState is the GET /v1/cluster/state payload: one member's view of
// the fleet. The gateway polls it to discover the current leader after a
// failover; candidates poll it during elections to compare replication
// progress and to spot an already-promoted peer.
type ClusterState struct {
	// Self is this member's advertised base URL (Options.ClusterSelf).
	Self string `json:"self"`
	// Role is RoleLeader, RoleFollower, or RoleSingle.
	Role string `json:"role"`
	// Epoch is the leadership epoch: bumped on every promotion, it fences
	// a deposed leader — any member observing a claim with a higher epoch
	// (or an equal epoch from a greater URL) yields to it.
	Epoch uint64 `json:"epoch"`
	// Leader is the member this node believes holds the lease.
	Leader string `json:"leader,omitempty"`
	// LastSeq is the local journal's newest committed sequence number.
	LastSeq uint64 `json:"last_seq"`
	// ReplCursor is the highest leader sequence number this member has
	// replicated (leader sequence space, so candidates are comparable:
	// the follower with the highest cursor lost the least).
	ReplCursor uint64 `json:"repl_cursor"`
	// LeaseAgeMS is how stale the lease is, in milliseconds: for a leader,
	// time since it last renewed; for a follower, time since the last proof
	// of leader life. A follower whose LeaseAgeMS exceeds the lease
	// duration is about to call an election.
	LeaseAgeMS int64 `json:"lease_age_ms"`
	// Peers lists the other members this node coordinates with.
	Peers []string `json:"peers,omitempty"`
}

// leaseClaim is the JSON payload of a lease meta-record (journal key
// journal.MetaKey(journal.LeaseKind)). The leader appends one at promotion
// and on every renewal; the record rides the replication feed, so followers
// both learn the claim and get a liveness heartbeat that wakes their
// long-poll, and a restarting member recovers the last known leadership
// from its own journal replay.
type leaseClaim struct {
	Epoch  uint64 `json:"epoch"`
	Leader string `json:"leader"`
	Time   int64  `json:"time"` // unix ns, informational
}

// clusterNode runs one member's side of lease-based leader election. The
// design leans entirely on machinery the engine already has:
//
//   - The journal is the ballot box: leadership is asserted by appending a
//     lease meta-record, which replicates to followers through the ordinary
//     tail feed. The journal's directory flock means at most one process
//     can assert through a given journal, and the hash chain makes a forged
//     or diverged history detectable at replication time.
//   - The follower's tail pull doubles as the failure detector: every
//     successful pull (the leader answers, even empty) is proof of life.
//     The leader renews its lease every LeaseDuration/2, and each renewal
//     is a journal commit that wakes followers' long-polls, so a healthy
//     leader is never silent for longer than half a lease.
//   - On lease expiry a follower polls its peers' /v1/cluster/state: if a
//     peer already promoted (same or newer epoch), it adopts that leader;
//     otherwise, if no reachable peer has replicated further (ReplCursor,
//     ties broken by the greater URL), it promotes itself — stops
//     following, bumps the epoch, appends a lease record, and becomes the
//     replication source. A deposed leader that comes back observes the
//     higher epoch on its next peer poll (or in a replicated lease record)
//     and demotes itself back to mirroring.
type clusterNode struct {
	e         *Engine
	self      string
	peers     []string
	lease     time.Duration
	heartbeat time.Duration
	client    *http.Client

	mu          sync.Mutex
	epoch       uint64
	leader      string
	isLeader    bool
	lastContact time.Time // leader: last renewal; follower: last proof of leader life

	stop chan struct{}
	wg   sync.WaitGroup
}

// startCluster wires the cluster node from Options (ClusterSelf is set) and
// any leadership state recovered from the journal replay, then starts the
// election loop.
func (e *Engine) startCluster() {
	lease := e.opt.LeaseDuration
	if lease <= 0 {
		lease = DefaultLeaseDuration
	}
	hb := e.opt.HeartbeatInterval
	if hb <= 0 {
		hb = lease / 3
	}
	c := &clusterNode{
		e:         e,
		self:      e.opt.ClusterSelf,
		peers:     append([]string(nil), e.opt.ClusterPeers...),
		lease:     lease,
		heartbeat: hb,
		client:    &http.Client{Timeout: hb},
		stop:      make(chan struct{}),
	}
	sort.Strings(c.peers)
	c.leader = e.opt.FollowPeer
	if rl := e.recoveredLease; rl != nil {
		// The local journal knows who last held the lease. If that was us,
		// resume leading (a usurper with a higher epoch will depose us on
		// the first peer poll); otherwise mirror the recorded leader.
		c.epoch = rl.Epoch
		c.leader = rl.Leader
	}
	c.isLeader = c.leader == "" || c.leader == c.self
	if c.isLeader {
		c.leader = c.self
		if c.epoch == 0 {
			c.epoch = 1
		}
	}
	c.lastContact = time.Now()
	e.cluster = c
	e.met.clusterEpoch.Set(int64(c.epoch))
	if c.isLeader {
		e.met.clusterIsLeader.Set(1)
		c.appendLease()
	}
	e.met.reg.NewGaugeFunc("xbar_cluster_lease_age_seconds",
		"Lease staleness: since the last renewal (leader) or last proof of leader life (follower).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return time.Since(c.lastContact).Seconds()
		})
	e.met.reg.NewGaugeFunc("xbar_cluster_members",
		"Cluster members this node coordinates with, including itself.",
		func() float64 { return float64(len(c.peers) + 1) })
	slog.Info("cluster member starting", "component", "cluster",
		"member", c.self, "role", c.role(), "epoch", c.epoch, "leader", c.leader, "lease", c.lease)
	c.wg.Add(1)
	go c.loop()
}

func (e *Engine) stopCluster() {
	if e.cluster == nil {
		return
	}
	close(e.cluster.stop)
	e.cluster.wg.Wait()
}

// clusterFollowing reports whether the cluster node starts in follower
// role (New uses it to decide whether to start the mirror loop even when
// Options.FollowPeer is empty).
func (e *Engine) clusterFollowing() bool {
	return e.cluster != nil && !e.cluster.leading()
}

// followTarget is the URL the mirror loop pulls from: the cluster's
// current view of the leader when clustered (it moves on failover), else
// the static Options.FollowPeer.
func (e *Engine) followTarget() string {
	if e.cluster != nil {
		c := e.cluster
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.isLeader {
			return "" // promoted mid-loop: nothing to pull from
		}
		return c.leader
	}
	return e.opt.FollowPeer
}

// ClusterState reports this member's view of the fleet (the
// GET /v1/cluster/state payload). Without cluster options the member is
// RoleSingle — or a plain RoleFollower when only FollowPeer is set.
func (e *Engine) ClusterState() ClusterState {
	_, lastSeq := e.journalStats()
	st := ClusterState{
		Self:       e.opt.ClusterSelf,
		Role:       RoleSingle,
		LastSeq:    lastSeq,
		ReplCursor: e.stReplCursor.Load(),
	}
	if e.cluster == nil {
		if e.opt.FollowPeer != "" {
			st.Role, st.Leader = RoleFollower, e.opt.FollowPeer
		}
		return st
	}
	c := e.cluster
	c.mu.Lock()
	defer c.mu.Unlock()
	st.Role = c.role()
	st.Epoch = c.epoch
	st.Leader = c.leader
	st.LeaseAgeMS = time.Since(c.lastContact).Milliseconds()
	st.Peers = append([]string(nil), c.peers...)
	return st
}

func (c *clusterNode) role() string {
	if c.isLeader {
		return RoleLeader
	}
	return RoleFollower
}

func (c *clusterNode) leading() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.isLeader
}

// noteContact records proof of leader life (the mirror loop calls it after
// every successful tail pull).
func (c *clusterNode) noteContact() {
	c.mu.Lock()
	if !c.isLeader {
		c.lastContact = time.Now()
	}
	c.mu.Unlock()
}

// observeLease folds one lease claim — replicated, recovered, or polled —
// into the node's view. Claims are ordered by (epoch, leader URL); a claim
// above ours moves the lease: a leader observing it demotes itself (the
// fencing path), a follower re-aims its mirror at the new leader.
func (c *clusterNode) observeLease(claim leaseClaim) {
	if claim.Leader == "" {
		return
	}
	c.mu.Lock()
	if claim.Epoch < c.epoch || (claim.Epoch == c.epoch && claim.Leader <= c.leader) {
		if claim.Epoch == c.epoch && claim.Leader == c.leader && !c.isLeader {
			c.lastContact = time.Now() // renewal from the current leader
		}
		c.mu.Unlock()
		return
	}
	wasLeader := c.isLeader
	c.epoch = claim.Epoch
	c.leader = claim.Leader
	c.isLeader = claim.Leader == c.self
	c.lastContact = time.Now()
	c.mu.Unlock()
	c.e.met.clusterEpoch.Set(int64(claim.Epoch))
	if wasLeader && !c.isLeader {
		slog.Warn("deposed; demoting to follower", "component", "cluster", "member", c.self, "leader", claim.Leader, "epoch", claim.Epoch)
		c.e.met.clusterIsLeader.Set(0)
		c.e.met.clusterDemotions.Inc()
		c.e.startFollower()
	}
}

func (c *clusterNode) loop() {
	defer c.wg.Done()
	t := time.NewTicker(c.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.tick()
		case <-c.stop:
			return
		}
	}
}

func (c *clusterNode) tick() {
	c.mu.Lock()
	isLeader := c.isLeader
	stale := time.Since(c.lastContact)
	c.mu.Unlock()
	if isLeader {
		if stale >= c.lease/2 {
			c.appendLease()
		}
		// Poll peers for a higher claim: a deposed leader must discover its
		// usurper even if it lost the replication feed entirely.
		for _, st := range c.pollPeers() {
			if st.Role == RoleLeader {
				c.observeLease(leaseClaim{Epoch: st.Epoch, Leader: st.Self})
			}
		}
		return
	}
	if stale > c.lease {
		c.elect()
	}
}

// elect runs one election round after the lease expired. The round either
// adopts an already-promoted peer, promotes this node (no reachable peer
// has replicated further), or defers to a better-positioned candidate —
// in which case the lease stays expired and the next tick re-runs the
// round, so a better candidate that then dies too doesn't wedge the fleet.
func (c *clusterNode) elect() {
	states := c.pollPeers()
	c.mu.Lock()
	myEpoch, myLeader := c.epoch, c.leader
	c.mu.Unlock()
	cursor := c.e.stReplCursor.Load()
	for _, st := range states {
		if st.Role == RoleLeader && st.Epoch >= myEpoch {
			// A live leader claim at our epoch or newer — including the
			// current leader turning out to be reachable after all (we lost
			// its feed, not its life). observeLease adopts it or, for the
			// incumbent, just resets the lease clock.
			if st.Self != myLeader {
				slog.Info("election found promoted peer; adopting", "component", "cluster", "member", c.self, "leader", st.Self, "epoch", st.Epoch)
			}
			c.observeLease(leaseClaim{Epoch: st.Epoch, Leader: st.Self})
			return
		}
		if st.Epoch > myEpoch {
			myEpoch = st.Epoch // never claim with a stale epoch
		}
		if st.ReplCursor > cursor || (st.ReplCursor == cursor && st.Self > c.self) {
			slog.Info("deferring election to better-replicated peer", "component", "cluster",
				"member", c.self, "peer", st.Self, "peer_cursor", st.ReplCursor, "cursor", cursor)
			return
		}
	}
	c.promote(myEpoch + 1)
}

// promote makes this node the leader of epoch: stop mirroring, flip to
// accepting writes as the replication source, and assert the claim with a
// durable lease record that replicates to the rest of the fleet.
func (c *clusterNode) promote(epoch uint64) {
	c.e.stopFollower()
	c.mu.Lock()
	c.epoch = epoch
	c.leader = c.self
	c.isLeader = true
	c.lastContact = time.Now()
	c.mu.Unlock()
	c.e.met.clusterEpoch.Set(int64(epoch))
	c.e.met.clusterIsLeader.Set(1)
	c.e.met.clusterFailovers.Inc()
	slog.Warn("promoting to leader", "component", "cluster",
		"member", c.self, "epoch", epoch, "cursor", c.e.stReplCursor.Load())
	c.appendLease()
}

// appendLease durably asserts (or renews) this node's leadership in the
// journal. The commit wakes followers' long-polling tail pulls, so one
// append is both the ballot and the heartbeat.
func (c *clusterNode) appendLease() {
	c.mu.Lock()
	claim := leaseClaim{Epoch: c.epoch, Leader: c.self, Time: time.Now().UnixNano()}
	c.lastContact = time.Now()
	c.mu.Unlock()
	if c.e.journal == nil {
		return // memory-only member: leadership still works, just isn't durable
	}
	data, err := json.Marshal(claim)
	if err != nil {
		slog.Error("failed to encode lease", "component", "cluster", "member", c.self, "epoch", claim.Epoch, "err", err)
		return
	}
	if _, err := c.e.journal.Append(journal.MetaKey(journal.LeaseKind), data); err != nil {
		slog.Error("failed to append lease record", "component", "cluster", "member", c.self, "epoch", claim.Epoch, "err", err)
	}
}

// pollPeers fetches every reachable peer's cluster state concurrently;
// unreachable peers are simply absent from the result.
func (c *clusterNode) pollPeers() []ClusterState {
	out := make([]*ClusterState, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.heartbeat)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cluster/state", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var st ClusterState
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				return
			}
			if st.Self == "" {
				st.Self = peer
			}
			out[i] = &st
		}(i, p)
	}
	wg.Wait()
	states := make([]ClusterState, 0, len(out))
	for _, st := range out {
		if st != nil {
			states = append(states, *st)
		}
	}
	return states
}
