package trace

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded lifecycle stage. Spans are fixed-shape value
// structs — the attribute set is the fields, not a map — so recording one
// is a copy into the ring, never an allocation.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   Name
	Start  int64 // unix nanoseconds
	End    int64 // unix nanoseconds; == Start for instant spans
	JobID  string
	Kind   string
	Member string
	Err    string
	Detail string
}

// Store defaults.
const (
	DefaultRingSpans  = 4096
	DefaultMaxTraces  = 256
	DefaultMaxSpans   = 256
	DefaultSampleRate = 0.10
)

// durWindow is how many recent root durations feed the slow-tail (p99)
// estimate.
const durWindow = 512

// Options tunes a Store. The zero value gives the defaults above.
type Options struct {
	// RingSpans is the span ring capacity (rounded up to a power of two);
	// the ring holds the most recent spans of every trace, kept or not.
	RingSpans int
	// MaxTraces bounds the kept-timeline map; the oldest unpinned (not
	// errored, not slow-tail) timelines are evicted first.
	MaxTraces int
	// MaxSpans bounds the spans captured per kept timeline.
	MaxSpans int
	// SampleRate is the probability an unremarkable finished trace is kept
	// anyway. Zero means DefaultSampleRate; negative disables probabilistic
	// keeps (errors, the slow tail, and sampled-flagged traces still win).
	SampleRate float64
}

// Store records spans and keeps a bounded set of finished timelines under
// the error/slow-tail-biased sampling policy. The zero value is not
// usable; call NewStore. A nil *Store is safe everywhere and records
// nothing, so library callers that never enable tracing pay one nil check.
type Store struct {
	// The span ring is guarded by a CAS spinlock rather than a mutex: the
	// critical section is a fixed-size struct copy (no allocation, no
	// syscall), so spinning is cheaper than parking, and the hot path
	// stays allocation-free under the xbarvet hotpath gate.
	lock atomic.Uint32
	ring []Span
	mask uint64
	head uint64 // next write slot (monotonic; masked on use)

	mu      sync.Mutex
	kept    map[TraceID]*keptTrace
	order   []TraceID // keep insertion order, for eviction
	durs    [durWindow]int64
	durN    int // total durations observed (ring index = durN % durWindow)
	scratch []int64
	opt     Options
}

// keptTrace is one finished, kept timeline.
type keptTrace struct {
	spans  []Span
	start  int64
	end    int64
	err    bool
	pinned bool // errored or slow-tail: evicted only under duress
}

// NewStore builds a span store.
func NewStore(opt Options) *Store {
	if opt.RingSpans <= 0 {
		opt.RingSpans = DefaultRingSpans
	}
	size := 1
	for size < opt.RingSpans {
		size <<= 1
	}
	if opt.MaxTraces <= 0 {
		opt.MaxTraces = DefaultMaxTraces
	}
	if opt.MaxSpans <= 0 {
		opt.MaxSpans = DefaultMaxSpans
	}
	if opt.SampleRate == 0 {
		opt.SampleRate = DefaultSampleRate
	}
	return &Store{
		ring:    make([]Span, size),
		mask:    uint64(size - 1),
		kept:    make(map[TraceID]*keptTrace),
		scratch: make([]int64, durWindow),
		opt:     opt,
	}
}

// Record copies one span into the ring. Steady-state allocation-free: the
// span is a value copy into a preallocated slot, and the spinlock is a
// single CAS in the uncontended case.
//
//xbar:hotpath
func (s *Store) Record(sp *Span) {
	if s == nil {
		return
	}
	for !s.lock.CompareAndSwap(0, 1) {
	}
	s.ring[s.head&s.mask] = *sp
	s.head++
	s.lock.Store(0)
}

// FinishTrace closes out one trace: the caller has already recorded the
// root span. The trace is kept when it errored, when it lands at or past
// the p99 of recent root durations, when the propagated sampled flag asked
// for it, or with probability SampleRate — the exposition layer of the
// error/slow-tail bias. Runs off the hot path (once per batch, not per
// span).
func (s *Store) FinishTrace(sc SpanContext, start, end time.Time, hasErr bool) {
	if s == nil || !sc.Valid() {
		return
	}
	dur := end.UnixNano() - start.UnixNano()
	s.mu.Lock()
	s.durs[s.durN%durWindow] = dur
	s.durN++
	slow := s.durN >= 32 && dur >= s.p99Locked()
	keep := hasErr || slow || sc.Sampled
	if !keep && s.opt.SampleRate > 0 {
		keep = rand.Float64() < s.opt.SampleRate
	}
	if !keep {
		s.mu.Unlock()
		return
	}
	maxSpans := s.opt.MaxSpans
	s.mu.Unlock()

	spans := s.collect(sc.Trace, make([]Span, 0, 64), maxSpans)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.kept[sc.Trace]; dup {
		delete(s.kept, sc.Trace) // re-finish (retry paths): newest wins
		for i, id := range s.order {
			if id == sc.Trace {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.kept[sc.Trace] = &keptTrace{
		spans:  spans,
		start:  start.UnixNano(),
		end:    end.UnixNano(),
		err:    hasErr,
		pinned: hasErr || slow,
	}
	s.order = append(s.order, sc.Trace)
	s.evictLocked()
}

// p99Locked estimates the 99th percentile of the recent root durations.
// Caller holds s.mu.
func (s *Store) p99Locked() int64 {
	n := min(s.durN, durWindow)
	w := s.scratch[:n]
	copy(w, s.durs[:n])
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	idx := (n * 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return w[idx]
}

// evictLocked drops kept timelines beyond MaxTraces: oldest unpinned
// first, then (when everything is pinned) oldest outright, so the map can
// never outgrow its budget. Caller holds s.mu.
func (s *Store) evictLocked() {
	for len(s.order) > s.opt.MaxTraces {
		victim := -1
		for i, id := range s.order {
			if k := s.kept[id]; k != nil && !k.pinned {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = 0
		}
		delete(s.kept, s.order[victim])
		s.order = append(s.order[:victim], s.order[victim+1:]...)
	}
}

// collect snapshots every ring span of one trace into dst (bounded by
// maxSpans), oldest first. The ring is scanned under the spinlock but dst
// is grown outside it, so the recording hot path never waits on an
// allocation.
func (s *Store) collect(tid TraceID, dst []Span, maxSpans int) []Span {
	for !s.lock.CompareAndSwap(0, 1) {
	}
	// Oldest-first: when the ring has wrapped, the oldest span sits in the
	// slot the next write would evict; before the wrap it is slot zero.
	n, first := s.head, uint64(0)
	if n > uint64(len(s.ring)) {
		n, first = uint64(len(s.ring)), s.head
	}
	for i := uint64(0); i < n && len(dst) < cap(dst) && len(dst) < maxSpans; i++ {
		sp := &s.ring[(first+i)&s.mask]
		if sp.Trace == tid {
			dst = append(dst, *sp)
		}
	}
	s.lock.Store(0)
	if len(dst) == cap(dst) && len(dst) < maxSpans {
		// Scratch filled mid-scan: regrow outside the lock and rescan.
		return s.collect(tid, make([]Span, 0, min(2*cap(dst), maxSpans)), maxSpans)
	}
	return dst
}

// Get assembles the timeline of one trace: the kept (finished) spans when
// the sampling policy retained it, unioned with any spans still sitting in
// the live ring (an in-flight trace, or late spans — an SSE delivery that
// outlived the batch). ok is false when the store knows nothing about the
// trace.
func (s *Store) Get(tid TraceID) (Timeline, bool) {
	if s == nil || tid.IsZero() {
		return Timeline{}, false
	}
	s.mu.Lock()
	k := s.kept[tid]
	maxSpans := s.opt.MaxSpans
	s.mu.Unlock()
	live := s.collect(tid, make([]Span, 0, 64), maxSpans)
	if k == nil {
		if len(live) == 0 {
			return Timeline{}, false
		}
		return buildTimeline(tid, live, false, false, 0, 0), true
	}
	spans := k.spans
	if len(live) > 0 {
		seen := make(map[SpanID]bool, len(spans))
		for i := range spans {
			seen[spans[i].ID] = true
		}
		merged := append(make([]Span, 0, len(spans)+len(live)), spans...)
		for i := range live {
			if !seen[live[i].ID] && len(merged) < maxSpans {
				merged = append(merged, live[i])
			}
		}
		spans = merged
	}
	return buildTimeline(tid, spans, true, k.err, k.start, k.end), true
}

// slowestEntry pairs a kept trace with its root duration for Slowest.
type slowestEntry struct {
	id  TraceID
	dur int64
}

// Slowest returns the n slowest kept timelines, slowest first.
func (s *Store) Slowest(n int) []Timeline {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	entries := make([]slowestEntry, 0, len(s.kept))
	for id, k := range s.kept {
		entries = append(entries, slowestEntry{id: id, dur: k.end - k.start})
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].dur != entries[j].dur {
			return entries[i].dur > entries[j].dur
		}
		return entries[i].id.String() < entries[j].id.String()
	})
	if len(entries) > n {
		entries = entries[:n]
	}
	out := make([]Timeline, 0, len(entries))
	for _, e := range entries {
		if tl, ok := s.Get(e.id); ok {
			out = append(out, tl)
		}
	}
	return out
}

// KeptCount reports how many finished timelines the store currently holds.
func (s *Store) KeptCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.kept)
}
