package trace

import "testing"

// FuzzTraceparent: anything ParseTraceparent accepts must survive a
// format → reparse round trip unchanged, and the formatter must emit the
// canonical 55-byte version-00 form.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01")
	f.Add("00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseTraceparent(s)
		if err != nil {
			if sc.Valid() {
				t.Fatalf("error %v but context %+v is valid", err, sc)
			}
			return
		}
		if !sc.Valid() || sc.Span.IsZero() {
			t.Fatalf("accepted %q but context %+v is not fully valid", s, sc)
		}
		tp := sc.Traceparent()
		if len(tp) != 55 {
			t.Fatalf("formatted traceparent %q is %d bytes, want 55", tp, len(tp))
		}
		again, err := ParseTraceparent(tp)
		if err != nil {
			t.Fatalf("reparse of own output %q: %v", tp, err)
		}
		if again != sc {
			t.Fatalf("round trip drift: %q -> %+v -> %q -> %+v", s, sc, tp, again)
		}
	})
}
