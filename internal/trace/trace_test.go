package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	for _, sampled := range []bool{false, true} {
		sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: sampled}
		tp := sc.Traceparent()
		if len(tp) != 55 {
			t.Fatalf("traceparent %q is %d bytes, want 55", tp, len(tp))
		}
		got, err := ParseTraceparent(tp)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", tp, err)
		}
		if got != sc {
			t.Fatalf("round trip: %+v -> %q -> %+v", sc, tp, got)
		}
	}
}

func TestParseTraceparentAcceptsWireForm(t *testing.T) {
	sc, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Trace.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %s", sc.Trace)
	}
	if sc.Span.String() != "00f067aa0ba902b7" {
		t.Fatalf("span id %s", sc.Span)
	}
	if !sc.Sampled {
		t.Fatal("flags 01 must parse as sampled")
	}
	// A future version with an extra field parses (prefix shape is
	// compatible), a version-00 header with trailing junk does not.
	if _, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Fatalf("future version with extra field: %v", err)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // version ff
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // version 00 with suffix
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad separator
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex version
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", s)
		}
	}
}

func TestMustName(t *testing.T) {
	if got := MustName("xbar.engine.exec.map-hba"); got != "xbar.engine.exec.map-hba" {
		t.Fatalf("MustName = %q", got)
	}
	for _, bad := range []string{"", "xbar.", "engine.exec", "xbar.Engine", "xbar.a b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustName(%q) did not panic", bad)
				}
			}()
			MustName(bad)
		}()
	}
}

// span builds a test span n nanoseconds long starting at base.
func span(sc SpanContext, name Name, base time.Time, d time.Duration) Span {
	return Span{
		Trace:  sc.Trace,
		ID:     NewSpanID(),
		Parent: sc.Span,
		Name:   name,
		Start:  base.UnixNano(),
		End:    base.Add(d).UnixNano(),
	}
}

var testSpanName = MustName("xbar.test.op")

// finishOne records one root span and finishes its trace with the given
// duration and error flag, returning the trace id.
func finishOne(s *Store, d time.Duration, hasErr, sampled bool) TraceID {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: sampled}
	base := time.Now().Add(-d)
	sp := span(sc, testSpanName, base, d)
	sp.ID = sc.Span
	sp.Parent = SpanID{}
	if hasErr {
		sp.Err = "boom"
	}
	s.Record(&sp)
	s.FinishTrace(sc, base, base.Add(d), hasErr)
	return sc.Trace
}

// TestEvictionUnderSamplingPolicy: with probabilistic sampling off, only
// errored, slow-tail, and sampled-flagged traces are kept; the keeper
// stays bounded by MaxTraces with pinned (error/slow) timelines surviving
// unpinned ones.
func TestEvictionUnderSamplingPolicy(t *testing.T) {
	s := NewStore(Options{MaxTraces: 32, SampleRate: -1})

	// Establish a spread duration distribution (1..50ms) to warm the p99
	// window.
	for i := 0; i < 100; i++ {
		finishOne(s, time.Duration(i%50+1)*time.Millisecond, false, false)
	}
	// A fast unremarkable trace is not kept: no error, no sampled flag,
	// nowhere near the slow tail, probabilistic keeps disabled. (Get may
	// still see its spans in the live ring, so check Finished.)
	fastID := finishOne(s, time.Millisecond, false, false)
	if tl, ok := s.Get(fastID); ok && tl.Finished {
		t.Fatal("fast unremarkable trace kept with sampling disabled")
	}

	// An errored trace is always kept.
	errID := finishOne(s, time.Millisecond, true, false)
	tl, ok := s.Get(errID)
	if !ok || !tl.Finished || !tl.Error {
		t.Fatalf("errored trace not kept: ok=%v tl=%+v", ok, tl)
	}

	// A slow-tail trace (10x the established distribution) is always kept.
	slowID := finishOne(s, 100*time.Millisecond, false, false)
	if tl, ok := s.Get(slowID); !ok || !tl.Finished {
		t.Fatalf("slow-tail trace not kept: ok=%v finished=%v", ok, tl.Finished)
	}

	// A sampled-flagged trace is always kept.
	flagID := finishOne(s, time.Millisecond, false, true)
	if tl, ok := s.Get(flagID); !ok || !tl.Finished {
		t.Fatalf("sampled-flagged trace not kept: ok=%v finished=%v", ok, tl.Finished)
	}

	// Flood with sampled-flagged traces: the keeper must stay bounded, and
	// the pinned error/slow timelines must survive the unpinned flood.
	for i := 0; i < 50; i++ {
		finishOne(s, time.Millisecond, false, true)
	}
	if n := s.KeptCount(); n > 32 {
		t.Fatalf("keeper holds %d timelines, budget 32", n)
	}
	if _, ok := s.Get(errID); !ok {
		t.Fatal("pinned errored trace evicted by unpinned flood")
	}
	if tl, ok := s.Get(slowID); !ok || !tl.Finished {
		t.Fatal("pinned slow trace evicted by unpinned flood")
	}
	if _, ok := s.Get(flagID); ok {
		if tl, _ := s.Get(flagID); tl.Finished {
			t.Fatal("unpinned trace survived a flood that should have evicted it")
		}
	}
}

// TestRingWrapKeepsNewest: a trace whose spans straddle a ring wrap loses
// its oldest spans, not its newest, and Get still assembles the rest.
func TestRingWrapKeepsNewest(t *testing.T) {
	s := NewStore(Options{RingSpans: 64, SampleRate: -1})
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	base := time.Now()
	for i := 0; i < 100; i++ {
		sp := span(sc, testSpanName, base.Add(time.Duration(i)*time.Microsecond), time.Microsecond)
		sp.JobID = "j" + string(rune('0'+i%10))
		s.Record(&sp)
	}
	tl, ok := s.Get(sc.Trace)
	if !ok {
		t.Fatal("live trace not found in the ring")
	}
	if len(tl.Spans) != 64 {
		t.Fatalf("got %d spans after wrapping a 64-slot ring, want 64", len(tl.Spans))
	}
	if tl.Finished {
		t.Fatal("in-flight trace reported finished")
	}
	// The survivors are the newest 64 (offsets 36..99).
	if tl.Spans[0].StartNS != base.Add(36*time.Microsecond).UnixNano() {
		t.Fatalf("oldest surviving span starts at %d, want the 37th span", tl.Spans[0].StartNS)
	}
}

// TestTimelineShape: parent links, offsets, and durations survive the trip
// through the HTTP handler.
func TestTimelineShape(t *testing.T) {
	s := NewStore(Options{SampleRate: -1})
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	base := time.Now()
	root := Span{Trace: sc.Trace, ID: sc.Span, Name: MustName("xbar.test.root"),
		Start: base.UnixNano(), End: base.Add(10 * time.Millisecond).UnixNano()}
	child := span(sc, testSpanName, base.Add(2*time.Millisecond), 3*time.Millisecond)
	child.JobID, child.Kind = "j00000001", "map-hba"
	s.Record(&root)
	s.Record(&child)
	s.FinishTrace(sc, base, base.Add(10*time.Millisecond), false)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/traces/"+sc.Trace.String(), nil)
	req.SetPathValue("id", sc.Trace.String())
	s.ServeTimeline(rec, req)
	if rec.Code != 200 {
		t.Fatalf("ServeTimeline = %d: %s", rec.Code, rec.Body)
	}
	var tl Timeline
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.TraceID != sc.Trace.String() || !tl.Finished || tl.Error {
		t.Fatalf("timeline header: %+v", tl)
	}
	if len(tl.Spans) != 2 {
		t.Fatalf("%d spans, want 2", len(tl.Spans))
	}
	if tl.Spans[0].Name != "xbar.test.root" || tl.Spans[0].ParentID != "" {
		t.Fatalf("root span: %+v", tl.Spans[0])
	}
	c := tl.Spans[1]
	if c.ParentID != sc.Span.String() || c.OffsetUS != 2000 || c.DurUS != 3000 || c.JobID != "j00000001" {
		t.Fatalf("child span: %+v", c)
	}
	if tl.DurationUS != 10000 {
		t.Fatalf("duration %d us, want 10000", tl.DurationUS)
	}

	// Unknown id -> 404.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/v1/traces/ffffffffffffffffffffffffffffffff", nil)
	req.SetPathValue("id", "ffffffffffffffffffffffffffffffff")
	s.ServeTimeline(rec, req)
	if rec.Code != 404 {
		t.Fatalf("unknown trace = %d, want 404", rec.Code)
	}
}

// TestSlowestOrdersByDuration: ?slowest=N returns kept timelines slowest
// first.
func TestSlowestOrdersByDuration(t *testing.T) {
	s := NewStore(Options{SampleRate: -1})
	finishOne(s, 5*time.Millisecond, false, true)
	slow := finishOne(s, 50*time.Millisecond, false, true)
	finishOne(s, 1*time.Millisecond, false, true)

	rec := httptest.NewRecorder()
	s.ServeList(rec, httptest.NewRequest("GET", "/v1/traces?slowest=2", nil))
	if rec.Code != 200 {
		t.Fatalf("ServeList = %d: %s", rec.Code, rec.Body)
	}
	var resp ListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Traces) != 2 {
		t.Fatalf("%d traces, want 2", len(resp.Traces))
	}
	if resp.Traces[0].TraceID != slow.String() {
		t.Fatalf("slowest trace is %s, want %s", resp.Traces[0].TraceID, slow)
	}
	if resp.Traces[0].DurationUS < resp.Traces[1].DurationUS {
		t.Fatal("traces not ordered slowest first")
	}
}

// TestMergeStitchesMemberSpans: the gateway-side stitch unions remote
// spans, stamps their origin, and re-derives offsets over the combined
// window.
func TestMergeStitchesMemberSpans(t *testing.T) {
	base := time.Now()
	tid := NewTraceID()
	mk := func(name string, off, d time.Duration, member string) SpanOut {
		return SpanOut{
			Name:    name,
			SpanID:  NewSpanID().String(),
			StartNS: base.Add(off).UnixNano(),
			DurUS:   int64(d / time.Microsecond),
			Member:  member,
		}
	}
	local := Timeline{
		TraceID:    tid.String(),
		Finished:   true,
		StartNS:    base.UnixNano(),
		DurationUS: 20000,
		Spans:      []SpanOut{mk("xbar.gateway.submit", 0, 20*time.Millisecond, "")},
	}
	remote := Timeline{
		TraceID: tid.String(),
		Spans: []SpanOut{
			mk("xbar.http.admit", 2*time.Millisecond, time.Millisecond, ""),
			mk("xbar.engine.exec", 5*time.Millisecond, 30*time.Millisecond, ""),
		},
	}
	dup := remote.Spans[0]
	remoteDup := Timeline{TraceID: tid.String(), Spans: []SpanOut{dup}}

	merged := Merge(local, MergePart{Member: "m1", Timeline: remote},
		MergePart{Member: "m2", Timeline: remoteDup})
	if len(merged.Spans) != 3 {
		t.Fatalf("%d spans after merge, want 3 (dup span not deduplicated?)", len(merged.Spans))
	}
	var sawMember bool
	for _, sp := range merged.Spans {
		if sp.Name == "xbar.http.admit" && sp.Member != "m1" {
			t.Fatalf("remote span attributed to %q, want m1", sp.Member)
		}
		if sp.Member == "m1" {
			sawMember = true
		}
	}
	if !sawMember {
		t.Fatal("no span carries the member attribution")
	}
	// The exec span outlives the local root: the merged window must cover
	// it (5ms offset + 30ms duration = 35ms).
	if merged.DurationUS != 35000 {
		t.Fatalf("merged duration %d us, want 35000", merged.DurationUS)
	}
	if merged.Spans[0].OffsetUS != 0 {
		t.Fatalf("first span offset %d, want 0", merged.Spans[0].OffsetUS)
	}
}

// TestRecordSteadyStateAllocs: the recording hot path must not allocate.
func TestRecordSteadyStateAllocs(t *testing.T) {
	s := NewStore(Options{})
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	sp := Span{Trace: sc.Trace, ID: NewSpanID(), Parent: sc.Span, Name: testSpanName,
		JobID: "j00000001", Kind: "map-hba"}
	if allocs := testing.AllocsPerRun(1000, func() {
		sp.Start++
		sp.End++
		s.Record(&sp)
	}); allocs != 0 {
		t.Fatalf("Record allocates %.1f times per span, want 0", allocs)
	}
	var nilStore *Store
	if allocs := testing.AllocsPerRun(100, func() { nilStore.Record(&sp) }); allocs != 0 {
		t.Fatalf("nil-store Record allocates %.1f times, want 0", allocs)
	}
}

func BenchmarkRecord(b *testing.B) {
	s := NewStore(Options{})
	sp := Span{Trace: NewTraceID(), ID: NewSpanID(), Name: testSpanName}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Start = int64(i)
		s.Record(&sp)
	}
}

// TestConcurrentRecordAndFinish shakes the spinlock under the race
// detector: concurrent recorders, finishers, and readers.
func TestConcurrentRecordAndFinish(t *testing.T) {
	s := NewStore(Options{RingSpans: 256, MaxTraces: 16})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				finishOne(s, time.Microsecond, i%7 == 0, i%3 == 0)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s.Slowest(4)
			}
		}()
	}
	for i := 0; i < 6; i++ {
		<-done
	}
	if n := s.KeptCount(); n > 16 {
		t.Fatalf("keeper overflow: %d > 16", n)
	}
}

func TestHeaderHelpers(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	if got := FromRequestHeader(sc.Traceparent()); got != sc {
		t.Fatalf("FromRequestHeader round trip: %+v != %+v", got, sc)
	}
	if got := FromRequestHeader(""); got.Valid() {
		t.Fatal("empty header parsed as valid")
	}
	if got := FromRequestHeader("garbage"); got.Valid() {
		t.Fatal("garbage header parsed as valid")
	}
	if strings.Count(sc.Traceparent(), "-") != 3 {
		t.Fatal("traceparent must have exactly 3 separators")
	}
}
