// Package trace is a dependency-free distributed-tracing subsystem in the
// same spirit as internal/metrics: 128-bit trace ids carried across
// processes in W3C traceparent headers, cheap fixed-shape span structs
// recorded into a bounded in-memory ring, and error/slow-tail-biased
// sampling that keeps the timelines an operator actually wants (every
// errored trace, every slow-tail trace, a probabilistic sample of the
// rest) inside a hard memory budget.
//
// The recording path is allocation-free in steady state: spans are value
// structs copied into a preallocated ring under a CAS spinlock, and span
// names are pre-resolved package-level constants minted by MustName (the
// xbarvet metrics-contract analyzer enforces that names are unique
// literals, so trace cardinality is bounded at the source level).
package trace

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand/v2"
)

// TraceID is the 128-bit W3C trace id.
type TraceID [16]byte

// SpanID is the 64-bit W3C parent/span id.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID mints a random non-zero trace id. Ids need to be unique, not
// unpredictable, so the math/rand generator is deliberate — crypto/rand
// would cost a syscall per request on the admission path.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		putUint64(t[0:8], rand.Uint64())
		putUint64(t[8:16], rand.Uint64())
	}
	return t
}

// NewSpanID mints a random non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		putUint64(s[:], rand.Uint64())
	}
	return s
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// ParseTraceID parses a 32-hex-character trace id (the /v1/traces/{id}
// path segment form).
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("trace id must be 32 hex characters, got %d", len(s))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, err
	}
	if t.IsZero() {
		return t, errors.New("all-zero trace id is invalid")
	}
	return t, nil
}

// SpanContext is the propagated half of a trace: the trace id, the id of
// the span that new child spans should name as their parent, and whether
// the caller asked for the trace to be kept regardless of the sampling
// policy (the traceparent "sampled" flag).
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context carries a usable trace id.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() }

// Child derives a context for a new span under sc: same trace, fresh span
// id, sampling decision inherited.
func (sc SpanContext) Child() SpanContext {
	return SpanContext{Trace: sc.Trace, Span: NewSpanID(), Sampled: sc.Sampled}
}

// Traceparent renders the context in W3C trace-context form:
// "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>". The only flag bit
// defined (and round-tripped) is 0x01, sampled.
func (sc SpanContext) Traceparent() string {
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], sc.Trace[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], sc.Span[:])
	buf[52] = '-'
	flags := byte(0)
	if sc.Sampled {
		flags = 1
	}
	hex.Encode(buf[53:55], []byte{flags})
	return string(buf[:])
}

// ParseTraceparent parses a W3C traceparent header. Per the spec: exactly
// four dash-separated lowercase-hex fields at version 00 (future versions
// are accepted if they carry the same prefix shape, ignoring any suffix);
// version ff, a zero trace id, and a zero parent id are invalid.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) < 55 {
		return SpanContext{}, fmt.Errorf("traceparent too short (%d bytes)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, errors.New("traceparent field separators misplaced")
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], lowerHex(s[0:2])); err != nil {
		return SpanContext{}, fmt.Errorf("bad version field: %w", err)
	}
	if ver[0] == 0xff {
		return SpanContext{}, errors.New("traceparent version ff is invalid")
	}
	if ver[0] == 0 && len(s) != 55 {
		return SpanContext{}, fmt.Errorf("version 00 traceparent must be exactly 55 bytes, got %d", len(s))
	}
	if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, errors.New("extra traceparent fields must be dash-separated")
	}
	if _, err := hex.Decode(sc.Trace[:], lowerHex(s[3:35])); err != nil {
		return SpanContext{}, fmt.Errorf("bad trace id: %w", err)
	}
	if sc.Trace.IsZero() {
		return SpanContext{}, errors.New("all-zero trace id is invalid")
	}
	if _, err := hex.Decode(sc.Span[:], lowerHex(s[36:52])); err != nil {
		return SpanContext{}, fmt.Errorf("bad parent id: %w", err)
	}
	if sc.Span.IsZero() {
		return SpanContext{}, errors.New("all-zero parent id is invalid")
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], lowerHex(s[53:55])); err != nil {
		return SpanContext{}, fmt.Errorf("bad flags field: %w", err)
	}
	sc.Sampled = flags[0]&1 != 0
	return sc, nil
}

// lowerHex returns s as bytes, rejecting uppercase hex by corrupting it:
// the W3C spec requires lowercase, and encoding/hex accepts both, so
// uppercase bytes are mapped to an invalid character instead.
func lowerHex(s string) []byte {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'F' {
			b[i] = 'x'
		}
	}
	return b
}

// Header is the canonical request-header name spans propagate under.
const Header = "traceparent"

// FromRequestHeader parses the traceparent header value, returning an
// invalid (zero) context when the header is absent or malformed — the
// caller starts a fresh trace in that case.
func FromRequestHeader(v string) SpanContext {
	if v == "" {
		return SpanContext{}
	}
	sc, err := ParseTraceparent(v)
	if err != nil {
		return SpanContext{}
	}
	return sc
}

type ctxKey struct{}

// ContextWith returns a context carrying sc; spans created downstream
// parent themselves under sc.Span.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext recovers the span context installed by ContextWith, or the
// zero (invalid) context.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Name is a pre-resolved span name. Names are minted once per package by
// MustName into package-level variables so the recording hot path touches
// only an interned string header — never builds one.
type Name string

// MustName validates and interns a span name: the "xbar." prefix plus
// lowercase letters, digits, dots, and dashes. It panics on a malformed
// name — names are compile-time literals (enforced by the xbarvet
// metrics-contract analyzer, which also rejects module-wide duplicates),
// so a bad one is a programming error.
func MustName(s string) Name {
	const prefix = "xbar."
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		panic("trace: span name " + s + " must carry the xbar. prefix")
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '-':
		default:
			panic("trace: span name " + s + " may only use [a-z0-9.-]")
		}
	}
	return Name(s)
}
