package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
)

// SpanOut is one span in a rendered timeline.
type SpanOut struct {
	Name     string `json:"name"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	StartNS  int64  `json:"start_unix_ns"`
	OffsetUS int64  `json:"offset_us"` // relative to the timeline start
	DurUS    int64  `json:"duration_us"`
	JobID    string `json:"job_id,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Member   string `json:"member,omitempty"`
	Err      string `json:"error,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// Timeline is the GET /v1/traces/{id} payload: one trace's spans, oldest
// first, with offsets relative to the earliest span. Finished is false for
// a trace assembled purely from the live ring (still in flight when
// fetched).
type Timeline struct {
	TraceID    string    `json:"trace_id"`
	Finished   bool      `json:"finished"`
	Error      bool      `json:"error,omitempty"`
	StartNS    int64     `json:"start_unix_ns"`
	DurationUS int64     `json:"duration_us"`
	Spans      []SpanOut `json:"spans"`
}

// ListResponse is the GET /v1/traces?slowest=N payload.
type ListResponse struct {
	Traces []Timeline `json:"traces"`
}

// buildTimeline renders spans (any order) into the wire timeline. start
// and end bound the root span when known (finished traces); zero means
// derive them from the spans.
func buildTimeline(tid TraceID, spans []Span, finished, hasErr bool, start, end int64) Timeline {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID.String() < spans[j].ID.String()
	})
	for i := range spans {
		sp := &spans[i]
		if start == 0 || sp.Start < start {
			start = sp.Start
		}
		if sp.End > end {
			end = sp.End
		}
	}
	tl := Timeline{
		TraceID:    tid.String(),
		Finished:   finished,
		Error:      hasErr,
		StartNS:    start,
		DurationUS: (end - start) / 1e3,
		Spans:      make([]SpanOut, len(spans)),
	}
	for i := range spans {
		sp := &spans[i]
		o := SpanOut{
			Name:     string(sp.Name),
			SpanID:   sp.ID.String(),
			StartNS:  sp.Start,
			OffsetUS: (sp.Start - start) / 1e3,
			DurUS:    (sp.End - sp.Start) / 1e3,
			JobID:    sp.JobID,
			Kind:     sp.Kind,
			Member:   sp.Member,
			Err:      sp.Err,
			Detail:   sp.Detail,
		}
		if !sp.Parent.IsZero() {
			o.ParentID = sp.Parent.String()
		}
		if !hasErr && sp.Err != "" {
			tl.Error = true
		}
		tl.Spans[i] = o
	}
	return tl
}

// MergePart is one remote view of a trace for Merge: the timeline a
// member returned, plus the member label to stamp onto its spans.
type MergePart struct {
	Member   string
	Timeline Timeline
}

// Merge unions extra timelines (a member's view of the same trace, fetched
// over HTTP) into base, deduplicating by span id, re-deriving the start and
// duration, and stamping member onto spans that don't already carry an
// origin. Base's finished/error verdicts win; an errored extra marks the
// merged timeline errored too.
func Merge(base Timeline, extras ...MergePart) Timeline {
	seen := make(map[string]bool, len(base.Spans))
	for _, sp := range base.Spans {
		seen[sp.SpanID] = true
	}
	for _, ex := range extras {
		if ex.Timeline.Error {
			base.Error = true
		}
		for _, sp := range ex.Timeline.Spans {
			if seen[sp.SpanID] {
				continue
			}
			seen[sp.SpanID] = true
			if sp.Member == "" {
				sp.Member = ex.Member
			}
			base.Spans = append(base.Spans, sp)
		}
	}
	sort.Slice(base.Spans, func(i, j int) bool {
		if base.Spans[i].StartNS != base.Spans[j].StartNS {
			return base.Spans[i].StartNS < base.Spans[j].StartNS
		}
		return base.Spans[i].SpanID < base.Spans[j].SpanID
	})
	start, end := base.StartNS, base.StartNS+base.DurationUS*1e3
	for i := range base.Spans {
		sp := &base.Spans[i]
		if start == 0 || sp.StartNS < start {
			start = sp.StartNS
		}
		if e := sp.StartNS + sp.DurUS*1e3; e > end {
			end = e
		}
	}
	base.StartNS = start
	base.DurationUS = (end - start) / 1e3
	for i := range base.Spans {
		base.Spans[i].OffsetUS = (base.Spans[i].StartNS - start) / 1e3
	}
	return base
}

// slowestMax caps ?slowest=N so one request can't serialize the whole
// kept set.
const slowestMax = 32

// ServeTimeline answers GET /v1/traces/{id} from this store.
func (s *Store) ServeTimeline(w http.ResponseWriter, r *http.Request) {
	tid, err := ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad trace id: "+err.Error())
		return
	}
	tl, ok := s.Get(tid)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trace id (evicted, never sampled, or never seen)")
		return
	}
	writeTraceJSON(w, http.StatusOK, tl)
}

// ServeList answers GET /v1/traces?slowest=N: the N slowest kept
// timelines, slowest first (default 8, capped at 32).
func (s *Store) ServeList(w http.ResponseWriter, r *http.Request) {
	n := 8
	if v := r.URL.Query().Get("slowest"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, "bad slowest count")
			return
		}
		n = min(parsed, slowestMax)
	}
	writeTraceJSON(w, http.StatusOK, ListResponse{Traces: s.Slowest(n)})
}

func writeTraceJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeTraceJSON(w, code, map[string]string{"error": msg})
}
