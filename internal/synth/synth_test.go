package synth

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/minimize"
)

// fig3 is the paper's running example f = x1+x2+x3+x4+x5x6x7x8.
func fig3() *logic.Cover {
	return logic.MustParseCover(8, 1,
		"1-------",
		"-1------",
		"--1-----",
		"---1----",
		"----1111",
	)
}

func TestTwoLevelCostFig3(t *testing.T) {
	cost := TwoLevel(fig3())
	// Table II convention: (P+O)(2I+2O) = 6*18 = 108.
	if cost.Rows != 6 || cost.Cols != 18 || cost.Area != 108 {
		t.Errorf("cost = %dx%d=%d, want 6x18=108", cost.Rows, cost.Cols, cost.Area)
	}
	// Devices: 8 literals + 5 product-output links + 2 output-line devices.
	if cost.Devices != 15 {
		t.Errorf("devices = %d, want 15", cost.Devices)
	}
}

func TestTwoLevelCostTable2Formula(t *testing.T) {
	// Spot-check the paper's Table II geometry on synthetic dimensions.
	cases := []struct {
		i, o, p, area int
		name          string
	}{
		{5, 3, 31, 544, "rd53"},
		{5, 8, 25, 858, "squar5"},
		{7, 9, 30, 1248, "inc"},
		{8, 7, 12, 570, "misex1"},
		{10, 4, 58, 1736, "sao2"},
		{7, 3, 127, 2600, "rd73"},
		{9, 5, 120, 3500, "clip"},
		{8, 4, 255, 6216, "rd84"},
		{10, 10, 284, 11760, "ex1010"},
		{14, 14, 175, 10584, "table3"},
		{8, 63, 74, 19454, "exp5"},
		{9, 19, 436, 25480, "apex4"},
		{14, 8, 575, 25652, "alu4"},
	}
	for _, tc := range cases {
		c := logic.NewCover(tc.i, tc.o)
		for k := 0; k < tc.p; k++ {
			cube := logic.NewCube(tc.i, tc.o)
			cube.Out[0] = true
			c.Cubes = append(c.Cubes, cube)
		}
		if got := TwoLevel(c).Area; got != tc.area {
			t.Errorf("%s: area = %d, want %d", tc.name, got, tc.area)
		}
	}
}

func TestFactorEvaluates(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		c := randomSingle(rng, n, 1+rng.Intn(8))
		if c.IsEmpty() {
			continue
		}
		e := Factor(c)
		for i := uint64(0); i < 1<<uint(n); i++ {
			x := logic.AssignmentFromIndex(i, n)
			if EvalExpr(e, x) != c.EvalOutput(0, x) {
				t.Fatalf("factored form differs at %v\ncover:\n%v\nexpr: %v", x, c, e)
			}
		}
	}
}

func TestFactorSharesCommonCube(t *testing.T) {
	// x1x2x3 + x1x2x4 should factor as x1·x2·(x3+x4): 4 literals, not 6.
	c := logic.MustParseCover(4, 1, "111-", "11-1")
	e := Factor(c)
	if n := ExprLiterals(e); n != 4 {
		t.Errorf("factored literals = %d, want 4 (%v)", n, e)
	}
}

func TestFactorPanicsOnMultiOutput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Factor must panic on multi-output cover")
		}
	}()
	Factor(logic.NewCover(2, 2))
}

func TestSynthesizeFig5Geometry(t *testing.T) {
	nw, err := SynthesizeMultiLevel(fig3(), MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cost := MultiLevel(nw)
	// The paper's Fig. 5: 2 gates, 1 connection column, rows=3, cols=19.
	if cost.Gates != 2 || cost.Wires != 1 {
		t.Fatalf("gates=%d wires=%d, want 2,1\n%v", cost.Gates, cost.Wires, nw)
	}
	if cost.Rows != 3 || cost.Cols != 19 || cost.Area != 57 {
		t.Errorf("geometry = %dx%d=%d, want 3x19=57", cost.Rows, cost.Cols, cost.Area)
	}
	if cost.Depth != 2 {
		t.Errorf("depth = %d, want 2", cost.Depth)
	}
}

func TestSynthesizeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(6)
		c := randomMulti(rng, n, 1+rng.Intn(3), 1+rng.Intn(8))
		nw, err := SynthesizeMultiLevel(c, MultiLevelOptions{Minimize: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 1<<uint(n); i++ {
			x := logic.AssignmentFromIndex(i, n)
			want := c.Eval(x)
			got := nw.Eval(x)
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("output %d differs at %v\ncover:\n%v\nnet:\n%v", j, x, c, nw)
				}
			}
		}
	}
}

func TestSynthesizeConstants(t *testing.T) {
	zero := logic.NewCover(3, 1)
	nw, err := SynthesizeMultiLevel(zero, MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if nw.Eval(logic.AssignmentFromIndex(i, 3))[0] {
			t.Fatal("constant 0 output is wrong")
		}
	}
	one := logic.MustParseCover(3, 1, "---")
	nw, err = SynthesizeMultiLevel(one, MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if !nw.Eval(logic.AssignmentFromIndex(i, 3))[0] {
			t.Fatal("constant 1 output is wrong")
		}
	}
}

func TestSynthesizeLiteralOutput(t *testing.T) {
	f := logic.MustParseCover(2, 1, "1-")
	nw, err := SynthesizeMultiLevel(f, MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumGates() != 1 {
		t.Errorf("literal output should use exactly one inverter gate, got %d", nw.NumGates())
	}
	if !nw.Eval([]bool{true, false})[0] || nw.Eval([]bool{false, true})[0] {
		t.Error("literal output mis-evaluates")
	}
}

func TestSynthesizeFaninBound(t *testing.T) {
	// A 10-literal product with MaxFanin 3 must split into a tree.
	c := logic.MustParseCover(10, 1, "1111111111")
	nw, err := SynthesizeMultiLevel(c, MultiLevelOptions{MaxFanin: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m := nw.MaxFanin(); m > 3 {
		t.Errorf("max fanin = %d, want <= 3", m)
	}
	x := make([]bool, 10)
	for i := range x {
		x[i] = true
	}
	if !nw.Eval(x)[0] {
		t.Error("all-ones must evaluate to 1")
	}
	x[4] = false
	if nw.Eval(x)[0] {
		t.Error("one zero must evaluate to 0")
	}
}

func TestSynthesizeSharesAcrossOutputs(t *testing.T) {
	// Two identical outputs must share the entire network.
	c := logic.MustParseCover(4, 2,
		"11-- 11",
		"--11 11",
	)
	nw, err := SynthesizeMultiLevel(c, MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Outputs[0] != nw.Outputs[1] {
		t.Errorf("identical outputs should share the driving gate:\n%v", nw)
	}
}

func TestChooseDual(t *testing.T) {
	// f with 5 products whose complement has 4: the dual must win.
	f := fig3()
	min := func(c *logic.Cover) *logic.Cover { return minimize.Minimize(c, minimize.Options{}) }
	d := ChooseDual(f, min)
	if !d.UseComplement {
		t.Errorf("complement (4 products) should beat direct (5 products): %+v", d)
	}
	if d.Chosen.Area >= d.Direct.Area {
		t.Error("chosen area must be the smaller one")
	}
	// And the chosen cover must compute f̄.
	for i := uint64(0); i < 256; i++ {
		x := logic.AssignmentFromIndex(i, 8)
		if d.ChosenCover.EvalOutput(0, x) == f.EvalOutput(0, x) {
			t.Fatal("chosen dual cover is not the complement")
		}
	}
}

func TestMultiLevelCostDevices(t *testing.T) {
	nw, err := SynthesizeMultiLevel(fig3(), MultiLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cost := MultiLevel(nw)
	// Gate fan-ins: 4 (h) + 5 (f) = 9; + 1 wire device + 3 output devices.
	if cost.Devices != 13 {
		t.Errorf("devices = %d, want 13", cost.Devices)
	}
	if cost.IR <= 0 || cost.IR > 1 {
		t.Errorf("IR = %v out of range", cost.IR)
	}
}

func randomSingle(rng *rand.Rand, nIn, nCubes int) *logic.Cover {
	c := logic.NewCover(nIn, 1)
	for k := 0; k < nCubes; k++ {
		cube := logic.NewCube(nIn, 1)
		cube.Out[0] = true
		for i := range cube.In {
			switch rng.Intn(4) {
			case 0:
				cube.In[i] = logic.LitNeg
			case 1:
				cube.In[i] = logic.LitPos
			default:
				cube.In[i] = logic.LitDC
			}
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}

func randomMulti(rng *rand.Rand, nIn, nOut, nCubes int) *logic.Cover {
	c := logic.NewCover(nIn, nOut)
	for k := 0; k < nCubes; k++ {
		cube := logic.NewCube(nIn, nOut)
		for i := range cube.In {
			switch rng.Intn(4) {
			case 0:
				cube.In[i] = logic.LitNeg
			case 1:
				cube.In[i] = logic.LitPos
			default:
				cube.In[i] = logic.LitDC
			}
		}
		for j := range cube.Out {
			cube.Out[j] = rng.Intn(2) == 1
		}
		if cube.NumOutputs() == 0 {
			cube.Out[rng.Intn(nOut)] = true
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}
