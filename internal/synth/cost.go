// Package synth implements the paper's two synthesis styles for memristive
// crossbars: the two-level NAND–AND mapping with its exact area model
// (Section II-C) and the multi-level NAND-network design of Section III,
// including the algebraic factoring that stands in for the Berkeley ABC
// technology mapping used by the authors.
package synth

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// TwoLevelCost describes the crossbar realization of a sum-of-products.
//
// The geometry follows the convention that reproduces every entry of the
// paper's Table II exactly: one horizontal line per product plus one per
// output (the inversion line that turns f̄ into f), and vertical lines for
// both polarities of every input plus the (f̄, f) column pair of every
// output.
type TwoLevelCost struct {
	Inputs   int
	Outputs  int
	Products int
	Rows     int // Products + Outputs
	Cols     int // 2*Inputs + 2*Outputs
	Area     int // Rows * Cols
	Devices  int // programmed-active memristors
	IR       float64
}

// TwoLevel computes the crossbar cost of a cover.
func TwoLevel(c *logic.Cover) TwoLevelCost {
	cost := TwoLevelCost{
		Inputs:   c.NumIn,
		Outputs:  c.NumOut,
		Products: c.NumProducts(),
	}
	cost.Rows = cost.Products + cost.Outputs
	cost.Cols = 2*cost.Inputs + 2*cost.Outputs
	cost.Area = cost.Rows * cost.Cols
	// Active devices: one per literal on each product line, one per output
	// the product participates in (its AND-plane connection), and two per
	// output line (read f̄, drive f).
	for _, cube := range c.Cubes {
		cost.Devices += cube.NumLiterals() + cube.NumOutputs()
	}
	cost.Devices += 2 * cost.Outputs
	if cost.Area > 0 {
		cost.IR = float64(cost.Devices) / float64(cost.Area)
	}
	return cost
}

// MultiLevelCost describes the crossbar realization of a NAND network using
// the multi-level connection scheme of Fig. 4/5.
type MultiLevelCost struct {
	Inputs  int
	Outputs int
	Gates   int // G: one horizontal line per NAND gate
	Wires   int // W: multi-level connection columns (gates feeding gates)
	Rows    int // G + Outputs
	Cols    int // 2*Inputs + W + 2*Outputs
	Area    int
	Depth   int // logic depth = number of sequential EVM/CR rounds needed
	Devices int
	IR      float64
}

// MultiLevel computes the crossbar cost of a NAND network with the given
// output count (len(nw.Outputs)).
func MultiLevel(nw *netlist.Network) MultiLevelCost {
	cost := MultiLevelCost{
		Inputs:  nw.NumIn,
		Outputs: len(nw.Outputs),
		Gates:   nw.NumGates(),
		Wires:   nw.NumInternalWires(),
	}
	cost.Rows = cost.Gates + cost.Outputs
	cost.Cols = 2*cost.Inputs + cost.Wires + 2*cost.Outputs
	cost.Area = cost.Rows * cost.Cols
	_, cost.Depth = nw.Levels()
	// Active devices: each gate line holds one device per fan-in; gates
	// feeding other gates hold one device on their connection column; output
	// lines hold two devices each, and each output's driving gate holds one
	// device on the output column pair.
	for _, g := range nw.Gates {
		cost.Devices += len(g.Fanins)
	}
	cost.Devices += cost.Wires + 3*cost.Outputs
	if cost.Area > 0 {
		cost.IR = float64(cost.Devices) / float64(cost.Area)
	}
	return cost
}

// DualChoice records which of f and f̄ was selected for implementation, the
// optimization of Section I ("considering both cases during mapping would
// generate a potential optimization in terms of area cost").
type DualChoice struct {
	UseComplement bool
	Direct        TwoLevelCost // cost of implementing f
	Complement    TwoLevelCost // cost of implementing f̄
	Chosen        TwoLevelCost
	ChosenCover   *logic.Cover
}

// ChooseDual computes two-level costs for the cover and its complement and
// selects the smaller implementation. The complement is minimized with the
// same options before costing so the comparison is fair.
func ChooseDual(c *logic.Cover, minimizeFn func(*logic.Cover) *logic.Cover) DualChoice {
	direct := c
	comp := c.ComplementAll()
	if minimizeFn != nil {
		direct = minimizeFn(c)
		comp = minimizeFn(comp)
	}
	d := DualChoice{
		Direct:     TwoLevel(direct),
		Complement: TwoLevel(comp),
	}
	if d.Complement.Area < d.Direct.Area {
		d.UseComplement = true
		d.Chosen = d.Complement
		d.ChosenCover = comp
	} else {
		d.Chosen = d.Direct
		d.ChosenCover = direct
	}
	return d
}
