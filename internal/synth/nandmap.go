package synth

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/minimize"
	"repro/internal/netlist"
)

// MultiLevelOptions configures NAND-network synthesis.
type MultiLevelOptions struct {
	// MaxFanin bounds gate fan-in. Zero means "number of inputs", matching
	// the paper's "NAND gates which have fan-in sizes 2 to n".
	MaxFanin int
	// Minimize runs the two-level minimizer on each output before factoring.
	Minimize bool
	// MinimizeOptions tunes the minimizer when Minimize is set.
	MinimizeOptions minimize.Options
}

// SynthesizeMultiLevel maps a multi-output cover to a NAND-only network
// realizable on the multi-level crossbar: minimize (optionally), factor each
// output algebraically, convert the factored forms to NAND gates with
// bounded fan-in, and share structurally identical gates across outputs.
func SynthesizeMultiLevel(c *logic.Cover, opt MultiLevelOptions) (*netlist.Network, error) {
	maxFanin := opt.MaxFanin
	if maxFanin == 0 {
		maxFanin = c.NumIn
	}
	if maxFanin < 2 {
		maxFanin = 2
	}
	nw := netlist.New(c.NumIn)
	b := &nandBuilder{nw: nw, maxFanin: maxFanin}
	outs := make([]netlist.Signal, c.NumOut)
	for j := 0; j < c.NumOut; j++ {
		oc := c.OutputCover(j)
		if opt.Minimize {
			oc = minimize.MinimizeSingle(oc, opt.MinimizeOptions)
		}
		sig, err := b.outputGate(oc)
		if err != nil {
			return nil, fmt.Errorf("synth: output %d: %v", j, err)
		}
		outs[j] = sig
	}
	if err := nw.SetOutputs(outs...); err != nil {
		return nil, err
	}
	nw.SweepDead()
	return nw, nil
}

// nandBuilder lowers factored forms into a shared NAND network.
type nandBuilder struct {
	nw       *netlist.Network
	maxFanin int
}

// outputGate produces a gate-output signal computing the cover, inserting
// the single-fanin NAND (inverter) tricks needed when the function
// degenerates to a constant or a bare literal.
func (b *nandBuilder) outputGate(oc *logic.Cover) (netlist.Signal, error) {
	if oc.IsEmpty() {
		// Constant 0: NAND(const1). const1 = NAND(x0, x̄0) if an input
		// exists; a zero-input function cannot be realized on the fabric.
		if b.nw.NumIn == 0 {
			return netlist.Signal{}, fmt.Errorf("constant function with no inputs")
		}
		one, err := b.nand([]netlist.Signal{netlist.Input(0, false), netlist.Input(0, true)})
		if err != nil {
			return netlist.Signal{}, err
		}
		return b.nand([]netlist.Signal{one})
	}
	if oc.IsTautology() {
		if b.nw.NumIn == 0 {
			return netlist.Signal{}, fmt.Errorf("constant function with no inputs")
		}
		return b.nand([]netlist.Signal{netlist.Input(0, false), netlist.Input(0, true)})
	}
	e := Factor(oc)
	if lit, ok := e.(Lit); ok {
		// f = literal: one inverter from the opposite-polarity column.
		return b.nand([]netlist.Signal{netlist.Input(lit.Var, !lit.Neg)})
	}
	return b.signal(e, false)
}

// signal returns a network signal computing e (or its complement). The
// polarity-aware lowering exploits the crossbar's free input complements:
//
//	NAND(a1..ak)        = ¬(a1·…·ak)    → ¬AND is one gate, AND is two
//	OR(a1..ak)          = NAND(ā1..āk)  → OR is one gate, ¬OR is two
func (b *nandBuilder) signal(e Expr, complement bool) (netlist.Signal, error) {
	switch v := e.(type) {
	case Lit:
		return netlist.Input(v.Var, v.Neg != complement), nil
	case And:
		kids, err := b.signals(v.Kids, false)
		if err != nil {
			return netlist.Signal{}, err
		}
		nandSig, err := b.nand(kids)
		if err != nil {
			return netlist.Signal{}, err
		}
		if complement {
			return nandSig, nil
		}
		return b.nand([]netlist.Signal{nandSig})
	case Or:
		kids, err := b.signals(v.Kids, true)
		if err != nil {
			return netlist.Signal{}, err
		}
		orSig, err := b.nand(kids)
		if err != nil {
			return netlist.Signal{}, err
		}
		if !complement {
			return orSig, nil
		}
		return b.nand([]netlist.Signal{orSig})
	}
	return netlist.Signal{}, fmt.Errorf("unknown expression node %T", e)
}

func (b *nandBuilder) signals(kids []Expr, complement bool) ([]netlist.Signal, error) {
	out := make([]netlist.Signal, len(kids))
	for i, k := range kids {
		if lit, ok := k.(Lit); ok {
			out[i] = netlist.Input(lit.Var, lit.Neg != complement)
			continue
		}
		s, err := b.signal(k, complement)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// nand emits a NAND gate, splitting fan-ins beyond the bound into AND
// subtrees (AND = inverter after NAND): NAND(a1..ak) =
// NAND(AND(a1..am), a(m+1)..ak) applied repeatedly.
func (b *nandBuilder) nand(fanins []netlist.Signal) (netlist.Signal, error) {
	for len(fanins) > b.maxFanin {
		group := fanins[:b.maxFanin]
		inner, err := b.nw.AddNAND(group...)
		if err != nil {
			return netlist.Signal{}, err
		}
		andSig, err := b.nw.AddNAND(inner)
		if err != nil {
			return netlist.Signal{}, err
		}
		rest := append([]netlist.Signal{andSig}, fanins[b.maxFanin:]...)
		fanins = rest
	}
	return b.nw.AddNAND(fanins...)
}
