package synth

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
)

// Expr is a node of a factored Boolean formula: a literal, a product, or a
// sum. Factored forms are the intermediate between the minimized SOP and
// the NAND network.
type Expr interface {
	// evalExpr computes the node under the assignment.
	evalExpr(x []bool) bool
	// String renders the node in infix notation.
	String() string
}

// Lit is a single literal.
type Lit struct {
	Var int
	Neg bool
}

func (l Lit) evalExpr(x []bool) bool {
	if l.Neg {
		return !x[l.Var]
	}
	return x[l.Var]
}

func (l Lit) String() string {
	if l.Neg {
		return fmt.Sprintf("~x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// And is the product of its children.
type And struct{ Kids []Expr }

func (a And) evalExpr(x []bool) bool {
	for _, k := range a.Kids {
		if !k.evalExpr(x) {
			return false
		}
	}
	return true
}

func (a And) String() string { return joinExpr(a.Kids, "·") }

// Or is the sum of its children.
type Or struct{ Kids []Expr }

func (o Or) evalExpr(x []bool) bool {
	for _, k := range o.Kids {
		if k.evalExpr(x) {
			return true
		}
	}
	return false
}

func (o Or) String() string { return "(" + joinExpr(o.Kids, " + ") + ")" }

func joinExpr(kids []Expr, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return strings.Join(parts, sep)
}

// EvalExpr evaluates a factored form under an input assignment.
func EvalExpr(e Expr, x []bool) bool { return e.evalExpr(x) }

// Factor converts a single-output cover into a factored form using
// most-frequent-literal division (the "quick factor" style of algebraic
// factoring): F = L·(F/L) + R, recursing on quotient and remainder, with
// common-cube extraction at every level. An empty cover yields nil (constant
// 0 has no factored form; callers special-case it).
func Factor(c *logic.Cover) Expr {
	if c.NumOut != 1 {
		panic("synth: Factor requires a single-output cover")
	}
	if c.IsEmpty() {
		return nil
	}
	return factorCubes(cubesOf(c), c.NumIn)
}

// cubeLits extracts the literal list of one cube.
func cubeLits(cube logic.Cube) []Lit {
	var lits []Lit
	for i, v := range cube.In {
		switch v {
		case logic.LitPos:
			lits = append(lits, Lit{Var: i})
		case logic.LitNeg:
			lits = append(lits, Lit{Var: i, Neg: true})
		}
	}
	return lits
}

func cubesOf(c *logic.Cover) [][]Lit {
	out := make([][]Lit, 0, len(c.Cubes))
	for _, cube := range c.Cubes {
		out = append(out, cubeLits(cube))
	}
	return out
}

func factorCubes(cubes [][]Lit, nIn int) Expr {
	if len(cubes) == 0 {
		return nil
	}
	if hasEmptyCube(cubes) {
		// An empty product absorbs everything: the sum is constant 1,
		// represented by the empty And. flattenAnd erases it inside
		// products; a top-level tautology never reaches here (the
		// synthesizer special-cases it).
		return And{}
	}
	if len(cubes) == 1 {
		return productExpr(cubes[0])
	}
	// Common-cube extraction: literals present in every cube factor out.
	if common := commonLits(cubes); len(common) > 0 {
		rest := removeLits(cubes, common)
		inner := factorCubes(rest, nIn)
		kids := make([]Expr, 0, len(common)+1)
		for _, l := range common {
			kids = append(kids, l)
		}
		if inner != nil {
			kids = append(kids, inner)
		}
		return flattenAnd(kids)
	}
	// Divide by the most frequent literal.
	best, count := mostFrequentLit(cubes)
	if count < 2 {
		// No sharing opportunity: plain sum of products.
		kids := make([]Expr, len(cubes))
		for i, cu := range cubes {
			kids[i] = productExpr(cu)
		}
		return Or{Kids: kids}
	}
	var quotient, remainder [][]Lit
	for _, cu := range cubes {
		if idx := indexOfLit(cu, best); idx >= 0 {
			q := append([]Lit(nil), cu[:idx]...)
			q = append(q, cu[idx+1:]...)
			quotient = append(quotient, q)
		} else {
			remainder = append(remainder, cu)
		}
	}
	// An empty quotient cube means the literal itself is a term (L + R):
	// L·(1 + Q') + R = L + R, handled naturally because productExpr of an
	// empty cube is the constant-1 marker: we special-case it.
	var lTerm Expr
	if hasEmptyCube(quotient) {
		lTerm = best // L·1 absorbs every other quotient term
	} else {
		inner := factorCubes(quotient, nIn)
		lTerm = flattenAnd([]Expr{best, inner})
	}
	if len(remainder) == 0 {
		return lTerm
	}
	rTerm := factorCubes(remainder, nIn)
	return flattenOr([]Expr{lTerm, rTerm})
}

func productExpr(lits []Lit) Expr {
	if len(lits) == 0 {
		// The universe cube: constant 1. Callers above guarantee this only
		// happens via hasEmptyCube handling; a bare tautology cover is
		// handled by the synthesizer before factoring.
		return And{}
	}
	if len(lits) == 1 {
		return lits[0]
	}
	kids := make([]Expr, len(lits))
	for i, l := range lits {
		kids[i] = l
	}
	return And{Kids: kids}
}

func commonLits(cubes [][]Lit) []Lit {
	counts := map[Lit]int{}
	for _, cu := range cubes {
		for _, l := range cu {
			counts[l]++
		}
	}
	var common []Lit
	for l, c := range counts {
		if c == len(cubes) {
			common = append(common, l)
		}
	}
	sort.Slice(common, func(a, b int) bool {
		if common[a].Var != common[b].Var {
			return common[a].Var < common[b].Var
		}
		return !common[a].Neg && common[b].Neg
	})
	return common
}

func removeLits(cubes [][]Lit, drop []Lit) [][]Lit {
	dropSet := map[Lit]bool{}
	for _, l := range drop {
		dropSet[l] = true
	}
	out := make([][]Lit, len(cubes))
	for i, cu := range cubes {
		for _, l := range cu {
			if !dropSet[l] {
				out[i] = append(out[i], l)
			}
		}
	}
	return out
}

func mostFrequentLit(cubes [][]Lit) (Lit, int) {
	counts := map[Lit]int{}
	for _, cu := range cubes {
		for _, l := range cu {
			counts[l]++
		}
	}
	var best Lit
	bestCount := 0
	for l, c := range counts {
		if c > bestCount || (c == bestCount && litLess(l, best)) {
			best, bestCount = l, c
		}
	}
	return best, bestCount
}

func litLess(a, b Lit) bool {
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	return !a.Neg && b.Neg
}

func indexOfLit(cu []Lit, l Lit) int {
	for i, x := range cu {
		if x == l {
			return i
		}
	}
	return -1
}

func hasEmptyCube(cubes [][]Lit) bool {
	for _, cu := range cubes {
		if len(cu) == 0 {
			return true
		}
	}
	return false
}

func flattenAnd(kids []Expr) Expr {
	var flat []Expr
	for _, k := range kids {
		if a, ok := k.(And); ok {
			flat = append(flat, a.Kids...)
		} else if k != nil {
			flat = append(flat, k)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return And{Kids: flat}
}

func flattenOr(kids []Expr) Expr {
	var flat []Expr
	for _, k := range kids {
		if o, ok := k.(Or); ok {
			flat = append(flat, o.Kids...)
		} else if k != nil {
			flat = append(flat, k)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Or{Kids: flat}
}

// ExprLiterals counts literal occurrences in a factored form, the standard
// factored-form cost metric.
func ExprLiterals(e Expr) int {
	switch v := e.(type) {
	case nil:
		return 0
	case Lit:
		return 1
	case And:
		n := 0
		for _, k := range v.Kids {
			n += ExprLiterals(k)
		}
		return n
	case Or:
		n := 0
		for _, k := range v.Kids {
			n += ExprLiterals(k)
		}
		return n
	}
	return 0
}
